(* Ranking: ordering, ties, filtering. *)

let test_sorted_descending () =
  let ranked = Inquery.Ranking.rank [| 0.5; 0.9; 0.41; 0.7 |] in
  Alcotest.(check (list int)) "order" [ 1; 3; 0; 2 ]
    (List.map (fun r -> r.Inquery.Ranking.doc) ranked)

let test_default_filtered () =
  let ranked = Inquery.Ranking.rank [| 0.4; 0.9; 0.4 |] in
  Alcotest.(check (list int)) "only evidence docs" [ 1 ]
    (List.map (fun r -> r.Inquery.Ranking.doc) ranked)

let test_ties_break_by_doc_id () =
  let ranked = Inquery.Ranking.rank [| 0.8; 0.9; 0.8 |] in
  Alcotest.(check (list int)) "stable ties" [ 1; 0; 2 ]
    (List.map (fun r -> r.Inquery.Ranking.doc) ranked)

let test_top_k () =
  let beliefs = Array.init 100 (fun i -> 0.41 +. (float_of_int i /. 1000.0)) in
  let top = Inquery.Ranking.top_k beliefs ~k:5 in
  Alcotest.(check int) "k results" 5 (List.length top);
  Alcotest.(check int) "best first" 99 (List.hd top).Inquery.Ranking.doc;
  Alcotest.(check int) "k larger than docs" 100
    (List.length (Inquery.Ranking.top_k beliefs ~k:1000));
  Alcotest.(check int) "k zero" 0 (List.length (Inquery.Ranking.top_k beliefs ~k:0));
  Alcotest.(check bool) "negative k" true
    (match Inquery.Ranking.top_k beliefs ~k:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_custom_threshold () =
  let ranked = Inquery.Ranking.rank ~above:0.5 [| 0.45; 0.6; 0.5 |] in
  Alcotest.(check (list int)) "strictly above" [ 1 ]
    (List.map (fun r -> r.Inquery.Ranking.doc) ranked)

let test_scores_carried () =
  let ranked = Inquery.Ranking.rank [| 0.4; 0.75 |] in
  Alcotest.(check (float 1e-9)) "score" 0.75 (List.hd ranked).Inquery.Ranking.score

let test_empty () =
  Alcotest.(check int) "empty input" 0 (List.length (Inquery.Ranking.rank [||]))

let take k xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go k [] xs

let test_top_k_matches_rank () =
  (* The bounded min-heap must reproduce the full sort exactly —
     same docs, same scores, same tie-breaks. *)
  let rng = Util.Rng.create ~seed:9 in
  let beliefs = Array.init 5000 (fun _ -> 0.35 +. Util.Rng.float rng 0.6) in
  List.iter
    (fun k ->
      let expect = take k (Inquery.Ranking.rank beliefs) in
      let got = Inquery.Ranking.top_k beliefs ~k in
      if got <> expect then Alcotest.failf "top_k %d diverges from rank-then-take" k)
    [ 0; 1; 2; 7; 100; 4999; 5000; 6000 ]

let test_top_k_ties_match_rank () =
  let beliefs = Array.init 1000 (fun i -> if i mod 3 = 0 then 0.7 else 0.55) in
  Alcotest.(check bool) "tie-breaks identical" true
    (Inquery.Ranking.top_k beliefs ~k:10 = take 10 (Inquery.Ranking.rank beliefs))

let test_top_k_stack_safe () =
  let beliefs = Array.make 1_000_000 0.9 in
  Alcotest.(check int) "huge array" 10 (List.length (Inquery.Ranking.top_k beliefs ~k:10))

let suite =
  [
    Alcotest.test_case "sorted descending" `Quick test_sorted_descending;
    Alcotest.test_case "top_k matches rank" `Quick test_top_k_matches_rank;
    Alcotest.test_case "top_k ties match rank" `Quick test_top_k_ties_match_rank;
    Alcotest.test_case "top_k stack safety" `Quick test_top_k_stack_safe;
    Alcotest.test_case "default filtered" `Quick test_default_filtered;
    Alcotest.test_case "ties by doc id" `Quick test_ties_break_by_doc_id;
    Alcotest.test_case "top_k" `Quick test_top_k;
    Alcotest.test_case "custom threshold" `Quick test_custom_threshold;
    Alcotest.test_case "scores carried" `Quick test_scores_carried;
    Alcotest.test_case "empty" `Quick test_empty;
  ]
