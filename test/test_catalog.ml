(* The persistent system catalog. *)

let build_indexer () =
  let ix = Inquery.Indexer.create () in
  Inquery.Indexer.add_document ix ~doc_id:0 "alpha beta gamma";
  Inquery.Indexer.add_document ix ~doc_id:1 "beta delta";
  let dict = Inquery.Indexer.dictionary ix in
  (match Inquery.Dictionary.find dict "beta" with
  | Some e -> e.Inquery.Dictionary.locator <- 4242
  | None -> ());
  ix

let test_of_indexer () =
  let c = Core.Catalog.of_indexer (build_indexer ()) in
  Alcotest.(check int) "docs" 2 c.Core.Catalog.n_docs;
  Alcotest.(check (array int)) "lengths" [| 3; 2 |] c.Core.Catalog.doc_lens;
  Alcotest.(check (float 1e-9)) "avg" 2.5 (Core.Catalog.avg_doc_length c);
  Alcotest.(check (option (float 1e-9))) "doc length" (Some 3.0) (Core.Catalog.doc_length c 0);
  Alcotest.(check (option (float 1e-9))) "out of range" None (Core.Catalog.doc_length c 9)

let test_save_load_roundtrip () =
  let vfs = Vfs.create () in
  let c = Core.Catalog.of_indexer (build_indexer ()) in
  Core.Catalog.save vfs ~file:"x.catalog" c;
  let c' = Core.Catalog.load vfs ~file:"x.catalog" in
  Alcotest.(check int) "docs" c.Core.Catalog.n_docs c'.Core.Catalog.n_docs;
  Alcotest.(check (array int)) "lengths" c.Core.Catalog.doc_lens c'.Core.Catalog.doc_lens;
  Alcotest.(check int) "bytes" c.Core.Catalog.collection_bytes c'.Core.Catalog.collection_bytes;
  Alcotest.(check int) "dict size" (Inquery.Dictionary.size c.Core.Catalog.dict)
    (Inquery.Dictionary.size c'.Core.Catalog.dict);
  (* Locators (Mneme ids) survive, with ids and stats. *)
  match Inquery.Dictionary.find c'.Core.Catalog.dict "beta" with
  | Some e ->
    Alcotest.(check int) "locator" 4242 e.Inquery.Dictionary.locator;
    Alcotest.(check int) "df" 2 e.Inquery.Dictionary.df
  | None -> Alcotest.fail "beta lost"

let test_save_overwrites () =
  let vfs = Vfs.create () in
  let c = Core.Catalog.of_indexer (build_indexer ()) in
  Core.Catalog.save vfs ~file:"x.catalog" c;
  Core.Catalog.save vfs ~file:"x.catalog" c;
  let c' = Core.Catalog.load vfs ~file:"x.catalog" in
  Alcotest.(check int) "still loads" 2 c'.Core.Catalog.n_docs

let test_load_errors () =
  let vfs = Vfs.create () in
  Alcotest.(check bool) "missing" true
    (match Core.Catalog.load vfs ~file:"nope" with _ -> false | exception Failure _ -> true);
  let f = Vfs.open_file vfs "bad" in
  ignore (Vfs.append f (Bytes.make 32 'Q'));
  Alcotest.(check bool) "bad magic" true
    (match Core.Catalog.load vfs ~file:"bad" with _ -> false | exception Failure _ -> true)

let test_prepared_catalog_consistency () =
  let model =
    Collections.Docmodel.make ~name:"cat" ~n_docs:120 ~core_vocab:300 ~mean_doc_len:25.0 ~seed:9 ()
  in
  let p = Core.Experiment.prepare model in
  let c = Core.Catalog.load p.Core.Experiment.vfs ~file:p.Core.Experiment.catalog_file in
  Alcotest.(check int) "doc count" 120 c.Core.Catalog.n_docs;
  Alcotest.(check int) "dict size matches" (Inquery.Dictionary.size p.Core.Experiment.dict)
    (Inquery.Dictionary.size c.Core.Catalog.dict);
  (* Locators in the catalog resolve in the Mneme store. *)
  let store = Mneme.Store.open_existing p.Core.Experiment.vfs p.Core.Experiment.mneme_file in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool store name)
        (Mneme.Buffer_pool.create ~name ~capacity:100_000 ()))
    [ "small"; "medium"; "large" ];
  Inquery.Dictionary.iter c.Core.Catalog.dict (fun e ->
      if e.Inquery.Dictionary.locator >= 0 then
        if Mneme.Store.get_opt store e.Inquery.Dictionary.locator = None then
          Alcotest.fail ("dangling locator for " ^ e.Inquery.Dictionary.term))

let records_table ix =
  let tbl = Hashtbl.create 64 in
  Seq.iter (fun (id, b) -> Hashtbl.replace tbl id b) (Inquery.Indexer.to_records ix);
  tbl

let test_verify_records_clean () =
  let ix = build_indexer () in
  let c = Core.Catalog.of_indexer ix in
  let tbl = records_table ix in
  let fetch (e : Inquery.Dictionary.entry) = Hashtbl.find_opt tbl e.Inquery.Dictionary.id in
  Alcotest.(check (list (pair string string))) "clean" []
    (Core.Catalog.verify_records c ~fetch)

let test_verify_records_detects () =
  let ix = build_indexer () in
  let c = Core.Catalog.of_indexer ix in
  let n_terms = Inquery.Dictionary.size c.Core.Catalog.dict in
  (* Every record replaced by one with the wrong df and cf: every term
     flagged on both counts. *)
  let wrong = Inquery.Postings.encode [ (0, [ 0 ]); (1, [ 1 ]); (2, [ 2 ]); (3, [ 3 ]) ] in
  let problems = Core.Catalog.verify_records c ~fetch:(fun _ -> Some wrong) in
  Alcotest.(check int) "df/cf mismatches flagged" (2 * n_terms) (List.length problems);
  (* A store-level exception becomes a problem, never propagates. *)
  let problems =
    Core.Catalog.verify_records c ~fetch:(fun _ -> raise (Mneme.Store.Corrupt "bits rotted"))
  in
  Alcotest.(check int) "corrupt fetches flagged" n_terms (List.length problems);
  (* df > 0 with no stored record is flagged too. *)
  let problems = Core.Catalog.verify_records c ~fetch:(fun _ -> None) in
  Alcotest.(check int) "missing records flagged" n_terms (List.length problems)

let suite =
  [
    Alcotest.test_case "of_indexer" `Quick test_of_indexer;
    Alcotest.test_case "verify_records clean" `Quick test_verify_records_clean;
    Alcotest.test_case "verify_records detects damage" `Quick test_verify_records_detects;
    Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "save overwrites" `Quick test_save_overwrites;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "prepared catalog consistency" `Quick test_prepared_catalog_consistency;
  ]
