(* Domain-pool query serving: bit-identity with the serial engine on
   every preset collection, work accounting, and the frontend variant
   with a degraded replica.  [REPRO_TEST_DOMAINS] (used by CI) pins the
   domain counts the whole file exercises. *)

let domain_counts =
  match Sys.getenv_opt "REPRO_TEST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d > 0 -> [ d ]
    | _ -> [ 1; 2; 4 ])
  | None -> [ 1; 2; 4 ]

(* The four preset collections at smoke scale, prepared once. *)
let scale = 0.01

let prepared_tbl : (string, Core.Experiment.prepared) Hashtbl.t = Hashtbl.create 4

let prepared_of name =
  match Hashtbl.find_opt prepared_tbl name with
  | Some p -> p
  | None ->
    let p = Core.Experiment.prepare (Collections.Presets.find ~scale name) in
    Hashtbl.add prepared_tbl name p;
    p

let preset_names = [ "cacm"; "legal"; "tipster1"; "tipster" ]

let queries_of name =
  let model = (prepared_of name).Core.Experiment.model in
  let _, spec = List.hd (Collections.Presets.query_sets model) in
  List.filteri (fun i _ -> i < 6) (Collections.Querygen.generate model spec)

let check_report ~domains ~n (r : Core.Parallel.report) =
  Alcotest.(check int) "n_queries" n r.Core.Parallel.n_queries;
  Alcotest.(check int) "domains" domains r.Core.Parallel.domains;
  Alcotest.(check bool) "audited" true r.Core.Parallel.audited;
  Array.iteri
    (fun i o ->
      Alcotest.(check int) "submission order" i o.Core.Parallel.q_index;
      Alcotest.(check bool) "served by a real worker" true
        (o.Core.Parallel.q_domain >= 0 && o.Core.Parallel.q_domain < domains))
    r.Core.Parallel.outcomes;
  Alcotest.(check int) "every query served exactly once" n
    (Array.fold_left ( + ) 0 r.Core.Parallel.worker_queries);
  Alcotest.(check bool) "makespan bounds serial work" true
    (r.Core.Parallel.sim_makespan_ms <= r.Core.Parallel.sim_serial_ms +. 1e-9)

(* The load-bearing property: whatever the domain count, steal
   interleaving, or per-worker cache state, rankings and beliefs are
   bit-identical to a serial run — [~audit] raises on any divergence. *)
let prop_parallel_matches_serial =
  QCheck.Test.make ~name:"parallel rankings bit-identical to serial (all presets)" ~count:10
    QCheck.(make Gen.(pair (oneofl preset_names) (oneofl domain_counts)))
    (fun (name, domains) ->
      let p = prepared_of name in
      let queries = queries_of name in
      let r =
        Core.Parallel.run_query_set ~domains ~audit:true p Core.Experiment.Mneme_cache ~queries
      in
      check_report ~domains ~n:(List.length queries) r;
      true)

let test_all_presets_all_domains () =
  List.iter
    (fun name ->
      let p = prepared_of name in
      let queries = queries_of name in
      List.iter
        (fun domains ->
          let r =
            Core.Parallel.run_query_set ~domains ~audit:true p Core.Experiment.Mneme_cache
              ~queries
          in
          check_report ~domains ~n:(List.length queries) r)
        domain_counts)
    preset_names

let test_topk_pruned_identical () =
  let name = "tipster1" in
  let p = prepared_of name in
  let model = p.Core.Experiment.model in
  let spec = Collections.Presets.topk_queries model in
  let queries =
    List.filteri (fun i _ -> i < 6) (Collections.Querygen.generate model spec)
  in
  List.iter
    (fun domains ->
      let r =
        Core.Parallel.run_query_set ~domains ~audit:true ~mode:(Core.Parallel.Topk 10) p
          Core.Experiment.Mneme_cache ~queries
      in
      check_report ~domains ~n:(List.length queries) r;
      Array.iter
        (fun o ->
          Alcotest.(check bool) "top-k depth respected" true
            (List.length o.Core.Parallel.q_ranked <= 10))
        r.Core.Parallel.outcomes)
    domain_counts

let test_btree_version_and_buffer_merge () =
  let p = prepared_of "cacm" in
  let queries = queries_of "cacm" in
  let domains = List.fold_left max 1 domain_counts in
  let rb = Core.Parallel.run_query_set ~domains ~audit:true p Core.Experiment.Btree ~queries in
  Alcotest.(check (list string)) "btree has no mneme pools" []
    (List.map fst rb.Core.Parallel.buffers);
  let rm = Core.Parallel.run_query_set ~domains ~audit:true p Core.Experiment.Mneme_cache ~queries in
  Alcotest.(check bool) "mneme pools merged across workers" true
    (rm.Core.Parallel.buffers <> []);
  List.iter
    (fun (pool, s) ->
      Alcotest.(check bool) (pool ^ " saw traffic or stayed idle") true
        (s.Mneme.Buffer_pool.refs >= s.Mneme.Buffer_pool.hits && s.Mneme.Buffer_pool.hits >= 0))
    rm.Core.Parallel.buffers

let test_frontend_degraded_replica_identical () =
  let p = prepared_of "cacm" in
  let queries = queries_of "cacm" in
  (* Every frontend — parallel workers and the serial audit one alike —
     gets replica "a" on a degraded device: hedging may reroute the
     fetches, but rankings must not move a bit. *)
  let configure ~domain:_ fe =
    Vfs.set_fault
      (Core.Frontend.replica_vfs fe ~name:"a")
      (Vfs.Fault.degraded_device ~file:p.Core.Experiment.mneme_file ~ms:50.0)
  in
  List.iter
    (fun domains ->
      let r =
        Core.Parallel.run_frontend_set ~domains ~audit:true ~configure p ~names:[ "a"; "b" ]
          ~queries
      in
      Alcotest.(check int) "n_queries" (List.length queries) r.Core.Parallel.f_n_queries;
      Alcotest.(check bool) "audited" true r.Core.Parallel.f_audited;
      Alcotest.(check int) "every query served" (List.length queries)
        (Array.fold_left ( + ) 0 r.Core.Parallel.f_worker_queries);
      Array.iteri
        (fun i o -> Alcotest.(check int) "submission order" i o.Core.Parallel.f_index)
        r.Core.Parallel.f_outcomes)
    domain_counts

let test_audit_rejects_deadline () =
  let p = prepared_of "cacm" in
  Alcotest.check_raises "deadline is path-dependent"
    (Invalid_argument
       "Parallel.run_frontend_set: audit is incompatible with a deadline (deadline \
        degradation is breaker-state-dependent)") (fun () ->
      ignore
        (Core.Parallel.run_frontend_set ~audit:true ~deadline_ms:5.0 p ~names:[ "a" ]
           ~queries:[ "hello" ]))

let test_rejects_bad_arguments () =
  let p = prepared_of "cacm" in
  Alcotest.check_raises "non-positive domains"
    (Invalid_argument "Parallel.run_query_set: domains must be positive") (fun () ->
      ignore (Core.Parallel.run_query_set ~domains:0 p Core.Experiment.Mneme_cache ~queries:[]));
  Alcotest.check_raises "non-positive k"
    (Invalid_argument "Parallel.run_query_set: top-k depth must be positive") (fun () ->
      ignore
        (Core.Parallel.run_query_set ~mode:(Core.Parallel.Topk 0) p Core.Experiment.Mneme_cache
           ~queries:[]))

let test_empty_query_set () =
  let p = prepared_of "cacm" in
  let r = Core.Parallel.run_query_set ~domains:2 ~audit:true p Core.Experiment.Mneme_cache ~queries:[] in
  Alcotest.(check int) "no outcomes" 0 (Array.length r.Core.Parallel.outcomes);
  Alcotest.(check int) "no queries" 0 r.Core.Parallel.n_queries

let suite =
  [
    Alcotest.test_case "all presets, all domain counts, audited" `Slow
      test_all_presets_all_domains;
    Alcotest.test_case "top-k pruned queries identical" `Slow test_topk_pruned_identical;
    Alcotest.test_case "btree version + buffer merge" `Quick test_btree_version_and_buffer_merge;
    Alcotest.test_case "frontend with degraded replica" `Slow
      test_frontend_degraded_replica_identical;
    Alcotest.test_case "audit rejects deadline" `Quick test_audit_rejects_deadline;
    Alcotest.test_case "argument validation" `Quick test_rejects_bad_arguments;
    Alcotest.test_case "empty query set" `Quick test_empty_query_set;
    QCheck_alcotest.to_alcotest prop_parallel_matches_serial;
  ]
