(* The tiered read-path caches: decoded-block and query-result LRUs,
   unified tier statistics, frontend integration, churn coherence. *)

(* --- Util.Block_cache ---------------------------------------------- *)

let test_block_cache_basics () =
  let bc = Util.Block_cache.create ~capacity_bytes:4096 ~name:"t" () in
  Alcotest.(check bool) "miss on empty" true (Util.Block_cache.find bc ~src:1 ~blk:0 ~epoch:1 = None);
  let docs = Array.init 64 (fun i -> i) and tfs = Array.make 64 1 in
  Util.Block_cache.insert bc ~src:1 ~blk:0 ~epoch:1 ~docs ~tfs;
  (match Util.Block_cache.find bc ~src:1 ~blk:0 ~epoch:1 with
  | Some (d, t) ->
    Alcotest.(check bool) "same arrays back" true (d == docs && t == tfs)
  | None -> Alcotest.fail "expected a hit");
  (* Every key component separates entries. *)
  Alcotest.(check bool) "other block misses" true
    (Util.Block_cache.find bc ~src:1 ~blk:1 ~epoch:1 = None);
  Alcotest.(check bool) "other src misses" true
    (Util.Block_cache.find bc ~src:2 ~blk:0 ~epoch:1 = None);
  Alcotest.(check bool) "other epoch misses" true
    (Util.Block_cache.find bc ~src:1 ~blk:0 ~epoch:2 = None);
  let s = Util.Block_cache.stats bc in
  Alcotest.(check int) "refs" 5 s.Util.Cache_stats.refs;
  Alcotest.(check int) "hits" 1 s.Util.Cache_stats.hits;
  Alcotest.(check int) "misses" 4 (Util.Cache_stats.misses s);
  Alcotest.(check int) "resident" 1 s.Util.Cache_stats.resident_entries

let test_block_cache_evicts_lru () =
  (* Budget fits two of the three equal-cost blocks; the least recently
     used one goes. *)
  let docs = Array.make 100 0 and tfs = Array.make 100 0 in
  let cost = (8 * 200) + 48 in
  let bc = Util.Block_cache.create ~capacity_bytes:(2 * cost) ~name:"t" () in
  Util.Block_cache.insert bc ~src:1 ~blk:0 ~epoch:1 ~docs ~tfs;
  Util.Block_cache.insert bc ~src:1 ~blk:1 ~epoch:1 ~docs ~tfs;
  ignore (Util.Block_cache.find bc ~src:1 ~blk:0 ~epoch:1);
  Util.Block_cache.insert bc ~src:1 ~blk:2 ~epoch:1 ~docs ~tfs;
  Alcotest.(check bool) "recently-touched block 0 survives" true
    (Util.Block_cache.find bc ~src:1 ~blk:0 ~epoch:1 <> None);
  Alcotest.(check bool) "lru block 1 evicted" true
    (Util.Block_cache.find bc ~src:1 ~blk:1 ~epoch:1 = None);
  Alcotest.(check int) "one eviction" 1 (Util.Block_cache.stats bc).Util.Cache_stats.evictions

let test_block_cache_retain () =
  let docs = [| 1 |] and tfs = [| 1 |] in
  let bc = Util.Block_cache.create ~name:"t" () in
  List.iter (fun e -> Util.Block_cache.insert bc ~src:e ~blk:0 ~epoch:e ~docs ~tfs) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "epochs" [ 1; 2; 3 ] (Util.Block_cache.epochs bc);
  Alcotest.(check int) "two dropped" 2 (Util.Block_cache.retain bc ~keep:(fun e -> e = 2));
  Alcotest.(check (list int)) "only kept epoch" [ 2 ] (Util.Block_cache.epochs bc);
  Alcotest.(check int) "invalidations counted" 2
    (Util.Block_cache.stats bc).Util.Cache_stats.invalidations;
  Alcotest.(check int) "zero capacity disables" 0
    (let off = Util.Block_cache.create ~capacity_bytes:0 ~name:"off" () in
     Util.Block_cache.insert off ~src:1 ~blk:0 ~epoch:1 ~docs ~tfs;
     (Util.Block_cache.stats off).Util.Cache_stats.resident_entries)

(* --- Core.Result_cache --------------------------------------------- *)

let test_result_cache_epoch_purge () =
  let rc = Core.Result_cache.create ~name:"t" () in
  Core.Result_cache.insert rc ~key:"q" ~epoch:3 ~coverage:Core.Result_cache.Full ~cost:100 [ 1 ];
  Alcotest.(check bool) "hit at its epoch" true
    (Core.Result_cache.find rc ~key:"q" ~epoch:3 = Some [ 1 ]);
  (* A probe under any other epoch purges the stale entry on the spot. *)
  Alcotest.(check bool) "miss at a newer epoch" true
    (Core.Result_cache.find rc ~key:"q" ~epoch:4 = None);
  Alcotest.(check int) "purged, not resident" 0 (Core.Result_cache.length rc);
  Alcotest.(check bool) "gone even at its own epoch" true
    (Core.Result_cache.find rc ~key:"q" ~epoch:3 = None);
  let s = Core.Result_cache.stats rc in
  Alcotest.(check int) "one hit" 1 s.Util.Cache_stats.hits;
  Alcotest.(check int) "one invalidation" 1 s.Util.Cache_stats.invalidations

let test_result_cache_coverage () =
  let rc = Core.Result_cache.create ~name:"t" () in
  Core.Result_cache.insert rc ~key:"q" ~epoch:1 ~coverage:Core.Result_cache.Partial ~cost:10
    [ 9 ];
  Alcotest.(check bool) "partial never served as full" true
    (Core.Result_cache.find rc ~key:"q" ~epoch:1 = None);
  Alcotest.(check bool) "find_any sees it with its coverage" true
    (Core.Result_cache.find_any rc ~key:"q" ~epoch:1 = Some ([ 9 ], Core.Result_cache.Partial));
  (* A later full answer overwrites the partial. *)
  Core.Result_cache.insert rc ~key:"q" ~epoch:1 ~coverage:Core.Result_cache.Full ~cost:10 [ 7 ];
  Alcotest.(check bool) "full replaces partial" true
    (Core.Result_cache.find rc ~key:"q" ~epoch:1 = Some [ 7 ]);
  Alcotest.(check int) "one entry" 1 (Core.Result_cache.length rc)

let test_result_cache_budget () =
  let rc = Core.Result_cache.create ~capacity_bytes:250 ~name:"t" () in
  List.iter
    (fun i ->
      Core.Result_cache.insert rc
        ~key:(string_of_int i)
        ~epoch:1 ~coverage:Core.Result_cache.Full ~cost:100 [ i ])
    [ 1; 2 ];
  ignore (Core.Result_cache.find rc ~key:"1" ~epoch:1);
  Core.Result_cache.insert rc ~key:"3" ~epoch:1 ~coverage:Core.Result_cache.Full ~cost:100 [ 3 ];
  Alcotest.(check bool) "recently-probed key survives" true
    (Core.Result_cache.find rc ~key:"1" ~epoch:1 <> None);
  Alcotest.(check bool) "lru key evicted" true (Core.Result_cache.find rc ~key:"2" ~epoch:1 = None);
  Alcotest.(check int) "evictions" 1 (Core.Result_cache.stats rc).Util.Cache_stats.evictions;
  Alcotest.(check bool) "negative cost rejected" true
    (match
       Core.Result_cache.insert rc ~key:"x" ~epoch:1 ~coverage:Core.Result_cache.Full ~cost:(-1)
         []
     with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- unified tier statistics --------------------------------------- *)

let test_cache_stats_merge () =
  let a =
    {
      Util.Cache_stats.refs = 10;
      hits = 4;
      evictions = 1;
      invalidations = 2;
      resident_bytes = 100;
      resident_entries = 3;
    }
  in
  let b =
    {
      Util.Cache_stats.refs = 5;
      hits = 5;
      evictions = 0;
      invalidations = 1;
      resident_bytes = 50;
      resident_entries = 2;
    }
  in
  let m = Util.Cache_stats.merge [ a; b; Util.Cache_stats.zero ] in
  Alcotest.(check int) "refs" 15 m.Util.Cache_stats.refs;
  Alcotest.(check int) "hits" 9 m.Util.Cache_stats.hits;
  Alcotest.(check int) "misses" 6 (Util.Cache_stats.misses m);
  Alcotest.(check int) "invalidations" 3 m.Util.Cache_stats.invalidations;
  Alcotest.(check int) "resident bytes" 150 m.Util.Cache_stats.resident_bytes;
  Alcotest.(check bool) "hit rate" true (abs_float (Util.Cache_stats.hit_rate m -. 0.6) < 1e-9);
  Alcotest.(check bool) "empty merge is zero" true
    (Util.Cache_stats.merge [] = Util.Cache_stats.zero)

(* --- frontend integration ------------------------------------------ *)

let model =
  Collections.Docmodel.make ~name:"cache-fe" ~n_docs:1200 ~core_vocab:600 ~mean_doc_len:60.0
    ~hapax_prob:0.02 ~seed:71 ()

let prepared = lazy (Core.Experiment.prepare model)
let query = "#sum( ba be bi bo )"

let fingerprint ranked =
  List.map
    (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score))
    ranked

let test_frontend_result_cache () =
  let p = Lazy.force prepared in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "a" ] ~result_cache_bytes:(1 lsl 16)
      ~block_cache_bytes:(1 lsl 20)
  in
  let r1 = Core.Frontend.run_query_string ~top_k:15 fe query in
  Alcotest.(check bool) "first run computes" false r1.Core.Frontend.cached;
  let r2 = Core.Frontend.run_query_string ~top_k:15 fe query in
  Alcotest.(check bool) "second run served from cache" true r2.Core.Frontend.cached;
  Alcotest.(check bool) "bit-identical ranking" true
    (fingerprint r2.Core.Frontend.ranked = fingerprint r1.Core.Frontend.ranked);
  Alcotest.(check bool) "no work at all" true
    (r2.Core.Frontend.elapsed_ms = 0.0 && r2.Core.Frontend.postings_decoded = 0);
  Alcotest.(check int) "same epoch" r1.Core.Frontend.epoch r2.Core.Frontend.epoch;
  (* A different k is a different answer, hence a different key. *)
  let r3 = Core.Frontend.run_query_string ~top_k:5 fe query in
  Alcotest.(check bool) "different k misses" false r3.Core.Frontend.cached;
  (* Surface variants of the same normalised query share the entry:
     extra whitespace re-prints identically. *)
  let r4 = Core.Frontend.run_query_string ~top_k:15 fe "#sum(  ba   be bi bo )" in
  Alcotest.(check bool) "canonical key unifies spacing" true r4.Core.Frontend.cached;
  (* Floored queries bypass the cache in both directions. *)
  let r5 = Core.Frontend.run_query_string ~top_k:15 ~floor:0.1 fe query in
  Alcotest.(check bool) "floor bypasses" false r5.Core.Frontend.cached;
  match List.assoc_opt "result" (Core.Frontend.cache_tiers fe) with
  | None -> Alcotest.fail "result tier missing from the report"
  | Some s ->
    Alcotest.(check int) "two hits" 2 s.Util.Cache_stats.hits;
    Alcotest.(check bool) "entries resident" true (s.Util.Cache_stats.resident_entries >= 1)

let test_frontend_block_cache () =
  let p = Lazy.force prepared in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "a" ] ~block_cache_bytes:(1 lsl 22)
  in
  let r1 = Core.Frontend.run_query_string ~top_k:15 fe query in
  let r2 = Core.Frontend.run_query_string ~top_k:15 fe query in
  Alcotest.(check bool) "no result cache: both computed" true
    ((not r1.Core.Frontend.cached) && not r2.Core.Frontend.cached);
  Alcotest.(check bool) "identical rankings" true
    (fingerprint r1.Core.Frontend.ranked = fingerprint r2.Core.Frontend.ranked);
  Alcotest.(check bool)
    (Printf.sprintf "reused blocks decode less (%d < %d)" r2.Core.Frontend.postings_decoded
       r1.Core.Frontend.postings_decoded)
    true
    (r2.Core.Frontend.postings_decoded < r1.Core.Frontend.postings_decoded);
  match List.assoc_opt "block" (Core.Frontend.cache_tiers fe) with
  | None -> Alcotest.fail "block tier missing from the report"
  | Some s -> Alcotest.(check bool) "block hits" true (s.Util.Cache_stats.hits > 0)

(* Satellite regression: a stalled replica blowing the deadline yields a
   degraded partial — the fill path must refuse to cache it as a full
   answer, and the healthy recomputation must overwrite it. *)
let test_stalled_deadline_result_never_cached () =
  let p = Lazy.force prepared in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "solo" ] ~buffers:Core.Buffer_sizing.no_cache
      ~window:1000 ~trip_after:1000 ~result_cache_bytes:(1 lsl 16)
  in
  let vfs = Core.Frontend.replica_vfs fe ~name:"solo" in
  Vfs.set_fault vfs (Vfs.Fault.degraded_device ~file:p.Core.Experiment.mneme_file ~ms:120.0);
  Vfs.purge_os_cache vfs;
  let r1 = Core.Frontend.run_query_string ~top_k:15 ~deadline_ms:100.0 fe query in
  Alcotest.(check bool) "stall blew the deadline" true r1.Core.Frontend.deadline_hit;
  Alcotest.(check bool) "degraded" true r1.Core.Frontend.degraded;
  (* Device healed: the same query must be recomputed, not replayed. *)
  Vfs.clear_fault vfs;
  let r2 = Core.Frontend.run_query_string ~top_k:15 fe query in
  Alcotest.(check bool) "degraded partial was not served" false r2.Core.Frontend.cached;
  Alcotest.(check bool) "healthy run is complete" false r2.Core.Frontend.degraded;
  Alcotest.(check bool) "full answer has every term's evidence" true
    (List.length r2.Core.Frontend.ranked >= List.length r1.Core.Frontend.ranked);
  (* The healthy full answer now caches. *)
  let r3 = Core.Frontend.run_query_string ~top_k:15 fe query in
  Alcotest.(check bool) "full answer cached" true r3.Core.Frontend.cached;
  Alcotest.(check bool) "replays the healthy ranking" true
    (fingerprint r3.Core.Frontend.ranked = fingerprint r2.Core.Frontend.ranked)

(* --- churn coherence ----------------------------------------------- *)

let test_torture_cache () =
  let o = Core.Torture.run_cache () in
  if not (Core.Torture.cache_ok o) then
    Alcotest.failf "cache torture: %s" (Format.asprintf "%a" Core.Torture.pp_cache_outcome o)

(* Satellite property: under random add/delete interleavings, across
   the lex/stem presets, the cached read path equals the uncached one
   at every published epoch, and collection leaves no cache entry
   tagged with a collected epoch. *)
let vocab = [| "alpha"; "beta"; "gamma"; "delta"; "the"; "of"; "retrieval"; "stores" |]

let gen_churn =
  QCheck.Gen.(
    pair (int_range 0 3)
      (list_size (int_range 2 10) (list_size (int_range 1 8) (int_range 0 7))))

let prop_churn_coherence =
  QCheck.Test.make ~name:"cached = uncached at every epoch under churn" ~count:25
    (QCheck.make gen_churn) (fun (preset, docs) ->
      let stem = preset land 1 = 1 in
      let stopwords = if preset land 2 = 2 then Some Inquery.Stopwords.default else None in
      let vfs = Vfs.create () in
      let live = Core.Live_index.create_mneme ?stopwords ~stem vfs ~file:"churn.mneme" () in
      let rc = Core.Result_cache.create ~name:"p" () in
      let bc = Util.Block_cache.create ~name:"p" () in
      Core.Live_index.on_publish live (fun ~epoch ->
          ignore (Core.Result_cache.retain rc ~keep:(fun e -> e = epoch));
          ignore (Util.Block_cache.retain bc ~keep:(fun e -> e = epoch)));
      let queries = [ "alpha"; "#sum( retrieval the gamma )" ] in
      let ok = ref true in
      let check_epoch () =
        let epoch = Core.Live_index.epoch live in
        (* Keep the block cache populated under the current epoch so the
           publication hook has real entries to invalidate. *)
        Util.Block_cache.insert bc ~src:1 ~blk:0 ~epoch ~docs:[| epoch |] ~tfs:[| 1 |];
        List.iter
          (fun q ->
            let golden = fingerprint (Core.Live_index.search ~top_k:5 live q) in
            (match Core.Result_cache.find rc ~key:q ~epoch with
            | Some cached -> if cached <> golden then ok := false
            | None ->
              Core.Result_cache.insert rc ~key:q ~epoch ~coverage:Core.Result_cache.Full
                ~cost:64 golden);
            (* Re-probe: the entry just filled (or verified) must hit
               and still match. *)
            match Core.Result_cache.find rc ~key:q ~epoch with
            | Some cached -> if cached <> golden then ok := false
            | None -> ok := false)
          queries
      in
      let ids = ref [] in
      List.iteri
        (fun i words ->
          let text = String.concat " " (List.map (Array.get vocab) words) in
          let id = Core.Live_index.add_document live text in
          ids := id :: !ids;
          check_epoch ();
          if i mod 3 = 2 then begin
            (match !ids with
            | _ :: older :: _ -> ignore (Core.Live_index.delete_document live older)
            | _ -> ());
            check_epoch ()
          end)
        docs;
      ignore (Core.Live_index.gc live);
      let final = Core.Live_index.epoch live in
      List.iter (fun e -> if e <> final then ok := false) (Core.Result_cache.epochs rc);
      List.iter (fun e -> if e <> final then ok := false) (Util.Block_cache.epochs bc);
      !ok)

let suite =
  [
    Alcotest.test_case "block cache: probe, fill, key separation" `Quick test_block_cache_basics;
    Alcotest.test_case "block cache: byte-budget lru" `Quick test_block_cache_evicts_lru;
    Alcotest.test_case "block cache: retain by epoch" `Quick test_block_cache_retain;
    Alcotest.test_case "result cache: epoch mismatch purges" `Quick test_result_cache_epoch_purge;
    Alcotest.test_case "result cache: partial never served as full" `Quick
      test_result_cache_coverage;
    Alcotest.test_case "result cache: byte-budget lru" `Quick test_result_cache_budget;
    Alcotest.test_case "cache stats merge across tiers" `Quick test_cache_stats_merge;
    Alcotest.test_case "frontend: result-cache hit replays bit-identically" `Quick
      test_frontend_result_cache;
    Alcotest.test_case "frontend: block cache cuts decodes on reuse" `Quick
      test_frontend_block_cache;
    Alcotest.test_case "frontend: stalled deadline result never cached" `Quick
      test_stalled_deadline_result_never_cached;
    Alcotest.test_case "torture: coherence under churn" `Slow test_torture_cache;
    QCheck_alcotest.to_alcotest prop_churn_coherence;
  ]
