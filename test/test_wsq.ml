(* Work-stealing deque: sequential semantics, then a multi-domain
   stress run checking every task is delivered exactly once. *)

let test_lifo_pop () =
  let q = Util.Wsq.create ~capacity:8 ~dummy:(-1) in
  List.iter (Util.Wsq.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "newest first" (Some 3) (Util.Wsq.pop q);
  Alcotest.(check (option int)) "then 2" (Some 2) (Util.Wsq.pop q);
  Alcotest.(check (option int)) "then 1" (Some 1) (Util.Wsq.pop q);
  Alcotest.(check (option int)) "empty" None (Util.Wsq.pop q);
  Alcotest.(check (option int)) "still empty" None (Util.Wsq.pop q)

let test_fifo_steal () =
  let q = Util.Wsq.create ~capacity:8 ~dummy:(-1) in
  List.iter (Util.Wsq.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "oldest first" (Some 1) (Util.Wsq.steal q);
  Alcotest.(check (option int)) "then 2" (Some 2) (Util.Wsq.steal q);
  Alcotest.(check (option int)) "owner gets the rest" (Some 3) (Util.Wsq.pop q);
  Alcotest.(check (option int)) "empty steal" None (Util.Wsq.steal q)

let test_pop_steal_interleave () =
  let q = Util.Wsq.create ~capacity:16 ~dummy:(-1) in
  for i = 1 to 10 do
    Util.Wsq.push q i
  done;
  Alcotest.(check int) "size" 10 (Util.Wsq.size q);
  let seen = ref [] in
  for i = 1 to 10 do
    let v = if i mod 2 = 0 then Util.Wsq.steal q else Util.Wsq.pop q in
    match v with Some x -> seen := x :: !seen | None -> Alcotest.fail "drained early"
  done;
  Alcotest.(check (list int)) "all delivered once"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.sort compare !seen);
  Alcotest.(check int) "drained" 0 (Util.Wsq.size q)

let test_capacity () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Wsq.create: capacity must be positive")
    (fun () -> ignore (Util.Wsq.create ~capacity:0 ~dummy:0));
  (* Capacity rounds up to a power of two: 5 -> 8 slots. *)
  let q = Util.Wsq.create ~capacity:5 ~dummy:(-1) in
  for i = 1 to 8 do
    Util.Wsq.push q i
  done;
  Alcotest.check_raises "full" (Invalid_argument "Wsq.push: full") (fun () -> Util.Wsq.push q 9);
  (* The ring reuses freed slots. *)
  Alcotest.(check (option int)) "steal frees a slot" (Some 1) (Util.Wsq.steal q);
  Util.Wsq.push q 9;
  Alcotest.(check (option int)) "push after wrap" (Some 9) (Util.Wsq.pop q)

(* Owner pops while thief domains steal; every pushed task must be
   delivered to exactly one consumer. *)
let test_parallel_stress () =
  let n = 20_000 and thieves = 3 in
  let q = Util.Wsq.create ~capacity:n ~dummy:(-1) in
  for i = 0 to n - 1 do
    Util.Wsq.push q i
  done;
  let owner_done = Atomic.make false in
  let thief () =
    let got = ref [] in
    let continue_ = ref true in
    while !continue_ do
      match Util.Wsq.steal q with
      | Some x -> got := x :: !got
      | None -> if Atomic.get owner_done then continue_ := false else Domain.cpu_relax ()
    done;
    !got
  in
  let domains = List.init thieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match Util.Wsq.pop q with Some x -> mine := x :: !mine | None -> continue_ := false
  done;
  Atomic.set owner_done true;
  let stolen = List.concat_map Domain.join domains in
  let all = List.sort compare (!mine @ stolen) in
  Alcotest.(check int) "every task delivered exactly once" n (List.length all);
  Alcotest.(check (list int)) "no duplicates, no losses" (List.init n Fun.id) all

let suite =
  [
    Alcotest.test_case "pop is LIFO" `Quick test_lifo_pop;
    Alcotest.test_case "steal is FIFO" `Quick test_fifo_steal;
    Alcotest.test_case "pop/steal interleave" `Quick test_pop_steal_interleave;
    Alcotest.test_case "capacity and wrap" `Quick test_capacity;
    Alcotest.test_case "multi-domain stress" `Quick test_parallel_stress;
  ]
