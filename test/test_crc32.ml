(* CRC-32 (IEEE 802.3) against published check values. *)

let hex = Alcotest.testable (fun fmt v -> Format.fprintf fmt "0x%08X" v) ( = )

let test_known_vectors () =
  (* The standard check value for this polynomial. *)
  Alcotest.check hex "123456789" 0xCBF43926 (Util.Crc32.digest_string "123456789");
  Alcotest.check hex "empty" 0x00000000 (Util.Crc32.digest_string "");
  Alcotest.check hex "a" 0xE8B7BE43 (Util.Crc32.digest_string "a");
  Alcotest.check hex "abc" 0x352441C2 (Util.Crc32.digest_string "abc");
  Alcotest.check hex "quick brown fox" 0x414FA339
    (Util.Crc32.digest_string "The quick brown fox jumps over the lazy dog")

let test_incremental_matches_one_shot () =
  let b = Bytes.of_string "incremental digests must compose" in
  let n = Bytes.length b in
  let split = 11 in
  let crc = Util.Crc32.update 0 b ~pos:0 ~len:split in
  let crc = Util.Crc32.update crc b ~pos:split ~len:(n - split) in
  Alcotest.check hex "two updates = one digest" (Util.Crc32.digest_bytes b) crc;
  Alcotest.check hex "digest_sub of a slice"
    (Util.Crc32.digest_string "digests")
    (Util.Crc32.digest_sub b ~pos:12 ~len:7)

let test_detects_any_single_bit_flip () =
  let b = Bytes.of_string "\x00\xff checksummed payload \x80\x01" in
  let clean = Util.Crc32.digest_bytes b in
  for i = 0 to Bytes.length b - 1 do
    for bit = 0 to 7 do
      let damaged = Bytes.copy b in
      Bytes.set damaged i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      if Util.Crc32.digest_bytes damaged = clean then
        Alcotest.failf "flip of byte %d bit %d not detected" i bit
    done
  done

let test_update_bounds () =
  let b = Bytes.of_string "abc" in
  List.iter
    (fun (pos, len) ->
      match Util.Crc32.update 0 b ~pos ~len with
      | _ -> Alcotest.failf "pos %d len %d should raise" pos len
      | exception Invalid_argument _ -> ())
    [ (-1, 1); (0, 4); (2, 2); (0, -1) ]

let prop_single_flip_always_detected =
  (* CRC-32 detects every single-bit error regardless of message length
     or position — a guarantee, not a probability. *)
  QCheck.Test.make ~name:"random string, random bit flip is detected" ~count:200
    QCheck.(
      triple (string_of_size (QCheck.Gen.int_range 1 256)) small_nat (int_range 0 7))
    (fun (s, i, bit) ->
      let b = Bytes.of_string s in
      let i = i mod Bytes.length b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      Util.Crc32.digest_bytes b <> Util.Crc32.digest_string s)

let suite =
  [
    Alcotest.test_case "known vectors" `Quick test_known_vectors;
    Alcotest.test_case "incremental matches one-shot" `Quick test_incremental_matches_one_shot;
    Alcotest.test_case "detects any single bit flip" `Quick test_detects_any_single_bit_flip;
    Alcotest.test_case "update bounds" `Quick test_update_bounds;
    QCheck_alcotest.to_alcotest prop_single_flip_always_detected;
  ]
