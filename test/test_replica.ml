(* Replica groups: journal shipping, lag, CRC rejection, promotion. *)

let file = "r.mneme"
let log_file = "r.log"

let make_primary () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs file in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool
    (Mneme.Buffer_pool.create ~name:"medium" ~capacity:100_000 ());
  Mneme.Store.enable_journal store ~log_file;
  (vfs, store, pool)

let open_standby svfs =
  let store = Mneme.Store.open_existing svfs file in
  Mneme.Store.attach_buffer
    (Mneme.Store.pool store "medium")
    (Mneme.Buffer_pool.create ~name:"medium" ~capacity:100_000 ());
  store

(* One committed batch: allocate [n] deterministic objects, finalize so
   the data file is self-describing at the commit point. *)
let commit_batch store pool ~batch ~n mirror =
  Mneme.Store.transact store (fun () ->
      for j = 1 to n do
        let b = Bytes.of_string (Printf.sprintf "batch %d object %d payload" batch j) in
        let oid = Mneme.Store.allocate pool b in
        mirror := (oid, b) :: !mirror
      done;
      Mneme.Store.finalize store)

let check_contents name store mirror =
  List.iter
    (fun (oid, b) ->
      Alcotest.(check bytes) (Printf.sprintf "%s holds object %d" name oid) b
        (Mneme.Store.get store oid))
    mirror

let test_shipping_keeps_standbys_identical () =
  let _vfs, store, pool = make_primary () in
  let rep =
    Mneme.Replica.attach store
      ~standbys:[ ("alpha", Vfs.create ()); ("beta", Vfs.create ()) ]
  in
  let mirror = ref [] in
  for batch = 1 to 3 do
    commit_batch store pool ~batch ~n:3 mirror
  done;
  Alcotest.(check int) "three batches committed" 3 (Mneme.Replica.primary_lsn rep);
  List.iter
    (fun i ->
      Alcotest.(check int) (i.Mneme.Replica.name ^ " caught up") 3 i.Mneme.Replica.applied_lsn;
      Alcotest.(check int) (i.Mneme.Replica.name ^ " no lag") 0 i.Mneme.Replica.lag;
      Alcotest.(check bool) (i.Mneme.Replica.name ^ " healthy") true i.Mneme.Replica.healthy;
      let standby = open_standby (Mneme.Replica.standby_vfs rep ~name:i.Mneme.Replica.name) in
      check_contents i.Mneme.Replica.name standby !mirror;
      Alcotest.(check int)
        (i.Mneme.Replica.name ^ " object count")
        (Mneme.Store.object_count store)
        (Mneme.Store.object_count standby))
    (Mneme.Replica.info rep)

let test_pause_lags_resume_drains () =
  let _vfs, store, pool = make_primary () in
  let rep =
    Mneme.Replica.attach store
      ~standbys:[ ("alpha", Vfs.create ()); ("beta", Vfs.create ()) ]
  in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:2 mirror;
  Mneme.Replica.pause rep ~name:"beta";
  commit_batch store pool ~batch:2 ~n:2 mirror;
  commit_batch store pool ~batch:3 ~n:2 mirror;
  let by_name n =
    List.find (fun i -> i.Mneme.Replica.name = n) (Mneme.Replica.info rep)
  in
  Alcotest.(check int) "alpha keeps up" 0 (by_name "alpha").Mneme.Replica.lag;
  Alcotest.(check int) "beta lags two batches" 2 (by_name "beta").Mneme.Replica.lag;
  Alcotest.(check int) "beta applied stalls" 1 (by_name "beta").Mneme.Replica.applied_lsn;
  (* A paused standby is a fine promotion candidate — just stale. *)
  let best, _ = Mneme.Replica.promote rep in
  Alcotest.(check string) "promotion prefers the caught-up standby" "alpha"
    best.Mneme.Replica.name;
  Mneme.Replica.resume rep ~name:"beta";
  Alcotest.(check int) "resume drains the backlog" 0 (by_name "beta").Mneme.Replica.lag;
  check_contents "beta" (open_standby (Mneme.Replica.standby_vfs rep ~name:"beta")) !mirror

let test_corrupt_shipment_rejected () =
  let _vfs, store, pool = make_primary () in
  let rep =
    Mneme.Replica.attach store
      ~standbys:[ ("alpha", Vfs.create ()); ("beta", Vfs.create ()) ]
  in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:2 mirror;
  let prefix = !mirror in
  Mneme.Replica.corrupt_next_shipment rep ~name:"beta";
  commit_batch store pool ~batch:2 ~n:2 mirror;
  let by_name n =
    List.find (fun i -> i.Mneme.Replica.name = n) (Mneme.Replica.info rep)
  in
  let beta = by_name "beta" in
  Alcotest.(check bool) "beta rejected the damaged batch" false beta.Mneme.Replica.healthy;
  Alcotest.(check bool) "reason names the CRC" true
    (match beta.Mneme.Replica.reason with
    | Some r -> Str_find.contains r "CRC"
    | None -> false);
  Alcotest.(check int) "beta froze at the verified prefix" 1 beta.Mneme.Replica.applied_lsn;
  (* The rejected batch was never applied: beta still opens, at batch 1. *)
  check_contents "beta" (open_standby (Mneme.Replica.standby_vfs rep ~name:"beta")) prefix;
  (* Alpha is unaffected and wins promotion. *)
  Alcotest.(check bool) "alpha healthy" true (by_name "alpha").Mneme.Replica.healthy;
  let best, _ = Mneme.Replica.promote rep in
  Alcotest.(check string) "alpha promoted" "alpha" best.Mneme.Replica.name;
  (* An unhealthy standby ignores further shipments rather than diverge. *)
  commit_batch store pool ~batch:3 ~n:1 mirror;
  Alcotest.(check int) "beta stays frozen" 1 (by_name "beta").Mneme.Replica.applied_lsn

let test_promotion_after_primary_crash () =
  let vfs, store, pool = make_primary () in
  let rep = Mneme.Replica.attach store ~standbys:[ ("alpha", Vfs.create ()) ] in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:3 mirror;
  commit_batch store pool ~batch:2 ~n:3 mirror;
  let committed = !mirror in
  (* The primary's device dies at its very next physical I/O — the log
     write of batch 3 — so the batch never commits and never ships. *)
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io 1);
  Alcotest.(check bool) "primary crashes mid-commit" true
    (match commit_batch store pool ~batch:3 ~n:3 mirror with
    | () -> false
    | exception Vfs.Crash -> true);
  let best, svfs = Mneme.Replica.promote rep in
  Alcotest.(check string) "survivor" "alpha" best.Mneme.Replica.name;
  Alcotest.(check int) "survivor holds the committed prefix" 2 best.Mneme.Replica.applied_lsn;
  let standby = open_standby svfs in
  let report = Mneme.Check.run standby in
  Alcotest.(check bool) "survivor passes fsck" true (Mneme.Check.ok report);
  check_contents "alpha" standby committed;
  Alcotest.(check int) "exactly the committed objects" (List.length committed)
    (Mneme.Store.object_count standby)

let test_attach_validation () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs file in
  let _ = Mneme.Store.add_pool store Mneme.Policy.medium in
  Alcotest.(check bool) "journal required" true
    (match Mneme.Replica.attach store ~standbys:[ ("a", Vfs.create ()) ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Mneme.Store.enable_journal store ~log_file;
  Alcotest.(check bool) "duplicate standby names rejected" true
    (match
       Mneme.Replica.attach store ~standbys:[ ("a", Vfs.create ()); ("a", Vfs.create ()) ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let rep = Mneme.Replica.attach store ~standbys:[] in
  Alcotest.(check bool) "no standby to promote" true
    (match Mneme.Replica.promote rep with
    | _ -> false
    | exception Failure _ -> true)

let test_resync_rejoins_stream () =
  let _vfs, store, pool = make_primary () in
  let rep =
    Mneme.Replica.attach store
      ~standbys:[ ("alpha", Vfs.create ()); ("beta", Vfs.create ()) ]
  in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:2 mirror;
  Mneme.Replica.corrupt_next_shipment rep ~name:"beta";
  commit_batch store pool ~batch:2 ~n:2 mirror;
  let by_name n = List.find (fun i -> i.Mneme.Replica.name = n) (Mneme.Replica.info rep) in
  Alcotest.(check bool) "beta fell out" false (by_name "beta").Mneme.Replica.healthy;
  (* Re-bootstrap: beta copies the primary afresh and rejoins the
     stream at the primary's LSN. *)
  Mneme.Replica.resync rep ~name:"beta";
  let beta = by_name "beta" in
  Alcotest.(check bool) "healthy after resync" true beta.Mneme.Replica.healthy;
  Alcotest.(check (option string)) "no reason once healthy" None beta.Mneme.Replica.reason;
  Alcotest.(check int) "caught up to the primary" 2 beta.Mneme.Replica.applied_lsn;
  check_contents "beta" (open_standby (Mneme.Replica.standby_vfs rep ~name:"beta")) !mirror;
  (* And it applies later batches again. *)
  commit_batch store pool ~batch:3 ~n:2 mirror;
  Alcotest.(check int) "applies again" 3 (by_name "beta").Mneme.Replica.applied_lsn;
  check_contents "beta" (open_standby (Mneme.Replica.standby_vfs rep ~name:"beta")) !mirror

let test_reason_tracks_health () =
  let _vfs, store, pool = make_primary () in
  let rep = Mneme.Replica.attach store ~standbys:[ ("alpha", Vfs.create ()) ] in
  let mirror = ref [] in
  let audit stage =
    List.iter
      (fun i ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: reason iff unhealthy (%s)" stage i.Mneme.Replica.name)
          (not i.Mneme.Replica.healthy)
          (i.Mneme.Replica.reason <> None))
      (Mneme.Replica.info rep)
  in
  audit "fresh";
  commit_batch store pool ~batch:1 ~n:2 mirror;
  audit "after commit";
  Mneme.Replica.pause rep ~name:"alpha";
  audit "paused";
  Mneme.Replica.corrupt_next_shipment rep ~name:"alpha";
  Mneme.Replica.resume rep ~name:"alpha";
  commit_batch store pool ~batch:2 ~n:2 mirror;
  audit "after rejection";
  Alcotest.(check bool) "rejection observed" false
    (List.hd (Mneme.Replica.info rep)).Mneme.Replica.healthy;
  Mneme.Replica.resync rep ~name:"alpha";
  audit "after resync"

(* Flip bits inside [file]'s extent [off, off+len) on [vfs] — on-disk
   rot, durable image included. *)
let rot vfs ~off ~len ~seed =
  Vfs.purge_os_cache vfs;
  Vfs.set_fault vfs
    (Vfs.Fault.flip_bits_on_read ~io:1 ~seed ~first:off ~last:(off + len - 1) ());
  let f = Vfs.open_file vfs file in
  ignore (Vfs.read f ~off ~len:1);
  Vfs.clear_fault vfs

let first_segment pool =
  match Mneme.Store.pool_segments pool with
  | (pseg, (off, len)) :: _ -> (pseg, off, len)
  | [] -> Alcotest.fail "no flushed segment"

let test_heal_segment_primary_rot () =
  let vfs, store, pool = make_primary () in
  let rep =
    Mneme.Replica.attach store
      ~standbys:[ ("alpha", Vfs.create ()); ("beta", Vfs.create ()) ]
  in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:3 mirror;
  let pseg, off, len = first_segment pool in
  rot vfs ~off ~len ~seed:11;
  Alcotest.(check bool) "scrub sees the rot" false (Mneme.Scrub.run store = []);
  (match Mneme.Replica.heal_segment rep ~store ~pool:"medium" ~pseg with
  | Ok src ->
    Alcotest.(check bool) "healed from a standby, not the rotten primary" true
      (src <> "primary")
  | Error e -> Alcotest.fail ("heal failed: " ^ e));
  Alcotest.(check (list reject)) "primary scrubs clean" [] (Mneme.Scrub.run store);
  Alcotest.(check bool) "segment CRC verifies again" true
    (Mneme.Store.verify_segment_crc pool pseg);
  check_contents "primary" store !mirror

let test_heal_segment_standby_rot () =
  let _vfs, store, pool = make_primary () in
  let rep = Mneme.Replica.attach store ~standbys:[ ("alpha", Vfs.create ()) ] in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:3 mirror;
  let pseg, off, len = first_segment pool in
  let svfs = Mneme.Replica.standby_vfs rep ~name:"alpha" in
  rot svfs ~off ~len ~seed:13;
  Alcotest.(check bool) "standby copy rotted" false
    (Mneme.Scrub.run (open_standby svfs) = []);
  (match Mneme.Replica.heal_segment rep ~store ~pool:"medium" ~pseg with
  | Ok src -> Alcotest.(check string) "healed from the primary's copy" "primary" src
  | Error e -> Alcotest.fail ("heal failed: " ^ e));
  (* The journaled rewrite shipped to the standby and converged it. *)
  let standby = open_standby svfs in
  Alcotest.(check (list reject)) "standby scrubs clean" [] (Mneme.Scrub.run standby);
  check_contents "alpha" standby !mirror

let test_heal_transit_corruption_falls_through () =
  let _vfs, store, pool = make_primary () in
  let rep =
    Mneme.Replica.attach store
      ~standbys:[ ("alpha", Vfs.create ()); ("beta", Vfs.create ()) ]
  in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:3 mirror;
  let pseg, off, len = first_segment pool in
  let bvfs = Mneme.Replica.standby_vfs rep ~name:"beta" in
  rot bvfs ~off ~len ~seed:17;
  (* The first transfer (from the primary) is damaged in transit; the
     envelope rejects it and the heal falls through to alpha's copy. *)
  Mneme.Replica.corrupt_next_transfer rep;
  (match Mneme.Replica.heal_segment rep ~store ~pool:"medium" ~pseg with
  | Ok src -> Alcotest.(check string) "fell through to the next source" "alpha" src
  | Error e -> Alcotest.fail ("heal failed: " ^ e));
  Alcotest.(check (list reject)) "beta converged anyway" []
    (Mneme.Scrub.run (open_standby bvfs))

let test_heal_no_verified_source () =
  let vfs, store, pool = make_primary () in
  let rep = Mneme.Replica.attach store ~standbys:[ ("alpha", Vfs.create ()) ] in
  let mirror = ref [] in
  commit_batch store pool ~batch:1 ~n:3 mirror;
  let pseg, off, len = first_segment pool in
  (* Every copy of the segment rots: there is nothing to heal from. *)
  rot vfs ~off ~len ~seed:19;
  rot (Mneme.Replica.standby_vfs rep ~name:"alpha") ~off ~len ~seed:23;
  (match Mneme.Replica.heal_segment rep ~store ~pool:"medium" ~pseg with
  | Ok src -> Alcotest.fail ("heal claimed success from " ^ src)
  | Error _ -> ());
  (* The mismatched payloads were never applied: the segment is still
     (detectably) corrupt, not silently overwritten. *)
  Alcotest.(check bool) "primary still corrupt" false
    (Mneme.Store.verify_segment_crc pool pseg)

let suite =
  [
    Alcotest.test_case "shipping keeps standbys identical" `Quick
      test_shipping_keeps_standbys_identical;
    Alcotest.test_case "pause lags, resume drains" `Quick test_pause_lags_resume_drains;
    Alcotest.test_case "corrupt shipment rejected" `Quick test_corrupt_shipment_rejected;
    Alcotest.test_case "promotion after primary crash" `Quick
      test_promotion_after_primary_crash;
    Alcotest.test_case "attach validation" `Quick test_attach_validation;
    Alcotest.test_case "resync rejoins the stream" `Quick test_resync_rejoins_stream;
    Alcotest.test_case "reason tracks health" `Quick test_reason_tracks_health;
    Alcotest.test_case "heal primary rot from a standby" `Quick test_heal_segment_primary_rot;
    Alcotest.test_case "heal standby rot from the primary" `Quick
      test_heal_segment_standby_rot;
    Alcotest.test_case "transit corruption falls through" `Quick
      test_heal_transit_corruption_falls_through;
    Alcotest.test_case "no verified source leaves rot in place" `Quick
      test_heal_no_verified_source;
  ]
