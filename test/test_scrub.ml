(* Budgeted background scrubbing: census, incremental verification,
   damage detection, and peer-sourced repair. *)

let file = "scrub.mneme"

let build_store vfs =
  let store = Mneme.Store.create vfs file in
  let pools =
    List.map
      (fun policy ->
        let pool = Mneme.Store.add_pool store policy in
        Mneme.Store.attach_buffer pool
          (Mneme.Buffer_pool.create ~name:policy.Mneme.Policy.name ~capacity:500_000 ());
        pool)
      [ Mneme.Policy.small; Mneme.Policy.medium; Mneme.Policy.large ]
  in
  let small, medium, large =
    match pools with [ s; m; l ] -> (s, m, l) | _ -> assert false
  in
  for i = 0 to 99 do
    if i mod 3 = 0 then ignore (Mneme.Store.allocate small (Bytes.make (i mod 12) 'x'))
    else if i mod 3 = 1 then ignore (Mneme.Store.allocate medium (Bytes.make (100 + i) 'y'))
    else ignore (Mneme.Store.allocate large (Bytes.make (5000 + i) 'z'))
  done;
  Mneme.Store.finalize store;
  store

let census store =
  Mneme.Store.pools store
  |> List.concat_map (fun pool ->
         List.map (fun (id, extent) -> (Mneme.Store.pool_name pool, id, extent))
           (Mneme.Store.pool_segments pool))

(* On-disk rot: flip one bit inside the extent, durable image included. *)
let rot vfs ~off ~len ~seed =
  Vfs.purge_os_cache vfs;
  Vfs.set_fault vfs
    (Vfs.Fault.flip_bits_on_read ~io:1 ~seed ~first:off ~last:(off + len - 1) ());
  let f = Vfs.open_file vfs file in
  ignore (Vfs.read f ~off ~len:1);
  Vfs.clear_fault vfs

let test_census_and_full_pass () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  let total = List.length (census store) in
  Alcotest.(check bool) "several segments to walk" true (total > 3);
  let s = Mneme.Scrub.create store in
  let p0 = Mneme.Scrub.progress s in
  Alcotest.(check int) "census total" total p0.Mneme.Scrub.total;
  Alcotest.(check int) "nothing scanned yet" 0 p0.Mneme.Scrub.scanned;
  Alcotest.(check bool) "not complete" false p0.Mneme.Scrub.complete;
  let p = Mneme.Scrub.step s in
  Alcotest.(check int) "one unbudgeted step scans everything" total p.Mneme.Scrub.scanned;
  Alcotest.(check bool) "complete" true p.Mneme.Scrub.complete;
  Alcotest.(check bool) "bytes accounted" true (p.Mneme.Scrub.scanned_bytes > 0);
  Alcotest.(check (list reject)) "clean store, empty worklist" [] (Mneme.Scrub.damages s);
  (* A completed pass is a no-op until restarted. *)
  let p' = Mneme.Scrub.step s in
  Alcotest.(check int) "no-op once complete" total p'.Mneme.Scrub.scanned

let test_budgeted_resumable_walk () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  let total = List.length (census store) in
  let s = Mneme.Scrub.create store in
  let steps = ref 0 in
  while not (Mneme.Scrub.progress s).Mneme.Scrub.complete do
    let before = (Mneme.Scrub.progress s).Mneme.Scrub.scanned in
    let p = Mneme.Scrub.step ~max_segments:2 s in
    incr steps;
    Alcotest.(check bool) "every step makes progress" true (p.Mneme.Scrub.scanned > before);
    Alcotest.(check bool) "segment budget respected" true (p.Mneme.Scrub.scanned - before <= 2)
  done;
  Alcotest.(check int) "steps cover the census" ((total + 1) / 2) !steps;
  (* A byte budget always verifies at least one segment, so tiny budgets
     still terminate. *)
  let s2 = Mneme.Scrub.create store in
  let guard = ref 0 in
  while not (Mneme.Scrub.progress s2).Mneme.Scrub.complete && !guard < 10_000 do
    ignore (Mneme.Scrub.step ~max_bytes:1 s2);
    incr guard
  done;
  Alcotest.(check int) "1-byte budget = one segment per step" total !guard;
  Alcotest.(check bool) "non-positive budget rejected" true
    (match Mneme.Scrub.step ~max_segments:0 (Mneme.Scrub.create store) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_detects_rot_in_walk_order () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  let all = census store in
  (* Rot the third segment of the walk. *)
  let pname, pseg, (off, len) = List.nth all 2 in
  rot vfs ~off ~len ~seed:5;
  let damages = Mneme.Scrub.run store in
  (match damages with
  | [ d ] ->
    Alcotest.(check string) "pool" pname d.Mneme.Scrub.pool;
    Alcotest.(check int) "pseg" pseg d.Mneme.Scrub.pseg;
    Alcotest.(check int) "off" off d.Mneme.Scrub.off;
    Alcotest.(check int) "len" len d.Mneme.Scrub.len;
    Alcotest.(check (option (of_pp (fun fmt d -> Format.fprintf fmt "%d" d.Mneme.Scrub.crc))))
      "matches damage_of_segment" (Some d)
      (Mneme.Scrub.damage_of_segment store ~pool:pname ~pseg)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 damage, got %d" (List.length l)));
  (* The buffered copy may still be clean: scrubbing must re-verify from
     disk, and a restart clears the worklist for the next pass. *)
  let s = Mneme.Scrub.create store in
  ignore (Mneme.Scrub.step s);
  Alcotest.(check int) "worklist carries the damage" 1 (List.length (Mneme.Scrub.damages s));
  Mneme.Scrub.restart s;
  Alcotest.(check (list reject)) "restart clears the worklist" [] (Mneme.Scrub.damages s);
  Alcotest.(check int) "fresh pass finds it again" 1
    (List.length
       (let _ = Mneme.Scrub.step s in
        Mneme.Scrub.damages s))

let test_damage_of_segment_unknown () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  Alcotest.(check bool) "unknown pool" true
    (Mneme.Scrub.damage_of_segment store ~pool:"nope" ~pseg:0 = None);
  Alcotest.(check bool) "unknown pseg" true
    (Mneme.Scrub.damage_of_segment store ~pool:"medium" ~pseg:99_999 = None)

let test_verified_bytes () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  let pname, pseg, (off, len) = List.nth (census store) 1 in
  let d = Option.get (Mneme.Scrub.damage_of_segment store ~pool:pname ~pseg) in
  (* A healthy peer copy verifies. *)
  let peer = Vfs.create () in
  Vfs.copy_file vfs file ~into:peer;
  (match Mneme.Scrub.verified_bytes peer ~file d with
  | Some b -> Alcotest.(check int) "extent length" len (Bytes.length b)
  | None -> Alcotest.fail "healthy peer rejected");
  (* A rotten peer, a short file and a missing file do not. *)
  rot peer ~off ~len ~seed:3;
  Alcotest.(check bool) "rotten peer rejected" true
    (Mneme.Scrub.verified_bytes peer ~file d = None);
  let short = Vfs.create () in
  ignore (Vfs.append (Vfs.open_file short file) (Bytes.make (off + 1) 'x'));
  Alcotest.(check bool) "short peer rejected" true
    (Mneme.Scrub.verified_bytes short ~file d = None);
  Alcotest.(check bool) "missing peer rejected" true
    (Mneme.Scrub.verified_bytes (Vfs.create ()) ~file d = None)

let test_heal_from_peer () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  let peer = Vfs.create () in
  Vfs.copy_file vfs file ~into:peer;
  let _, _, (off, len) = List.nth (census store) 0 in
  rot vfs ~off ~len ~seed:7;
  let d = match Mneme.Scrub.run store with [ d ] -> d | _ -> Alcotest.fail "rot not found" in
  (* A rotten source is skipped, the healthy one is used. *)
  let rotten = Vfs.create () in
  Vfs.copy_file vfs file ~into:rotten;
  (match
     Mneme.Scrub.heal store ~sources:[ ("rotten", rotten); ("peer", peer) ] d
   with
  | Ok src -> Alcotest.(check string) "healed from the verified source" "peer" src
  | Error e -> Alcotest.fail ("heal failed: " ^ e));
  Alcotest.(check (list reject)) "store scrubs clean after heal" [] (Mneme.Scrub.run store);
  (* With no verified source the segment is left untouched. *)
  rot vfs ~off ~len ~seed:11;
  let d2 = match Mneme.Scrub.run store with [ d ] -> d | _ -> Alcotest.fail "rot not found" in
  (match Mneme.Scrub.heal store ~sources:[ ("rotten", rotten) ] d2 with
  | Ok src -> Alcotest.fail ("heal claimed success from " ^ src)
  | Error _ -> ());
  Alcotest.(check int) "still damaged" 1 (List.length (Mneme.Scrub.run store))

let test_repair_segment_validation () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  let medium = Mneme.Store.pool store "medium" in
  let pseg, (_, len) =
    match Mneme.Store.pool_segments medium with e :: _ -> e | [] -> Alcotest.fail "no pseg"
  in
  Alcotest.(check bool) "unknown pseg is an Error" true
    (Result.is_error (Mneme.Store.repair_segment medium ~pseg:99_999 (Bytes.create 8)));
  Alcotest.(check bool) "wrong length is an Error" true
    (Result.is_error (Mneme.Store.repair_segment medium ~pseg (Bytes.create (len + 1))));
  Alcotest.(check bool) "wrong CRC is never applied" true
    (Result.is_error (Mneme.Store.repair_segment medium ~pseg (Bytes.make len '\255')));
  Alcotest.(check bool) "store still clean" true (Mneme.Scrub.run store = [])

let test_stale_damage_record () =
  let vfs = Vfs.create () in
  let store = build_store vfs in
  let pname, pseg, _ = List.nth (census store) 0 in
  let d = Option.get (Mneme.Scrub.damage_of_segment store ~pool:pname ~pseg) in
  let stale = { d with Mneme.Scrub.crc = d.Mneme.Scrub.crc + 1 } in
  let peer = Vfs.create () in
  Vfs.copy_file vfs file ~into:peer;
  match Mneme.Scrub.heal store ~sources:[ ("peer", peer) ] stale with
  | Ok src -> Alcotest.fail ("stale record healed from " ^ src)
  | Error e -> Alcotest.(check bool) "stale record named" true (Str_find.contains e "stale")

let suite =
  [
    Alcotest.test_case "census and full pass" `Quick test_census_and_full_pass;
    Alcotest.test_case "budgeted resumable walk" `Quick test_budgeted_resumable_walk;
    Alcotest.test_case "detects rot in walk order" `Quick test_detects_rot_in_walk_order;
    Alcotest.test_case "damage_of_segment unknown" `Quick test_damage_of_segment_unknown;
    Alcotest.test_case "verified bytes" `Quick test_verified_bytes;
    Alcotest.test_case "heal from peer" `Quick test_heal_from_peer;
    Alcotest.test_case "repair segment validation" `Quick test_repair_segment_validation;
    Alcotest.test_case "stale damage record" `Quick test_stale_damage_record;
  ]
