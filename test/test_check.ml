(* Store integrity checking. *)

let build_store () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "chk.mneme" in
  let pools =
    List.map
      (fun policy ->
        let pool = Mneme.Store.add_pool store policy in
        Mneme.Store.attach_buffer pool
          (Mneme.Buffer_pool.create ~name:policy.Mneme.Policy.name ~capacity:500_000 ());
        pool)
      [ Mneme.Policy.small; Mneme.Policy.medium; Mneme.Policy.large ]
  in
  (vfs, store, pools)

let populate store pools =
  let small, medium, large =
    match pools with [ s; m; l ] -> (s, m, l) | _ -> assert false
  in
  let oids = ref [] in
  for i = 0 to 299 do
    let oid =
      if i mod 3 = 0 then Mneme.Store.allocate small (Bytes.make (i mod 12) 'x')
      else if i mod 3 = 1 then Mneme.Store.allocate medium (Bytes.make (100 + i) 'y')
      else Mneme.Store.allocate large (Bytes.make (5000 + i) 'z')
    in
    oids := oid :: !oids
  done;
  Mneme.Store.finalize store;
  List.rev !oids

let test_clean_store () =
  let _, store, pools = build_store () in
  ignore (populate store pools);
  let report = Mneme.Check.run store in
  Alcotest.(check bool)
    (Format.asprintf "%a" Mneme.Check.pp_report report)
    true (Mneme.Check.ok report);
  Alcotest.(check int) "objects" 300 report.Mneme.Check.objects_seen;
  Alcotest.(check int) "pools" 3 report.Mneme.Check.pools_seen;
  Alcotest.(check bool) "segments seen" true (report.Mneme.Check.psegs_seen > 10)

let test_clean_after_updates () =
  let _, store, pools = build_store () in
  let oids = populate store pools in
  List.iteri
    (fun i oid ->
      if i mod 7 = 0 then Mneme.Store.delete store oid
      else if i mod 3 = 2 && i mod 11 = 0 then
        (* grow a large object, forcing relocation *)
        Mneme.Store.modify store oid (Bytes.make 9000 'm'))
    oids;
  Mneme.Store.finalize store;
  let report = Mneme.Check.run store in
  Alcotest.(check bool)
    (Format.asprintf "%a" Mneme.Check.pp_report report)
    true (Mneme.Check.ok report)

let test_clean_after_reopen () =
  let vfs, store, pools = build_store () in
  ignore (populate store pools);
  let store2 = Mneme.Store.open_existing vfs "chk.mneme" in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool store2 name)
        (Mneme.Buffer_pool.create ~name ~capacity:500_000 ()))
    [ "small"; "medium"; "large" ];
  Alcotest.(check bool) "clean" true (Mneme.Check.ok (Mneme.Check.run store2))

let test_detects_corrupted_directory () =
  let vfs, store, pools = build_store () in
  ignore (populate store pools);
  (* Smash a medium segment's directory count on disk. *)
  let medium = Mneme.Store.pool store "medium" in
  (match Mneme.Store.pool_segments medium with
  | (_, (off, _)) :: _ ->
    let f = Vfs.open_file vfs "chk.mneme" in
    Vfs.write f ~off (Bytes.of_string "\xff\xff")
  | [] -> Alcotest.fail "no medium segments");
  (* A fresh handle (no warm buffers) must notice. *)
  let store2 = Mneme.Store.open_existing vfs "chk.mneme" in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool store2 name)
        (Mneme.Buffer_pool.create ~name ~capacity:500_000 ()))
    [ "small"; "medium"; "large" ];
  let report = Mneme.Check.run store2 in
  Alcotest.(check bool) "problems found" false (Mneme.Check.ok report)

let reopen vfs =
  let store = Mneme.Store.open_existing vfs "chk.mneme" in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool store name)
        (Mneme.Buffer_pool.create ~name ~capacity:500_000 ()))
    [ "small"; "medium"; "large" ];
  store

let test_overlapping_directory_entries () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "chk.mneme" in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  let buffer = Mneme.Buffer_pool.create ~name:"medium" ~capacity:500_000 () in
  Mneme.Store.attach_buffer pool buffer;
  for i = 0 to 19 do
    ignore (Mneme.Store.allocate pool (Bytes.make (100 + i) 'y'))
  done;
  Mneme.Store.finalize store;
  (* Find a packed segment holding at least two objects and stretch the
     lowest entry's recorded length over its neighbour — the classic
     overlapping-directory corruption.  The damage is planted in the
     resident copy so the directory parser (not the CRC pass) is what
     has to catch it. *)
  let f = Vfs.open_file vfs "chk.mneme" in
  let pseg, seg =
    let rec pick = function
      | [] -> Alcotest.fail "no medium segment with two objects"
      | (id, (off, len)) :: rest -> (
        match Mneme.Store.parse_packed_directory (Vfs.read f ~off ~len) with
        | entries when List.length entries >= 2 -> (id, Vfs.read f ~off ~len)
        | _ | (exception Mneme.Store.Corrupt _) -> pick rest)
    in
    pick (Mneme.Store.pool_segments pool)
  in
  let entries = Mneme.Store.parse_packed_directory seg in
  let indexed = List.mapi (fun i e -> (i, e)) entries in
  let sorted = List.sort (fun (_, (_, a, _)) (_, (_, b, _)) -> compare a b) indexed in
  let (i, (_, first_off, _)), (_, (_, second_off, _)) =
    match sorted with a :: b :: _ -> (a, b) | _ -> assert false
  in
  let patch = Buffer.create 4 in
  Util.Bin.buf_u32 patch (second_off - first_off + 1);
  Bytes.blit (Buffer.to_bytes patch) 0 seg (2 + (i * 12) + 8) 4;
  ignore (Mneme.Store.segment_raw pool pseg);
  Mneme.Buffer_pool.update buffer ~pseg seg;
  let report = Mneme.Check.run store in
  Alcotest.(check bool) "problems reported" false (Mneme.Check.ok report);
  Alcotest.(check bool) "overlap named" true
    (List.exists
       (fun p -> Str_find.contains p.Mneme.Check.what "overlaps")
       report.Mneme.Check.problems)

let test_truncated_final_segment () =
  let vfs, store, pools = build_store () in
  ignore (populate store pools);
  let last_end =
    List.fold_left
      (fun acc pool ->
        List.fold_left
          (fun acc (_, (off, len)) -> max acc (off + len))
          acc (Mneme.Store.pool_segments pool))
      0 pools
  in
  let f = Vfs.open_file vfs "chk.mneme" in
  Vfs.truncate f (last_end - 1);
  (* The warm handle's check walks extents that now reach past EOF: it
     must report them, never raise. *)
  let report = Mneme.Check.run store in
  Alcotest.(check bool) "truncation reported" false (Mneme.Check.ok report);
  Alcotest.(check bool) "EOF violation named" true
    (List.exists
       (fun p -> Str_find.contains p.Mneme.Check.what "outside file")
       report.Mneme.Check.problems);
  (* A cold reopen either refuses cleanly or checks without raising. *)
  match reopen vfs with
  | exception Mneme.Store.Corrupt _ -> ()
  | exception Invalid_argument _ -> ()
  | store2 ->
    Alcotest.(check bool) "cold check reports too" false
      (Mneme.Check.ok (Mneme.Check.run store2))

let test_pp_report () =
  let _, store, pools = build_store () in
  ignore (populate store pools);
  let s = Format.asprintf "%a" Mneme.Check.pp_report (Mneme.Check.run store) in
  Alcotest.(check bool) "mentions clean" true (Str_find.contains s "clean")

let test_object_check () =
  (* Format-aware fsck: a bit flip inside a stored record's skip table
     is detected by the payload checker and reported, never raised —
     while the scan path still serves the original postings. *)
  let _, store, pools = build_store () in
  let medium = List.nth pools 1 in
  let record = Inquery.Postings.encode (List.init 300 (fun i -> (i * 2, [ 0 ]))) in
  let oid = Mneme.Store.allocate medium record in
  Mneme.Store.finalize store;
  let clean = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
  Alcotest.(check bool) "valid record passes" true (Mneme.Check.ok clean);
  let off =
    match Inquery.Postings.skip_table_region record with
    | Some (off, _) -> off
    | None -> Alcotest.fail "expected a skip table"
  in
  let bad = Bytes.copy record in
  Bytes.set bad off (Char.chr (Char.code (Bytes.get bad off) lxor 1));
  Mneme.Store.modify store oid bad;
  Mneme.Store.finalize store;
  let report = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
  Alcotest.(check bool) "skip-table corruption flagged" false (Mneme.Check.ok report);
  match Mneme.Store.get_opt store oid with
  | Some payload ->
    Alcotest.(check bool) "scan path still readable" true
      (Inquery.Postings.decode payload = Inquery.Postings.decode record)
  | None -> Alcotest.fail "object unreadable"

let test_object_check_garbage () =
  let _, store, pools = build_store () in
  let medium = List.nth pools 1 in
  ignore (Mneme.Store.allocate medium (Bytes.make 33 '\xff'));
  Mneme.Store.finalize store;
  let report = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
  Alcotest.(check bool) "undecodable payload flagged" false (Mneme.Check.ok report)

let suite =
  [
    Alcotest.test_case "clean store" `Quick test_clean_store;
    Alcotest.test_case "object check (skip-table bit flip)" `Quick test_object_check;
    Alcotest.test_case "object check (garbage payload)" `Quick test_object_check_garbage;
    Alcotest.test_case "clean after updates" `Quick test_clean_after_updates;
    Alcotest.test_case "clean after reopen" `Quick test_clean_after_reopen;
    Alcotest.test_case "detects corruption" `Quick test_detects_corrupted_directory;
    Alcotest.test_case "overlapping directory entries" `Quick
      test_overlapping_directory_entries;
    Alcotest.test_case "truncated final segment" `Quick test_truncated_final_segment;
    Alcotest.test_case "pp report" `Quick test_pp_report;
  ]
