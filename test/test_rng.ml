(* Deterministic RNG: reproducibility, bounds, distribution sanity. *)

let test_determinism () =
  let a = Util.Rng.create ~seed:123 and b = Util.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Util.Rng.create ~seed:1 and b = Util.Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.bits64 a = Util.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_vs_split () =
  let a = Util.Rng.create ~seed:9 in
  let c = Util.Rng.copy a in
  Alcotest.(check int64) "copy tracks" (Util.Rng.bits64 a) (Util.Rng.bits64 c);
  let a = Util.Rng.create ~seed:9 in
  let s = Util.Rng.split a in
  Alcotest.(check bool) "split independent" true (Util.Rng.bits64 a <> Util.Rng.bits64 s)

let test_int_bounds () =
  let rng = Util.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int rng 0))

let test_int_covers_all_values () =
  let rng = Util.Rng.create ~seed:11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Util.Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values seen" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Util.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let rng = Util.Rng.create ~seed:21 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Util.Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_gaussian_moments () =
  let rng = Util.Rng.create ~seed:5 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Util.Rng.gaussian rng ~mean:10.0 ~stddev:2.0) in
  let mean = Util.Stats.mean xs in
  let sd = Util.Stats.stddev xs in
  Alcotest.(check bool) "mean" true (Float.abs (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev" true (Float.abs (sd -. 2.0) < 0.1)

let test_lognormal_positive () =
  let rng = Util.Rng.create ~seed:6 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Util.Rng.lognormal rng ~mu:2.0 ~sigma:1.0 > 0.0)
  done

let test_shuffle_is_permutation () =
  let rng = Util.Rng.create ~seed:8 in
  let a = Array.init 50 Fun.id in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 50 Fun.id)

let test_choose () =
  let rng = Util.Rng.create ~seed:10 in
  for _ = 1 to 100 do
    let v = Util.Rng.choose rng [| 'a'; 'b'; 'c' |] in
    Alcotest.(check bool) "member" true (List.mem v [ 'a'; 'b'; 'c' ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Util.Rng.choose rng [||]))

let test_bool_balanced () =
  let rng = Util.Rng.create ~seed:12 in
  let trues = ref 0 in
  for _ = 1 to 10000 do
    if Util.Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "balanced" true (!trues > 4700 && !trues < 5300)

(* Splitting must yield genuinely disjoint streams: a parallel worker
   seeded from [split] must never replay another worker's draws. *)
let prop_split_streams_disjoint =
  QCheck.Test.make ~name:"split streams never overlap in first 10k draws" ~count:25
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let parent = Util.Rng.create ~seed in
      let child = Util.Rng.split parent in
      let draws = 10_000 in
      let seen = Hashtbl.create (2 * draws) in
      for _ = 1 to draws do
        Hashtbl.replace seen (Util.Rng.bits64 parent) ()
      done;
      let overlap = ref 0 in
      for _ = 1 to draws do
        if Hashtbl.mem seen (Util.Rng.bits64 child) then incr overlap
      done;
      !overlap = 0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy vs split" `Quick test_copy_vs_split;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    QCheck_alcotest.to_alcotest prop_split_streams_disjoint;
  ]
