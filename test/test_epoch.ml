(* Epoch-versioned snapshot isolation: crash-safe root publication
   (every physical I/O a crash point), pinned-epoch reads surviving
   churn and gc, statistics-drift audits, and cross-domain determinism
   of pinned rankings.  [REPRO_TEST_DOMAINS] (used by CI) pins the
   domain counts the multi-domain case exercises. *)

let domain_counts =
  match Sys.getenv_opt "REPRO_TEST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d > 0 -> [ d ]
    | _ -> [ 1; 2; 4 ])
  | None -> [ 1; 2; 4 ]

let fingerprint ranked =
  List.map
    (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score))
    ranked

let queries =
  let t r = Collections.Synth.core_term ~rank:r in
  [ t 1; Printf.sprintf "#sum( %s %s %s )" (t 1) (t 2) (t 3) ]

(* --- crash-point enumeration (the tentpole audit) ------------------ *)

let test_every_epoch_point_recovers_whole () =
  let o = Core.Torture.run_epoch ~seed:42 ~docs:6 () in
  Alcotest.(check bool) "workload performs I/O" true (o.Core.Torture.e_points > 30);
  Alcotest.(check (list (pair int string)))
    "no invariant violations" [] o.Core.Torture.e_problems;
  Alcotest.(check int) "every point audited" o.Core.Torture.e_points
    (o.Core.Torture.e_opened + o.Core.Torture.e_unopenable);
  Alcotest.(check bool) "most crash images open" true
    (o.Core.Torture.e_opened > o.Core.Torture.e_unopenable);
  (* Crashes before the commit record seals leave the old epoch ... *)
  Alcotest.(check bool) "some roots wholly old" true (o.Core.Torture.e_wholly_old > 0);
  (* ... crashes after it leave the new one — never a mix. *)
  Alcotest.(check bool) "some roots wholly new" true (o.Core.Torture.e_wholly_new > 0);
  Alcotest.(check bool) "some logs replayed" true (o.Core.Torture.e_replayed > 0);
  Alcotest.(check bool) "some logs discarded" true (o.Core.Torture.e_discarded > 0);
  Alcotest.(check bool) "golden gc reclaimed retired epochs" true
    (o.Core.Torture.e_reclaimed > 0)

let prop_random_epoch_crash_point_whole =
  let plans = Hashtbl.create 4 in
  let plan_for seed =
    match Hashtbl.find_opt plans seed with
    | Some p -> p
    | None ->
      let p = Core.Torture.prepare_epoch ~seed ~docs:5 () in
      Hashtbl.add plans seed p;
      p
  in
  QCheck.Test.make ~name:"random epoch workload, random crash point recovers whole" ~count:30
    QCheck.(pair (int_range 1 3) (int_range 0 999))
    (fun (seed, frac) ->
      let plan = plan_for seed in
      let n = Core.Torture.epoch_points plan in
      let k = 1 + (frac * n / 1000) in
      let r = Core.Torture.run_epoch_point plan k in
      r.Core.Torture.problems = [])

(* --- statistics drift under randomized churn ----------------------- *)

let churn_model =
  Collections.Docmodel.make ~name:"churn" ~n_docs:60 ~core_vocab:150 ~mean_doc_len:25.0
    ~hapax_prob:0.05 ~seed:7 ()

let test_churn_statistics_stay_consistent () =
  let rng = Random.State.make [| 7 |] in
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme vfs ~file:"churn.mneme" () in
  let twin = Core.Live_index.create_btree (Vfs.create ()) ~file:"churn.btree" () in
  let alive = ref [] in
  Seq.iter
    (fun doc ->
      let text = Collections.Synth.document_text doc in
      let id = Core.Live_index.add_document live ~doc_id:doc.Collections.Synth.id text in
      ignore (Core.Live_index.add_document twin ~doc_id:doc.Collections.Synth.id text);
      alive := id :: !alive;
      if Random.State.int rng 3 = 0 then begin
        let l = !alive in
        let victim = List.nth l (Random.State.int rng (List.length l)) in
        let a = Core.Live_index.delete_document live victim in
        let b = Core.Live_index.delete_document twin victim in
        Alcotest.(check bool) "backends agree on existence" a b;
        if a then alive := List.filter (fun d -> d <> victim) !alive
      end)
    (Collections.Synth.documents churn_model);
  (* The drift audit deep-validates every record and cross-checks df/cf
     through Catalog.verify_records, the aggregate invariants, and (on
     Mneme) the published snapshot against the live tables. *)
  Alcotest.(check (list (pair string string)))
    "mneme audit clean" [] (Core.Live_index.audit live);
  Alcotest.(check (list (pair string string)))
    "btree audit clean" [] (Core.Live_index.audit twin);
  Alcotest.(check bool) "directories agree across backends" true
    (Core.Live_index.directory live = Core.Live_index.directory twin);
  Alcotest.(check int) "document counts agree" (Core.Live_index.document_count twin)
    (Core.Live_index.document_count live);
  ignore (Core.Live_index.gc live);
  Alcotest.(check int) "nothing stranded after gc" 0 (Core.Live_index.stranded_bytes live);
  Core.Live_index.flush live;
  let store = Option.get (Core.Live_index.mneme_store live) in
  let rep = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
  Alcotest.(check bool)
    (Format.asprintf "%a" Mneme.Check.pp_report rep)
    true (Mneme.Check.ok rep)

(* --- pinned readers under interleaved mutation (all presets) ------- *)

let preset_names = [ "cacm"; "legal"; "tipster1"; "tipster" ]

let preset_docs =
  let tbl = Hashtbl.create 4 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some d -> d
    | None ->
      let model = Collections.Presets.find ~scale:0.01 name in
      let d = Array.of_seq (Seq.take 10 (Collections.Synth.documents model)) in
      Hashtbl.add tbl name d;
      d

let prop_pinned_rankings_survive_churn =
  QCheck.Test.make ~name:"pinned rankings survive churn and gc on every preset" ~count:24
    QCheck.(pair (int_range 0 3) (int_range 0 9999))
    (fun (pi, seed) ->
      let docs = preset_docs (List.nth preset_names pi) in
      let rng = Random.State.make [| seed |] in
      let live = Core.Live_index.create_mneme (Vfs.create ()) ~file:"pin.mneme" () in
      let twin = Core.Live_index.create_btree (Vfs.create ()) ~file:"pin.btree" () in
      let pins = ref [] in
      let alive = ref [] in
      let ok = ref true in
      let check b = if not b then ok := false in
      Array.iter
        (fun doc ->
          let text = Collections.Synth.document_text doc in
          ignore (Core.Live_index.add_document live ~doc_id:doc.Collections.Synth.id text);
          ignore (Core.Live_index.add_document twin ~doc_id:doc.Collections.Synth.id text);
          alive := doc.Collections.Synth.id :: !alive;
          (if Random.State.int rng 3 = 0 then
             let l = !alive in
             let victim = List.nth l (Random.State.int rng (List.length l)) in
             check
               (Core.Live_index.delete_document live victim
               = Core.Live_index.delete_document twin victim);
             alive := List.filter (fun d -> d <> victim) !alive);
          (* A pin captures the rankings the live view serves right now. *)
          if Random.State.int rng 2 = 0 then begin
            let p = Core.Live_index.pin live in
            let fp =
              List.map (fun q -> fingerprint (Core.Live_index.search ~top_k:10 live q)) queries
            in
            pins := (p, fp) :: !pins
          end;
          if Random.State.int rng 4 = 0 then ignore (Core.Live_index.gc live);
          (* The unpinned view always reflects the latest state: it
             must rank exactly like the B-tree twin fed the same ops. *)
          List.iter
            (fun q ->
              check
                (fingerprint (Core.Live_index.search ~top_k:10 live q)
                = fingerprint (Core.Live_index.search ~top_k:10 twin q)))
            queries)
        docs;
      (* Every pinned reader still ranks bit-identically, no matter the
         churn and gc that followed its pin. *)
      List.iter
        (fun (p, fp) ->
          let now =
            List.map
              (fun q -> fingerprint (Core.Live_index.search_pinned ~top_k:10 live p q))
              queries
          in
          check (fp = now))
        !pins;
      (* Pinned evaluation released its segment reservations. *)
      let store = Option.get (Core.Live_index.mneme_store live) in
      List.iter
        (fun pool ->
          match Mneme.Store.buffer pool with
          | Some b -> check (Mneme.Buffer_pool.pinned_segments b = [])
          | None -> ())
        (Mneme.Store.pools store);
      List.iter (fun (p, _) -> Core.Live_index.release live p) !pins;
      ignore (Core.Live_index.gc live);
      check (Core.Live_index.stranded_bytes live = 0);
      check (Core.Live_index.audit live = []);
      !ok)

(* --- gc never frees what a pin can reach --------------------------- *)

let test_gc_respects_pins () =
  let live = Core.Live_index.create_mneme (Vfs.create ()) ~file:"gcpin.mneme" () in
  ignore (Core.Live_index.add_document live "alpha beta gamma");
  let p = Core.Live_index.pin live in
  let golden = fingerprint (Core.Live_index.search ~top_k:10 live "alpha") in
  ignore (Core.Live_index.add_document live "alpha delta");
  ignore (Core.Live_index.delete_document live 0);
  Alcotest.(check (list int)) "pin registered" [ 1 ] (Core.Live_index.pinned_epochs live);
  let s1 = Core.Live_index.gc live in
  Alcotest.(check bool) "gc retained the pinned epoch's objects" true
    (s1.Mneme.Epoch.retained_objects > 0);
  Alcotest.(check bool) "pinned search unchanged after gc" true
    (fingerprint (Core.Live_index.search_pinned ~top_k:10 live p "alpha") = golden);
  Core.Live_index.release live p;
  Alcotest.(check bool) "double release refused" true
    (match Core.Live_index.release live p with
    | () -> false
    | exception Invalid_argument _ -> true);
  let s2 = Core.Live_index.gc live in
  Alcotest.(check bool) "released objects reclaimed" true
    (s2.Mneme.Epoch.reclaimed_objects > 0);
  Alcotest.(check int) "nothing stranded" 0 (Core.Live_index.stranded_bytes live)

(* --- reopen from the published root -------------------------------- *)

let test_reopen_serves_published_epoch () =
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme ~journal:"ro.log" vfs ~file:"ro.mneme" () in
  let docs = Array.of_seq (Seq.take 8 (Collections.Synth.documents churn_model)) in
  Array.iter
    (fun doc ->
      ignore
        (Core.Live_index.add_document live ~doc_id:doc.Collections.Synth.id
           (Collections.Synth.document_text doc)))
    docs;
  ignore (Core.Live_index.delete_document live 1);
  let golden = List.map (fun q -> fingerprint (Core.Live_index.search ~top_k:10 live q)) queries in
  let dir = Core.Live_index.directory live in
  let e = Core.Live_index.epoch live in
  (* A fresh session rebuilt from the sealed root serves the identical
     epoch: same directory, same rankings, same epoch number. *)
  let re = Core.Live_index.open_mneme ~journal:"ro.log" vfs ~file:"ro.mneme" () in
  Alcotest.(check int) "epoch preserved" e (Core.Live_index.epoch re);
  Alcotest.(check bool) "directory preserved" true (Core.Live_index.directory re = dir);
  Alcotest.(check bool) "rankings preserved" true
    (List.map (fun q -> fingerprint (Core.Live_index.search ~top_k:10 re q)) queries = golden);
  (* And it can keep mutating: the next epoch publishes past [e]. *)
  ignore (Core.Live_index.add_document re "omega omicron");
  Alcotest.(check int) "mutation continues the epoch sequence" (e + 1)
    (Core.Live_index.epoch re);
  Alcotest.(check (list (pair string string))) "audit clean" [] (Core.Live_index.audit re)

(* --- pinned rankings are domain-independent ------------------------ *)

let test_pinned_rankings_identical_across_domains () =
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme ~journal:"dom.log" vfs ~file:"dom.mneme" () in
  let docs = Array.of_seq (Seq.take 10 (Collections.Synth.documents churn_model)) in
  Array.iter
    (fun doc ->
      ignore
        (Core.Live_index.add_document live ~doc_id:doc.Collections.Synth.id
           (Collections.Synth.document_text doc)))
    docs;
  ignore (Core.Live_index.delete_document live 2);
  let golden = List.map (fun q -> fingerprint (Core.Live_index.search ~top_k:10 live q)) queries in
  List.iter
    (fun d ->
      (* Per-domain sessions, each on a private copy of the image —
         the same discipline Parallel uses for unversioned serving. *)
      let workers =
        List.init d (fun _ ->
            Domain.spawn (fun () ->
                let dvfs = Vfs.create () in
                Vfs.copy_file vfs "dom.mneme" ~into:dvfs;
                Vfs.copy_file vfs "dom.log" ~into:dvfs;
                let li = Core.Live_index.open_mneme ~journal:"dom.log" dvfs ~file:"dom.mneme" () in
                let p = Core.Live_index.pin li in
                let fp =
                  List.map
                    (fun q -> fingerprint (Core.Live_index.search_pinned ~top_k:10 li p q))
                    queries
                in
                Core.Live_index.release li p;
                fp))
      in
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "%d-domain pinned ranking matches golden" d)
            true
            (Domain.join w = golden))
        workers)
    domain_counts

let suite =
  [
    Alcotest.test_case "every epoch crash point recovers whole" `Quick
      test_every_epoch_point_recovers_whole;
    QCheck_alcotest.to_alcotest prop_random_epoch_crash_point_whole;
    Alcotest.test_case "churn statistics stay consistent" `Quick
      test_churn_statistics_stay_consistent;
    QCheck_alcotest.to_alcotest prop_pinned_rankings_survive_churn;
    Alcotest.test_case "gc respects pins" `Quick test_gc_respects_pins;
    Alcotest.test_case "reopen serves the published epoch" `Quick
      test_reopen_serves_published_epoch;
    Alcotest.test_case "pinned rankings identical across domains" `Quick
      test_pinned_rankings_identical_across_domains;
  ]
