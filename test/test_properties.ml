(* Cross-module property tests: random operation sequences checked
   against simple in-memory reference models. *)

(* --- Chain vs a growing byte buffer --------------------------------- *)

let chain_ops_gen =
  QCheck.Gen.(list_size (int_range 1 12) (pair (int_range 0 2) (int_range 0 300)))

let prop_chain_model =
  QCheck.Test.make ~name:"chain matches byte-buffer model" ~count:60 (QCheck.make chain_ops_gen)
    (fun ops ->
      let vfs = Vfs.create () in
      let store = Mneme.Store.create vfs "c.mneme" in
      let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
      Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"m" ~capacity:500_000 ());
      let payload n = Bytes.init n (fun i -> Char.chr (32 + ((i * 11) mod 90))) in
      let model = Buffer.create 256 in
      let head = Mneme.Chain.store ~pool ~chunk_payload:64 Bytes.empty in
      List.for_all
        (fun (op, n) ->
          match op with
          | 0 ->
            (* append *)
            Mneme.Chain.append store ~pool ~chunk_payload:64 head (payload n);
            Buffer.add_bytes model (payload n);
            true
          | 1 ->
            (* full fetch equals model *)
            Bytes.to_string (Mneme.Chain.fetch store head) = Buffer.contents model
          | _ ->
            (* prefix fetch equals model prefix *)
            let len = min n (Buffer.length model) in
            Bytes.to_string (Mneme.Chain.fetch_prefix store head ~len)
            = String.sub (Buffer.contents model) 0 len
            && Mneme.Chain.length store head = Buffer.length model)
        ops)

(* --- Live index vs a naive in-memory search -------------------------- *)

(* Documents are tiny term-lists over a 6-word vocabulary; the model
   checks membership: a query term matches exactly the live documents
   containing it. *)
let vocab = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" |]

let live_ops_gen =
  QCheck.Gen.(list_size (int_range 1 25) (pair (int_range 0 2) (int_range 0 5)))

let prop_live_index_model backend_name make_live =
  QCheck.Test.make
    ~name:(Printf.sprintf "live index (%s) matches membership model" backend_name)
    ~count:30 (QCheck.make live_ops_gen)
    (fun ops ->
      let live = make_live () in
      let model = Hashtbl.create 16 (* doc id -> term list *) in
      List.for_all
        (fun (op, v) ->
          match op with
          | 0 ->
            (* add a 3-term document built from the vocabulary *)
            let terms = [ vocab.(v); vocab.((v + 1) mod 6); vocab.(v) ] in
            let id = Core.Live_index.add_document live (String.concat " " terms) in
            Hashtbl.replace model id terms;
            true
          | 1 -> (
            (* delete the smallest live doc, if any *)
            let victim = Hashtbl.fold (fun d _ acc -> min d acc) model max_int in
            if victim = max_int then true
            else begin
              Hashtbl.remove model victim;
              Core.Live_index.delete_document live victim
            end)
          | _ ->
            (* search: result set = model membership *)
            let term = vocab.(v) in
            let expected =
              Hashtbl.fold (fun d terms acc -> if List.mem term terms then d :: acc else acc) model []
              |> List.sort compare
            in
            let got =
              Core.Live_index.search ~top_k:1000 live term
              |> List.map (fun r -> r.Inquery.Ranking.doc)
              |> List.sort compare
            in
            got = expected)
        ops)

let prop_live_btree =
  prop_live_index_model "btree" (fun () ->
      Core.Live_index.create_btree (Vfs.create ()) ~file:"p.btree" ())

let prop_live_mneme =
  prop_live_index_model "mneme" (fun () ->
      Core.Live_index.create_mneme (Vfs.create ()) ~file:"p.mneme" ())

(* --- Journal vs direct writes ---------------------------------------- *)

let journal_ops_gen =
  QCheck.Gen.(list_size (int_range 1 20) (pair (int_range 0 200) (int_range 1 40)))

let prop_journal_equals_direct =
  QCheck.Test.make ~name:"journaled batches equal direct writes" ~count:100
    (QCheck.make journal_ops_gen)
    (fun writes ->
      let payload n off = Bytes.init n (fun i -> Char.chr (33 + ((off + i) mod 90))) in
      (* Direct world. *)
      let vfs1 = Vfs.create () in
      let direct = Vfs.open_file vfs1 "d" in
      List.iter (fun (off, n) -> Vfs.write direct ~off (payload n off)) writes;
      (* Journaled world: same writes in one committed batch. *)
      let vfs2 = Vfs.create () in
      ignore (Vfs.open_file vfs2 "d");
      let j = Mneme.Journal.create vfs2 ~log_file:"l" ~data_file:"d" in
      Mneme.Journal.begin_batch j;
      List.iter (fun (off, n) -> Mneme.Journal.write j ~off (payload n off)) writes;
      (* Visible state before commit already matches. *)
      let size = Mneme.Journal.data_size j in
      let pre = Mneme.Journal.read j ~off:0 ~len:size in
      Mneme.Journal.commit j;
      let d2 = Vfs.open_file vfs2 "d" in
      Vfs.size direct = Vfs.size d2
      && Vfs.read direct ~off:0 ~len:(Vfs.size direct) = Vfs.read d2 ~off:0 ~len:(Vfs.size d2)
      && pre = Vfs.read d2 ~off:0 ~len:(Vfs.size d2))

(* --- Buffer sizing is monotone --------------------------------------- *)

let prop_buffer_sizing_monotone =
  QCheck.Test.make ~name:"buffer sizes grow with the largest record" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let s_lo = Core.Buffer_sizing.compute ~largest_record:lo () in
      let s_hi = Core.Buffer_sizing.compute ~largest_record:hi () in
      s_lo.Core.Buffer_sizing.large <= s_hi.Core.Buffer_sizing.large
      && s_lo.Core.Buffer_sizing.medium <= s_hi.Core.Buffer_sizing.medium
      && s_lo.Core.Buffer_sizing.small = s_hi.Core.Buffer_sizing.small)

(* --- Query parser never raises on arbitrary input -------------------- *)

let query_fuzz_gen =
  let fragment =
    QCheck.Gen.oneofl
      [ "#sum("; "#and("; "#or("; "#not("; "#wsum("; "#phrase("; "#od2("; "#uw5("; "#syn(";
        ")"; "("; "term"; "2"; "1.5"; "#"; "##"; "a-b"; ""; " "; "#odx("; "zz" ]
  in
  QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 12) fragment))

let prop_parser_total =
  QCheck.Test.make ~name:"query parser is total (Ok or Error, never raises)" ~count:500
    (QCheck.make query_fuzz_gen)
    (fun input ->
      match Inquery.Query.parse input with
      | Ok q ->
        (* Whatever parses must re-parse from its own printing. *)
        Inquery.Query.parse (Inquery.Query.to_string q) = Ok q
      | Error _ -> true)

(* --- Signature files never lose a true match -------------------------- *)

let sig_corpus_gen =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (list_size (int_range 1 8) (int_range 0 40)))

let prop_sigfile_no_false_negatives =
  QCheck.Test.make ~name:"signature files admit no false negatives" ~count:60
    (QCheck.make sig_corpus_gen)
    (fun docs ->
      let vfs = Vfs.create () in
      let corpus =
        List.mapi (fun i words -> (i, Array.of_list (List.map (Printf.sprintf "w%d") words))) docs
      in
      let sf =
        Inquery.Sigfile.build vfs ~file:"q.sig" ~width:64 ~k:3
          ~organisation:Inquery.Sigfile.Bit_sliced ~n_docs:(List.length docs)
          (List.to_seq corpus)
      in
      List.for_all
        (fun (doc, terms) ->
          Array.length terms = 0
          ||
          let probe = [ terms.(0) ] in
          List.mem doc (Inquery.Sigfile.candidates sf probe))
        corpus)

(* --- Compaction preserves every live object --------------------------- *)

let churn_gen =
  QCheck.Gen.(list_size (int_range 5 40) (pair (int_range 0 2) (int_range 0 6000)))

let prop_compact_preserves =
  QCheck.Test.make ~name:"compaction preserves live objects and ids" ~count:25
    (QCheck.make churn_gen)
    (fun ops ->
      let vfs = Vfs.create () in
      let store = Mneme.Store.create vfs "pc.mneme" in
      let pools =
        List.map
          (fun policy ->
            let pool = Mneme.Store.add_pool store policy in
            Mneme.Store.attach_buffer pool
              (Mneme.Buffer_pool.create ~name:policy.Mneme.Policy.name ~capacity:1_000_000 ());
            (policy.Mneme.Policy.name, pool))
          [ Mneme.Policy.small; Mneme.Policy.medium; Mneme.Policy.large ]
      in
      let pool_for n =
        if n <= 12 then List.assoc "small" pools
        else if n > 4096 then List.assoc "large" pools
        else List.assoc "medium" pools
      in
      let payload n = Bytes.init n (fun i -> Char.chr (33 + ((n + i) mod 90))) in
      let live = Hashtbl.create 64 in
      List.iter
        (fun (op, n) ->
          match op with
          | 0 ->
            let oid = Mneme.Store.allocate (pool_for n) (payload n) in
            Hashtbl.replace live oid n
          | 1 -> (
            (* modify some existing object within its size class *)
            match Hashtbl.fold (fun k v acc -> Some (k, v) :: acc) live [] with
            | Some (oid, old) :: _ ->
              let n' =
                if old <= 12 then n mod 13
                else if old > 4096 then 4097 + (n mod 2000)
                else 13 + (n mod 4000)
              in
              Mneme.Store.modify store oid (payload n');
              Hashtbl.replace live oid n'
            | _ -> ())
          | _ -> (
            match Hashtbl.fold (fun k _ acc -> Some k :: acc) live [] with
            | Some oid :: _ ->
              Mneme.Store.delete store oid;
              Hashtbl.remove live oid
            | _ -> ()))
        ops;
      Mneme.Store.finalize store;
      let compacted = Mneme.Store.compact store ~file:"pc2.mneme" in
      List.iter
        (fun name ->
          Mneme.Store.attach_buffer (Mneme.Store.pool compacted name)
            (Mneme.Buffer_pool.create ~name ~capacity:1_000_000 ()))
        [ "small"; "medium"; "large" ];
      Mneme.Store.wasted_bytes compacted = 0
      && Mneme.Store.object_count compacted = Hashtbl.length live
      && Hashtbl.fold
           (fun oid n acc -> acc && Mneme.Store.get_opt compacted oid = Some (payload n))
           live true
      && Mneme.Check.ok (Mneme.Check.run compacted))

(* --- Bit rot with a surviving copy always scrubs back to health ------- *)

(* One replicated workload shared across cases (building it dominates the
   cost); each case rots a random set of (segment, member) pairs — never
   every member of a segment, so a verified source survives — then heals
   the group and audits full convergence.  A passing case provably
   restores the byte-identical pre-rot state, so reuse is sound. *)
let scrub_scenario =
  lazy (Core.Torture.build_scrub_scenario ~seed:42 ~docs:8 ~batches:2 ~standbys:2 ())

let rot_plan_gen =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (triple (int_range 0 999) (int_range 0 999) (pair (int_range 1 3) (int_range 0 9999))))

let prop_scrub_heals_random_rot =
  QCheck.Test.make ~name:"random bit rot with a healthy copy scrubs back to health"
    ~count:15 (QCheck.make rot_plan_gen)
    (fun picks ->
      let scn = Lazy.force scrub_scenario in
      let nseg = Core.Torture.scenario_segments scn in
      let members = Array.of_list (Core.Torture.scenario_member_names scn) in
      let nmem = Array.length members in
      let chosen = Hashtbl.create 8 in
      let per_seg = Hashtbl.create 8 in
      List.iter
        (fun (s_raw, m_raw, (bits, seed)) ->
          let s = s_raw mod nseg and m = m_raw mod nmem in
          let damaged = try Hashtbl.find per_seg s with Not_found -> 0 in
          if (not (Hashtbl.mem chosen (s, m))) && damaged < nmem - 1 then begin
            Hashtbl.replace chosen (s, m) (bits, seed);
            Hashtbl.replace per_seg s (damaged + 1)
          end)
        picks;
      Hashtbl.iter
        (fun (s, m) (bits, seed) ->
          Core.Torture.scenario_rot scn ~member:members.(m) ~segment:s ~bits ~seed ())
        chosen;
      let healed, failures = Core.Torture.heal_group scn in
      failures = [] && healed >= 1 && Core.Torture.audit_scenario scn = [])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_chain_model;
    QCheck_alcotest.to_alcotest prop_live_btree;
    QCheck_alcotest.to_alcotest prop_live_mneme;
    QCheck_alcotest.to_alcotest prop_journal_equals_direct;
    QCheck_alcotest.to_alcotest prop_buffer_sizing_monotone;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_sigfile_no_false_negatives;
    QCheck_alcotest.to_alcotest prop_compact_preserves;
    QCheck_alcotest.to_alcotest prop_scrub_heals_random_rot;
  ]
