(* Multi-file global id mapping. *)

let make_store vfs name values =
  let store = Mneme.Store.create vfs name in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"m" ~capacity:100_000 ());
  let oids = List.map (fun v -> Mneme.Store.allocate pool (Bytes.of_string v)) values in
  Mneme.Store.finalize store;
  (store, oids)

let setup () =
  let vfs = Vfs.create () in
  let store_a, oids_a = make_store vfs "a.mneme" [ "a0"; "a1" ] in
  let store_b, oids_b = make_store vfs "b.mneme" [ "b0" ] in
  let fed = Mneme.Federation.create ~capacity:8 () in
  let ha = Mneme.Federation.mount fed ~name:"a" store_a in
  let hb = Mneme.Federation.mount fed ~name:"b" store_b in
  (fed, ha, hb, oids_a, oids_b)

let test_mount_and_resolve () =
  let fed, ha, hb, _, _ = setup () in
  Alcotest.(check bool) "distinct handles" true (ha <> hb);
  Alcotest.(check (option int)) "by name" (Some ha) (Mneme.Federation.handle_of_name fed "a");
  Alcotest.(check (option int)) "unknown" None (Mneme.Federation.handle_of_name fed "c");
  Alcotest.(check bool) "duplicate mount" true
    (match Mneme.Federation.mount fed ~name:"a" (Mneme.Federation.store_of fed ha) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_globalize_and_get () =
  let fed, ha, hb, oids_a, oids_b = setup () in
  (* Same local id in different files gets distinct global ids. *)
  let ga0 = Mneme.Federation.globalize fed ~handle:ha (List.nth oids_a 0) in
  let gb0 = Mneme.Federation.globalize fed ~handle:hb (List.nth oids_b 0) in
  Alcotest.(check bool) "distinct globals" true (ga0 <> gb0);
  Alcotest.(check bytes) "a0" (Bytes.of_string "a0") (Mneme.Federation.get fed ga0);
  Alcotest.(check bytes) "b0" (Bytes.of_string "b0") (Mneme.Federation.get fed gb0);
  (* Stable on re-access. *)
  Alcotest.(check bool) "stable" true
    (Mneme.Federation.globalize fed ~handle:ha (List.nth oids_a 0) = ga0);
  Alcotest.(check int) "two in use" 2 (Mneme.Federation.in_use fed)

let test_locate () =
  let fed, ha, _, oids_a, _ = setup () in
  let g = Mneme.Federation.globalize fed ~handle:ha (List.nth oids_a 1) in
  Alcotest.(check (pair int int)) "locate" (ha, List.nth oids_a 1) (Mneme.Federation.locate fed g)

let test_release_recycles () =
  let fed, ha, _, oids_a, _ = setup () in
  let g = Mneme.Federation.globalize fed ~handle:ha (List.nth oids_a 0) in
  Mneme.Federation.release fed g;
  Alcotest.(check int) "freed" 0 (Mneme.Federation.in_use fed);
  Alcotest.(check (option bytes)) "stale gid" None (Mneme.Federation.get_opt fed g);
  (* The released id is recycled for the next access. *)
  let g' = Mneme.Federation.globalize fed ~handle:ha (List.nth oids_a 1) in
  Alcotest.(check bool) "recycled" true ((g' : Mneme.Federation.gid :> int) = (g :> int));
  Mneme.Federation.release fed g';
  Mneme.Federation.release fed g' (* idempotent *)

let test_capacity_bound () =
  let vfs = Vfs.create () in
  let store, oids = make_store vfs "c.mneme" [ "x"; "y"; "z" ] in
  let fed = Mneme.Federation.create ~capacity:2 () in
  let h = Mneme.Federation.mount fed ~name:"c" store in
  ignore (Mneme.Federation.globalize fed ~handle:h (List.nth oids 0));
  ignore (Mneme.Federation.globalize fed ~handle:h (List.nth oids 1));
  Alcotest.(check bool) "exhausted" true
    (match Mneme.Federation.globalize fed ~handle:h (List.nth oids 2) with
    | _ -> false
    | exception Failure _ -> true);
  (* Releasing makes room: simultaneous access is what is bounded. *)
  ignore
    (Mneme.Federation.release fed (Mneme.Federation.globalize fed ~handle:h (List.nth oids 0)));
  let g = Mneme.Federation.globalize fed ~handle:h (List.nth oids 2) in
  Alcotest.(check bytes) "third object reachable" (Bytes.of_string "z")
    (Mneme.Federation.get fed g)

let test_unmount_releases () =
  let fed, ha, hb, oids_a, oids_b = setup () in
  let ga = Mneme.Federation.globalize fed ~handle:ha (List.nth oids_a 0) in
  let gb = Mneme.Federation.globalize fed ~handle:hb (List.nth oids_b 0) in
  Mneme.Federation.unmount fed ha;
  Alcotest.(check (option bytes)) "a gone" None (Mneme.Federation.get_opt fed ga);
  Alcotest.(check bool) "b still there" true (Mneme.Federation.get_opt fed gb <> None);
  Alcotest.(check (option int)) "name unregistered" None (Mneme.Federation.handle_of_name fed "a");
  Alcotest.(check bool) "globalize into unmounted" true
    (match Mneme.Federation.globalize fed ~handle:ha (List.nth oids_a 0) with
    | _ -> false
    | exception Not_found -> true);
  Alcotest.(check bool) "double unmount" true
    (match Mneme.Federation.unmount fed ha with () -> false | exception Not_found -> true)

(* Churn the whole gid lifecycle — globalize, release, double-release,
   unmount/remount — and demand the id pool stays conserved throughout:
   [in_use + free_ids = capacity] after every operation, released gids
   stop resolving, and tearing every mount down returns every id. *)
let prop_gid_lifecycle_never_leaks =
  QCheck.Test.make ~name:"gid lifecycle never leaks ids" ~count:100
    QCheck.(list (pair (int_range 0 3) (int_range 0 2)))
    (fun ops ->
      let vfs = Vfs.create () in
      let store_a, oids_a = make_store vfs "qa.mneme" [ "a0"; "a1"; "a2" ] in
      let store_b, oids_b = make_store vfs "qb.mneme" [ "b0"; "b1"; "b2" ] in
      let fed = Mneme.Federation.create ~capacity:5 () in
      let ha = ref (Mneme.Federation.mount fed ~name:"a" store_a) in
      let hb = Mneme.Federation.mount fed ~name:"b" store_b in
      let assigned = ref [] in
      let ok = ref true in
      let invariant () =
        if
          Mneme.Federation.in_use fed + Mneme.Federation.free_ids fed
          <> Mneme.Federation.capacity fed
        then ok := false
      in
      List.iter
        (fun (op, idx) ->
          (match op with
          | 0 -> (
            let handle, oid =
              if idx mod 2 = 0 then (!ha, List.nth oids_a idx) else (hb, List.nth oids_b idx)
            in
            match Mneme.Federation.globalize fed ~handle oid with
            | gid -> if not (List.mem gid !assigned) then assigned := gid :: !assigned
            | exception Failure _ -> () (* id space full: bounded, not leaked *))
          | 1 -> (
            match !assigned with
            | [] -> ()
            | gid :: rest ->
              assigned := rest;
              Mneme.Federation.release fed gid;
              (* A released gid must stop resolving. *)
              (match Mneme.Federation.locate fed gid with
              | _ -> ok := false
              | exception Not_found -> ()))
          | 2 ->
            (* Unmounting reclaims every gid pointing into the mount. *)
            Mneme.Federation.unmount fed !ha;
            assigned :=
              List.filter
                (fun g ->
                  match Mneme.Federation.locate fed g with
                  | _ -> true
                  | exception Not_found -> false)
                !assigned;
            ha := Mneme.Federation.mount fed ~name:"a" store_a
          | _ -> (
            match !assigned with
            | [] -> ()
            | gid :: rest ->
              assigned := rest;
              Mneme.Federation.release fed gid;
              Mneme.Federation.release fed gid (* double release: a no-op *)));
          invariant ())
        ops;
      Mneme.Federation.unmount fed !ha;
      Mneme.Federation.unmount fed hb;
      !ok
      && Mneme.Federation.in_use fed = 0
      && Mneme.Federation.free_ids fed = Mneme.Federation.capacity fed)

let test_validation () =
  Alcotest.(check bool) "zero capacity" true
    (match Mneme.Federation.create ~capacity:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "mount and resolve" `Quick test_mount_and_resolve;
    Alcotest.test_case "globalize and get" `Quick test_globalize_and_get;
    Alcotest.test_case "locate" `Quick test_locate;
    Alcotest.test_case "release recycles" `Quick test_release_recycles;
    Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
    Alcotest.test_case "unmount releases" `Quick test_unmount_releases;
    QCheck_alcotest.to_alcotest prop_gid_lifecycle_never_leaks;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
