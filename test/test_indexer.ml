(* Index construction: statistics, record contents, ordering rules. *)

let docs = [ (0, "the cat sat on the mat"); (1, "the cat ate"); (2, "dogs chase cats") ]

let build ?stopwords ?stem () =
  let ix = Inquery.Indexer.create ?stopwords ?stem () in
  List.iter (fun (id, text) -> Inquery.Indexer.add_document ix ~doc_id:id text) docs;
  ix

let record_for ix term =
  let dict = Inquery.Indexer.dictionary ix in
  match Inquery.Dictionary.find dict term with
  | None -> None
  | Some e ->
    Seq.find_map
      (fun (id, r) -> if id = e.Inquery.Dictionary.id then Some r else None)
      (Inquery.Indexer.to_records ix)

let test_document_stats () =
  let ix = build () in
  Alcotest.(check int) "docs" 3 (Inquery.Indexer.document_count ix);
  Alcotest.(check int) "terms" 9 (Inquery.Indexer.term_count ix);
  Alcotest.(check int) "doc 0 length" 6 (Inquery.Indexer.doc_length ix 0);
  Alcotest.(check int) "doc 2 length" 3 (Inquery.Indexer.doc_length ix 2);
  Alcotest.(check int) "unknown doc" 0 (Inquery.Indexer.doc_length ix 99);
  Alcotest.(check (float 1e-9)) "avg" 4.0 (Inquery.Indexer.avg_doc_length ix)

let test_term_statistics () =
  let ix = build () in
  let dict = Inquery.Indexer.dictionary ix in
  (match Inquery.Dictionary.find dict "the" with
  | Some e ->
    Alcotest.(check int) "the df" 2 e.Inquery.Dictionary.df;
    Alcotest.(check int) "the cf" 3 e.Inquery.Dictionary.cf
  | None -> Alcotest.fail "the missing");
  match Inquery.Dictionary.find dict "cat" with
  | Some e -> Alcotest.(check int) "cat df" 2 e.Inquery.Dictionary.df
  | None -> Alcotest.fail "cat missing"

let test_record_contents () =
  let ix = build () in
  match record_for ix "the" with
  | None -> Alcotest.fail "record missing"
  | Some r ->
    let decoded = Inquery.Postings.decode r in
    Alcotest.(check (list (pair int (list int))))
      "docs and positions"
      [ (0, [ 0; 4 ]); (1, [ 0 ]) ]
      (List.map (fun dp -> (dp.Inquery.Postings.doc, dp.Inquery.Postings.positions)) decoded)

let test_counts () =
  let ix = build () in
  Alcotest.(check int) "postings" 11 (Inquery.Indexer.posting_count ix);
  Alcotest.(check int) "occurrences" 12 (Inquery.Indexer.occurrence_count ix);
  Alcotest.(check bool) "collection bytes" true (Inquery.Indexer.collection_bytes ix > 0)

let test_records_sorted_and_complete () =
  let ix = build () in
  let ids = Seq.map fst (Inquery.Indexer.to_records ix) |> List.of_seq in
  Alcotest.(check (list int)) "ascending dense" (List.init 9 Fun.id) ids;
  Alcotest.(check bool) "total positive" true (Inquery.Indexer.record_bytes_total ix > 0)

let test_ids_must_increase () =
  let ix = Inquery.Indexer.create () in
  Inquery.Indexer.add_document ix ~doc_id:5 "a b";
  Alcotest.(check bool) "equal id rejected" true
    (match Inquery.Indexer.add_document ix ~doc_id:5 "c" with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "smaller id rejected" true
    (match Inquery.Indexer.add_document ix ~doc_id:4 "c" with
    | () -> false
    | exception Invalid_argument _ -> true);
  Inquery.Indexer.add_document ix ~doc_id:6 "c"

let test_sparse_doc_ids () =
  let ix = Inquery.Indexer.create () in
  Inquery.Indexer.add_document ix ~doc_id:0 "x";
  Inquery.Indexer.add_document ix ~doc_id:100 "x";
  Alcotest.(check int) "two docs" 2 (Inquery.Indexer.document_count ix);
  match record_for ix "x" with
  | Some r ->
    let docs = List.map (fun dp -> dp.Inquery.Postings.doc) (Inquery.Postings.decode r) in
    Alcotest.(check (list int)) "gap encoded" [ 0; 100 ] docs
  | None -> Alcotest.fail "record missing"

let test_stopword_filtering () =
  let ix =
    let i = Inquery.Indexer.create ~stopwords:Inquery.Stopwords.default () in
    Inquery.Indexer.add_document i ~doc_id:0 "the cat and the dog";
    i
  in
  let dict = Inquery.Indexer.dictionary ix in
  Alcotest.(check bool) "the dropped" true (Inquery.Dictionary.find dict "the" = None);
  Alcotest.(check bool) "cat kept" true (Inquery.Dictionary.find dict "cat" <> None);
  (* Positions remain those of the unfiltered token stream. *)
  match record_for ix "dog" with
  | Some r ->
    let dp = List.hd (Inquery.Postings.decode r) in
    Alcotest.(check (list int)) "original position" [ 4 ] dp.Inquery.Postings.positions
  | None -> Alcotest.fail "dog missing"

let test_stemming () =
  let ix =
    let i = Inquery.Indexer.create ~stem:true () in
    Inquery.Indexer.add_document i ~doc_id:0 "indexing indexed indexes";
    i
  in
  let dict = Inquery.Indexer.dictionary ix in
  match Inquery.Dictionary.find dict "index" with
  | Some e -> Alcotest.(check int) "conflated cf" 3 e.Inquery.Dictionary.cf
  | None -> Alcotest.fail "stem missing"

let test_add_document_terms () =
  let ix = Inquery.Indexer.create () in
  Inquery.Indexer.add_document_terms ix ~doc_id:0 ~bytes:1000 [| "a"; "b"; "a" |];
  Alcotest.(check int) "collection bytes honored" 1000 (Inquery.Indexer.collection_bytes ix);
  Alcotest.(check int) "doc length" 3 (Inquery.Indexer.doc_length ix 0);
  match record_for ix "a" with
  | Some r ->
    let dp = List.hd (Inquery.Postings.decode r) in
    Alcotest.(check (list int)) "positions" [ 0; 2 ] dp.Inquery.Postings.positions
  | None -> Alcotest.fail "a missing"

let test_empty_document () =
  let ix = Inquery.Indexer.create () in
  Inquery.Indexer.add_document ix ~doc_id:0 "";
  Alcotest.(check int) "counted" 1 (Inquery.Indexer.document_count ix);
  Alcotest.(check int) "no terms" 0 (Inquery.Indexer.term_count ix)

let test_records_parse_as_postings () =
  let ix = build () in
  Seq.iter
    (fun (_, r) ->
      let df, cf = Inquery.Postings.stats r in
      let decoded = Inquery.Postings.decode r in
      Alcotest.(check int) "df matches" df (List.length decoded);
      Alcotest.(check int) "cf matches" cf
        (List.fold_left (fun a dp -> a + List.length dp.Inquery.Postings.positions) 0 decoded))
    (Inquery.Indexer.to_records ix)

let test_record_versions_by_df () =
  (* The indexer's builder emits v2 (skip blocks) once a term reaches
     the cutoff, compact v1 below it — and the records stay equivalent
     to re-encoding the decoded postings. *)
  let ix = Inquery.Indexer.create () in
  for d = 0 to 19 do
    Inquery.Indexer.add_document ix ~doc_id:d
      (if d = 0 then "common rare" else "common common")
  done;
  (match record_for ix "common" with
  | Some r ->
    Alcotest.(check int) "df 20 record is v2" 2 (Inquery.Postings.version r);
    Alcotest.(check bool) "max_tf header" true (Inquery.Postings.max_tf r = Some 2);
    Alcotest.(check bool) "validates" true (Inquery.Postings.validate r = Ok ())
  | None -> Alcotest.fail "common missing");
  match record_for ix "rare" with
  | Some r -> Alcotest.(check int) "df 1 record is v1" 1 (Inquery.Postings.version r)
  | None -> Alcotest.fail "rare missing"

let suite =
  [
    Alcotest.test_case "document stats" `Quick test_document_stats;
    Alcotest.test_case "record versions by df" `Quick test_record_versions_by_df;
    Alcotest.test_case "term statistics" `Quick test_term_statistics;
    Alcotest.test_case "record contents" `Quick test_record_contents;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "records sorted" `Quick test_records_sorted_and_complete;
    Alcotest.test_case "ids must increase" `Quick test_ids_must_increase;
    Alcotest.test_case "sparse doc ids" `Quick test_sparse_doc_ids;
    Alcotest.test_case "stopword filtering" `Quick test_stopword_filtering;
    Alcotest.test_case "stemming" `Quick test_stemming;
    Alcotest.test_case "add_document_terms" `Quick test_add_document_terms;
    Alcotest.test_case "empty document" `Quick test_empty_document;
    Alcotest.test_case "records parse as postings" `Quick test_records_parse_as_postings;
  ]
