(* Cost-based query planner: record_stats across every postings tier
   (cross-checked against a full decode), the cost model's shape and
   plan decisions, and forced-plan bit-identity over the preset
   collections — serial, across domains ([REPRO_TEST_DOMAINS] pins the
   counts, as in test_parallel), and against a pinned epoch. *)

(* --- record_stats across the tiers ------------------------------- *)

(* dfs straddling every encoder cutoff: v1, raw, vbyte, cold. *)
let tier_dfs = [ 3; 20; 200; 1500 ]

let entries_of_df df =
  List.init df (fun i -> (i * 3, List.init (1 + (i mod 3)) (fun j -> (i * 7) + (j * 2) + 1)))

let check_stats_of_df df () =
  let r = Inquery.Postings.encode (entries_of_df df) in
  let s = Inquery.Postings.stats_of_locator r in
  Alcotest.(check string)
    "tier matches the encoder's choice"
    (Inquery.Postings.tier_name (Inquery.Postings.tier_of_df df))
    (Inquery.Postings.tier_name s.Inquery.Postings.rs_tier);
  Alcotest.(check bool) "record validates" true
    (Inquery.Postings.validate r = Ok ());
  (* Everything the header claims must agree with a full decode. *)
  let decoded = Inquery.Postings.decode r in
  Alcotest.(check int) "df" (List.length decoded) s.Inquery.Postings.rs_df;
  let cf =
    List.fold_left
      (fun acc dp -> acc + List.length dp.Inquery.Postings.positions)
      0 decoded
  in
  Alcotest.(check int) "cf" cf s.Inquery.Postings.rs_cf;
  let true_max_tf =
    List.fold_left (fun acc dp -> max acc (List.length dp.Inquery.Postings.positions)) 0 decoded
  in
  (match s.Inquery.Postings.rs_max_tf with
  | None ->
    Alcotest.(check bool) "only v1 lacks max_tf" true
      (s.Inquery.Postings.rs_tier = Inquery.Postings.V1)
  | Some m -> Alcotest.(check int) "max_tf" true_max_tf m);
  if s.Inquery.Postings.rs_tier = Inquery.Postings.V1 then begin
    Alcotest.(check int) "v1: no skip blocks" 0 s.Inquery.Postings.rs_blocks;
    Alcotest.(check int) "v1: no position region split" 0 s.Inquery.Postings.rs_pos_bytes;
    Alcotest.(check bool) "v1: doc bytes cover the payload" true
      (s.Inquery.Postings.rs_doc_bytes > 0
      && s.Inquery.Postings.rs_doc_bytes <= Bytes.length r)
  end
  else begin
    Alcotest.(check bool) "v2: at least one skip block" true
      (s.Inquery.Postings.rs_blocks >= 1);
    Alcotest.(check bool) "v2: regions positive and within the record" true
      (s.Inquery.Postings.rs_doc_bytes > 0
      && s.Inquery.Postings.rs_pos_bytes > 0
      && s.Inquery.Postings.rs_doc_bytes + s.Inquery.Postings.rs_pos_bytes
         <= Bytes.length r)
  end;
  (* The alias really is an alias. *)
  Alcotest.(check bool) "record_stats = stats_of_locator" true
    (Inquery.Postings.record_stats r = s)

let test_stats_v1_encoder () =
  (* encode_v1 at any df must parse as a v1 record. *)
  let r = Inquery.Postings.encode_v1 (entries_of_df 40) in
  let s = Inquery.Postings.record_stats r in
  Alcotest.(check string) "tier" "v1" (Inquery.Postings.tier_name s.Inquery.Postings.rs_tier);
  Alcotest.(check int) "df" 40 s.Inquery.Postings.rs_df;
  Alcotest.(check bool) "no max_tf" true (s.Inquery.Postings.rs_max_tf = None)

(* --- the cost model on synthetic statistics ----------------------- *)

let mk_stats ~df ~blocks ~doc_bytes ~pos_bytes =
  {
    Inquery.Postings.rs_tier =
      (if blocks = 0 then Inquery.Postings.V1 else Inquery.Postings.Vbyte);
    rs_df = df;
    rs_cf = df;
    rs_max_tf = (if blocks = 0 then None else Some 3);
    rs_blocks = blocks;
    rs_doc_bytes = doc_bytes;
    rs_pos_bytes = pos_bytes;
  }

(* A rare term and a common one whose record dwarfs it — the regime a
   cost model exists to tell apart. *)
let synth_stats term =
  match term with
  | "rare" -> Some (mk_stats ~df:6 ~blocks:0 ~doc_bytes:24 ~pos_bytes:0)
  | "common" -> Some (mk_stats ~df:20000 ~blocks:160 ~doc_bytes:80000 ~pos_bytes:40000)
  | "mid" -> Some (mk_stats ~df:300 ~blocks:3 ~doc_bytes:1200 ~pos_bytes:600)
  | _ -> None

let parse = Inquery.Query.parse_exn

let test_shapes () =
  let shape q = Inquery.Planner.shape_of (parse q) in
  Alcotest.(check bool) "term" true (shape "rare" = Inquery.Planner.Flat);
  Alcotest.(check bool) "sum" true (shape "#sum( rare common )" = Inquery.Planner.Flat);
  Alcotest.(check bool) "wsum" true (shape "#wsum( 2 rare 1 common )" = Inquery.Planner.Flat);
  Alcotest.(check bool) "wsum zero total is not flat" true
    (shape "#wsum( 0 rare 0 common )" = Inquery.Planner.Other);
  Alcotest.(check bool) "and" true
    (shape "#and( rare common )" = Inquery.Planner.Conjunctive);
  Alcotest.(check bool) "phrase" true
    (shape "#phrase( rare common )" = Inquery.Planner.Positional);
  Alcotest.(check bool) "od" true
    (shape "#od3( rare common )" = Inquery.Planner.Positional);
  Alcotest.(check bool) "uw" true
    (shape "#uw5( rare common )" = Inquery.Planner.Positional);
  Alcotest.(check bool) "or" true (shape "#or( rare common )" = Inquery.Planner.Other);
  Alcotest.(check bool) "nested" true
    (shape "#sum( rare #and( mid common ) )" = Inquery.Planner.Other)

let test_applicable () =
  let app q = Inquery.Planner.applicable (parse q) in
  Alcotest.(check bool) "flat" true
    (app "#sum( rare common )"
    = [ Inquery.Planner.Maxscore; Inquery.Planner.Exhaustive ]);
  Alcotest.(check bool) "conjunctive" true
    (app "#and( rare common )"
    = [ Inquery.Planner.Intersect; Inquery.Planner.Exhaustive ]);
  Alcotest.(check bool) "positional" true
    (app "#phrase( rare common )"
    = [ Inquery.Planner.Intersect; Inquery.Planner.Exhaustive ]);
  Alcotest.(check bool) "other" true (app "#or( rare common )" = [ Inquery.Planner.Exhaustive ])

let test_decide_conjunctive () =
  (* A rare driver makes intersection-first strictly cheaper than
     decoding the common term's whole record. *)
  let q = parse "#and( rare common )" in
  let d = Inquery.Planner.decide ~stats_of:synth_stats ~k:10 q in
  Alcotest.(check bool) "picks intersect" true (d.Inquery.Planner.e_plan = Inquery.Planner.Intersect);
  let ex = Inquery.Planner.estimate ~stats_of:synth_stats ~k:10 q Inquery.Planner.Exhaustive in
  Alcotest.(check bool) "strictly cheaper than exhaustive" true
    (d.Inquery.Planner.e_bytes < ex.Inquery.Planner.e_bytes)

let test_decide_positional () =
  let q = parse "#phrase( rare common )" in
  let d = Inquery.Planner.decide ~stats_of:synth_stats ~k:10 q in
  Alcotest.(check bool) "picks intersect" true (d.Inquery.Planner.e_plan = Inquery.Planner.Intersect);
  let ex = Inquery.Planner.estimate ~stats_of:synth_stats ~k:10 q Inquery.Planner.Exhaustive in
  Alcotest.(check bool) "strictly cheaper than exhaustive" true
    (d.Inquery.Planner.e_bytes < ex.Inquery.Planner.e_bytes)

let test_decide_flat_and_other () =
  let flat = Inquery.Planner.decide ~stats_of:synth_stats ~k:10 (parse "#sum( rare common )") in
  Alcotest.(check bool) "flat picks maxscore" true
    (flat.Inquery.Planner.e_plan = Inquery.Planner.Maxscore);
  let other = Inquery.Planner.decide ~stats_of:synth_stats ~k:10 (parse "#or( rare common )") in
  Alcotest.(check bool) "other picks exhaustive" true
    (other.Inquery.Planner.e_plan = Inquery.Planner.Exhaustive)

let test_inapplicable_costed_as_exhaustive () =
  let q = parse "#or( rare common )" in
  let ms = Inquery.Planner.estimate ~stats_of:synth_stats ~k:10 q Inquery.Planner.Maxscore in
  let ex = Inquery.Planner.estimate ~stats_of:synth_stats ~k:10 q Inquery.Planner.Exhaustive in
  Alcotest.(check int) "bytes" ex.Inquery.Planner.e_bytes ms.Inquery.Planner.e_bytes;
  Alcotest.(check int) "blocks" ex.Inquery.Planner.e_blocks ms.Inquery.Planner.e_blocks

let test_absent_positional_member_is_free () =
  (* A positional operator with an unindexed member matches nothing;
     the intersect plan prices that at zero. *)
  let q = parse "#phrase( common nosuchterm )" in
  let d = Inquery.Planner.decide ~stats_of:synth_stats ~k:10 q in
  Alcotest.(check bool) "intersect" true (d.Inquery.Planner.e_plan = Inquery.Planner.Intersect);
  Alcotest.(check int) "zero bytes" 0 d.Inquery.Planner.e_bytes

let test_plan_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "round-trips" true
        (Inquery.Planner.plan_of_string (Inquery.Planner.plan_name p) = Some p))
    [ Inquery.Planner.Exhaustive; Inquery.Planner.Maxscore; Inquery.Planner.Intersect ];
  Alcotest.(check bool) "unknown" true (Inquery.Planner.plan_of_string "bogus" = None)

(* --- forced-plan bit-identity over the presets --------------------- *)

let scale = 0.01
let preset_names = [ "cacm"; "legal"; "tipster1"; "tipster" ]
let plans = [ Inquery.Planner.Exhaustive; Inquery.Planner.Maxscore; Inquery.Planner.Intersect ]

let prepared_tbl : (string, Core.Experiment.prepared * Core.Engine.t * string list) Hashtbl.t =
  Hashtbl.create 4

let setup_of name =
  match Hashtbl.find_opt prepared_tbl name with
  | Some s -> s
  | None ->
    let model = Collections.Presets.find ~scale name in
    let prepared = Core.Experiment.prepare model in
    let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
    let queries =
      Collections.Querygen.generate model (Collections.Presets.planner_queries model)
    in
    let s = (prepared, engine, queries) in
    Hashtbl.add prepared_tbl name s;
    s

let fingerprint (r : Core.Engine.topk_result) =
  List.map
    (fun rk -> (rk.Inquery.Ranking.doc, Int64.bits_of_float rk.Inquery.Ranking.score))
    r.Core.Engine.topk_ranked

(* ~audit already raises on any divergence from the exhaustive oracle;
   comparing fingerprints across plans additionally pins the plans to
   each other. *)
let check_query ~k engine q =
  let ex =
    Core.Engine.run_topk_string ~plan:(Inquery.Planner.Forced Inquery.Planner.Exhaustive) ~k
      engine q
  in
  let gold = fingerprint ex in
  List.iter
    (fun p ->
      let r =
        Core.Engine.run_topk_string ~audit:true ~plan:(Inquery.Planner.Forced p) ~k engine q
      in
      Alcotest.(check bool)
        (Printf.sprintf "forced %s identical: %s" (Inquery.Planner.plan_name p) q)
        true
        (fingerprint r = gold))
    plans;
  let auto = Core.Engine.run_topk_string ~audit:true ~k engine q in
  Alcotest.(check bool) ("auto identical: " ^ q) true (fingerprint auto = gold)

let test_presets_forced_plans () =
  List.iter
    (fun name ->
      let _, engine, queries = setup_of name in
      List.iteri (fun i q -> if i < 10 then check_query ~k:10 engine q) queries)
    preset_names

let prop_forced_plans_identical =
  QCheck.Test.make ~name:"forced plans bit-identical on every preset (mixed workload)"
    ~count:60
    (QCheck.make QCheck.Gen.(triple (oneofl preset_names) (int_range 0 49) (int_range 1 12)))
    (fun (name, qi, k) ->
      let _, engine, queries = setup_of name in
      let q = List.nth queries (qi mod List.length queries) in
      let gold =
        fingerprint
          (Core.Engine.run_topk_string
             ~plan:(Inquery.Planner.Forced Inquery.Planner.Exhaustive) ~k engine q)
      in
      List.for_all
        (fun p ->
          fingerprint
            (Core.Engine.run_topk_string ~audit:true ~plan:(Inquery.Planner.Forced p) ~k
               engine q)
          = gold)
        plans)

(* --- multicore: every domain agrees, every plan audited ------------ *)

let domain_counts =
  match Sys.getenv_opt "REPRO_TEST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d > 0 -> [ d ]
    | _ -> [ 1; 2 ])
  | None -> [ 1; 2 ]

let test_multicore_forced_plans () =
  List.iter
    (fun domains ->
      let work () =
        (* Each domain builds its own collection and sessions: nothing
           shared, so the only way the fingerprints agree is that the
           plans are deterministic and bit-identical. *)
        let model = Collections.Presets.find ~scale "cacm" in
        let prepared = Core.Experiment.prepare model in
        let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
        let queries =
          Collections.Querygen.generate model (Collections.Presets.planner_queries model)
        in
        List.filteri (fun i _ -> i < 6) queries
        |> List.map (fun q ->
               List.map
                 (fun p ->
                   fingerprint
                     (Core.Engine.run_topk_string ~audit:true
                        ~plan:(Inquery.Planner.Forced p) ~k:10 engine q))
                 plans)
      in
      let spawned = List.init domains (fun _ -> Domain.spawn work) in
      match List.map Domain.join spawned with
      | [] -> ()
      | r0 :: rest ->
        List.iteri
          (fun i r ->
            Alcotest.(check bool)
              (Printf.sprintf "domain %d of %d agrees" (i + 2) domains)
              true (r = r0))
          rest)
    domain_counts

(* --- pinned epoch: plans over a snapshot that history moved past --- *)

let rank_order (a : Inquery.Infnet.scored) (b : Inquery.Infnet.scored) =
  if a.Inquery.Infnet.belief = b.Inquery.Infnet.belief then
    compare a.Inquery.Infnet.doc b.Inquery.Infnet.doc
  else compare b.Inquery.Infnet.belief a.Inquery.Infnet.belief

let take k xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go k [] xs

let test_pinned_epoch_plans () =
  let vfs = Vfs.create () in
  let live = Core.Live_index.create_mneme vfs ~file:"plan-pin.mneme" () in
  let texts =
    [
      "alpha beta gamma alpha";
      "beta gamma delta";
      "alpha gamma epsilon";
      "alpha beta beta gamma delta";
      "gamma gamma alpha beta";
      "delta epsilon alpha beta";
    ]
  in
  let ids = List.map (Core.Live_index.add_document live) texts in
  let pin = Core.Live_index.pin live in
  (* Move history past the pin: the snapshot must keep answering
     identically under every plan. *)
  ignore (Core.Live_index.delete_document live (List.hd ids));
  ignore (Core.Live_index.add_document live "zeta eta theta");
  (* An Infnet source over the pinned snapshot. *)
  let dict = Inquery.Dictionary.create () in
  List.iter
    (fun (t, _, _) -> ignore (Inquery.Dictionary.intern dict t))
    (Core.Live_index.pin_directory pin);
  let dls = Core.Live_index.pin_doc_lengths pin in
  let dl_tbl = Hashtbl.create 16 in
  List.iter (fun (d, l) -> Hashtbl.replace dl_tbl d l) dls;
  let n_docs = List.length dls in
  let source =
    {
      Inquery.Infnet.fetch =
        (fun e ->
          Option.map
            (fun (r, _, _) -> r)
            (Core.Live_index.pin_lookup live pin e.Inquery.Dictionary.term));
      n_docs;
      max_doc_id = max 0 (Core.Live_index.pin_next_doc pin - 1);
      avg_doc_len =
        float_of_int (Core.Live_index.pin_total_length pin) /. float_of_int (max 1 n_docs);
      doc_len = (fun d -> Option.value (Hashtbl.find_opt dl_tbl d) ~default:0);
    }
  in
  List.iter
    (fun query ->
      let q = parse query in
      let daat, _ = Inquery.Infnet.eval_daat source dict q in
      let expect = take 4 (List.sort rank_order daat) in
      List.iter
        (fun p ->
          let got, _, _ =
            Inquery.Infnet.eval_topk source dict ~audit:true
              ~plan:(Inquery.Planner.Forced p) ~k:4 q
          in
          Alcotest.(check bool)
            (Printf.sprintf "pinned forced %s: %s" (Inquery.Planner.plan_name p) query)
            true (got = expect))
        plans;
      let auto, _, _ = Inquery.Infnet.eval_topk source dict ~audit:true ~k:4 q in
      Alcotest.(check bool) ("pinned auto: " ^ query) true (auto = expect))
    [
      "#sum( alpha beta )";
      "#and( alpha gamma )";
      "#phrase( alpha beta )";
      "#od3( alpha gamma )";
      "#uw5( beta alpha )";
      "#or( delta epsilon )";
    ];
  Core.Live_index.release live pin

let suite =
  List.map
    (fun df ->
      Alcotest.test_case
        (Printf.sprintf "record_stats df=%d (%s)" df
           (Inquery.Postings.tier_name (Inquery.Postings.tier_of_df df)))
        `Quick (check_stats_of_df df))
    tier_dfs
  @ [
      Alcotest.test_case "record_stats on encode_v1" `Quick test_stats_v1_encoder;
      Alcotest.test_case "shape classification" `Quick test_shapes;
      Alcotest.test_case "applicable plans" `Quick test_applicable;
      Alcotest.test_case "decide: conjunctive" `Quick test_decide_conjunctive;
      Alcotest.test_case "decide: positional" `Quick test_decide_positional;
      Alcotest.test_case "decide: flat and other" `Quick test_decide_flat_and_other;
      Alcotest.test_case "inapplicable plan costed as exhaustive" `Quick
        test_inapplicable_costed_as_exhaustive;
      Alcotest.test_case "absent positional member is free" `Quick
        test_absent_positional_member_is_free;
      Alcotest.test_case "plan names round-trip" `Quick test_plan_names;
      Alcotest.test_case "presets: forced plans identical" `Quick test_presets_forced_plans;
      QCheck_alcotest.to_alcotest prop_forced_plans_identical;
      Alcotest.test_case "multicore: domains agree on every plan" `Quick
        test_multicore_forced_plans;
      Alcotest.test_case "pinned epoch: plans over a snapshot" `Quick test_pinned_epoch_plans;
    ]
