(* Recall/precision metrics on hand-computable examples. *)

let rel = Inquery.Eval.judgments_of_list [ 1; 3; 5; 7 ]
let ranked = [ 1; 2; 3; 4; 5; 6 ]

let test_relevant_count () =
  Alcotest.(check int) "count" 4 (Inquery.Eval.relevant_count rel);
  Alcotest.(check int) "dedup" 1
    (Inquery.Eval.relevant_count (Inquery.Eval.judgments_of_list [ 9; 9; 9 ]))

let test_precision_at () =
  Alcotest.(check (float 1e-9)) "p@1" 1.0 (Inquery.Eval.precision_at ranked rel ~k:1);
  Alcotest.(check (float 1e-9)) "p@2" 0.5 (Inquery.Eval.precision_at ranked rel ~k:2);
  Alcotest.(check (float 1e-9)) "p@6" 0.5 (Inquery.Eval.precision_at ranked rel ~k:6);
  (* k beyond the ranking counts the misses. *)
  Alcotest.(check (float 1e-9)) "p@10" 0.3 (Inquery.Eval.precision_at ranked rel ~k:10);
  Alcotest.(check bool) "k=0 rejected" true
    (match Inquery.Eval.precision_at ranked rel ~k:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_recall_at () =
  Alcotest.(check (float 1e-9)) "r@1" 0.25 (Inquery.Eval.recall_at ranked rel ~k:1);
  Alcotest.(check (float 1e-9)) "r@6" 0.75 (Inquery.Eval.recall_at ranked rel ~k:6);
  Alcotest.(check (float 1e-9)) "no judgments" 0.0
    (Inquery.Eval.recall_at ranked (Inquery.Eval.judgments_of_list []) ~k:3)

let test_r_precision () =
  (* R = 4; top 4 = [1;2;3;4] contains 2 relevant. *)
  Alcotest.(check (float 1e-9)) "r-precision" 0.5 (Inquery.Eval.r_precision ranked rel);
  Alcotest.(check (float 1e-9)) "empty judgments" 0.0
    (Inquery.Eval.r_precision ranked (Inquery.Eval.judgments_of_list []))

let test_average_precision () =
  (* Relevant found at ranks 1 (p=1), 3 (p=2/3), 5 (p=3/5); 7 missed.
     AP = (1 + 2/3 + 3/5) / 4. *)
  let expect = (1.0 +. (2.0 /. 3.0) +. 0.6) /. 4.0 in
  Alcotest.(check (float 1e-9)) "ap" expect (Inquery.Eval.average_precision ranked rel)

let test_perfect_ranking () =
  let perfect = [ 1; 3; 5; 7 ] in
  Alcotest.(check (float 1e-9)) "ap of perfect" 1.0 (Inquery.Eval.average_precision perfect rel);
  Alcotest.(check (float 1e-9)) "r-precision of perfect" 1.0
    (Inquery.Eval.r_precision perfect rel)

let test_interpolated_precision () =
  (* At recall 0.5: best precision at or beyond 2 relevant found. *)
  Alcotest.(check (float 1e-9)) "interp at 0.5" (2.0 /. 3.0)
    (Inquery.Eval.interpolated_precision ranked rel ~recall:0.5);
  Alcotest.(check (float 1e-9)) "interp at 0" 1.0
    (Inquery.Eval.interpolated_precision ranked rel ~recall:0.0);
  Alcotest.(check (float 1e-9)) "unreachable recall" 0.0
    (Inquery.Eval.interpolated_precision ranked rel ~recall:1.0);
  Alcotest.(check bool) "range" true
    (match Inquery.Eval.interpolated_precision ranked rel ~recall:1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_take_stack_safe () =
  (* precision_at over a collection-sized ranked list exercises the
     tail-recursive take. *)
  let n = 1_000_000 in
  let ranked = List.init n Fun.id in
  let rel = Inquery.Eval.judgments_of_list [ 0; n - 1 ] in
  Alcotest.(check (float 1e-12)) "huge ranked list"
    (2.0 /. float_of_int n)
    (Inquery.Eval.precision_at ranked rel ~k:n)

let suite =
  [
    Alcotest.test_case "relevant count" `Quick test_relevant_count;
    Alcotest.test_case "take is stack safe" `Quick test_take_stack_safe;
    Alcotest.test_case "precision_at" `Quick test_precision_at;
    Alcotest.test_case "recall_at" `Quick test_recall_at;
    Alcotest.test_case "r_precision" `Quick test_r_precision;
    Alcotest.test_case "average precision" `Quick test_average_precision;
    Alcotest.test_case "perfect ranking" `Quick test_perfect_ranking;
    Alcotest.test_case "interpolated precision" `Quick test_interpolated_precision;
  ]
