(* Max-score top-k DAAT: result-identical to exhaustive evaluation,
   pruning stats, fallback shapes, v1-record degradation. *)

let corpus =
  [
    (0, "apple banana cherry apple date");
    (1, "banana cherry banana");
    (2, "cherry date elderberry fig grape");
    (3, "apple apple apple banana");
    (4, "information retrieval system design");
    (5, "retrieval of information by content");
    (6, "grape fig banana");
  ]

let source_of_docs docs =
  let ix = Inquery.Indexer.create () in
  List.iter (fun (id, text) -> Inquery.Indexer.add_document ix ~doc_id:id text) docs;
  let records = Hashtbl.create 16 in
  Seq.iter (fun (id, r) -> Hashtbl.replace records id r) (Inquery.Indexer.to_records ix);
  let dict = Inquery.Indexer.dictionary ix in
  let n = List.fold_left (fun acc (id, _) -> max acc (id + 1)) 0 docs in
  let source =
    {
      Inquery.Infnet.fetch = (fun e -> Hashtbl.find_opt records e.Inquery.Dictionary.id);
      n_docs = n;
      max_doc_id = n - 1;
      avg_doc_len = Inquery.Indexer.avg_doc_length ix;
      doc_len = Inquery.Indexer.doc_length ix;
    }
  in
  (source, dict)

let make () = source_of_docs corpus

let rank_order (a : Inquery.Infnet.scored) (b : Inquery.Infnet.scored) =
  if a.Inquery.Infnet.belief = b.Inquery.Infnet.belief then
    compare a.Inquery.Infnet.doc b.Inquery.Infnet.doc
  else compare b.Inquery.Infnet.belief a.Inquery.Infnet.belief

let take k xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go k [] xs

let reference source dict q ~k =
  let daat, _ = Inquery.Infnet.eval_daat source dict q in
  take k (List.sort rank_order daat)

(* Exact equality — docs AND beliefs bit-identical. *)
let check_identical ?(k = 5) query () =
  let source, dict = make () in
  let q = Inquery.Query.parse_exn query in
  let expect = reference source dict q ~k in
  let got, _, _ = Inquery.Infnet.eval_topk source dict ~audit:true ~k q in
  Alcotest.(check int) "result count" (List.length expect) (List.length got);
  List.iter2
    (fun (e : Inquery.Infnet.scored) (g : Inquery.Infnet.scored) ->
      Alcotest.(check int) "doc" e.Inquery.Infnet.doc g.Inquery.Infnet.doc;
      Alcotest.(check bool)
        (Printf.sprintf "belief bit-identical for doc %d" e.Inquery.Infnet.doc)
        true
        (e.Inquery.Infnet.belief = g.Inquery.Infnet.belief))
    expect got

let pruned_queries =
  [ "apple"; "#sum( apple banana )"; "#sum( apple banana cherry fig date )";
    "#wsum( 3 apple 1 cherry 2 fig )"; "#wsum( 1 retrieval 2 information )" ]

(* Shapes the intersection-first executor now handles: top-level #and
   of terms and the positional operators plan as Intersect. *)
let intersect_queries =
  [ "#and( banana cherry )"; "#phrase( information retrieval )";
    "#od3( information retrieval )"; "#uw5( retrieval information )" ]

let fallback_queries =
  [ "#or( date grape )"; "#max( apple elderberry )"; "#not( apple )";
    "#sum( retrieval #phrase( information retrieval ) )";
    "#sum( apple #and( banana cherry ) )" ]

let test_pruned_path_runs () =
  let source, dict = make () in
  List.iter
    (fun query ->
      let q = Inquery.Query.parse_exn query in
      let _, _, t = Inquery.Infnet.eval_topk source dict ~k:3 q in
      Alcotest.(check bool) ("pruned path: " ^ query) true t.Inquery.Infnet.tk_pruned;
      Alcotest.(check bool) ("maxscore plan: " ^ query) true
        (t.Inquery.Infnet.tk_plan = Inquery.Planner.Maxscore))
    pruned_queries

let test_intersect_shapes () =
  let source, dict = make () in
  List.iter
    (fun query ->
      let q = Inquery.Query.parse_exn query in
      let got, _, t = Inquery.Infnet.eval_topk source dict ~k:4 q in
      Alcotest.(check bool) ("intersect plan: " ^ query) true
        (t.Inquery.Infnet.tk_plan = Inquery.Planner.Intersect);
      Alcotest.(check bool) ("pruned: " ^ query) true t.Inquery.Infnet.tk_pruned;
      let expect = reference source dict q ~k:4 in
      Alcotest.(check bool) ("identical: " ^ query) true (got = expect))
    intersect_queries

let test_fallback_shapes () =
  let source, dict = make () in
  List.iter
    (fun query ->
      let q = Inquery.Query.parse_exn query in
      let got, _, t = Inquery.Infnet.eval_topk source dict ~k:4 q in
      Alcotest.(check bool) ("fallback: " ^ query) false t.Inquery.Infnet.tk_pruned;
      Alcotest.(check bool) ("exhaustive plan: " ^ query) true
        (t.Inquery.Infnet.tk_plan = Inquery.Planner.Exhaustive);
      let expect = reference source dict q ~k:4 in
      Alcotest.(check bool) ("identical: " ^ query) true (got = expect))
    fallback_queries

let test_forced_plans_identical () =
  (* Every forced plan returns bit-identical results on every shape —
     inapplicable plans fall back to exhaustive rather than failing. *)
  let source, dict = make () in
  List.iter
    (fun query ->
      let q = Inquery.Query.parse_exn query in
      let expect = reference source dict q ~k:4 in
      List.iter
        (fun p ->
          let got, _, _ =
            Inquery.Infnet.eval_topk source dict ~audit:true
              ~plan:(Inquery.Planner.Forced p) ~k:4 q
          in
          Alcotest.(check bool)
            (Printf.sprintf "forced %s: %s" (Inquery.Planner.plan_name p) query)
            true (got = expect))
        [ Inquery.Planner.Exhaustive; Inquery.Planner.Maxscore; Inquery.Planner.Intersect ])
    (pruned_queries @ intersect_queries @ fallback_queries)

let test_exhaustive_flag () =
  let source, dict = make () in
  let q = Inquery.Query.parse_exn "#sum( apple banana )" in
  let got, _, t = Inquery.Infnet.eval_topk source dict ~exhaustive:true ~k:3 q in
  Alcotest.(check bool) "forced fallback" false t.Inquery.Infnet.tk_pruned;
  Alcotest.(check bool) "identical" true (got = reference source dict q ~k:3)

let test_edge_ks () =
  let source, dict = make () in
  let q = Inquery.Query.parse_exn "#sum( apple banana )" in
  let empty, _, _ = Inquery.Infnet.eval_topk source dict ~k:0 q in
  Alcotest.(check int) "k = 0" 0 (List.length empty);
  let all, _, _ = Inquery.Infnet.eval_topk source dict ~k:100 q in
  Alcotest.(check bool) "k > matches" true (all = reference source dict q ~k:100);
  Alcotest.(check bool) "negative k" true
    (match Inquery.Infnet.eval_topk source dict ~k:(-1) q with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let oov, _, _ = Inquery.Infnet.eval_topk source dict ~k:5 (Inquery.Query.parse_exn "zzz") in
  Alcotest.(check int) "oov only" 0 (List.length oov)

(* A collection big enough for multi-block records: 600 docs, a dense
   near-zero-idf term everywhere and a rare high-tf term. *)
let big_docs =
  List.init 600 (fun d ->
      (* The rare term clusters in the first skip block so pruning can
         jump the filler cursor's remaining blocks wholesale — cursors
         decode whole blocks, so only clean block skips reduce the
         decode counter. *)
      (d, if d < 18 then "filler rare rare rare rare rare" else "filler"))

let test_pruning_decodes_fewer () =
  let source, dict = source_of_docs big_docs in
  let q = Inquery.Query.parse_exn "#sum( rare filler )" in
  let got, _, t = Inquery.Infnet.eval_topk source dict ~audit:true ~k:5 q in
  Alcotest.(check bool) "pruned path" true t.Inquery.Infnet.tk_pruned;
  Alcotest.(check int) "total = sum of df" 618 t.Inquery.Infnet.tk_postings_total;
  Alcotest.(check bool) "decodes strictly fewer" true
    (t.Inquery.Infnet.tk_postings_decoded < t.Inquery.Infnet.tk_postings_total);
  Alcotest.(check bool) "identical" true (got = reference source dict q ~k:5)

let test_should_stop () =
  let source, dict = source_of_docs big_docs in
  let q = Inquery.Query.parse_exn "#sum( rare filler )" in
  let calls = ref 0 in
  let stop (_ : Inquery.Infnet.stats) =
    incr calls;
    !calls > 3
  in
  let ranked, _, t = Inquery.Infnet.eval_topk source dict ~should_stop:stop ~k:5 q in
  Alcotest.(check bool) "stopped early" true t.Inquery.Infnet.tk_stopped;
  Alcotest.(check bool) "partial results bounded" true (List.length ranked <= 5)

let test_v1_records_still_exact () =
  (* Force every record back to the v1 layout: the pruned path loses the
     max_tf header (bound degrades) but results stay bit-identical. *)
  let source, dict = source_of_docs big_docs in
  let v1_source =
    {
      source with
      Inquery.Infnet.fetch =
        (fun e ->
          Option.map
            (fun r ->
              Inquery.Postings.encode_v1
                (List.map
                   (fun dp -> (dp.Inquery.Postings.doc, dp.Inquery.Postings.positions))
                   (Inquery.Postings.decode r)))
            (source.Inquery.Infnet.fetch e));
    }
  in
  let q = Inquery.Query.parse_exn "#sum( rare filler )" in
  let got, _, t = Inquery.Infnet.eval_topk v1_source dict ~audit:true ~k:5 q in
  Alcotest.(check bool) "pruned path still runs" true t.Inquery.Infnet.tk_pruned;
  Alcotest.(check bool) "identical over v1 records" true
    (got = reference v1_source dict q ~k:5)

(* --- property: eval_topk = first k of exhaustive, random everything --- *)

let vocab = [| "alpha"; "beta"; "gamma"; "delta"; "echo"; "foxtrot"; "golf"; "hotel" |]

let gen_docs =
  QCheck.Gen.(list_size (int_range 1 40) (list_size (int_range 1 12) (int_range 0 7)))

let gen_query =
  QCheck.Gen.(
    let term = map (fun i -> vocab.(i)) (int_range 0 7) in
    let terms lo hi = list_size (int_range lo hi) term in
    frequency
      [
        (2, map (fun t -> t) term);
        (4, map (fun ts -> "#sum( " ^ String.concat " " ts ^ " )") (terms 2 6));
        (3,
          map
            (fun ts ->
              let parts = List.mapi (fun i t -> string_of_int (1 + (i mod 3)) ^ " " ^ t) ts in
              "#wsum( " ^ String.concat " " parts ^ " )")
            (terms 2 5));
        (1, map (fun ts -> "#and( " ^ String.concat " " ts ^ " )") (terms 2 3));
        (1, map (fun ts -> "#or( " ^ String.concat " " ts ^ " )") (terms 2 3));
        (1, map (fun t -> "#not( " ^ t ^ " )") term);
        (1,
          map2
            (fun a b -> Printf.sprintf "#phrase( %s %s )" a b)
            term term);
        (1, map2 (fun a b -> Printf.sprintf "#od3( %s %s )" a b) term term);
        (1, map2 (fun a b -> Printf.sprintf "#uw5( %s %s )" a b) term term);
        (1,
          map2
            (fun ts (a, b) ->
              Printf.sprintf "#sum( %s #phrase( %s %s ) )" (String.concat " " ts) a b)
            (terms 1 3) (pair term term));
      ])

let prop_topk_is_first_k =
  QCheck.Test.make ~name:"eval_topk = first k of exhaustive eval_daat" ~count:300
    (QCheck.make QCheck.Gen.(triple gen_docs gen_query (int_range 0 12)))
    (fun (docs, query, k) ->
      let docs =
        List.mapi (fun i words -> (i, String.concat " " (List.map (Array.get vocab) words))) docs
      in
      let source, dict = source_of_docs docs in
      let q = Inquery.Query.parse_exn query in
      let expect = reference source dict q ~k in
      let got, _, _ = Inquery.Infnet.eval_topk source dict ~audit:true ~k q in
      got = expect)

let suite =
  List.map
    (fun q -> Alcotest.test_case ("identical: " ^ q) `Quick (check_identical q))
    (pruned_queries @ intersect_queries @ fallback_queries)
  @ [
      Alcotest.test_case "pruned path runs on flat shapes" `Quick test_pruned_path_runs;
      Alcotest.test_case "intersect shapes" `Quick test_intersect_shapes;
      Alcotest.test_case "fallback shapes" `Quick test_fallback_shapes;
      Alcotest.test_case "forced plans identical" `Quick test_forced_plans_identical;
      Alcotest.test_case "exhaustive flag" `Quick test_exhaustive_flag;
      Alcotest.test_case "edge ks" `Quick test_edge_ks;
      Alcotest.test_case "pruning decodes fewer" `Quick test_pruning_decodes_fewer;
      Alcotest.test_case "should_stop cuts evaluation" `Quick test_should_stop;
      Alcotest.test_case "v1 records still exact" `Quick test_v1_records_still_exact;
      QCheck_alcotest.to_alcotest prop_topk_is_first_k;
    ]
