(* Doc-partitioned scatter-gather: bit-identity with the unsharded
   engine on every preset, coverage accounting under dead shards, both
   failure policies, and the deadline overshoot bound when one shard
   stalls.  [REPRO_TEST_DOMAINS] (used by CI) pins the shard counts the
   preset property exercises. *)

let shard_counts =
  match Sys.getenv_opt "REPRO_TEST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d > 0 -> [ d ]
    | _ -> [ 1; 2; 4; 8 ])
  | None -> [ 1; 2; 4; 8 ]

let pairs ranked =
  List.map (fun r -> (r.Inquery.Ranking.doc, r.Inquery.Ranking.score)) ranked

let firstk k l = List.filteri (fun i _ -> i < k) l

(* --- The preset property: merged top-k bit-identical to unsharded --- *)

let scale = 0.01
let preset_names = [ "cacm"; "legal"; "tipster1"; "tipster" ]
let prepared_tbl : (string, Core.Experiment.prepared) Hashtbl.t = Hashtbl.create 4

let prepared_of name =
  match Hashtbl.find_opt prepared_tbl name with
  | Some p -> p
  | None ->
    let p = Core.Experiment.prepare (Collections.Presets.find ~scale name) in
    Hashtbl.add prepared_tbl name p;
    p

let queries_of name =
  let model = (prepared_of name).Core.Experiment.model in
  let spec = Collections.Presets.topk_queries model in
  firstk 6 (Collections.Querygen.generate model spec)

let coord_tbl : (string * int * bool, Core.Shard.t) Hashtbl.t = Hashtbl.create 8

let coord_of name shards global_bound =
  match Hashtbl.find_opt coord_tbl (name, shards, global_bound) with
  | Some c -> c
  | None ->
    let c =
      Core.Shard.create ~shard_replicas:1 ~global_bound ~shards (prepared_of name)
    in
    Hashtbl.add coord_tbl (name, shards, global_bound) c;
    c

(* Whatever the preset, the shard count, or the pruning mode (the
   global-bound floor drives the shards' pruned [eval_topk] path; with
   the bound off they evaluate exactly), the merged scatter-gather
   top-k carries the same documents and bit-identical beliefs as the
   unsharded index. *)
let prop_sharded_matches_unsharded =
  QCheck.Test.make ~name:"sharded top-k bit-identical to unsharded (all presets)" ~count:16
    QCheck.(make Gen.(triple (oneofl preset_names) (oneofl shard_counts) bool))
    (fun (name, shards, global_bound) ->
      let p = prepared_of name in
      let shards = min shards p.Core.Experiment.model.Collections.Docmodel.n_docs in
      let engine = Core.Experiment.open_engine p Core.Experiment.Mneme_cache in
      let c = coord_of name shards global_bound in
      List.for_all
        (fun q ->
          let oracle =
            pairs (Core.Engine.run_topk_string ~k:10 engine q).Core.Engine.topk_ranked
          in
          match Core.Shard.run_query_string ~top_k:10 c q with
          | Error _ -> false
          | Ok res ->
            res.Core.Shard.complete
            && Core.Shard.full_coverage res.Core.Shard.coverage
            && pairs res.Core.Shard.ranked = oracle)
        (queries_of name))

(* --- Fault scenarios over a small dedicated collection -------------- *)

let model =
  Collections.Docmodel.make ~name:"shard-test" ~n_docs:24 ~core_vocab:120
    ~mean_doc_len:30.0 ~hapax_prob:0.05 ~seed:11 ()

let prepared = lazy (Core.Experiment.prepare model)

let big_query =
  let t r = Collections.Synth.core_term ~rank:r in
  Printf.sprintf "#sum( %s %s %s %s )" (t 1) (t 2) (t 3) (t 4)

(* The full above-baseline unsharded ranking: restricting it to the
   surviving doc ranges yields the exact partial-result oracle. *)
let full_oracle () =
  let p = Lazy.force prepared in
  let engine = Core.Experiment.open_engine p Core.Experiment.Mneme_cache in
  pairs
    (Core.Engine.run_topk_string ~exhaustive:true ~k:24 engine big_query)
      .Core.Engine.topk_ranked

let restrict ranges l =
  List.filter (fun (d, _) -> List.exists (fun (lo, hi) -> d >= lo && d < hi) ranges) l

(* Fresh two-shard coordinator with transient buffer pools, so a purge
   of the OS caches makes every fetch a physical, faultable I/O. *)
let make ?policy () =
  let p = Lazy.force prepared in
  Core.Shard.create ~shard_replicas:1 ?policy ~buffers:Core.Buffer_sizing.no_cache
    ~shards:2 p

let chill c =
  List.iter
    (fun s ->
      let fe = Core.Shard.shard_frontend c ~shard:s in
      List.iter
        (fun r -> Vfs.purge_os_cache (Core.Frontend.replica_vfs fe ~name:r))
        (Core.Shard.replica_names c ~shard:s))
    (Core.Shard.shard_names c)

let kill c shard =
  let fe = Core.Shard.shard_frontend c ~shard in
  List.iter
    (fun r -> Vfs.set_fault (Core.Frontend.replica_vfs fe ~name:r) (Vfs.Fault.crash_at_io 1))
    (Core.Shard.replica_names c ~shard)

let report_of res shard =
  match
    List.find_opt (fun r -> String.equal r.Core.Shard.r_shard shard) res.Core.Shard.reports
  with
  | Some r -> r
  | None -> Alcotest.fail (shard ^ " missing from the reports")

(* Best_effort 1.0 with a dead shard: a typed coverage error, never a
   silently truncated Ok. *)
let test_best_effort_below_min_is_typed_error () =
  let c = make () (* Best_effort 1.0 is the default *) in
  kill c "shard0";
  chill c;
  match Core.Shard.run_query_string ~top_k:10 c big_query with
  | Ok res ->
    Alcotest.fail
      (Printf.sprintf "dead shard served a silently truncated ranking (%d docs, complete=%b)"
         (List.length res.Core.Shard.ranked) res.Core.Shard.complete)
  | Error (Core.Shard.Shard_failed _ as e) ->
    Alcotest.fail ("expected a coverage error, got: " ^ Core.Shard.error_message e)
  | Error (Core.Shard.Coverage_below_min { coverage; fraction; min_coverage }) ->
    Alcotest.(check int) "one shard answered" 1 coverage.Core.Shard.answered;
    Alcotest.(check int) "one shard shed" 1 coverage.Core.Shard.shed;
    Alcotest.(check int) "no degraded shard" 0 coverage.Core.Shard.degraded;
    Alcotest.(check (float 1e-9)) "half the documents covered" 0.5 fraction;
    Alcotest.(check (float 1e-9)) "the policy floor" 1.0 min_coverage;
    Alcotest.(check bool) "message names the shortfall" true
      (String.length (Core.Shard.error_message (Core.Shard.Coverage_below_min
         { coverage; fraction; min_coverage })) > 0)

(* Best_effort 0.0: the partial ranking is exactly the unsharded index
   restricted to the surviving range, with honest coverage accounting
   and a retried shard. *)
let test_best_effort_partial_is_exact_restriction () =
  let c = make ~policy:(Core.Shard.Best_effort 0.0) () in
  kill c "shard0";
  chill c;
  match Core.Shard.run_query_string ~top_k:10 c big_query with
  | Error e -> Alcotest.fail (Core.Shard.error_message e)
  | Ok res ->
    Alcotest.(check bool) "not complete" false res.Core.Shard.complete;
    let cov = res.Core.Shard.coverage in
    Alcotest.(check int) "2 shards total" 2 cov.Core.Shard.shards_total;
    Alcotest.(check int) "one answered" 1 cov.Core.Shard.answered;
    Alcotest.(check int) "one shed" 1 cov.Core.Shard.shed;
    let lo, hi = Core.Shard.shard_range c ~shard:"shard1" in
    Alcotest.(check int) "covered docs = surviving range" (hi - lo)
      cov.Core.Shard.docs_covered;
    let rep = report_of res "shard0" in
    (match rep.Core.Shard.r_status with
    | Core.Shard.Shed _ -> ()
    | _ -> Alcotest.fail "dead shard not reported shed");
    Alcotest.(check bool) "dead shard was retried" true (rep.Core.Shard.r_attempts >= 2);
    Alcotest.(check bool) "partial ranking = restricted unsharded ranking" true
      (pairs res.Core.Shard.ranked = firstk 10 (restrict [ (lo, hi) ] (full_oracle ())))

(* Fail_fast: the first failing shard surfaces as a typed error. *)
let test_fail_fast_surfaces_first_shard_error () =
  let c = make ~policy:Core.Shard.Fail_fast () in
  kill c "shard0";
  chill c;
  match Core.Shard.run_query_string ~top_k:10 c big_query with
  | Ok _ -> Alcotest.fail "Fail_fast served despite a dead shard"
  | Error (Core.Shard.Coverage_below_min _) ->
    Alcotest.fail "Fail_fast reported coverage instead of the shard error"
  | Error (Core.Shard.Shard_failed { shard; attempts; reason }) ->
    Alcotest.(check string) "the dead shard is named" "shard0" shard;
    Alcotest.(check bool) "retried before failing" true (attempts >= 2);
    Alcotest.(check bool) "a reason is carried" true (String.length reason > 0)

(* The satellite regression: a stalled shard cannot block the merged
   response.  One shard's device is slowed below the hedge threshold;
   under a deadline the healthy shard meets, the merge returns the
   healthy shard's exact restriction and overshoots the deadline by at
   most one in-flight fetch. *)
let test_stalled_shard_cannot_block_merge () =
  let clean = make ~policy:(Core.Shard.Best_effort 0.0) () in
  chill clean;
  let clean_ms =
    match Core.Shard.run_query_string ~top_k:10 clean big_query with
    | Ok res -> res.Core.Shard.elapsed_ms
    | Error e -> Alcotest.fail (Core.Shard.error_message e)
  in
  let brown_ms = 40.0 (* below the 60 ms hedge threshold: a pure slowdown *) in
  let c = make ~policy:(Core.Shard.Best_effort 0.0) () in
  let fe = Core.Shard.shard_frontend c ~shard:"shard0" in
  List.iter
    (fun r ->
      Vfs.set_fault
        (Core.Frontend.replica_vfs fe ~name:r)
        (Vfs.Fault.degraded_device ~file:"shard0.mneme" ~ms:brown_ms))
    (Core.Shard.replica_names c ~shard:"shard0");
  chill c;
  let slow_ms =
    match Core.Shard.run_query_string ~top_k:10 c big_query with
    | Ok res -> res.Core.Shard.elapsed_ms
    | Error e -> Alcotest.fail (Core.Shard.error_message e)
  in
  Alcotest.(check bool)
    (Printf.sprintf "the stall slows the undeadlined scatter (%.2f > %.2f)" slow_ms clean_ms)
    true
    (slow_ms > clean_ms +. (0.5 *. brown_ms));
  (* A deadline between the clean and the stalled latency: the healthy
     shard answers, the stalled one must be cut. *)
  let deadline = clean_ms +. (0.5 *. (slow_ms -. clean_ms)) in
  chill c;
  match Core.Shard.run_query_string ~top_k:10 ~deadline_ms:deadline c big_query with
  | Error e -> Alcotest.fail (Core.Shard.error_message e)
  | Ok res ->
    Alcotest.(check bool) "partial, not blocked" false res.Core.Shard.complete;
    let rep = report_of res "shard0" in
    (match rep.Core.Shard.r_status with
    | Core.Shard.Degraded _ -> ()
    | Core.Shard.Answered -> Alcotest.fail "stalled shard claims a full answer"
    | Core.Shard.Shed _ -> Alcotest.fail "slowdown was misclassified as a device failure");
    Alcotest.(check bool) "deadline recorded" true rep.Core.Shard.r_deadline_hit;
    (match (report_of res "shard1").Core.Shard.r_status with
    | Core.Shard.Answered -> ()
    | _ -> Alcotest.fail "healthy shard failed to answer");
    let allow = brown_ms +. clean_ms +. 1.0 in
    Alcotest.(check bool)
      (Printf.sprintf "merged response within deadline + one fetch (%.2f <= %.2f + %.2f)"
         res.Core.Shard.elapsed_ms deadline allow)
      true
      (res.Core.Shard.elapsed_ms <= deadline +. allow);
    let lo, hi = Core.Shard.shard_range c ~shard:"shard1" in
    Alcotest.(check bool) "merged ranking = healthy shard's exact restriction" true
      (pairs res.Core.Shard.ranked = firstk 10 (restrict [ (lo, hi) ] (full_oracle ())))

let test_validation () =
  let p = Lazy.force prepared in
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "zero shards" true
    (invalid (fun () -> Core.Shard.create ~shards:0 p));
  Alcotest.(check bool) "zero replicas" true
    (invalid (fun () -> Core.Shard.create ~shard_replicas:0 ~shards:1 p));
  Alcotest.(check bool) "more shards than documents" true
    (invalid (fun () -> Core.Shard.create ~shards:1000 p));
  Alcotest.(check bool) "negative retries" true
    (invalid (fun () -> Core.Shard.create ~retries:(-1) ~shards:1 p));
  Alcotest.(check bool) "coverage floor above 1" true
    (invalid (fun () -> Core.Shard.create ~policy:(Core.Shard.Best_effort 1.5) ~shards:1 p));
  let c = make () in
  Alcotest.(check bool) "non-positive deadline" true
    (invalid (fun () -> Core.Shard.run_query_string ~deadline_ms:0.0 c big_query));
  Alcotest.(check (list string)) "shard names in range order" [ "shard0"; "shard1" ]
    (Core.Shard.shard_names c);
  let lo0, hi0 = Core.Shard.shard_range c ~shard:"shard0" in
  let lo1, hi1 = Core.Shard.shard_range c ~shard:"shard1" in
  Alcotest.(check bool) "ranges partition the collection" true
    (lo0 = 0 && hi0 = lo1 && hi1 = Core.Shard.doc_count c)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sharded_matches_unsharded;
    Alcotest.test_case "Best_effort below min is a typed error" `Quick
      test_best_effort_below_min_is_typed_error;
    Alcotest.test_case "partial result is the exact restriction" `Quick
      test_best_effort_partial_is_exact_restriction;
    Alcotest.test_case "Fail_fast surfaces the first shard error" `Quick
      test_fail_fast_surfaces_first_shard_error;
    Alcotest.test_case "stalled shard cannot block the merge" `Quick
      test_stalled_shard_cannot_block_merge;
    Alcotest.test_case "validation and ranges" `Quick test_validation;
  ]
