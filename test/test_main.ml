(* Aggregate test runner: one Alcotest section per module. *)

let () =
  Alcotest.run "persistent-ir"
    [
      ("util.varint", Test_varint.suite);
      ("util.delta", Test_delta.suite);
      ("util.rng", Test_rng.suite);
      ("util.zipf", Test_zipf.suite);
      ("util.stats", Test_stats.suite);
      ("util.lru", Test_lru.suite);
      ("util.bin", Test_bin.suite);
      ("util.crc32", Test_crc32.suite);
      ("util.bitio", Test_bitio.suite);
      ("util.codes", Test_codes.suite);
      ("util.tables", Test_tables.suite);
      ("vfs", Test_vfs.suite);
      ("btree", Test_btree.suite);
      ("mneme.oid", Test_oid.suite);
      ("mneme.policy", Test_policy.suite);
      ("mneme.buffer_pool", Test_buffer_pool.suite);
      ("mneme.store", Test_store.suite);
      ("mneme.chain", Test_chain.suite);
      ("mneme.journal", Test_journal.suite);
      ("mneme.federation", Test_federation.suite);
      ("mneme.replica", Test_replica.suite);
      ("mneme.check", Test_check.suite);
      ("inquery.lexer", Test_lexer.suite);
      ("inquery.stopwords", Test_stopwords.suite);
      ("inquery.stemmer", Test_stemmer.suite);
      ("inquery.dictionary", Test_dictionary.suite);
      ("inquery.postings", Test_postings.suite);
      ("inquery.indexer", Test_indexer.suite);
      ("inquery.query", Test_query.suite);
      ("inquery.infnet", Test_infnet.suite);
      ("inquery.ranking", Test_ranking.suite);
      ("inquery.eval", Test_eval.suite);
      ("inquery.daat", Test_daat.suite);
      ("inquery.proximity", Test_proximity.suite);
      ("inquery.sigfile", Test_sigfile.suite);
      ("collections.synth", Test_synth.suite);
      ("collections.querygen", Test_querygen.suite);
      ("collections.presets", Test_presets.suite);
      ("collections.analysis", Test_analysis.suite);
      ("core.partition", Test_partition.suite);
      ("core.buffer_sizing", Test_buffer_sizing.suite);
      ("core.backends", Test_backends.suite);
      ("core.experiment", Test_experiment.suite);
      ("core.report", Test_report.suite);
      ("core.live_index", Test_live_index.suite);
      ("core.catalog", Test_catalog.suite);
      ("core.engine", Test_engine.suite);
      ("core.frontend", Test_frontend.suite);
      ("core.paper", Test_paper.suite);
      ("core.ablation", Test_ablation.suite);
      ("core.torture", Test_torture.suite);
      ("properties", Test_properties.suite);
    ]
