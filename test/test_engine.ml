(* The integrated engine: query execution, reservation, CPU charging. *)

let model =
  Collections.Docmodel.make ~name:"eng" ~n_docs:400 ~core_vocab:1200 ~mean_doc_len:60.0
    ~hapax_prob:0.02 ~seed:61 ()

let prepared = lazy (Core.Experiment.prepare model)

let engine version = Core.Experiment.open_engine (Lazy.force prepared) version

let test_results_identical_across_backends () =
  let queries =
    [ "ba"; "#sum( ba be bi )"; "#and( ba #or( be bo ) )"; "#wsum( 2 ba 1 bu )";
      "#phrase( ba be )" ]
  in
  let run version =
    let e = engine version in
    List.map
      (fun q ->
        (Core.Engine.run_query_string ~top_k:20 e q).Core.Engine.ranked
        |> List.map (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score)))
      queries
  in
  let bt = run Core.Experiment.Btree in
  let mc = run Core.Experiment.Mneme_cache in
  let mn = run Core.Experiment.Mneme_no_cache in
  Alcotest.(check bool) "btree = mneme cache" true (bt = mc);
  Alcotest.(check bool) "btree = mneme nocache" true (bt = mn)

let test_engine_cpu_charged () =
  let p = Lazy.force prepared in
  let e = engine Core.Experiment.Btree in
  let clock = Vfs.clock p.Core.Experiment.vfs in
  let before = (Vfs.Clock.snapshot clock).Vfs.Clock.engine_cpu_ms in
  ignore (Core.Engine.run_query_string e "#sum( ba be )");
  let after = (Vfs.Clock.snapshot clock).Vfs.Clock.engine_cpu_ms in
  Alcotest.(check bool) "cpu charged" true (after > before)

let test_run_batch_order () =
  let e = engine Core.Experiment.Mneme_cache in
  let results = Core.Engine.run_batch e [ "ba"; "be" ] in
  Alcotest.(check int) "two results" 2 (List.length results)

let test_invalid_query_raises () =
  let e = engine Core.Experiment.Mneme_cache in
  Alcotest.(check bool) "syntax error" true
    (match Core.Engine.run_query_string e "#and(" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_store_accessor () =
  let e = engine Core.Experiment.Mneme_cache in
  Alcotest.(check string) "store name" "mneme-cache" (Core.Engine.store e).Core.Index_store.name

let test_reservation_pins_during_query () =
  (* With reservation on, a repeated-term query over a tight buffer
     keeps its records resident; measured indirectly: reserve-on never
     does more I/O than reserve-off on the same session sequence. *)
  let p = Lazy.force prepared in
  let tight =
    Core.Buffer_sizing.with_large
      (Core.Experiment.default_buffers p)
      (p.Core.Experiment.largest_record * 5 / 4)
  in
  let io reserve =
    Vfs.purge_os_cache p.Core.Experiment.vfs;
    let store =
      Core.Mneme_backend.open_session p.Core.Experiment.vfs ~file:p.Core.Experiment.mneme_file
        ~buffers:tight
    in
    let catalog = Core.Catalog.load p.Core.Experiment.vfs ~file:p.Core.Experiment.catalog_file in
    let e =
      Core.Engine.create ~vfs:p.Core.Experiment.vfs ~store ~dict:catalog.Core.Catalog.dict
        ~n_docs:catalog.Core.Catalog.n_docs
        ~avg_doc_len:(Core.Catalog.avg_doc_length catalog)
        ~doc_len:(fun d ->
          if d < 0 || d >= Array.length catalog.Core.Catalog.doc_lens then 0
          else catalog.Core.Catalog.doc_lens.(d))
        ~reserve ()
    in
    let before = (Vfs.counters p.Core.Experiment.vfs).Vfs.file_accesses in
    ignore (Core.Engine.run_batch e [ "#sum( ba be bi bo bu ca ce ci )"; "#sum( ba be bi )" ]);
    (Vfs.counters p.Core.Experiment.vfs).Vfs.file_accesses - before
  in
  let with_reserve = io true in
  let without = io false in
  Alcotest.(check bool)
    (Printf.sprintf "reserve (%d) <= no reserve (%d)" with_reserve without)
    true (with_reserve <= without)

(* A reservation taken before evaluation must be released even when
   evaluation raises (salvage off + corrupt record): leaked pins would
   accumulate across queries and starve the buffers. *)
let test_reservation_released_when_eval_raises () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "leak.mneme" in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  let medium_buf = Mneme.Buffer_pool.create ~name:"medium" ~capacity:100_000 () in
  let large_buf = Mneme.Buffer_pool.create ~name:"large" ~capacity:100_000 () in
  Mneme.Store.attach_buffer medium medium_buf;
  Mneme.Store.attach_buffer large large_buf;
  (* Two one-term records built by a real indexer so they decode. *)
  let indexer = Inquery.Indexer.create () in
  Inquery.Indexer.add_document_terms indexer ~doc_id:0 [| "srv"; "vct" |];
  Inquery.Indexer.add_document_terms indexer ~doc_id:1 [| "srv" |];
  let dict = Inquery.Indexer.dictionary indexer in
  (* srv to the medium pool, vct to the large pool: distinct physical
     segments, so one can be corrupted and the other kept resident. *)
  Inquery.Indexer.to_records indexer
  |> Seq.iter (fun (tid, record) ->
         let entry = Option.get (Inquery.Dictionary.find_by_id dict tid) in
         let pool = if entry.Inquery.Dictionary.term = "srv" then medium else large in
         entry.Inquery.Dictionary.locator <- Mneme.Store.allocate pool record);
  Mneme.Store.finalize store;
  let session =
    {
      Core.Index_store.name = "leak";
      fetch =
        (fun entry ->
          let locator = entry.Inquery.Dictionary.locator in
          if locator < 0 then None else Mneme.Store.get_opt store locator);
      reserve =
        (fun entries ->
          Mneme.Store.reserve store
            (List.filter_map
               (fun e ->
                 let l = e.Inquery.Dictionary.locator in
                 if l < 0 then None else Some l)
               entries));
      buffer_stats = (fun () -> []);
      reset_buffer_stats = (fun () -> ());
      file_size = (fun () -> Mneme.Store.file_size store);
      epoch = (fun () -> Mneme.Store.epoch store);
    }
  in
  let engine =
    Core.Engine.create ~vfs ~store:session ~dict ~n_docs:2 ~avg_doc_len:1.5
      ~doc_len:(Inquery.Indexer.doc_length indexer)
      ~reserve:true ~salvage:false ()
  in
  (* Warm srv's segment so the next reservation actually pins it. *)
  ignore (Core.Engine.run_query_string engine "srv");
  (* Damage vct's segment on disk; it is not buffered, so the fetch will
     re-read it and fail its CRC. *)
  let vct = Option.get (Inquery.Dictionary.find dict "vct") in
  let pseg = Option.get (Mneme.Store.locate_pseg store vct.Inquery.Dictionary.locator) in
  let off, len = List.assoc pseg (Mneme.Store.pool_segments large) in
  let f = Vfs.open_file vfs "leak.mneme" in
  let target = off + (len / 2) in
  let byte = Bytes.get (Vfs.read f ~off:target ~len:1) 0 in
  Vfs.write f ~off:target (Bytes.make 1 (Char.chr (Char.code byte lxor 0x10)));
  Mneme.Buffer_pool.drop large_buf ~pseg;
  Alcotest.(check bool) "query aborts with Corrupt" true
    (match Core.Engine.run_query_string engine "#sum( srv vct )" with
    | _ -> false
    | exception Mneme.Store.Corrupt _ -> true);
  Alcotest.(check (list int)) "no pins leaked in the medium buffer" []
    (Mneme.Buffer_pool.pinned_segments medium_buf);
  Alcotest.(check (list int)) "no pins leaked in the large buffer" []
    (Mneme.Buffer_pool.pinned_segments large_buf);
  (* The engine still serves clean queries afterwards. *)
  Alcotest.(check bool) "engine survives" true
    ((Core.Engine.run_query_string engine "srv").Core.Engine.ranked <> [])

(* Read-repair: a corrupt segment quarantines its term (salvage mode),
   later fetches short-circuit without touching the store, and
   [heal_pending] restores the term from a pristine peer copy. *)
let test_read_repair_heals_quarantine () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "heal.mneme" in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  let medium_buf = Mneme.Buffer_pool.create ~name:"medium" ~capacity:100_000 () in
  let large_buf = Mneme.Buffer_pool.create ~name:"large" ~capacity:100_000 () in
  Mneme.Store.attach_buffer medium medium_buf;
  Mneme.Store.attach_buffer large large_buf;
  let indexer = Inquery.Indexer.create () in
  Inquery.Indexer.add_document_terms indexer ~doc_id:0 [| "srv"; "vct" |];
  Inquery.Indexer.add_document_terms indexer ~doc_id:1 [| "srv" |];
  let dict = Inquery.Indexer.dictionary indexer in
  Inquery.Indexer.to_records indexer
  |> Seq.iter (fun (tid, record) ->
         let entry = Option.get (Inquery.Dictionary.find_by_id dict tid) in
         let pool = if entry.Inquery.Dictionary.term = "srv" then medium else large in
         entry.Inquery.Dictionary.locator <- Mneme.Store.allocate pool record);
  Mneme.Store.finalize store;
  (* Pristine replica taken before the rot. *)
  let backup = Vfs.create () in
  Vfs.copy_file vfs "heal.mneme" ~into:backup;
  let fetches = ref 0 in
  let session =
    {
      Core.Index_store.name = "heal";
      fetch =
        (fun entry ->
          incr fetches;
          let locator = entry.Inquery.Dictionary.locator in
          if locator < 0 then None else Mneme.Store.get_opt store locator);
      reserve = (fun _ () -> ());
      buffer_stats = (fun () -> []);
      reset_buffer_stats = (fun () -> ());
      file_size = (fun () -> Mneme.Store.file_size store);
      epoch = (fun () -> Mneme.Store.epoch store);
    }
  in
  let engine =
    Core.Engine.create ~vfs ~store:session ~dict ~n_docs:2 ~avg_doc_len:1.5
      ~doc_len:(Inquery.Indexer.doc_length indexer)
      ~reserve:false ()
  in
  let query = "#sum( srv vct )" in
  let baseline = (Core.Engine.run_query_string engine query).Core.Engine.ranked in
  Alcotest.(check (list reject)) "nothing quarantined yet" []
    (Core.Engine.pending_repairs engine |> List.map (fun _ -> assert false));
  (* Rot vct's segment on disk and evict the clean buffered copy. *)
  let vct = Option.get (Inquery.Dictionary.find dict "vct") in
  let pseg = Option.get (Mneme.Store.locate_pseg store vct.Inquery.Dictionary.locator) in
  let off, len = List.assoc pseg (Mneme.Store.pool_segments large) in
  let f = Vfs.open_file vfs "heal.mneme" in
  let target = off + (len / 2) in
  let byte = Bytes.get (Vfs.read f ~off:target ~len:1) 0 in
  Vfs.write f ~off:target (Bytes.make 1 (Char.chr (Char.code byte lxor 0x10)));
  Mneme.Buffer_pool.drop large_buf ~pseg;
  (* Salvage keeps the query alive and quarantines the term. *)
  let degraded = (Core.Engine.run_query_string engine query).Core.Engine.ranked in
  Alcotest.(check bool) "degraded results differ" true (degraded <> baseline);
  (match Core.Engine.pending_repairs engine with
  | [ t ] ->
    Alcotest.(check string) "ticket names the term" "vct" t.Core.Engine.term;
    Alcotest.(check bool) "reason carries the CRC complaint" true
      (Str_find.contains t.Core.Engine.reason "CRC")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 ticket, got %d" (List.length l)));
  (* While quarantined, re-evaluation short-circuits: the store is not
     asked for vct's record again. *)
  let before = !fetches in
  ignore (Core.Engine.run_query_string engine query);
  Alcotest.(check int) "only srv fetched while quarantined" 1 (!fetches - before);
  Alcotest.(check int) "still one quarantine entry" 1
    (List.length (Core.Engine.quarantined engine));
  (* Heal from the pristine backup and observe full recovery. *)
  (match Core.Engine.heal_pending engine ~store ~sources:[ ("backup", backup) ] with
  | [ (term, Ok src) ] ->
    Alcotest.(check string) "healed term" "vct" term;
    Alcotest.(check string) "healed from backup" "backup" src
  | [ (_, Error e) ] -> Alcotest.fail ("heal failed: " ^ e)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 outcome, got %d" (List.length l)));
  Alcotest.(check int) "quarantine lifted" 0 (List.length (Core.Engine.quarantined engine));
  Alcotest.(check (list reject)) "worklist drained" []
    (Core.Engine.pending_repairs engine |> List.map (fun _ -> assert false));
  let healed = (Core.Engine.run_query_string engine query).Core.Engine.ranked in
  Alcotest.(check bool) "results restored" true (healed = baseline);
  Alcotest.(check bool) "mark_healed false for unknown term" false
    (Core.Engine.mark_healed engine ~term:"nope")

(* heal_pending reports per-ticket failures and keeps the quarantine
   when no source holds a verified copy. *)
let test_heal_pending_keeps_failed_tickets () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "heal2.mneme" in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  let large_buf = Mneme.Buffer_pool.create ~name:"large" ~capacity:100_000 () in
  Mneme.Store.attach_buffer large large_buf;
  let indexer = Inquery.Indexer.create () in
  Inquery.Indexer.add_document_terms indexer ~doc_id:0 [| "vct" |];
  let dict = Inquery.Indexer.dictionary indexer in
  Inquery.Indexer.to_records indexer
  |> Seq.iter (fun (tid, record) ->
         let entry = Option.get (Inquery.Dictionary.find_by_id dict tid) in
         entry.Inquery.Dictionary.locator <- Mneme.Store.allocate large record);
  Mneme.Store.finalize store;
  let session =
    {
      Core.Index_store.name = "heal2";
      fetch =
        (fun entry ->
          let locator = entry.Inquery.Dictionary.locator in
          if locator < 0 then None else Mneme.Store.get_opt store locator);
      reserve = (fun _ () -> ());
      buffer_stats = (fun () -> []);
      reset_buffer_stats = (fun () -> ());
      file_size = (fun () -> Mneme.Store.file_size store);
      epoch = (fun () -> Mneme.Store.epoch store);
    }
  in
  let engine =
    Core.Engine.create ~vfs ~store:session ~dict ~n_docs:1 ~avg_doc_len:1.0
      ~doc_len:(Inquery.Indexer.doc_length indexer)
      ~reserve:false ()
  in
  let vct = Option.get (Inquery.Dictionary.find dict "vct") in
  let pseg = Option.get (Mneme.Store.locate_pseg store vct.Inquery.Dictionary.locator) in
  let off, len = List.assoc pseg (Mneme.Store.pool_segments large) in
  let f = Vfs.open_file vfs "heal2.mneme" in
  let target = off + (len / 2) in
  let byte = Bytes.get (Vfs.read f ~off:target ~len:1) 0 in
  Vfs.write f ~off:target (Bytes.make 1 (Char.chr (Char.code byte lxor 0x10)));
  Mneme.Buffer_pool.drop large_buf ~pseg;
  (* A replica taken after the rot is as rotten as the primary. *)
  let rotten = Vfs.create () in
  Vfs.copy_file vfs "heal2.mneme" ~into:rotten;
  ignore (Core.Engine.run_query_string engine "vct");
  Alcotest.(check int) "quarantined" 1 (List.length (Core.Engine.quarantined engine));
  (match Core.Engine.heal_pending engine ~store ~sources:[ ("rotten", rotten) ] with
  | [ ("vct", Error _) ] -> ()
  | _ -> Alcotest.fail "expected a single failed outcome");
  Alcotest.(check int) "ticket kept" 1 (List.length (Core.Engine.pending_repairs engine));
  Alcotest.(check int) "still quarantined" 1 (List.length (Core.Engine.quarantined engine))

let test_top_k_limits () =
  let e = engine Core.Experiment.Mneme_cache in
  let r = Core.Engine.run_query_string ~top_k:3 e "ba" in
  Alcotest.(check bool) "at most 3" true (List.length r.Core.Engine.ranked <= 3)

let suite =
  [
    Alcotest.test_case "results identical across backends" `Quick
      test_results_identical_across_backends;
    Alcotest.test_case "engine cpu charged" `Quick test_engine_cpu_charged;
    Alcotest.test_case "run batch" `Quick test_run_batch_order;
    Alcotest.test_case "invalid query raises" `Quick test_invalid_query_raises;
    Alcotest.test_case "store accessor" `Quick test_store_accessor;
    Alcotest.test_case "reservation helps" `Quick test_reservation_pins_during_query;
    Alcotest.test_case "reservation released when eval raises" `Quick
      test_reservation_released_when_eval_raises;
    Alcotest.test_case "read repair heals quarantine" `Quick
      test_read_repair_heals_quarantine;
    Alcotest.test_case "heal_pending keeps failed tickets" `Quick
      test_heal_pending_keeps_failed_tickets;
    Alcotest.test_case "top_k limits" `Quick test_top_k_limits;
  ]
