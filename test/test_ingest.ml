(* Crash-safe online ingestion: the memory buffer unioned with the
   disk index must rank bit-identically to a from-scratch twin at every
   step, acknowledgements must survive a crash at every physical I/O
   exactly once, the budgeted merge must resume idempotently, and
   backpressure must shed load while the merge is behind and clear once
   it drains. *)

let fingerprint ranked =
  List.map
    (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score))
    ranked

let queries =
  let t r = Collections.Synth.core_term ~rank:r in
  [ t 1; Printf.sprintf "#sum( %s %s %s )" (t 1) (t 2) (t 3) ]

let small_config =
  { Core.Ingest.buffer_budget = 1 lsl 20; seal_bytes = 512; tier_fanout = 2 }

let model ?(n_docs = 30) ?(seed = 11) () =
  Collections.Docmodel.make ~name:"ingest-test" ~n_docs ~core_vocab:120 ~mean_doc_len:25.0
    ~hapax_prob:0.05 ~seed ()

let docs_of m = Array.of_seq (Collections.Synth.documents m)

let union_fp t = List.map (fun q -> fingerprint (Core.Ingest.search ~top_k:10 t q)) queries
let twin_fp tw = List.map (fun q -> fingerprint (Core.Live_index.search ~top_k:10 tw q)) queries

let add_acked t text =
  match Core.Ingest.add_document t text with
  | Core.Ingest.Acked { doc; _ } -> doc
  | Core.Ingest.Overloaded -> Alcotest.fail "unexpected backpressure"

(* --- the union oracle ---------------------------------------------- *)

let test_union_matches_twin () =
  let vfs = Vfs.create () in
  let t = Core.Ingest.create ~config:small_config vfs ~file:"u.mneme" () in
  let twin = Core.Live_index.create_btree (Vfs.create ()) ~file:"u.btree" () in
  let budget = Mneme.Budget.create ~max_bytes:1024 () in
  let docs = docs_of (model ()) in
  Array.iteri
    (fun d doc ->
      let text = Collections.Synth.document_text doc in
      let id = add_acked t text in
      ignore (Core.Live_index.add_document twin ~doc_id:id text);
      if d mod 3 = 2 then begin
        let a = Core.Ingest.delete_document t (id - 2) in
        let b = Core.Live_index.delete_document twin (id - 2) in
        Alcotest.(check bool) "delete existence agrees" b a
      end;
      if d mod 4 = 3 then ignore (Core.Ingest.merge_step ~budget t);
      (* After every operation the union ranks exactly like a
         from-scratch index of the same surviving documents. *)
      Alcotest.(check bool)
        (Printf.sprintf "rankings agree after op %d" d)
        true
        (union_fp t = twin_fp twin))
    docs;
  let s = Core.Ingest.stats t in
  Alcotest.(check bool) "some documents stayed buffered" true (Core.Ingest.buffered_docs t > 0);
  Alcotest.(check bool) "merge folded under budget" true (s.Core.Ingest.folds > 0);
  Core.Ingest.drain t;
  Alcotest.(check bool) "rankings agree after the drain" true (union_fp t = twin_fp twin);
  Alcotest.(check (list (pair int int)))
    "document tables agree" (Core.Live_index.doc_lengths twin) (Core.Ingest.documents t);
  Alcotest.(check int) "buffer empty after the drain" 0 (Core.Ingest.buffered_docs t);
  Alcotest.(check (list (pair string string))) "audit clean" [] (Core.Ingest.audit t);
  ignore (Core.Live_index.gc (Core.Ingest.live t));
  Alcotest.(check int) "nothing stranded after gc" 0
    (Core.Live_index.stranded_bytes (Core.Ingest.live t));
  let store = Option.get (Core.Live_index.mneme_store (Core.Ingest.live t)) in
  let rep = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
  Alcotest.(check bool)
    (Format.asprintf "%a" Mneme.Check.pp_report rep)
    true (Mneme.Check.ok rep)

(* --- crash-point enumeration (the tentpole audit) ------------------ *)

let test_every_ingest_point_recovers_exactly_once () =
  let o = Core.Torture.run_ingest ~seed:42 ~docs:8 () in
  Alcotest.(check bool) "workload performs I/O" true (o.Core.Torture.i_points > 30);
  Alcotest.(check (list (pair int string)))
    "no invariant violations" [] o.Core.Torture.i_problems;
  Alcotest.(check int) "every point audited" o.Core.Torture.i_points
    (o.Core.Torture.i_opened + o.Core.Torture.i_unopenable);
  Alcotest.(check bool) "every crash image opens" true (o.Core.Torture.i_unopenable = 0);
  (* Crashes before a fold's commit record seals leave the old root ... *)
  Alcotest.(check bool) "some roots wholly old" true (o.Core.Torture.i_wholly_old > 0);
  (* ... crashes after it leave the new one — never a mix. *)
  Alcotest.(check bool) "some roots wholly new" true (o.Core.Torture.i_wholly_new > 0);
  Alcotest.(check bool) "merge folded repeatedly" true (o.Core.Torture.i_folds > 1);
  Alcotest.(check bool) "recovery redelivered WAL records" true
    (o.Core.Torture.i_redelivered > 0)

let prop_random_ingest_crash_point =
  let plans = Hashtbl.create 4 in
  let plan_for seed =
    match Hashtbl.find_opt plans seed with
    | Some p -> p
    | None ->
      let p = Core.Torture.prepare_ingest ~seed ~docs:5 () in
      Hashtbl.add plans seed p;
      p
  in
  QCheck.Test.make ~name:"random ingest workload, random crash point recovers exactly once"
    ~count:30
    QCheck.(pair (int_range 1 3) (int_range 0 999))
    (fun (seed, frac) ->
      let plan = plan_for seed in
      let n = Core.Torture.ingest_points plan in
      let k = 1 + (frac * n / 1000) in
      let r = Core.Torture.run_ingest_point plan k in
      r.Core.Torture.i_problems = [])

(* --- WAL recovery without any fold --------------------------------- *)

let test_wal_replay_recovers_unmerged_buffer () =
  let vfs = Vfs.create () in
  let t = Core.Ingest.create ~config:small_config vfs ~file:"w.mneme" () in
  let docs = docs_of (model ~n_docs:10 ~seed:3 ()) in
  Array.iter (fun doc -> ignore (add_acked t (Collections.Synth.document_text doc))) docs;
  ignore (Core.Ingest.delete_document t 1);
  ignore (Core.Ingest.delete_document t 4);
  let golden = union_fp t in
  let table = Core.Ingest.documents t in
  let seq = Core.Ingest.last_seq t in
  (* Power cut: only fsynced bytes survive.  No fold ever ran, so the
     entire state must come back from the WAL alone. *)
  let img = Vfs.crash_image vfs in
  let t' = Core.Ingest.open_ ~config:small_config img ~file:"w.mneme" () in
  Alcotest.(check int) "every acknowledged operation recovered" seq (Core.Ingest.last_seq t');
  Alcotest.(check int) "all twelve records replayed" 12
    (Core.Ingest.stats t').Core.Ingest.replayed_ops;
  Alcotest.(check (list (pair int int)))
    "every acknowledged document present exactly once" table (Core.Ingest.documents t');
  Alcotest.(check bool) "rankings survive the crash" true (union_fp t' = golden);
  Alcotest.(check (list (pair string string))) "audit clean" [] (Core.Ingest.audit t');
  Core.Ingest.drain t';
  Alcotest.(check bool) "rankings survive the drain" true (union_fp t' = golden);
  Alcotest.(check int) "frontier reaches the last acknowledgement" seq
    (Core.Ingest.merged_seq t')

(* --- merge-resume idempotency -------------------------------------- *)

let test_merge_resume_byte_identical () =
  let budget = Mneme.Budget.create ~max_segments:1 () in
  let docs = docs_of (model ~n_docs:40 ~seed:5 ()) in
  let apply t =
    Array.iteri
      (fun d doc ->
        let id = add_acked t (Collections.Synth.document_text doc) in
        if d mod 3 = 2 then ignore (Core.Ingest.delete_document t (id - 2)))
      docs
  in
  let disk_image t =
    let live = Core.Ingest.live t in
    let records =
      List.map
        (fun (term, _, _) -> (term, Option.get (Core.Live_index.lookup live term)))
        (Core.Live_index.directory live)
    in
    (records, Core.Live_index.doc_lengths live, Core.Ingest.merged_seq t)
  in
  (* Golden: one uninterrupted budgeted drain. *)
  let golden_steps = ref 0 in
  let golden =
    let t = Core.Ingest.create ~config:small_config (Vfs.create ()) ~file:"m.mneme" () in
    apply t;
    while Core.Ingest.merge_step ~budget t do
      incr golden_steps
    done;
    disk_image t
  in
  Alcotest.(check bool) "drain takes several budget steps" true (!golden_steps > 2);
  (* Kill the merge between every pair of budget steps, reopen from the
     durable image, drain — the postings objects must come out
     byte-identical to the uninterrupted merge. *)
  for j = 0 to !golden_steps - 1 do
    let vfs = Vfs.create () in
    let t = Core.Ingest.create ~config:small_config vfs ~file:"m.mneme" () in
    apply t;
    for _ = 1 to j do
      ignore (Core.Ingest.merge_step ~budget t)
    done;
    let img = Vfs.crash_image vfs in
    let t' = Core.Ingest.open_ ~config:small_config img ~file:"m.mneme" () in
    Core.Ingest.drain t';
    Alcotest.(check bool)
      (Printf.sprintf "disk state after a kill at step %d matches the uninterrupted merge" j)
      true
      (disk_image t' = golden)
  done

(* --- backpressure under a stalled merge ---------------------------- *)

let test_backpressure_sheds_and_recovers () =
  let vfs = Vfs.create () in
  let config = { Core.Ingest.buffer_budget = 2048; seal_bytes = 256; tier_fanout = 2 } in
  let t = Core.Ingest.create ~config vfs ~file:"bp.mneme" () in
  (* The merge is stalled on a degraded device: every I/O touching the
     store charges extra simulated disk time, so the buffer fills while
     the merge is behind. *)
  Vfs.set_fault vfs (Vfs.Fault.degraded_device ~file:"bp.mneme" ~ms:5.0);
  let docs = docs_of (model ~n_docs:60 ~seed:9 ()) in
  let accepted = ref 0 and shed = ref 0 and i = ref 0 in
  while !shed = 0 && !i < Array.length docs do
    (match Core.Ingest.add_document t (Collections.Synth.document_text docs.(!i)) with
    | Core.Ingest.Acked _ -> incr accepted
    | Core.Ingest.Overloaded -> incr shed);
    incr i
  done;
  Alcotest.(check bool) "past the byte budget the write path sheds load" true (!shed > 0);
  Alcotest.(check bool) "documents were accepted before the budget filled" true (!accepted > 0);
  Alcotest.(check int) "overloads counted" !shed (Core.Ingest.stats t).Core.Ingest.overloads;
  Alcotest.(check int) "a shed document was never assigned" !accepted
    (Core.Ingest.document_count t);
  (* The slow merge still drains — it just costs simulated disk time. *)
  let before = Vfs.Clock.wall_ms (Vfs.Clock.snapshot (Vfs.clock vfs)) in
  Core.Ingest.drain t;
  let after = Vfs.Clock.wall_ms (Vfs.Clock.snapshot (Vfs.clock vfs)) in
  Alcotest.(check bool) "draining through the degraded device cost disk time" true
    (after -. before > 0.0);
  Alcotest.(check int) "buffer empty after the drain" 0 (Core.Ingest.buffered_bytes t);
  (* Once the merge catches up, ingestion resumes. *)
  Vfs.set_fault vfs (Vfs.Fault.none ());
  (match Core.Ingest.add_document t (Collections.Synth.document_text docs.(!i)) with
  | Core.Ingest.Acked _ -> ()
  | Core.Ingest.Overloaded -> Alcotest.fail "ingestion did not resume after the drain");
  Alcotest.(check (list (pair string string))) "audit clean" [] (Core.Ingest.audit t)

(* --- tombstone-only drains ----------------------------------------- *)

let test_tombstone_only_drain_reaches_frontier () =
  let vfs = Vfs.create () in
  let t = Core.Ingest.create ~config:small_config vfs ~file:"to.mneme" () in
  let d0 = add_acked t "alpha beta gamma" in
  ignore (add_acked t "alpha delta epsilon");
  Core.Ingest.drain t;
  (* Both documents are on disk; a deletion now leaves the buffer empty
     except for the tombstone.  The merge must still fold it, advance
     the frontier past the deletion and cut the WAL. *)
  Alcotest.(check bool) "deletion acknowledged" true (Core.Ingest.delete_document t d0);
  Alcotest.(check bool) "frontier behind the deletion" true
    (Core.Ingest.merged_seq t < Core.Ingest.last_seq t);
  Core.Ingest.drain t;
  Alcotest.(check int) "frontier reaches the deletion" (Core.Ingest.last_seq t)
    (Core.Ingest.merged_seq t);
  Alcotest.(check bool) "document gone from the union" false (Core.Ingest.contains_document t d0);
  Alcotest.(check bool) "document gone from the disk index" false
    (Core.Live_index.contains_document (Core.Ingest.live t) d0);
  Alcotest.(check int) "WAL truncated" 0 (Vfs.size (Vfs.open_file vfs "to.mneme.wal"));
  Alcotest.(check (list (pair string string))) "audit clean" [] (Core.Ingest.audit t)

(* --- randomized interleavings on every preset ---------------------- *)

let preset_names = [ "cacm"; "legal"; "tipster1"; "tipster" ]

let preset_docs =
  let tbl = Hashtbl.create 4 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some d -> d
    | None ->
      let model = Collections.Presets.find ~scale:0.01 name in
      let d = Array.of_seq (Seq.take 10 (Collections.Synth.documents model)) in
      Hashtbl.add tbl name d;
      d

let prop_union_matches_twin_on_presets =
  QCheck.Test.make
    ~name:"random add/delete/merge/gc interleavings rank like the twin on every preset" ~count:24
    QCheck.(pair (int_range 0 3) (int_range 0 9999))
    (fun (pi, seed) ->
      let docs = preset_docs (List.nth preset_names pi) in
      let rng = Random.State.make [| seed |] in
      let t = Core.Ingest.create ~config:small_config (Vfs.create ()) ~file:"pp.mneme" () in
      let twin = Core.Live_index.create_btree (Vfs.create ()) ~file:"pp.btree" () in
      let budget = Mneme.Budget.create ~max_bytes:1024 () in
      let alive = ref [] in
      let ok = ref true in
      let check b = if not b then ok := false in
      Array.iter
        (fun doc ->
          let text = Collections.Synth.document_text doc in
          (match Core.Ingest.add_document t text with
          | Core.Ingest.Acked { doc = id; _ } ->
            ignore (Core.Live_index.add_document twin ~doc_id:id text);
            alive := id :: !alive
          | Core.Ingest.Overloaded -> check false);
          (if Random.State.int rng 3 = 0 then
             let l = !alive in
             let victim = List.nth l (Random.State.int rng (List.length l)) in
             check
               (Core.Ingest.delete_document t victim
               = Core.Live_index.delete_document twin victim);
             alive := List.filter (fun d -> d <> victim) !alive);
          if Random.State.int rng 3 = 0 then ignore (Core.Ingest.merge_step ~budget t);
          if Random.State.int rng 4 = 0 then ignore (Core.Live_index.gc (Core.Ingest.live t));
          check (union_fp t = twin_fp twin))
        docs;
      Core.Ingest.drain t;
      check (union_fp t = twin_fp twin);
      ignore (Core.Live_index.gc (Core.Ingest.live t));
      check (Core.Live_index.stranded_bytes (Core.Ingest.live t) = 0);
      check (Core.Ingest.audit t = []);
      !ok)

(* --- pinned unions plug into the engine ---------------------------- *)

let test_session_serves_pinned_union () =
  let vfs = Vfs.create () in
  let t = Core.Ingest.create ~config:small_config vfs ~file:"s.mneme" () in
  let docs = docs_of (model ~n_docs:12 ~seed:7 ()) in
  Array.iteri
    (fun d doc ->
      ignore (add_acked t (Collections.Synth.document_text doc));
      if d = 5 then ignore (Core.Ingest.merge_step t))
    docs;
  ignore (Core.Ingest.delete_document t 2);
  let golden = union_fp t in
  let s = Core.Ingest.session t in
  let engine =
    Core.Engine.create ~vfs ~store:s.Core.Ingest.ses_store ~dict:s.Core.Ingest.ses_dict
      ~n_docs:s.Core.Ingest.ses_n_docs ~max_doc_id:s.Core.Ingest.ses_max_doc_id
      ~avg_doc_len:s.Core.Ingest.ses_avg_doc_len
      ~doc_len:s.Core.Ingest.ses_doc_len ()
  in
  let engine_fp () =
    List.map
      (fun q -> fingerprint (Core.Engine.run_query_string ~top_k:10 engine q).Core.Engine.ranked)
      queries
  in
  Alcotest.(check bool) "an engine over the session ranks like the union" true
    (engine_fp () = golden);
  (* The session is pinned: later ingestion, merging and gc do not move
     what it serves. *)
  ignore (add_acked t "wholly new text thereafter");
  Core.Ingest.drain t;
  ignore (Core.Live_index.gc (Core.Ingest.live t));
  Alcotest.(check bool) "the session is frozen under churn" true (engine_fp () = golden);
  Core.Ingest.close_session t s;
  ignore (Core.Live_index.gc (Core.Ingest.live t));
  Alcotest.(check int) "nothing stranded once the session closes" 0
    (Core.Live_index.stranded_bytes (Core.Ingest.live t))

(* --- the shared merge/scrub budget --------------------------------- *)

let test_budget_semantics () =
  Alcotest.(check bool) "zero segment budget refused" true
    (match Mneme.Budget.create ~max_segments:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "zero byte budget refused" true
    (match Mneme.Budget.create ~max_bytes:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let b = Mneme.Budget.create ~max_segments:2 ~max_bytes:100 () in
  let m = Mneme.Budget.meter () in
  (* An empty meter is always within budget: the first item is admitted
     no matter its size, so progress is guaranteed. *)
  Alcotest.(check bool) "first item always admitted" true
    (Mneme.Budget.within (Mneme.Budget.create ~max_bytes:1 ()) m);
  Mneme.Budget.charge m ~segments:1 ~bytes:1000;
  Alcotest.(check bool) "over the byte budget" false (Mneme.Budget.within b m);
  Alcotest.(check int) "segments metered" 1 (Mneme.Budget.segments m);
  Alcotest.(check int) "bytes metered" 1000 (Mneme.Budget.bytes m);
  let m2 = Mneme.Budget.meter () in
  Mneme.Budget.charge m2 ~segments:1 ~bytes:10;
  Alcotest.(check bool) "within both budgets" true (Mneme.Budget.within b m2);
  Mneme.Budget.charge m2 ~segments:1 ~bytes:10;
  Alcotest.(check bool) "segment cap reached" false (Mneme.Budget.within b m2);
  Alcotest.(check bool) "unlimited never exhausts" true
    (Mneme.Budget.within Mneme.Budget.unlimited m)

let suite =
  [
    Alcotest.test_case "union rankings match a from-scratch twin" `Quick test_union_matches_twin;
    Alcotest.test_case "every ingest crash point recovers exactly once" `Quick
      test_every_ingest_point_recovers_exactly_once;
    QCheck_alcotest.to_alcotest prop_random_ingest_crash_point;
    Alcotest.test_case "WAL replay recovers an unmerged buffer" `Quick
      test_wal_replay_recovers_unmerged_buffer;
    Alcotest.test_case "merge resume is byte-identical" `Quick test_merge_resume_byte_identical;
    Alcotest.test_case "backpressure sheds load and recovers" `Quick
      test_backpressure_sheds_and_recovers;
    Alcotest.test_case "tombstone-only drain reaches the frontier" `Quick
      test_tombstone_only_drain_reaches_frontier;
    QCheck_alcotest.to_alcotest prop_union_matches_twin_on_presets;
    Alcotest.test_case "a session serves the pinned union" `Quick
      test_session_serves_pinned_union;
    Alcotest.test_case "budget semantics" `Quick test_budget_semantics;
  ]
