(* Replica frontend: deadlines, hedging, circuit breakers. *)

let model =
  (* Big enough that each core term's inverted record spans blocks of
     its own — a degraded device then stalls every term's fetch instead
     of only the first (later terms would otherwise ride the OS cache). *)
  Collections.Docmodel.make ~name:"fe" ~n_docs:2000 ~core_vocab:1200 ~mean_doc_len:100.0
    ~hapax_prob:0.02 ~seed:97 ()

let prepared = lazy (Core.Experiment.prepare model)
let terms = [ "ba"; "be"; "bi"; "bo"; "bu"; "ca"; "ce" ]
let big_query = "#sum( " ^ String.concat " " terms ^ " )"

let fingerprint ranked =
  List.map
    (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score))
    ranked

let engine_fingerprint () =
  let p = Lazy.force prepared in
  let e = Core.Experiment.open_engine p Core.Experiment.Mneme_cache in
  fingerprint (Core.Engine.run_query_string ~top_k:20 e big_query).Core.Engine.ranked

let test_group_matches_single_engine () =
  let p = Lazy.force prepared in
  let fe = Core.Frontend.of_prepared p ~names:[ "a"; "b" ] in
  let r = Core.Frontend.run_query_string ~top_k:20 fe big_query in
  Alcotest.(check bool) "same ranking as a lone engine" true
    (fingerprint r.Core.Frontend.ranked = engine_fingerprint ());
  Alcotest.(check bool) "not degraded" false r.Core.Frontend.degraded;
  Alcotest.(check int) "no hedging needed" 0 r.Core.Frontend.hedged_fetches;
  Alcotest.(check bool) "latency accounted" true (r.Core.Frontend.elapsed_ms > 0.0);
  Alcotest.(check (list string)) "replica names" [ "a"; "b" ] (Core.Frontend.replica_names fe)

let test_deadline_degrades_within_one_fetch () =
  let p = Lazy.force prepared in
  (* One replica, no record cache, a breaker that never trips: every
     fetch pays the degraded device in full. *)
  let fe =
    Core.Frontend.of_prepared p ~names:[ "solo" ] ~buffers:Core.Buffer_sizing.no_cache
      ~window:1000 ~trip_after:1000
  in
  let vfs = Core.Frontend.replica_vfs fe ~name:"solo" in
  Vfs.set_fault vfs
    (Vfs.Fault.degraded_device ~file:p.Core.Experiment.mneme_file ~ms:120.0);
  let max_fetch =
    List.fold_left
      (fun m q ->
        Vfs.purge_os_cache vfs;
        Float.max m (Core.Frontend.run_query_string fe q).Core.Frontend.elapsed_ms)
      0.0 terms
  in
  Vfs.purge_os_cache vfs;
  let full = Core.Frontend.run_query_string fe big_query in
  Alcotest.(check bool) "full run is slow but complete" false full.Core.Frontend.degraded;
  let deadline = max_fetch *. 1.5 in
  Alcotest.(check bool) "deadline cuts the full run short" true
    (full.Core.Frontend.elapsed_ms > deadline);
  Vfs.purge_os_cache vfs;
  let r = Core.Frontend.run_query_string ~deadline_ms:deadline fe big_query in
  Alcotest.(check bool) "deadline hit" true r.Core.Frontend.deadline_hit;
  Alcotest.(check bool) "flagged degraded" true r.Core.Frontend.degraded;
  Alcotest.(check bool) "some terms skipped" true (r.Core.Frontend.skipped_terms <> []);
  Alcotest.(check bool) "terms scored so far still ranked" true (r.Core.Frontend.ranked <> []);
  Alcotest.(check bool)
    (Printf.sprintf "overshoot bounded by one fetch (%.1f <= %.1f + %.1f)"
       r.Core.Frontend.elapsed_ms deadline max_fetch)
    true
    (r.Core.Frontend.elapsed_ms <= deadline +. max_fetch +. 1.0)

let test_hedging_rescues_and_breaker_trips () =
  let p = Lazy.force prepared in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "a"; "b" ] ~buffers:Core.Buffer_sizing.no_cache
      ~window:4 ~trip_after:2 ~cooldown_ms:1.0e6
  in
  Vfs.set_fault
    (Core.Frontend.replica_vfs fe ~name:"a")
    (Vfs.Fault.degraded_device ~file:p.Core.Experiment.mneme_file ~ms:150.0);
  let r = Core.Frontend.run_query_string ~top_k:20 fe big_query in
  Alcotest.(check bool) "stalls hedged to the healthy replica" true
    (r.Core.Frontend.hedged_fetches >= 1);
  Alcotest.(check bool) "served in full despite the sick replica" false
    r.Core.Frontend.degraded;
  Alcotest.(check string) "healthy replica took over" "b" r.Core.Frontend.served_by;
  Alcotest.(check string) "preference moved" "b" (Core.Frontend.preferred fe);
  Alcotest.(check bool) "ranking unharmed" true
    (fingerprint r.Core.Frontend.ranked = engine_fingerprint ());
  Alcotest.(check bool) "breaker opened on the sick replica" true
    (Core.Frontend.breaker fe ~name:"a" = Core.Frontend.Open);
  (* With the breaker open, traffic routes straight to b: no hedges. *)
  let r2 = Core.Frontend.run_query_string fe big_query in
  Alcotest.(check int) "no hedging once open" 0 r2.Core.Frontend.hedged_fetches;
  Alcotest.(check bool) "still healthy" false r2.Core.Frontend.degraded

let test_breaker_recloses_after_good_probe () =
  let p = Lazy.force prepared in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "a"; "b" ] ~buffers:Core.Buffer_sizing.no_cache
      ~window:2 ~trip_after:2 ~cooldown_ms:50.0
  in
  let vfs_a = Core.Frontend.replica_vfs fe ~name:"a" in
  Vfs.set_fault vfs_a
    (Vfs.Fault.degraded_device ~file:p.Core.Experiment.mneme_file ~ms:150.0);
  ignore (Core.Frontend.run_query_string fe big_query);
  Alcotest.(check bool) "tripped" true
    (Core.Frontend.breaker fe ~name:"a" = Core.Frontend.Open);
  (* Device repaired; after the cooldown the next fetch is a probe. *)
  Vfs.clear_fault vfs_a;
  Core.Frontend.tick fe 60.0;
  let r = Core.Frontend.run_query_string fe big_query in
  Alcotest.(check bool) "good probe closes the breaker" true
    (Core.Frontend.breaker fe ~name:"a" = Core.Frontend.Closed);
  Alcotest.(check bool) "query fine" false r.Core.Frontend.degraded

let test_failed_probe_reopens () =
  let p = Lazy.force prepared in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "a"; "b" ] ~buffers:Core.Buffer_sizing.no_cache
      ~window:2 ~trip_after:2 ~cooldown_ms:50.0
  in
  Vfs.set_fault
    (Core.Frontend.replica_vfs fe ~name:"a")
    (Vfs.Fault.degraded_device ~file:p.Core.Experiment.mneme_file ~ms:150.0);
  ignore (Core.Frontend.run_query_string fe big_query);
  Alcotest.(check bool) "tripped" true
    (Core.Frontend.breaker fe ~name:"a" = Core.Frontend.Open);
  Core.Frontend.tick fe 60.0;
  (* Still sick: the probe stalls, gets hedged, and the breaker reopens. *)
  let r = Core.Frontend.run_query_string fe big_query in
  Alcotest.(check bool) "bad probe reopens" true
    (Core.Frontend.breaker fe ~name:"a" = Core.Frontend.Open);
  Alcotest.(check bool) "probe hedged" true (r.Core.Frontend.hedged_fetches >= 1);
  Alcotest.(check bool) "query still served" false r.Core.Frontend.degraded

let test_unroutable_terms_degrade () =
  let p = Lazy.force prepared in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "solo" ] ~buffers:Core.Buffer_sizing.no_cache
      ~window:1 ~trip_after:1 ~cooldown_ms:50.0
  in
  let vfs = Core.Frontend.replica_vfs fe ~name:"solo" in
  Vfs.set_fault vfs
    (Vfs.Fault.degraded_device ~file:p.Core.Experiment.mneme_file ~ms:200.0);
  let r = Core.Frontend.run_query_string fe big_query in
  Alcotest.(check bool) "first stall opens the lone breaker" true
    (Core.Frontend.breaker fe ~name:"solo" = Core.Frontend.Open);
  Alcotest.(check bool) "rest of the query degrades" true r.Core.Frontend.degraded;
  Alcotest.(check bool) "not a deadline problem" false r.Core.Frontend.deadline_hit;
  Alcotest.(check bool) "unserved terms reported" true
    (List.length r.Core.Frontend.skipped_terms >= List.length terms - 1);
  (* Repair, wait out the cooldown: service restores itself. *)
  Vfs.clear_fault vfs;
  Core.Frontend.tick fe 60.0;
  let r2 = Core.Frontend.run_query_string fe big_query in
  Alcotest.(check bool) "recovered" false r2.Core.Frontend.degraded;
  Alcotest.(check bool) "breaker closed again" true
    (Core.Frontend.breaker fe ~name:"solo" = Core.Frontend.Closed)

(* A corrupt fetch is reported once per (replica, term), recorded on the
   frontend's read-repair worklist, and served via a healthy replica —
   the query itself never sees the damage. *)
let test_corrupt_fetch_recorded_and_hedged () =
  let p = Lazy.force prepared in
  let events = ref [] in
  let fe =
    Core.Frontend.of_prepared p ~names:[ "a"; "b" ] ~buffers:Core.Buffer_sizing.no_cache
      ~on_corrupt:(fun ~replica ~term ~reason -> events := (replica, term, reason) :: !events)
  in
  (* Locate ba's physical segment in replica a's copy of the store and
     flip a byte in the middle of it. *)
  let catalog = Core.Catalog.load p.Core.Experiment.vfs ~file:p.Core.Experiment.catalog_file in
  let entry = Option.get (Inquery.Dictionary.find catalog.Core.Catalog.dict "ba") in
  let vfs_a = Core.Frontend.replica_vfs fe ~name:"a" in
  let probe = Mneme.Store.open_existing vfs_a p.Core.Experiment.mneme_file in
  List.iter
    (fun name ->
      Mneme.Store.attach_buffer (Mneme.Store.pool probe name)
        (Mneme.Buffer_pool.create ~name ~capacity:500_000 ()))
    [ "small"; "medium"; "large" ];
  let locator = entry.Inquery.Dictionary.locator in
  let pool = Option.get (Mneme.Store.pool_of_oid probe locator) in
  let pseg = Option.get (Mneme.Store.locate_pseg probe locator) in
  let off, len = List.assoc pseg (Mneme.Store.pool_segments pool) in
  let f = Vfs.open_file vfs_a p.Core.Experiment.mneme_file in
  let target = off + (len / 2) in
  let byte = Bytes.get (Vfs.read f ~off:target ~len:1) 0 in
  Vfs.write f ~off:target (Bytes.make 1 (Char.chr (Char.code byte lxor 0x10)));
  let r = Core.Frontend.run_query_string ~top_k:20 fe big_query in
  Alcotest.(check bool) "served in full despite the rot" false r.Core.Frontend.degraded;
  Alcotest.(check (list reject)) "no failed terms" [] r.Core.Frontend.failed_terms;
  Alcotest.(check bool) "ranking matches a healthy engine" true
    (fingerprint r.Core.Frontend.ranked = engine_fingerprint ());
  (match Core.Frontend.corrupt_fetches fe with
  | [ e ] ->
    Alcotest.(check string) "sick replica named" "a" e.Core.Frontend.replica;
    Alcotest.(check string) "term named" "ba" e.Core.Frontend.term;
    Alcotest.(check bool) "reason carries the CRC complaint" true
      (Str_find.contains e.Core.Frontend.reason "CRC")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 corrupt fetch, got %d" (List.length l)));
  Alcotest.(check int) "hook fired" 1 (List.length !events);
  (match !events with
  | [ (replica, term, _) ] ->
    Alcotest.(check string) "hook replica" "a" replica;
    Alcotest.(check string) "hook term" "ba" term
  | _ -> assert false);
  (* Re-running the query neither duplicates the worklist entry nor
     re-fires the hook. *)
  ignore (Core.Frontend.run_query_string fe big_query);
  Alcotest.(check int) "worklist deduplicated" 1
    (List.length (Core.Frontend.corrupt_fetches fe));
  Alcotest.(check int) "hook fires once per (replica, term)" 1 (List.length !events);
  (* mark_repaired clears the entry exactly once. *)
  Alcotest.(check bool) "mark_repaired clears" true
    (Core.Frontend.mark_repaired fe ~replica:"a" ~term:"ba");
  Alcotest.(check (list reject)) "worklist empty" []
    (Core.Frontend.corrupt_fetches fe |> List.map (fun _ -> assert false));
  Alcotest.(check bool) "second mark_repaired is false" false
    (Core.Frontend.mark_repaired fe ~replica:"a" ~term:"ba");
  Alcotest.(check bool) "unknown entry is false" false
    (Core.Frontend.mark_repaired fe ~replica:"b" ~term:"ba")

let test_validation () =
  let p = Lazy.force prepared in
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "empty group" true
    (invalid (fun () -> Core.Frontend.of_prepared p ~names:[]));
  Alcotest.(check bool) "duplicate names" true
    (invalid (fun () -> Core.Frontend.of_prepared p ~names:[ "x"; "x" ]));
  Alcotest.(check bool) "bad trip_after" true
    (invalid (fun () -> Core.Frontend.of_prepared p ~names:[ "x" ] ~window:2 ~trip_after:3));
  let fe = Core.Frontend.of_prepared p ~names:[ "x" ] in
  Alcotest.(check bool) "bad deadline" true
    (invalid (fun () -> Core.Frontend.run_query_string ~deadline_ms:0.0 fe "ba"));
  Alcotest.(check bool) "negative tick" true
    (invalid (fun () -> Core.Frontend.tick fe (-1.0)))

let suite =
  [
    Alcotest.test_case "group matches single engine" `Quick test_group_matches_single_engine;
    Alcotest.test_case "deadline degrades within one fetch" `Quick
      test_deadline_degrades_within_one_fetch;
    Alcotest.test_case "hedging rescues, breaker trips" `Quick
      test_hedging_rescues_and_breaker_trips;
    Alcotest.test_case "good probe recloses breaker" `Quick
      test_breaker_recloses_after_good_probe;
    Alcotest.test_case "failed probe reopens breaker" `Quick test_failed_probe_reopens;
    Alcotest.test_case "unroutable terms degrade" `Quick test_unroutable_terms_degrade;
    Alcotest.test_case "corrupt fetch recorded and hedged" `Quick
      test_corrupt_fetch_recorded_and_hedged;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
