(* Crash-point torture: every physical I/O of a journaled workload is a
   crash point, and every crash image must recover to a consistent
   store; deliberate media corruption must be detected, never served. *)

let test_every_crash_point_recovers () =
  let o = Core.Torture.run ~seed:42 ~docs:10 ~update_batches:3 () in
  Alcotest.(check bool) "workload performs I/O" true (o.Core.Torture.crash_points > 30);
  Alcotest.(check (list (pair int string))) "no invariant violations" [] o.Core.Torture.problems;
  Alcotest.(check int) "every point audited" o.Core.Torture.crash_points
    (o.Core.Torture.opened + o.Core.Torture.unopenable);
  Alcotest.(check bool) "most crash images open" true
    (o.Core.Torture.opened > o.Core.Torture.unopenable);
  (* Crashes during an apply phase leave a committed log to replay. *)
  Alcotest.(check bool) "some logs replayed" true (o.Core.Torture.replayed > 0);
  (* Crashes during a log write leave an uncommitted log to discard. *)
  Alcotest.(check bool) "some logs discarded" true (o.Core.Torture.discarded > 0)

(* Random seeds and random crash points — the qcheck angle on the same
   invariant.  Plans are prepared once per seed and shared. *)
let prop_random_crash_point_consistent =
  let plans = Hashtbl.create 4 in
  let plan_for seed =
    match Hashtbl.find_opt plans seed with
    | Some p -> p
    | None ->
      let p = Core.Torture.prepare ~seed ~docs:7 ~update_batches:2 () in
      Hashtbl.add plans seed p;
      p
  in
  QCheck.Test.make ~name:"random workload, random crash point recovers" ~count:40
    QCheck.(pair (int_range 1 4) (int_range 0 999))
    (fun (seed, frac) ->
      let plan = plan_for seed in
      let n = Core.Torture.crash_points plan in
      let k = 1 + (frac * n / 1000) in
      let r = Core.Torture.run_point plan k in
      r.Core.Torture.problems = [])

(* --- failover torture --------------------------------------------- *)

let test_every_failover_point_serves_committed_prefix () =
  let o = Core.Torture.run_failover ~seed:42 ~docs:10 ~batches:3 ~standbys:2 () in
  Alcotest.(check bool) "workload performs I/O" true (o.Core.Torture.points > 30);
  Alcotest.(check (list (pair int string))) "no invariant violations" []
    o.Core.Torture.problems;
  Alcotest.(check int) "every point audited" o.Core.Torture.points
    (o.Core.Torture.promoted + o.Core.Torture.empty);
  (* Once the first batch commits, every later crash leaves a standby
     holding a committed prefix to promote. *)
  Alcotest.(check bool) "most crashes promote a survivor" true
    (o.Core.Torture.promoted > o.Core.Torture.empty)

let prop_random_failover_point_consistent =
  let plans = Hashtbl.create 4 in
  let plan_for seed =
    match Hashtbl.find_opt plans seed with
    | Some p -> p
    | None ->
      let p = Core.Torture.prepare_failover ~seed ~docs:7 ~batches:2 ~standbys:1 () in
      Hashtbl.add plans seed p;
      p
  in
  QCheck.Test.make ~name:"random workload, random primary crash fails over" ~count:30
    QCheck.(pair (int_range 1 3) (int_range 0 999))
    (fun (seed, frac) ->
      let plan = plan_for seed in
      let n = Core.Torture.failover_points plan in
      let k = 1 + (frac * n / 1000) in
      let r = Core.Torture.run_failover_point plan k in
      r.Core.Torture.problems = [])

(* --- scrub torture ------------------------------------------------- *)

let test_scrub_sweep_heals_every_segment () =
  let o = Core.Torture.run_scrub ~seed:42 ~docs:8 ~batches:2 ~standbys:1 () in
  Alcotest.(check bool)
    (Format.asprintf "%a" Core.Torture.pp_scrub_outcome o)
    true (Core.Torture.scrub_ok o);
  Alcotest.(check bool) "several segments swept" true (o.Core.Torture.sc_segments > 2);
  Alcotest.(check int) "primary plus standby" 2 o.Core.Torture.sc_members;
  Alcotest.(check int) "one heal per rotted segment" o.Core.Torture.sc_segments
    o.Core.Torture.sc_healed;
  Alcotest.(check bool) "crash-during-repair points exercised" true
    (o.Core.Torture.sc_crash_points > 0)

let test_scrub_budget_sweep_tradeoff () =
  let rows =
    Core.Torture.scrub_budget_sweep ~seed:42 ~docs:8 ~batches:2
      ~budgets:[ 1024; 1 lsl 20 ] ()
  in
  match rows with
  | [ small; big ] ->
    (* A tighter byte budget takes at least as many steps to find the
       rot, but never a longer single stall, than an effectively
       unbounded one. *)
    Alcotest.(check bool) "tight budget takes more steps" true
      (small.Core.Torture.sw_steps >= big.Core.Torture.sw_steps);
    Alcotest.(check int) "unbounded budget detects in one step" 1
      big.Core.Torture.sw_steps;
    Alcotest.(check bool) "stall bounded by the budget" true
      (small.Core.Torture.sw_stall_ms <= big.Core.Torture.sw_stall_ms);
    Alcotest.(check bool) "repair costs I/O time" true
      (small.Core.Torture.sw_heal_ms > 0.0)
  | l -> Alcotest.failf "expected 2 sweep rows, got %d" (List.length l)

(* --- media corruption --------------------------------------------- *)

(* A store whose objects live in known, distinct segments. *)
let build_two_segment_store vfs =
  let store = Mneme.Store.create vfs "c.mneme" in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  List.iter
    (fun (p, n) ->
      Mneme.Store.attach_buffer p (Mneme.Buffer_pool.create ~name:n ~capacity:100_000 ()))
    [ (medium, "medium"); (large, "large") ];
  let a = Mneme.Store.allocate medium (Bytes.make 500 'a') in
  let b = Mneme.Store.allocate large (Bytes.make 6000 'b') in
  Mneme.Store.finalize store;
  (a, b)

let reopen vfs =
  let store = Mneme.Store.open_existing vfs "c.mneme" in
  List.iter
    (fun n ->
      Mneme.Store.attach_buffer (Mneme.Store.pool store n)
        (Mneme.Buffer_pool.create ~name:n ~capacity:100_000 ()))
    [ "medium"; "large" ];
  store

let corrupt_object_segment vfs ~file store oid =
  let pool = Option.get (Mneme.Store.pool_of_oid store oid) in
  let pseg = Option.get (Mneme.Store.locate_pseg store oid) in
  let off, len = List.assoc pseg (Mneme.Store.pool_segments pool) in
  let target = off + (len / 2) in
  let f = Vfs.open_file vfs file in
  let byte = Bytes.get (Vfs.read f ~off:target ~len:1) 0 in
  Vfs.write f ~off:target (Bytes.make 1 (Char.chr (Char.code byte lxor 0x10)))

let test_bit_flip_raises_corrupt () =
  let vfs = Vfs.create () in
  let a, b = build_two_segment_store vfs in
  let probe = reopen vfs in
  corrupt_object_segment vfs ~file:"c.mneme" probe a;
  (* A fresh session faults the damaged segment from the file: the CRC
     catches the flip and [get] refuses — garbage is never returned. *)
  let store = reopen vfs in
  Alcotest.(check bool) "corrupted object raises Corrupt" true
    (match Mneme.Store.get store a with
    | _ -> false
    | exception Mneme.Store.Corrupt _ -> true);
  (* The undamaged segment still serves. *)
  Alcotest.(check bytes) "other segment unaffected" (Bytes.make 6000 'b')
    (Mneme.Store.get store b);
  (* fsck names the damaged segment. *)
  let report = Mneme.Check.run (reopen vfs) in
  Alcotest.(check bool) "fsck flags it" false (Mneme.Check.ok report);
  Alcotest.(check bool) "as a CRC mismatch" true
    (List.exists
       (fun p -> p.Mneme.Check.what = "segment CRC32 mismatch")
       report.Mneme.Check.problems)

let test_clean_store_passes_crc_check () =
  let vfs = Vfs.create () in
  let _ = build_two_segment_store vfs in
  let report = Mneme.Check.run (reopen vfs) in
  Alcotest.(check bool) "clean" true (Mneme.Check.ok report)

(* --- engine salvage ----------------------------------------------- *)

let salvage_model =
  Collections.Docmodel.make ~name:"salv" ~n_docs:120 ~core_vocab:400 ~mean_doc_len:40.0
    ~hapax_prob:0.02 ~seed:17 ()

let test_engine_salvages_corrupt_term () =
  let p = Core.Experiment.prepare salvage_model in
  let vfs = p.Core.Experiment.vfs in
  let catalog = Core.Catalog.load vfs ~file:p.Core.Experiment.catalog_file in
  let dict = catalog.Core.Catalog.dict in
  let entry term =
    match Inquery.Dictionary.find dict term with
    | Some e -> e
    | None -> Alcotest.failf "term %s not in the synthetic vocabulary" term
  in
  (* Find two terms whose records live in different physical segments,
     then damage the first one's segment on disk. *)
  let probe = Mneme.Store.open_existing vfs p.Core.Experiment.mneme_file in
  List.iter
    (fun n ->
      Mneme.Store.attach_buffer (Mneme.Store.pool probe n)
        (Mneme.Buffer_pool.create ~name:n ~capacity:200_000 ()))
    [ "small"; "medium"; "large" ];
  (* Segment identity is (pool, pseg): pseg ids are per pool. *)
  let home oid =
    match (Mneme.Store.pool_of_oid probe oid, Mneme.Store.locate_pseg probe oid) with
    | Some pool, Some pseg -> Some (Mneme.Store.pool_name pool, pseg)
    | _ -> None
  in
  let victim = "ba" in
  let victim_home = home (entry victim).Inquery.Dictionary.locator in
  let survivor = ref None in
  Inquery.Dictionary.iter dict (fun e ->
      if !survivor = None then begin
        let loc = e.Inquery.Dictionary.locator in
        if loc >= 0 && home loc <> victim_home && home loc <> None then
          survivor := Some e.Inquery.Dictionary.term
      end);
  let survivor =
    match !survivor with
    | Some t -> t
    | None -> Alcotest.fail "no term outside the victim's segment"
  in
  corrupt_object_segment vfs ~file:p.Core.Experiment.mneme_file probe
    (entry victim).Inquery.Dictionary.locator;
  let open_engine ~salvage =
    let store =
      Core.Mneme_backend.open_session vfs ~file:p.Core.Experiment.mneme_file
        ~buffers:(Core.Experiment.default_buffers p)
    in
    Core.Engine.create ~vfs ~store ~dict ~n_docs:catalog.Core.Catalog.n_docs
      ~avg_doc_len:(Core.Catalog.avg_doc_length catalog)
      ~doc_len:(fun d ->
        if d < 0 || d >= Array.length catalog.Core.Catalog.doc_lens then 0
        else catalog.Core.Catalog.doc_lens.(d))
      ~salvage ()
  in
  (* Salvage on (the default): the query still answers, the damaged term
     is quarantined and reported. *)
  let e = open_engine ~salvage:true in
  let q = Printf.sprintf "#sum( %s %s )" victim survivor in
  let r = Core.Engine.run_query_string e q in
  Alcotest.(check bool) "survivor still ranks documents" true
    (r.Core.Engine.ranked <> []);
  (match Core.Engine.quarantined e with
  | [ (term, reason) ] ->
    Alcotest.(check string) "victim quarantined" victim term;
    Alcotest.(check bool) "reason names the CRC" true (Str_find.contains reason "CRC32")
  | q -> Alcotest.failf "expected exactly the victim quarantined, got %d entries" (List.length q));
  (* Quarantine is sticky but deduplicated. *)
  ignore (Core.Engine.run_query_string e q);
  Alcotest.(check int) "still one entry" 1 (List.length (Core.Engine.quarantined e));
  (* Salvage off: the same query aborts with Corrupt. *)
  let e = open_engine ~salvage:false in
  Alcotest.(check bool) "salvage off propagates Corrupt" true
    (match Core.Engine.run_query_string e q with
    | _ -> false
    | exception Mneme.Store.Corrupt _ -> true)

(* The shard torture at smoke size: fault one member at every serving
   I/O (plus blackouts and brownouts) and demand zero silent
   truncations and zero deadline overshoots beyond one fetch. *)
let test_shard_sweep_is_clean () =
  let o = Core.Torture.run_shard ~seed:7 ~docs:16 ~shards:2 ~replicas:2 () in
  List.iter
    (fun (run, p) -> Printf.printf "shard torture replay %d: %s\n" run p)
    o.Core.Torture.st_problems;
  Alcotest.(check bool) "serving I/Os enumerated" true (o.Core.Torture.st_points > 0);
  Alcotest.(check bool) "partial results exercised" true (o.Core.Torture.st_partial > 0);
  Alcotest.(check bool) "full-coverage results exercised" true (o.Core.Torture.st_full > 0);
  Alcotest.(check int) "no overshoots" 0 o.Core.Torture.st_overshoots;
  Alcotest.(check int) "no truncations" 0 o.Core.Torture.st_truncations;
  Alcotest.(check bool) "sweep clean" true (Core.Torture.shard_ok o)

let suite =
  [
    Alcotest.test_case "every crash point recovers" `Quick test_every_crash_point_recovers;
    QCheck_alcotest.to_alcotest prop_random_crash_point_consistent;
    Alcotest.test_case "every failover point serves committed prefix" `Quick
      test_every_failover_point_serves_committed_prefix;
    QCheck_alcotest.to_alcotest prop_random_failover_point_consistent;
    Alcotest.test_case "scrub sweep heals every segment" `Quick
      test_scrub_sweep_heals_every_segment;
    Alcotest.test_case "scrub budget sweep tradeoff" `Quick test_scrub_budget_sweep_tradeoff;
    Alcotest.test_case "bit flip raises Corrupt" `Quick test_bit_flip_raises_corrupt;
    Alcotest.test_case "clean store passes CRC check" `Quick test_clean_store_passes_crc_check;
    Alcotest.test_case "engine salvages corrupt term" `Quick test_engine_salvages_corrupt_term;
    Alcotest.test_case "shard sweep is clean" `Quick test_shard_sweep_is_clean;
  ]
