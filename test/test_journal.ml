(* The redo journal: atomicity, read-your-writes, crash recovery at
   every truncation point. *)

let setup () =
  let vfs = Vfs.create () in
  let data = Vfs.open_file vfs "data" in
  ignore (Vfs.append data (Bytes.of_string "0123456789"));
  (vfs, data, Mneme.Journal.create vfs ~log_file:"log" ~data_file:"data")

let read_data data = Bytes.to_string (Vfs.read data ~off:0 ~len:(Vfs.size data))

let test_passthrough_outside_batch () =
  let _, data, j = setup () in
  Mneme.Journal.write j ~off:0 (Bytes.of_string "XX");
  Alcotest.(check string) "direct write" "XX23456789" (read_data data)

let test_read_your_writes () =
  let _, data, j = setup () in
  Mneme.Journal.begin_batch j;
  Mneme.Journal.write j ~off:2 (Bytes.of_string "AB");
  Alcotest.(check string) "pending visible" "01AB456789"
    (Bytes.to_string (Mneme.Journal.read j ~off:0 ~len:10));
  Alcotest.(check string) "data file untouched" "0123456789" (read_data data);
  (* Later writes shadow earlier ones. *)
  Mneme.Journal.write j ~off:3 (Bytes.of_string "Z");
  Alcotest.(check string) "overlay order" "01AZ456789"
    (Bytes.to_string (Mneme.Journal.read j ~off:0 ~len:10));
  Alcotest.(check int) "pending count" 2 (Mneme.Journal.pending_writes j)

let test_read_extends_past_data_end () =
  let _, _, j = setup () in
  Mneme.Journal.begin_batch j;
  Mneme.Journal.write j ~off:12 (Bytes.of_string "TAIL");
  Alcotest.(check int) "visible size" 16 (Mneme.Journal.data_size j);
  (* The hole between old EOF and the write reads as zeros. *)
  let b = Mneme.Journal.read j ~off:9 ~len:7 in
  Alcotest.(check string) "hole + tail" "9\000\000TAIL" (Bytes.to_string b)

let test_commit_applies () =
  let _, data, j = setup () in
  Mneme.Journal.begin_batch j;
  Mneme.Journal.write j ~off:0 (Bytes.of_string "AA");
  Mneme.Journal.write j ~off:8 (Bytes.of_string "BB");
  Mneme.Journal.commit j;
  Alcotest.(check string) "applied" "AA234567BB" (read_data data);
  Alcotest.(check bool) "batch closed" false (Mneme.Journal.in_batch j);
  Alcotest.(check bool) "log bytes recorded" true (Mneme.Journal.log_bytes_written j > 0)

let test_abort_discards () =
  let _, data, j = setup () in
  Mneme.Journal.begin_batch j;
  Mneme.Journal.write j ~off:0 (Bytes.of_string "ZZ");
  Mneme.Journal.abort j;
  Alcotest.(check string) "untouched" "0123456789" (read_data data);
  Alcotest.(check bool) "closed" false (Mneme.Journal.in_batch j)

let test_batch_discipline () =
  let _, _, j = setup () in
  Alcotest.(check bool) "commit without batch" true
    (match Mneme.Journal.commit j with () -> false | exception Invalid_argument _ -> true);
  Mneme.Journal.begin_batch j;
  Alcotest.(check bool) "double begin" true
    (match Mneme.Journal.begin_batch j with () -> false | exception Invalid_argument _ -> true)

let test_recover_clean () =
  let _, _, j = setup () in
  Alcotest.(check bool) "clean" true (Mneme.Journal.recover j = Mneme.Journal.Clean)

(* Build a committed log image, then replay recovery from every
   possible truncation point: a cut before the commit marker discards;
   the full image replays. *)
let test_recovery_at_every_truncation () =
  let vfs = Vfs.create () in
  let data = Vfs.open_file vfs "data" in
  ignore (Vfs.append data (Bytes.of_string "0123456789"));
  let j = Mneme.Journal.create vfs ~log_file:"log" ~data_file:"data" in
  (* Produce the log image by performing a commit whose apply phase we
     then undo: snapshot the log right after the write-ahead step by
     re-creating it manually. *)
  Mneme.Journal.begin_batch j;
  Mneme.Journal.write j ~off:0 (Bytes.of_string "AB");
  Mneme.Journal.write j ~off:5 (Bytes.of_string "CDE");
  Mneme.Journal.commit j;
  let committed = read_data data in
  (* Reconstruct the full log image (commit truncates it, so rebuild the
     same bytes by hand with the documented format). *)
  let records = Buffer.create 64 in
  List.iter
    (fun (off, s) ->
      Util.Bin.buf_u64 records off;
      Util.Bin.buf_u32 records (String.length s);
      Buffer.add_string records s)
    [ (0, "AB"); (5, "CDE") ];
  let buf = Buffer.create 64 in
  Buffer.add_buffer buf records;
  Util.Bin.buf_u64 buf 0xffffffffffffff;
  Util.Bin.buf_u32 buf (Util.Crc32.digest_bytes (Buffer.to_bytes records));
  let image = Buffer.to_bytes buf in
  for cut = 0 to Bytes.length image do
    (* Fresh world, crashed mid-write with [cut] log bytes surviving. *)
    let vfs = Vfs.create () in
    let data = Vfs.open_file vfs "data" in
    ignore (Vfs.append data (Bytes.of_string "0123456789"));
    let log = Vfs.open_file vfs "log" in
    ignore (Vfs.append log (Bytes.sub image 0 cut));
    Vfs.truncate log cut;
    let j = Mneme.Journal.attach vfs ~log_file:"log" ~data_file:"data" in
    (match Mneme.Journal.recover j with
    | Mneme.Journal.Clean ->
      Alcotest.(check int) "clean only at 0" 0 cut;
      Alcotest.(check string) "original" "0123456789" (read_data data)
    | Mneme.Journal.Discarded _ ->
      Alcotest.(check bool) (Printf.sprintf "cut %d incomplete" cut) true
        (cut < Bytes.length image);
      Alcotest.(check string) "original preserved" "0123456789" (read_data data)
    | Mneme.Journal.Replayed n ->
      Alcotest.(check int) (Printf.sprintf "cut %d full replay" cut) (Bytes.length image) cut;
      Alcotest.(check int) "two writes" 2 n;
      Alcotest.(check string) "committed state" committed (read_data data));
    (* Recovery is idempotent: the log is now empty. *)
    Alcotest.(check bool) "second recover clean" true
      (Mneme.Journal.recover j = Mneme.Journal.Clean)
  done

(* Any single bit flip in a committed log image must fail the CRC:
   recovery discards the batch rather than replaying damaged writes. *)
let test_recovery_rejects_corrupted_log () =
  let records = Buffer.create 64 in
  List.iter
    (fun (off, s) ->
      Util.Bin.buf_u64 records off;
      Util.Bin.buf_u32 records (String.length s);
      Buffer.add_string records s)
    [ (0, "AB"); (5, "CDE") ];
  let buf = Buffer.create 64 in
  Buffer.add_buffer buf records;
  Util.Bin.buf_u64 buf 0xffffffffffffff;
  Util.Bin.buf_u32 buf (Util.Crc32.digest_bytes (Buffer.to_bytes records));
  let image = Buffer.to_bytes buf in
  for i = 0 to Bytes.length image - 1 do
    for bit = 0 to 7 do
      let flipped = Bytes.copy image in
      Bytes.set flipped i (Char.chr (Char.code (Bytes.get image i) lxor (1 lsl bit)));
      let vfs = Vfs.create () in
      let data = Vfs.open_file vfs "data" in
      ignore (Vfs.append data (Bytes.of_string "0123456789"));
      let log = Vfs.open_file vfs "log" in
      ignore (Vfs.append log flipped);
      let j = Mneme.Journal.attach vfs ~log_file:"log" ~data_file:"data" in
      (match Mneme.Journal.recover j with
      | Mneme.Journal.Replayed _ ->
        Alcotest.failf "flip of byte %d bit %d replayed a corrupted batch" i bit
      | Mneme.Journal.Discarded _ | Mneme.Journal.Clean -> ());
      Alcotest.(check string)
        (Printf.sprintf "byte %d bit %d leaves data intact" i bit)
        "0123456789" (read_data data)
    done
  done

let test_store_transact_commit () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "t.mneme" in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"m" ~capacity:100_000 ());
  Mneme.Store.enable_journal store ~log_file:"t.jnl";
  let oid =
    Mneme.Store.transact store (fun () ->
        let oid = Mneme.Store.allocate pool (Bytes.of_string "durable") in
        Mneme.Store.finalize store;
        (* Read-your-writes inside the batch. *)
        Alcotest.(check bytes) "visible inside" (Bytes.of_string "durable")
          (Mneme.Store.get store oid);
        oid)
  in
  (* After commit the bytes are on the data file: a completely fresh
     open (no journal) sees them. *)
  let store2 = Mneme.Store.open_existing vfs "t.mneme" in
  Mneme.Store.attach_buffer (Mneme.Store.pool store2 "medium")
    (Mneme.Buffer_pool.create ~name:"m" ~capacity:100_000 ());
  Alcotest.(check bytes) "after commit" (Bytes.of_string "durable") (Mneme.Store.get store2 oid)

let test_store_transact_abort_leaves_disk_clean () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "a.mneme" in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"m" ~capacity:100_000 ());
  (* Establish a committed baseline. *)
  Mneme.Store.enable_journal store ~log_file:"a.jnl";
  let base =
    Mneme.Store.transact store (fun () ->
        let oid = Mneme.Store.allocate pool (Bytes.of_string "baseline") in
        Mneme.Store.finalize store;
        oid)
  in
  let size_before = Vfs.size (Vfs.open_file vfs "a.mneme") in
  (* A failing batch must leave the data file byte-identical. *)
  (match
     Mneme.Store.transact store (fun () ->
         ignore (Mneme.Store.allocate pool (Bytes.make 5000 'x'));
         Mneme.Store.finalize store;
         failwith "simulated failure")
   with
  | _ -> Alcotest.fail "should have raised"
  | exception Failure _ -> ());
  Alcotest.(check int) "file size unchanged" size_before (Vfs.size (Vfs.open_file vfs "a.mneme"));
  (* The crashed process is gone; a fresh open sees the baseline. *)
  let store2 = Mneme.Store.open_existing vfs "a.mneme" in
  Mneme.Store.attach_buffer (Mneme.Store.pool store2 "medium")
    (Mneme.Buffer_pool.create ~name:"m" ~capacity:100_000 ());
  Alcotest.(check bytes) "baseline intact" (Bytes.of_string "baseline")
    (Mneme.Store.get store2 base)

let test_store_recover_journal () =
  let vfs = Vfs.create () in
  let store = Mneme.Store.create vfs "r.mneme" in
  let pool = Mneme.Store.add_pool store Mneme.Policy.medium in
  Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name:"m" ~capacity:100_000 ());
  Mneme.Store.enable_journal store ~log_file:"r.jnl";
  ignore
    (Mneme.Store.transact store (fun () ->
         let oid = Mneme.Store.allocate pool (Bytes.of_string "x") in
         Mneme.Store.finalize store;
         oid));
  Alcotest.(check bool) "clean after commit" true
    (Mneme.Store.recover_journal vfs ~file:"r.mneme" ~log_file:"r.jnl" = Mneme.Journal.Clean)

let test_commit_stream () =
  let _, data, j = setup () in
  let received = ref [] in
  Mneme.Journal.on_commit j (fun ~lsn image -> received := (lsn, Bytes.copy image) :: !received);
  Alcotest.(check int) "lsn starts at zero" 0 (Mneme.Journal.lsn j);
  Mneme.Journal.begin_batch j;
  Mneme.Journal.write j ~off:0 (Bytes.of_string "AA");
  Mneme.Journal.commit j;
  Mneme.Journal.begin_batch j;
  Mneme.Journal.write j ~off:4 (Bytes.of_string "BB");
  Mneme.Journal.commit j;
  Alcotest.(check int) "two commits numbered" 2 (Mneme.Journal.lsn j);
  Alcotest.(check (list int)) "stream in order" [ 1; 2 ]
    (List.rev_map fst !received);
  (* Each shipped image is a sealed, replayable log: landing it in a
     fresh journal's log file and recovering replays the batch. *)
  let vfs2 = Vfs.create () in
  let data2 = Vfs.open_file vfs2 "data" in
  ignore (Vfs.append data2 (Bytes.of_string "0123456789"));
  let j2 = Mneme.Journal.attach vfs2 ~log_file:"log" ~data_file:"data" in
  List.iter
    (fun (_, image) ->
      let log2 = Vfs.open_file vfs2 "log" in
      Vfs.truncate log2 0;
      ignore (Vfs.append log2 image);
      Vfs.fsync log2;
      match Mneme.Journal.recover j2 with
      | Mneme.Journal.Replayed _ -> ()
      | r ->
        Alcotest.failf "shipped image did not replay: %s"
          (match r with
          | Mneme.Journal.Discarded n -> Printf.sprintf "discarded %d" n
          | Mneme.Journal.Clean -> "clean"
          | Mneme.Journal.Replayed _ -> assert false))
    (List.rev !received);
  Alcotest.(check string) "replica data matches primary" (read_data data)
    (Bytes.to_string (Vfs.read data2 ~off:0 ~len:(Vfs.size data2)));
  (* Names are exposed for the replica layer. *)
  Alcotest.(check string) "log name" "log" (Mneme.Journal.log_file j);
  Alcotest.(check string) "data name" "data" (Mneme.Journal.data_file j)

(* --- replay idempotency -------------------------------------------- *)

(* A deterministic committing run under a fault plan; the same plan
   always yields the same physical I/O sequence. *)
let committing_run fault =
  let vfs = Vfs.create () in
  Vfs.set_fault vfs fault;
  (try
     let data = Vfs.open_file vfs "data" in
     ignore (Vfs.append data (Bytes.make 32 '.'));
     Vfs.fsync data;
     let j = Mneme.Journal.create vfs ~log_file:"log" ~data_file:"data" in
     Mneme.Journal.begin_batch j;
     Mneme.Journal.write j ~off:0 (Bytes.of_string "HELLO");
     Mneme.Journal.write j ~off:27 (Bytes.of_string "WORLD");
     Mneme.Journal.commit j
   with Vfs.Crash -> ());
  vfs

let copy_image img =
  let copy = Vfs.create () in
  List.iter (fun f -> Vfs.copy_file img f ~into:copy) (Vfs.file_names img);
  copy

let whole_file vfs name =
  if not (Vfs.file_exists vfs name) then ""
  else begin
    let f = Vfs.open_file vfs name in
    Bytes.to_string (Vfs.read f ~off:0 ~len:(Vfs.size f))
  end

let recover_image img = Mneme.Journal.recover (Mneme.Journal.attach img ~log_file:"log" ~data_file:"data")

(* Crash images whose log holds a sealed commit the recovery replays. *)
let replayable_images () =
  let total = Vfs.fault_io_count (committing_run (Vfs.Fault.none ())) in
  List.filter_map
    (fun k ->
      let img = Vfs.crash_image (committing_run (Vfs.Fault.crash_at_io k)) in
      match recover_image (copy_image img) with
      | Mneme.Journal.Replayed _ -> Some (k, img)
      | _ -> None)
    (List.init total (fun i -> i + 1))

let test_replaying_twice_is_idempotent () =
  let images = replayable_images () in
  Alcotest.(check bool) "some crash points seal a commit" true (images <> []);
  List.iter
    (fun (k, img) ->
      (match recover_image img with
      | Mneme.Journal.Replayed _ -> ()
      | _ -> Alcotest.failf "crash at io %d: first recovery did not replay" k);
      let once = whole_file img "data" in
      Alcotest.(check string)
        (Printf.sprintf "crash at io %d: committed writes landed" k)
        "HELLO" (String.sub once 0 5);
      (* A second recovery finds a clean (truncated) log and must not
         move a byte. *)
      (match recover_image img with
      | Mneme.Journal.Clean -> ()
      | _ -> Alcotest.failf "crash at io %d: second recovery was not clean" k);
      Alcotest.(check string)
        (Printf.sprintf "crash at io %d: replaying twice is byte-identical" k)
        once (whole_file img "data"))
    images

let test_crash_during_recovery_is_idempotent () =
  let images = replayable_images () in
  List.iter
    (fun (k, img) ->
      (* The expected end state: the same image recovered undisturbed. *)
      let undisturbed = copy_image img in
      ignore (recover_image undisturbed);
      let expect = whole_file undisturbed "data" in
      (* Crash the recovery itself at every physical I/O, then let a
         second recovery finish the job: same bytes, every time. *)
      let j = ref 1 in
      let continue = ref true in
      while !continue do
        let attempt = copy_image img in
        Vfs.set_fault attempt (Vfs.Fault.crash_at_io !j);
        (match recover_image attempt with
        | _ -> continue := false (* recovery finished before io [j] *)
        | exception Vfs.Crash ->
          let resumed = Vfs.crash_image attempt in
          (match recover_image resumed with
          | Mneme.Journal.Replayed _ | Mneme.Journal.Clean -> ()
          | Mneme.Journal.Discarded _ ->
            Alcotest.failf "crash at io %d, recovery crash at io %d: sealed log discarded" k !j);
          Alcotest.(check string)
            (Printf.sprintf "crash at io %d, recovery crash at io %d: byte-identical" k !j)
            expect (whole_file resumed "data"));
        incr j
      done)
    images

let suite =
  [
    Alcotest.test_case "passthrough outside batch" `Quick test_passthrough_outside_batch;
    Alcotest.test_case "replaying twice is idempotent" `Quick test_replaying_twice_is_idempotent;
    Alcotest.test_case "crash during recovery is idempotent" `Quick
      test_crash_during_recovery_is_idempotent;
    Alcotest.test_case "commit stream" `Quick test_commit_stream;
    Alcotest.test_case "read your writes" `Quick test_read_your_writes;
    Alcotest.test_case "read past data end" `Quick test_read_extends_past_data_end;
    Alcotest.test_case "commit applies" `Quick test_commit_applies;
    Alcotest.test_case "abort discards" `Quick test_abort_discards;
    Alcotest.test_case "batch discipline" `Quick test_batch_discipline;
    Alcotest.test_case "recover clean" `Quick test_recover_clean;
    Alcotest.test_case "recovery at every truncation" `Quick test_recovery_at_every_truncation;
    Alcotest.test_case "recovery rejects corrupted log" `Quick test_recovery_rejects_corrupted_log;
    Alcotest.test_case "store transact commit" `Quick test_store_transact_commit;
    Alcotest.test_case "store transact abort" `Quick test_store_transact_abort_leaves_disk_clean;
    Alcotest.test_case "store recover_journal" `Quick test_store_recover_journal;
  ]
