(* The simulated file system: data integrity, I/O accounting, OS cache
   behaviour, and the cost clock. *)

let make () = Vfs.create ()

let test_write_read_roundtrip () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.of_string "hello world"));
  Alcotest.(check string) "read back" "world" (Bytes.to_string (Vfs.read f ~off:6 ~len:5));
  Alcotest.(check int) "size" 11 (Vfs.size f)

let test_write_extends_with_hole () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  Vfs.write f ~off:100 (Bytes.of_string "x");
  Alcotest.(check int) "size" 101 (Vfs.size f);
  Alcotest.(check char) "hole is zero" '\000' (Bytes.get (Vfs.read f ~off:50 ~len:1) 0)

let test_read_bounds () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.of_string "abc"));
  Alcotest.(check bool) "past EOF raises" true
    (match Vfs.read f ~off:1 ~len:3 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative off raises" true
    (match Vfs.read f ~off:(-1) ~len:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_same_name_same_file () =
  let vfs = make () in
  let f1 = Vfs.open_file vfs "same" in
  ignore (Vfs.append f1 (Bytes.of_string "data"));
  let f2 = Vfs.open_file vfs "same" in
  Alcotest.(check int) "shared" 4 (Vfs.size f2)

let test_file_accesses_counted () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make 100 'x'));
  Vfs.reset_counters vfs;
  ignore (Vfs.read f ~off:0 ~len:10);
  ignore (Vfs.read f ~off:0 ~len:10);
  let c = Vfs.counters vfs in
  Alcotest.(check int) "two accesses" 2 c.Vfs.file_accesses;
  Alcotest.(check int) "bytes read" 20 c.Vfs.bytes_read

let test_disk_inputs_cached () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make 100 'x'));
  Vfs.purge_os_cache vfs;
  Vfs.reset_counters vfs;
  ignore (Vfs.read f ~off:0 ~len:10);
  let c1 = Vfs.counters vfs in
  Alcotest.(check int) "first read hits disk" 1 c1.Vfs.disk_inputs;
  ignore (Vfs.read f ~off:0 ~len:10);
  let c2 = Vfs.counters vfs in
  Alcotest.(check int) "second read cached" 1 c2.Vfs.disk_inputs;
  Alcotest.(check int) "cache hit recorded" 1 c2.Vfs.os_cache_hits

let test_purge_forces_reread () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make 100 'x'));
  Vfs.purge_os_cache vfs;
  Vfs.reset_counters vfs;
  ignore (Vfs.read f ~off:0 ~len:10);
  Vfs.purge_os_cache vfs;
  ignore (Vfs.read f ~off:0 ~len:10);
  Alcotest.(check int) "purged => two disk inputs" 2 (Vfs.counters vfs).Vfs.disk_inputs

let test_block_granularity () =
  let vfs = make () in
  let bs = (Vfs.cost_model vfs).Vfs.Cost_model.block_size in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make (3 * bs) 'x'));
  Vfs.purge_os_cache vfs;
  Vfs.reset_counters vfs;
  (* A read spanning three blocks costs three inputs. *)
  ignore (Vfs.read f ~off:(bs - 1) ~len:(bs + 2));
  Alcotest.(check int) "spanning read" 3 (Vfs.counters vfs).Vfs.disk_inputs

let test_write_populates_cache () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  Vfs.purge_os_cache vfs;
  Vfs.reset_counters vfs;
  ignore (Vfs.append f (Bytes.make 10 'x'));
  ignore (Vfs.read f ~off:0 ~len:10);
  let c = Vfs.counters vfs in
  Alcotest.(check int) "read after write cached" 0 c.Vfs.disk_inputs;
  (* Write-back: the block is dirty in the OS cache, not on disk yet. *)
  Alcotest.(check int) "write not yet on disk" 0 c.Vfs.disk_outputs;
  Alcotest.(check int) "one dirty block" 1 (Vfs.dirty_blocks vfs);
  Vfs.fsync f;
  let c = Vfs.counters vfs in
  Alcotest.(check int) "fsync flushed the block" 1 c.Vfs.disk_outputs;
  Alcotest.(check int) "nothing left dirty" 0 (Vfs.dirty_blocks vfs)

let test_cache_capacity_eviction () =
  let model = Vfs.Cost_model.create ~os_cache_blocks:2 () in
  let vfs = Vfs.create ~cost_model:model () in
  let bs = model.Vfs.Cost_model.block_size in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make (3 * bs) 'x'));
  Vfs.purge_os_cache vfs;
  Vfs.reset_counters vfs;
  ignore (Vfs.read f ~off:0 ~len:1);
  ignore (Vfs.read f ~off:bs ~len:1);
  ignore (Vfs.read f ~off:(2 * bs) ~len:1);
  (* block 0 was evicted by the 2-block cache *)
  ignore (Vfs.read f ~off:0 ~len:1);
  Alcotest.(check int) "eviction forces re-read" 4 (Vfs.counters vfs).Vfs.disk_inputs

let test_clock_charges () =
  let vfs = make () in
  let model = Vfs.cost_model vfs in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make 1024 'x'));
  Vfs.purge_os_cache vfs;
  Vfs.Clock.reset (Vfs.clock vfs);
  ignore (Vfs.read f ~off:0 ~len:1024);
  let s = Vfs.Clock.snapshot (Vfs.clock vfs) in
  Alcotest.(check (float 1e-9)) "disk" model.Vfs.Cost_model.disk_read_ms s.Vfs.Clock.disk_ms;
  Alcotest.(check (float 1e-9)) "syscall" model.Vfs.Cost_model.syscall_ms s.Vfs.Clock.syscall_ms;
  Alcotest.(check (float 1e-9)) "copy" model.Vfs.Cost_model.copy_ms_per_kb s.Vfs.Clock.copy_ms;
  Alcotest.(check (float 1e-9)) "wall = sum"
    (s.Vfs.Clock.disk_ms +. s.Vfs.Clock.syscall_ms +. s.Vfs.Clock.copy_ms)
    (Vfs.Clock.wall_ms s)

let test_clock_diff_and_engine () =
  let clock = Vfs.Clock.create () in
  Vfs.Clock.charge_engine_cpu clock 5.0;
  let s1 = Vfs.Clock.snapshot clock in
  Vfs.Clock.charge_engine_cpu clock 3.0;
  Vfs.Clock.charge_disk clock 2.0;
  let s2 = Vfs.Clock.snapshot clock in
  let d = Vfs.Clock.diff ~later:s2 ~earlier:s1 in
  Alcotest.(check (float 1e-9)) "engine diff" 3.0 d.Vfs.Clock.engine_cpu_ms;
  Alcotest.(check (float 1e-9)) "sys_io excludes engine" 2.0 (Vfs.Clock.sys_io_ms d);
  Alcotest.check_raises "negative charge" (Invalid_argument "Clock.charge: negative charge")
    (fun () -> Vfs.Clock.charge_disk clock (-1.0))

let test_monotonic_is_real_not_simulated () =
  (* The real monotonic clock advances on its own and never bleeds into
     any simulated clock. *)
  let clock = Vfs.Clock.create () in
  Vfs.Clock.charge_disk clock 7.0;
  let before = Vfs.Clock.snapshot clock in
  let t0 = Vfs.Clock.Monotonic.now_ns () in
  let t1 = ref (Vfs.Clock.Monotonic.now_ns ()) in
  (* Monotone: a later reading is never smaller. *)
  Alcotest.(check bool) "non-decreasing" true (Int64.compare !t1 t0 >= 0);
  (* Spin until it visibly advances (nanosecond clocks tick fast). *)
  let spins = ref 0 in
  while Int64.equal !t1 t0 && !spins < 1_000_000 do
    incr spins;
    t1 := Vfs.Clock.Monotonic.now_ns ()
  done;
  Alcotest.(check bool) "advances in real time" true (Int64.compare !t1 t0 > 0);
  Alcotest.(check bool) "elapsed_ms non-negative" true
    (Vfs.Clock.Monotonic.elapsed_ms ~since:t0 >= 0.0);
  (* Reading real time charged nothing simulated. *)
  let after = Vfs.Clock.snapshot clock in
  Alcotest.(check (float 1e-9)) "simulated clock untouched" (Vfs.Clock.wall_ms before)
    (Vfs.Clock.wall_ms after);
  Alcotest.(check (float 1e-9)) "still exactly the charge" 7.0 (Vfs.Clock.wall_ms after)

let test_truncate () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.of_string "abcdef"));
  Vfs.truncate f 3;
  Alcotest.(check int) "shrunk" 3 (Vfs.size f);
  Vfs.truncate f 5;
  Alcotest.(check char) "grow pads zero" '\000' (Bytes.get (Vfs.read f ~off:4 ~len:1) 0);
  Alcotest.(check bool) "negative raises" true
    (match Vfs.truncate f (-1) with () -> false | exception Invalid_argument _ -> true)

let test_delete_file () =
  let vfs = make () in
  let f = Vfs.open_file vfs "gone" in
  ignore (Vfs.append f (Bytes.make 10 'x'));
  ignore (Vfs.read f ~off:0 ~len:1);
  Alcotest.(check bool) "exists" true (Vfs.file_exists vfs "gone");
  Vfs.delete_file vfs "gone";
  Alcotest.(check bool) "deleted" false (Vfs.file_exists vfs "gone");
  Vfs.delete_file vfs "gone" (* idempotent *)

let test_file_names_sorted () =
  let vfs = make () in
  ignore (Vfs.open_file vfs "b");
  ignore (Vfs.open_file vfs "a");
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Vfs.file_names vfs)

let test_counters_diff () =
  let later =
    { Vfs.disk_inputs = 10; disk_outputs = 5; file_accesses = 20; bytes_read = 100;
      bytes_written = 50; os_cache_hits = 7; os_cache_misses = 3 }
  in
  let earlier =
    { Vfs.disk_inputs = 4; disk_outputs = 2; file_accesses = 8; bytes_read = 40;
      bytes_written = 20; os_cache_hits = 3; os_cache_misses = 1 }
  in
  let d = Vfs.diff_counters ~later ~earlier in
  Alcotest.(check int) "inputs" 6 d.Vfs.disk_inputs;
  Alcotest.(check int) "accesses" 12 d.Vfs.file_accesses;
  Alcotest.(check int) "hits" 4 d.Vfs.os_cache_hits

let test_sequential_read_discount () =
  let model = Vfs.Cost_model.create ~disk_read_ms:10.0 ~disk_seq_read_ms:1.0 () in
  let vfs = Vfs.create ~cost_model:model () in
  let bs = model.Vfs.Cost_model.block_size in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make (4 * bs) 'x'));
  Vfs.purge_os_cache vfs;
  Vfs.Clock.reset (Vfs.clock vfs);
  (* Blocks 0,1,2 in one read: first is a seek, the rest sequential. *)
  ignore (Vfs.read f ~off:0 ~len:(3 * bs));
  let s = Vfs.Clock.snapshot (Vfs.clock vfs) in
  Alcotest.(check (float 1e-9)) "10 + 1 + 1" 12.0 s.Vfs.Clock.disk_ms;
  (* Purging the cache does not move the head: block 3 continues the
     sequence, then jumping back to block 0 seeks. *)
  Vfs.purge_os_cache vfs;
  Vfs.Clock.reset (Vfs.clock vfs);
  ignore (Vfs.read f ~off:(3 * bs) ~len:1);
  ignore (Vfs.read f ~off:0 ~len:1);
  let s = Vfs.Clock.snapshot (Vfs.clock vfs) in
  Alcotest.(check (float 1e-9)) "sequential continuation + seek" 11.0 s.Vfs.Clock.disk_ms

let test_default_model_flat () =
  (* With the default model, sequential and random block reads cost the
     same — the paper-table calibration is unchanged. *)
  let m = Vfs.Cost_model.default in
  Alcotest.(check (float 1e-9)) "flat" m.Vfs.Cost_model.disk_read_ms
    m.Vfs.Cost_model.disk_seq_read_ms

(* --- durability and fault injection ------------------------------- *)

let test_crash_image_drops_unsynced () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.of_string "durable!"));
  Vfs.fsync f;
  Vfs.write f ~off:0 (Bytes.of_string "volatile");
  let img = Vfs.crash_image vfs in
  let g = Vfs.open_file img "a" in
  (* The unsynced overwrite is gone; the fsynced bytes survive. *)
  Alcotest.(check string) "synced bytes survive" "durable!"
    (Bytes.to_string (Vfs.read g ~off:0 ~len:8));
  (* The live file system still sees the overwrite. *)
  Alcotest.(check string) "live view unchanged" "volatile"
    (Bytes.to_string (Vfs.read f ~off:0 ~len:8))

let test_crash_image_never_synced_reads_zero () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.of_string "lost"));
  let img = Vfs.crash_image vfs in
  let g = Vfs.open_file img "a" in
  (* Size is metadata (journaled, durable); contents never reached disk. *)
  Alcotest.(check int) "metadata size survives" 4 (Vfs.size g);
  Alcotest.(check string) "contents were never durable" "\000\000\000\000"
    (Bytes.to_string (Vfs.read g ~off:0 ~len:4))

let test_sync_flushes_all_files () =
  let vfs = make () in
  let a = Vfs.open_file vfs "a" and b = Vfs.open_file vfs "b" in
  ignore (Vfs.append a (Bytes.make 10 'a'));
  ignore (Vfs.append b (Bytes.make 10 'b'));
  Alcotest.(check int) "two dirty blocks" 2 (Vfs.dirty_blocks vfs);
  Vfs.sync vfs;
  Alcotest.(check int) "all clean" 0 (Vfs.dirty_blocks vfs);
  let img = Vfs.crash_image vfs in
  Alcotest.(check string) "a durable" "aaaaaaaaaa"
    (Bytes.to_string (Vfs.read (Vfs.open_file img "a") ~off:0 ~len:10));
  Alcotest.(check string) "b durable" "bbbbbbbbbb"
    (Bytes.to_string (Vfs.read (Vfs.open_file img "b") ~off:0 ~len:10))

let test_crash_at_io_raises () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make 10 'x'));
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io 1);
  Alcotest.(check bool) "fsync crashes at its first block write" true
    (match Vfs.fsync f with () -> false | exception Vfs.Crash -> true);
  Vfs.clear_fault vfs;
  Vfs.fsync f (* no plan: flushes fine *)

let test_torn_fsync_persists_prefix () =
  let vfs = make () in
  let bs = (Vfs.cost_model vfs).Vfs.Cost_model.block_size in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make (3 * bs) 'x'));
  (* Crash on the third block write: blocks 0 and 1 become durable,
     block 2 does not — a torn multi-block write. *)
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io 3);
  (match Vfs.fsync f with () -> Alcotest.fail "expected crash" | exception Vfs.Crash -> ());
  let img = Vfs.crash_image vfs in
  let g = Vfs.open_file img "a" in
  Alcotest.(check char) "block 0 durable" 'x' (Bytes.get (Vfs.read g ~off:0 ~len:1) 0);
  Alcotest.(check char) "block 1 durable" 'x' (Bytes.get (Vfs.read g ~off:bs ~len:1) 0);
  Alcotest.(check char) "block 2 torn off" '\000'
    (Bytes.get (Vfs.read g ~off:(2 * bs) ~len:1) 0)

let test_bit_flip_on_read () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  let original = Bytes.make 32 'x' in
  ignore (Vfs.append f original);
  Vfs.fsync f;
  Vfs.purge_os_cache vfs;
  (* The next physical read faults a bit deterministically. *)
  Vfs.set_fault vfs (Vfs.Fault.flip_bit_on_read ~io:1 ~seed:7);
  let corrupted = Vfs.read f ~off:0 ~len:32 in
  Alcotest.(check bool) "one bit differs" false (Bytes.equal corrupted original);
  (* Media corruption persists: re-reading (cached or purged) sees the
     same damage, as does the crash image. *)
  Vfs.clear_fault vfs;
  Vfs.purge_os_cache vfs;
  Alcotest.(check bytes) "damage persists" corrupted (Vfs.read f ~off:0 ~len:32)

let popcount b =
  let n = ref 0 in
  for i = 0 to 7 do
    if Char.code b land (1 lsl i) <> 0 then incr n
  done;
  !n

let test_flip_bits_ranged () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  let original = Bytes.make 256 'x' in
  ignore (Vfs.append f original);
  Vfs.fsync f;
  Vfs.purge_os_cache vfs;
  (* Five distinct bits, all confined to bytes 64..127. *)
  Vfs.set_fault vfs (Vfs.Fault.flip_bits_on_read ~io:1 ~seed:9 ~first:64 ~last:127 ~bits:5 ());
  let corrupted = Vfs.read f ~off:0 ~len:256 in
  let flipped = ref 0 in
  for i = 0 to 255 do
    let d = popcount (Char.chr (Char.code (Bytes.get corrupted i) lxor Char.code (Bytes.get original i))) in
    if d > 0 then begin
      Alcotest.(check bool) (Printf.sprintf "byte %d inside the target range" i) true
        (i >= 64 && i <= 127);
      flipped := !flipped + d
    end
  done;
  Alcotest.(check int) "exactly 5 distinct bits flipped" 5 !flipped;
  (* Media damage: the durable image carries the same rot. *)
  Vfs.clear_fault vfs;
  let img = Vfs.crash_image vfs in
  let g = Vfs.open_file img "a" in
  Alcotest.(check bytes) "durable image rotted identically" corrupted (Vfs.read g ~off:0 ~len:256)

let test_flip_bits_clamped_and_write_blind () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make 16 'x'));
  Vfs.fsync f;
  (* A range reaching past EOF is clamped to the file. *)
  Vfs.purge_os_cache vfs;
  Vfs.set_fault vfs (Vfs.Fault.flip_bits_on_read ~io:1 ~seed:3 ~first:8 ~last:1000 ~bits:2 ());
  let b = Vfs.read f ~off:0 ~len:16 in
  Alcotest.(check bytes) "head untouched" (Bytes.make 8 'x') (Bytes.sub b 0 8);
  Alcotest.(check bool) "tail rotted" false (Bytes.equal (Bytes.sub b 8 8) (Bytes.make 8 'x'));
  (* The plan only fires on reads: a write at the fault I/O is clean. *)
  let vfs2 = make () in
  let g = Vfs.open_file vfs2 "a" in
  ignore (Vfs.append g (Bytes.make 16 'y'));
  Vfs.set_fault vfs2 (Vfs.Fault.flip_bits_on_read ~io:1 ~seed:3 ~first:0 ~last:15 ());
  Vfs.fsync g;
  Vfs.clear_fault vfs2;
  Vfs.purge_os_cache vfs2;
  Alcotest.(check bytes) "write I/Os are not rotted" (Bytes.make 16 'y')
    (Vfs.read g ~off:0 ~len:16)

let test_flip_bits_validation () =
  let rejects f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "io must be >= 1" true
    (rejects (fun () -> Vfs.Fault.flip_bits_on_read ~io:0 ~seed:1 ~first:0 ~last:7 ()));
  Alcotest.(check bool) "first must be >= 0" true
    (rejects (fun () -> Vfs.Fault.flip_bits_on_read ~io:1 ~seed:1 ~first:(-1) ~last:7 ()));
  Alcotest.(check bool) "last must be >= first" true
    (rejects (fun () -> Vfs.Fault.flip_bits_on_read ~io:1 ~seed:1 ~first:8 ~last:7 ()));
  Alcotest.(check bool) "bits must be >= 1" true
    (rejects (fun () -> Vfs.Fault.flip_bits_on_read ~io:1 ~seed:1 ~first:0 ~last:7 ~bits:0 ()))

let test_truncate_evicts_dropped_blocks () =
  let vfs = make () in
  let bs = (Vfs.cost_model vfs).Vfs.Cost_model.block_size in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make (3 * bs) 'x'));
  Vfs.fsync f;
  Vfs.write f ~off:(2 * bs) (Bytes.make bs 'y');
  Alcotest.(check int) "one dirty block" 1 (Vfs.dirty_blocks vfs);
  Vfs.reset_counters vfs;
  Vfs.truncate f bs;
  (* The truncated-away dirty block must not be flushed later... *)
  Alcotest.(check int) "dirty block dropped" 0 (Vfs.dirty_blocks vfs);
  Alcotest.(check int) "truncate is not a data write" 0 (Vfs.counters vfs).Vfs.disk_outputs;
  (* ...and the discarded tail cannot resurrect: growing the file again
     reads zeros, in the live view and in the crash image. *)
  Vfs.truncate f (3 * bs);
  Alcotest.(check char) "live tail zero" '\000' (Bytes.get (Vfs.read f ~off:(2 * bs) ~len:1) 0);
  let img = Vfs.crash_image vfs in
  let g = Vfs.open_file img "a" in
  Alcotest.(check char) "durable tail zero" '\000'
    (Bytes.get (Vfs.read g ~off:(2 * bs) ~len:1) 0);
  Alcotest.(check char) "durable head intact" 'x' (Bytes.get (Vfs.read g ~off:0 ~len:1) 0)

let test_delete_file_drops_dirty () =
  let vfs = make () in
  let f = Vfs.open_file vfs "gone" in
  ignore (Vfs.append f (Bytes.make 10 'x'));
  Alcotest.(check int) "dirty before delete" 1 (Vfs.dirty_blocks vfs);
  Vfs.delete_file vfs "gone";
  Alcotest.(check int) "dirty cleared" 0 (Vfs.dirty_blocks vfs);
  Vfs.sync vfs (* nothing to flush; must not resurrect the file *)

let test_fault_io_count () =
  let vfs = make () in
  let bs = (Vfs.cost_model vfs).Vfs.Cost_model.block_size in
  Vfs.set_fault vfs (Vfs.Fault.none ());
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make (2 * bs) 'x'));
  Vfs.fsync f;
  Vfs.purge_os_cache vfs;
  ignore (Vfs.read f ~off:0 ~len:1);
  (* 2 flushed blocks + 1 physical read; the cached re-read is free. *)
  ignore (Vfs.read f ~off:0 ~len:1);
  Alcotest.(check int) "physical I/Os observed" 3 (Vfs.fault_io_count vfs)

let test_stall_charges_clock () =
  let vfs = make () in
  let f = Vfs.open_file vfs "a" in
  ignore (Vfs.append f (Bytes.make 32 'x'));
  Vfs.fsync f;
  Vfs.purge_os_cache vfs;
  let before = Vfs.Clock.snapshot (Vfs.clock vfs) in
  (* The next physical read stalls 250 ms; the data still arrives. *)
  Vfs.set_fault vfs (Vfs.Fault.stall_at_io ~io:1 ~ms:250.0);
  Alcotest.(check bytes) "stalled read completes" (Bytes.make 32 'x')
    (Vfs.read f ~off:0 ~len:32);
  let after = Vfs.Clock.snapshot (Vfs.clock vfs) in
  let d = Vfs.Clock.diff ~later:after ~earlier:before in
  Alcotest.(check bool) "stall charged to disk time" true (d.Vfs.Clock.disk_ms >= 250.0);
  (* Later I/Os proceed at normal cost. *)
  Vfs.purge_os_cache vfs;
  let before = Vfs.Clock.snapshot (Vfs.clock vfs) in
  ignore (Vfs.read f ~off:0 ~len:32);
  let after = Vfs.Clock.snapshot (Vfs.clock vfs) in
  let d = Vfs.Clock.diff ~later:after ~earlier:before in
  Alcotest.(check bool) "only the chosen I/O stalls" true (d.Vfs.Clock.disk_ms < 250.0)

let test_degraded_device_inflates_one_file () =
  let vfs = make () in
  let sick = Vfs.open_file vfs "sick" and healthy = Vfs.open_file vfs "healthy" in
  ignore (Vfs.append sick (Bytes.make 32 's'));
  ignore (Vfs.append healthy (Bytes.make 32 'h'));
  Vfs.sync vfs;
  Vfs.purge_os_cache vfs;
  Vfs.set_fault vfs (Vfs.Fault.degraded_device ~file:"sick" ~ms:40.0);
  let elapsed f read =
    let before = Vfs.Clock.snapshot (Vfs.clock vfs) in
    ignore (read f);
    let after = Vfs.Clock.snapshot (Vfs.clock vfs) in
    (Vfs.Clock.diff ~later:after ~earlier:before).Vfs.Clock.disk_ms
  in
  let sick_ms = elapsed sick (fun f -> Vfs.read f ~off:0 ~len:32) in
  let healthy_ms = elapsed healthy (fun f -> Vfs.read f ~off:0 ~len:32) in
  Alcotest.(check bool) "sick file pays the stall" true (sick_ms >= 40.0);
  Alcotest.(check bool) "healthy file does not" true (healthy_ms < 40.0);
  (* Every I/O on the sick file stalls, writes included. *)
  ignore (Vfs.append sick (Bytes.make 32 's'));
  let flush_ms = elapsed sick Vfs.fsync in
  Alcotest.(check bool) "writes stall too" true (flush_ms >= 40.0)

let test_copy_file_into () =
  let src = make () and dst = make () in
  let f = Vfs.open_file src "data" in
  ignore (Vfs.append f (Bytes.of_string "replicate me"));
  (* Unflushed writes are part of the copied view... *)
  Vfs.copy_file src "data" ~into:dst;
  let g = Vfs.open_file dst "data" in
  Alcotest.(check string) "contents copied" "replicate me"
    (Bytes.to_string (Vfs.read g ~off:0 ~len:(Vfs.size g)));
  (* ...and the copy is durable on the destination device. *)
  let img = Vfs.crash_image dst in
  let h = Vfs.open_file img "data" in
  Alcotest.(check string) "copy is durable" "replicate me"
    (Bytes.to_string (Vfs.read h ~off:0 ~len:(Vfs.size h)));
  Alcotest.(check bool) "missing source rejected" true
    (match Vfs.copy_file src "absent" ~into:dst with
    | () -> false
    | exception Invalid_argument _ -> true)

let prop_random_writes_match_model =
  QCheck.Test.make ~name:"vfs content matches byte-array model" ~count:60
    QCheck.(list (pair (int_range 0 500) (string_of_size (QCheck.Gen.int_range 1 40))))
    (fun writes ->
      let vfs = make () in
      let f = Vfs.open_file vfs "m" in
      let model = Bytes.make 1024 '\000' in
      let size = ref 0 in
      List.iter
        (fun (off, data) ->
          Vfs.write f ~off (Bytes.of_string data);
          Bytes.blit_string data 0 model off (String.length data);
          size := max !size (off + String.length data))
        writes;
      !size = Vfs.size f
      && (!size = 0 || Bytes.to_string (Vfs.read f ~off:0 ~len:!size) = Bytes.sub_string model 0 !size))

let suite =
  [
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "write extends with hole" `Quick test_write_extends_with_hole;
    Alcotest.test_case "read bounds" `Quick test_read_bounds;
    Alcotest.test_case "same name same file" `Quick test_same_name_same_file;
    Alcotest.test_case "file accesses counted" `Quick test_file_accesses_counted;
    Alcotest.test_case "disk inputs cached" `Quick test_disk_inputs_cached;
    Alcotest.test_case "purge forces reread" `Quick test_purge_forces_reread;
    Alcotest.test_case "block granularity" `Quick test_block_granularity;
    Alcotest.test_case "write populates cache" `Quick test_write_populates_cache;
    Alcotest.test_case "cache capacity eviction" `Quick test_cache_capacity_eviction;
    Alcotest.test_case "clock charges" `Quick test_clock_charges;
    Alcotest.test_case "clock diff and engine" `Quick test_clock_diff_and_engine;
    Alcotest.test_case "monotonic real clock fenced off" `Quick
      test_monotonic_is_real_not_simulated;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "delete file" `Quick test_delete_file;
    Alcotest.test_case "file names sorted" `Quick test_file_names_sorted;
    Alcotest.test_case "counters diff" `Quick test_counters_diff;
    Alcotest.test_case "sequential read discount" `Quick test_sequential_read_discount;
    Alcotest.test_case "default model flat" `Quick test_default_model_flat;
    Alcotest.test_case "crash image drops unsynced" `Quick test_crash_image_drops_unsynced;
    Alcotest.test_case "never-synced reads zero" `Quick test_crash_image_never_synced_reads_zero;
    Alcotest.test_case "sync flushes all files" `Quick test_sync_flushes_all_files;
    Alcotest.test_case "crash_at_io raises" `Quick test_crash_at_io_raises;
    Alcotest.test_case "torn fsync persists prefix" `Quick test_torn_fsync_persists_prefix;
    Alcotest.test_case "bit flip on read" `Quick test_bit_flip_on_read;
    Alcotest.test_case "ranged multi-bit flip" `Quick test_flip_bits_ranged;
    Alcotest.test_case "flip bits clamped, write-blind" `Quick
      test_flip_bits_clamped_and_write_blind;
    Alcotest.test_case "flip bits validation" `Quick test_flip_bits_validation;
    Alcotest.test_case "truncate evicts dropped blocks" `Quick test_truncate_evicts_dropped_blocks;
    Alcotest.test_case "delete file drops dirty" `Quick test_delete_file_drops_dirty;
    Alcotest.test_case "fault io count" `Quick test_fault_io_count;
    Alcotest.test_case "stall charges clock" `Quick test_stall_charges_clock;
    Alcotest.test_case "degraded device inflates one file" `Quick
      test_degraded_device_inflates_one_file;
    Alcotest.test_case "copy file into" `Quick test_copy_file_into;
    QCheck_alcotest.to_alcotest prop_random_writes_match_model;
  ]
