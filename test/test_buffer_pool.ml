(* The Mneme buffer manager: hit accounting, replacement policies,
   pinning (the reservation optimisation), and the transient mode. *)

let seg_bytes n = Bytes.make 100 (Char.chr (65 + (n mod 26)))

let load n () = seg_bytes n

let fault_seq buffer segs = List.iter (fun s -> ignore (Mneme.Buffer_pool.fault buffer ~pseg:s ~load:(load s))) segs

let test_hit_miss_accounting () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:1000 () in
  fault_seq b [ 1; 2; 1; 1; 3 ];
  let s = Mneme.Buffer_pool.stats b in
  Alcotest.(check int) "refs" 5 s.Mneme.Buffer_pool.refs;
  Alcotest.(check int) "hits" 2 s.Mneme.Buffer_pool.hits;
  Alcotest.(check int) "resident" 3 s.Mneme.Buffer_pool.resident_entries;
  Alcotest.(check int) "bytes" 300 s.Mneme.Buffer_pool.resident_bytes

let test_fault_returns_loaded_bytes () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:1000 () in
  let got = Mneme.Buffer_pool.fault b ~pseg:7 ~load:(load 7) in
  Alcotest.(check bytes) "bytes" (seg_bytes 7) got;
  (* Hit path returns the cached copy, not a re-load. *)
  let got2 = Mneme.Buffer_pool.fault b ~pseg:7 ~load:(fun () -> Alcotest.fail "must not reload") in
  Alcotest.(check bytes) "cached" (seg_bytes 7) got2

let test_lru_eviction () =
  (* Capacity for exactly 2 of our 100-byte segments. *)
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:200 () in
  fault_seq b [ 1; 2 ];
  ignore (Mneme.Buffer_pool.fault b ~pseg:1 ~load:(load 1));
  (* touch 1 *)
  fault_seq b [ 3 ];
  (* 2 was LRU *)
  Alcotest.(check bool) "1 resident" true (Mneme.Buffer_pool.resident b ~pseg:1);
  Alcotest.(check bool) "2 evicted" false (Mneme.Buffer_pool.resident b ~pseg:2);
  Alcotest.(check bool) "3 resident" true (Mneme.Buffer_pool.resident b ~pseg:3);
  Alcotest.(check int) "evictions" 1 (Mneme.Buffer_pool.stats b).Mneme.Buffer_pool.evictions

let test_fifo_ignores_recency () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:200 ~policy:Mneme.Buffer_pool.Fifo () in
  fault_seq b [ 1; 2 ];
  ignore (Mneme.Buffer_pool.fault b ~pseg:1 ~load:(load 1));
  fault_seq b [ 3 ];
  (* Under FIFO, 1 is the oldest despite the touch. *)
  Alcotest.(check bool) "1 evicted" false (Mneme.Buffer_pool.resident b ~pseg:1);
  Alcotest.(check bool) "2 resident" true (Mneme.Buffer_pool.resident b ~pseg:2)

let test_clock_second_chance () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:300 ~policy:Mneme.Buffer_pool.Clock () in
  fault_seq b [ 1; 2; 3 ];
  (* First overflow sweeps all reference bits clear and evicts one. *)
  fault_seq b [ 4 ];
  Alcotest.(check int) "three resident" 3
    (Mneme.Buffer_pool.stats b).Mneme.Buffer_pool.resident_entries;
  (* Re-reference 2: its bit is set again, so the next sweep passes it
     over and takes a clear-bit segment instead. *)
  Alcotest.(check bool) "2 still resident" true (Mneme.Buffer_pool.resident b ~pseg:2);
  ignore (Mneme.Buffer_pool.fault b ~pseg:2 ~load:(load 2));
  fault_seq b [ 5 ];
  Alcotest.(check bool) "second chance" true (Mneme.Buffer_pool.resident b ~pseg:2)

let test_pin_prevents_eviction () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:200 () in
  fault_seq b [ 1; 2 ];
  Alcotest.(check bool) "pinned" true (Mneme.Buffer_pool.pin b ~pseg:1);
  fault_seq b [ 3 ];
  (* 1 would have been the LRU victim but is reserved; 2 goes instead. *)
  Alcotest.(check bool) "1 survives" true (Mneme.Buffer_pool.resident b ~pseg:1);
  Alcotest.(check bool) "2 evicted" false (Mneme.Buffer_pool.resident b ~pseg:2);
  Mneme.Buffer_pool.unpin b ~pseg:1;
  fault_seq b [ 4 ];
  Alcotest.(check bool) "after unpin evictable" false (Mneme.Buffer_pool.resident b ~pseg:1)

let test_pin_missing () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:200 () in
  Alcotest.(check bool) "pin absent returns false" false (Mneme.Buffer_pool.pin b ~pseg:9);
  Alcotest.(check bool) "unpin absent raises" true
    (match Mneme.Buffer_pool.unpin b ~pseg:9 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_pins_nest () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:100 () in
  fault_seq b [ 1 ];
  ignore (Mneme.Buffer_pool.pin b ~pseg:1);
  ignore (Mneme.Buffer_pool.pin b ~pseg:1);
  Mneme.Buffer_pool.unpin b ~pseg:1;
  (* Still pinned once: a new segment overflows rather than evicting. *)
  fault_seq b [ 2 ];
  Alcotest.(check bool) "still pinned" true (Mneme.Buffer_pool.resident b ~pseg:1)

let test_all_pinned_incoming_victim () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:100 () in
  fault_seq b [ 1 ];
  ignore (Mneme.Buffer_pool.pin b ~pseg:1);
  fault_seq b [ 2 ];
  (* The only unpinned segment is the incoming one: it is sacrificed
     rather than displacing reserved data. *)
  Alcotest.(check int) "pinned survives alone" 1
    (Mneme.Buffer_pool.stats b).Mneme.Buffer_pool.resident_entries;
  Alcotest.(check bool) "pinned resident" true (Mneme.Buffer_pool.resident b ~pseg:1);
  Alcotest.(check bool) "incoming dropped" false (Mneme.Buffer_pool.resident b ~pseg:2)

let test_transient_mode () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:0 () in
  fault_seq b [ 1; 1; 1 ];
  let s = Mneme.Buffer_pool.stats b in
  Alcotest.(check int) "all misses" 0 s.Mneme.Buffer_pool.hits;
  Alcotest.(check int) "refs counted" 3 s.Mneme.Buffer_pool.refs;
  Alcotest.(check int) "nothing retained" 0 s.Mneme.Buffer_pool.resident_entries

let test_update_and_drop () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:1000 () in
  fault_seq b [ 1 ];
  Mneme.Buffer_pool.update b ~pseg:1 (Bytes.make 50 'u');
  let got = Mneme.Buffer_pool.fault b ~pseg:1 ~load:(fun () -> Alcotest.fail "resident") in
  Alcotest.(check int) "updated size" 50 (Bytes.length got);
  Mneme.Buffer_pool.update b ~pseg:99 (Bytes.make 1 'x');
  (* no-op *)
  Alcotest.(check bool) "update absent is no-op" false (Mneme.Buffer_pool.resident b ~pseg:99);
  Mneme.Buffer_pool.drop b ~pseg:1;
  Alcotest.(check bool) "dropped" false (Mneme.Buffer_pool.resident b ~pseg:1)

let test_clear_keeps_stats () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:1000 () in
  fault_seq b [ 1; 1 ];
  Mneme.Buffer_pool.clear b;
  let s = Mneme.Buffer_pool.stats b in
  Alcotest.(check int) "refs kept" 2 s.Mneme.Buffer_pool.refs;
  Alcotest.(check int) "empty" 0 s.Mneme.Buffer_pool.resident_entries;
  Mneme.Buffer_pool.reset_stats b;
  Alcotest.(check int) "reset" 0 (Mneme.Buffer_pool.stats b).Mneme.Buffer_pool.refs

let test_accessors_and_validation () =
  let b = Mneme.Buffer_pool.create ~name:"big" ~capacity:42 ~policy:Mneme.Buffer_pool.Fifo () in
  Alcotest.(check string) "name" "big" (Mneme.Buffer_pool.name b);
  Alcotest.(check int) "capacity" 42 (Mneme.Buffer_pool.capacity b);
  Alcotest.(check bool) "policy" true (Mneme.Buffer_pool.policy b = Mneme.Buffer_pool.Fifo);
  Alcotest.(check bool) "negative capacity" true
    (match Mneme.Buffer_pool.create ~name:"x" ~capacity:(-1) () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_merge_stats () =
  let a = Mneme.Buffer_pool.create ~name:"a" ~capacity:1000 () in
  let b = Mneme.Buffer_pool.create ~name:"b" ~capacity:200 () in
  fault_seq a [ 1; 2; 1; 1 ];
  fault_seq b [ 1; 2; 3; 3 ];
  let m =
    Mneme.Buffer_pool.merge_stats [ Mneme.Buffer_pool.stats a; Mneme.Buffer_pool.stats b ]
  in
  Alcotest.(check int) "refs sum" 8 m.Mneme.Buffer_pool.refs;
  Alcotest.(check int) "hits sum" 3 m.Mneme.Buffer_pool.hits;
  Alcotest.(check int) "evictions sum" 1 m.Mneme.Buffer_pool.evictions;
  Alcotest.(check int) "resident segments sum" 4 m.Mneme.Buffer_pool.resident_entries;
  Alcotest.(check int) "resident bytes sum" 400 m.Mneme.Buffer_pool.resident_bytes;
  let z = Mneme.Buffer_pool.merge_stats [] in
  Alcotest.(check int) "empty merge refs" 0 z.Mneme.Buffer_pool.refs;
  Alcotest.(check int) "empty merge bytes" 0 z.Mneme.Buffer_pool.resident_bytes;
  (* Merging a single session is the identity. *)
  Alcotest.(check bool) "singleton identity" true
    (Mneme.Buffer_pool.merge_stats [ Mneme.Buffer_pool.stats a ] = Mneme.Buffer_pool.stats a)

(* The pinned-segment index must track every path that creates or
   destroys a pin: pin/unpin, nesting, update (which rebuilds the node),
   drop and clear. *)
let test_pinned_segments_index () =
  let b = Mneme.Buffer_pool.create ~name:"t" ~capacity:1000 () in
  fault_seq b [ 1; 2; 3 ];
  Alcotest.(check (list int)) "none pinned" [] (Mneme.Buffer_pool.pinned_segments b);
  ignore (Mneme.Buffer_pool.pin b ~pseg:3);
  ignore (Mneme.Buffer_pool.pin b ~pseg:1);
  ignore (Mneme.Buffer_pool.pin b ~pseg:1);
  Alcotest.(check (list int)) "ascending" [ 1; 3 ] (Mneme.Buffer_pool.pinned_segments b);
  Mneme.Buffer_pool.unpin b ~pseg:1;
  Alcotest.(check (list int)) "nested pin survives one unpin" [ 1; 3 ]
    (Mneme.Buffer_pool.pinned_segments b);
  Mneme.Buffer_pool.unpin b ~pseg:1;
  Alcotest.(check (list int)) "unpinned out" [ 3 ] (Mneme.Buffer_pool.pinned_segments b);
  (* update preserves the pin count across the node rebuild. *)
  Mneme.Buffer_pool.update b ~pseg:3 (Bytes.make 10 'u');
  Alcotest.(check (list int)) "pin survives update" [ 3 ] (Mneme.Buffer_pool.pinned_segments b);
  Mneme.Buffer_pool.drop b ~pseg:3;
  Alcotest.(check (list int)) "drop clears pin" [] (Mneme.Buffer_pool.pinned_segments b);
  fault_seq b [ 4 ];
  ignore (Mneme.Buffer_pool.pin b ~pseg:4);
  Mneme.Buffer_pool.clear b;
  Alcotest.(check (list int)) "clear empties index" [] (Mneme.Buffer_pool.pinned_segments b);
  (* A segment whose pin count returned to zero is evictable again, and
     its eviction must not resurrect an index entry. *)
  fault_seq b [ 5 ];
  ignore (Mneme.Buffer_pool.pin b ~pseg:5);
  Mneme.Buffer_pool.unpin b ~pseg:5;
  fault_seq b (List.init 12 (fun i -> 100 + i));
  Alcotest.(check (list int)) "evicted segment not pinned" []
    (Mneme.Buffer_pool.pinned_segments b)

let prop_capacity_respected =
  QCheck.Test.make ~name:"resident bytes never exceed capacity without pins" ~count:100
    QCheck.(list (int_range 0 30))
    (fun segs ->
      let b = Mneme.Buffer_pool.create ~name:"q" ~capacity:350 () in
      List.iter (fun s -> ignore (Mneme.Buffer_pool.fault b ~pseg:s ~load:(load s))) segs;
      (Mneme.Buffer_pool.stats b).Mneme.Buffer_pool.resident_bytes <= 350)

let suite =
  [
    Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss_accounting;
    Alcotest.test_case "fault returns bytes" `Quick test_fault_returns_loaded_bytes;
    Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
    Alcotest.test_case "fifo ignores recency" `Quick test_fifo_ignores_recency;
    Alcotest.test_case "clock second chance" `Quick test_clock_second_chance;
    Alcotest.test_case "pin prevents eviction" `Quick test_pin_prevents_eviction;
    Alcotest.test_case "pin missing" `Quick test_pin_missing;
    Alcotest.test_case "pins nest" `Quick test_pins_nest;
    Alcotest.test_case "all pinned: incoming victim" `Quick test_all_pinned_incoming_victim;
    Alcotest.test_case "transient mode" `Quick test_transient_mode;
    Alcotest.test_case "update and drop" `Quick test_update_and_drop;
    Alcotest.test_case "clear keeps stats" `Quick test_clear_keeps_stats;
    Alcotest.test_case "accessors and validation" `Quick test_accessors_and_validation;
    Alcotest.test_case "merge stats" `Quick test_merge_stats;
    Alcotest.test_case "pinned segments index" `Quick test_pinned_segments_index;
    QCheck_alcotest.to_alcotest prop_capacity_respected;
  ]
