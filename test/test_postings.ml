(* Inverted list records: compression roundtrips, folds, updates. *)

let sample = [ (3, [ 0; 5; 9 ]); (7, [ 2 ]); (100, [ 1; 2; 3; 4 ]) ]

let test_encode_decode () =
  let b = Inquery.Postings.encode sample in
  let decoded = Inquery.Postings.decode b in
  Alcotest.(check int) "df" 3 (List.length decoded);
  List.iter2
    (fun (doc, positions) dp ->
      Alcotest.(check int) "doc" doc dp.Inquery.Postings.doc;
      Alcotest.(check (list int)) "positions" positions dp.Inquery.Postings.positions)
    sample decoded

let test_stats () =
  let b = Inquery.Postings.encode sample in
  let df, cf = Inquery.Postings.stats b in
  Alcotest.(check int) "df" 3 df;
  Alcotest.(check int) "cf" 8 cf;
  Alcotest.(check int) "doc_count" 3 (Inquery.Postings.doc_count b)

let test_empty () =
  let b = Inquery.Postings.encode [] in
  Alcotest.(check (pair int int)) "stats" (0, 0) (Inquery.Postings.stats b);
  Alcotest.(check int) "decode" 0 (List.length (Inquery.Postings.decode b))

let test_fold_docs_skips_positions () =
  let b = Inquery.Postings.encode sample in
  let pairs =
    Inquery.Postings.fold_docs b ~init:[] ~f:(fun acc ~doc ~tf -> (doc, tf) :: acc) |> List.rev
  in
  Alcotest.(check (list (pair int int))) "doc/tf" [ (3, 3); (7, 1); (100, 4) ] pairs

let test_validation () =
  let invalid entries =
    match Inquery.Postings.encode entries with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unsorted docs" true (invalid [ (5, [ 1 ]); (3, [ 1 ]) ]);
  Alcotest.(check bool) "duplicate docs" true (invalid [ (5, [ 1 ]); (5, [ 2 ]) ]);
  Alcotest.(check bool) "empty positions" true (invalid [ (5, []) ]);
  Alcotest.(check bool) "unsorted positions" true (invalid [ (5, [ 3; 1 ]) ])

let test_single_tiny_record () =
  (* A df=1, tf=1 record is just a few bytes: the small-object story. *)
  let b = Inquery.Postings.encode [ (42, [ 7 ]) ] in
  Alcotest.(check bool) "tiny" true (Bytes.length b <= 12);
  Alcotest.(check (pair int int)) "stats" (1, 1) (Inquery.Postings.stats b)

let test_compression_effective () =
  (* Dense ascending docs make gaps small: far fewer bytes than 4 per
     int, which is what the paper's ~60% compression is about. *)
  let entries = List.init 1000 (fun i -> (i * 2, [ i mod 50 ])) in
  let b = Inquery.Postings.encode entries in
  let uncompressed = 1000 * 3 * 4 in
  Alcotest.(check bool) "beats 12 bytes per posting" true (Bytes.length b * 2 < uncompressed)

let test_merge_disjoint () =
  let a = Inquery.Postings.encode [ (1, [ 0 ]); (5, [ 1; 2 ]) ] in
  let b = Inquery.Postings.encode [ (3, [ 9 ]); (7, [ 4 ]) ] in
  let m = Inquery.Postings.merge a b in
  let docs = List.map (fun dp -> dp.Inquery.Postings.doc) (Inquery.Postings.decode m) in
  Alcotest.(check (list int)) "interleaved" [ 1; 3; 5; 7 ] docs;
  let df, cf = Inquery.Postings.stats m in
  Alcotest.(check int) "df" 4 df;
  Alcotest.(check int) "cf" 5 cf

let test_merge_overlap_rejected () =
  let a = Inquery.Postings.encode [ (1, [ 0 ]) ] in
  let b = Inquery.Postings.encode [ (1, [ 1 ]) ] in
  Alcotest.(check bool) "overlap" true
    (match Inquery.Postings.merge a b with _ -> false | exception Invalid_argument _ -> true)

let test_merge_empty () =
  let a = Inquery.Postings.encode [ (1, [ 0 ]) ] in
  let e = Inquery.Postings.encode [] in
  Alcotest.(check int) "merge with empty" 1 (Inquery.Postings.doc_count (Inquery.Postings.merge a e))

let test_remove_docs () =
  let b = Inquery.Postings.encode sample in
  (match Inquery.Postings.remove_docs b (fun doc -> doc = 7) with
  | Some b' ->
    let docs = List.map (fun dp -> dp.Inquery.Postings.doc) (Inquery.Postings.decode b') in
    Alcotest.(check (list int)) "removed" [ 3; 100 ] docs;
    let df, cf = Inquery.Postings.stats b' in
    Alcotest.(check int) "df updated" 2 df;
    Alcotest.(check int) "cf updated" 7 cf
  | None -> Alcotest.fail "should not be empty");
  match Inquery.Postings.remove_docs b (fun _ -> true) with
  | None -> ()
  | Some _ -> Alcotest.fail "should be empty"

let gen_entries =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (pair (int_range 1 20) (list_size (int_range 1 8) (int_range 1 50)))
    |> map (fun raw ->
           let _, entries =
             List.fold_left
               (fun (doc, acc) (doc_gap, pos_gaps) ->
                 let doc = doc + doc_gap in
                 let _, positions =
                   List.fold_left
                     (fun (p, ps) gap ->
                       let p = p + gap in
                       (p, p :: ps))
                     (-1, []) pos_gaps
                 in
                 (doc, (doc, List.rev positions) :: acc))
               (-1, []) raw
           in
           List.rev entries))

let prop_roundtrip =
  QCheck.Test.make ~name:"postings roundtrip" ~count:300 (QCheck.make gen_entries) (fun entries ->
      let b = Inquery.Postings.encode entries in
      let decoded = Inquery.Postings.decode b in
      List.map (fun dp -> (dp.Inquery.Postings.doc, dp.Inquery.Postings.positions)) decoded
      = entries)

let prop_fold_consistent =
  QCheck.Test.make ~name:"fold_docs agrees with decode" ~count:200 (QCheck.make gen_entries)
    (fun entries ->
      let b = Inquery.Postings.encode entries in
      let via_fold =
        Inquery.Postings.fold_docs b ~init:[] ~f:(fun acc ~doc ~tf -> (doc, tf) :: acc)
        |> List.rev
      in
      via_fold = List.map (fun (doc, ps) -> (doc, List.length ps)) entries)

(* --- format v2: version sniffing, skip blocks, cursors ------------- *)

let pairs_of b =
  List.map (fun dp -> (dp.Inquery.Postings.doc, dp.Inquery.Postings.positions))
    (Inquery.Postings.decode b)

let big_entries n = List.init n (fun i -> (i * 3, [ i mod 7; (i mod 7) + 2 ]))

let cursor_walk b =
  let cur = Inquery.Postings.cursor b in
  let rec go acc =
    if Inquery.Postings.cur_doc cur = max_int then List.rev acc
    else begin
      let d = Inquery.Postings.cur_doc cur and tf = Inquery.Postings.cur_tf cur in
      Inquery.Postings.cursor_next cur;
      go ((d, tf) :: acc)
    end
  in
  go []

let fold_pairs b =
  Inquery.Postings.fold_docs b ~init:[] ~f:(fun acc ~doc ~tf -> (doc, tf) :: acc) |> List.rev

let test_version_sniff () =
  Alcotest.(check int) "tiny is v1" 1
    (Inquery.Postings.version (Inquery.Postings.encode sample));
  Alcotest.(check int) "empty is v1" 1 (Inquery.Postings.version (Inquery.Postings.encode []));
  let big = big_entries 200 in
  Alcotest.(check int) "big is v2" 2 (Inquery.Postings.version (Inquery.Postings.encode big));
  Alcotest.(check int) "encode_v1 stays v1" 1
    (Inquery.Postings.version (Inquery.Postings.encode_v1 big))

let test_v1_compat_roundtrip () =
  (* Records written by the pre-PR encoder (kept verbatim as encode_v1)
     must stay readable through every entry point. *)
  List.iter
    (fun entries ->
      let b = Inquery.Postings.encode_v1 entries in
      Alcotest.(check int) "version" 1 (Inquery.Postings.version b);
      Alcotest.(check bool) "decode" true (pairs_of b = entries);
      let df, cf = Inquery.Postings.stats b in
      Alcotest.(check int) "df" (List.length entries) df;
      Alcotest.(check int) "cf"
        (List.fold_left (fun a (_, ps) -> a + List.length ps) 0 entries)
        cf;
      Alcotest.(check bool) "validate" true (Inquery.Postings.validate b = Ok ());
      Alcotest.(check bool) "no skip table" true
        (Inquery.Postings.skip_table_region b = None);
      Alcotest.(check bool) "no max_tf header" true (Inquery.Postings.max_tf b = None);
      Alcotest.(check bool) "cursor walk" true
        (cursor_walk b = List.map (fun (d, ps) -> (d, List.length ps)) entries))
    [ sample; big_entries 500; [ (0, [ 0 ]) ] ]

let test_multi_block_roundtrip () =
  let entries = big_entries 500 in
  let b = Inquery.Postings.encode entries in
  Alcotest.(check int) "v2" 2 (Inquery.Postings.version b);
  (match Inquery.Postings.skip_table_region b with
  | None -> Alcotest.fail "expected a skip table"
  | Some (off, len) ->
    Alcotest.(check bool) "region inside record" true
      (off > 0 && len > 0 && off + len <= Bytes.length b));
  Alcotest.(check bool) "decode roundtrip" true (pairs_of b = entries);
  Alcotest.(check bool) "max_tf header" true (Inquery.Postings.max_tf b = Some 2);
  Alcotest.(check bool) "validate" true (Inquery.Postings.validate b = Ok ());
  Alcotest.(check bool) "cursor walk = fold" true (cursor_walk b = fold_pairs b);
  let df, cf = Inquery.Postings.stats b in
  Alcotest.(check int) "df" 500 df;
  Alcotest.(check int) "cf" 1000 cf

let test_builder_matches_encode () =
  List.iter
    (fun entries ->
      let bld = Inquery.Postings.Builder.create () in
      List.iter (fun (d, ps) -> Inquery.Postings.Builder.add bld ~doc:d ~positions:ps) entries;
      Alcotest.(check string) "builder = encode"
        (Bytes.to_string (Inquery.Postings.encode entries))
        (Bytes.to_string (Inquery.Postings.Builder.finish bld)))
    [ []; sample; big_entries 9; big_entries 300 ]

let test_cursor_seek_v2 () =
  let entries = List.init 1000 (fun i -> (i * 5, [ 0 ])) in
  let b = Inquery.Postings.encode entries in
  let cur = Inquery.Postings.cursor b in
  Inquery.Postings.cursor_seek cur 3000;
  Alcotest.(check int) "lands on target" 3000 (Inquery.Postings.cur_doc cur);
  Alcotest.(check bool) "blocks skipped" true (Inquery.Postings.cursor_blocks_skipped cur > 0);
  Alcotest.(check bool) "decoded less than scanned" true
    (Inquery.Postings.cursor_decoded cur < 300);
  Inquery.Postings.cursor_seek cur 2000;
  Alcotest.(check int) "backward seek is a no-op" 3000 (Inquery.Postings.cur_doc cur);
  Inquery.Postings.cursor_seek cur 3001;
  Alcotest.(check int) "first doc >= target" 3005 (Inquery.Postings.cur_doc cur);
  Inquery.Postings.cursor_seek cur 999_999;
  Alcotest.(check int) "past the end" max_int (Inquery.Postings.cur_doc cur);
  Alcotest.(check bool) "seeks counted" true (Inquery.Postings.cursor_seeks cur > 0)

let test_cursor_seek_v1 () =
  let entries = List.init 6 (fun i -> (i * 10, [ 1 ])) in
  let b = Inquery.Postings.encode_v1 entries in
  let cur = Inquery.Postings.cursor b in
  Inquery.Postings.cursor_seek cur 35;
  Alcotest.(check int) "linear seek" 40 (Inquery.Postings.cur_doc cur);
  Alcotest.(check int) "no blocks to skip" 0 (Inquery.Postings.cursor_blocks_skipped cur)

let test_cursor_empty () =
  let cur = Inquery.Postings.cursor (Inquery.Postings.encode []) in
  Alcotest.(check int) "exhausted" max_int (Inquery.Postings.cur_doc cur)

let test_skip_table_bitflip () =
  (* Any single-bit flip inside the skip table must be detected by
     [validate], while the scan path (decode walks the doc region
     directly) keeps returning the original postings. *)
  let entries = big_entries 400 in
  let b = Inquery.Postings.encode entries in
  let reference = pairs_of b in
  match Inquery.Postings.skip_table_region b with
  | None -> Alcotest.fail "expected a skip table"
  | Some (off, len) ->
    for byte = off to off + len - 1 do
      for bit = 0 to 7 do
        let b' = Bytes.copy b in
        Bytes.set b' byte (Char.chr (Char.code (Bytes.get b' byte) lxor (1 lsl bit)));
        (match Inquery.Postings.validate b' with
        | Ok () -> Alcotest.failf "flip at byte %d bit %d undetected" byte bit
        | Error _ -> ());
        if pairs_of b' <> reference then
          Alcotest.failf "scan path changed by flip at byte %d bit %d" byte bit
      done
    done

(* --- the adaptive compression ladder ------------------------------- *)

(* Entries sized to land in a specific tier, with enough irregularity
   (varying gaps and tfs) that packing widths differ between blocks. *)
let tier_entries n =
  let doc = ref 0 in
  List.init n (fun i ->
      doc := !doc + 1 + (i mod 7);
      let stride = (i mod 5) + 2 in
      (!doc, List.init ((i mod 4) + 1) (fun p -> p * stride)))

let test_tier_assignment () =
  List.iter
    (fun (n, expect) ->
      let b = Inquery.Postings.encode (tier_entries n) in
      Alcotest.(check string)
        (Printf.sprintf "df %d" n)
        (Inquery.Postings.tier_name expect)
        (Inquery.Postings.tier_name (Inquery.Postings.tier b));
      Alcotest.(check string) "tier_of_df agrees"
        (Inquery.Postings.tier_name (Inquery.Postings.tier_of_df n))
        (Inquery.Postings.tier_name (Inquery.Postings.tier b)))
    [
      (3, Inquery.Postings.V1);
      (Inquery.Postings.v1_cutoff_df, Inquery.Postings.Raw);
      (Inquery.Postings.raw_cutoff_df - 1, Inquery.Postings.Raw);
      (Inquery.Postings.raw_cutoff_df, Inquery.Postings.Vbyte);
      (Inquery.Postings.cold_cutoff_df - 1, Inquery.Postings.Vbyte);
      (Inquery.Postings.cold_cutoff_df, Inquery.Postings.Cold);
      (Inquery.Postings.cold_cutoff_df + 200, Inquery.Postings.Cold);
    ]

let test_all_tiers_roundtrip () =
  List.iter
    (fun n ->
      let entries = tier_entries n in
      let b = Inquery.Postings.encode entries in
      Alcotest.(check bool) (Printf.sprintf "df %d decode" n) true (pairs_of b = entries);
      Alcotest.(check bool) (Printf.sprintf "df %d validate" n) true
        (Inquery.Postings.validate b = Ok ());
      Alcotest.(check bool) (Printf.sprintf "df %d cursor = fold" n) true
        (cursor_walk b = fold_pairs b);
      let cf = List.fold_left (fun a (_, ps) -> a + List.length ps) 0 entries in
      Alcotest.(check (pair int int)) (Printf.sprintf "df %d stats" n) (n, cf)
        (Inquery.Postings.stats b))
    [ 8; 40; 63; 64; 200; 1023; 1024; 1300 ]

(* Satellite: every single-bit flip anywhere in a raw- or cold-tier doc
   region must be flagged by [validate].  Raw gaps are u32 absolutes of
   nothing — they are gaps, so one flip shifts every later doc and the
   skip table's last-doc cross-check fires; tf flips break cf/max_tf;
   cold width bytes break the width-implied block length, packed-value
   flips break last-doc, monotonicity, padding or canonical-width
   checks. *)
let flip_sweep name entries ~expect_tier ~limit =
  let b = Inquery.Postings.encode entries in
  Alcotest.(check string) (name ^ " tier")
    (Inquery.Postings.tier_name expect_tier)
    (Inquery.Postings.tier_name (Inquery.Postings.tier b));
  match Inquery.Postings.doc_region b with
  | None -> Alcotest.fail "expected a v2 doc region"
  | Some (off, len) ->
    (* Sweep the head of the region (first blocks) and its tail (last,
       ragged block) — full records make the sweep quadratic for cold
       tiers without covering new code paths. *)
    let limit = min limit len in
    let ranges =
      if len <= 2 * limit then [ (off, off + len - 1) ]
      else [ (off, off + limit - 1); (off + len - limit, off + len - 1) ]
    in
    List.iter
      (fun (lo, hi) ->
        for byte = lo to hi do
          for bit = 0 to 7 do
            let b' = Bytes.copy b in
            Bytes.set b' byte (Char.chr (Char.code (Bytes.get b' byte) lxor (1 lsl bit)));
            match Inquery.Postings.validate b' with
            | Ok () -> Alcotest.failf "%s: flip at byte %d bit %d undetected" name byte bit
            | Error _ -> ()
          done
        done)
      ranges

let test_raw_tier_bitflips () =
  flip_sweep "raw" (tier_entries 40) ~expect_tier:Inquery.Postings.Raw ~limit:max_int

let test_cold_tier_bitflips () =
  flip_sweep "cold"
    (tier_entries (Inquery.Postings.cold_cutoff_df + 100))
    ~expect_tier:Inquery.Postings.Cold ~limit:192

let test_mixed_tier_seek () =
  (* The same skip table drives seeks in every tier: binary-search the
     blocks, decode one, binary-search inside it. *)
  List.iter
    (fun n ->
      let entries = tier_entries n in
      let b = Inquery.Postings.encode entries in
      let docs = List.map fst entries in
      let targets =
        [ 0; List.nth docs (n / 3); List.nth docs (n / 3) + 1; List.nth docs (n - 1); max_int / 2 ]
      in
      List.iter
        (fun target ->
          let cur = Inquery.Postings.cursor b in
          Inquery.Postings.cursor_seek cur target;
          let expect =
            match List.find_opt (fun d -> d >= target) docs with
            | Some d -> d
            | None -> max_int
          in
          Alcotest.(check int)
            (Printf.sprintf "df %d seek %d" n target)
            expect (Inquery.Postings.cur_doc cur))
        targets)
    [ 40; 200; 1300 ]

let gen_block_entries =
  QCheck.Gen.(
    list_size (int_range 64 320)
      (pair (int_range 1 6) (list_size (int_range 1 4) (int_range 1 12)))
    |> map (fun raw ->
           let _, entries =
             List.fold_left
               (fun (doc, acc) (doc_gap, pos_gaps) ->
                 let doc = doc + doc_gap in
                 let _, positions =
                   List.fold_left
                     (fun (p, ps) gap ->
                       let p = p + gap in
                       (p, p :: ps))
                     (-1, []) pos_gaps
                 in
                 (doc, (doc, List.rev positions) :: acc))
               (-1, []) raw
           in
           List.rev entries))

let prop_v2_roundtrip =
  QCheck.Test.make ~name:"v2 multi-block roundtrip + validate" ~count:100
    (QCheck.make gen_block_entries) (fun entries ->
      let b = Inquery.Postings.encode entries in
      pairs_of b = entries && Inquery.Postings.validate b = Ok ())

let prop_cursor_matches_fold =
  QCheck.Test.make ~name:"cursor walk = fold_docs (v1 and v2)" ~count:100
    (QCheck.make gen_entries) (fun entries ->
      let check enc =
        let b = enc entries in
        cursor_walk b = fold_pairs b
      in
      check Inquery.Postings.encode && check Inquery.Postings.encode_v1)

let prop_seek_first_geq =
  QCheck.Test.make ~name:"seek lands on first doc >= target" ~count:100
    (QCheck.make QCheck.Gen.(pair gen_block_entries (int_range 0 2200)))
    (fun (entries, target) ->
      let b = Inquery.Postings.encode entries in
      let cur = Inquery.Postings.cursor b in
      Inquery.Postings.cursor_seek cur target;
      let expect =
        match List.find_opt (fun (d, _) -> d >= target) entries with
        | Some (d, _) -> d
        | None -> max_int
      in
      Inquery.Postings.cur_doc cur = expect)

let suite =
  [
    Alcotest.test_case "encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "fold_docs" `Quick test_fold_docs_skips_positions;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "tiny record" `Quick test_single_tiny_record;
    Alcotest.test_case "compression effective" `Quick test_compression_effective;
    Alcotest.test_case "merge disjoint" `Quick test_merge_disjoint;
    Alcotest.test_case "merge overlap rejected" `Quick test_merge_overlap_rejected;
    Alcotest.test_case "merge empty" `Quick test_merge_empty;
    Alcotest.test_case "remove docs" `Quick test_remove_docs;
    Alcotest.test_case "version sniff" `Quick test_version_sniff;
    Alcotest.test_case "v1 compat roundtrip" `Quick test_v1_compat_roundtrip;
    Alcotest.test_case "multi-block roundtrip" `Quick test_multi_block_roundtrip;
    Alcotest.test_case "builder matches encode" `Quick test_builder_matches_encode;
    Alcotest.test_case "cursor seek (v2 skip table)" `Quick test_cursor_seek_v2;
    Alcotest.test_case "cursor seek (v1 linear)" `Quick test_cursor_seek_v1;
    Alcotest.test_case "cursor on empty record" `Quick test_cursor_empty;
    Alcotest.test_case "skip-table bit flips detected" `Quick test_skip_table_bitflip;
    Alcotest.test_case "tier assignment" `Quick test_tier_assignment;
    Alcotest.test_case "all tiers roundtrip" `Quick test_all_tiers_roundtrip;
    Alcotest.test_case "raw-tier doc-region bit flips detected" `Quick test_raw_tier_bitflips;
    Alcotest.test_case "cold-tier doc-region bit flips detected" `Quick test_cold_tier_bitflips;
    Alcotest.test_case "mixed-tier seek" `Quick test_mixed_tier_seek;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_fold_consistent;
    QCheck_alcotest.to_alcotest prop_v2_roundtrip;
    QCheck_alcotest.to_alcotest prop_cursor_matches_fold;
    QCheck_alcotest.to_alcotest prop_seek_first_geq;
  ]
