(* Command-line driver for the reproduction: regenerate any table or
   figure, inspect a collection, or run ad-hoc queries.

   dune exec bin/repro.exe -- tables --scale 0.1
   dune exec bin/repro.exe -- stats legal
   dune exec bin/repro.exe -- run cacm --set 3 --version cache
   dune exec bin/repro.exe -- query cacm "#phrase( ba be )" *)

open Cmdliner

let scale_arg =
  let doc = "Collection scale factor (1.0 = calibrated defaults)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let collection_arg =
  let doc = "Collection preset: cacm, legal, tipster1 or tipster." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"COLLECTION" ~doc)

let progress msg = Printf.eprintf "%s\n%!" msg

(* --- tables ------------------------------------------------------- *)

let tables_cmd =
  let only =
    let doc =
      "Emit only the listed item(s): table1..table6, fig1..fig3 (repeatable)."
    in
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"ID" ~doc)
  in
  let run scale only =
    let ctx = Core.Paper.create_ctx ~progress ~scale () in
    let items =
      [
        ("fig1", fun () -> ("Figure 1: cumulative inverted-list size distribution (Legal)", Core.Paper.fig1 ctx));
        ("table1", fun () -> ("Table 1: document collection statistics (sizes in KB)", Core.Paper.table1 ctx));
        ("fig2", fun () -> ("Figure 2: frequency of use by record size, Legal query set 2", Core.Paper.fig2 ctx));
        ("table2", fun () -> ("Table 2: Mneme buffer sizes (KB)", Core.Paper.table2 ctx));
        ("table3", fun () -> ("Table 3: wall-clock times (seconds, simulated)", Core.Paper.table3 ctx));
        ("table4", fun () -> ("Table 4: system CPU plus I/O times (seconds, simulated)", Core.Paper.table4 ctx));
        ("table5", fun () -> ("Table 5: I/O statistics", Core.Paper.table5 ctx));
        ("table6", fun () -> ("Table 6: buffer hit rates (Mneme, Cache)", Core.Paper.table6 ctx));
        ("fig3", fun () -> ("Figure 3: large-object buffer hit rate vs size", Core.Paper.fig3 ctx));
      ]
    in
    let wanted =
      match only with
      | [] -> items
      | ids ->
        List.filter_map
          (fun id ->
            match List.assoc_opt id items with
            | Some f -> Some (id, f)
            | None ->
              Printf.eprintf "unknown item %s (use table1..table6, fig1..fig3)\n" id;
              exit 2)
          ids
    in
    List.iter
      (fun (_, f) ->
        let label, table = f () in
        print_newline ();
        print_endline label;
        Util.Tables.print table)
      wanted
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ scale_arg $ only)

(* --- ablations ------------------------------------------------------ *)

let ablations_cmd =
  let run scale =
    let ctx = Core.Ablation.create ~progress ~scale () in
    List.iter
      (fun (label, table) ->
        print_newline ();
        print_endline label;
        Util.Tables.print table)
      (Core.Ablation.all ctx)
  in
  let doc = "Run the design-choice ablation studies." in
  Cmd.v (Cmd.info "ablations" ~doc) Term.(const run $ scale_arg)

(* --- stats -------------------------------------------------------- *)

let stats_cmd =
  let run scale name =
    let model = Collections.Presets.find ~scale name in
    let prepared = Core.Experiment.prepare ~progress model in
    let ix = prepared.Core.Experiment.indexer in
    Printf.printf "collection        %s\n" name;
    Printf.printf "documents         %d\n" (Inquery.Indexer.document_count ix);
    Printf.printf "collection bytes  %d\n" (Inquery.Indexer.collection_bytes ix);
    Printf.printf "distinct terms    %d\n" (Inquery.Indexer.term_count ix);
    Printf.printf "postings          %d\n" (Inquery.Indexer.posting_count ix);
    Printf.printf "occurrences       %d\n" (Inquery.Indexer.occurrence_count ix);
    Printf.printf "avg doc length    %.1f\n" (Inquery.Indexer.avg_doc_length ix);
    Printf.printf "largest record    %d bytes\n" prepared.Core.Experiment.largest_record;
    Printf.printf "btree file        %d KB\n" (prepared.Core.Experiment.btree_size / 1024);
    Printf.printf "mneme file        %d KB\n" (prepared.Core.Experiment.mneme_size / 1024);
    let s, m, l = Core.Report.size_census prepared in
    Printf.printf "partition         %d small / %d medium / %d large\n" s m l
  in
  let doc = "Build a collection and print its index statistics." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ scale_arg $ collection_arg)

(* --- run ---------------------------------------------------------- *)

let version_of_string = function
  | "btree" -> Ok Core.Experiment.Btree
  | "nocache" -> Ok Core.Experiment.Mneme_no_cache
  | "cache" -> Ok Core.Experiment.Mneme_cache
  | other -> Error (Printf.sprintf "unknown version %s (btree | nocache | cache)" other)

let run_cmd =
  let set_arg =
    let doc = "Query set number (as in the paper)." in
    Arg.(value & opt string "1" & info [ "set"; "s" ] ~docv:"SET" ~doc)
  in
  let version_arg =
    let doc = "Index version: btree, nocache or cache." in
    Arg.(value & opt string "cache" & info [ "version"; "v" ] ~docv:"VERSION" ~doc)
  in
  let run scale name set version =
    match version_of_string version with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
    | Ok version ->
      let ctx = Core.Paper.create_ctx ~progress ~scale () in
      let r = Core.Paper.run ctx name set version in
      Printf.printf "collection   %s, query set %s, %s\n" name set
        (Core.Experiment.version_name version);
      Printf.printf "queries      %d\n" r.Core.Experiment.n_queries;
      Printf.printf "wall         %.2f s (simulated)\n" r.Core.Experiment.wall_s;
      Printf.printf "sys+io       %.2f s\n" r.Core.Experiment.sys_io_s;
      Printf.printf "engine cpu   %.2f s\n" r.Core.Experiment.engine_cpu_s;
      Printf.printf "I            %d disk inputs\n" r.Core.Experiment.io_inputs;
      Printf.printf "A            %.2f file accesses / lookup\n"
        (Core.Experiment.accesses_per_lookup r);
      Printf.printf "B            %.0f KB read\n" r.Core.Experiment.kbytes_read;
      List.iter
        (fun (pool, s) ->
          if s.Mneme.Buffer_pool.refs > 0 then
            Printf.printf "%-6s buffer %d refs, %d hits\n" pool s.Mneme.Buffer_pool.refs
              s.Mneme.Buffer_pool.hits)
        r.Core.Experiment.buffers
  in
  let doc = "Run one (collection, query set, version) experiment." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ scale_arg $ collection_arg $ set_arg $ version_arg)

(* --- fsck --------------------------------------------------------- *)

let fsck_cmd =
  let run scale name =
    let model = Collections.Presets.find ~scale name in
    let prepared = Core.Experiment.prepare ~progress model in
    let store =
      Mneme.Store.open_existing prepared.Core.Experiment.vfs prepared.Core.Experiment.mneme_file
    in
    List.iter
      (fun pname ->
        Mneme.Store.attach_buffer (Mneme.Store.pool store pname)
          (Mneme.Buffer_pool.create ~name:pname ~capacity:1_048_576 ()))
      [ "small"; "medium"; "large" ];
    (* Every object in the index file is a postings record, so fsck can
       validate payloads format-aware: header consistency, skip-table
       invariants, gap monotonicity. *)
    let report = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
    Format.printf "%a@." Mneme.Check.pp_report report;
    let catalog = Core.Catalog.load prepared.Core.Experiment.vfs ~file:prepared.Core.Experiment.catalog_file in
    let fetch entry =
      let locator = entry.Inquery.Dictionary.locator in
      if locator < 0 then None else Mneme.Store.get_opt store locator
    in
    let problems = Core.Catalog.verify_records catalog ~fetch in
    (match problems with
    | [] -> Printf.printf "catalog: %d terms cross-checked, clean\n" (Inquery.Dictionary.size catalog.Core.Catalog.dict)
    | ps ->
      Printf.printf "catalog: %d problem(s):\n" (List.length ps);
      List.iter (fun (term, what) -> Printf.printf "  %s: %s\n" term what) ps);
    if not (Mneme.Check.ok report) || problems <> [] then exit 1
  in
  let doc =
    "Build a collection's Mneme store and verify its integrity, \
     including postings-format validation of every stored record and a \
     catalog/record cross-check."
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run $ scale_arg $ collection_arg)

(* --- topk --------------------------------------------------------- *)

let topk_cmd =
  let collections_arg =
    let doc = "Collections to measure (default: all four)." in
    Arg.(value & pos_all string [] & info [] ~docv:"COLLECTION" ~doc)
  in
  let k_arg =
    let doc = "Result-list depth for the pruned evaluator." in
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc)
  in
  let queries_arg =
    let doc = "Evaluate only the first N queries of each set." in
    Arg.(value & opt (some int) None & info [ "queries" ] ~docv:"N" ~doc)
  in
  let audit_arg =
    let doc =
      "Re-run the exhaustive evaluator after every pruned query and fail \
       if the rankings differ in any document or belief."
    in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the per-collection numbers as JSON to FILE." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run scale names k n_queries audit json_file =
    if k <= 0 then begin
      Printf.eprintf "topk: --k must be positive\n";
      exit 2
    end;
    let names =
      match names with [] -> [ "cacm"; "legal"; "tipster1"; "tipster" ] | ns -> ns
    in
    let rows =
      List.map
        (fun name ->
          let model = Collections.Presets.find ~scale name in
          let prepared = Core.Experiment.prepare ~progress model in
          let spec = Collections.Presets.topk_queries model in
          let queries = Collections.Querygen.generate model spec in
          let queries =
            match n_queries with
            | None -> queries
            | Some n -> List.filteri (fun i _ -> i < n) queries
          in
          (* Exhaustive baseline and pruned run use separate engine
             sessions so buffer state cannot leak between them. *)
          let exhaustive_decoded = ref 0 in
          let ex = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
          List.iter
            (fun q ->
              let r = Core.Engine.run_topk_string ~exhaustive:true ~k ex q in
              exhaustive_decoded := !exhaustive_decoded + r.Core.Engine.topk_postings_decoded)
            queries;
          let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
          let decoded = ref 0 and total = ref 0 in
          let blocks = ref 0 and seeks = ref 0 and pruned_q = ref 0 in
          List.iter
            (fun q ->
              match Core.Engine.run_topk_string ~audit ~k engine q with
              | r ->
                decoded := !decoded + r.Core.Engine.topk_postings_decoded;
                total := !total + r.Core.Engine.topk_postings_total;
                blocks := !blocks + r.Core.Engine.topk_blocks_skipped;
                seeks := !seeks + r.Core.Engine.topk_seeks;
                if r.Core.Engine.topk_pruned then incr pruned_q
              | exception Inquery.Infnet.Audit_mismatch msg ->
                Printf.eprintf "topk: AUDIT FAILED on %s: %s\n  query: %s\n" name msg q;
                exit 1)
            queries;
          (name, List.length queries, !total, !exhaustive_decoded, !decoded, !blocks, !seeks,
           !pruned_q))
        names
    in
    Printf.printf "%-10s %8s %12s %12s %12s %8s %10s %8s %7s\n" "collection" "queries"
      "postings" "exhaustive" "pruned" "ratio" "blocks" "seeks" "pruned";
    List.iter
      (fun (name, nq, total, ex, dec, blocks, seeks, pq) ->
        let ratio = if dec > 0 then float_of_int ex /. float_of_int dec else infinity in
        Printf.printf "%-10s %8d %12d %12d %12d %7.2fx %10d %8d %4d/%d\n" name nq total ex dec
          ratio blocks seeks pq nq)
      rows;
    if audit then Printf.printf "audit: every pruned ranking matched the exhaustive one\n";
    match json_file with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      let row_json (name, nq, total, ex, dec, blocks, seeks, pq) =
        Printf.sprintf
          "  { \"collection\": %S, \"queries\": %d, \"k\": %d, \"postings_total\": %d,\n\
          \    \"postings_decoded_exhaustive\": %d, \"postings_decoded_pruned\": %d,\n\
          \    \"blocks_skipped\": %d, \"seeks\": %d, \"queries_pruned\": %d,\n\
          \    \"audited\": %b }"
          name nq k total ex dec blocks seeks pq audit
      in
      Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (List.map row_json rows));
      close_out oc;
      Printf.printf "wrote %s\n" file
  in
  let doc =
    "Measure max-score top-k pruning against exhaustive \
     document-at-a-time evaluation on the flat (phrase-free) query sets: \
     postings decoded, skip blocks jumped, and optionally a \
     result-identity audit."
  in
  Cmd.v (Cmd.info "topk" ~doc)
    Term.(const run $ scale_arg $ collections_arg $ k_arg $ queries_arg $ audit_arg $ json_arg)

(* --- plan --------------------------------------------------------- *)

let plan_cmd =
  let collections_arg =
    let doc = "Collections to measure (default: all four)." in
    Arg.(value & pos_all string [] & info [] ~docv:"COLLECTION" ~doc)
  in
  let k_arg =
    let doc = "Result-list depth." in
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc)
  in
  let queries_arg =
    let doc = "Evaluate only the first N queries of each set." in
    Arg.(value & opt (some int) None & info [ "queries" ] ~docv:"N" ~doc)
  in
  let audit_arg =
    let doc =
      "Audit every run — auto and both forced plans — against the \
       exhaustive evaluator and fail unless each ranking is bit-identical."
    in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the per-class numbers as JSON to FILE." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let class_of q =
    match q with
    | Inquery.Query.And _ -> "conjunctive"
    | Inquery.Query.Phrase _ -> "phrase"
    | Inquery.Query.Od _ | Inquery.Query.Uw _ -> "window"
    | _ -> (
      match Inquery.Planner.shape_of q with
      | Inquery.Planner.Flat -> "flat"
      | _ -> "other")
  in
  let classes = [ "flat"; "conjunctive"; "phrase"; "window"; "other" ] in
  let run scale names k n_queries audit json_file =
    if k <= 0 then begin
      Printf.eprintf "plan: --k must be positive\n";
      exit 2
    end;
    let names =
      match names with [] -> [ "cacm"; "legal"; "tipster1"; "tipster" ] | ns -> ns
    in
    let rows =
      List.map
        (fun name ->
          let model = Collections.Presets.find ~scale name in
          let prepared = Core.Experiment.prepare ~progress model in
          let spec = Collections.Presets.planner_queries model in
          let queries = Collections.Querygen.generate model spec in
          let queries =
            match n_queries with
            | None -> queries
            | Some n -> List.filteri (fun i _ -> i < n) queries
          in
          let qclasses = List.map (fun q -> class_of (Inquery.Query.parse_exn q)) queries in
          (* One engine session per mode so buffer state cannot leak
             between the baseline and the measured runs. *)
          let run_mode choice =
            let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
            List.map
              (fun q ->
                match Core.Engine.run_topk_string ~audit ~plan:choice ~k engine q with
                | r -> r
                | exception Inquery.Infnet.Audit_mismatch msg ->
                  Printf.eprintf "plan: AUDIT FAILED on %s: %s\n  query: %s\n" name msg q;
                  exit 1)
              queries
          in
          let ex = run_mode (Inquery.Planner.Forced Inquery.Planner.Exhaustive) in
          let ms = run_mode (Inquery.Planner.Forced Inquery.Planner.Maxscore) in
          let it = run_mode (Inquery.Planner.Forced Inquery.Planner.Intersect) in
          let auto = run_mode Inquery.Planner.Auto in
          (* Per-class aggregation.  The shape-dispatch baseline is the
             pre-planner policy: flat shapes take max-score, everything
             else runs exhaustive. *)
          let per_class =
            List.map
              (fun cls ->
                let sum field rs =
                  List.fold_left2
                    (fun acc c r -> if String.equal c cls then acc + field r else acc)
                    0 qclasses rs
                in
                let count = List.length (List.filter (String.equal cls) qclasses) in
                let bytes r = r.Core.Engine.topk_bytes_read in
                let shape_bytes =
                  List.fold_left2
                    (fun acc c (r_ms, r_ex) ->
                      if not (String.equal c cls) then acc
                      else if String.equal cls "flat" then acc + bytes r_ms
                      else acc + bytes r_ex)
                    0 qclasses (List.combine ms ex)
                in
                let plan_count p =
                  List.fold_left2
                    (fun acc c r ->
                      if String.equal c cls && r.Core.Engine.topk_plan = p then acc + 1
                      else acc)
                    0 qclasses auto
                in
                ( cls,
                  count,
                  (sum bytes ex, sum bytes ms, sum bytes it),
                  shape_bytes,
                  sum bytes auto,
                  sum (fun r -> r.Core.Engine.topk_est_bytes) auto,
                  ( plan_count Inquery.Planner.Maxscore,
                    plan_count Inquery.Planner.Intersect,
                    plan_count Inquery.Planner.Exhaustive ) ))
              classes
            |> List.filter (fun (_, count, _, _, _, _, _) -> count > 0)
          in
          (name, List.length queries, per_class))
        names
    in
    Printf.printf "%-10s %-12s %7s %12s %12s %12s %7s %12s %14s\n" "collection" "class"
      "queries" "exhaustive" "shape" "auto" "ratio" "auto est" "plans m/i/e";
    List.iter
      (fun (name, _, per_class) ->
        List.iteri
          (fun i (cls, count, (ex_b, _, _), shape_b, auto_b, est_b, (pm, pi, pe)) ->
            let ratio =
              if auto_b > 0 then float_of_int shape_b /. float_of_int auto_b else infinity
            in
            Printf.printf "%-10s %-12s %7d %12d %12d %12d %6.2fx %12d %8d/%d/%d\n"
              (if i = 0 then name else "")
              cls count ex_b shape_b auto_b ratio est_b pm pi pe)
          per_class)
      rows;
    if audit then
      Printf.printf "audit: every plan's ranking matched the exhaustive one bit-for-bit\n";
    match json_file with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      let class_json (cls, count, (ex_b, ms_b, it_b), shape_b, auto_b, est_b, (pm, pi, pe)) =
        let ratio =
          if auto_b > 0 then float_of_int shape_b /. float_of_int auto_b else 0.0
        in
        Printf.sprintf
          "      { \"class\": %S, \"queries\": %d,\n\
          \        \"bytes\": { \"exhaustive\": %d, \"maxscore\": %d, \"intersect\": %d,\n\
          \                   \"shape_dispatch\": %d, \"auto\": %d },\n\
          \        \"ratio_shape_over_auto\": %.4f, \"auto_est_bytes\": %d,\n\
          \        \"auto_plans\": { \"maxscore\": %d, \"intersect\": %d, \"exhaustive\": %d } }"
          cls count ex_b ms_b it_b shape_b auto_b ratio est_b pm pi pe
      in
      let row_json (name, nq, per_class) =
        Printf.sprintf
          "  { \"collection\": %S, \"queries\": %d, \"k\": %d, \"audited\": %b,\n\
          \    \"classes\": [\n%s\n    ] }"
          name nq k audit
          (String.concat ",\n" (List.map class_json per_class))
      in
      Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (List.map row_json rows));
      close_out oc;
      Printf.printf "wrote %s\n" file
  in
  let doc =
    "Measure the cost-based query planner on the mixed-workload sets: \
     per-class record bytes decoded under the exhaustive baseline, the \
     old shape-based dispatch, and the planner's auto choice, with the \
     planner's own byte estimates alongside and an optional bit-identity \
     audit of every plan."
  in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(const run $ scale_arg $ collections_arg $ k_arg $ queries_arg $ audit_arg $ json_arg)

(* --- cache -------------------------------------------------------- *)

let cache_cmd =
  let collections_arg =
    let doc = "Collections to measure (default: all four)." in
    Arg.(value & pos_all string [] & info [] ~docv:"COLLECTION" ~doc)
  in
  let k_arg =
    let doc = "Ranked documents per query." in
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc)
  in
  let queries_arg =
    let doc = "Evaluate only the first N queries of each set." in
    Arg.(value & opt (some int) None & info [ "queries" ] ~docv:"N" ~doc)
  in
  let passes_arg =
    let doc =
      "Replays of the query set (the reuse the result cache exists for); \
       every pass after the first should serve from the result cache."
    in
    Arg.(value & opt int 3 & info [ "passes" ] ~docv:"N" ~doc)
  in
  let audit_arg =
    let doc =
      "Re-run every query with both caches disabled and fail unless the \
       rankings are bit-identical, then run the churn torture: random \
       add/delete mutations with pinned epochs read back through the \
       caches."
    in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let json_arg =
    let doc = "Write the per-collection numbers as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let fingerprint ranked =
    List.map
      (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score))
      ranked
  in
  let run scale names k n_queries passes audit json_file =
    if k <= 0 || passes <= 0 then begin
      Printf.eprintf "cache: --k and --passes must be positive\n";
      exit 2
    end;
    let names =
      match names with [] -> [ "cacm"; "legal"; "tipster1"; "tipster" ] | ns -> ns
    in
    let rows =
      List.map
        (fun name ->
          let model = Collections.Presets.find ~scale name in
          let prepared = Core.Experiment.prepare ~progress model in
          let spec = Collections.Presets.topk_queries model in
          let queries = Collections.Querygen.generate model spec in
          let queries =
            match n_queries with
            | None -> queries
            | Some n -> List.filteri (fun i _ -> i < n) queries
          in
          (* One frontend per configuration so neither cache state nor
             buffer state leaks between the cached run and the
             caches-off baseline.  The OS cache is purged before every
             pass in both runs, so bytes read measure what each
             configuration must physically fetch. *)
          let measure ~result_bytes ~block_bytes =
            let fe =
              Core.Frontend.of_prepared prepared ~names:[ "a" ]
                ~result_cache_bytes:result_bytes ~block_cache_bytes:block_bytes
            in
            let vfs = Core.Frontend.replica_vfs fe ~name:"a" in
            let c0 = Vfs.counters vfs in
            let decoded = ref 0 and result_hits = ref 0 in
            let rankings = ref [] in
            for _pass = 1 to passes do
              Vfs.purge_os_cache vfs;
              List.iter
                (fun q ->
                  let r = Core.Frontend.run_query_string ~top_k:k fe q in
                  decoded := !decoded + r.Core.Frontend.postings_decoded;
                  if r.Core.Frontend.cached then incr result_hits;
                  rankings := fingerprint r.Core.Frontend.ranked :: !rankings)
                queries
            done;
            let c1 = Vfs.diff_counters ~later:(Vfs.counters vfs) ~earlier:c0 in
            (fe, List.rev !rankings, !decoded, !result_hits, c1.Vfs.bytes_read)
          in
          let fe, cached_rankings, dec_on, result_hits, bytes_on =
            measure ~result_bytes:(4 * 1024 * 1024) ~block_bytes:(8 * 1024 * 1024)
          in
          let _, plain_rankings, dec_off, _, bytes_off =
            measure ~result_bytes:0 ~block_bytes:0
          in
          if audit then
            List.iteri
              (fun i (a, b) ->
                if a <> b then begin
                  Printf.eprintf
                    "cache: AUDIT FAILED on %s: query %d of pass %d ranks differently \
                     with caches on\n"
                    name (i mod List.length queries) (1 + (i / List.length queries));
                  exit 1
                end)
              (List.combine cached_rankings plain_rankings);
          let tiers = Core.Frontend.cache_tiers fe in
          (name, List.length queries, result_hits, tiers, dec_on, dec_off, bytes_on, bytes_off))
        names
    in
    (* Table-6-style tier hit-rate table: the buffer pool was the
       paper's only tier; the result and block caches sit above it. *)
    Printf.printf "%-10s %-8s %10s %10s %8s\n" "collection" "tier" "refs" "hits" "rate";
    List.iter
      (fun (name, _, _, tiers, _, _, _, _) ->
        List.iteri
          (fun i (tier, s) ->
            Printf.printf "%-10s %-8s %10d %10d %7.1f%%\n"
              (if i = 0 then name else "")
              tier s.Util.Cache_stats.refs s.Util.Cache_stats.hits
              (100.0 *. Util.Cache_stats.hit_rate s))
          tiers)
      rows;
    Printf.printf "\n%-10s %8s %7s %12s %12s %7s %12s %12s %7s\n" "collection" "queries"
      "rhits" "decoded:off" "decoded:on" "ratio" "bytes:off" "bytes:on" "ratio";
    List.iter
      (fun (name, nq, rhits, _, dec_on, dec_off, bytes_on, bytes_off) ->
        let ratio a b = float_of_int a /. float_of_int (max 1 b) in
        Printf.printf "%-10s %4dx%-3d %7d %12d %12d %6.2fx %12d %12d %6.2fx\n" name nq passes
          rhits dec_off dec_on (ratio dec_off dec_on) bytes_off bytes_on
          (ratio bytes_off bytes_on))
      rows;
    let churn =
      if audit then begin
        let o = Core.Torture.run_cache () in
        Format.printf "%a@." Core.Torture.pp_cache_outcome o;
        if not (Core.Torture.cache_ok o) then begin
          Printf.eprintf "cache: churn torture found coherence problems\n";
          exit 1
        end;
        Printf.printf
          "audit: rankings bit-identical with caches off on %d collection(s); churn leg \
           clean\n"
          (List.length rows);
        Some o
      end
      else None
    in
    (match json_file with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      let tier_json (tier, s) =
        Printf.sprintf
          "      { \"tier\": %S, \"refs\": %d, \"hits\": %d, \"evictions\": %d, \
           \"invalidations\": %d, \"resident_bytes\": %d, \"resident_entries\": %d }"
          tier s.Util.Cache_stats.refs s.Util.Cache_stats.hits s.Util.Cache_stats.evictions
          s.Util.Cache_stats.invalidations s.Util.Cache_stats.resident_bytes
          s.Util.Cache_stats.resident_entries
      in
      let row_json (name, nq, rhits, tiers, dec_on, dec_off, bytes_on, bytes_off) =
        Printf.sprintf
          "  { \"collection\": %S, \"queries\": %d, \"passes\": %d, \"k\": %d,\n\
          \    \"result_cache_hits\": %d,\n\
          \    \"postings_decoded\": { \"caches_off\": %d, \"caches_on\": %d },\n\
          \    \"bytes_read\": { \"caches_off\": %d, \"caches_on\": %d },\n\
          \    \"tiers\": [\n%s\n    ],\n\
          \    \"audited\": %b }"
          name nq passes k rhits dec_off dec_on bytes_off bytes_on
          (String.concat ",\n" (List.map tier_json tiers))
          audit
      in
      let churn_json =
        match churn with
        | None -> ""
        | Some o ->
          Printf.sprintf
            ",\n\
            \  \"churn_audit\": { \"mutations\": %d, \"comparisons\": %d, \
             \"result_hits\": %d, \"block_hits\": %d, \"invalidations\": %d, \
             \"problems\": %d }"
            o.Core.Torture.ct_mutations o.Core.Torture.ct_comparisons
            o.Core.Torture.ct_result_hits o.Core.Torture.ct_block_hits
            o.Core.Torture.ct_invalidations
            (List.length o.Core.Torture.ct_problems)
      in
      Printf.fprintf oc "{ \"collections\": [\n%s\n]%s\n}\n"
        (String.concat ",\n" (List.map row_json rows))
        churn_json;
      close_out oc;
      Printf.printf "wrote %s\n" file)
  in
  let doc =
    "Measure the tiered read-path caches on reuse-heavy query replays: \
     per-tier (result / block / buffer) hit rates in the style of the \
     paper's Table 6, plus postings-decoded and bytes-read deltas \
     against a caches-off baseline, with an optional bit-identity audit \
     and churn torture."
  in
  Cmd.v (Cmd.info "cache" ~doc)
    Term.(const run $ scale_arg $ collections_arg $ k_arg $ queries_arg $ passes_arg
          $ audit_arg $ json_arg)

(* --- parallel ----------------------------------------------------- *)

let parallel_cmd =
  let collections_arg =
    let doc = "Collections to measure (default: all four)." in
    Arg.(value & pos_all string [] & info [] ~docv:"COLLECTION" ~doc)
  in
  let domains_arg =
    let doc = "Domain counts to sweep (repeatable; default 1, 2, 4, 8)." in
    Arg.(value & opt_all int [] & info [ "domains"; "d" ] ~docv:"N" ~doc)
  in
  let queries_arg =
    let doc = "Serve only the first N queries of each set." in
    Arg.(value & opt (some int) None & info [ "queries" ] ~docv:"N" ~doc)
  in
  let audit_arg =
    let doc =
      "After each parallel run, re-run the set serially and fail unless \
       every ranking is bit-identical (documents and beliefs)."
    in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the scaling numbers as JSON to FILE." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run scale names domains n_queries audit json_file =
    let domains = match domains with [] -> [ 1; 2; 4; 8 ] | ds -> ds in
    if List.exists (fun d -> d <= 0) domains then begin
      Printf.eprintf "parallel: every --domains must be positive\n";
      exit 2
    end;
    let names =
      match names with [] -> [ "cacm"; "legal"; "tipster1"; "tipster" ] | ns -> ns
    in
    let results =
      List.map
        (fun name ->
          let model = Collections.Presets.find ~scale name in
          let prepared = Core.Experiment.prepare ~progress model in
          let _, spec = List.hd (Collections.Presets.query_sets model) in
          let queries = Collections.Querygen.generate model spec in
          let queries =
            match n_queries with
            | None -> queries
            | Some n -> List.filteri (fun i _ -> i < n) queries
          in
          let reports =
            List.map
              (fun d ->
                match
                  Core.Parallel.run_query_set ~domains:d ~audit prepared
                    Core.Experiment.Mneme_cache ~queries
                with
                | r -> r
                | exception Core.Parallel.Audit_mismatch msg ->
                  Printf.eprintf "parallel: AUDIT FAILED on %s at %d domains: %s\n" name d msg;
                  exit 1)
              domains
          in
          (name, List.length queries, reports))
        names
    in
    Printf.printf "%-10s %8s %8s %12s %12s %9s %7s %10s\n" "collection" "queries" "domains"
      "serial ms" "makespan ms" "speedup" "steals" "real ms";
    List.iter
      (fun (name, nq, reports) ->
        let base =
          match reports with r :: _ -> r.Core.Parallel.sim_makespan_ms | [] -> 0.0
        in
        List.iter
          (fun (r : Core.Parallel.report) ->
            let speedup =
              if r.Core.Parallel.sim_makespan_ms > 0.0 then
                base /. r.Core.Parallel.sim_makespan_ms
              else 0.0
            in
            Printf.printf "%-10s %8d %8d %12.1f %12.1f %8.2fx %7d %10.1f\n" name nq
              r.Core.Parallel.domains r.Core.Parallel.sim_serial_ms
              r.Core.Parallel.sim_makespan_ms speedup r.Core.Parallel.steals
              r.Core.Parallel.real_elapsed_ms)
          reports)
      results;
    if audit then
      Printf.printf "audit: every parallel ranking matched the serial run bit-for-bit\n";
    match json_file with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      let row_json name nq base (r : Core.Parallel.report) =
        let speedup =
          if r.Core.Parallel.sim_makespan_ms > 0.0 then base /. r.Core.Parallel.sim_makespan_ms
          else 0.0
        in
        Printf.sprintf
          "  { \"collection\": %S, \"queries\": %d, \"domains\": %d,\n\
          \    \"sim_serial_ms\": %.3f, \"sim_makespan_ms\": %.3f, \"speedup\": %.3f,\n\
          \    \"steals\": %d, \"real_elapsed_ms\": %.3f, \"audited\": %b }"
          name nq r.Core.Parallel.domains r.Core.Parallel.sim_serial_ms
          r.Core.Parallel.sim_makespan_ms speedup r.Core.Parallel.steals
          r.Core.Parallel.real_elapsed_ms r.Core.Parallel.audited
      in
      let rows =
        List.concat_map
          (fun (name, nq, reports) ->
            let base =
              match reports with r :: _ -> r.Core.Parallel.sim_makespan_ms | [] -> 0.0
            in
            List.map (row_json name nq base) reports)
          results
      in
      Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" rows);
      close_out oc;
      Printf.printf "wrote %s\n" file
  in
  let doc =
    "Serve each collection's query set across 1/2/4/8 OCaml domains — \
     one session (private buffers, file copy, clock) per domain, \
     work-stealing distribution — and report the simulated-time scaling \
     table; --audit verifies bit-identical rankings against a serial run."
  in
  Cmd.v (Cmd.info "parallel" ~doc)
    Term.(const run $ scale_arg $ collections_arg $ domains_arg $ queries_arg $ audit_arg
          $ json_arg)

(* --- torture ------------------------------------------------------ *)

let torture_cmd =
  let seed_arg =
    let doc = "PRNG seed for the workload." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let docs_arg =
    let doc = "Objects allocated by the build transaction." in
    Arg.(value & opt int 12 & info [ "docs" ] ~docv:"N" ~doc)
  in
  let batches_arg =
    let doc = "Update transactions after the build." in
    Arg.(value & opt int 3 & info [ "batches" ] ~docv:"N" ~doc)
  in
  let run seed docs update_batches =
    if docs < 0 || update_batches < 0 then begin
      Printf.eprintf "torture: --docs and --batches must be non-negative\n";
      exit 2
    end;
    let outcome = Core.Torture.run ~seed ~docs ~update_batches () in
    Format.printf "%a@." Core.Torture.pp_outcome outcome;
    if outcome.Core.Torture.problems <> [] then exit 1
  in
  let doc =
    "Crash the journaled store at every physical I/O of an \
     index-build-and-update workload and audit each recovery."
  in
  Cmd.v (Cmd.info "torture" ~doc) Term.(const run $ seed_arg $ docs_arg $ batches_arg)

(* --- failover ----------------------------------------------------- *)

let failover_cmd =
  let seed_arg =
    let doc = "PRNG seed for the workload." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let docs_arg =
    let doc = "Documents indexed by the workload." in
    Arg.(value & opt int 12 & info [ "docs" ] ~docv:"N" ~doc)
  in
  let batches_arg =
    let doc = "Commit batches the build is split into." in
    Arg.(value & opt int 3 & info [ "batches" ] ~docv:"N" ~doc)
  in
  let standbys_arg =
    let doc = "Standby replicas shipping the primary's journal." in
    Arg.(value & opt int 2 & info [ "standbys" ] ~docv:"N" ~doc)
  in
  let run seed docs batches standbys =
    if docs <= 0 || batches <= 0 || standbys <= 0 then begin
      Printf.eprintf "failover: --docs, --batches and --standbys must be positive\n";
      exit 2
    end;
    let outcome = Core.Torture.run_failover ~seed ~docs ~batches ~standbys () in
    Format.printf "%a@." Core.Torture.pp_failover_outcome outcome;
    if outcome.Core.Torture.problems <> [] then exit 1
  in
  let doc =
    "Kill the primary of a journal-shipping replica group at every \
     physical I/O, promote the best standby, and audit that it serves \
     the committed prefix byte-identically."
  in
  Cmd.v (Cmd.info "failover" ~doc)
    Term.(const run $ seed_arg $ docs_arg $ batches_arg $ standbys_arg)

(* --- epoch -------------------------------------------------------- *)

let epoch_cmd =
  let seed_arg =
    let doc = "PRNG seed for the workload." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let docs_arg =
    let doc = "Documents the live-index workload indexes (deletions are interleaved)." in
    Arg.(value & opt int 8 & info [ "docs" ] ~docv:"N" ~doc)
  in
  let audit_arg =
    let doc =
      "Crash the workload at every physical I/O, recover each image, and audit that the \
       surviving root is wholly old or wholly new, fsck-clean, and gc-drainable."
    in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let json_arg =
    let doc = "Write the outcome as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run seed docs audit json_file =
    if docs <= 0 then begin
      Printf.eprintf "epoch: --docs must be positive\n";
      exit 2
    end;
    let plan = Core.Torture.prepare_epoch ~seed ~docs () in
    let table = Core.Torture.epoch_table plan in
    Printf.printf "golden run: %d epochs published over %d documents, %d crash points\n"
      (Core.Torture.epoch_mutations plan)
      docs
      (Core.Torture.epoch_points plan);
    Printf.printf "%8s %10s %10s\n" "epoch" "documents" "terms";
    List.iter (fun (e, d, t) -> Printf.printf "%8d %10d %10d\n" e d t) table;
    let golden_problems = Core.Torture.epoch_golden_problems plan in
    List.iter (fun p -> Printf.printf "golden run problem: %s\n" p) golden_problems;
    let outcome = if audit then Some (Core.Torture.run_epoch ~seed ~docs ()) else None in
    (match outcome with
    | Some o -> Format.printf "%a@." Core.Torture.pp_epoch_outcome o
    | None -> ());
    (match json_file with
    | None -> ()
    | Some f ->
      let oc = open_out f in
      let table_json =
        String.concat ",\n"
          (List.map
             (fun (e, d, t) ->
               Printf.sprintf "    {\"epoch\": %d, \"documents\": %d, \"terms\": %d}" e d t)
             table)
      in
      let audit_json =
        match outcome with
        | None -> ""
        | Some o ->
          let problems_json =
            String.concat ",\n"
              (List.map
                 (fun (k, p) ->
                   Printf.sprintf "      {\"crash_at\": %d, \"problem\": %S}" k p)
                 o.Core.Torture.e_problems)
          in
          Printf.sprintf
            ",\n\
            \  \"audit\": {\n\
            \    \"points\": %d,\n\
            \    \"opened\": %d,\n\
            \    \"unopenable\": %d,\n\
            \    \"wholly_old\": %d,\n\
            \    \"wholly_new\": %d,\n\
            \    \"replayed\": %d,\n\
            \    \"discarded\": %d,\n\
            \    \"clean\": %d,\n\
            \    \"gc_reclaimed_objects\": %d,\n\
            \    \"problems\": [\n%s\n    ]\n\
            \  }"
            o.Core.Torture.e_points o.Core.Torture.e_opened o.Core.Torture.e_unopenable
            o.Core.Torture.e_wholly_old o.Core.Torture.e_wholly_new o.Core.Torture.e_replayed
            o.Core.Torture.e_discarded o.Core.Torture.e_clean o.Core.Torture.e_reclaimed
            problems_json
      in
      Printf.fprintf oc
        "{\n\
        \  \"seed\": %d,\n\
        \  \"docs\": %d,\n\
        \  \"mutations\": %d,\n\
        \  \"crash_points\": %d,\n\
        \  \"epochs\": [\n%s\n  ]%s\n\
         }\n"
        seed docs
        (Core.Torture.epoch_mutations plan)
        (Core.Torture.epoch_points plan)
        table_json audit_json;
      close_out oc);
    let problems =
      golden_problems <> []
      || match outcome with Some o -> o.Core.Torture.e_problems <> [] | None -> false
    in
    if problems then exit 1
  in
  let doc =
    "Publish epochs through a journaled live index (snapshot-isolated COW mutation) and, with \
     $(b,--audit), crash at every physical I/O proving torn-read-proof recovery and \
     pinned-epoch gc safety."
  in
  Cmd.v (Cmd.info "epoch" ~doc) Term.(const run $ seed_arg $ docs_arg $ audit_arg $ json_arg)

(* --- ingest ------------------------------------------------------- *)

let ingest_cmd =
  let seed_arg =
    let doc = "PRNG seed for the workload." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let docs_arg =
    let doc = "Documents the ingest workload adds (deletions and merges are interleaved)." in
    Arg.(value & opt int 8 & info [ "docs" ] ~docv:"N" ~doc)
  in
  let audit_arg =
    let doc =
      "Crash the workload at every physical I/O, recover each image with WAL replay, and \
       audit exactly-once durability: every acknowledged document present exactly once, \
       rankings byte-identical to the golden run at the recovered frontier, and the merge \
       resuming to a clean drain."
    in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let json_arg =
    let doc = "Write the outcome as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run seed docs audit json_file =
    if docs <= 0 then begin
      Printf.eprintf "ingest: --docs must be positive\n";
      exit 2
    end;
    let plan = Core.Torture.prepare_ingest ~seed ~docs () in
    let table = Core.Torture.ingest_table plan in
    Printf.printf "golden run: %d operations over %d documents, %d crash points\n"
      (Core.Torture.ingest_ops plan)
      docs
      (Core.Torture.ingest_points plan);
    Printf.printf "%8s %10s %8s %10s\n" "op" "acked_seq" "folds" "documents";
    List.iter (fun (o, s, f, d) -> Printf.printf "%8d %10d %8d %10d\n" o s f d) table;
    let golden_problems = Core.Torture.ingest_golden_problems plan in
    List.iter (fun p -> Printf.printf "golden run problem: %s\n" p) golden_problems;
    let outcome = if audit then Some (Core.Torture.run_ingest ~seed ~docs ()) else None in
    (match outcome with
    | Some o -> Format.printf "%a@." Core.Torture.pp_ingest_outcome o
    | None -> ());
    (match json_file with
    | None -> ()
    | Some f ->
      let oc = open_out f in
      let table_json =
        String.concat ",\n"
          (List.map
             (fun (o, s, fo, d) ->
               Printf.sprintf
                 "    {\"op\": %d, \"acked_seq\": %d, \"folds\": %d, \"documents\": %d}" o s fo d)
             table)
      in
      let audit_json =
        match outcome with
        | None -> ""
        | Some o ->
          let problems_json =
            String.concat ",\n"
              (List.map
                 (fun (k, p) ->
                   Printf.sprintf "      {\"crash_at\": %d, \"problem\": %S}" k p)
                 o.Core.Torture.i_problems)
          in
          Printf.sprintf
            ",\n\
            \  \"audit\": {\n\
            \    \"points\": %d,\n\
            \    \"acked_ops\": %d,\n\
            \    \"folds\": %d,\n\
            \    \"opened\": %d,\n\
            \    \"unopenable\": %d,\n\
            \    \"wholly_old\": %d,\n\
            \    \"wholly_new\": %d,\n\
            \    \"replayed\": %d,\n\
            \    \"discarded\": %d,\n\
            \    \"clean\": %d,\n\
            \    \"wal_redelivered\": %d,\n\
            \    \"gc_reclaimed_objects\": %d,\n\
            \    \"problems\": [\n%s\n    ]\n\
            \  }"
            o.Core.Torture.i_points o.Core.Torture.i_acked o.Core.Torture.i_folds
            o.Core.Torture.i_opened o.Core.Torture.i_unopenable o.Core.Torture.i_wholly_old
            o.Core.Torture.i_wholly_new o.Core.Torture.i_replayed o.Core.Torture.i_discarded
            o.Core.Torture.i_clean o.Core.Torture.i_redelivered o.Core.Torture.i_reclaimed
            problems_json
      in
      Printf.fprintf oc
        "{\n\
        \  \"seed\": %d,\n\
        \  \"docs\": %d,\n\
        \  \"operations\": %d,\n\
        \  \"crash_points\": %d,\n\
        \  \"timeline\": [\n%s\n  ]%s\n\
         }\n"
        seed docs
        (Core.Torture.ingest_ops plan)
        (Core.Torture.ingest_points plan)
        table_json audit_json;
      close_out oc);
    let problems =
      golden_problems <> []
      || match outcome with Some o -> o.Core.Torture.i_problems <> [] | None -> false
    in
    if problems then exit 1
  in
  let doc =
    "Ingest documents online through the WAL-backed write buffer and budgeted merge and, \
     with $(b,--audit), crash at every physical I/O proving exactly-once document \
     durability: no acknowledged document lost or duplicated, rankings byte-identical at \
     the recovered frontier, merge resumed to a clean drain."
  in
  Cmd.v (Cmd.info "ingest" ~doc) Term.(const run $ seed_arg $ docs_arg $ audit_arg $ json_arg)

(* --- scrub -------------------------------------------------------- *)

let scrub_cmd =
  let seed_arg =
    let doc = "PRNG seed for the workload." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let docs_arg =
    let doc = "Documents indexed by the workload." in
    Arg.(value & opt int 12 & info [ "docs" ] ~docv:"N" ~doc)
  in
  let batches_arg =
    let doc = "Commit batches the build is split into." in
    Arg.(value & opt int 3 & info [ "batches" ] ~docv:"N" ~doc)
  in
  let standbys_arg =
    let doc = "Standby replicas shipping the primary's journal." in
    Arg.(value & opt int 2 & info [ "standbys" ] ~docv:"N" ~doc)
  in
  let bits_arg =
    let doc = "Distinct bits flipped inside each rotted segment." in
    Arg.(value & opt int 1 & info [ "bits" ] ~docv:"N" ~doc)
  in
  let no_crash_arg =
    let doc = "Skip the crash-during-repair enumeration (faster)." in
    Arg.(value & flag & info [ "no-crash-sweep" ] ~doc)
  in
  let budgets_arg =
    let doc =
      "Instead of the sweep, run the scrub-tax experiment: detect and \
       heal one rotted segment under each per-step byte BUDGET \
       (repeatable), reporting detection latency against foreground \
       query slowdown."
    in
    Arg.(value & opt_all int [] & info [ "budget" ] ~docv:"BUDGET" ~doc)
  in
  let run seed docs batches standbys bits no_crash budgets =
    if docs <= 0 || batches <= 0 || standbys <= 0 || bits <= 0 then begin
      Printf.eprintf "scrub: --docs, --batches, --standbys and --bits must be positive\n";
      exit 2
    end;
    if List.exists (fun b -> b <= 0) budgets then begin
      Printf.eprintf "scrub: every --budget must be positive\n";
      exit 2
    end;
    match budgets with
    | _ :: _ ->
      let rows = Core.Torture.scrub_budget_sweep ~seed ~docs ~batches ~standbys ~budgets () in
      Printf.printf "%10s %6s %10s %10s %10s %10s\n" "budget B" "steps" "detect ms" "stall ms"
        "heal ms" "query ms";
      List.iter
        (fun r ->
          Printf.printf "%10d %6d %10.2f %10.2f %10.2f %10.2f\n" r.Core.Torture.sw_budget
            r.Core.Torture.sw_steps r.Core.Torture.sw_detect_ms r.Core.Torture.sw_stall_ms
            r.Core.Torture.sw_heal_ms r.Core.Torture.sw_query_ms)
        rows
    | [] ->
      let outcome =
        Core.Torture.run_scrub ~seed ~docs ~batches ~standbys ~bits
          ~crash_sweep:(not no_crash) ()
      in
      Format.printf "%a@." Core.Torture.pp_scrub_outcome outcome;
      if not (Core.Torture.scrub_ok outcome) then exit 1
  in
  let doc =
    "Flip bits in every physical segment of a replicated store, one \
     member at a time, and audit that budgeted scrubbing plus replica \
     read-repair converges the group back to byte-identical, \
     query-identical stores — including when the repair itself is \
     crashed at every I/O."
  in
  Cmd.v (Cmd.info "scrub" ~doc)
    Term.(const run $ seed_arg $ docs_arg $ batches_arg $ standbys_arg $ bits_arg
          $ no_crash_arg $ budgets_arg)

(* --- frontend ----------------------------------------------------- *)

let frontend_cmd =
  let query_arg =
    let doc = "Query in INQUERY syntax, e.g. '#sum( ba be bi )'." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let replicas_arg =
    let doc = "Number of replicas in the group." in
    Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Per-query deadline in simulated milliseconds." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let degrade_arg =
    let doc =
      "Make one replica's device sick: NAME:MS inflates every physical \
       I/O on replica NAME by MS simulated milliseconds (repeatable)."
    in
    Arg.(value & opt_all string [] & info [ "degrade" ] ~docv:"NAME:MS" ~doc)
  in
  let top_arg =
    let doc = "Number of ranked documents to print." in
    Arg.(value & opt int 10 & info [ "top"; "k" ] ~docv:"K" ~doc)
  in
  let run scale name query replicas deadline degrade top_k =
    if replicas <= 0 then begin
      Printf.eprintf "frontend: --replicas must be positive\n";
      exit 2
    end;
    let model = Collections.Presets.find ~scale name in
    let prepared = Core.Experiment.prepare ~progress model in
    let names = List.init replicas (fun i -> Printf.sprintf "r%d" (i + 1)) in
    let fe = Core.Frontend.of_prepared prepared ~names in
    List.iter
      (fun spec ->
        match String.index_opt spec ':' with
        | None ->
          Printf.eprintf "frontend: --degrade expects NAME:MS, got %s\n" spec;
          exit 2
        | Some i -> (
          let rname = String.sub spec 0 i in
          let ms = String.sub spec (i + 1) (String.length spec - i - 1) in
          match (float_of_string_opt ms, List.mem rname names) with
          | Some ms, true when ms >= 0.0 ->
            Vfs.set_fault
              (Core.Frontend.replica_vfs fe ~name:rname)
              (Vfs.Fault.degraded_device ~file:prepared.Core.Experiment.mneme_file ~ms)
          | _ ->
            Printf.eprintf "frontend: bad --degrade %s (unknown replica or bad MS)\n" spec;
            exit 2))
      degrade;
    match Inquery.Query.parse query with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 2
    | Ok q ->
      let r = Core.Frontend.run_query ~top_k ?deadline_ms:deadline fe q in
      Printf.printf "query        %s\n" (Inquery.Query.to_string q);
      Printf.printf "served by    %s\n" r.Core.Frontend.served_by;
      Printf.printf "elapsed      %.2f ms (simulated)\n" r.Core.Frontend.elapsed_ms;
      Printf.printf "degraded     %b%s\n" r.Core.Frontend.degraded
        (if r.Core.Frontend.deadline_hit then " (deadline hit)" else "");
      Printf.printf "hedged       %d fetches\n" r.Core.Frontend.hedged_fetches;
      if r.Core.Frontend.skipped_terms <> [] then
        Printf.printf "skipped      %s\n" (String.concat ", " r.Core.Frontend.skipped_terms);
      List.iter
        (fun (term, reason) -> Printf.printf "failed       %s: %s\n" term reason)
        r.Core.Frontend.failed_terms;
      List.iter
        (fun rname ->
          let state =
            match Core.Frontend.breaker fe ~name:rname with
            | Core.Frontend.Closed -> "closed"
            | Core.Frontend.Open -> "open"
            | Core.Frontend.Half_open -> "half-open"
          in
          Printf.printf "breaker      %s: %s\n" rname state)
        (Core.Frontend.replica_names fe);
      List.iteri
        (fun i rk ->
          Printf.printf "%3d. doc %-8d belief %.4f\n" (i + 1) rk.Inquery.Ranking.doc
            rk.Inquery.Ranking.score)
        r.Core.Frontend.ranked
  in
  let doc =
    "Run one query through the replica frontend: per-replica circuit \
     breakers, hedged reads on stall, and an optional deadline that \
     degrades the result instead of missing it."
  in
  Cmd.v (Cmd.info "frontend" ~doc)
    Term.(const run $ scale_arg $ collection_arg $ query_arg $ replicas_arg $ deadline_arg
          $ degrade_arg $ top_arg)

(* --- shard -------------------------------------------------------- *)

let shard_cmd =
  let collection_arg =
    let doc = "Collection preset: cacm, legal, tipster1 or tipster." in
    Arg.(value & pos 0 string "cacm" & info [] ~docv:"COLLECTION" ~doc)
  in
  let shards_arg =
    let doc = "Shard count to measure (repeatable; default 1, 2, 4, 8)." in
    Arg.(value & opt_all int [] & info [ "shards" ] ~docv:"N" ~doc)
  in
  let replicas_arg =
    let doc = "Replicas per shard." in
    Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let k_arg =
    let doc = "Ranked documents per query." in
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc)
  in
  let queries_arg =
    let doc = "Evaluate only the first N queries of the set." in
    Arg.(value & opt (some int) None & info [ "queries" ] ~docv:"N" ~doc)
  in
  let audit_arg =
    let doc =
      "Run the shard torture: replay the scatter with one member crashed, stalled or \
       bit-flipped at every serving I/O (plus whole-shard blackouts and brownouts) and \
       audit bit-identical full results, exactly-restricted partial results, and the \
       one-fetch deadline overshoot bound."
    in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let json_arg =
    let doc = "Write the scaling table (and audit outcome) as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run scale name shard_counts replicas k n_queries audit json_file =
    if replicas <= 0 || k <= 0 then begin
      Printf.eprintf "shard: --replicas and --k must be positive\n";
      exit 2
    end;
    if List.exists (fun s -> s <= 0) shard_counts then begin
      Printf.eprintf "shard: every --shards must be positive\n";
      exit 2
    end;
    let shard_counts = match shard_counts with [] -> [ 1; 2; 4; 8 ] | l -> l in
    let model = Collections.Presets.find ~scale name in
    let prepared = Core.Experiment.prepare ~progress model in
    let spec = Collections.Presets.topk_queries model in
    let queries = Collections.Querygen.generate model spec in
    let queries =
      match n_queries with
      | None -> queries
      | Some n -> List.filteri (fun i _ -> i < n) queries
    in
    (* The unsharded oracle the merged rankings must reproduce. *)
    let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
    let oracle =
      List.map
        (fun q ->
          List.map
            (fun r -> (r.Inquery.Ranking.doc, r.Inquery.Ranking.score))
            (Core.Engine.run_topk_string ~k engine q).Core.Engine.topk_ranked)
        queries
    in
    let measure ~global_bound shards =
      let coord =
        Core.Shard.create ~shard_replicas:replicas ~global_bound ~shards prepared
      in
      let makespan = ref 0.0 and decoded = ref 0 and per_shard_max = ref 0 and exact = ref true in
      List.iter2
        (fun q gold ->
          match Core.Shard.run_query_string ~top_k:k coord q with
          | Error e ->
            Printf.eprintf "shard: %d-shard query refused: %s\n" shards
              (Core.Shard.error_message e);
            exit 1
          | Ok res ->
            makespan := !makespan +. res.Core.Shard.elapsed_ms;
            List.iter
              (fun (rep : Core.Shard.shard_report) ->
                decoded := !decoded + rep.Core.Shard.r_postings_decoded;
                if rep.Core.Shard.r_postings_decoded > !per_shard_max then
                  per_shard_max := rep.Core.Shard.r_postings_decoded)
              res.Core.Shard.reports;
            let got =
              List.map
                (fun r -> (r.Inquery.Ranking.doc, r.Inquery.Ranking.score))
                res.Core.Shard.ranked
            in
            if (not res.Core.Shard.complete) || got <> gold then exact := false)
        queries oracle;
      (!makespan, !decoded, !per_shard_max, !exact)
    in
    let rows =
      List.filter_map
        (fun shards ->
          if shards > model.Collections.Docmodel.n_docs then begin
            Printf.eprintf "shard: skipping %d shards (> %d documents)\n" shards
              model.Collections.Docmodel.n_docs;
            None
          end
          else begin
            let makespan, decoded, per_shard, exact = measure ~global_bound:true shards in
            let _, decoded_nobound, _, _ = measure ~global_bound:false shards in
            Some (shards, makespan, decoded, per_shard, decoded_nobound, exact)
          end)
        shard_counts
    in
    Printf.printf "%s: %d queries, top-%d, %d replicas per shard\n" name (List.length queries) k
      replicas;
    Printf.printf "%7s %13s %14s %14s %16s %6s\n" "shards" "makespan ms" "decoded(bound)"
      "max per shard" "decoded(nobound)" "exact";
    List.iter
      (fun (s, mk, d, ps, dn, exact) ->
        Printf.printf "%7d %13.2f %14d %14d %16d %6s\n" s mk d ps dn
          (if exact then "yes" else "NO"))
      rows;
    let all_exact = List.for_all (fun (_, _, _, _, _, e) -> e) rows in
    if not all_exact then
      Printf.eprintf "shard: some merged rankings diverged from the unsharded index\n";
    let outcome = if audit then Some (Core.Torture.run_shard ()) else None in
    (match outcome with
    | Some o -> Format.printf "%a@." Core.Torture.pp_shard_outcome o
    | None -> ());
    (match json_file with
    | None -> ()
    | Some f ->
      let oc = open_out f in
      let rows_json =
        String.concat ",\n"
          (List.map
             (fun (s, mk, d, ps, dn, exact) ->
               Printf.sprintf
                 "    {\"shards\": %d, \"makespan_ms\": %.3f, \"postings_decoded\": %d, \
                  \"max_per_shard\": %d, \"postings_decoded_no_bound\": %d, \"exact\": %b}"
                 s mk d ps dn exact)
             rows)
      in
      let audit_json =
        match outcome with
        | None -> ""
        | Some o ->
          let problems_json =
            match o.Core.Torture.st_problems with
            | [] -> "    \"problems\": []"
            | ps ->
              Printf.sprintf "    \"problems\": [\n%s\n    ]"
                (String.concat ",\n"
                   (List.map
                      (fun (r, p) ->
                        Printf.sprintf "      {\"replay\": %d, \"problem\": %S}" r p)
                      ps))
          in
          Printf.sprintf
            ",\n\
            \  \"audit\": {\n\
            \    \"shards\": %d,\n\
            \    \"members\": %d,\n\
            \    \"points\": %d,\n\
            \    \"runs\": %d,\n\
            \    \"full\": %d,\n\
            \    \"partial\": %d,\n\
            \    \"overshoots\": %d,\n\
            \    \"truncations\": %d,\n\
            %s\n\
            \  }"
            o.Core.Torture.st_shards o.Core.Torture.st_members o.Core.Torture.st_points
            o.Core.Torture.st_runs o.Core.Torture.st_full o.Core.Torture.st_partial
            o.Core.Torture.st_overshoots o.Core.Torture.st_truncations problems_json
      in
      Printf.fprintf oc
        "{\n\
        \  \"collection\": %S,\n\
        \  \"scale\": %g,\n\
        \  \"queries\": %d,\n\
        \  \"k\": %d,\n\
        \  \"replicas\": %d,\n\
        \  \"rows\": [\n%s\n  ]%s\n\
         }\n"
        name scale (List.length queries) k replicas rows_json audit_json;
      close_out oc);
    let failed =
      (not all_exact)
      || match outcome with Some o -> not (Core.Torture.shard_ok o) | None -> false
    in
    if failed then exit 1
  in
  let doc =
    "Scatter-gather a query set over doc-partitioned shards (each a replicated store behind \
     its own frontend), measuring makespan and per-shard postings decoded with and without \
     the global top-k bound, and, with $(b,--audit), torture one member at every serving I/O \
     proving partial-result exactness and the deadline overshoot bound."
  in
  Cmd.v (Cmd.info "shard" ~doc)
    Term.(const run $ scale_arg $ collection_arg $ shards_arg $ replicas_arg $ k_arg
          $ queries_arg $ audit_arg $ json_arg)

(* --- query -------------------------------------------------------- *)

let query_cmd =
  let query_arg =
    let doc = "Query in INQUERY syntax, e.g. '#sum( ba #phrase( be bi ) )'." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let top_arg =
    let doc = "Number of ranked documents to print." in
    Arg.(value & opt int 10 & info [ "top"; "k" ] ~docv:"K" ~doc)
  in
  let run scale name query top_k =
    let model = Collections.Presets.find ~scale name in
    let prepared = Core.Experiment.prepare ~progress model in
    let engine = Core.Experiment.open_engine prepared Core.Experiment.Mneme_cache in
    match Inquery.Query.parse query with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 2
    | Ok q ->
      let result = Core.Engine.run_query ~top_k engine q in
      Printf.printf "query: %s\n" (Inquery.Query.to_string q);
      Printf.printf "lookups: %d, postings scored: %d\n" result.Core.Engine.record_lookups
        result.Core.Engine.postings_scored;
      List.iteri
        (fun i r ->
          Printf.printf "%3d. doc %-8d belief %.4f\n" (i + 1) r.Inquery.Ranking.doc
            r.Inquery.Ranking.score)
        result.Core.Engine.ranked
  in
  let doc = "Run one query against a collection (Mneme cache version)." in
  Cmd.v (Cmd.info "query" ~doc) Term.(const run $ scale_arg $ collection_arg $ query_arg $ top_arg)

let () =
  let doc = "Reproduction of Brown et al., 'Supporting Full-Text Information Retrieval with a Persistent Object Store'" in
  (* No ~version here: cmdliner's built-in --version would collide with
     the run subcommand's documented --version flag. *)
  let info = Cmd.info "repro" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ tables_cmd; ablations_cmd; stats_cmd; run_cmd; query_cmd; topk_cmd; plan_cmd;
            parallel_cmd; fsck_cmd; torture_cmd; failover_cmd; scrub_cmd; epoch_cmd; ingest_cmd;
            frontend_cmd; shard_cmd; cache_cmd ]))
