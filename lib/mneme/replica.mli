(** Replica groups: journal shipping from a primary store to standbys.

    The ROADMAP's serving-scale concern: a single Mneme file on a single
    simulated disk cannot survive that disk.  A replica group keeps N
    {e standbys} — each a byte-level copy of the primary's data file on
    its own {!Vfs.t} (its own disk) — caught up by {e journal shipping}:
    every batch the primary's {!Journal} commits is streamed, as the
    sealed CRC32-bearing log image, to each standby, which lands it in
    its own log, fsyncs (the standby's commit point), and replays it
    through the same CRC-verified recovery path a crashed primary would
    use.  A shipped batch that fails its CRC is rejected and the standby
    marked unhealthy — divergence is never applied silently.

    Standbys therefore hold, at every instant, a transaction-consistent
    prefix of the primary's history: exactly the batches whose log fsync
    completed on the primary.  When the primary's device dies
    ({!Vfs.Crash}), {!promote} selects the most-caught-up healthy
    standby; opening its store yields byte-identical contents to a
    non-crashed primary at that standby's applied LSN.  The failover
    torture harness ({!Core.Torture}) proves this at every crash point.

    Shipping is synchronous and deterministic — this is a simulation of
    replication, not a concurrent implementation — which is what lets
    the torture harness enumerate crash points through it. *)

type t

type standby_info = {
  name : string;
  applied_lsn : int;  (** last batch applied (0 = bootstrap image only) *)
  lag : int;  (** primary LSN minus applied LSN *)
  healthy : bool;  (** false once a shipment was rejected *)
  paused : bool;
  reason : string option;  (** why unhealthy, when not *)
}

val attach : Store.t -> standbys:(string * Vfs.t) list -> t
(** [attach store ~standbys] builds a replica group around a store whose
    journal is enabled ([Invalid_argument] otherwise, or if a batch is
    open, or on duplicate standby names).  Each standby is bootstrapped
    with a durable copy of the primary data file's current contents on
    its own file system, then subscribed to the journal's commit
    stream. *)

val primary_lsn : t -> int
(** Batches committed by the primary since [attach]. *)

val info : t -> standby_info list
(** Per-standby status, in attach order. *)

val standby_vfs : t -> name:string -> Vfs.t
(** The standby's file system.  Raises [Not_found]. *)

val pause : t -> name:string -> unit
(** Stop applying shipments to this standby; they accumulate in order
    (the standby lags).  Raises [Not_found]. *)

val resume : t -> name:string -> unit
(** Drain the accumulated shipments in order and continue applying.
    Raises [Not_found]. *)

val corrupt_next_shipment : t -> name:string -> unit
(** Test hook for transit corruption: flip one byte of the next batch
    image delivered to this standby.  The standby's CRC verification
    must reject it.  Raises [Not_found]. *)

val promote : t -> standby_info * Vfs.t
(** The failover decision: the healthy standby with the highest applied
    LSN (ties broken by attach order).  Open the returned file system's
    copy of the data file with {!Store.open_existing} to serve from it.
    Raises [Failure] if no healthy standby exists. *)
