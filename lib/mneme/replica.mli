(** Replica groups: journal shipping from a primary store to standbys.

    The ROADMAP's serving-scale concern: a single Mneme file on a single
    simulated disk cannot survive that disk.  A replica group keeps N
    {e standbys} — each a byte-level copy of the primary's data file on
    its own {!Vfs.t} (its own disk) — caught up by {e journal shipping}:
    every batch the primary's {!Journal} commits is streamed, as the
    sealed CRC32-bearing log image, to each standby, which lands it in
    its own log, fsyncs (the standby's commit point), and replays it
    through the same CRC-verified recovery path a crashed primary would
    use.  A shipped batch that fails its CRC is rejected and the standby
    marked unhealthy — divergence is never applied silently.

    Standbys therefore hold, at every instant, a transaction-consistent
    prefix of the primary's history: exactly the batches whose log fsync
    completed on the primary.  When the primary's device dies
    ({!Vfs.Crash}), {!promote} selects the most-caught-up healthy
    standby; opening its store yields byte-identical contents to a
    non-crashed primary at that standby's applied LSN.  The failover
    torture harness ({!Core.Torture}) proves this at every crash point.

    Shipping is synchronous and deterministic — this is a simulation of
    replication, not a concurrent implementation — which is what lets
    the torture harness enumerate crash points through it. *)

type t

type standby_info = {
  name : string;
  applied_lsn : int;  (** last batch applied (0 = bootstrap image only) *)
  lag : int;  (** primary LSN minus applied LSN *)
  healthy : bool;  (** false once a shipment was rejected *)
  paused : bool;
  reason : string option;
      (** [Some _] exactly when not [healthy]: internally a standby's
          health is one status field ([Healthy | Unhealthy of reason]),
          so an unhealthy standby can never lack its reason. *)
}

val attach : Store.t -> standbys:(string * Vfs.t) list -> t
(** [attach store ~standbys] builds a replica group around a store whose
    journal is enabled ([Invalid_argument] otherwise, or if a batch is
    open, or on duplicate standby names).  Each standby is bootstrapped
    with a durable copy of the primary data file's current contents on
    its own file system, then subscribed to the journal's commit
    stream. *)

val primary_lsn : t -> int
(** Batches committed by the primary since [attach]. *)

val info : t -> standby_info list
(** Per-standby status, in attach order. *)

val standby_vfs : t -> name:string -> Vfs.t
(** The standby's file system.  Raises [Not_found]. *)

val pause : t -> name:string -> unit
(** Stop applying shipments to this standby; they accumulate in order
    (the standby lags).  Raises [Not_found]. *)

val resume : t -> name:string -> unit
(** Drain the accumulated shipments in order and continue applying.
    Raises [Not_found]. *)

val resync : t -> name:string -> unit
(** Re-bootstrap a standby that fell out of the stream (rejected
    shipment, its own device trouble, a long pause): copy the primary
    data file afresh, drop any backlog, clear the unhealthy status and
    rejoin the commit stream at the primary's current LSN.  Raises
    [Not_found] for an unknown name and [Invalid_argument] if a batch
    is open on the primary. *)

val corrupt_next_shipment : t -> name:string -> unit
(** Test hook for transit corruption: flip one byte of the next batch
    image delivered to this standby.  The standby's CRC verification
    must reject it.  Raises [Not_found]. *)

val corrupt_next_transfer : t -> unit
(** Test hook for {!heal_segment} transit corruption: flip one byte of
    the next segment payload fetched from any source.  The transfer's
    CRC envelope must reject it and the heal must fall through to the
    next source. *)

val heal_segment : t -> store:Store.t -> pool:string -> pseg:int -> (string, string) result
(** Close the detect-to-repair loop for one damaged physical segment of
    the group's primary [store].  Sources are tried in order — the
    primary's own file first (heals standby-side rot), then each healthy
    standby (heals primary-side rot): the segment extent is fetched
    under a transit CRC envelope, verified against the segment's
    recorded CRC32 (a mismatched payload is {e never} applied), and
    applied with {!Store.repair_segment} on the primary — a journaled
    rewrite whose commit ships to every healthy standby, so one heal
    converges the whole group (rewriting already-good bytes is
    idempotent).  [Ok source] names the copy used; [Error] when no group
    member holds a verified copy, leaving every file untouched. *)

val promote : t -> standby_info * Vfs.t
(** The failover decision: the healthy standby with the highest applied
    LSN (ties broken by attach order).  Open the returned file system's
    copy of the data file with {!Store.open_existing} to serve from it.
    Raises [Failure] if no healthy standby exists. *)
