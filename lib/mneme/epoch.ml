(* ------------------------------------------------------------------ *)
(* The sealed root envelope                                             *)

let magic = "EPRT"
let max_epoch = 0xffffffff

(* magic (4) | epoch u32 | payload length u32 | payload | CRC32 over
   everything preceding the CRC.  The CRC makes the root switch an
   all-or-nothing record: a torn write fails to unseal and recovery
   falls back to whatever root the header still names. *)

let seal ~epoch payload =
  if epoch < 0 || epoch > max_epoch then
    invalid_arg (Printf.sprintf "Epoch.seal: epoch %d outside u32" epoch);
  let len = Bytes.length payload in
  let out = Bytes.create (16 + len) in
  Bytes.blit_string magic 0 out 0 4;
  Util.Bin.put_u32 out 4 epoch;
  Util.Bin.put_u32 out 8 len;
  Bytes.blit payload 0 out 12 len;
  Util.Bin.put_u32 out (12 + len) (Util.Crc32.digest_sub out ~pos:0 ~len:(12 + len));
  out

let unseal b =
  let n = Bytes.length b in
  if n < 16 then Error (Printf.sprintf "root envelope is %d bytes, minimum 16" n)
  else if Bytes.sub_string b 0 4 <> magic then Error "root envelope has bad magic"
  else begin
    let epoch = Util.Bin.get_u32 b 4 in
    let len = Util.Bin.get_u32 b 8 in
    if 16 + len <> n then
      Error (Printf.sprintf "root envelope declares %d payload bytes in a %d-byte object" len n)
    else if Util.Bin.get_u32 b (12 + len) <> Util.Crc32.digest_sub b ~pos:0 ~len:(12 + len)
    then Error "root envelope fails its CRC32"
    else Ok (epoch, Bytes.sub b 12 len)
  end

(* ------------------------------------------------------------------ *)
(* The pin/GC manager                                                   *)

type interval = { birth : int; size : int }
type stale = { s_birth : int; s_death : int; s_size : int }

type t = {
  mutable latest : int;
  live : (Oid.t, interval) Hashtbl.t;
  stale_tbl : (Oid.t, stale) Hashtbl.t;
  pins : (int, int) Hashtbl.t; (* epoch -> refcount *)
  (* Notes of the open mutation window, resolved by [publish]. *)
  mutable window_retired : (Oid.t * interval) list;
}

type pin = { p_epoch : int; mutable p_released : bool }

type gc_stats = {
  reclaimed_objects : int;
  reclaimed_bytes : int;
  retained_objects : int;
  retained_bytes : int;
}

let create ~epoch =
  if epoch < 0 then invalid_arg "Epoch.create: negative epoch";
  {
    latest = epoch;
    live = Hashtbl.create 256;
    stale_tbl = Hashtbl.create 64;
    pins = Hashtbl.create 4;
    window_retired = [];
  }

let latest t = t.latest

let born t ~oid ~size =
  if Hashtbl.mem t.live oid then
    invalid_arg (Printf.sprintf "Epoch.born: oid %d is already live" oid);
  Hashtbl.replace t.live oid { birth = t.latest + 1; size }

let adopt t ~oid ~size =
  if Hashtbl.mem t.live oid then
    invalid_arg (Printf.sprintf "Epoch.adopt: oid %d is already live" oid);
  Hashtbl.replace t.live oid { birth = 0; size }

let adopt_stale t ~oid ~size =
  Hashtbl.replace t.stale_tbl oid { s_birth = 0; s_death = 0; s_size = size }

let retired t ~oid =
  match Hashtbl.find_opt t.live oid with
  | None -> invalid_arg (Printf.sprintf "Epoch.retired: oid %d is not live" oid)
  | Some iv ->
    Hashtbl.remove t.live oid;
    t.window_retired <- (oid, iv) :: t.window_retired

let publish t =
  t.latest <- t.latest + 1;
  (* Retirements of this window become visible-through [latest - 1]:
     the new epoch no longer references them. *)
  List.iter
    (fun (oid, iv) ->
      Hashtbl.replace t.stale_tbl oid
        { s_birth = iv.birth; s_death = t.latest; s_size = iv.size })
    t.window_retired;
  t.window_retired <- [];
  t.latest

let pin t =
  let e = t.latest in
  Hashtbl.replace t.pins e (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins e));
  { p_epoch = e; p_released = false }

let pin_epoch p = p.p_epoch

let release t p =
  if p.p_released then invalid_arg "Epoch.release: pin already released";
  p.p_released <- true;
  match Hashtbl.find_opt t.pins p.p_epoch with
  | None | Some 0 -> invalid_arg "Epoch.release: pin not registered"
  | Some 1 -> Hashtbl.remove t.pins p.p_epoch
  | Some n -> Hashtbl.replace t.pins p.p_epoch (n - 1)

let pinned t =
  Hashtbl.fold (fun e n acc -> List.init n (fun _ -> e) @ acc) t.pins []
  |> List.sort compare

let reachable_from_pin t s =
  Hashtbl.fold (fun e _ acc -> acc || (e >= s.s_birth && e < s.s_death)) t.pins false

let collect t ~reclaim =
  let reclaimed = ref 0 and reclaimed_b = ref 0 in
  let victims =
    Hashtbl.fold
      (fun oid s acc ->
        if s.s_death <= t.latest && not (reachable_from_pin t s) then (oid, s) :: acc
        else acc)
      t.stale_tbl []
    (* Deterministic reclaim order: the deletes are journaled writes,
       so replays must issue them identically. *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (oid, s) ->
      reclaim ~oid ~size:s.s_size;
      Hashtbl.remove t.stale_tbl oid;
      incr reclaimed;
      reclaimed_b := !reclaimed_b + s.s_size)
    victims;
  let retained = Hashtbl.length t.stale_tbl in
  let retained_b = Hashtbl.fold (fun _ s acc -> acc + s.s_size) t.stale_tbl 0 in
  {
    reclaimed_objects = !reclaimed;
    reclaimed_bytes = !reclaimed_b;
    retained_objects = retained;
    retained_bytes = retained_b;
  }

let live_objects t = Hashtbl.length t.live
let stale_objects t = Hashtbl.length t.stale_tbl
let stranded_bytes t = Hashtbl.fold (fun _ s acc -> acc + s.s_size) t.stale_tbl 0
