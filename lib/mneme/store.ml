exception Corrupt of string

let magic = "MNEM"
let version = 2 (* v2: per-physical-segment CRC32s in the pool tables *)
let header_size = 64

(* Header layout:
   0  magic (4)
   4  version       u16
   6  finalized     u8
   7  aux_off       u64   directory extent (0 when never finalized)
   15 aux_len       u64
   23 data_tail     u64
   31 next_lseg     u32
   35 object_count  u64
   43 wasted        u64
   51 epoch         u32   latest published epoch (0 = never published)
   55 root          u32   sealed-root oid + 1 (0 = no root)

   The epoch/root words live in what was header padding, so a v2 store
   written before they existed reads back as epoch 0 with no root. *)

type open_pseg =
  | Open_fixed of { pseg_id : int; lseg : int; buf : bytes; mutable count : int }
  | Open_packed of {
      pseg_id : int;
      mutable objs : (Oid.t * bytes) list; (* reverse allocation order *)
      mutable count : int;
      mutable data_bytes : int;
    }

type pool = {
  store : t;
  pname : string;
  mutable policy : Policy.t option; (* None until the aux blob is loaded *)
  mutable loaded : bool;
  mutable blob : (int * int) option; (* persisted blob extent, for lazy load *)
  mutable pbuffer : Buffer_pool.t option;
  psegs : (int, int * int * int) Hashtbl.t; (* pseg id -> (offset, length, crc32) *)
  mutable next_pseg : int;
  lsegs : (int, int array) Hashtbl.t; (* lseg -> per-slot pseg id, -1 = absent *)
  mutable cur_lseg : int; (* -1 = no allocation lseg open *)
  mutable cur_slot : int;
  mutable open_pseg : open_pseg option;
  mutable obj_count : int;
}

and t = {
  vfs : Vfs.t;
  file : Vfs.file;
  mutable journal : Journal.t option;
  pools : (string, pool) Hashtbl.t;
  mutable pool_list : pool list; (* reverse registration order *)
  lseg_owner : (int, pool) Hashtbl.t;
  mutable next_lseg : int;
  mutable data_tail : int;
  mutable object_count : int;
  mutable wasted : int;
  mutable aux : (int * int) option;
  mutable finalized : bool;
  mutable epoch : int;
  mutable root : int; (* oid of the sealed root object, -1 = none *)
}

(* All data-file I/O goes through the optional journal so that batched
   updates are atomic and readers see their own pending writes. *)
let st_write t ~off b =
  match t.journal with Some j -> Journal.write j ~off b | None -> Vfs.write t.file ~off b

let st_read t ~off ~len =
  match t.journal with Some j -> Journal.read j ~off ~len | None -> Vfs.read t.file ~off ~len

let write_header t =
  let b = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Util.Bin.put_u16 b 4 version;
  Util.Bin.put_u8 b 6 (if t.finalized then 1 else 0);
  let aux_off, aux_len = match t.aux with Some (o, l) -> (o, l) | None -> (0, 0) in
  Util.Bin.put_u64 b 7 aux_off;
  Util.Bin.put_u64 b 15 aux_len;
  Util.Bin.put_u64 b 23 t.data_tail;
  Util.Bin.put_u32 b 31 t.next_lseg;
  Util.Bin.put_u64 b 35 t.object_count;
  Util.Bin.put_u64 b 43 t.wasted;
  Util.Bin.put_u32 b 51 t.epoch;
  Util.Bin.put_u32 b 55 (t.root + 1);
  st_write t ~off:0 b

let create vfs name =
  if Vfs.file_exists vfs name then invalid_arg ("Store.create: file exists: " ^ name);
  let file = Vfs.open_file vfs name in
  let t =
    {
      vfs;
      file;
      journal = None;
      pools = Hashtbl.create 4;
      pool_list = [];
      lseg_owner = Hashtbl.create 256;
      next_lseg = 0;
      data_tail = header_size;
      object_count = 0;
      wasted = 0;
      aux = None;
      finalized = false;
      epoch = 0;
      root = -1;
    }
  in
  write_header t;
  t

let fresh_pool t name =
  {
    store = t;
    pname = name;
    policy = None;
    loaded = false;
    blob = None;
    pbuffer = None;
    psegs = Hashtbl.create 64;
    next_pseg = 0;
    lsegs = Hashtbl.create 64;
    cur_lseg = -1;
    cur_slot = 0;
    open_pseg = None;
    obj_count = 0;
  }

let open_existing vfs name =
  if not (Vfs.file_exists vfs name) then raise (Corrupt ("Store.open_existing: no such file: " ^ name));
  let file = Vfs.open_file vfs name in
  if Vfs.size file < header_size then raise (Corrupt "Store.open_existing: truncated header");
  let b = Vfs.read file ~off:0 ~len:header_size in
  if Bytes.sub_string b 0 4 <> magic then raise (Corrupt "Store.open_existing: bad magic");
  if Util.Bin.get_u16 b 4 <> version then raise (Corrupt "Store.open_existing: version mismatch");
  if Util.Bin.get_u8 b 6 <> 1 then raise (Corrupt "Store.open_existing: store was never finalized");
  let aux_off = Util.Bin.get_u64 b 7 in
  let aux_len = Util.Bin.get_u64 b 15 in
  let t =
    {
      vfs;
      file;
      journal = None;
      pools = Hashtbl.create 4;
      pool_list = [];
      lseg_owner = Hashtbl.create 256;
      next_lseg = Util.Bin.get_u32 b 31;
      data_tail = Util.Bin.get_u64 b 23;
      object_count = Util.Bin.get_u64 b 35;
      wasted = Util.Bin.get_u64 b 43;
      aux = Some (aux_off, aux_len);
      finalized = true;
      epoch = Util.Bin.get_u32 b 51;
      root = Util.Bin.get_u32 b 55 - 1;
    }
  in
  (* The auxiliary directory (top level of the multi-level tables): pool
     names, per-pool blob extents, and the lseg ownership table.  Pool
     blobs themselves load lazily, on first access to each pool. *)
  let dir = Vfs.read file ~off:aux_off ~len:aux_len in
  let pool_count = Util.Bin.get_u16 dir 0 in
  let pos = ref 2 in
  let by_index = Array.make pool_count None in
  for i = 0 to pool_count - 1 do
    let pname, p = Util.Bin.get_string dir !pos in
    let blob_off = Util.Bin.get_u64 dir p in
    let blob_len = Util.Bin.get_u32 dir (p + 8) in
    pos := p + 12;
    let pool = fresh_pool t pname in
    pool.blob <- Some (blob_off, blob_len);
    Hashtbl.add t.pools pname pool;
    t.pool_list <- pool :: t.pool_list;
    by_index.(i) <- Some pool
  done;
  let owner_count = Util.Bin.get_u32 dir !pos in
  pos := !pos + 4;
  for _ = 1 to owner_count do
    let lseg = Util.Bin.get_u32 dir !pos in
    let idx = Util.Bin.get_u16 dir (!pos + 4) in
    pos := !pos + 6;
    match by_index.(idx) with
    | Some pool -> Hashtbl.replace t.lseg_owner lseg pool
    | None -> raise (Corrupt "Store.open_existing: lseg owner index out of range")
  done;
  t

let encode_pool_blob pool =
  let buf = Buffer.create 4096 in
  (match pool.policy with
  | Some p -> Policy.encode buf p
  | None -> assert false (* only called on loaded pools *));
  Util.Bin.buf_u32 buf pool.next_pseg;
  Util.Bin.buf_u32 buf pool.next_pseg;
  for id = 0 to pool.next_pseg - 1 do
    match Hashtbl.find_opt pool.psegs id with
    | Some (off, len, crc) ->
      Util.Bin.buf_u64 buf off;
      Util.Bin.buf_u32 buf len;
      Util.Bin.buf_u32 buf crc
    | None -> assert false (* every reserved pseg id is flushed before finalize *)
  done;
  Util.Bin.buf_u32 buf pool.obj_count;
  let lsegs = Hashtbl.fold (fun l a acc -> (l, a) :: acc) pool.lsegs [] in
  let lsegs = List.sort (fun (a, _) (b, _) -> compare a b) lsegs in
  Util.Bin.buf_u32 buf (List.length lsegs);
  List.iter
    (fun (lseg, slots) ->
      Util.Bin.buf_u32 buf lseg;
      let first = slots.(0) in
      let uniform = first >= 0 && Array.for_all (fun p -> p = first) slots in
      if uniform then begin
        Util.Bin.buf_u8 buf 0;
        Util.Bin.buf_u32 buf first
      end
      else begin
        Util.Bin.buf_u8 buf 1;
        Array.iter (fun p -> Util.Bin.buf_u32 buf (p + 1)) slots
      end)
    lsegs;
  Buffer.to_bytes buf

let decode_pool_blob pool b =
  let policy, pos = Policy.decode b 0 in
  pool.policy <- Some policy;
  pool.next_pseg <- Util.Bin.get_u32 b pos;
  let pseg_count = Util.Bin.get_u32 b (pos + 4) in
  let pos = ref (pos + 8) in
  for id = 0 to pseg_count - 1 do
    let off = Util.Bin.get_u64 b !pos in
    let len = Util.Bin.get_u32 b (!pos + 8) in
    let crc = Util.Bin.get_u32 b (!pos + 12) in
    pos := !pos + 16;
    Hashtbl.replace pool.psegs id (off, len, crc)
  done;
  pool.obj_count <- Util.Bin.get_u32 b !pos;
  let lseg_count = Util.Bin.get_u32 b (!pos + 4) in
  pos := !pos + 8;
  for _ = 1 to lseg_count do
    let lseg = Util.Bin.get_u32 b !pos in
    let tag = Util.Bin.get_u8 b (!pos + 4) in
    pos := !pos + 5;
    let slots =
      if tag = 0 then begin
        let p = Util.Bin.get_u32 b !pos in
        pos := !pos + 4;
        Array.make Oid.slots_per_lseg p
      end
      else begin
        let a =
          Array.init Oid.slots_per_lseg (fun i -> Util.Bin.get_u32 b (!pos + (i * 4)) - 1)
        in
        pos := !pos + (Oid.slots_per_lseg * 4);
        a
      end
    in
    Hashtbl.replace pool.lsegs lseg slots
  done

let ensure_loaded pool =
  if not pool.loaded then begin
    (match pool.blob with
    | None -> () (* freshly created pool; nothing persisted yet *)
    | Some (off, len) ->
      (* First access to this pool's auxiliary tables: one charged read,
         cached permanently afterwards. *)
      let b = st_read pool.store ~off ~len in
      decode_pool_blob pool b);
    pool.loaded <- true
  end

let policy_of pool =
  ensure_loaded pool;
  match pool.policy with
  | Some p -> p
  | None -> invalid_arg ("Store: pool has no policy: " ^ pool.pname)

let add_pool t policy =
  (match Hashtbl.find_opt t.pools policy.Policy.name with
  | Some existing ->
    if existing.loaded || existing.blob = None then
      invalid_arg ("Store.add_pool: pool already registered: " ^ policy.Policy.name)
    else begin
      (* Re-opened store: bind the handle; persisted policy wins. *)
      ensure_loaded existing
    end
  | None ->
    let pool = fresh_pool t policy.Policy.name in
    pool.policy <- Some policy;
    pool.loaded <- true;
    Hashtbl.add t.pools policy.Policy.name pool;
    t.pool_list <- pool :: t.pool_list);
  Hashtbl.find t.pools policy.Policy.name

let pool t name =
  match Hashtbl.find_opt t.pools name with
  | Some p -> p
  | None -> raise Not_found

let pool_name pool = pool.pname
let pool_policy pool = policy_of pool
let attach_buffer pool buffer = pool.pbuffer <- Some buffer
let buffer pool = pool.pbuffer

(* ------------------------------------------------------------------ *)
(* Physical segment formats                                            *)

(* Fixed-slot segment: u32 lseg, u16 count, then 255 slots of
   [slot_size] bytes each: u32 length (0xffffffff = empty) + payload. *)
let empty_len = 0xffffffff

let fixed_slot_off slot_size slot = 6 + (slot * slot_size)

(* Packed segment: u16 count, then count x (u32 oid, u32 off, u32 len),
   then object bytes.  Offsets are absolute within the segment. *)
let packed_size ~count ~data_bytes = 2 + (count * 12) + data_bytes

let serialize_packed objs =
  (* [objs] in allocation order *)
  let count = List.length objs in
  let data_bytes = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 objs in
  let total = packed_size ~count ~data_bytes in
  let out = Bytes.make total '\000' in
  Util.Bin.put_u16 out 0 count;
  let data_off = ref (2 + (count * 12)) in
  List.iteri
    (fun i (oid, b) ->
      let base = 2 + (i * 12) in
      Util.Bin.put_u32 out base oid;
      Util.Bin.put_u32 out (base + 4) !data_off;
      Util.Bin.put_u32 out (base + 8) (Bytes.length b);
      Bytes.blit b 0 out !data_off (Bytes.length b);
      data_off := !data_off + Bytes.length b)
    objs;
  out

let packed_find seg oid =
  let count = Util.Bin.get_u16 seg 0 in
  let rec go i =
    if i >= count then None
    else
      let base = 2 + (i * 12) in
      if Util.Bin.get_u32 seg base = oid then
        Some (i, Util.Bin.get_u32 seg (base + 4), Util.Bin.get_u32 seg (base + 8))
      else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let alloc_region t ~align ~size =
  let off = (t.data_tail + align - 1) / align * align in
  t.data_tail <- off + size;
  off

let flush_open_pseg pool =
  match pool.open_pseg with
  | None -> ()
  | Some op ->
    let policy = policy_of pool in
    let pseg_id, bytes =
      match op with
      | Open_fixed { pseg_id; buf; count; lseg } ->
        Util.Bin.put_u32 buf 0 lseg;
        Util.Bin.put_u16 buf 4 count;
        (pseg_id, buf)
      | Open_packed { pseg_id; objs; _ } -> (pseg_id, serialize_packed (List.rev objs))
    in
    let size = Bytes.length bytes in
    let off = alloc_region pool.store ~align:policy.Policy.align ~size in
    st_write pool.store ~off bytes;
    Hashtbl.replace pool.psegs pseg_id (off, size, Util.Crc32.digest_bytes bytes);
    pool.open_pseg <- None

let fresh_lseg pool =
  let t = pool.store in
  let lseg = t.next_lseg in
  t.next_lseg <- t.next_lseg + 1;
  Hashtbl.replace t.lseg_owner lseg pool;
  Hashtbl.replace pool.lsegs lseg (Array.make Oid.slots_per_lseg (-1));
  pool.cur_lseg <- lseg;
  pool.cur_slot <- 0

let alloc_oid pool =
  let policy = policy_of pool in
  if pool.cur_lseg = -1 || pool.cur_slot >= Oid.slots_per_lseg then begin
    (* Fixed-slot segments coincide with logical segments, so a new lseg
       means the previous physical segment is complete. *)
    (match policy.Policy.layout with
    | Policy.Fixed_slots _ -> flush_open_pseg pool
    | Policy.Packed -> ());
    fresh_lseg pool
  end;
  let oid = Oid.make ~lseg:pool.cur_lseg ~slot:pool.cur_slot in
  pool.cur_slot <- pool.cur_slot + 1;
  oid

let slots_of pool lseg =
  match Hashtbl.find_opt pool.lsegs lseg with
  | Some a -> a
  | None -> raise (Corrupt "Store: lseg missing from pool tables")

(* Physical placement of an object under an already-assigned id: shared
   by [allocate], [compact] (which preserves ids) and relocation. *)
let place_object pool ~oid bytes_v =
  let policy = policy_of pool in
  let len = Bytes.length bytes_v in
  let lseg = Oid.lseg oid and slot = Oid.slot oid in
  (match policy.Policy.layout with
  | Policy.Fixed_slots { slot_size } ->
    (match pool.open_pseg with
    | Some (Open_fixed _) -> ()
    | Some (Open_packed _) -> assert false
    | None ->
      let pseg_id = pool.next_pseg in
      pool.next_pseg <- pool.next_pseg + 1;
      let buf = Bytes.make policy.Policy.pseg_size '\xff' in
      pool.open_pseg <- Some (Open_fixed { pseg_id; lseg; buf; count = 0 }));
    (match pool.open_pseg with
    | Some (Open_fixed f) ->
      let base = fixed_slot_off slot_size slot in
      Util.Bin.put_u32 f.buf base len;
      Bytes.blit bytes_v 0 f.buf (base + 4) len;
      f.count <- f.count + 1;
      (slots_of pool lseg).(slot) <- f.pseg_id
    | Some (Open_packed _) | None -> assert false)
  | Policy.Packed ->
    if policy.Policy.singleton then begin
      let pseg_id = pool.next_pseg in
      pool.next_pseg <- pool.next_pseg + 1;
      let seg = serialize_packed [ (oid, bytes_v) ] in
      let off = alloc_region pool.store ~align:policy.Policy.align ~size:(Bytes.length seg) in
      st_write pool.store ~off seg;
      Hashtbl.replace pool.psegs pseg_id (off, Bytes.length seg, Util.Crc32.digest_bytes seg);
      (slots_of pool lseg).(slot) <- pseg_id
    end
    else begin
      (* Close the open segment if this object would overflow it. *)
      (match pool.open_pseg with
      | Some (Open_packed p)
        when p.count > 0
             && packed_size ~count:(p.count + 1) ~data_bytes:(p.data_bytes + len)
                > policy.Policy.pseg_size ->
        flush_open_pseg pool
      | Some (Open_packed _) | None -> ()
      | Some (Open_fixed _) -> assert false);
      (match pool.open_pseg with
      | Some (Open_packed _) -> ()
      | None ->
        let pseg_id = pool.next_pseg in
        pool.next_pseg <- pool.next_pseg + 1;
        pool.open_pseg <- Some (Open_packed { pseg_id; objs = []; count = 0; data_bytes = 0 })
      | Some (Open_fixed _) -> assert false);
      (match pool.open_pseg with
      | Some (Open_packed p) ->
        p.objs <- (oid, bytes_v) :: p.objs;
        p.count <- p.count + 1;
        p.data_bytes <- p.data_bytes + len;
        (slots_of pool lseg).(slot) <- p.pseg_id
      | Some (Open_fixed _) | None -> assert false)
    end)

let allocate pool bytes_v =
  ensure_loaded pool;
  let policy = policy_of pool in
  (match Policy.max_payload policy with
  | Some bound when Bytes.length bytes_v > bound ->
    invalid_arg
      (Printf.sprintf "Store.allocate: %d-byte object exceeds %s pool payload bound %d"
         (Bytes.length bytes_v) pool.pname bound)
  | Some _ | None -> ());
  let oid = alloc_oid pool in
  place_object pool ~oid bytes_v;
  pool.obj_count <- pool.obj_count + 1;
  pool.store.object_count <- pool.store.object_count + 1;
  oid

(* ------------------------------------------------------------------ *)
(* Retrieval                                                           *)

let owner_pool t oid =
  match Hashtbl.find_opt t.lseg_owner (Oid.lseg oid) with
  | Some pool ->
    ensure_loaded pool;
    Some pool
  | None -> None

let pool_of_oid = owner_pool

let locate_slot t oid =
  match owner_pool t oid with
  | None -> None
  | Some pool -> (
    match Hashtbl.find_opt pool.lsegs (Oid.lseg oid) with
    | None -> None
    | Some slots ->
      let pseg = slots.(Oid.slot oid) in
      if pseg < 0 then None else Some (pool, pseg))

let locate_pseg t oid =
  match locate_slot t oid with None -> None | Some (_, pseg) -> Some pseg

let exists t oid = locate_slot t oid <> None

let open_pseg_id = function
  | Open_fixed { pseg_id; _ } -> pseg_id
  | Open_packed { pseg_id; _ } -> pseg_id

(* Fetch segment bytes: from the still-open creation segment, or by
   faulting through the pool's attached buffer. *)
let segment_bytes pool pseg =
  match pool.open_pseg with
  | Some op when open_pseg_id op = pseg -> (
    match op with
    | Open_fixed { buf; _ } -> `Open_fixed buf
    | Open_packed { objs; _ } -> `Open_packed objs)
  | Some _ | None -> (
    match Hashtbl.find_opt pool.psegs pseg with
    | None -> raise (Corrupt (Printf.sprintf "Store: pseg %d of pool %s not on disk" pseg pool.pname))
    | Some (off, len, crc) -> (
      match pool.pbuffer with
      | None -> invalid_arg ("Store: pool has no buffer attached: " ^ pool.pname)
      | Some buffer ->
        `Disk
          (Buffer_pool.fault buffer ~pseg ~load:(fun () ->
               let bytes = st_read pool.store ~off ~len in
               if Util.Crc32.digest_bytes bytes <> crc then
                 raise
                   (Corrupt
                      (Printf.sprintf "Store: pseg %d of pool %s fails its CRC32" pseg pool.pname));
               bytes))))

let extract_object pool oid seg =
  let policy = policy_of pool in
  match (seg, policy.Policy.layout) with
  | `Open_fixed buf, Policy.Fixed_slots { slot_size } | `Disk buf, Policy.Fixed_slots { slot_size }
    ->
    let base = fixed_slot_off slot_size (Oid.slot oid) in
    let len = Util.Bin.get_u32 buf base in
    if len = empty_len then None else Some (Bytes.sub buf (base + 4) len)
  | `Open_packed objs, Policy.Packed ->
    List.find_map (fun (o, b) -> if o = oid then Some (Bytes.copy b) else None) objs
  | `Disk buf, Policy.Packed -> (
    match packed_find buf oid with
    | None -> None
    | Some (_, off, len) -> Some (Bytes.sub buf off len))
  | `Open_fixed _, Policy.Packed | `Open_packed _, Policy.Fixed_slots _ ->
    raise (Corrupt "Store: segment layout does not match pool policy")

let get_opt t oid =
  match locate_slot t oid with
  | None -> None
  | Some (pool, pseg) -> extract_object pool oid (segment_bytes pool pseg)

let get t oid =
  match get_opt t oid with Some b -> b | None -> raise Not_found

let object_size t oid =
  match locate_slot t oid with
  | None -> None
  | Some (pool, pseg) -> (
    let policy = policy_of pool in
    match (segment_bytes pool pseg, policy.Policy.layout) with
    | `Open_fixed buf, Policy.Fixed_slots { slot_size } | `Disk buf, Policy.Fixed_slots { slot_size }
      ->
      let len = Util.Bin.get_u32 buf (fixed_slot_off slot_size (Oid.slot oid)) in
      if len = empty_len then None else Some len
    | `Open_packed objs, _ ->
      List.find_map (fun (o, b) -> if o = oid then Some (Bytes.length b) else None) objs
    | `Disk buf, Policy.Packed -> (
      match packed_find buf oid with Some (_, _, len) -> Some len | None -> None)
    | `Open_fixed _, Policy.Packed -> raise (Corrupt "Store: layout mismatch"))

(* ------------------------------------------------------------------ *)
(* Modification                                                        *)

let write_back pool pseg bytes =
  match Hashtbl.find_opt pool.psegs pseg with
  | None -> raise (Corrupt "Store.write_back: unknown pseg")
  | Some (off, len, _) ->
    assert (Bytes.length bytes = len);
    st_write pool.store ~off bytes;
    Hashtbl.replace pool.psegs pseg (off, len, Util.Crc32.digest_bytes bytes);
    (match pool.pbuffer with
    | Some buffer -> Buffer_pool.update buffer ~pseg bytes
    | None -> ())

(* Move an object (keeping its id) into fresh segment space of the same
   pool; the old extent becomes wasted space. *)
let relocate pool oid bytes_v = place_object pool ~oid bytes_v

let modify t oid bytes_v =
  match locate_slot t oid with
  | None -> raise Not_found
  | Some (pool, pseg) -> (
    let policy = policy_of pool in
    let new_len = Bytes.length bytes_v in
    let in_open = match pool.open_pseg with Some op -> open_pseg_id op = pseg | None -> false in
    match policy.Policy.layout with
    | Policy.Fixed_slots { slot_size } ->
      let bound = slot_size - 4 in
      if new_len > bound then
        invalid_arg
          (Printf.sprintf "Store.modify: %d bytes exceeds fixed-slot payload %d" new_len bound);
      let base = fixed_slot_off slot_size (Oid.slot oid) in
      if in_open then begin
        match pool.open_pseg with
        | Some (Open_fixed { buf; _ }) ->
          Util.Bin.put_u32 buf base new_len;
          Bytes.blit bytes_v 0 buf (base + 4) new_len
        | _ -> assert false
      end
      else begin
        match segment_bytes pool pseg with
        | `Disk buf ->
          Util.Bin.put_u32 buf base new_len;
          Bytes.blit bytes_v 0 buf (base + 4) new_len;
          write_back pool pseg buf
        | `Open_fixed _ | `Open_packed _ -> assert false
      end
    | Policy.Packed ->
      if in_open then begin
        match pool.open_pseg with
        | Some (Open_packed p) ->
          let old_len = ref 0 in
          p.objs <-
            List.map
              (fun (o, b) ->
                if o = oid then begin
                  old_len := Bytes.length b;
                  (o, bytes_v)
                end
                else (o, b))
              p.objs;
          p.data_bytes <- p.data_bytes - !old_len + new_len
        | _ -> assert false
      end
      else begin
        match segment_bytes pool pseg with
        | `Disk buf -> (
          match packed_find buf oid with
          | None -> raise (Corrupt "Store.modify: object missing from its segment")
          | Some (dir_index, off, old_len) ->
            if new_len <= old_len then begin
              (* Fits in place: patch data and directory length. *)
              Bytes.blit bytes_v 0 buf off new_len;
              Util.Bin.put_u32 buf (2 + (dir_index * 12) + 8) new_len;
              t.wasted <- t.wasted + (old_len - new_len);
              write_back pool pseg buf
            end
            else begin
              (* Does not fit: relocate, stranding the old extent — the
                 paper's space-management problem for growing inverted
                 lists. *)
              t.wasted <- t.wasted + old_len;
              relocate pool oid bytes_v
            end)
        | `Open_fixed _ | `Open_packed _ -> assert false
      end)

let delete t oid =
  match locate_slot t oid with
  | None -> raise Not_found
  | Some (pool, pseg) ->
    let stranded = match object_size t oid with Some n -> n | None -> 0 in
    let in_open = match pool.open_pseg with Some op -> open_pseg_id op = pseg | None -> false in
    if in_open then begin
      match pool.open_pseg with
      | Some (Open_packed p) ->
        p.objs <- List.filter (fun (o, _) -> o <> oid) p.objs;
        p.count <- p.count - 1;
        p.data_bytes <- p.data_bytes - stranded
      | Some (Open_fixed { buf; _ }) ->
        let policy = policy_of pool in
        (match policy.Policy.layout with
        | Policy.Fixed_slots { slot_size } ->
          Util.Bin.put_u32 buf (fixed_slot_off slot_size (Oid.slot oid)) empty_len
        | Policy.Packed -> assert false)
      | None -> assert false
    end
    else t.wasted <- t.wasted + stranded;
    (slots_of pool (Oid.lseg oid)).(Oid.slot oid) <- -1;
    pool.obj_count <- pool.obj_count - 1;
    t.object_count <- t.object_count - 1

let reserve t oids =
  let pinned = ref [] in
  List.iter
    (fun oid ->
      match locate_slot t oid with
      | None -> ()
      | Some (pool, pseg) -> (
        match pool.pbuffer with
        | None -> ()
        | Some buffer -> if Buffer_pool.pin buffer ~pseg then pinned := (buffer, pseg) :: !pinned))
    oids;
  let released = ref false in
  fun () ->
    if not !released then begin
      released := true;
      List.iter (fun (buffer, pseg) -> Buffer_pool.unpin buffer ~pseg) !pinned
    end

(* ------------------------------------------------------------------ *)
(* Finalize                                                            *)

let finalize t =
  let pools = List.rev t.pool_list in
  List.iter ensure_loaded pools;
  List.iter flush_open_pseg pools;
  List.iter (fun p -> p.cur_lseg <- -1) pools;
  let blobs =
    List.map
      (fun pool ->
        let blob = encode_pool_blob pool in
        let off = alloc_region t ~align:1 ~size:(Bytes.length blob) in
        st_write t ~off blob;
        pool.blob <- Some (off, Bytes.length blob);
        (pool, off, Bytes.length blob))
      pools
  in
  let dir = Buffer.create 1024 in
  Util.Bin.buf_u16 dir (List.length blobs);
  List.iter
    (fun (pool, off, len) ->
      Util.Bin.buf_string dir pool.pname;
      Util.Bin.buf_u64 dir off;
      Util.Bin.buf_u32 dir len)
    blobs;
  let index_of pool =
    let rec go i = function
      | [] -> raise (Corrupt "Store.finalize: unregistered owner pool")
      | (p, _, _) :: rest -> if p == pool then i else go (i + 1) rest
    in
    go 0 blobs
  in
  let owners = Hashtbl.fold (fun lseg pool acc -> (lseg, pool) :: acc) t.lseg_owner [] in
  let owners = List.sort (fun (a, _) (b, _) -> compare a b) owners in
  Util.Bin.buf_u32 dir (List.length owners);
  List.iter
    (fun (lseg, pool) ->
      Util.Bin.buf_u32 dir lseg;
      Util.Bin.buf_u16 dir (index_of pool))
    owners;
  let dir_bytes = Buffer.to_bytes dir in
  let dir_off = alloc_region t ~align:1 ~size:(Bytes.length dir_bytes) in
  st_write t ~off:dir_off dir_bytes;
  t.aux <- Some (dir_off, Bytes.length dir_bytes);
  t.finalized <- true;
  write_header t;
  (* Durability: an unjournaled finalize syncs the file itself; under a
     journal the enclosing commit is the durability point (the batch is
     fsynced to the log before any of it reaches the data file). *)
  match t.journal with None -> Vfs.fsync t.file | Some _ -> ()

let vfs t = t.vfs
let file_name t = Vfs.file_name t.file

let file_size t =
  match t.journal with Some j -> Journal.data_size j | None -> Vfs.size t.file
let object_count t = t.object_count
let pool_object_count pool =
  ensure_loaded pool;
  pool.obj_count
let wasted_bytes t = t.wasted
let aux_table_bytes t = match t.aux with None -> 0 | Some (_, len) -> len

(* ------------------------------------------------------------------ *)
(* The versioned root                                                   *)

let epoch t = t.epoch
let root t = if t.root < 0 then None else Some t.root

let set_root t ~epoch ~root =
  if epoch < 0 then invalid_arg "Store.set_root: negative epoch";
  (match root with
  | Some oid when oid < 0 -> invalid_arg "Store.set_root: negative root oid"
  | Some _ | None -> ());
  t.epoch <- epoch;
  t.root <- (match root with Some oid -> oid | None -> -1)

(* ------------------------------------------------------------------ *)
(* Journaling                                                          *)

let enable_journal t ~log_file =
  (match t.journal with
  | Some _ -> invalid_arg "Store.enable_journal: journal already enabled"
  | None -> ());
  t.journal <- Some (Journal.create t.vfs ~log_file ~data_file:(Vfs.file_name t.file))

let journal t = t.journal

let transact t f =
  match t.journal with
  | None -> invalid_arg "Store.transact: no journal enabled"
  | Some j ->
    Journal.begin_batch j;
    (match f () with
    | result ->
      Journal.commit j;
      result
    | exception e ->
      Journal.abort j;
      raise e)

let recover_journal vfs ~file ~log_file =
  let j = Journal.attach vfs ~log_file ~data_file:file in
  Journal.recover j

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let pools t =
  let ps = List.rev t.pool_list in
  List.iter ensure_loaded ps;
  ps

let pool_segments pool =
  ensure_loaded pool;
  Hashtbl.fold (fun id (off, len, _) acc -> (id, (off, len)) :: acc) pool.psegs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let segment_crc pool pseg =
  ensure_loaded pool;
  match Hashtbl.find_opt pool.psegs pseg with Some (_, _, crc) -> Some crc | None -> None

(* Re-read the segment from the file (bypassing any buffered copy) and
   compare against the recorded checksum — the fsck CRC pass. *)
let verify_segment_crc pool pseg =
  ensure_loaded pool;
  match Hashtbl.find_opt pool.psegs pseg with
  | None -> true (* still open in memory: no on-disk image to damage *)
  | Some (off, len, crc) -> Util.Crc32.digest_bytes (st_read pool.store ~off ~len) = crc

(* A repair is only a repair if the result is byte-identical to what
   was originally written: the replacement must match the recorded
   length and CRC32 before a single byte reaches the file. *)
let repair_segment pool ~pseg replacement =
  ensure_loaded pool;
  let t = pool.store in
  match Hashtbl.find_opt pool.psegs pseg with
  | None -> Error (Printf.sprintf "pool %s has no flushed pseg %d" pool.pname pseg)
  | Some (off, len, crc) ->
    if Bytes.length replacement <> len then
      Error
        (Printf.sprintf "replacement is %d bytes, pseg %d holds %d" (Bytes.length replacement)
           pseg len)
    else if Util.Crc32.digest_bytes replacement <> crc then
      Error (Printf.sprintf "replacement fails pseg %d's recorded CRC32" pseg)
    else begin
      (match t.journal with
      | Some j when not (Journal.in_batch j) ->
        (* Journal the rewrite so a crash mid-heal recovers to either
           the damaged or the healed image, never a torn mix. *)
        transact t (fun () -> st_write t ~off replacement)
      | Some _ ->
        (* Already inside a batch: ride the caller's commit. *)
        st_write t ~off replacement
      | None ->
        st_write t ~off replacement;
        Vfs.fsync t.file);
      (match pool.pbuffer with
      | Some buffer -> Buffer_pool.update buffer ~pseg replacement
      | None -> ());
      Ok ()
    end

let pool_slot_tables pool =
  ensure_loaded pool;
  Hashtbl.fold (fun lseg slots acc -> (lseg, Array.copy slots) :: acc) pool.lsegs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let segment_raw pool pseg =
  ensure_loaded pool;
  match segment_bytes pool pseg with
  | `Disk bytes -> bytes
  | `Open_fixed buf -> Bytes.copy buf
  | `Open_packed objs -> serialize_packed (List.rev objs)

let parse_packed_directory seg =
  if Bytes.length seg < 2 then raise (Corrupt "parse_packed_directory: segment too short");
  let count = Util.Bin.get_u16 seg 0 in
  if 2 + (count * 12) > Bytes.length seg then
    raise (Corrupt "parse_packed_directory: directory extends past segment");
  List.init count (fun i ->
      let base = 2 + (i * 12) in
      (Util.Bin.get_u32 seg base, Util.Bin.get_u32 seg (base + 4), Util.Bin.get_u32 seg (base + 8)))

let fixed_slot_length ~slot_size seg ~slot =
  let base = fixed_slot_off slot_size slot in
  if base + 4 > Bytes.length seg then raise (Corrupt "fixed_slot_length: slot outside segment");
  let len = Util.Bin.get_u32 seg base in
  if len = empty_len then None else Some len

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)

let compact t ~file =
  if not t.finalized then invalid_arg "Store.compact: finalize the store first";
  let pools_src = pools t in
  let dst = create t.vfs file in
  (* Recreate the pools under the same names/policies; the destination
     needs buffers only if it is queried, not for placement. *)
  let dst_pool_of =
    let table = Hashtbl.create 4 in
    List.iter
      (fun src ->
        let policy = policy_of src in
        Hashtbl.replace table src.pname (add_pool dst policy))
      pools_src;
    fun name -> Hashtbl.find table name
  in
  (* Replay logical segments in global order so every surviving object
     keeps its id (dictionary locators stay valid). *)
  for lseg = 0 to t.next_lseg - 1 do
    match Hashtbl.find_opt t.lseg_owner lseg with
    | None -> raise (Corrupt "Store.compact: logical segment without an owner")
    | Some src ->
      ensure_loaded src;
      let dpool = dst_pool_of src.pname in
      (* Fixed-layout segments coincide with lsegs: close the previous
         one before starting the next. *)
      (match (policy_of dpool).Policy.layout with
      | Policy.Fixed_slots _ -> flush_open_pseg dpool
      | Policy.Packed -> ());
      assert (dst.next_lseg = lseg);
      fresh_lseg dpool;
      (match Hashtbl.find_opt src.lsegs lseg with
      | None -> ()
      | Some slots ->
        Array.iteri
          (fun slot pseg ->
            if pseg >= 0 then begin
              let oid = Oid.make ~lseg ~slot in
              place_object dpool ~oid (get t oid);
              dpool.obj_count <- dpool.obj_count + 1;
              dst.object_count <- dst.object_count + 1
            end)
          slots)
  done;
  (* The epoch lineage survives compaction: ids are preserved, so the
     sealed root object (if any) still names valid objects. *)
  dst.epoch <- t.epoch;
  dst.root <- t.root;
  finalize dst;
  dst
