type t = { max_segments : int option; max_bytes : int option }

type meter = { mutable segments : int; mutable bytes : int }

let create ?max_segments ?max_bytes () =
  (match max_segments with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_segments must be positive"
  | _ -> ());
  (match max_bytes with
  | Some n when n < 1 -> invalid_arg "Budget.create: max_bytes must be positive"
  | _ -> ());
  { max_segments; max_bytes }

let unlimited = { max_segments = None; max_bytes = None }

let meter () = { segments = 0; bytes = 0 }

let charge m ~segments ~bytes =
  m.segments <- m.segments + segments;
  m.bytes <- m.bytes + bytes

let segments m = m.segments
let bytes m = m.bytes

let within t m =
  (* At least one unit of work per step, then stop at whichever budget
     trips first. *)
  m.segments = 0
  || (match t.max_segments with Some n -> m.segments < n | None -> true)
     && (match t.max_bytes with Some n -> m.bytes < n | None -> true)
