(* A standby is healthy or unhealthy-for-a-reason — one field, so the
   invariant [reason = Some _ <=> not healthy] holds by construction
   instead of by discipline across every transition. *)
type status = Healthy | Unhealthy of string

type standby = {
  sname : string;
  svfs : Vfs.t;
  sjournal : Journal.t; (* log + data on the standby's own file system *)
  mutable applied : int;
  mutable status : status;
  mutable paused : bool;
  mutable backlog : (int * bytes) list; (* newest first, while paused *)
  mutable corrupt_next : bool;
}

type t = {
  journal : Journal.t; (* the primary's *)
  pvfs : Vfs.t; (* the primary's file system *)
  group : standby list; (* attach order *)
  mutable corrupt_transfer : bool; (* test hook: damage the next heal transfer *)
}

type standby_info = {
  name : string;
  applied_lsn : int;
  lag : int;
  healthy : bool;
  paused : bool;
  reason : string option;
}

let is_healthy sb = sb.status = Healthy
let fail (sb : standby) msg = sb.status <- Unhealthy msg

(* Land the shipped image in the standby's log, make it durable (the
   standby's commit point), then run the ordinary CRC-verified recovery
   path to apply it.  A batch that fails verification is Discarded by
   recovery — the standby refuses it and goes unhealthy rather than
   diverge. *)
let apply sb ~lsn image =
  if lsn <> sb.applied + 1 then
    fail sb (Printf.sprintf "shipment gap: got lsn %d after %d" lsn sb.applied)
  else begin
    let image =
      if not sb.corrupt_next then image
      else begin
        sb.corrupt_next <- false;
        let damaged = Bytes.copy image in
        let target = Bytes.length damaged / 2 in
        Bytes.set damaged target (Char.chr (Char.code (Bytes.get damaged target) lxor 0x40));
        damaged
      end
    in
    match
      let log = Vfs.open_file sb.svfs (Journal.log_file sb.sjournal) in
      Vfs.truncate log 0;
      ignore (Vfs.append log image);
      Vfs.fsync log;
      Journal.recover sb.sjournal
    with
    | Journal.Replayed _ -> sb.applied <- lsn
    | Journal.Discarded _ | Journal.Clean ->
      fail sb (Printf.sprintf "batch %d failed CRC verification, rejected" lsn)
    | exception Vfs.Crash -> fail sb (Printf.sprintf "standby device crashed applying batch %d" lsn)
  end

let receive (sb : standby) ~lsn image =
  if is_healthy sb then
    if sb.paused then sb.backlog <- (lsn, image) :: sb.backlog else apply sb ~lsn image

let attach store ~standbys =
  let journal =
    match Store.journal store with
    | None -> invalid_arg "Replica.attach: store has no journal enabled"
    | Some j -> j
  in
  if Journal.in_batch journal then invalid_arg "Replica.attach: batch open on the primary";
  let seen = Hashtbl.create 4 in
  let primary_vfs_file = Journal.data_file journal in
  let group =
    List.map
      (fun (sname, svfs) ->
        if Hashtbl.mem seen sname then
          invalid_arg ("Replica.attach: duplicate standby name: " ^ sname);
        Hashtbl.add seen sname ();
        (* Bootstrap: the standby starts from a durable copy of the
           primary data file as it stands now; everything after arrives
           through the commit stream. *)
        Vfs.copy_file (Store.vfs store) primary_vfs_file ~into:svfs;
        {
          sname;
          svfs;
          sjournal =
            Journal.attach svfs ~log_file:(Journal.log_file journal)
              ~data_file:primary_vfs_file;
          applied = Journal.lsn journal;
          status = Healthy;
          paused = false;
          backlog = [];
          corrupt_next = false;
        })
      standbys
  in
  List.iter (fun sb -> Journal.on_commit journal (fun ~lsn image -> receive sb ~lsn image)) group;
  { journal; pvfs = Store.vfs store; group; corrupt_transfer = false }

let primary_lsn t = Journal.lsn t.journal

let find t name =
  match List.find_opt (fun sb -> String.equal sb.sname name) t.group with
  | Some sb -> sb
  | None -> raise Not_found

let info_of t sb =
  {
    name = sb.sname;
    applied_lsn = sb.applied;
    lag = primary_lsn t - sb.applied;
    healthy = is_healthy sb;
    paused = sb.paused;
    reason = (match sb.status with Healthy -> None | Unhealthy msg -> Some msg);
  }

let info t = List.map (info_of t) t.group
let standby_vfs t ~name = (find t name).svfs
let pause t ~name = (find t name).paused <- true

let resume t ~name =
  let sb = find t name in
  sb.paused <- false;
  let pending = List.rev sb.backlog in
  sb.backlog <- [];
  List.iter (fun (lsn, image) -> if is_healthy sb then apply sb ~lsn image) pending

let resync t ~name =
  if Journal.in_batch t.journal then invalid_arg "Replica.resync: batch open on the primary";
  let sb = find t name in
  (* Re-bootstrap from scratch: a fresh durable copy of the primary data
     file supersedes whatever the standby held (rejected batches, a
     paused backlog, its own rot), so the standby rejoins the stream at
     the primary's current position. *)
  Vfs.copy_file t.pvfs (Journal.data_file t.journal) ~into:sb.svfs;
  let log = Vfs.open_file sb.svfs (Journal.log_file sb.sjournal) in
  Vfs.truncate log 0;
  Vfs.fsync log;
  sb.applied <- Journal.lsn t.journal;
  sb.status <- Healthy;
  sb.paused <- false;
  sb.backlog <- [];
  sb.corrupt_next <- false

let corrupt_next_shipment t ~name = (find t name).corrupt_next <- true
let corrupt_next_transfer t = t.corrupt_transfer <- true

(* Fetch one segment extent from a group member's copy of the data
   file, wrapped in a transit CRC envelope: the envelope is sealed over
   the bytes read at the source, checked after the (possibly damaged)
   transfer, and the payload is additionally held to the segment's
   recorded CRC32 — a stale or rotten source copy is as unusable as a
   corrupted transfer. *)
let fetch_segment t ~from:(name, vfs) ~file ~off ~len ~crc =
  if not (Vfs.file_exists vfs file) then None
  else begin
    let f = Vfs.open_file vfs file in
    if Vfs.size f < off + len then None
    else begin
      let payload = Vfs.read f ~off ~len in
      let envelope = Util.Crc32.digest_bytes payload in
      let payload =
        if not t.corrupt_transfer then payload
        else begin
          t.corrupt_transfer <- false;
          let damaged = Bytes.copy payload in
          let target = Bytes.length damaged / 2 in
          Bytes.set damaged target (Char.chr (Char.code (Bytes.get damaged target) lxor 0x01));
          damaged
        end
      in
      if Util.Crc32.digest_bytes payload <> envelope then None (* damaged in transit *)
      else if envelope <> crc then None (* source copy rotten or stale *)
      else Some (name, payload)
    end
  end

let heal_segment t ~store ~pool:pname ~pseg =
  match Store.pool store pname with
  | exception Not_found -> Error (Printf.sprintf "no pool named %s" pname)
  | pool -> (
    match (List.assoc_opt pseg (Store.pool_segments pool), Store.segment_crc pool pseg) with
    | None, _ | _, None -> Error (Printf.sprintf "%s/pseg %d has no on-disk image" pname pseg)
    | Some (off, len), Some crc -> (
      let file = Journal.data_file t.journal in
      let sources =
        ("primary", t.pvfs)
        :: List.filter_map (fun sb -> if is_healthy sb then Some (sb.sname, sb.svfs) else None)
             t.group
      in
      match
        List.find_map (fun from -> fetch_segment t ~from ~file ~off ~len ~crc) sources
      with
      | None ->
        Error
          (Printf.sprintf "no group member holds a verified copy of %s/pseg %d (tried %s)"
             pname pseg
             (String.concat ", " (List.map fst sources)))
      | Some (name, payload) -> (
        (* The journaled rewrite on the primary is the single repair
           path: its commit ships to every healthy standby, so one heal
           converges the whole group (rewriting already-good bytes is
           idempotent). *)
        match Store.repair_segment pool ~pseg payload with
        | Ok () -> Ok name
        | Error e -> Error e)))

let promote t =
  let best =
    List.fold_left
      (fun acc (sb : standby) ->
        if not (is_healthy sb) then acc
        else
          match acc with
          | Some b when b.applied >= sb.applied -> acc
          | _ -> Some sb)
      None t.group
  in
  match best with
  | None -> failwith "Replica.promote: no healthy standby"
  | Some sb -> (info_of t sb, sb.svfs)
