type standby = {
  sname : string;
  svfs : Vfs.t;
  sjournal : Journal.t; (* log + data on the standby's own file system *)
  mutable applied : int;
  mutable healthy : bool;
  mutable reason : string option;
  mutable paused : bool;
  mutable backlog : (int * bytes) list; (* newest first, while paused *)
  mutable corrupt_next : bool;
}

type t = {
  journal : Journal.t; (* the primary's *)
  group : standby list; (* attach order *)
}

type standby_info = {
  name : string;
  applied_lsn : int;
  lag : int;
  healthy : bool;
  paused : bool;
  reason : string option;
}

let fail (sb : standby) msg =
  sb.healthy <- false;
  sb.reason <- Some msg

(* Land the shipped image in the standby's log, make it durable (the
   standby's commit point), then run the ordinary CRC-verified recovery
   path to apply it.  A batch that fails verification is Discarded by
   recovery — the standby refuses it and goes unhealthy rather than
   diverge. *)
let apply sb ~lsn image =
  if lsn <> sb.applied + 1 then
    fail sb (Printf.sprintf "shipment gap: got lsn %d after %d" lsn sb.applied)
  else begin
    let image =
      if not sb.corrupt_next then image
      else begin
        sb.corrupt_next <- false;
        let damaged = Bytes.copy image in
        let target = Bytes.length damaged / 2 in
        Bytes.set damaged target (Char.chr (Char.code (Bytes.get damaged target) lxor 0x40));
        damaged
      end
    in
    match
      let log = Vfs.open_file sb.svfs (Journal.log_file sb.sjournal) in
      Vfs.truncate log 0;
      ignore (Vfs.append log image);
      Vfs.fsync log;
      Journal.recover sb.sjournal
    with
    | Journal.Replayed _ -> sb.applied <- lsn
    | Journal.Discarded _ | Journal.Clean ->
      fail sb (Printf.sprintf "batch %d failed CRC verification, rejected" lsn)
    | exception Vfs.Crash -> fail sb (Printf.sprintf "standby device crashed applying batch %d" lsn)
  end

let receive (sb : standby) ~lsn image =
  if sb.healthy then
    if sb.paused then sb.backlog <- (lsn, image) :: sb.backlog else apply sb ~lsn image

let attach store ~standbys =
  let journal =
    match Store.journal store with
    | None -> invalid_arg "Replica.attach: store has no journal enabled"
    | Some j -> j
  in
  if Journal.in_batch journal then invalid_arg "Replica.attach: batch open on the primary";
  let seen = Hashtbl.create 4 in
  let primary_vfs_file = Journal.data_file journal in
  let group =
    List.map
      (fun (sname, svfs) ->
        if Hashtbl.mem seen sname then
          invalid_arg ("Replica.attach: duplicate standby name: " ^ sname);
        Hashtbl.add seen sname ();
        (* Bootstrap: the standby starts from a durable copy of the
           primary data file as it stands now; everything after arrives
           through the commit stream. *)
        Vfs.copy_file (Store.vfs store) primary_vfs_file ~into:svfs;
        {
          sname;
          svfs;
          sjournal =
            Journal.attach svfs ~log_file:(Journal.log_file journal)
              ~data_file:primary_vfs_file;
          applied = 0;
          healthy = true;
          reason = None;
          paused = false;
          backlog = [];
          corrupt_next = false;
        })
      standbys
  in
  List.iter (fun sb -> Journal.on_commit journal (fun ~lsn image -> receive sb ~lsn image)) group;
  { journal; group }

let primary_lsn t = Journal.lsn t.journal

let find t name =
  match List.find_opt (fun sb -> String.equal sb.sname name) t.group with
  | Some sb -> sb
  | None -> raise Not_found

let info_of t sb =
  {
    name = sb.sname;
    applied_lsn = sb.applied;
    lag = primary_lsn t - sb.applied;
    healthy = sb.healthy;
    paused = sb.paused;
    reason = sb.reason;
  }

let info t = List.map (info_of t) t.group
let standby_vfs t ~name = (find t name).svfs
let pause t ~name = (find t name).paused <- true

let resume t ~name =
  let sb = find t name in
  sb.paused <- false;
  let pending = List.rev sb.backlog in
  sb.backlog <- [];
  List.iter (fun (lsn, image) -> if sb.healthy then apply sb ~lsn image) pending

let corrupt_next_shipment t ~name = (find t name).corrupt_next <- true

let promote t =
  let best =
    List.fold_left
      (fun acc (sb : standby) ->
        if not sb.healthy then acc
        else
          match acc with
          | Some b when b.applied >= sb.applied -> acc
          | _ -> Some sb)
      None t.group
  in
  match best with
  | None -> failwith "Replica.promote: no healthy standby"
  | Some sb -> (info_of t sb, sb.svfs)
