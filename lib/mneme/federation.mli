(** Multiple Mneme files open simultaneously.

    "An object's identifier is unique only within the object's file.
    Multiple files may be open simultaneously, however, so object
    identifiers are mapped to globally unique identifiers when the
    objects are accessed.  This allows a potentially unlimited number of
    objects to be created by allocating a new file when the previous
    file's object identifiers have been exhausted.  The number of
    objects that may be accessed simultaneously is bounded by the number
    of globally unique identifiers (currently 2^28)."

    A federation mounts stores and hands out global ids {e dynamically,
    at access time}, exactly as described: the global id space is a
    finite pool (default 2^28); ids are assigned on first access and can
    be {!release}d back when an object is no longer in use, so the bound
    is on simultaneous access, not on collection size. *)

type t

type gid = private int
(** A globally unique object identifier, valid until released. *)

val create : ?capacity:int -> unit -> t
(** [capacity] bounds simultaneously accessible objects (default 2^28).
    Raises [Invalid_argument] if non-positive. *)

val capacity : t -> int

val mount : t -> name:string -> Store.t -> int
(** Register a store under [name]; returns its file handle.  Raises
    [Invalid_argument] if the name is already mounted. *)

val unmount : t -> int -> unit
(** Drop a mount and release every global id pointing into it.  Raises
    [Not_found] for an unknown handle. *)

val handle_of_name : t -> string -> int option
val store_of : t -> int -> Store.t
(** Raises [Not_found]. *)

val globalize : t -> handle:int -> Oid.t -> gid
(** Map a file-local id to its global id, assigning one on first access.
    Raises [Not_found] for an unknown handle and [Failure] when the
    global id space is exhausted. *)

val locate : t -> gid -> int * Oid.t
(** [(handle, local id)] behind a global id.  Raises [Not_found] if the
    gid is unassigned (e.g. already released). *)

val get : t -> gid -> bytes
(** Fetch the object behind a global id (via its store's pools/buffers).
    Raises like {!Store.get} and {!locate}. *)

val get_opt : t -> gid -> bytes option

val release : t -> gid -> unit
(** Return the global id to the pool.  Releasing an unassigned gid is a
    no-op. *)

val in_use : t -> int
(** Currently assigned global ids. *)

val free_ids : t -> int
(** Global ids still available: the released pool plus the
    never-assigned tail.  [in_use t + free_ids t = capacity t] is an
    invariant — any shortfall means the federation leaked ids. *)
