type damage = { pool : string; pseg : int; off : int; len : int; crc : int }

type progress = { scanned : int; scanned_bytes : int; total : int; complete : bool }

type item = { it_pool : Store.pool; it_damage : damage }

type t = {
  store : Store.t;
  live_only : bool;
  mutable census : item array; (* pools in registration order, psegs ascending *)
  mutable cursor : int;
  mutable bytes_done : int;
  mutable found : damage list; (* reverse walk order *)
}

let live_psegs pool =
  (* Physical segments owning at least one live slot.  Epoch GC can
     drain a segment completely; its bytes are then stranded, not
     served, so a live-only scrub skips re-reading them. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, slots) ->
      Array.iter (fun pseg -> if pseg >= 0 then Hashtbl.replace tbl pseg ()) slots)
    (Store.pool_slot_tables pool);
  tbl

let take_census ~live_only store =
  Store.pools store
  |> List.concat_map (fun pool ->
         let pname = Store.pool_name pool in
         let live = if live_only then Some (live_psegs pool) else None in
         Store.pool_segments pool
         |> List.filter_map (fun (pseg, (off, len)) ->
                match live with
                | Some tbl when not (Hashtbl.mem tbl pseg) -> None
                | _ -> (
                  match Store.segment_crc pool pseg with
                  | None -> None
                  | Some crc ->
                    Some { it_pool = pool; it_damage = { pool = pname; pseg; off; len; crc } })))
  |> Array.of_list

let create ?(live_only = false) store =
  { store; live_only; census = take_census ~live_only store; cursor = 0; bytes_done = 0; found = [] }

let restart t =
  t.census <- take_census ~live_only:t.live_only t.store;
  t.cursor <- 0;
  t.bytes_done <- 0;
  t.found <- []

let progress t =
  {
    scanned = t.cursor;
    scanned_bytes = t.bytes_done;
    total = Array.length t.census;
    complete = t.cursor >= Array.length t.census;
  }

let damages t = List.rev t.found

let step ?max_segments ?max_bytes t =
  let budget =
    try Budget.create ?max_segments ?max_bytes ()
    with Invalid_argument _ ->
      invalid_arg "Scrub.step: max_segments/max_bytes must be positive"
  in
  let total = Array.length t.census in
  let meter = Budget.meter () in
  while t.cursor < total && Budget.within budget meter do
    let item = t.census.(t.cursor) in
    (* The CRC re-read goes through the store (and its cost model),
       bypassing buffered copies — on-disk truth or nothing. *)
    if not (Store.verify_segment_crc item.it_pool item.it_damage.pseg) then
      t.found <- item.it_damage :: t.found;
    Budget.charge meter ~segments:1 ~bytes:item.it_damage.len;
    t.cursor <- t.cursor + 1;
    t.bytes_done <- t.bytes_done + item.it_damage.len
  done;
  progress t

let run ?live_only store =
  let t = create ?live_only store in
  ignore (step t);
  damages t

let damage_of_segment store ~pool:pname ~pseg =
  match Store.pool store pname with
  | exception Not_found -> None
  | pool -> (
    match (List.assoc_opt pseg (Store.pool_segments pool), Store.segment_crc pool pseg) with
    | Some (off, len), Some crc -> Some { pool = pname; pseg; off; len; crc }
    | _ -> None)

let verified_bytes vfs ~file d =
  if not (Vfs.file_exists vfs file) then None
  else begin
    let f = Vfs.open_file vfs file in
    if Vfs.size f < d.off + d.len then None
    else begin
      let bytes = Vfs.read f ~off:d.off ~len:d.len in
      if Util.Crc32.digest_bytes bytes = d.crc then Some bytes else None
    end
  end

let heal store ~sources d =
  match Store.pool store d.pool with
  | exception Not_found -> Error (Printf.sprintf "no pool named %s" d.pool)
  | pool -> (
    match damage_of_segment store ~pool:d.pool ~pseg:d.pseg with
    | Some current when current = d -> (
      let file = Store.file_name store in
      match
        List.find_map
          (fun (name, vfs) ->
            match verified_bytes vfs ~file d with
            | Some bytes -> Some (name, bytes)
            | None -> None)
          sources
      with
      | None ->
        Error
          (Printf.sprintf "no source holds a verified copy of %s/pseg %d (tried %s)" d.pool
             d.pseg
             (String.concat ", " (List.map fst sources)))
      | Some (name, bytes) -> (
        match Store.repair_segment pool ~pseg:d.pseg bytes with
        | Ok () -> Ok name
        | Error e -> Error e))
    | Some _ -> Error (Printf.sprintf "stale damage record for %s/pseg %d" d.pool d.pseg)
    | None -> Error (Printf.sprintf "%s/pseg %d has no on-disk image" d.pool d.pseg))
