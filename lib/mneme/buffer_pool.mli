(** Extensible buffer management.

    A buffer holds resident physical segments for the pools attached to
    it, within a byte budget.  Replacement is pluggable — the paper's
    configuration is LRU per pool plus a {e reservation} optimisation:
    before a query runs, objects named by the query tree that are
    already resident are pinned, "potentially avoiding a bad replacement
    choice".  FIFO and Clock policies are provided for the
    replacement-policy ablation.

    A buffer with capacity 0 is {e transient}: every fault loads the
    segment, hands it to the caller, and retains nothing — this is the
    paper's "Mneme, no cache" configuration, where no inverted-list data
    is cached across record accesses (the simulated OS file cache
    underneath still works, exactly as in the paper).

    Hit statistics are reported per buffer exactly as in the paper's
    Table 6: one {e reference} per fault, a {e hit} when the segment was
    already resident.  The record is the unified {!Util.Cache_stats.t}
    shared by every cache layer (buffer pool, decoded-block cache,
    query-result cache), so per-layer reports merge with one fold.

    {b Domain-safety contract.}  A buffer is {e not} internally
    synchronised: all operations on one [t] must come from a single
    domain.  The multicore query executor ({!Core.Parallel}) therefore
    gives each worker domain its own buffer session over its own
    read-only store image — no lock on the fault path — and merges the
    per-session counters afterwards with {!merge_stats}, which restores
    the single-session Table 6 totals exactly (references and hits are
    plain sums; residency is whatever each session held at merge
    time). *)

type policy = Lru | Fifo | Clock

type t

type stats = Util.Cache_stats.t = {
  refs : int;
  hits : int;
  evictions : int;
  invalidations : int;  (** {!drop}ped or {!clear}ed segments *)
  resident_bytes : int;
  resident_entries : int;
}

val create : name:string -> capacity:int -> ?policy:policy -> unit -> t
(** [capacity] is in bytes; 0 means transient.  Raises
    [Invalid_argument] if negative. *)

val name : t -> string
val capacity : t -> int
val policy : t -> policy

val fault : t -> pseg:int -> load:(unit -> bytes) -> bytes
(** [fault t ~pseg ~load] returns the segment's bytes, calling [load]
    (which performs the file read) on a miss.  Counts one reference, and
    a hit if resident.  On a miss the segment is inserted and victims
    are evicted (skipping pinned segments) until the budget holds; when
    every other segment is pinned, the incoming segment itself is the
    victim, so pinned bytes are never displaced. *)

val resident : t -> pseg:int -> bool
(** Residency test; does not count a reference or disturb recency. *)

val pin : t -> pseg:int -> bool
(** Pin if resident; returns whether it was.  Pins nest. *)

val unpin : t -> pseg:int -> unit
(** Raises [Invalid_argument] if the segment is not resident or not
    pinned. *)

val pinned_segments : t -> int list
(** Resident segments with at least one pin, ascending — a correct
    engine leaves this empty between queries (reservations must not
    leak, even when evaluation raises).  Costs O(pinned), not
    O(resident): the common empty answer is free no matter how full the
    buffer is. *)

val update : t -> pseg:int -> bytes -> unit
(** Replace the resident copy after a write-through modification; no-op
    if not resident. *)

val drop : t -> pseg:int -> unit
(** Invalidate a segment (after relocation); no-op if absent. *)

val clear : t -> unit
(** Evict everything, pinned included; statistics are kept. *)

val stats : t -> stats
val reset_stats : t -> unit

val merge_stats : stats list -> stats
(** Component-wise sum — one paper-faithful Table 6 report from the
    per-domain buffer sessions of a parallel run.  [merge_stats []] is
    all zeros. *)
