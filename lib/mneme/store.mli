(** The Mneme persistent object store.

    Basic services: storage and retrieval of {e objects} — chunks of
    contiguous bytes with unique identifiers.  Mneme has no notion of
    type or class; object format is the business of the pool that owns
    the object.  Objects are grouped physically into segments (the disk
    transfer unit) and logically into 255-object logical segments;
    location goes through compact auxiliary tables that stay cached
    after their first access, which is why a warm Mneme lookup costs
    about one file access (the paper's A ~ 1.02-1.07 without caching).

    Lifecycle: [create] (or [open_existing]) → [add_pool] for each
    policy → [attach_buffer] → [allocate]/[get]/[modify]/[delete] →
    [finalize] to persist the auxiliary tables.  A finalized file
    re-opened with [open_existing] loads its auxiliary tables lazily, on
    the first access to each pool — charging the simulated I/O exactly
    once, as the paper describes.

    {b Domain-safety contract.}  A store session — the [t], its pools,
    their attached {!Buffer_pool}s and the underlying {!Vfs} — is
    single-domain: nothing here is internally synchronised, and even a
    "read-only" [get] mutates session state (auxiliary-table caches,
    buffer recency lists, the simulated clock).  Concurrent serving
    therefore uses one {e session per domain}, each opened with
    [open_existing] over that domain's own copy of the finalized
    (read-only) file image; sessions never share mutable state, so the
    postings hot path carries no lock.  {!Core.Parallel} is the
    reference implementation of this pattern. *)

type t
type pool

exception Corrupt of string
(** Raised when the file contents contradict the format. *)

val create : Vfs.t -> string -> t
(** Fresh store in a new file.  Raises [Invalid_argument] if the file
    exists. *)

val open_existing : Vfs.t -> string -> t
(** Re-open a finalized store.  Raises [Corrupt] on format errors. *)

val add_pool : t -> Policy.t -> pool
(** Register a pool.  On a re-opened store, a pool with the same policy
    name recovers its persisted contents.  Raises [Invalid_argument] if
    the name is already taken by a live pool handle. *)

val pool : t -> string -> pool
(** Look up a registered pool by name.  Raises [Not_found]. *)

val pool_name : pool -> string
val pool_policy : pool -> Policy.t

val attach_buffer : pool -> Buffer_pool.t -> unit
(** Attach the buffer the pool will fault segments through.  A pool must
    have a buffer attached before [get]/[modify]/[delete] touch it.
    Replacing the buffer is allowed (used by the buffer-size sweep). *)

val buffer : pool -> Buffer_pool.t option

val allocate : pool -> bytes -> Oid.t
(** Store a new object, returning its id.  Raises [Invalid_argument] if
    the object exceeds a fixed-slot pool's payload bound, and [Failure]
    if the 28-bit id space is exhausted. *)

val get : t -> Oid.t -> bytes
(** Retrieve an object's bytes.  Raises [Not_found] if the id was never
    allocated or was deleted, and [Corrupt] if the object's physical
    segment fails its CRC32 when faulted from disk — corrupted data is
    never silently returned. *)

val get_opt : t -> Oid.t -> bytes option

val exists : t -> Oid.t -> bool
(** Consults only the (cached) auxiliary tables — no segment fault. *)

val object_size : t -> Oid.t -> int option
(** Size from the segment directory; faults the segment like [get]. *)

val modify : t -> Oid.t -> bytes -> unit
(** Replace an object's contents in place when the new value fits the
    old extent; otherwise the object is relocated to fresh segment
    space (the old space is wasted — see [wasted_bytes]).  Fixed-slot
    objects may grow up to the slot payload.  Raises [Not_found] or
    [Invalid_argument] like [allocate]. *)

val delete : t -> Oid.t -> unit
(** Drop the object.  Raises [Not_found] if absent. *)

val reserve : t -> Oid.t list -> (unit -> unit)
(** The paper's query-tree reservation: pin the segments of every
    listed object that is {e already resident} in its pool's buffer,
    and return a release function to call when the query completes. *)

val finalize : t -> unit
(** Flush open creation segments, persist the auxiliary tables and
    header.  Idempotent; must be called before [open_existing] can see
    the data. *)

val vfs : t -> Vfs.t
(** The file system this store lives in. *)

val file_name : t -> string
(** Name of the store's data file. *)

val file_size : t -> int
val object_count : t -> int
val pool_object_count : pool -> int
val wasted_bytes : t -> int
(** Bytes stranded by relocations and deletions — the paper's
    "space management problem" made measurable. *)

val aux_table_bytes : t -> int
(** Size of the persisted auxiliary tables (0 before finalize); compare
    with the paper's footnote that all of TIPSTER's tables fit 512 KB. *)

(** {2 The versioned root}

    One object per store may be designated the {e root}: the sealed
    object directory of the latest published epoch (see {!Epoch}).  The
    header records the epoch number and the root's oid; both persist
    with the next {!finalize}, so inside a {!transact} the root switch
    commits atomically with the objects it names — the journal's commit
    marker is the only commit point.  Stores written before epochs
    existed read back as epoch 0 with no root. *)

val epoch : t -> int
(** Latest published epoch recorded in the header (0 = never
    published). *)

val root : t -> Oid.t option
(** The sealed root object of [epoch], if one was published. *)

val set_root : t -> epoch:int -> root:Oid.t option -> unit
(** Record the new epoch and root in the in-memory header; call
    {!finalize} (inside the publishing transaction) to persist them.
    {!compact} carries both across, since object ids are preserved.
    Raises [Invalid_argument] on a negative epoch or oid. *)

val locate_pseg : t -> Oid.t -> int option
(** Physical segment id holding the object, if any — exposed so the
    integrated system can reserve and so tests can assert clustering. *)

val pool_of_oid : t -> Oid.t -> pool option

(** {2 Transactions and recovery}

    The data management services the paper lists as future work
    ("recovery ... transaction support"), provided by a redo journal
    ({!Journal}).  With a journal enabled, updates grouped under
    {!transact} reach the data file atomically: after a crash,
    {!recover_journal} replays a committed batch or discards an
    uncommitted one, so the store is always transaction-consistent.
    The ablation harness measures the overhead (the paper's conjecture:
    "we expect that the addition of these services would not introduce
    excessive overhead"). *)

val enable_journal : t -> log_file:string -> unit
(** Route this store's data-file writes through a redo journal kept in
    [log_file].  Raises [Invalid_argument] if already enabled. *)

val journal : t -> Journal.t option

val transact : t -> (unit -> 'a) -> 'a
(** [transact t f] runs [f] with all store writes captured, then commits
    them atomically.  If [f] raises, the batch is aborted (the data file
    is untouched) and the exception re-raised — in that case the
    {e in-memory} handle may have advanced past the on-disk state
    (allocation counters, segment tables), so discard it and re-open
    the store, exactly as a crashed process would.  Raises
    [Invalid_argument] if no journal is enabled. *)

val recover_journal : Vfs.t -> file:string -> log_file:string -> Journal.recovery
(** Run crash recovery for a store file and its journal log before
    re-opening the store. *)

(** {2 Introspection}

    Read-only access to the location tables and segment formats, for
    the integrity checker ({!Check}) and tests. *)

val pools : t -> pool list
(** Registered pools, in registration order (forces aux loading). *)

val pool_segments : pool -> (int * (int * int)) list
(** [(pseg id, (file offset, length))] for every flushed physical
    segment, ascending by id. *)

val segment_crc : pool -> int -> int option
(** CRC32 recorded for a flushed physical segment (computed when the
    segment was written; verified on every fault from disk, so a
    corrupted segment raises [Corrupt] instead of returning garbage).
    [None] while the segment is still open in memory. *)

val verify_segment_crc : pool -> int -> bool
(** Re-read the segment from the file — bypassing any buffered copy —
    and check it against the recorded CRC32.  [true] for a segment that
    has no on-disk image yet. *)

val repair_segment : pool -> pseg:int -> bytes -> (unit, string) result
(** [repair_segment pool ~pseg replacement] rewrites a flushed physical
    segment in place from a known-good copy of its bytes.  The
    replacement must match the segment's recorded length {e and} CRC32
    exactly — [Error], with nothing written, otherwise: a repair is only
    a repair if the result is byte-identical to what was originally
    written.  With a journal enabled the rewrite commits as its own
    transaction (unless a batch is already open, in which case it rides
    that batch), so a crash mid-heal recovers to either the damaged or
    the healed image, never a torn mix — and the rewrite ships to any
    attached replica group like any other commit.  Without a journal the
    segment is written and fsynced directly.  Any buffered copy is
    refreshed.  [Error] for a segment with no on-disk image. *)

val pool_slot_tables : pool -> (int * int array) list
(** [(lseg, slots)] pairs, ascending by lseg; each slot holds the
    physical segment id or -1.  The arrays are copies. *)

val segment_raw : pool -> int -> bytes
(** Fault a physical segment through the pool's buffer and return its
    bytes.  Raises [Corrupt] for an unknown id and [Invalid_argument]
    if no buffer is attached. *)

val parse_packed_directory : bytes -> (Oid.t * int * int) list
(** Directory of a packed segment: [(oid, offset, length)] entries.
    Raises [Corrupt] on a malformed directory. *)

val fixed_slot_length : slot_size:int -> bytes -> slot:int -> int option
(** Payload length stored in a fixed-layout segment slot, or [None] if
    the slot is empty.  Raises [Corrupt] if the slot lies outside the
    segment. *)

val compact : t -> file:string -> t
(** [compact t ~file] rewrites the store into a fresh file, dropping
    every stranded extent left by relocations and deletions (the
    "holes" the paper worries about).  Object ids are preserved — the
    hash-dictionary locators remain valid against the compacted store —
    and [wasted_bytes] of the result is 0.  The source must be
    finalized ([Invalid_argument] otherwise) and needs buffers attached
    (objects are read through them); attach buffers to the result's
    pools before querying it. *)
