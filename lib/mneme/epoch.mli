(** Epoch-versioned roots and pinned-epoch garbage collection.

    The partial-persistence discipline for a live Mneme index: writers
    never overwrite a live object — every mutation writes {e new}
    objects and publishes a new {e epoch} whose sealed root names the
    complete object directory for that version.  Readers {!pin} an
    epoch and keep fetching its objects untouched no matter how much
    mutation happens after; objects made stale by later epochs are
    reclaimed only when no pinned epoch can still reach them.

    Two independent pieces live here:

    - the {e root envelope} ({!seal}/{!unseal}): a CRC32-sealed wrapper
      for the root payload, so a torn or bit-flipped root is detected
      as corruption rather than parsed — the envelope, written inside
      one journal commit, is the root-switch commit point;
    - the {e pin/GC manager} ({!t}): in-memory lifetime intervals
      [birth, death) per object, a multiset of pinned epochs, and a
      collector that reclaims exactly the stale objects no pin can
      reach.  The manager is session state — it is rebuilt on reopen
      from the surviving root (everything not named by the root is
      stale by definition). *)

(** {1 The sealed root envelope} *)

val seal : epoch:int -> bytes -> bytes
(** [seal ~epoch payload] wraps [payload] as a root for [epoch]:
    magic, epoch, length, payload, CRC32 over everything preceding.
    Raises [Invalid_argument] if [epoch] is negative or exceeds 32
    bits. *)

val unseal : bytes -> (int * bytes, string) result
(** Open an envelope, verifying magic, length and CRC32.  Returns the
    epoch and the payload, or a diagnosis of how the root is torn. *)

(** {1 The pin/GC manager} *)

type t

type pin
(** A reader's claim on one epoch.  Release exactly once. *)

type gc_stats = {
  reclaimed_objects : int;
  reclaimed_bytes : int;
  retained_objects : int;  (** stale but reachable from a pinned epoch *)
  retained_bytes : int;
}

val create : epoch:int -> t
(** A manager whose latest published epoch is [epoch] (the header epoch
    of the store being served). *)

val latest : t -> int

(** {2 Writer protocol}

    Between two publishes the writer notes every object that enters
    ([born]) or leaves ([retired]) the directory; {!publish} then turns
    the notes into lifetime intervals: born objects live from the new
    epoch, retired ones stop being visible at it. *)

val born : t -> oid:Oid.t -> size:int -> unit
(** A freshly allocated object that the {e next} published epoch will
    reference.  Raises [Invalid_argument] if the oid is already live. *)

val adopt : t -> oid:Oid.t -> size:int -> unit
(** An object that predates this manager (wrapping an existing store,
    or reopening from a root): live, with its birth treated as epoch 0
    so any pin taken before its retirement protects it. *)

val adopt_stale : t -> oid:Oid.t -> size:int -> unit
(** An object found in the store but referenced by no surviving epoch
    (an orphan left by earlier epochs of a crashed session): stale and
    immediately reclaimable. *)

val retired : t -> oid:Oid.t -> unit
(** The object leaves the directory at the next publish.  Stays
    fetchable by pins on epochs that could see it.  Raises
    [Invalid_argument] if the oid is not live. *)

val publish : t -> int
(** Seal the current mutation window: the new latest epoch (old + 1).
    Call {e after} the root switch committed — a crash beforehand
    recovers to the previous epoch and the notes die with the
    session. *)

(** {2 Reader protocol} *)

val pin : t -> pin
(** Pin the latest epoch. *)

val pin_epoch : pin -> int

val release : t -> pin -> unit
(** Raises [Invalid_argument] on double release. *)

val pinned : t -> int list
(** Pinned epochs, ascending, with multiplicity. *)

(** {2 Collection} *)

val collect : t -> reclaim:(oid:Oid.t -> size:int -> unit) -> gc_stats
(** Reclaim every stale object whose lifetime [birth, death) contains
    no pinned epoch and whose retirement is published ([death <=
    latest]) — [reclaim] is called once per object (typically
    {!Store.delete}, folding the bytes into {!Store.wasted_bytes}).
    Objects still reachable from a pin are retained and reported. *)

val live_objects : t -> int
val stale_objects : t -> int

val stranded_bytes : t -> int
(** Bytes held by stale-but-unreclaimed objects.  Returns to zero after
    a {!collect} with no pins outstanding. *)
