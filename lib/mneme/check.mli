(** Store integrity checking (fsck for Mneme files).

    Walks a finalized store's auxiliary tables and physical segments and
    cross-checks every invariant the format promises:

    - each pool's segment directory entries lie inside the file and do
      not overlap each other;
    - every logical-segment slot points at a physical segment that
      exists and actually contains that object id (packed layout) or a
      populated slot (fixed layout);
    - segment directories are well-formed (extents inside the segment,
      no overlaps);
    - every flushed segment's on-disk bytes match the CRC32 recorded
      when the segment was written (read fresh from the file, so a
      clean buffered copy cannot mask on-disk corruption);
    - per-pool object counts match the live slot counts, and their sum
      matches the store header.

    Damage is {e reported, never raised}: a truncated file (segment
    extents past EOF), overlapping directory entries, or a corrupted
    segment all become problems in the report — fsck must survive
    anything the disk can do to the file.

    Used by tests, and available to applications as a recovery-time
    sanity pass (e.g. after {!Store.recover_journal}). *)

type problem = { where : string; what : string }

type report = {
  problems : problem list;
  objects_seen : int;
  psegs_seen : int;
  pools_seen : int;
}

val ok : report -> bool
(** No problems found. *)

val run : ?object_check:(bytes -> (unit, string) result) -> Store.t -> report
(** Check a store (pools load lazily as needed; buffers must be
    attached to the pools since segments are faulted for inspection).

    [object_check], when given, is applied to every live object's
    payload bytes — the hook for format-aware validation the store
    itself cannot do (e.g. {!Inquery.Postings.validate} checking
    skip-table invariants of inverted-list records).  An [Error] from
    the checker, an exception it raises, or an unreadable payload each
    become a report problem; fsck still never raises. *)

val pp_report : Format.formatter -> report -> unit
