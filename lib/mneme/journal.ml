type t = {
  vfs : Vfs.t;
  log : Vfs.file;
  data : Vfs.file;
  mutable batch : (int * bytes) list option; (* newest first, None = no batch *)
  mutable logged_bytes : int;
  mutable committed_lsn : int;
  mutable subscribers : (lsn:int -> bytes -> unit) list; (* reverse order *)
}

let terminator = 0xffffffffffffff (* fits u64 writer (non-negative OCaml int) *)

let create vfs ~log_file ~data_file =
  let log = Vfs.open_file vfs log_file in
  Vfs.truncate log 0;
  {
    vfs;
    log;
    data = Vfs.open_file vfs data_file;
    batch = None;
    logged_bytes = 0;
    committed_lsn = 0;
    subscribers = [];
  }

let attach vfs ~log_file ~data_file =
  {
    vfs;
    log = Vfs.open_file vfs log_file;
    data = Vfs.open_file vfs data_file;
    batch = None;
    logged_bytes = 0;
    committed_lsn = 0;
    subscribers = [];
  }

let log_file t = Vfs.file_name t.log
let data_file t = Vfs.file_name t.data
let lsn t = t.committed_lsn
let on_commit t f = t.subscribers <- f :: t.subscribers

let in_batch t = t.batch <> None

let begin_batch t =
  if in_batch t then invalid_arg "Journal.begin_batch: batch already open";
  t.batch <- Some []

let write t ~off b =
  match t.batch with
  | None -> Vfs.write t.data ~off b
  | Some pending -> t.batch <- Some ((off, Bytes.copy b) :: pending)

(* Read [off, off+len) as if pending writes had been applied: start from
   the data file (zero-padded past its end) and overlay each pending
   write, oldest first. *)
let read t ~off ~len =
  match t.batch with
  | None -> Vfs.read t.data ~off ~len
  | Some pending ->
    let visible_size =
      List.fold_left
        (fun acc (o, b) -> max acc (o + Bytes.length b))
        (Vfs.size t.data) pending
    in
    if off < 0 || len < 0 || off + len > visible_size then
      invalid_arg "Journal.read: range outside visible data";
    let out = Bytes.make len '\000' in
    let data_size = Vfs.size t.data in
    let from_data = min len (max 0 (data_size - off)) in
    if from_data > 0 then Bytes.blit (Vfs.read t.data ~off ~len:from_data) 0 out 0 from_data;
    List.iter
      (fun (o, b) ->
        let blen = Bytes.length b in
        let lo = max off o and hi = min (off + len) (o + blen) in
        if lo < hi then Bytes.blit b (lo - o) out (lo - off) (hi - lo))
      (List.rev pending);
    out

let data_size t =
  match t.batch with
  | None -> Vfs.size t.data
  | Some pending ->
    List.fold_left (fun acc (o, b) -> max acc (o + Bytes.length b)) (Vfs.size t.data) pending

let pending_writes t = match t.batch with None -> 0 | Some p -> List.length p
let log_bytes_written t = t.logged_bytes

let apply_to_data t writes = List.iter (fun (off, b) -> Vfs.write t.data ~off b) writes

let commit t =
  match t.batch with
  | None -> invalid_arg "Journal.commit: no batch open"
  | Some pending ->
    let writes = List.rev pending in
    (* 1. Write-ahead: every record, then the commit marker sealing the
       records with a CRC32 over their serialised image.  The batch is
       committed the instant the log fsync completes — a torn log tail
       or a bit-flipped record fails the CRC and is discarded. *)
    let buf = Buffer.create 4096 in
    List.iter
      (fun (off, b) ->
        Util.Bin.buf_u64 buf off;
        Util.Bin.buf_u32 buf (Bytes.length b);
        Buffer.add_bytes buf b)
      writes;
    let records = Buffer.to_bytes buf in
    Util.Bin.buf_u64 buf terminator;
    Util.Bin.buf_u32 buf (Util.Crc32.digest_bytes records);
    let log_image = Buffer.to_bytes buf in
    Vfs.truncate t.log 0;
    ignore (Vfs.append t.log log_image);
    Vfs.fsync t.log;
    t.logged_bytes <- t.logged_bytes + Bytes.length log_image;
    (* The batch is now committed: stream the sealed image to
       subscribers before the apply phase, so a crash while applying
       still leaves every replica holding the committed batch. *)
    t.committed_lsn <- t.committed_lsn + 1;
    List.iter (fun f -> f ~lsn:t.committed_lsn log_image) (List.rev t.subscribers);
    (* 2. Apply to the data file, and make it durable before the log is
       dropped — otherwise the checkpoint could outlive the data. *)
    apply_to_data t writes;
    Vfs.fsync t.data;
    (* 3. Checkpoint: the batch is durable, drop the log. *)
    Vfs.truncate t.log 0;
    t.batch <- None

let abort t =
  match t.batch with
  | None -> invalid_arg "Journal.abort: no batch open"
  | Some _ -> t.batch <- None

type recovery = Replayed of int | Discarded of int | Clean

(* Parse the log: (writes, complete) where [complete] means the commit
   marker was found and its CRC32 matches the record image — anything
   else (torn tail, bit flip, garbage) makes the batch incomplete. *)
let parse_log bytes =
  let size = Bytes.length bytes in
  let rec go pos acc =
    if pos + 12 > size then (List.rev acc, false)
    (* The marker is matched on the raw 8 bytes: a decoder working in
       OCaml's 63-bit ints cannot see bit 63, and a damaged marker must
       never pass for a commit. *)
    else if Bytes.get_int64_le bytes pos = Int64.of_int terminator then begin
      let crc = Util.Bin.get_u32 bytes (pos + 8) in
      (List.rev acc, crc = Util.Crc32.digest_sub bytes ~pos:0 ~len:pos)
    end
    else begin
      (* A flipped high bit can push the stored u64 outside OCaml's int
         range; an undecodable offset is corruption, not a crash. *)
      match Util.Bin.get_u64 bytes pos with
      | exception Invalid_argument _ -> (List.rev acc, false)
      | off ->
        let len = Util.Bin.get_u32 bytes (pos + 8) in
        if pos + 12 + len > size then (List.rev acc, false)
        else go (pos + 12 + len) ((off, Bytes.sub bytes (pos + 12) len) :: acc)
    end
  in
  go 0 []

let recover t =
  let size = Vfs.size t.log in
  if size = 0 then Clean
  else begin
    let image = Vfs.read t.log ~off:0 ~len:size in
    let writes, complete = parse_log image in
    let result =
      if complete then begin
        apply_to_data t writes;
        (* The replay must be durable before the log is dropped, or a
           second crash would lose the committed batch for good. *)
        Vfs.fsync t.data;
        Replayed (List.length writes)
      end
      else Discarded (List.length writes)
    in
    Vfs.truncate t.log 0;
    result
  end
