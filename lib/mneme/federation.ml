type gid = int

type t = {
  capacity : int;
  stores : (int, Store.t) Hashtbl.t;
  names : (string, int) Hashtbl.t;
  forward : (gid, int * Oid.t) Hashtbl.t;
  backward : (int * Oid.t, gid) Hashtbl.t;
  mutable free : gid list; (* released ids, reused first *)
  mutable next : gid;
  mutable next_handle : int;
}

let create ?(capacity = 1 lsl 28) () =
  if capacity <= 0 then invalid_arg "Federation.create: capacity must be positive";
  {
    capacity;
    stores = Hashtbl.create 4;
    names = Hashtbl.create 4;
    forward = Hashtbl.create 1024;
    backward = Hashtbl.create 1024;
    free = [];
    next = 0;
    next_handle = 0;
  }

let capacity t = t.capacity
let free_ids t = List.length t.free + (t.capacity - t.next)

let mount t ~name store =
  if Hashtbl.mem t.names name then invalid_arg ("Federation.mount: already mounted: " ^ name);
  let handle = t.next_handle in
  t.next_handle <- t.next_handle + 1;
  Hashtbl.add t.stores handle store;
  Hashtbl.add t.names name handle;
  handle

let handle_of_name t name = Hashtbl.find_opt t.names name

let store_of t handle =
  match Hashtbl.find_opt t.stores handle with Some s -> s | None -> raise Not_found

let release t gid =
  match Hashtbl.find_opt t.forward gid with
  | None -> ()
  | Some key ->
    Hashtbl.remove t.forward gid;
    Hashtbl.remove t.backward key;
    t.free <- gid :: t.free

let unmount t handle =
  if not (Hashtbl.mem t.stores handle) then raise Not_found;
  let stale = Hashtbl.fold (fun gid (h, _) acc -> if h = handle then gid :: acc else acc) t.forward [] in
  List.iter (release t) stale;
  Hashtbl.remove t.stores handle;
  let names = Hashtbl.fold (fun n h acc -> if h = handle then n :: acc else acc) t.names [] in
  List.iter (Hashtbl.remove t.names) names

let globalize t ~handle local =
  if not (Hashtbl.mem t.stores handle) then raise Not_found;
  let key = (handle, local) in
  match Hashtbl.find_opt t.backward key with
  | Some gid -> gid
  | None ->
    let gid =
      match t.free with
      | gid :: rest ->
        t.free <- rest;
        gid
      | [] ->
        if t.next >= t.capacity then
          failwith "Federation.globalize: global id space exhausted";
        let gid = t.next in
        t.next <- t.next + 1;
        gid
    in
    Hashtbl.add t.forward gid key;
    Hashtbl.add t.backward key gid;
    gid

let locate t gid =
  match Hashtbl.find_opt t.forward gid with Some key -> key | None -> raise Not_found

let get t gid =
  let handle, local = locate t gid in
  Store.get (store_of t handle) local

let get_opt t gid =
  match Hashtbl.find_opt t.forward gid with
  | None -> None
  | Some (handle, local) -> (
    match Hashtbl.find_opt t.stores handle with
    | None -> None
    | Some store -> Store.get_opt store local)

let in_use t = Hashtbl.length t.forward
