(** Per-step I/O budgets shared by background maintenance work.

    A budget caps one resumable step of background I/O — a scrub pass
    ({!Scrub.step}) or an ingestion merge step — by a number of work
    units ("segments": physical segments verified, memory segments
    folded) and/or by bytes touched.  The accounting rule is uniform:
    a step always performs at least one unit of work, so every step
    makes progress, and then stops at whichever budget trips first.
    Omitted limits are unlimited. *)

type t
(** An immutable budget: limits for one step. *)

type meter
(** Mutable progress accounting for the step in flight. *)

val create : ?max_segments:int -> ?max_bytes:int -> unit -> t
(** Raises [Invalid_argument] on a non-positive limit. *)

val unlimited : t
(** No limits: a single step runs to completion. *)

val meter : unit -> meter
(** A fresh meter with nothing charged. *)

val charge : meter -> segments:int -> bytes:int -> unit
(** Record one unit of completed work against the meter. *)

val segments : meter -> int
(** Work units charged so far. *)

val bytes : meter -> int
(** Bytes charged so far. *)

val within : t -> meter -> bool
(** Whether another unit of work may start: true when nothing has been
    charged yet (guaranteed progress), false as soon as either limit
    has been reached. *)
