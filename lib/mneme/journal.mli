(** Redo-log journaling: atomic multi-write batches with crash recovery.

    The paper's Section 6: "The current version of Mneme is a prototype
    and does not provide all of the services one might expect from a
    mature data management system, such as concurrency control and
    transaction support. ... For future work we plan to implement some
    of the standard data management services not currently provided by
    Mneme and verify the above claim [that they] would not introduce
    excessive overhead."  This module is that service, and the ablation
    harness measures the claim.

    Protocol (classic write-ahead redo):
    - during a batch, target-file writes are captured in the journal's
      pending table instead of reaching the data file; readers see them
      through {!read} (read-your-writes);
    - {!commit} appends every pending write plus a commit marker to the
      log file and {b fsyncs the log} — the commit point — then applies
      the writes to the data file, {b fsyncs the data}, and only then
      truncates the log (checkpoint);
    - {!recover} scans the log: a complete batch bearing its commit
      marker is replayed (the apply phase may have been interrupted) and
      fsynced; an incomplete batch is discarded.  Either way the data
      file ends in a transaction-consistent state.

    Log record: [off u64][len u32][bytes]; batch terminator:
    [0xffffffffffffff u64][CRC32 u32 over the serialised records].
    A torn tail (any truncation point) or a corrupted record (any bit
    flip) fails the CRC and is discarded. *)

type t

val create : Vfs.t -> log_file:string -> data_file:string -> t
(** Journal writes of [data_file] through [log_file].  The log file is
    created empty (or truncated if it exists). *)

val attach : Vfs.t -> log_file:string -> data_file:string -> t
(** Like {!create} but keeps any existing log contents, for {!recover}
    after a simulated crash. *)

val in_batch : t -> bool

val begin_batch : t -> unit
(** Raises [Invalid_argument] if a batch is already open. *)

val write : t -> off:int -> bytes -> unit
(** Inside a batch: capture the write.  Outside a batch: write through
    to the data file directly. *)

val read : t -> off:int -> len:int -> bytes
(** Read through pending captured writes, falling back to the data
    file.  Raises like {!Vfs.read} when the range is outside both. *)

val data_size : t -> int
(** Data-file size as visible through pending writes. *)

val commit : t -> unit
(** Log, apply, checkpoint.  Raises [Invalid_argument] if no batch is
    open. *)

val abort : t -> unit
(** Drop the pending writes; the data file is untouched. *)

type recovery = Replayed of int | Discarded of int | Clean

val recover : t -> recovery
(** Process the log after a crash: [Replayed n] re-applied [n] writes of
    a committed batch, [Discarded n] dropped [n] writes of an
    uncommitted one, [Clean] means the log was empty.  The log is
    truncated afterwards. *)

val pending_writes : t -> int
val log_bytes_written : t -> int
(** Total bytes ever appended to the log — the overhead metric. *)

(** {2 Batch streaming}

    The hook a replica group needs: every committed batch's sealed log
    image (records + commit marker + CRC32) is handed to subscribers
    with its log sequence number, so standbys can replay the primary's
    history byte for byte. *)

val lsn : t -> int
(** Committed batches in this journal's lifetime (the log sequence
    number of the most recent commit; 0 before the first). *)

val on_commit : t -> (lsn:int -> bytes -> unit) -> unit
(** Subscribe to the commit stream.  The callback receives the sealed
    log image of every committed batch, immediately after the log fsync
    (the commit point) and {e before} the apply phase — a primary that
    crashes while applying has already shipped the batch.  Subscribers
    run in subscription order. *)

val log_file : t -> string
(** Name of the log file. *)

val data_file : t -> string
(** Name of the journaled data file. *)
