(** Budgeted background scrubbing: find bit rot before a query does.

    A scrubber walks a store's flushed physical segments in a
    deterministic order (pools in registration order, segment ids
    ascending) and re-verifies each segment's CRC32 {e fresh from disk}
    — the same bypass-the-buffers read {!Check} uses, so a clean
    buffered copy cannot mask on-disk corruption.  The walk is
    incremental and resumable: each {!step} verifies segments only until
    an explicit I/O budget (segments and/or bytes) is exhausted, with
    every read charged to the store's {!Vfs} cost model, so foreground
    queries share the disk with a bounded scrub tax instead of an
    unbounded scan.

    Segments that fail verification accumulate in a deterministic
    {e repair worklist} ({!damages}); {!heal} closes the loop by
    fetching the segment's good bytes from a peer store's file (a
    healthy standby for a corrupt primary, or vice versa), verifying
    them against the recorded CRC32, and rewriting the segment in place
    via {!Store.repair_segment} — journaled, so a crash mid-heal is
    recoverable, and never applied on a checksum mismatch. *)

type damage = {
  pool : string;  (** owning pool's name *)
  pseg : int;  (** physical segment id within the pool *)
  off : int;  (** file offset of the segment's extent *)
  len : int;  (** extent length in bytes *)
  crc : int;  (** the CRC32 the on-disk bytes should have *)
}

type progress = {
  scanned : int;  (** segments verified so far in this pass *)
  scanned_bytes : int;  (** bytes re-read and checksummed so far *)
  total : int;  (** flushed segments in the pass *)
  complete : bool;  (** the walk has reached the end of the store *)
}

type t

val create : ?live_only:bool -> Store.t -> t
(** Snapshot the store's segment census and start a pass at the first
    segment.  The census is taken once: segments flushed after [create]
    are picked up by the next pass ({!restart}).  With [~live_only:true]
    (default false) the census keeps only segments owning at least one
    live slot — segments fully drained by epoch GC ({!Epoch}) hold no
    servable object, so scrubbing them is wasted I/O.  The scrub is
    otherwise epoch-transparent: stale-but-pinned objects live in
    segments with live slots and are verified like any other. *)

val step : ?max_segments:int -> ?max_bytes:int -> t -> progress
(** Verify segments until a budget trips: at most [max_segments]
    segments, and stopping once [max_bytes] bytes have been read within
    this step (always verifying at least one segment, so every step
    makes progress).  Omitted budgets are unlimited — a single
    unbudgeted [step] scrubs the whole store.  A no-op once the pass is
    [complete].  Raises [Invalid_argument] on a non-positive budget. *)

val progress : t -> progress
(** Where the pass stands, without doing any I/O. *)

val damages : t -> damage list
(** The repair worklist: every segment that failed verification so far
    in this pass, in walk order. *)

val restart : t -> unit
(** Begin a fresh pass over the store's current segment census,
    clearing the worklist. *)

val run : ?live_only:bool -> Store.t -> damage list
(** One unbudgeted pass over a store: [create] + [step] to completion,
    returning the worklist. *)

val damage_of_segment : Store.t -> pool:string -> pseg:int -> damage option
(** Build the worklist entry for one known segment (e.g. one a query
    tripped over), without scanning anything.  [None] if the pool or a
    flushed segment by that id does not exist. *)

val verified_bytes : Vfs.t -> file:string -> damage -> bytes option
(** Read the damaged segment's extent from a peer copy of the store
    file on [vfs] and return the bytes only if they match the recorded
    CRC32 — [None] if the file is missing or short, or the peer's copy
    is itself rotten or stale. *)

val heal : Store.t -> sources:(string * Vfs.t) list -> damage -> (string, string) result
(** Repair one damaged segment from the first source whose copy
    verifies: [Ok name] names the source used; [Error] when no source
    holds a verified copy (the segment is untouched) or the damage
    record no longer matches the store's tables. *)
