type problem = { where : string; what : string }

type report = {
  problems : problem list;
  objects_seen : int;
  psegs_seen : int;
  pools_seen : int;
}

let ok r = r.problems = []

let run ?object_check store =
  let problems = ref [] in
  let flag where what = problems := { where; what } :: !problems in
  (* 2b. Application-level payload validation: when the caller knows
     what the stored bytes mean (e.g. postings records with skip
     tables), each live object's payload is handed to its checker.
     Problems are flagged like any other — never raised. *)
  let root_oid = Store.root store in
  let apply_object_check =
    match object_check with
    | None -> fun _ _ -> ()
    | Some f -> (
      fun where oid ->
        if root_oid = Some oid then () (* the sealed root is not a payload object *)
        else
        match Store.get_opt store oid with
        | exception Store.Corrupt msg -> flag where ("object unreadable: " ^ msg)
        | exception Invalid_argument msg -> flag where ("object unreadable: " ^ msg)
        | None -> flag where "live slot resolves to no object"
        | Some payload -> (
          match f payload with
          | Ok () -> ()
          | Error msg -> flag where ("object invalid: " ^ msg)
          | exception _ -> flag where "object checker raised"))
  in
  let objects = ref 0 and psegs = ref 0 and pools_n = ref 0 in
  let file_size = Store.file_size store in
  let pools = Store.pools store in
  List.iter
    (fun pool ->
      incr pools_n;
      let pname = Store.pool_name pool in
      let policy = Store.pool_policy pool in
      let segments = Store.pool_segments pool in
      (* 1. Segment extents lie inside the file and do not overlap. *)
      List.iter
        (fun (id, (off, len)) ->
          incr psegs;
          if off < 0 || len < 0 || off + len > file_size then
            flag
              (Printf.sprintf "%s/pseg %d" pname id)
              (Printf.sprintf "extent [%d, %d) outside file of %d bytes" off (off + len)
                 file_size))
        segments;
      let sorted = List.sort (fun (_, (a, _)) (_, (b, _)) -> compare a b) segments in
      let rec overlaps = function
        | (ida, (offa, lena)) :: ((idb, (offb, _)) :: _ as rest) ->
          if offa + lena > offb then
            flag
              (Printf.sprintf "%s/pseg %d" pname ida)
              (Printf.sprintf "overlaps pseg %d" idb);
          overlaps rest
        | _ -> ()
      in
      overlaps sorted;
      (* 2. Every live slot resolves to an object in its segment. *)
      let live = ref 0 in
      List.iter
        (fun (lseg, slots) ->
          Array.iteri
            (fun slot pseg ->
              if pseg >= 0 then begin
                incr live;
                let where = Printf.sprintf "%s/lseg %d/slot %d" pname lseg slot in
                match List.assoc_opt pseg segments with
                | None -> flag where (Printf.sprintf "points at unknown pseg %d" pseg)
                | Some _ -> (
                  let oid = Oid.make ~lseg ~slot in
                  match Store.segment_raw pool pseg with
                  | exception Store.Corrupt msg -> flag where ("segment unreadable: " ^ msg)
                  | exception Invalid_argument msg ->
                    (* e.g. a truncated file: the extent reaches past
                       EOF, so the read itself is impossible.  Report,
                       never raise — fsck must survive any damage. *)
                    flag where ("segment unreadable: " ^ msg)
                  | seg ->
                    (match policy.Policy.layout with
                    | Policy.Fixed_slots { slot_size } -> (
                      match Store.fixed_slot_length ~slot_size seg ~slot with
                      | Some len ->
                        if len > slot_size - 4 then
                          flag where (Printf.sprintf "slot length %d exceeds payload" len)
                      | None -> flag where "live slot is empty in its segment"
                      | exception Store.Corrupt msg -> flag where msg)
                    | Policy.Packed -> (
                      match Store.parse_packed_directory seg with
                      | exception Store.Corrupt msg -> flag where msg
                      | entries -> (
                        match List.find_opt (fun (o, _, _) -> o = oid) entries with
                        | None -> flag where "object missing from segment directory"
                        | Some (_, off, len) ->
                          if off < 0 || len < 0 || off + len > Bytes.length seg then
                            flag where "object extent outside segment")));
                    apply_object_check where oid)
              end)
            slots)
        (Store.pool_slot_tables pool);
      objects := !objects + !live;
      (* 3. Per-pool object count agrees with the live slots. *)
      let counted = Store.pool_object_count pool in
      if counted <> !live then
        flag pname (Printf.sprintf "pool count %d but %d live slots" counted !live);
      (* 4. Every flushed segment's on-disk bytes match their recorded
         CRC32 (read fresh from the file, bypassing buffered copies).
         An extent outside the file was already flagged by pass 1 and
         cannot be read at all — skip it rather than raise. *)
      List.iter
        (fun (id, (off, len)) ->
          if off >= 0 && len >= 0 && off + len <= file_size then
            match Store.verify_segment_crc pool id with
            | true -> ()
            | false -> flag (Printf.sprintf "%s/pseg %d" pname id) "segment CRC32 mismatch"
            | exception Invalid_argument msg ->
              flag (Printf.sprintf "%s/pseg %d" pname id) ("segment unreadable: " ^ msg))
        segments;
      (* 5. Packed segment directories are internally consistent. *)
      List.iter
        (fun (id, _) ->
          match policy.Policy.layout with
          | Policy.Fixed_slots _ -> ()
          | Policy.Packed -> (
            match Store.parse_packed_directory (Store.segment_raw pool id) with
            | exception Store.Corrupt msg -> flag (Printf.sprintf "%s/pseg %d" pname id) msg
            | exception Invalid_argument msg ->
              flag (Printf.sprintf "%s/pseg %d" pname id) ("segment unreadable: " ^ msg)
            | entries ->
              let sorted_entries =
                List.sort (fun (_, a, _) (_, b, _) -> compare a b) entries
              in
              let rec overlap = function
                | (oa, offa, lena) :: ((_, offb, _) :: _ as rest) ->
                  if offa + lena > offb then
                    flag
                      (Printf.sprintf "%s/pseg %d" pname id)
                      (Printf.sprintf "object %d overlaps its neighbour" oa);
                  overlap rest
                | _ -> ()
              in
              overlap sorted_entries))
        segments)
    pools;
  (* 6. Store-level object count matches the pools. *)
  let total = List.fold_left (fun acc p -> acc + Store.pool_object_count p) 0 pools in
  if total <> Store.object_count store then
    flag "store"
      (Printf.sprintf "header object count %d but pools hold %d" (Store.object_count store)
         total);
  (* 7. The versioned root, when the header names one, is a live object
     whose sealed envelope opens cleanly and agrees with the header's
     epoch.  A torn root-switch must surface here, never parse. *)
  (match root_oid with
  | None -> ()
  | Some oid -> (
    match Store.get_opt store oid with
    | exception Store.Corrupt msg -> flag "root" ("root object unreadable: " ^ msg)
    | exception Invalid_argument msg -> flag "root" ("root object unreadable: " ^ msg)
    | None -> flag "root" (Printf.sprintf "header names root oid %d but no such object" oid)
    | Some envelope -> (
      match Epoch.unseal envelope with
      | Error msg -> flag "root" msg
      | Ok (epoch, _) ->
        if epoch <> Store.epoch store then
          flag "root"
            (Printf.sprintf "root sealed for epoch %d but header says %d" epoch
               (Store.epoch store)))));
  { problems = List.rev !problems; objects_seen = !objects; psegs_seen = !psegs; pools_seen = !pools_n }

let pp_report fmt r =
  if ok r then
    Format.fprintf fmt "clean: %d objects in %d segments across %d pools" r.objects_seen
      r.psegs_seen r.pools_seen
  else begin
    Format.fprintf fmt "%d problem(s):@." (List.length r.problems);
    List.iter (fun p -> Format.fprintf fmt "  %s: %s@." p.where p.what) r.problems
  end
