type policy = Lru | Fifo | Clock

type seg = {
  pseg : int;
  bytes : bytes;
  mutable pins : int;
  mutable ref_bit : bool;
  mutable prev : seg option;
  mutable next : seg option;
}

type t = {
  buf_name : string;
  capacity : int;
  buf_policy : policy;
  table : (int, seg) Hashtbl.t;
  pinned : (int, unit) Hashtbl.t; (* segments with pins > 0 *)
  mutable head : seg option; (* most recent / queue front *)
  mutable tail : seg option; (* eviction end *)
  mutable used : int;
  mutable n_refs : int;
  mutable n_hits : int;
  mutable n_evictions : int;
  mutable n_invalidations : int;
}

type stats = Util.Cache_stats.t = {
  refs : int;
  hits : int;
  evictions : int;
  invalidations : int;
  resident_bytes : int;
  resident_entries : int;
}

let create ~name ~capacity ?(policy = Lru) () =
  if capacity < 0 then invalid_arg "Buffer_pool.create: negative capacity";
  {
    buf_name = name;
    capacity;
    buf_policy = policy;
    table = Hashtbl.create 64;
    pinned = Hashtbl.create 8;
    head = None;
    tail = None;
    used = 0;
    n_refs = 0;
    n_hits = 0;
    n_evictions = 0;
    n_invalidations = 0;
  }

let name t = t.buf_name
let capacity t = t.capacity
let policy t = t.buf_policy

let unlink t seg =
  (match seg.prev with Some p -> p.next <- seg.next | None -> t.head <- seg.next);
  (match seg.next with Some n -> n.prev <- seg.prev | None -> t.tail <- seg.prev);
  seg.prev <- None;
  seg.next <- None

let push_front t seg =
  seg.next <- t.head;
  seg.prev <- None;
  (match t.head with Some h -> h.prev <- Some seg | None -> t.tail <- Some seg);
  t.head <- Some seg

let remove_seg t seg =
  unlink t seg;
  Hashtbl.remove t.table seg.pseg;
  if seg.pins > 0 then Hashtbl.remove t.pinned seg.pseg;
  t.used <- t.used - Bytes.length seg.bytes

(* Find an eviction victim according to the policy, skipping pins.  For
   Clock, segments with the reference bit set get a second chance (the
   bit is cleared and the segment recycled to the front). *)
let rec pick_victim t scanned =
  match t.tail with
  | None -> None
  | Some _ ->
    let rec from_tail = function
      | None -> None
      | Some seg when seg.pins > 0 -> from_tail seg.prev
      | Some seg -> (
        match t.buf_policy with
        | Lru | Fifo -> Some seg
        | Clock ->
          if seg.ref_bit then begin
            seg.ref_bit <- false;
            unlink t seg;
            push_front t seg;
            None (* retry the sweep from the new tail *)
          end
          else Some seg)
    in
    (match from_tail t.tail with
    | Some seg -> Some seg
    | None ->
      (* Clock gave a second chance; bounded retries prevent spinning
         when every segment is pinned or freshly referenced. *)
      if scanned > 2 * Hashtbl.length t.table then None else pick_victim t (scanned + 1))

let evict_to_fit t =
  let continue_ = ref true in
  while t.used > t.capacity && !continue_ do
    match pick_victim t 0 with
    | None -> continue_ := false
    | Some victim ->
      remove_seg t victim;
      t.n_evictions <- t.n_evictions + 1
  done

let fault t ~pseg ~load =
  t.n_refs <- t.n_refs + 1;
  match Hashtbl.find_opt t.table pseg with
  | Some seg ->
    t.n_hits <- t.n_hits + 1;
    (match t.buf_policy with
    | Lru ->
      unlink t seg;
      push_front t seg
    | Fifo -> ()
    | Clock -> seg.ref_bit <- true);
    seg.bytes
  | None ->
    let bytes = load () in
    if t.capacity > 0 then begin
      let seg = { pseg; bytes; pins = 0; ref_bit = true; prev = None; next = None } in
      Hashtbl.add t.table pseg seg;
      push_front t seg;
      t.used <- t.used + Bytes.length bytes;
      evict_to_fit t
    end;
    bytes

let resident t ~pseg = Hashtbl.mem t.table pseg

let pin t ~pseg =
  match Hashtbl.find_opt t.table pseg with
  | None -> false
  | Some seg ->
    if seg.pins = 0 then Hashtbl.replace t.pinned pseg ();
    seg.pins <- seg.pins + 1;
    true

let unpin t ~pseg =
  match Hashtbl.find_opt t.table pseg with
  | None -> invalid_arg "Buffer_pool.unpin: segment not resident"
  | Some seg ->
    if seg.pins <= 0 then invalid_arg "Buffer_pool.unpin: segment not pinned";
    seg.pins <- seg.pins - 1;
    if seg.pins = 0 then Hashtbl.remove t.pinned pseg

let update t ~pseg bytes =
  match Hashtbl.find_opt t.table pseg with
  | None -> ()
  | Some seg ->
    (* Byte size may change on relocation-free updates; rebuild the node. *)
    let pins = seg.pins in
    remove_seg t seg;
    let seg' = { pseg; bytes; pins; ref_bit = true; prev = None; next = None } in
    if pins > 0 then Hashtbl.replace t.pinned pseg ();
    Hashtbl.add t.table pseg seg';
    push_front t seg';
    t.used <- t.used + Bytes.length bytes;
    evict_to_fit t

let drop t ~pseg =
  match Hashtbl.find_opt t.table pseg with
  | None -> ()
  | Some seg ->
    remove_seg t seg;
    t.n_invalidations <- t.n_invalidations + 1

let clear t =
  t.n_invalidations <- t.n_invalidations + Hashtbl.length t.table;
  Hashtbl.reset t.table;
  Hashtbl.reset t.pinned;
  t.head <- None;
  t.tail <- None;
  t.used <- 0

(* O(pinned): the engine's between-query leak detector calls this per
   query, where the answer is almost always the empty list — scanning
   every resident segment for it would tax exactly the well-behaved
   case. *)
let pinned_segments t =
  Hashtbl.fold (fun pseg () acc -> pseg :: acc) t.pinned [] |> List.sort compare

let stats t =
  {
    refs = t.n_refs;
    hits = t.n_hits;
    evictions = t.n_evictions;
    invalidations = t.n_invalidations;
    resident_bytes = t.used;
    resident_entries = Hashtbl.length t.table;
  }

let reset_stats t =
  t.n_refs <- 0;
  t.n_hits <- 0;
  t.n_evictions <- 0;
  t.n_invalidations <- 0

let merge_stats = Util.Cache_stats.merge
