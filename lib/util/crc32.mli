(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected).

    Used as the integrity checksum of the storage layer: the journal's
    commit marker carries a CRC over the batch image, and every flushed
    Mneme physical segment records a CRC in the pool tables so that
    media corruption is detected on read instead of being returned as
    object bytes.

    The implementation is the standard table-driven byte-at-a-time
    algorithm; [digest] of "123456789" is 0xCBF43926. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** [update crc b ~pos ~len] folds [len] bytes starting at [pos] into a
    running checksum.  Start from [0] and chain calls to checksum
    discontiguous data.  Raises [Invalid_argument] on an out-of-range
    slice. *)

val digest_bytes : bytes -> int
(** Checksum of a whole byte string (an [update] from zero). *)

val digest_string : string -> int

val digest_sub : bytes -> pos:int -> len:int -> int
(** Checksum of a slice. *)
