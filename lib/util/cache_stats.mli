(** One counter record for every cache layer.

    The buffer pool, the decoded-block cache and the frontend's
    query-result cache all answer the same questions — how often were
    you asked, how often did you have the answer, what did you throw
    away, what are you holding — so they report through one record
    instead of three ad-hoc shapes.  A {e reference} is one probe, a
    {e hit} one probe answered from residency, an {e eviction} a
    capacity-driven removal, an {e invalidation} a correctness-driven
    one (epoch turnover, relocation, explicit drop).  Residency is a
    point-in-time gauge; the counters are monotone until reset. *)

type t = {
  refs : int;
  hits : int;
  evictions : int;
  invalidations : int;
  resident_bytes : int;
  resident_entries : int;
}

val zero : t

val add : t -> t -> t
(** Component-wise sum. *)

val merge : t list -> t
(** Fold of {!add} over [zero] — one Table-6-style report from
    per-domain or per-layer sessions.  [merge []] is {!zero}. *)

val misses : t -> int
(** [refs - hits]. *)

val hit_rate : t -> float
(** [hits / refs]; [0.0] when never referenced. *)

val pp : Format.formatter -> t -> unit
