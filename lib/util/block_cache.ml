type key = { k_src : int; k_blk : int; k_epoch : int }

type node = {
  key : key;
  docs : int array;
  tfs : int array;
  cost : int; (* bytes charged against the budget *)
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  bc_name : string;
  capacity : int;
  table : (key, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* eviction end *)
  mutable used : int;
  mutable n_refs : int;
  mutable n_hits : int;
  mutable n_evictions : int;
  mutable n_invalidations : int;
}

(* Two unboxed int arrays: 8 bytes per element plus two block headers. *)
let cost_of ~docs ~tfs = (8 * (Array.length docs + Array.length tfs)) + 48

let create ?(capacity_bytes = 1 lsl 20) ~name () =
  if capacity_bytes < 0 then invalid_arg "Block_cache.create: negative capacity";
  {
    bc_name = name;
    capacity = capacity_bytes;
    table = Hashtbl.create 256;
    head = None;
    tail = None;
    used = 0;
    n_refs = 0;
    n_hits = 0;
    n_evictions = 0;
    n_invalidations = 0;
  }

let name t = t.bc_name
let capacity t = t.capacity

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let remove_node t node =
  unlink t node;
  Hashtbl.remove t.table node.key;
  t.used <- t.used - node.cost

let find t ~src ~blk ~epoch =
  t.n_refs <- t.n_refs + 1;
  match Hashtbl.find_opt t.table { k_src = src; k_blk = blk; k_epoch = epoch } with
  | None -> None
  | Some node ->
    t.n_hits <- t.n_hits + 1;
    unlink t node;
    push_front t node;
    Some (node.docs, node.tfs)

let insert t ~src ~blk ~epoch ~docs ~tfs =
  if t.capacity > 0 then begin
    let key = { k_src = src; k_blk = blk; k_epoch = epoch } in
    (match Hashtbl.find_opt t.table key with Some old -> remove_node t old | None -> ());
    let cost = cost_of ~docs ~tfs in
    let node = { key; docs; tfs; cost; prev = None; next = None } in
    Hashtbl.add t.table key node;
    push_front t node;
    t.used <- t.used + cost;
    while t.used > t.capacity && t.tail <> None do
      match t.tail with
      | None -> ()
      | Some victim ->
        remove_node t victim;
        t.n_evictions <- t.n_evictions + 1
    done
  end

let retain t ~keep =
  let doomed =
    Hashtbl.fold (fun key node acc -> if keep key.k_epoch then acc else node :: acc) t.table []
  in
  List.iter
    (fun node ->
      remove_node t node;
      t.n_invalidations <- t.n_invalidations + 1)
    doomed;
  List.length doomed

let clear t =
  t.n_invalidations <- t.n_invalidations + Hashtbl.length t.table;
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.used <- 0

let epochs t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter (fun key _ -> Hashtbl.replace seen key.k_epoch ()) t.table;
  Hashtbl.fold (fun e () acc -> e :: acc) seen [] |> List.sort compare

let stats t =
  {
    Cache_stats.refs = t.n_refs;
    hits = t.n_hits;
    evictions = t.n_evictions;
    invalidations = t.n_invalidations;
    resident_bytes = t.used;
    resident_entries = Hashtbl.length t.table;
  }

let reset_stats t =
  t.n_refs <- 0;
  t.n_hits <- 0;
  t.n_evictions <- 0;
  t.n_invalidations <- 0
