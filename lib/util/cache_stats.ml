type t = {
  refs : int;
  hits : int;
  evictions : int;
  invalidations : int;
  resident_bytes : int;
  resident_entries : int;
}

let zero =
  { refs = 0; hits = 0; evictions = 0; invalidations = 0; resident_bytes = 0; resident_entries = 0 }

let add a b =
  {
    refs = a.refs + b.refs;
    hits = a.hits + b.hits;
    evictions = a.evictions + b.evictions;
    invalidations = a.invalidations + b.invalidations;
    resident_bytes = a.resident_bytes + b.resident_bytes;
    resident_entries = a.resident_entries + b.resident_entries;
  }

let merge stats = List.fold_left add zero stats
let misses t = t.refs - t.hits
let hit_rate t = if t.refs = 0 then 0.0 else float_of_int t.hits /. float_of_int t.refs

let pp ppf t =
  Format.fprintf ppf "refs=%d hits=%d (%.1f%%) evict=%d inval=%d resident=%d/%dB" t.refs t.hits
    (100.0 *. hit_rate t) t.evictions t.invalidations t.resident_entries t.resident_bytes
