(** Work-stealing deque (Chase–Lev).

    One {e owner} domain pushes and pops at the bottom; any number of
    {e thief} domains steal from the top.  The owner's fast path is
    mutex-free — a push is one slot write plus one atomic store, a pop
    of a non-last element never executes a compare-and-swap.  Only the
    race for the final element (owner pop vs. thief steal) is resolved
    by CAS, the classic Chase–Lev protocol.

    Indices grow monotonically, so the structure is ABA-free.  The
    buffer is fixed-capacity: the parallel query executor knows its task
    count up front, and a bounded deque keeps the hot path free of
    resize barriers. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [capacity] is rounded up to a power of two.  [dummy] fills unused
    slots (never returned).  Raises [Invalid_argument] if
    [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** Owner only.  Raises [Invalid_argument] when full. *)

val pop : 'a t -> 'a option
(** Owner only: newest element (LIFO), or [None] when empty. *)

val steal : 'a t -> 'a option
(** Any domain: oldest element (FIFO), or [None] when empty or when the
    CAS lost a race (callers iterate over victims anyway, so a spurious
    [None] only costs another probe). *)

val size : 'a t -> int
(** Snapshot of the current element count (racy under concurrency;
    exact when quiescent). *)
