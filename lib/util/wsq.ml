(* Chase-Lev work-stealing deque over a fixed ring buffer.

   [top] only ever increases (steals and last-element pops); [bottom]
   is owned by the single pushing/popping domain.  Both are Atomic.t:
   OCaml 5 atomics are sequentially consistent, which subsumes the
   acquire/release pairs the original algorithm needs — the slot write
   in [push] happens-before the [bottom] store that publishes it, so a
   thief that observes the new [bottom] also observes the slot. *)

type 'a t = {
  buf : 'a array;
  mask : int;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Wsq.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { buf = Array.make !cap dummy; mask = !cap - 1; top = Atomic.make 0; bottom = Atomic.make 0 }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let push t x =
  let b = Atomic.get t.bottom in
  if b - Atomic.get t.top > t.mask then invalid_arg "Wsq.push: full";
  t.buf.(b land t.mask) <- x;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Empty: restore the invariant bottom >= top. *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then Some t.buf.(b land t.mask)
  else begin
    (* Final element: race the thieves for it. *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Some t.buf.(b land t.mask) else None
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let x = t.buf.(tp land t.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Some x else None
  end
