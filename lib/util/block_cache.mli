(** Bounded LRU of decoded posting blocks.

    High-df terms recur across queries (the paper's Figure 2 skew), so
    the blocks their cursors decode are worth keeping in decoded form:
    a hit hands back the block's [(docs, tfs)] arrays and skips the
    decode entirely.  Entries are keyed by
    [(source object id, block index, epoch)] — the epoch tag makes
    entries from superseded index versions unreachable the moment a new
    epoch is probed, and {!retain} lets the publication hook drop them
    eagerly (keeping epochs still pinned by snapshot readers, whose
    objects are immutable and therefore still byte-correct).

    The cache never returns an entry for a key it was not given: a
    reader serving a pinned epoch and a reader serving the latest epoch
    share the cache without ever seeing each other's blocks, which is
    what keeps pinned-epoch rankings bit-identical under churn.

    Like the buffer pool, a [t] is single-domain; give each worker its
    own and {!Cache_stats.merge} the counters. *)

type t

val create : ?capacity_bytes:int -> name:string -> unit -> t
(** [capacity_bytes] (default 1 MiB) bounds the decoded residency;
    [0] disables the cache (probes miss, inserts drop).  Raises
    [Invalid_argument] if negative. *)

val name : t -> string
val capacity : t -> int

val find : t -> src:int -> blk:int -> epoch:int -> (int array * int array) option
(** The decoded [(docs, tfs)] arrays, refreshed to most-recent.  Counts
    one reference, plus a hit when resident.  Callers must not mutate
    the returned arrays. *)

val insert : t -> src:int -> blk:int -> epoch:int -> docs:int array -> tfs:int array -> unit
(** Insert (replacing any entry under the same key) and evict from the
    cold end until the budget holds. *)

val retain : t -> keep:(int -> bool) -> int
(** [retain t ~keep] drops every entry whose epoch fails [keep],
    returning how many were dropped (counted as invalidations) — the
    epoch-publication/gc invalidation hook. *)

val clear : t -> unit
(** Drop everything (counted as invalidations); statistics are kept. *)

val epochs : t -> int list
(** Distinct epochs with resident entries, ascending — lets tests
    assert that no collected epoch is still represented. *)

val stats : t -> Cache_stats.t
val reset_stats : t -> unit
