type entry = { doc : int; score : float }

type t = { k : int; mutable size : int; heap : entry array }

let dummy = { doc = -1; score = neg_infinity }

let create ~k =
  if k < 0 then invalid_arg "Topk.create: negative k";
  { k; size = 0; heap = Array.make (max 1 k) dummy }

let capacity t = t.k
let size t = t.size
let is_full t = t.size >= t.k

(* Min-heap ordered by "worse": lower score first, ties toward the
   larger doc id (so the root is exactly the entry a ranking by score
   descending, doc ascending would drop first). *)
let worse a b = a.score < b.score || (a.score = b.score && a.doc > b.doc)

let threshold t = if is_full t && t.k > 0 then Some t.heap.(0).score else None

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if worse h.(i) h.(parent) then begin
      let tmp = h.(i) in
      h.(i) <- h.(parent);
      h.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h n i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < n && worse h.(l) h.(!m) then m := l;
  if r < n && worse h.(r) h.(!m) then m := r;
  if !m <> i then begin
    let tmp = h.(i) in
    h.(i) <- h.(!m);
    h.(!m) <- tmp;
    sift_down h n !m
  end

let offer t ~doc ~score =
  if t.k = 0 then false
  else if t.size < t.k then begin
    t.heap.(t.size) <- { doc; score };
    t.size <- t.size + 1;
    sift_up t.heap (t.size - 1);
    true
  end
  else begin
    let root = t.heap.(0) in
    (* The candidate displaces the current worst only if it would rank
       strictly before it: higher score, or same score and smaller id. *)
    if score > root.score || (score = root.score && doc < root.doc) then begin
      t.heap.(0) <- { doc; score };
      sift_down t.heap t.size 0;
      true
    end
    else false
  end

let sorted_desc t =
  let xs = Array.sub t.heap 0 t.size in
  Array.sort
    (fun a b -> if a.score = b.score then compare a.doc b.doc else compare b.score a.score)
    xs;
  Array.to_list xs
