(** Bounded top-k selection.

    A fixed-capacity min-heap over [(doc, score)] pairs that keeps the
    [k] entries a full sort by score descending (ties toward the smaller
    doc id) would rank first, in O(n log k) instead of O(n log n) and
    O(k) space.  Shared by {!Inquery.Ranking.top_k} and the max-score
    pruned evaluator, whose admission threshold is {!threshold}. *)

type entry = { doc : int; score : float }

type t

val create : k:int -> t
(** Raises [Invalid_argument] if [k < 0].  [k = 0] accepts nothing. *)

val capacity : t -> int
val size : t -> int
val is_full : t -> bool

val offer : t -> doc:int -> score:float -> bool
(** Insert if the heap has room or the candidate ranks strictly before
    the current worst entry (higher score, or equal score and smaller
    doc id).  Returns [true] iff the heap changed. *)

val threshold : t -> float option
(** Score of the current k-th (worst retained) entry once the heap is
    full; [None] while it still has room.  A candidate must strictly
    beat this (by score, or by id on a tie) to enter. *)

val sorted_desc : t -> entry list
(** Contents by score descending, ties by doc ascending. *)
