type structure = Flat | Cnf | Dnf | Mixed

type spec = {
  set_name : string;
  n_queries : int;
  mean_terms : float;
  pool_size : int;
  pool_top_bias : int;
  pool_skew : float;
  fresh_prob : float;
  oov_prob : float;
  phrase_prob : float;
  weighted : bool;
  structure : structure;
  seed : int;
}

let make ~set_name ?(n_queries = 50) ~mean_terms ?(pool_size = 150) ~pool_top_bias
    ?(pool_skew = 1.0) ?(fresh_prob = 0.15) ?(oov_prob = 0.0) ?(phrase_prob = 0.0)
    ?(weighted = false) ?(structure = Flat) ?(seed = 7) () =
  if n_queries <= 0 then invalid_arg "Querygen.make: n_queries must be positive";
  if mean_terms <= 0.0 then invalid_arg "Querygen.make: mean_terms must be positive";
  if pool_size <= 0 then invalid_arg "Querygen.make: pool_size must be positive";
  if pool_top_bias <= 0 then invalid_arg "Querygen.make: pool_top_bias must be positive";
  let check_prob name p =
    if p < 0.0 || p > 1.0 then invalid_arg ("Querygen.make: " ^ name ^ " must be in [0, 1]")
  in
  check_prob "fresh_prob" fresh_prob;
  check_prob "oov_prob" oov_prob;
  check_prob "phrase_prob" phrase_prob;
  if structure = Mixed && phrase_prob > 0.0 then
    invalid_arg "Querygen.make: Mixed draws its own operators; phrase_prob must be 0";
  {
    set_name;
    n_queries;
    mean_terms;
    pool_size;
    pool_top_bias;
    pool_skew;
    fresh_prob;
    oov_prob;
    phrase_prob;
    weighted;
    structure;
    seed;
  }

(* The topic pool: distinct popular ranks, usage-skewed. *)
let build_pool model spec rng =
  let bias = min spec.pool_top_bias model.Docmodel.core_vocab in
  let seen = Hashtbl.create spec.pool_size in
  let pool = Array.make spec.pool_size 1 in
  let filled = ref 0 in
  let attempts = ref 0 in
  while !filled < spec.pool_size && !attempts < spec.pool_size * 100 do
    incr attempts;
    let rank = 1 + Util.Rng.int rng bias in
    if not (Hashtbl.mem seen rank) then begin
      Hashtbl.add seen rank ();
      pool.(!filled) <- rank;
      incr filled
    end
  done;
  (* If the bias window is smaller than the pool, fill the rest with
     repeats (harmless for usage statistics). *)
  for i = !filled to spec.pool_size - 1 do
    pool.(i) <- 1 + Util.Rng.int rng bias
  done;
  Array.sort compare pool;
  pool

let generate model spec =
  (* Two generators: term choices are independent of structural choices,
     so specs differing only in [structure]/[weighted] produce the same
     queries in different representations — exactly the paper's CACM
     query sets 1 and 2. *)
  let rng = Util.Rng.create ~seed:spec.seed in
  let rng_struct = Util.Rng.create ~seed:(spec.seed + 1) in
  let pool = build_pool model spec rng in
  let pool_zipf = Util.Zipf.create ~n:(Array.length pool) ~s:spec.pool_skew in
  let vocab_zipf = Util.Zipf.create ~n:model.Docmodel.core_vocab ~s:model.Docmodel.zipf_s in
  let oov_counter = ref 0 in
  let pool_draw () = Synth.core_term ~rank:pool.(Util.Zipf.sample pool_zipf rng - 1) in
  let draw_term () =
    let u = Util.Rng.float rng 1.0 in
    if u < spec.oov_prob then begin
      (* 'z' never starts a synthetic word, so these are true OOV. *)
      let w = "z" ^ string_of_int !oov_counter in
      incr oov_counter;
      w
    end
    else if u < spec.oov_prob +. spec.fresh_prob then
      Synth.core_term ~rank:(Util.Zipf.sample vocab_zipf rng)
    else pool_draw ()
  in
  let draw_item () =
    let term = draw_term () in
    if spec.phrase_prob > 0.0 && Util.Rng.float rng 1.0 < spec.phrase_prob then
      Printf.sprintf "#phrase( %s %s )" term (pool_draw ())
    else term
  in
  let weight () = string_of_int (1 + Util.Rng.int rng_struct 3) in
  let rec groups_of items =
    (* structural grouping into 2-3 element groups *)
    match items with
    | [] -> []
    | [ a ] -> [ [ a ] ]
    | [ a; b ] -> [ [ a; b ] ]
    | a :: b :: rest ->
      if Util.Rng.bool rng_struct then
        match rest with
        | c :: rest' -> [ a; b; c ] :: groups_of rest'
        | [] -> [ [ a; b ] ]
      else [ a; b ] :: groups_of rest
  in
  let render_query items =
    let joined ops xs = Printf.sprintf "#%s( %s )" ops (String.concat " " xs) in
    match spec.structure with
    | Flat ->
      if spec.weighted then
        joined "wsum" (List.concat_map (fun item -> [ weight (); item ]) items)
      else joined "sum" items
    | Cnf -> joined "and" (List.map (joined "or") (groups_of items))
    | Dnf ->
      (* Distributing a conjunction over disjunctions duplicates terms:
         the DNF representation of the same query names some terms more
         than once (the paper's CACM set 2 reads noticeably more record
         bytes than set 1 for this reason). *)
      let duplicated =
        items @ List.filter (fun _ -> Util.Rng.float rng_struct 1.0 < 0.4) items
      in
      joined "or" (List.map (joined "and") (groups_of duplicated))
    | Mixed -> (
      (* The planner workload: each query lands in one of the evaluator's
         plan classes — flat (#sum), conjunctive (#and), or positional
         (#phrase / #od / #uw) — so a single set exercises every executor.
         Items are bare terms ([make] rejects phrase_prob > 0): the
         positional classes build their own operators here. *)
      let first_two = match items with a :: b :: _ -> [ a; b ] | _ -> items in
      match Util.Rng.int rng_struct 5 with
      | 0 -> joined "sum" items
      | 1 ->
        let n = 2 + Util.Rng.int rng_struct 2 in
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        joined "and" (take n items)
      | 2 -> joined "phrase" first_two
      | 3 -> joined (Printf.sprintf "od%d" (2 + Util.Rng.int rng_struct 4)) first_two
      | _ -> joined (Printf.sprintf "uw%d" (4 + Util.Rng.int rng_struct 6)) first_two)
  in
  List.init spec.n_queries (fun _ ->
      let k =
        let g =
          Util.Rng.gaussian rng ~mean:spec.mean_terms ~stddev:(spec.mean_terms /. 3.0)
        in
        max 2 (int_of_float (Float.round g))
      in
      render_query (List.init k (fun _ -> draw_item ())))

let judgments model spec ~n_relevant =
  let rng = Util.Rng.create ~seed:(spec.seed + 0x5eed) in
  List.init spec.n_queries (fun _ ->
      let docs = Hashtbl.create n_relevant in
      let attempts = ref 0 in
      while Hashtbl.length docs < n_relevant && !attempts < n_relevant * 50 do
        incr attempts;
        Hashtbl.replace docs (Util.Rng.int rng model.Docmodel.n_docs) ()
      done;
      Inquery.Eval.judgments_of_list (Hashtbl.fold (fun d () acc -> d :: acc) docs []))
