(** Calibrated stand-ins for the paper's four collections and seven
    query sets.

    Document counts for CACM and Legal match Table 1 exactly; the two
    TIPSTER collections are scaled to ~1/10 of the paper's document
    counts (and Legal's mean document length to ~1/6) so the full
    experiment suite runs on a development machine — DESIGN.md records
    the substitution.  [scale] multiplies document counts further
    (0.1 for smoke tests, 1.0 default).

    TIPSTER 1 is a prefix of TIPSTER (same model, same seed, fewer
    documents), mirroring "TIPSTER 1 consists of part 1 only and uses
    the same query set". *)

val cacm : ?scale:float -> unit -> Docmodel.t
val legal : ?scale:float -> unit -> Docmodel.t
val tipster1 : ?scale:float -> unit -> Docmodel.t
val tipster : ?scale:float -> unit -> Docmodel.t

val all_models : ?scale:float -> unit -> Docmodel.t list
(** The four, in the paper's Table order. *)

val query_sets : Docmodel.t -> (string * Querygen.spec) list
(** Query sets for a model, keyed by the paper's set numbers ("1", "2",
    "3").  CACM has three (two boolean representations of the same
    queries, plus a word/phrase form), Legal two (the second adds terms,
    phrases and weights), TIPSTER one.  Raises [Invalid_argument] for an
    unknown collection name. *)

val topk_queries : Docmodel.t -> Querygen.spec
(** A flat, phrase-free variant of the collection's primary query set
    (same term pool and length distribution, [phrase_prob = 0]), used by
    the top-k pruning experiments: phrases force {!Inquery.Infnet.eval_topk}
    onto its exhaustive fallback, so measuring the pruned path needs
    purely additive queries.  Raises [Invalid_argument] for an unknown
    collection name. *)

val planner_queries : Docmodel.t -> Querygen.spec
(** A mixed-workload set for the query-planner experiments: every query
    is one of the planner's classes ({!Querygen.structure.Mixed} — flat
    [#sum], conjunctive [#and], or a positional [#phrase]/[#od]/[#uw]),
    drawn over the collection's usual term pool with a higher
    fresh-vocabulary rate so term selectivity is skewed.  Raises
    [Invalid_argument] for an unknown collection name. *)

val find : ?scale:float -> string -> Docmodel.t
(** Model by name ("cacm", "legal", "tipster1", "tipster").
    Raises [Invalid_argument] otherwise. *)
