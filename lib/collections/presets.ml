let scaled scale n = max 64 (int_of_float (float_of_int n *. scale))

let cacm ?(scale = 1.0) () =
  Docmodel.make ~name:"cacm" ~n_docs:(scaled scale 3204) ~core_vocab:3000 ~zipf_s:0.8
    ~stop_top:0 ~hapax_prob:0.010 ~mean_doc_len:95.0 ~doc_len_sigma:0.5 ~markup_overhead:1.15
    ~seed:101 ()

let legal ?(scale = 1.0) () =
  Docmodel.make ~name:"legal" ~n_docs:(scaled scale 11953) ~core_vocab:71000 ~zipf_s:0.8
    ~stop_top:0 ~hapax_prob:0.0091 ~mean_doc_len:650.0 ~doc_len_sigma:0.7
    ~markup_overhead:1.30 ~seed:102 ()

let tipster_model ~name ~n_docs ~scale =
  Docmodel.make ~name ~n_docs:(scaled scale n_docs) ~core_vocab:160000 ~zipf_s:0.8 ~stop_top:0
    ~hapax_prob:0.0098 ~mean_doc_len:250.0 ~doc_len_sigma:0.6 ~markup_overhead:1.25 ~seed:103 ()

let tipster1 ?(scale = 1.0) () = tipster_model ~name:"tipster1" ~n_docs:51089 ~scale
let tipster ?(scale = 1.0) () = tipster_model ~name:"tipster" ~n_docs:74236 ~scale

let all_models ?(scale = 1.0) () =
  [ cacm ~scale (); legal ~scale (); tipster1 ~scale (); tipster ~scale () ]

let find ?(scale = 1.0) name =
  match name with
  | "cacm" -> cacm ~scale ()
  | "legal" -> legal ~scale ()
  | "tipster1" -> tipster1 ~scale ()
  | "tipster" -> tipster ~scale ()
  | other -> invalid_arg ("Presets.find: unknown collection " ^ other)

let query_sets model =
  match model.Docmodel.name with
  | "cacm" ->
    (* Three views of the same 50 queries: two boolean representations
       and a manual word/phrase form. *)
    let base ~structure ~phrase_prob ~oov_prob =
      Querygen.make ~set_name:"cacm" ~n_queries:50 ~mean_terms:8.0 ~pool_size:120
        ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.20 ~oov_prob ~phrase_prob ~structure
        ~seed:201 ()
    in
    [
      ("1", base ~structure:Querygen.Cnf ~phrase_prob:0.0 ~oov_prob:0.05);
      ("2", base ~structure:Querygen.Dnf ~phrase_prob:0.0 ~oov_prob:0.05);
      ("3", base ~structure:Querygen.Flat ~phrase_prob:0.35 ~oov_prob:0.15);
    ]
  | "legal" ->
    [
      ( "1",
        Querygen.make ~set_name:"legal" ~n_queries:50 ~mean_terms:10.0 ~pool_size:150
          ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.15 ~phrase_prob:0.05 ~seed:202 () );
      ( "2",
        (* Set 1 supplemented with dictionary terms, phrases and weights. *)
        Querygen.make ~set_name:"legal" ~n_queries:50 ~mean_terms:15.0 ~pool_size:150
          ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.20 ~phrase_prob:0.15 ~weighted:true
          ~seed:202 () );
    ]
  | "tipster1" | "tipster" ->
    [
      ( "1",
        (* TREC topics 51-100, automatically expanded: 50 long queries. *)
        Querygen.make ~set_name:"tipster" ~n_queries:50 ~mean_terms:45.0 ~pool_size:300
          ~pool_top_bias:450 ~pool_skew:1.0 ~fresh_prob:0.15 ~phrase_prob:0.08 ~weighted:true
          ~seed:203 () );
    ]
  | other -> invalid_arg ("Presets.query_sets: unknown collection " ^ other)

let topk_queries model =
  (* Flat, phrase-free variants of each collection's primary set for the
     top-k pruning experiments: #phrase forces the evaluator onto the
     exhaustive fallback, so the pruning measurements use the same term
     pools and lengths with phrase_prob = 0 (and no OOV noise). *)
  match model.Docmodel.name with
  | "cacm" ->
    Querygen.make ~set_name:"cacm-topk" ~n_queries:50 ~mean_terms:8.0 ~pool_size:120
      ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.20 ~oov_prob:0.0 ~phrase_prob:0.0
      ~structure:Querygen.Flat ~seed:201 ()
  | "legal" ->
    Querygen.make ~set_name:"legal-topk" ~n_queries:50 ~mean_terms:10.0 ~pool_size:150
      ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.15 ~phrase_prob:0.0 ~seed:202 ()
  | "tipster1" | "tipster" ->
    (* Title-length queries (TREC topics have ~3-8 title terms; the
       45-term set is the automatically *expanded* form).  Top-k pruning
       is the short-query optimisation — the expanded-set ablation lives
       in EXPERIMENTS.md. *)
    Querygen.make ~set_name:"tipster-topk" ~n_queries:50 ~mean_terms:6.0 ~pool_size:300
      ~pool_top_bias:450 ~pool_skew:1.0 ~fresh_prob:0.15 ~phrase_prob:0.0 ~weighted:true
      ~seed:203 ()
  | other -> invalid_arg ("Presets.topk_queries: unknown collection " ^ other)

let planner_queries model =
  (* Mixed-workload sets for the query-planner experiments: each query
     falls in one of the planner's classes (flat #sum, conjunctive #and,
     or positional #phrase/#od/#uw), over the same term pools as
     [topk_queries] but with a higher fresh-vocabulary rate so term
     selectivity is skewed — rare terms make the intersection-first
     driver cheap while the pool terms keep the exhaustive baseline
     expensive, which is the regime a cost model has to tell apart. *)
  match model.Docmodel.name with
  | "cacm" ->
    Querygen.make ~set_name:"cacm-plan" ~n_queries:50 ~mean_terms:4.0 ~pool_size:120
      ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.35 ~oov_prob:0.0 ~phrase_prob:0.0
      ~structure:Querygen.Mixed ~seed:204 ()
  | "legal" ->
    Querygen.make ~set_name:"legal-plan" ~n_queries:50 ~mean_terms:4.0 ~pool_size:150
      ~pool_top_bias:300 ~pool_skew:1.0 ~fresh_prob:0.35 ~phrase_prob:0.0
      ~structure:Querygen.Mixed ~seed:204 ()
  | "tipster1" | "tipster" ->
    Querygen.make ~set_name:"tipster-plan" ~n_queries:50 ~mean_terms:4.0 ~pool_size:300
      ~pool_top_bias:450 ~pool_skew:1.0 ~fresh_prob:0.35 ~phrase_prob:0.0
      ~structure:Querygen.Mixed ~seed:204 ()
  | other -> invalid_arg ("Presets.planner_queries: unknown collection " ^ other)
