(** Query set generation.

    The paper's query sets exhibit two properties its results hinge on:

    - {b skewed term popularity}: query terms come overwhelmingly from
      the frequent (large-inverted-list) part of the vocabulary — their
      Figure 2;
    - {b repetition across queries}: "significant repetition of the
      terms used from query to query", from iterative refinement and
      topical collections, which is what makes inverted-list caching
      pay off.

    Both are modelled with a {e topic pool}: a fixed sample of popular
    core ranks, drawn from per query with its own Zipf skew, plus
    occasional fresh vocabulary draws and out-of-vocabulary words (the
    manually-chosen words of CACM query set 3 that never occur in the
    collection). *)

type structure =
  | Flat  (** [#sum] of terms — natural-language style *)
  | Cnf  (** [#and] of [#or] groups — boolean representation 1 *)
  | Dnf  (** [#or] of [#and] groups — boolean representation 2 *)
  | Mixed
      (** each query is drawn from one of the query-planner's plan
          classes: [#sum] of all terms, [#and] of 2-3 terms, or a
          two-term [#phrase] / [#odN] / [#uwN] — the mixed workload the
          planner experiments run.  Requires [phrase_prob = 0] (items
          stay bare terms; the positional classes build their own
          operators). *)

type spec = {
  set_name : string;
  n_queries : int;
  mean_terms : float;
  pool_size : int;  (** number of distinct ranks in the topic pool *)
  pool_top_bias : int;  (** pool ranks are drawn from the top this-many core ranks *)
  pool_skew : float;  (** Zipf exponent of pool usage — higher = more repetition *)
  fresh_prob : float;  (** probability a term is drawn from the whole vocabulary *)
  oov_prob : float;  (** probability a term is out of vocabulary *)
  phrase_prob : float;  (** probability a term expands to a two-term [#phrase] *)
  weighted : bool;  (** wrap the query in [#wsum] with small integer weights *)
  structure : structure;
  seed : int;
}

val make :
  set_name:string ->
  ?n_queries:int ->
  mean_terms:float ->
  ?pool_size:int ->
  pool_top_bias:int ->
  ?pool_skew:float ->
  ?fresh_prob:float ->
  ?oov_prob:float ->
  ?phrase_prob:float ->
  ?weighted:bool ->
  ?structure:structure ->
  ?seed:int ->
  unit ->
  spec
(** Defaults: 50 queries, pool of 150, skew 1.0, fresh 0.15, oov 0.0,
    phrases 0.0, unweighted, [Flat], seed 7.  Raises [Invalid_argument]
    on non-positive sizes, probabilities outside [0, 1], or [Mixed]
    combined with a positive [phrase_prob]. *)

val generate : Docmodel.t -> spec -> string list
(** Concrete query strings in INQUERY syntax, deterministic in the
    spec's seed. *)

val judgments : Docmodel.t -> spec -> n_relevant:int -> Inquery.Eval.judgments list
(** A synthetic relevance file: [n_relevant] documents per query,
    deterministic, independent of any retrieval run. *)
