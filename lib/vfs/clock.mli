(** Simulated clock with per-component accounting.

    The paper separates wall-clock time (Table 3) from "system CPU plus
    I/O" time (Table 4), obtained by subtracting user CPU (the inference
    engine) from wall clock.  We keep the components separate from the
    start: [disk + syscall + copy] is the Table 4 quantity and
    [engine_cpu] the user-CPU quantity; their sum is wall clock. *)

type t

type snapshot = {
  disk_ms : float;  (** time the simulated disk spent on transfers *)
  syscall_ms : float;  (** system-call overhead *)
  copy_ms : float;  (** kernel/user copy time *)
  engine_cpu_ms : float;  (** retrieval/ranking engine CPU *)
}

val create : unit -> t

val charge_disk : t -> float -> unit
val charge_syscall : t -> float -> unit
val charge_copy : t -> float -> unit
val charge_engine_cpu : t -> float -> unit
(** Each [charge_*] adds the given milliseconds to one component.
    Raises [Invalid_argument] on a negative charge. *)

val snapshot : t -> snapshot
val reset : t -> unit

val diff : later:snapshot -> earlier:snapshot -> snapshot
(** Component-wise subtraction, for per-run intervals. *)

val wall_ms : snapshot -> float
(** Sum of all components — the Table 3 quantity. *)

val sys_io_ms : snapshot -> float
(** [disk + syscall + copy] — the Table 4 quantity. *)

(** Real (host) monotonic time, deliberately fenced off in its own
    module: everything else in {!Clock} is {e simulated} 1993 hardware
    time, and the paper tables must never mix the two.  Only
    wall-clock throughput measurement of the multicore executor
    ({!Core.Parallel}) reads this — it reports real elapsed time
    {e alongside} the simulated per-domain clocks, never into them.
    Nothing here touches any [t]; simulated clocks are unaffected. *)
module Monotonic : sig
  val now_ns : unit -> int64
  (** Nanoseconds on the host's monotonic clock (CLOCK_MONOTONIC);
      meaningful only as a difference between two calls. *)

  val elapsed_ms : since:int64 -> float
  (** Milliseconds of real time since a previous {!now_ns} reading. *)
end
