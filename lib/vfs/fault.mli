(** Deterministic fault-injection plans for the simulated disk.

    A plan is attached to a {!Vfs.t} and consulted once per physical
    block I/O — a cache-miss block read, or a dirty-block flush during
    [fsync]/[sync].  The plan decides whether the I/O proceeds, the
    process crashes ([Vfs.Crash] is raised before the block reaches the
    device, so a crash mid-[fsync] leaves a torn write: only the prefix
    of dirty blocks flushed so far is durable), a bit of the block is
    flipped in place (media corruption — reads only), or the I/O
    {e stalls}: it completes, but only after the given extra
    milliseconds are charged to the simulated clock.  Stalls model the
    availability failure modes a crash cannot: a sick disk retrying
    sectors, a saturated controller, a device fading rather than dying.

    Plans are deterministic: the same seed and the same workload produce
    the same faults, which is what lets the torture harness enumerate
    and replay every crash point (ALICE / CrashMonkey style). *)

type kind = Read | Write
(** The two physical I/O directions: block reads from the device and
    dirty-block flushes to it. *)

type decision =
  | Proceed
  | Crash  (** raise [Vfs.Crash] before the block transfers *)
  | Flip_bit of int
      (** flip this bit offset (within the block) of the transferred
          data; only honoured on reads, writes treat it as [Proceed] *)
  | Flip_bits of { targets : int list; first : int; last : int }
      (** media rot across a platter region: flip one distinct bit per
          entry of [targets], each landing inside the {e absolute} file
          byte range [first, last] (clamped to the file size).  The
          damage is triggered by the read that disturbs the region —
          whichever block it transfers — and, like [Flip_bit], hits both
          the OS view and the durable image.  Only honoured on reads. *)
  | Stall of float
      (** the I/O completes, but charges this many extra milliseconds of
          disk time to the simulated clock first (a slow, not dead,
          device).  Negative stalls are treated as [Proceed]. *)

type plan

val none : unit -> plan
(** Count I/Os, inject nothing.  Run a workload under [none] first to
    learn how many crash points there are to enumerate. *)

val crash_at_io : int -> plan
(** [crash_at_io n] crashes on the [n]-th physical I/O (1-based) and on
    every later one, so a workload cannot run past its crash point. *)

val flip_bit_on_read : io:int -> seed:int -> plan
(** [flip_bit_on_read ~io ~seed] corrupts the block transferred by the
    [io]-th physical I/O, if it is a read: one bit, chosen
    deterministically from [seed], is flipped.  Other I/Os proceed. *)

val flip_bits_on_read : io:int -> seed:int -> first:int -> last:int -> ?bits:int -> unit -> plan
(** [flip_bits_on_read ~io ~seed ~first ~last ~bits ()] models
    multi-bit rot over a byte range: when the [io]-th physical I/O is a
    read, [bits] (default 1) {e distinct} bits, placed deterministically
    from [seed], are flipped within the absolute file byte range
    [first, last] — regardless of which block the read transfers (the
    whole platter region under the range rots at once).  Raises
    [Invalid_argument] if [io < 1], [bits < 1] or the range is empty or
    negative. *)

val stall_at_io : io:int -> ms:float -> plan
(** [stall_at_io ~io ~ms] stalls the [io]-th physical I/O (1-based) by
    [ms] simulated milliseconds; every other I/O proceeds.  Raises
    [Invalid_argument] if [io < 1] or [ms < 0]. *)

val degraded_device : file:string -> ms:float -> plan
(** [degraded_device ~file ~ms] inflates {e every} physical I/O touching
    [file] by [ms] simulated milliseconds — the whole device under that
    file is sick, not one request.  Other files are unaffected.  Raises
    [Invalid_argument] if [ms < 0]. *)

val custom : (io:int -> file:string -> kind -> decision) -> plan
(** Full control: the callback sees the 1-based I/O ordinal, the name of
    the file whose block is transferring, and the I/O kind. *)

val io_count : plan -> int
(** Number of physical I/Os observed so far. *)

val observe : plan -> file:string -> kind -> decision
(** Called by {!Vfs} once per physical block I/O.  Advances the counter
    and returns the plan's decision. *)
