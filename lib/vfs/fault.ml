type kind = Read | Write

type decision =
  | Proceed
  | Crash
  | Flip_bit of int
  | Flip_bits of { targets : int list; first : int; last : int }
  | Stall of float

type plan = { mutable ios : int; rule : io:int -> file:string -> kind -> decision }

let none () = { ios = 0; rule = (fun ~io:_ ~file:_ _ -> Proceed) }

let crash_at_io n =
  if n < 1 then invalid_arg "Fault.crash_at_io: crash point is 1-based";
  { ios = 0; rule = (fun ~io ~file:_ _ -> if io >= n then Crash else Proceed) }

(* SplitMix64 finalizer: a well-mixed bit choice from (seed, io) without
   dragging in generator state. *)
let mix seed io =
  let z = ref ((seed * 0x9E3779B9) + (io * 0x85EBCA6B)) in
  z := (!z lxor (!z lsr 30)) * 0x4D049BB133111EB;
  z := (!z lxor (!z lsr 27)) * 0x1CE4E5B9BF58476D;
  abs (!z lxor (!z lsr 31))

let flip_bit_on_read ~io ~seed =
  {
    ios = 0;
    rule =
      (fun ~io:n ~file:_ kind ->
        match kind with Read when n = io -> Flip_bit (mix seed io) | _ -> Proceed);
  }

let flip_bits_on_read ~io ~seed ~first ~last ?(bits = 1) () =
  if io < 1 then invalid_arg "Fault.flip_bits_on_read: trigger io is 1-based";
  if first < 0 || last < first then invalid_arg "Fault.flip_bits_on_read: bad byte range";
  if bits < 1 then invalid_arg "Fault.flip_bits_on_read: must flip at least one bit";
  let targets = List.init bits (fun i -> mix seed (io + (i * 7919))) in
  {
    ios = 0;
    rule =
      (fun ~io:n ~file:_ kind ->
        match kind with
        | Read when n = io -> Flip_bits { targets; first; last }
        | _ -> Proceed);
  }

let stall_at_io ~io ~ms =
  if io < 1 then invalid_arg "Fault.stall_at_io: stall point is 1-based";
  if ms < 0.0 then invalid_arg "Fault.stall_at_io: negative stall";
  { ios = 0; rule = (fun ~io:n ~file:_ _ -> if n = io then Stall ms else Proceed) }

let degraded_device ~file ~ms =
  if ms < 0.0 then invalid_arg "Fault.degraded_device: negative stall";
  {
    ios = 0;
    rule = (fun ~io:_ ~file:name _ -> if String.equal name file then Stall ms else Proceed);
  }

let custom rule = { ios = 0; rule }
let io_count p = p.ios

let observe p ~file kind =
  p.ios <- p.ios + 1;
  p.rule ~io:p.ios ~file kind
