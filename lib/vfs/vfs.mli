(** Simulated file system: in-memory files behind a block device, an
    ULTRIX-style OS page cache, a simulated clock, and the exact I/O
    accounting the paper reports in Table 5.

    Every storage substrate in this reproduction (the B-tree package and
    the Mneme object store) performs its I/O through this module, so the
    three statistics of Table 5 fall out of the counters:

    - [disk_inputs] — "I", blocks actually read from the device
      ([getrusage] inputs in the paper);
    - [file_accesses] — numerator of "A", read system calls issued;
    - [bytes_read] — "B", bytes copied from kernel to user space.

    Reads and writes charge the {!Clock} according to the {!Cost_model}:
    a syscall fee per access, a disk fee per block that misses the OS
    cache, and a copy fee per byte transferred.

    {b Durability model.}  Writes are {e write-back}: the blocks land
    dirty in the OS cache and reads see them immediately, but nothing
    reaches the device until {!fsync} (per file) or {!sync} (everything)
    flushes the dirty blocks — each flushed block is a charged disk
    output.  {!crash_image} produces the state a reboot would find: only
    flushed block contents survive.  Metadata (file existence, size,
    truncation) is modelled as journaled by the file system and hence
    durable immediately; only data blocks need syncing.  The model is
    deliberately pessimistic — no background writeback ever runs, so an
    unsynced write {e never} survives a crash (the ALICE assumption).

    {b Fault injection.}  A {!Fault.plan} attached with {!set_fault} is
    consulted on every physical block I/O and can crash the process
    (raising {!Crash} — mid-[fsync] this persists only a prefix of the
    dirty blocks, a torn write), flip a bit of a block being read
    (media corruption: the damage persists in both the OS view and the
    durable image), or stall the I/O — the transfer completes but extra
    latency is charged to the simulated clock, modelling a degraded
    rather than dead device. *)

module Clock : module type of Clock
(** Re-exported: the simulated clock (this module is the library root,
    so companions are reached through it). *)

module Cost_model : module type of Cost_model
(** Re-exported: the hardware cost model. *)

module Fault : module type of Fault
(** Re-exported: deterministic fault-injection plans. *)

exception Crash
(** The simulated machine lost power: raised by a faulting I/O.  All
    in-memory state of the workload must be considered gone; continue
    from {!crash_image}. *)

type t
type file

val create : ?cost_model:Cost_model.t -> unit -> t
val cost_model : t -> Cost_model.t
val clock : t -> Clock.t

type counters = {
  disk_inputs : int;
  disk_outputs : int;
  file_accesses : int;
  bytes_read : int;
  bytes_written : int;
  os_cache_hits : int;
  os_cache_misses : int;
}

val counters : t -> counters
val reset_counters : t -> unit

val diff_counters : later:counters -> earlier:counters -> counters
(** Component-wise subtraction for per-run intervals. *)

val purge_os_cache : t -> unit
(** Drop every cached block — the paper's 32 MB "chill file" read, which
    guaranteed no inverted-file data survived in the ULTRIX file cache
    between runs. *)

val open_file : t -> string -> file
(** [open_file t name] opens [name], creating an empty file if absent.
    Opening the same name twice returns the same file. *)

val file_exists : t -> string -> bool

val delete_file : t -> string -> unit
(** Remove the file and its cached blocks.  No-op if absent. *)

val file_names : t -> string list
(** All file names, sorted. *)

val file_name : file -> string
val size : file -> int

val read : file -> off:int -> len:int -> bytes
(** [read f ~off ~len] returns [len] bytes starting at [off].
    Raises [Invalid_argument] if the range extends past end of file or
    is negative. *)

val write : file -> off:int -> bytes -> unit
(** [write f ~off b] writes all of [b] at [off], extending the file as
    needed (a hole left between the old end and [off] reads as zeros). *)

val append : file -> bytes -> int
(** [append f b] writes [b] at end of file and returns the offset the
    data landed at. *)

val truncate : file -> int -> unit
(** [truncate f n] sets the size to [n] (only shrinking is meaningful;
    growing pads with zeros).  Charged as one system call.  Shrinking
    evicts the truncated-away blocks from the OS cache and the dirty
    set, and zeroes the discarded tail in the durable image (truncate is
    a metadata operation, durable immediately).  Raises
    [Invalid_argument] if [n < 0]. *)

(** {2 Durability} *)

val fsync : file -> unit
(** Flush the file's dirty blocks to the device in ascending block
    order, charging one system call plus one disk write per block.  On
    return the file's contents are crash-durable.  May raise {!Crash}
    under a fault plan — in that case only the blocks flushed before the
    crash point are durable (a torn write). *)

val sync : t -> unit
(** [fsync] every file that has dirty blocks, in fid order. *)

val dirty_blocks : t -> int
(** Number of written-but-unflushed blocks across all files. *)

val copy_file : t -> string -> into:t -> unit
(** [copy_file t name ~into] replicates [name]'s current contents (the
    OS view, unflushed writes included) into the file of the same name
    in [into], and fsyncs the copy.  Reads are charged to [t], writes to
    [into].  Raises [Invalid_argument] if the source does not exist.
    Used to bootstrap a replica from a live primary. *)

val crash_image : t -> t
(** A fresh file system holding what a reboot would find: every file at
    its metadata size with only the fsynced block contents (unflushed
    blocks read as their last durable bytes, or zeros).  The image has
    cold caches, zeroed counters, a reset clock and no fault plan. *)

(** {2 Fault injection} *)

val set_fault : t -> Fault.plan -> unit
(** Attach a fault plan; it is consulted on every subsequent physical
    block I/O.  Replaces any previous plan. *)

val clear_fault : t -> unit

val fault_io_count : t -> int
(** Physical I/Os observed by the current plan — run a workload under
    [Fault.none] and read this to learn the crash-point count. *)
