type snapshot = {
  disk_ms : float;
  syscall_ms : float;
  copy_ms : float;
  engine_cpu_ms : float;
}

type t = {
  mutable disk : float;
  mutable syscall : float;
  mutable copy : float;
  mutable engine : float;
}

let create () = { disk = 0.0; syscall = 0.0; copy = 0.0; engine = 0.0 }

let check ms = if ms < 0.0 then invalid_arg "Clock.charge: negative charge"

let charge_disk t ms =
  check ms;
  t.disk <- t.disk +. ms

let charge_syscall t ms =
  check ms;
  t.syscall <- t.syscall +. ms

let charge_copy t ms =
  check ms;
  t.copy <- t.copy +. ms

let charge_engine_cpu t ms =
  check ms;
  t.engine <- t.engine +. ms

let snapshot t =
  { disk_ms = t.disk; syscall_ms = t.syscall; copy_ms = t.copy; engine_cpu_ms = t.engine }

let reset t =
  t.disk <- 0.0;
  t.syscall <- 0.0;
  t.copy <- 0.0;
  t.engine <- 0.0

let diff ~later ~earlier =
  {
    disk_ms = later.disk_ms -. earlier.disk_ms;
    syscall_ms = later.syscall_ms -. earlier.syscall_ms;
    copy_ms = later.copy_ms -. earlier.copy_ms;
    engine_cpu_ms = later.engine_cpu_ms -. earlier.engine_cpu_ms;
  }

let wall_ms s = s.disk_ms +. s.syscall_ms +. s.copy_ms +. s.engine_cpu_ms
let sys_io_ms s = s.disk_ms +. s.syscall_ms +. s.copy_ms

module Monotonic = struct
  let now_ns () = Monotonic_clock.now ()

  let elapsed_ms ~since = Int64.to_float (Int64.sub (now_ns ()) since) /. 1.0e6
end
