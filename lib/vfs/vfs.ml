module Clock = Clock
module Cost_model = Cost_model
module Fault = Fault

exception Crash

type counters = {
  disk_inputs : int;
  disk_outputs : int;
  file_accesses : int;
  bytes_read : int;
  bytes_written : int;
  os_cache_hits : int;
  os_cache_misses : int;
}

type file = {
  owner : t;
  fid : int;
  name : string;
  mutable data : Bytes.t; (* the OS view: cache + device *)
  mutable durable : Bytes.t; (* what the device actually holds *)
  mutable size : int;
}

and t = {
  model : Cost_model.t;
  clk : Clock.t;
  os_cache : (int * int, unit) Util.Lru.t; (* (file id, block number) *)
  files : (string, file) Hashtbl.t;
  dirty : (int * int, file) Hashtbl.t; (* written but not yet flushed *)
  mutable fault : Fault.plan;
  mutable next_fid : int;
  mutable last_disk_block : (int * int) option; (* disk head position *)
  mutable c_disk_inputs : int;
  mutable c_disk_outputs : int;
  mutable c_file_accesses : int;
  mutable c_bytes_read : int;
  mutable c_bytes_written : int;
  mutable c_hits : int;
  mutable c_misses : int;
}

let create ?(cost_model = Cost_model.default) () =
  {
    model = cost_model;
    clk = Clock.create ();
    os_cache = Util.Lru.create ~capacity:cost_model.Cost_model.os_cache_blocks;
    files = Hashtbl.create 16;
    dirty = Hashtbl.create 64;
    fault = Fault.none ();
    next_fid = 0;
    last_disk_block = None;
    c_disk_inputs = 0;
    c_disk_outputs = 0;
    c_file_accesses = 0;
    c_bytes_read = 0;
    c_bytes_written = 0;
    c_hits = 0;
    c_misses = 0;
  }

let cost_model t = t.model
let clock t = t.clk

let counters t =
  {
    disk_inputs = t.c_disk_inputs;
    disk_outputs = t.c_disk_outputs;
    file_accesses = t.c_file_accesses;
    bytes_read = t.c_bytes_read;
    bytes_written = t.c_bytes_written;
    os_cache_hits = t.c_hits;
    os_cache_misses = t.c_misses;
  }

let reset_counters t =
  t.c_disk_inputs <- 0;
  t.c_disk_outputs <- 0;
  t.c_file_accesses <- 0;
  t.c_bytes_read <- 0;
  t.c_bytes_written <- 0;
  t.c_hits <- 0;
  t.c_misses <- 0

let diff_counters ~later ~earlier =
  {
    disk_inputs = later.disk_inputs - earlier.disk_inputs;
    disk_outputs = later.disk_outputs - earlier.disk_outputs;
    file_accesses = later.file_accesses - earlier.file_accesses;
    bytes_read = later.bytes_read - earlier.bytes_read;
    bytes_written = later.bytes_written - earlier.bytes_written;
    os_cache_hits = later.os_cache_hits - earlier.os_cache_hits;
    os_cache_misses = later.os_cache_misses - earlier.os_cache_misses;
  }

let purge_os_cache t = Util.Lru.clear t.os_cache

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let set_fault t plan = t.fault <- plan
let clear_fault t = t.fault <- Fault.none ()
let fault_io_count t = Fault.io_count t.fault

(* Consult the plan before a physical block I/O.  A bit flip is media
   corruption: it damages both the OS view and the durable image, so the
   garbage survives cache purges and crashes alike.  A stall is a slow
   device: the transfer completes, but the extra latency is charged to
   the simulated disk clock first. *)
let fault_block f kind ~blk =
  let t = f.owner in
  match Fault.observe t.fault ~file:f.name kind with
  | Fault.Proceed -> ()
  | Fault.Crash -> raise Crash
  | Fault.Stall ms -> if ms > 0.0 then Clock.charge_disk t.clk ms
  | Fault.Flip_bit bit -> (
    match kind with
    | Fault.Write -> ()
    | Fault.Read ->
      let bs = t.model.Cost_model.block_size in
      (* Land the flip inside the file's bytes of this block, so the
         corruption is never silently out of range. *)
      let block_bytes = min bs (f.size - (blk * bs)) in
      let byte = if block_bytes <= 0 then f.size else (blk * bs) + (bit / 8 mod block_bytes) in
      if byte < f.size then begin
        let mask = Char.chr (1 lsl (bit mod 8)) in
        let flip buf =
          if byte < Bytes.length buf then
            Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor Char.code mask))
        in
        flip f.data;
        flip f.durable
      end)
  | Fault.Flip_bits { targets; first; last } -> (
    match kind with
    | Fault.Write -> ()
    | Fault.Read ->
      (* Rot over an absolute byte range, clamped to the file: each
         target claims a distinct (byte, bit) position by linear probing
         from its hash, so N targets always flip N different bits (up to
         the range's capacity). *)
      let lo = max 0 first and hi = min last (f.size - 1) in
      if hi >= lo then begin
        let span_bits = (hi - lo + 1) * 8 in
        let chosen = Hashtbl.create 8 in
        List.iter
          (fun target ->
            let rec probe tries =
              if tries < span_bits then begin
                let p = (target + tries) mod span_bits in
                if Hashtbl.mem chosen p then probe (tries + 1) else Hashtbl.add chosen p ()
              end
            in
            probe 0)
          targets;
        Hashtbl.iter
          (fun p () ->
            let byte = lo + (p / 8) in
            let mask = 1 lsl (p mod 8) in
            let flip buf =
              if byte < Bytes.length buf then
                Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor mask))
            in
            flip f.data;
            flip f.durable)
          chosen
      end)

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let open_file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None ->
    let f =
      { owner = t; fid = t.next_fid; name; data = Bytes.create 0; durable = Bytes.create 0;
        size = 0 }
    in
    t.next_fid <- t.next_fid + 1;
    Hashtbl.add t.files name f;
    f

let file_exists t name = Hashtbl.mem t.files name

(* Collect-then-remove helper for the (fid, block) keyed tables: we must
   not remove while iterating. *)
let drop_file_blocks t ~fid ~from_blk =
  let stale = ref [] in
  Util.Lru.iter t.os_cache (fun (f, blk) () ->
      if f = fid && blk >= from_blk then stale := (f, blk) :: !stale);
  List.iter (Util.Lru.remove t.os_cache) !stale;
  let stale_dirty = ref [] in
  Hashtbl.iter (fun (f, blk) _ -> if f = fid && blk >= from_blk then stale_dirty := (f, blk) :: !stale_dirty) t.dirty;
  List.iter (Hashtbl.remove t.dirty) !stale_dirty

let delete_file t name =
  match Hashtbl.find_opt t.files name with
  | None -> ()
  | Some f ->
    Hashtbl.remove t.files name;
    drop_file_blocks t ~fid:f.fid ~from_blk:0;
    (* The head must not keep pointing at a dead fid: a later read could
       otherwise be misjudged (the model's fids are never reused, but
       the stale position is still wrong — the platters under it now
       belong to free space). *)
    (match t.last_disk_block with
    | Some (fid, _) when fid = f.fid -> t.last_disk_block <- None
    | Some _ | None -> ())

let file_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.files [] |> List.sort compare

let file_name f = f.name
let size f = f.size

let charge_copy_and_syscall t len =
  Clock.charge_syscall t.clk t.model.Cost_model.syscall_ms;
  Clock.charge_copy t.clk (float_of_int len /. 1024.0 *. t.model.Cost_model.copy_ms_per_kb)

(* Fault in every block touched by [off, off+len), counting hits and misses. *)
let touch_blocks_read f ~off ~len =
  let t = f.owner in
  let bs = t.model.Cost_model.block_size in
  if len > 0 then
    for blk = off / bs to (off + len - 1) / bs do
      match Util.Lru.find t.os_cache (f.fid, blk) with
      | Some () -> t.c_hits <- t.c_hits + 1
      | None ->
        t.c_misses <- t.c_misses + 1;
        fault_block f Fault.Read ~blk;
        t.c_disk_inputs <- t.c_disk_inputs + 1;
        let sequential =
          match t.last_disk_block with
          | Some (fid, last) -> fid = f.fid && blk = last + 1
          | None -> false
        in
        Clock.charge_disk t.clk
          (if sequential then t.model.Cost_model.disk_seq_read_ms
           else t.model.Cost_model.disk_read_ms);
        t.last_disk_block <- Some (f.fid, blk);
        ignore (Util.Lru.add t.os_cache (f.fid, blk) ())
    done

(* Write-back: the blocks land dirty in the OS cache; nothing reaches
   the device (or the durable image) until [fsync]. *)
let touch_blocks_write f ~off ~len =
  let t = f.owner in
  let bs = t.model.Cost_model.block_size in
  if len > 0 then
    for blk = off / bs to (off + len - 1) / bs do
      Hashtbl.replace t.dirty (f.fid, blk) f;
      ignore (Util.Lru.add t.os_cache (f.fid, blk) ())
    done

let read f ~off ~len =
  if off < 0 || len < 0 || off + len > f.size then
    invalid_arg
      (Printf.sprintf "Vfs.read %s: range [%d, %d) outside file of size %d" f.name off
         (off + len) f.size);
  let t = f.owner in
  t.c_file_accesses <- t.c_file_accesses + 1;
  t.c_bytes_read <- t.c_bytes_read + len;
  charge_copy_and_syscall t len;
  touch_blocks_read f ~off ~len;
  Bytes.sub f.data off len

let ensure_capacity f n =
  let cap = Bytes.length f.data in
  if n > cap then begin
    let cap' = max n (max 4096 (cap * 2)) in
    let data' = Bytes.make cap' '\000' in
    Bytes.blit f.data 0 data' 0 f.size;
    f.data <- data';
    let durable' = Bytes.make cap' '\000' in
    Bytes.blit f.durable 0 durable' 0 (Bytes.length f.durable);
    f.durable <- durable'
  end

let write f ~off b =
  if off < 0 then invalid_arg "Vfs.write: negative offset";
  let len = Bytes.length b in
  let t = f.owner in
  ensure_capacity f (off + len);
  Bytes.blit b 0 f.data off len;
  if off + len > f.size then f.size <- off + len;
  t.c_file_accesses <- t.c_file_accesses + 1;
  t.c_bytes_written <- t.c_bytes_written + len;
  charge_copy_and_syscall t len;
  touch_blocks_write f ~off ~len

let append f b =
  let off = f.size in
  write f ~off b;
  off

let truncate f n =
  if n < 0 then invalid_arg "Vfs.truncate: negative size";
  let t = f.owner in
  (* A real truncate is a system call like any other metadata change. *)
  Clock.charge_syscall t.clk t.model.Cost_model.syscall_ms;
  t.c_file_accesses <- t.c_file_accesses + 1;
  if n > f.size then begin
    ensure_capacity f n;
    Bytes.fill f.data f.size (n - f.size) '\000'
  end
  else begin
    (* Shrink: blocks wholly past the new EOF must leave the OS cache
       (they would otherwise serve stale hits if the file regrows) and
       the dirty set (there is nothing left to flush).  The discarded
       tail is zeroed in both images so it cannot resurface. *)
    let bs = t.model.Cost_model.block_size in
    drop_file_blocks t ~fid:f.fid ~from_blk:((n + bs - 1) / bs);
    let zero_tail buf =
      let cap = Bytes.length buf in
      if n < cap then Bytes.fill buf n (cap - n) '\000'
    in
    zero_tail f.data;
    zero_tail f.durable
  end;
  f.size <- n

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)

let flush_block f blk =
  let t = f.owner in
  let bs = t.model.Cost_model.block_size in
  fault_block f Fault.Write ~blk;
  (* The block transfers: charge it, move the head, persist the bytes. *)
  t.c_disk_outputs <- t.c_disk_outputs + 1;
  Clock.charge_disk t.clk t.model.Cost_model.disk_write_ms;
  t.last_disk_block <- Some (f.fid, blk);
  let lo = blk * bs in
  let hi = min (lo + bs) (Bytes.length f.data) in
  if hi > lo then Bytes.blit f.data lo f.durable lo (hi - lo);
  Hashtbl.remove t.dirty (f.fid, blk)

let fsync f =
  let t = f.owner in
  Clock.charge_syscall t.clk t.model.Cost_model.syscall_ms;
  let blocks =
    Hashtbl.fold (fun (fid, blk) _ acc -> if fid = f.fid then blk :: acc else acc) t.dirty []
  in
  (* Ascending order: a crash mid-fsync durably persists a prefix of the
     dirty blocks — the torn-write failure mode. *)
  List.iter (flush_block f) (List.sort compare blocks)

let sync t =
  let files = Hashtbl.fold (fun _ f acc -> if List.memq f acc then acc else f :: acc) t.dirty [] in
  List.iter fsync (List.sort (fun a b -> compare a.fid b.fid) files)

let dirty_blocks t = Hashtbl.length t.dirty

(* Replicate a file's current OS-view contents into another file system,
   durably.  Reads are charged to the source, writes and the flush to
   the destination — exactly what a byte-copy over two devices costs. *)
let copy_file t name ~into =
  if not (Hashtbl.mem t.files name) then
    invalid_arg ("Vfs.copy_file: no such file: " ^ name);
  let src = open_file t name in
  let dst = open_file into name in
  truncate dst 0;
  let n = size src in
  if n > 0 then write dst ~off:0 (read src ~off:0 ~len:n);
  fsync dst

(* The state a machine reboot would find: every file at its metadata
   size, with only flushed block contents.  Metadata operations (create,
   delete, truncate, size changes) are modelled as journaled by the file
   system and hence durable immediately; data blocks are durable only
   once fsynced. *)
let crash_image t =
  let t' = create ~cost_model:t.model () in
  let files = Hashtbl.fold (fun _ f acc -> f :: acc) t.files [] in
  let files = List.sort (fun a b -> compare a.fid b.fid) files in
  List.iter
    (fun f ->
      let f' = open_file t' f.name in
      ensure_capacity f' f.size;
      let n = min f.size (Bytes.length f.durable) in
      if n > 0 then begin
        Bytes.blit f.durable 0 f'.data 0 n;
        Bytes.blit f.durable 0 f'.durable 0 n
      end;
      f'.size <- f.size)
    files;
  t'
