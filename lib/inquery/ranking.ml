type ranked = { doc : int; score : float }

let rank ?(above = Infnet.default_belief) beliefs =
  let candidates = ref [] in
  Array.iteri (fun doc score -> if score > above then candidates := { doc; score } :: !candidates) beliefs;
  List.sort
    (fun a b -> if a.score = b.score then compare a.doc b.doc else compare b.score a.score)
    !candidates

let top_k ?(above = Infnet.default_belief) beliefs ~k =
  if k < 0 then invalid_arg "Ranking.top_k: negative k";
  (* Bounded min-heap selection: O(n log k) and no intermediate list of
     every candidate, instead of full [rank] + take.  Same order and
     tie-break (score descending, doc ascending) as [rank]. *)
  let heap = Util.Topk.create ~k in
  Array.iteri
    (fun doc score -> if score > above then ignore (Util.Topk.offer heap ~doc ~score))
    beliefs;
  List.map (fun e -> { doc = e.Util.Topk.doc; score = e.Util.Topk.score }) (Util.Topk.sorted_desc heap)
