type source = {
  fetch : Dictionary.entry -> bytes option;
  n_docs : int;
  max_doc_id : int;
  avg_doc_len : float;
  doc_len : int -> int;
}

type stats = {
  mutable postings_scored : int;
  mutable nodes_visited : int;
  mutable record_lookups : int;
}

let default_belief = 0.4

let idf_weight ~n_docs ~df =
  if df <= 0 then 0.0
  else log ((float_of_int n_docs +. 0.5) /. float_of_int df) /. log (float_of_int n_docs +. 1.0)

let tf_weight ~tf ~dl ~avg_dl =
  let tf = float_of_int tf in
  let norm = if avg_dl > 0.0 then float_of_int dl /. avg_dl else 1.0 in
  tf /. (tf +. 0.5 +. (1.5 *. norm))

let belief ~n_docs ~df ~tf ~dl ~avg_dl =
  default_belief +. (0.6 *. tf_weight ~tf ~dl ~avg_dl *. idf_weight ~n_docs ~df)

(* --- positional leaf matching -------------------------------------- *)

(* doc -> sorted position array, counting the postings examined. *)
let position_table examined record =
  let tbl = Hashtbl.create 64 in
  Postings.fold_positions record ~init:() ~f:(fun () dp ->
      examined := !examined + List.length dp.Postings.positions;
      Hashtbl.replace tbl dp.Postings.doc (Array.of_list dp.Postings.positions));
  tbl

(* Smallest element of the sorted array strictly greater than [q]. *)
let successor arr q =
  let n = Array.length arr in
  let rec go lo hi = if lo >= hi then lo else begin
      let mid = (lo + hi) / 2 in
      if arr.(mid) <= q then go (mid + 1) hi else go lo mid
    end
  in
  let i = go 0 n in
  if i >= n then None else Some arr.(i)

let sort_matches matches = List.sort (fun (a, _) (b, _) -> compare a b) matches

(* Ordered window within one document: chains t1 < t2 < ... with each
   step within [window] positions, over the members' sorted position
   arrays.  Shared by the exhaustive matcher and the intersection
   executor so both compute the exact same tf. *)
let od_match_tf ~window first_ps rest_ps =
  let rec chain q = function
    | [] -> true
    | ps :: more -> (
      match successor ps q with
      | Some q' when q' <= q + window -> chain q' more
      | Some _ | None -> false)
  in
  Array.fold_left (fun acc p -> if chain p rest_ps then acc + 1 else acc) 0 first_ps

(* Ordered window: chains t1 < t2 < ... with each step within [window]
   positions.  [#phrase] is the window-1 case (strictly increasing
   positions make "within 1" mean "exactly adjacent"). *)
let od_doc_tfs ~window records =
  match records with
  | [] -> ([], 0)
  | first :: rest ->
    let examined = ref 0 in
    let first_tbl = position_table examined first in
    let rest_tbls = List.map (position_table examined) rest in
    let matches = ref [] in
    Hashtbl.iter
      (fun doc ps1 ->
        if List.for_all (fun tbl -> Hashtbl.mem tbl doc) rest_tbls then begin
          let rest_ps = List.map (fun tbl -> Hashtbl.find tbl doc) rest_tbls in
          let tf = od_match_tf ~window ps1 rest_ps in
          if tf > 0 then matches := (doc, tf) :: !matches
        end)
      first_tbl;
    (sort_matches !matches, !examined)

let phrase_doc_tfs records = od_doc_tfs ~window:1 records

(* Unordered window within one document: all members within a span of
   [window] positions, over the members' sorted position arrays.
   Sliding scan: repeatedly take the member currently at the smallest
   position; if the current span fits the window, count a match.
   Shared by the exhaustive matcher and the intersection executor. *)
let uw_match_tf ~window arrays =
  let k = Array.length arrays in
  let idx = Array.make k 0 in
  let tf = ref 0 in
  let exhausted = ref false in
  while not !exhausted do
    let lo_i = ref 0 and lo = ref arrays.(0).(idx.(0)) and hi = ref arrays.(0).(idx.(0)) in
    for i = 1 to k - 1 do
      let v = arrays.(i).(idx.(i)) in
      if v < !lo then begin
        lo := v;
        lo_i := i
      end;
      if v > !hi then hi := v
    done;
    if !hi - !lo < window then incr tf;
    idx.(!lo_i) <- idx.(!lo_i) + 1;
    if idx.(!lo_i) >= Array.length arrays.(!lo_i) then exhausted := true
  done;
  !tf

let uw_doc_tfs ~window records =
  match records with
  | [] -> ([], 0)
  | first :: rest ->
    let examined = ref 0 in
    let first_tbl = position_table examined first in
    let rest_tbls = List.map (position_table examined) rest in
    let matches = ref [] in
    Hashtbl.iter
      (fun doc ps1 ->
        if List.for_all (fun tbl -> Hashtbl.mem tbl doc) rest_tbls then begin
          let arrays = Array.of_list (ps1 :: List.map (fun tbl -> Hashtbl.find tbl doc) rest_tbls) in
          let tf = uw_match_tf ~window arrays in
          if tf > 0 then matches := (doc, tf) :: !matches
        end)
      first_tbl;
    (sort_matches !matches, !examined)

(* Synonym class: the members behave as one term whose inverted list is
   the union of theirs (tf sums per document). *)
let syn_doc_tfs records =
  let examined = ref 0 in
  let sums = Hashtbl.create 64 in
  List.iter
    (fun record ->
      Postings.fold_docs record ~init:() ~f:(fun () ~doc ~tf ->
          incr examined;
          let prev = try Hashtbl.find sums doc with Not_found -> 0 in
          Hashtbl.replace sums doc (prev + tf)))
    records;
  (sort_matches (Hashtbl.fold (fun doc tf acc -> (doc, tf) :: acc) sums []), !examined)

(* The df a term leaf scores with: the record's own header count unless
   the caller injects collection-wide statistics ([df_of]) — a
   doc-partitioned shard holds a record with {e local} df but must rank
   with the {e global} df or its beliefs drift from the unsharded
   index.  Positional leaves (#phrase/#od/#uw/#syn) always use their
   match count: their df is a property of the query, not the
   dictionary. *)
let record_df ?df_of entry record =
  match df_of with
  | Some f -> f entry
  | None ->
    let df, _ = Postings.stats record in
    df

let eval source dict ?df_of ?stopwords ?(stem = false) query =
  let n = source.max_doc_id + 1 in
  let stats = { postings_scored = 0; nodes_visited = 0; record_lookups = 0 } in
  let normalize term =
    let drop =
      match stopwords with Some sw -> Stopwords.is_stopword sw term | None -> false
    in
    if drop then None else Some (if stem then Stemmer.stem term else term)
  in
  let default_array () = Array.make n default_belief in
  let term_beliefs term =
    let beliefs = default_array () in
    (match normalize term with
    | None -> ()
    | Some term -> (
      match Dictionary.find dict term with
      | None -> ()
      | Some entry -> (
        stats.record_lookups <- stats.record_lookups + 1;
        match source.fetch entry with
        | None -> ()
        | Some record ->
          let df = record_df ?df_of entry record in
          Postings.fold_docs record ~init:() ~f:(fun () ~doc ~tf ->
              stats.postings_scored <- stats.postings_scored + 1;
              if doc < n then
                beliefs.(doc) <-
                  belief ~n_docs:source.n_docs ~df ~tf ~dl:(source.doc_len doc)
                    ~avg_dl:source.avg_doc_len))));
    beliefs
  in
  let fetch_member w =
    match normalize w with
    | None -> None
    | Some w -> (
      match Dictionary.find dict w with
      | None -> None
      | Some entry ->
        stats.record_lookups <- stats.record_lookups + 1;
        source.fetch entry)
  in
  (* Positional leaves (#phrase/#od/#uw) require every member record;
     #syn takes the union of whichever members exist. *)
  let positional_beliefs ~require_all matcher words =
    let beliefs = default_array () in
    let records = List.map fetch_member words in
    let usable =
      if require_all then
        if List.for_all Option.is_some records && records <> [] then
          Some (List.map Option.get records)
        else None
      else begin
        match List.filter_map Fun.id records with [] -> None | rs -> Some rs
      end
    in
    (match usable with
    | None -> ()
    | Some records ->
      let matches, examined = matcher records in
      stats.postings_scored <- stats.postings_scored + examined;
      let df = List.length matches in
      List.iter
        (fun (doc, tf) ->
          if doc < n then
            beliefs.(doc) <-
              belief ~n_docs:source.n_docs ~df ~tf ~dl:(source.doc_len doc)
                ~avg_dl:source.avg_doc_len)
        matches);
    beliefs
  in
  let combine nodes ~init ~f ~finish =
    match nodes with
    | [] -> default_array ()
    | arrays ->
      let out = Array.make n init in
      List.iter (fun a -> Array.iteri (fun d b -> out.(d) <- f out.(d) b) a) arrays;
      let k = List.length arrays in
      Array.map_inplace (fun acc -> finish acc k) out;
      out
  in
  let rec node q =
    stats.nodes_visited <- stats.nodes_visited + 1;
    match q with
    | Query.Term w -> term_beliefs w
    | Query.Phrase ws -> positional_beliefs ~require_all:true phrase_doc_tfs ws
    | Query.Od (window, ws) -> positional_beliefs ~require_all:true (od_doc_tfs ~window) ws
    | Query.Uw (window, ws) -> positional_beliefs ~require_all:true (uw_doc_tfs ~window) ws
    | Query.Syn ws -> positional_beliefs ~require_all:false syn_doc_tfs ws
    | Query.Sum ns ->
      combine (List.map node ns) ~init:0.0 ~f:( +. ) ~finish:(fun acc k ->
          acc /. float_of_int k)
    | Query.And ns ->
      combine (List.map node ns) ~init:1.0 ~f:( *. ) ~finish:(fun acc _ -> acc)
    | Query.Or ns ->
      combine (List.map node ns) ~init:1.0
        ~f:(fun acc b -> acc *. (1.0 -. b))
        ~finish:(fun acc _ -> 1.0 -. acc)
    | Query.Max ns ->
      combine (List.map node ns) ~init:0.0 ~f:Float.max ~finish:(fun acc _ -> acc)
    | Query.Not inner ->
      let a = node inner in
      Array.map (fun b -> 1.0 -. b) a
    | Query.Wsum pairs ->
      let total_w = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
      if total_w <= 0.0 then default_array ()
      else begin
        let out = Array.make n 0.0 in
        List.iter
          (fun (w, sub) ->
            let a = node sub in
            Array.iteri (fun d b -> out.(d) <- out.(d) +. (w *. b)) a)
          pairs;
        Array.map_inplace (fun acc -> acc /. total_w) out;
        out
      end
  in
  let beliefs = node query in
  (beliefs, stats)

(* ------------------------------------------------------------------ *)
(* Document-at-a-time evaluation                                       *)

type scored = { doc : int; belief : float }

(* The query tree with leaf cursors over decoded (doc, tf) postings. *)
type dnode =
  | DLeaf of { docs : (int * int) array; df : int; mutable pos : int }
  | DAbsent (* stop word / out-of-vocabulary: contributes the default *)
  | DSum of dnode list
  | DWsum of (float * dnode) list
  | DAnd of dnode list
  | DOr of dnode list
  | DMax of dnode list
  | DNot of dnode

let eval_daat_with ?(on_record = fun (_ : bytes) ~positional:(_ : bool) -> ()) source dict
    ?df_of ?stopwords ?(stem = false) query =
  let stats = { postings_scored = 0; nodes_visited = 0; record_lookups = 0 } in
  let normalize term =
    let drop =
      match stopwords with Some sw -> Stopwords.is_stopword sw term | None -> false
    in
    if drop then None else Some (if stem then Stemmer.stem term else term)
  in
  let term_leaf term =
    match normalize term with
    | None -> DAbsent
    | Some term -> (
      match Dictionary.find dict term with
      | None -> DAbsent
      | Some entry -> (
        stats.record_lookups <- stats.record_lookups + 1;
        match source.fetch entry with
        | None -> DAbsent
        | Some record ->
          on_record record ~positional:false;
          let df = record_df ?df_of entry record in
          let docs =
            Postings.fold_docs record ~init:[] ~f:(fun acc ~doc ~tf -> (doc, tf) :: acc)
            |> List.rev |> Array.of_list
          in
          DLeaf { docs; df; pos = 0 }))
  in
  let positional_leaf ~require_all ~positions matcher words =
    let records =
      List.map
        (fun w ->
          match normalize w with
          | None -> None
          | Some w -> (
            match Dictionary.find dict w with
            | None -> None
            | Some entry ->
              stats.record_lookups <- stats.record_lookups + 1;
              source.fetch entry))
        words
    in
    let usable =
      if require_all then
        if List.for_all Option.is_some records && records <> [] then
          Some (List.map Option.get records)
        else None
      else begin
        match List.filter_map Fun.id records with [] -> None | rs -> Some rs
      end
    in
    match usable with
    | None -> DAbsent
    | Some records ->
      List.iter (fun r -> on_record r ~positional:positions) records;
      let matches, examined = matcher records in
      stats.postings_scored <- stats.postings_scored + examined;
      DLeaf { docs = Array.of_list matches; df = List.length matches; pos = 0 }
  in
  let rec build q =
    stats.nodes_visited <- stats.nodes_visited + 1;
    match q with
    | Query.Term w -> term_leaf w
    | Query.Phrase ws -> positional_leaf ~require_all:true ~positions:true phrase_doc_tfs ws
    | Query.Od (window, ws) ->
      positional_leaf ~require_all:true ~positions:true (od_doc_tfs ~window) ws
    | Query.Uw (window, ws) ->
      positional_leaf ~require_all:true ~positions:true (uw_doc_tfs ~window) ws
    | Query.Syn ws -> positional_leaf ~require_all:false ~positions:false syn_doc_tfs ws
    | Query.Sum ns -> DSum (List.map build ns)
    | Query.Wsum ps -> DWsum (List.map (fun (w, n) -> (w, build n)) ps)
    | Query.And ns -> DAnd (List.map build ns)
    | Query.Or ns -> DOr (List.map build ns)
    | Query.Max ns -> DMax (List.map build ns)
    | Query.Not n -> DNot (build n)
  in
  let tree = build query in
  (* All leaves, for the frontier scan. *)
  let leaves = ref [] in
  let rec collect = function
    | DLeaf _ as l -> leaves := l :: !leaves
    | DAbsent -> ()
    | DSum ns | DAnd ns | DOr ns | DMax ns -> List.iter collect ns
    | DWsum ps -> List.iter (fun (_, n) -> collect n) ps
    | DNot n -> collect n
  in
  collect tree;
  let frontier () =
    List.fold_left
      (fun acc l ->
        match l with
        | DLeaf c when c.pos < Array.length c.docs ->
          let d = fst c.docs.(c.pos) in
          (match acc with None -> Some d | Some m -> Some (min m d))
        | _ -> acc)
      None !leaves
  in
  let rec score node d =
    match node with
    | DAbsent -> default_belief
    | DLeaf c ->
      if c.pos < Array.length c.docs && fst c.docs.(c.pos) = d then begin
        let _, tf = c.docs.(c.pos) in
        stats.postings_scored <- stats.postings_scored + 1;
        belief ~n_docs:source.n_docs ~df:c.df ~tf ~dl:(source.doc_len d)
          ~avg_dl:source.avg_doc_len
      end
      else default_belief
    | DSum ns ->
      let k = List.length ns in
      if k = 0 then default_belief
      else List.fold_left (fun acc n -> acc +. score n d) 0.0 ns /. float_of_int k
    | DWsum ps ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 ps in
      if total <= 0.0 then default_belief
      else List.fold_left (fun acc (w, n) -> acc +. (w *. score n d)) 0.0 ps /. total
    | DAnd ns ->
      if ns = [] then default_belief
      else List.fold_left (fun acc n -> acc *. score n d) 1.0 ns
    | DOr ns ->
      if ns = [] then default_belief
      else 1.0 -. List.fold_left (fun acc n -> acc *. (1.0 -. score n d)) 1.0 ns
    | DMax ns ->
      if ns = [] then default_belief
      else List.fold_left (fun acc n -> Float.max acc (score n d)) 0.0 ns
    | DNot n -> 1.0 -. score n d
  in
  let advance d =
    List.iter
      (fun l ->
        match l with
        | DLeaf c when c.pos < Array.length c.docs && fst c.docs.(c.pos) = d ->
          c.pos <- c.pos + 1
        | _ -> ())
      !leaves
  in
  (* The belief a document with no query terms would get: not 0.4 in
     general (e.g. #or of defaults is 0.64, #and is 0.16).  Scoring an
     impossible document id hits every leaf's default path. *)
  let baseline = score tree (-1) in
  let results = ref [] in
  let rec loop () =
    match frontier () with
    | None -> ()
    | Some d ->
      let b = score tree d in
      advance d;
      if b > baseline +. 1e-12 then results := { doc = d; belief = b } :: !results;
      loop ()
  in
  loop ();
  (List.rev !results, stats)

let eval_daat source dict ?df_of ?stopwords ?(stem = false) query =
  eval_daat_with source dict ?df_of ?stopwords ~stem query

(* ------------------------------------------------------------------ *)
(* Max-score top-k document-at-a-time evaluation                       *)

type topk_stats = {
  tk_plan : Planner.plan;
  tk_pruned : bool;
  tk_postings_total : int;
  tk_postings_decoded : int;
  tk_blocks_skipped : int;
  tk_seeks : int;
  tk_bytes_read : int;
  tk_blocks_read : int;
  tk_est_bytes : int;
  tk_est_blocks : int;
  tk_stopped : bool;
}

exception Audit_mismatch of string

let take_n n xs =
  let rec go n acc = function
    | x :: tl when n > 0 -> go (n - 1) (x :: acc) tl
    | _ -> List.rev acc
  in
  go n [] xs

(* Score descending, ties toward the smaller doc id — the ranking order
   every consumer of scored lists uses. *)
let rank_order a b =
  if a.belief = b.belief then compare a.doc b.doc else compare b.belief a.belief

(* One leaf of a max-score-evaluable query: a weighted term cursor.  The
   pruned path only handles flat additive shapes (a bag of terms under
   #sum/#wsum, or a bare term) because only there is a child's maximum
   contribution independent of the others; anything else falls back to
   the exhaustive evaluator. *)
type lin_leaf = {
  lc_weight : float;
  lc_cur : Postings.cursor option; (* None: stop word / OOV / unfetchable *)
  lc_df : int;
  lc_ub : float; (* upper-bound belief from df and max_tf *)
  lc_coeff : float; (* w * 0.6 * idf / norm — contribution scale *)
  lc_mtf : float; (* max_tf as a float; 0 when the record has no header *)
}

(* [Some (children, norm)] iff the query scores as
   (sum_i w_i * b_i) / norm with every child a plain term — bit-for-bit
   the fold [eval_daat] performs on these shapes. *)
let linear_shape query =
  let term_only ns = List.for_all (function Query.Term _ -> true | _ -> false) ns in
  match query with
  | Query.Term _ -> Some ([ (1.0, query) ], 1.0)
  | Query.Sum ns when ns <> [] && term_only ns ->
    Some (List.map (fun n -> (1.0, n)) ns, float_of_int (List.length ns))
  | Query.Wsum ps when ps <> [] && term_only (List.map snd ps) ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 ps in
    if total > 0.0 then Some (ps, total) else None
  | _ -> None

let eval_topk source dict ?df_of ?floor ?stopwords ?(stem = false) ?(audit = false)
    ?(exhaustive = false) ?(plan = Planner.Auto)
    ?(should_stop = fun (_ : stats) -> false) ?block_cache ~k query =
  if k < 0 then invalid_arg "Infnet.eval_topk: negative k";
  (match floor with
  | Some f when not (Float.is_finite f) -> invalid_arg "Infnet.eval_topk: floor must be finite"
  | Some _ when audit ->
    (* The audit oracle is the full exhaustive top-k; a floor legitimately
       drops documents below it, so the two contracts cannot be compared. *)
    invalid_arg "Infnet.eval_topk: audit cannot be combined with floor"
  | _ -> ());
  (* One physical fetch per dictionary entry, shared by the planner's
     statistics probes, the chosen executor and the audit oracle — the
     cost model never adds store reads, only O(1) header parses. *)
  let memo : (int, bytes option) Hashtbl.t = Hashtbl.create 8 in
  let raw_fetch = source.fetch in
  let fetch_memo entry =
    match Hashtbl.find_opt memo entry.Dictionary.id with
    | Some r -> r
    | None ->
      let r = raw_fetch entry in
      Hashtbl.add memo entry.Dictionary.id r;
      r
  in
  let source = { source with fetch = fetch_memo } in
  let normalize term =
    let drop =
      match stopwords with Some sw -> Stopwords.is_stopword sw term | None -> false
    in
    if drop then None else Some (if stem then Stemmer.stem term else term)
  in
  (* Planner probes: header statistics only, no lookup accounting (the
     executor's own fetches are the ones the engine charges for). *)
  let stats_of w =
    match normalize w with
    | None -> None
    | Some w -> (
      match Dictionary.find dict w with
      | None -> None
      | Some entry -> Option.map Postings.record_stats (fetch_memo entry))
  in
  let requested =
    let plan = if exhaustive then Planner.Forced Planner.Exhaustive else plan in
    match plan with
    | Planner.Auto -> (Planner.decide ~stats_of ~k query).Planner.e_plan
    | Planner.Forced p ->
      if List.mem p (Planner.applicable query) then p else Planner.Exhaustive
  in
  let audit_check ~stopped ranked =
    if audit && not stopped then begin
      let reference, _ = eval_daat source dict ?df_of ?stopwords ~stem query in
      let reference = take_n k (List.sort rank_order reference) in
      let fail msg = raise (Audit_mismatch msg) in
      if List.length reference <> List.length ranked then
        fail
          (Printf.sprintf "%s returned %d results, exhaustive %d"
             (Planner.plan_name requested) (List.length ranked) (List.length reference));
      List.iteri
        (fun i (a, b) ->
          if a.doc <> b.doc || a.belief <> b.belief then
            fail
              (Printf.sprintf
                 "rank %d diverges: %s doc %d belief %.17g, exhaustive doc %d belief %.17g"
                 i (Planner.plan_name requested) a.doc a.belief b.doc b.belief))
        (List.combine ranked reference)
    end
  in
  (* Fetch a bare term's record and open a seekable cursor on it; [None]
     for stop words, OOV terms and unfetchable records.  Blocks are
     shared across queries keyed by the record's stable locator; entries
     without one (locator < 0, e.g. B-tree-resident records) bypass the
     cache. *)
  let term_cursor stats w =
    match normalize w with
    | None -> None
    | Some w -> (
      match Dictionary.find dict w with
      | None -> None
      | Some entry -> (
        stats.record_lookups <- stats.record_lookups + 1;
        match fetch_memo entry with
        | None -> None
        | Some record ->
          let cache =
            match block_cache with
            | Some (bc, epoch) when entry.Dictionary.locator >= 0 ->
              Some (bc, entry.Dictionary.locator, epoch)
            | _ -> None
          in
          Some (entry, record, Postings.cursor ?cache record)))
  in
  let cursor_counters curs =
    List.fold_left
      (fun (t, d, bs, sk, by, bl) cur ->
        ( t + Postings.cursor_df cur,
          d + Postings.cursor_decoded cur,
          bs + Postings.cursor_blocks_skipped cur,
          sk + Postings.cursor_seeks cur,
          by + Postings.cursor_bytes_read cur,
          bl + Postings.cursor_blocks_loaded cur ))
      (0, 0, 0, 0, 0, 0) curs
  in
  (* --- plan: exhaustive --------------------------------------------- *)
  let exhaustive_exec () =
    let total = ref 0 and bytes = ref 0 and blocks = ref 0 in
    let on_record record ~positional =
      let s = Postings.record_stats record in
      total := !total + s.Postings.rs_df;
      blocks := !blocks + s.Postings.rs_blocks;
      bytes :=
        !bytes + s.Postings.rs_doc_bytes
        + (if positional then s.Postings.rs_pos_bytes else 0)
    in
    let results, dstats = eval_daat_with ~on_record source dict ?df_of ?stopwords ~stem query in
    let heap = Util.Topk.create ~k in
    List.iter (fun s -> ignore (Util.Topk.offer heap ~doc:s.doc ~score:s.belief)) results;
    let ranked =
      List.map
        (fun e -> { doc = e.Util.Topk.doc; belief = e.Util.Topk.score })
        (Util.Topk.sorted_desc heap)
    in
    ( ranked,
      dstats,
      {
        tk_plan = Planner.Exhaustive;
        tk_pruned = false;
        tk_postings_total = !total;
        tk_postings_decoded = !total;
        tk_blocks_skipped = 0;
        tk_seeks = 0;
        tk_bytes_read = !bytes;
        tk_blocks_read = !blocks;
        tk_est_bytes = 0;
        tk_est_blocks = 0;
        tk_stopped = false;
      } )
  in
  (* --- plan: additive max-score (flat shapes) ----------------------- *)
  let maxscore_exec () =
    match linear_shape query with
    | None -> assert false (* the planner only picks Maxscore for Flat *)
    | Some (children, norm) ->
    let stats = { postings_scored = 0; nodes_visited = 0; record_lookups = 0 } in
    let m = List.length children in
    stats.nodes_visited <- (match query with Query.Term _ -> 1 | _ -> 1 + m);
    let absent w =
      { lc_weight = w; lc_cur = None; lc_df = 0; lc_ub = default_belief; lc_coeff = 0.0;
        lc_mtf = 0.0 }
    in
    let leaves =
      Array.of_list
        (List.map
           (fun (w, child) ->
             let term = match child with Query.Term t -> t | _ -> assert false in
             match term_cursor stats term with
             | None -> absent w
             | Some (entry, record, cur) ->
               let df = record_df ?df_of entry record in
               (* tf_w = tf/(tf + 0.5 + 1.5*dl/avg) <= max_tf/(max_tf + 0.5);
                  without a max_tf header (v1 record) the bound degrades
                  to the idf-only cap tf_w <= 1. *)
               let mtf =
                 match Postings.max_tf record with
                 | Some mt when mt > 0 -> float_of_int mt
                 | _ -> 0.0
               in
               let tf_bound = if mtf > 0.0 then mtf /. (mtf +. 0.5) else 1.0 in
               let idf = idf_weight ~n_docs:source.n_docs ~df in
               let ub = default_belief +. (0.6 *. tf_bound *. idf) in
               { lc_weight = w; lc_cur = Some cur; lc_df = df;
                 lc_ub = ub; lc_coeff = w *. 0.6 *. idf /. norm; lc_mtf = mtf })
           children)
    in
    (* The no-evidence score, by the same fold eval_daat uses. *)
    let baseline =
      List.fold_left (fun acc (w, _) -> acc +. (w *. default_belief)) 0.0 children /. norm
    in
    let leaf_belief lf d =
      match lf.lc_cur with
      | Some cur when Postings.cur_doc cur = d ->
        stats.postings_scored <- stats.postings_scored + 1;
        belief ~n_docs:source.n_docs ~df:lf.lc_df ~tf:(Postings.cur_tf cur)
          ~dl:(source.doc_len d) ~avg_dl:source.avg_doc_len
      | _ -> default_belief
    in
    (* Exact final score, replicating eval_daat's child-order fold so
       pruned and exhaustive beliefs are bit-identical. *)
    let final_score d =
      Array.fold_left (fun acc lf -> acc +. (lf.lc_weight *. leaf_belief lf d)) 0.0 leaves
      /. norm
    in
    (* A leaf's score contribution above baseline, for bounding only. *)
    let leaf_contrib lf d =
      match lf.lc_cur with
      | Some cur when Postings.cur_doc cur = d ->
        let b =
          belief ~n_docs:source.n_docs ~df:lf.lc_df ~tf:(Postings.cur_tf cur)
            ~dl:(source.doc_len d) ~avg_dl:source.avg_doc_len
        in
        lf.lc_weight *. (b -. default_belief) /. norm
      | _ -> 0.0
    in
    let n = Array.length leaves in
    let heap = Util.Topk.create ~k in
    let thr () =
      let base = baseline +. 1e-12 in
      (* A caller-seeded floor (the scatter-gather coordinator's current
         global kth score) starts the threshold above the heap's own:
         documents that cannot reach it can never enter the global
         top-k, so pruning against it is safe from the first
         candidate.  Strictly-below-floor pruning only — ties at the
         floor survive, preserving the merge's doc-ascending
         tie-break. *)
      let base = match floor with Some f -> Float.max f base | None -> base in
      match Util.Topk.threshold heap with Some t -> Float.max t base | None -> base
    in
    (* Floating-point slack on upper bounds: a candidate is pruned only
       when its bound clears the threshold by more than this. *)
    let margin = 1e-9 in
    let contrib_bound =
      Array.map (fun lf -> lf.lc_weight *. (lf.lc_ub -. default_belief) /. norm) leaves
    in
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare contrib_bound.(b) contrib_bound.(a)) order;
    (* rem.(i) = sum of bounds of sorted leaves i.. — what documents
       containing none of the first i sorted terms can still add. *)
    let rem = Array.make (n + 1) 0.0 in
    for i = n - 1 downto 0 do
      rem.(i) <- contrib_bound.(order.(i)) +. rem.(i + 1)
    done;
    (* Leaves order.(ess..) are non-essential: alone they cannot lift a
       document over the current threshold, so the frontier ignores them
       and they are only probed via seek.  Monotone: thr only rises. *)
    (* Per-candidate refinement of [rem]: once a concrete document is on
       the table its length is known, so the tf bound tightens from
       max_tf/(max_tf + 0.5) (the dl -> 0 limit) to
       max_tf/(max_tf + 0.5 + 1.5*dl/avg_dl) — typically ~2x smaller at
       average length.  Still a true upper bound (tf_weight is monotone
       in tf and exact in dl), so pruning with it cannot change results;
       the essential set keeps the global bounds, which must hold for
       every document. *)
    let coeff_s = Array.map (fun j -> leaves.(j).lc_coeff) order in
    let mtf_s = Array.map (fun j -> leaves.(j).lc_mtf) order in
    let rem_d = Array.make (n + 1) 0.0 in
    let fill_rem_d d =
      let dnorm =
        if source.avg_doc_len > 0.0 then
          float_of_int (source.doc_len d) /. source.avg_doc_len
        else 1.0
      in
      let kd = 0.5 +. (1.5 *. dnorm) in
      for i = n - 1 downto 0 do
        let b =
          if mtf_s.(i) > 0.0 then coeff_s.(i) *. (mtf_s.(i) /. (mtf_s.(i) +. kd))
          else coeff_s.(i)
        in
        rem_d.(i) <- b +. rem_d.(i + 1)
      done
    in
    let ess = ref n in
    let update_ess () =
      let t = thr () in
      while !ess > 0 && baseline +. rem.(!ess - 1) +. margin <= t do
        decr ess
      done
    in
    let stopped = ref false in
    (* With a seeded floor the essential set can shrink before any
       candidate is scored; without one this is a no-op (thr() starts at
       the baseline, which no bound sum undercuts). *)
    update_ess ();
    let running = ref true in
    while !running do
      if should_stop stats then begin
        stopped := true;
        running := false
      end
      else begin
        let ess_now = !ess in
        let d = ref max_int in
        for j = 0 to ess_now - 1 do
          match leaves.(order.(j)).lc_cur with
          | Some cur ->
            let cd = Postings.cur_doc cur in
            if cd < !d then d := cd
          | None -> ()
        done;
        if !d = max_int then running := false
        else begin
          let d = !d in
          if ess_now < n then fill_rem_d d;
          let acc = ref 0.0 and pruned = ref false and i = ref 0 in
          while (not !pruned) && !i < n do
            let lf = leaves.(order.(!i)) in
            if !i < ess_now then acc := !acc +. leaf_contrib lf d
            else if baseline +. !acc +. rem_d.(!i) +. margin <= thr () then pruned := true
            else begin
              (match lf.lc_cur with
              | Some cur -> Postings.cursor_seek cur d
              | None -> ());
              acc := !acc +. leaf_contrib lf d
            end;
            incr i
          done;
          let changed = ref false in
          if not !pruned then begin
            let s = final_score d in
            if s > baseline +. 1e-12 then changed := Util.Topk.offer heap ~doc:d ~score:s
          end;
          (* Advance past d before the essential set shrinks, so the
             cursor that supplied this frontier doc always moves. *)
          for j = 0 to ess_now - 1 do
            match leaves.(order.(j)).lc_cur with
            | Some cur when Postings.cur_doc cur = d -> Postings.cursor_next cur
            | _ -> ()
          done;
          if !changed then update_ess ()
        end
      end
    done;
    let ranked =
      List.map
        (fun e -> { doc = e.Util.Topk.doc; belief = e.Util.Topk.score })
        (Util.Topk.sorted_desc heap)
    in
    let curs =
      Array.to_list leaves
      |> List.filter_map (fun lf -> lf.lc_cur)
    in
    let total, decoded, blocks, seeks, bytes, loaded = cursor_counters curs in
    ( ranked,
      stats,
      {
        tk_plan = Planner.Maxscore;
        tk_pruned = true;
        tk_postings_total = total;
        tk_postings_decoded = decoded;
        tk_blocks_skipped = blocks;
        tk_seeks = seeks;
        tk_bytes_read = bytes;
        tk_blocks_read = loaded;
        tk_est_bytes = 0;
        tk_est_blocks = 0;
        tk_stopped = !stopped;
      } )
  in
  (* --- plan: intersection-first #and (multiplicative max-score) -----

     #and is a soft conjunction: a document missing a member still
     scores, every missing member contributing exactly the 0.4 default
     factor.  So a pure document intersection would be wrong — instead
     this is the max-score idea carried to a product: sort leaves by
     upper-bound belief descending, keep an essential prefix whose
     absence alone caps a document below the threshold (a document
     absent from the first j sorted leaves scores at most
     0.4^j * prod_{i>=j} ub_i), drive the essential cursors and only
     seek the rest.  With k results banked the essential set shrinks
     toward the rarest (highest-idf) member and the executor degenerates
     into exactly the intersection-first scan the planner priced. *)
  let and_intersect_exec terms0 =
    let stats = { postings_scored = 0; nodes_visited = 0; record_lookups = 0 } in
    stats.nodes_visited <- 1 + List.length terms0;
    (* One leaf per child, in original child order: the exact final
       score folds in this order, like eval_daat's DAnd.  [lc_coeff]
       holds the idf here (the refined per-document bound needs it);
       weights and norms don't exist under #and. *)
    let leaves =
      Array.of_list
        (List.map
           (fun term ->
             match term_cursor stats term with
             | None ->
               { lc_weight = 1.0; lc_cur = None; lc_df = 0; lc_ub = default_belief;
                 lc_coeff = 0.0; lc_mtf = 0.0 }
             | Some (entry, record, cur) ->
               let df = record_df ?df_of entry record in
               let mtf =
                 match Postings.max_tf record with
                 | Some mt when mt > 0 -> float_of_int mt
                 | _ -> 0.0
               in
               let tf_bound = if mtf > 0.0 then mtf /. (mtf +. 0.5) else 1.0 in
               let idf = idf_weight ~n_docs:source.n_docs ~df in
               { lc_weight = 1.0; lc_cur = Some cur; lc_df = df;
                 lc_ub = default_belief +. (0.6 *. tf_bound *. idf);
                 lc_coeff = idf; lc_mtf = mtf })
           terms0)
    in
    let n = Array.length leaves in
    (* eval_daat's DAnd no-evidence score: every leaf defaults. *)
    let baseline = Array.fold_left (fun acc _ -> acc *. default_belief) 1.0 leaves in
    let leaf_belief lf d =
      match lf.lc_cur with
      | Some cur when Postings.cur_doc cur = d ->
        stats.postings_scored <- stats.postings_scored + 1;
        belief ~n_docs:source.n_docs ~df:lf.lc_df ~tf:(Postings.cur_tf cur)
          ~dl:(source.doc_len d) ~avg_dl:source.avg_doc_len
      | _ -> default_belief
    in
    (* Exact final score, replicating eval_daat's child-order fold so
       intersected and exhaustive beliefs are bit-identical. *)
    let final_score d =
      Array.fold_left (fun acc lf -> acc *. leaf_belief lf d) 1.0 leaves
    in
    let heap = Util.Topk.create ~k in
    let thr () =
      let base = baseline +. 1e-12 in
      (* Same strictly-below-floor pruning contract as the additive
         path: the scatter-gather coordinator's global kth score can
         only drop documents that cannot enter the global top-k. *)
      let base = match floor with Some f -> Float.max f base | None -> base in
      match Util.Topk.threshold heap with Some t -> Float.max t base | None -> base
    in
    let margin = 1e-9 in
    (* Largest upper bound first: missing a high-ub (rare) member caps
       the product hardest, so those leaves gate the frontier. *)
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare leaves.(b).lc_ub leaves.(a).lc_ub) order;
    let pow04 = Array.make (n + 1) 1.0 in
    for i = 1 to n do
      pow04.(i) <- pow04.(i - 1) *. default_belief
    done;
    (* sub.(i) = product of sorted upper bounds i.. — a document absent
       from every leaf before i scores at most pow04.(i) *. sub.(i). *)
    let sub = Array.make (n + 1) 1.0 in
    for i = n - 1 downto 0 do
      sub.(i) <- leaves.(order.(i)).lc_ub *. sub.(i + 1)
    done;
    (* Per-candidate refinement, as in the additive path: once the
       document's length is known the tf bound tightens from
       mtf/(mtf + 0.5) to mtf/(mtf + kd); still a true upper bound, so
       pruning with it cannot change results. *)
    let idf_s = Array.map (fun j -> leaves.(j).lc_coeff) order in
    let mtf_s = Array.map (fun j -> leaves.(j).lc_mtf) order in
    let rem_d = Array.make (n + 1) 1.0 in
    let fill_rem_d d =
      let dnorm =
        if source.avg_doc_len > 0.0 then
          float_of_int (source.doc_len d) /. source.avg_doc_len
        else 1.0
      in
      let kd = 0.5 +. (1.5 *. dnorm) in
      for i = n - 1 downto 0 do
        let tfb = if mtf_s.(i) > 0.0 then mtf_s.(i) /. (mtf_s.(i) +. kd) else 1.0 in
        rem_d.(i) <- (default_belief +. (0.6 *. idf_s.(i) *. tfb)) *. rem_d.(i + 1)
      done
    in
    let ess = ref n in
    let update_ess () =
      let t = thr () in
      while !ess > 0 && pow04.(!ess - 1) *. sub.(!ess - 1) +. margin <= t do
        decr ess
      done
    in
    let stopped = ref false in
    (* With a seeded floor the essential set can shrink before any
       candidate is scored, exactly as on the additive path. *)
    update_ess ();
    let running = ref true in
    while !running do
      if should_stop stats then begin
        stopped := true;
        running := false
      end
      else begin
        let ess_now = !ess in
        let d = ref max_int in
        for j = 0 to ess_now - 1 do
          match leaves.(order.(j)).lc_cur with
          | Some cur ->
            let cd = Postings.cur_doc cur in
            if cd < !d then d := cd
          | None -> ()
        done;
        if !d = max_int then running := false
        else begin
          let d = !d in
          if ess_now < n then fill_rem_d d;
          let acc = ref 1.0 and pruned = ref false and i = ref 0 in
          while (not !pruned) && !i < n do
            let lf = leaves.(order.(!i)) in
            if !i < ess_now then acc := !acc *. leaf_belief lf d
            else if !acc *. rem_d.(!i) +. margin <= thr () then pruned := true
            else begin
              (match lf.lc_cur with
              | Some cur -> Postings.cursor_seek cur d
              | None -> ());
              acc := !acc *. leaf_belief lf d
            end;
            incr i
          done;
          let changed = ref false in
          if not !pruned then begin
            let s = final_score d in
            if s > baseline +. 1e-12 then changed := Util.Topk.offer heap ~doc:d ~score:s
          end;
          (* Advance past d before the essential set shrinks, so the
             cursor that supplied this frontier doc always moves. *)
          for j = 0 to ess_now - 1 do
            match leaves.(order.(j)).lc_cur with
            | Some cur when Postings.cur_doc cur = d -> Postings.cursor_next cur
            | _ -> ()
          done;
          if !changed then update_ess ()
        end
      end
    done;
    let ranked =
      List.map
        (fun e -> { doc = e.Util.Topk.doc; belief = e.Util.Topk.score })
        (Util.Topk.sorted_desc heap)
    in
    let curs = Array.to_list leaves |> List.filter_map (fun lf -> lf.lc_cur) in
    let total, decoded, blocks, seeks, bytes, loaded = cursor_counters curs in
    ( ranked,
      stats,
      {
        tk_plan = Planner.Intersect;
        tk_pruned = true;
        tk_postings_total = total;
        tk_postings_decoded = decoded;
        tk_blocks_skipped = blocks;
        tk_seeks = seeks;
        tk_bytes_read = bytes;
        tk_blocks_read = loaded;
        tk_est_bytes = 0;
        tk_est_blocks = 0;
        tk_stopped = !stopped;
      } )
  in
  (* --- plan: intersection-first positional (#phrase/#od/#uw) --------

     These operators are hard conjunctions (any absent member empties
     the result), so a document-level leapfrog intersection is exact:
     drive the rarest member, seek the others, and decode position
     bytes lazily — only for co-occurring documents — through the same
     per-document window matchers the exhaustive evaluator uses.  Two
     phases because the leaf's df is its match count: matches are
     collected first, then scored.  The caller's floor is deliberately
     ignored (a superset of the floored result is always safe). *)
  let positional_intersect_exec ~window ~unordered ws =
    let stats = { postings_scored = 0; nodes_visited = 0; record_lookups = 0 } in
    stats.nodes_visited <- 1;
    let members = List.map (term_cursor stats) ws in
    let stopped = ref false in
    let matches =
      if members = [] || List.exists Option.is_none members then []
      else begin
        let curs =
          Array.of_list (List.map (fun m -> match m with Some (_, _, c) -> c | None -> assert false) members)
        in
        let nm = Array.length curs in
        let driver = ref 0 in
        for i = 1 to nm - 1 do
          if Postings.cursor_df curs.(i) < Postings.cursor_df curs.(!driver) then driver := i
        done;
        let driver = !driver in
        let out = ref [] in
        let running = ref true in
        while !running do
          if should_stop stats then begin
            stopped := true;
            running := false
          end
          else begin
            let d = Postings.cur_doc curs.(driver) in
            if d = max_int then running := false
            else begin
              (* Leapfrog: seek every other member to d; any overshoot
                 names the next possible co-occurrence. *)
              let target = ref d in
              for i = 0 to nm - 1 do
                if i <> driver then begin
                  Postings.cursor_seek curs.(i) d;
                  let cd = Postings.cur_doc curs.(i) in
                  if cd > !target then target := cd
                end
              done;
              if !target = d then begin
                (* Co-occurrence: only now touch position bytes, in
                   member order for the ordered chain. *)
                let arrays =
                  Array.map
                    (fun cur ->
                      let ps = Postings.cursor_positions cur in
                      stats.postings_scored <- stats.postings_scored + List.length ps;
                      Array.of_list ps)
                    curs
                in
                let tf =
                  if unordered then uw_match_tf ~window arrays
                  else od_match_tf ~window arrays.(0) (List.tl (Array.to_list arrays))
                in
                if tf > 0 then out := (d, tf) :: !out;
                Postings.cursor_next curs.(driver)
              end
              else if !target = max_int then running := false
              else Postings.cursor_seek curs.(driver) !target
            end
          end
        done;
        List.rev !out
      end
    in
    (* Phase two: df is the match count, so scoring must wait for the
       full intersection — identical inputs to eval_daat's match leaf. *)
    let df = List.length matches in
    let heap = Util.Topk.create ~k in
    List.iter
      (fun (d, tf) ->
        stats.postings_scored <- stats.postings_scored + 1;
        let b =
          belief ~n_docs:source.n_docs ~df ~tf ~dl:(source.doc_len d)
            ~avg_dl:source.avg_doc_len
        in
        (* A top-level positional query's baseline is the bare default:
           the tree is one leaf. *)
        if b > default_belief +. 1e-12 then ignore (Util.Topk.offer heap ~doc:d ~score:b))
      matches;
    let ranked =
      List.map
        (fun e -> { doc = e.Util.Topk.doc; belief = e.Util.Topk.score })
        (Util.Topk.sorted_desc heap)
    in
    let curs = List.filter_map (fun m -> Option.map (fun (_, _, c) -> c) m) members in
    let total, decoded, blocks, seeks, bytes, loaded = cursor_counters curs in
    ( ranked,
      stats,
      {
        tk_plan = Planner.Intersect;
        tk_pruned = true;
        tk_postings_total = total;
        tk_postings_decoded = decoded;
        tk_blocks_skipped = blocks;
        tk_seeks = seeks;
        tk_bytes_read = bytes;
        tk_blocks_read = loaded;
        tk_est_bytes = 0;
        tk_est_blocks = 0;
        tk_stopped = !stopped;
      } )
  in
  let ranked, stats, tk =
    match requested with
    | Planner.Exhaustive -> exhaustive_exec ()
    | Planner.Maxscore -> maxscore_exec ()
    | Planner.Intersect -> (
      match query with
      | Query.And ns ->
        and_intersect_exec (List.map (function Query.Term t -> t | _ -> assert false) ns)
      | Query.Phrase ws -> positional_intersect_exec ~window:1 ~unordered:false ws
      | Query.Od (window, ws) -> positional_intersect_exec ~window ~unordered:false ws
      | Query.Uw (window, ws) -> positional_intersect_exec ~window ~unordered:true ws
      | _ -> assert false)
  in
  audit_check ~stopped:tk.tk_stopped ranked;
  (* Uniform estimated-vs-actual reporting: the executed plan's estimate
     from the same memoized header statistics the decision used. *)
  let est = Planner.estimate ~stats_of ~k query requested in
  ( ranked,
    stats,
    { tk with tk_est_bytes = est.Planner.e_bytes; tk_est_blocks = est.Planner.e_blocks } )
