(** Inverted list records.

    One record per term: a header of summary statistics followed by, for
    each document containing the term, the document id, the
    within-document frequency, and the term's positions — "a vector of
    integers in a compressed format" (delta + v-byte coding, which is
    where INQUERY's ~60 % compression came from).

    Two record layouts exist (all integers v-byte coded):

    {b v1} (legacy; still readable through every entry point):
    [df] [cf] then per document (ascending id):
    [doc gap] [tf] [tf position gaps].

    {b v2} (skip blocks; what {!encode} and {!Builder} emit):
    a [0x80 TAG] version sentinel, then
    [df] [cf] [max_tf] [n_blocks] [skip_len], a skip table with one
    entry per {!block_size}-document block
    ([last-doc delta] [doc-region bytes] [position-region bytes]),
    then [doc_len], the doc region, and the position region of
    per-document position gaps.  Document-level scans never touch
    position bytes, and {!cursor_seek} jumps whole blocks via the skip
    table.

    The doc region comes in three {e compression tiers}, picked by df
    and named by the sentinel's TAG byte — the adaptive ladder:

    - [0x02] {e v-byte}: per document [doc gap] [tf], v-byte coded —
      the original v2 layout, byte-identical to what earlier builds
      wrote, for the mid-range.
    - [0x03] {e raw} ([v1_cutoff_df <= df < raw_cutoff_df]): fixed
      u32le (gap, tf) pairs.  Small records don't amortize
      variable-length coding; decode is two aligned reads.
    - [0x04] {e cold} ([df >= cold_cutoff_df]): per block two width
      bytes then bit-packed gaps and bit-packed (tf-1)s at exactly the
      block's largest value's width.  Long-tail records dominate the
      index's bytes and their hot blocks live in the decoded-block
      cache, so they take the tightest packing.

    Positions are v-byte in every tier, and the skip-table shape is
    shared, so seeking, fsck and corruption tests treat all tiers
    uniformly.  {!validate} additionally cross-checks the TAG against
    the df-chosen tier, exact per-block byte counts, canonical cold
    widths and zero padding bits, so any single flipped bit in any tier
    is flagged.

    The first byte of a v1 record codes [df]; the v1 encoder only starts
    a record with [0x80] (v-byte zero) for the empty record
    [0x80 0x80], so the [0x80 TAG] sentinels are unambiguous and
    {!version} can sniff reliably. *)

type doc_postings = { doc : int; positions : int list }
(** Positions are ascending token indexes; [tf] is their length. *)

val block_size : int
(** Documents per skip block (128). *)

val v1_cutoff_df : int
(** Records with fewer documents than this are emitted in the v1 layout:
    at that size the v2 header would dominate the record and break the
    paper's small-object distribution, and skipping cannot pay.  Readers
    sniff, so the cutoff never matters on the way in. *)

val raw_cutoff_df : int
(** Records with [v1_cutoff_df <= df < raw_cutoff_df] store fixed-width
    (gap, tf) pairs instead of v-byte. *)

val cold_cutoff_df : int
(** Records with [df >= cold_cutoff_df] bit-pack each block at its
    minimal widths. *)

type tier =
  | V1  (** legacy interleaved layout *)
  | Raw  (** v2, fixed-width u32le doc region *)
  | Vbyte  (** v2, v-byte doc region *)
  | Cold  (** v2, per-block bit-packed doc region *)

val tier : bytes -> tier
(** Sniffed from the sentinel bytes. *)

val tier_of_df : int -> tier
(** The tier the encoder assigns a record of the given document count
    — what {!encode}, {!Builder.finish}, {!merge} and {!remove_docs}
    emit, and what {!validate} requires of the sentinel. *)

val tier_name : tier -> string
(** ["v1"], ["raw"], ["vbyte"] or ["cold"] — census labels. *)

val version : bytes -> int
(** [1] or [2], sniffed from the record's leading bytes; every tier but
    {!V1} is version 2. *)

val encode : (int * int list) list -> bytes
(** [encode entries] builds a record from [(doc, positions)] pairs
    with strictly ascending doc ids and, per doc, strictly ascending
    positions (each doc must have at least one position) — v2 in the
    {!tier_of_df}-chosen tier once the document count reaches
    {!v1_cutoff_df}, compact v1 below it.  Raises [Invalid_argument] on
    violations. *)

val encode_v1 : (int * int list) list -> bytes
(** The legacy encoder, kept verbatim for backward-compatibility tests
    and for exercising the v1 read paths. *)

module Builder : sig
  (** Streaming v2 encoder: the indexer feeds one document at a time
      instead of materialising the [(doc, positions)] list. *)

  type t

  val create : unit -> t

  val add : t -> doc:int -> positions:int list -> unit
  (** Same ascending-id/ascending-position contract as {!encode}. *)

  val finish : t -> bytes
end

val stats : bytes -> int * int
(** [(df, cf)] from the header. *)

type record_stats = {
  rs_tier : tier;
  rs_df : int;
  rs_cf : int;
  rs_max_tf : int option;  (** [None] on v1 records (no header slot). *)
  rs_blocks : int;  (** Skip blocks; [0] on v1 (no skip table). *)
  rs_doc_bytes : int;
      (** Doc-region bytes a full document scan decodes.  On v1 the
          whole payload (positions are interleaved and cannot be
          skipped), on v2 the doc region alone. *)
  rs_pos_bytes : int;  (** Position-region bytes; [0] on v1. *)
}
(** The per-record inputs to the query planner's cost model. *)

val record_stats : bytes -> record_stats
(** Parses the header and (on v2) the varint-coded region lengths only
    — never the doc or position regions — so asking costs O(1) parsing
    regardless of df.  The planner estimates each candidate plan's
    decode bytes from these without paying any decode itself. *)

val stats_of_locator : bytes -> record_stats
(** Alias for {!record_stats}: the argument is the record fetched by a
    dictionary entry's locator (this module never resolves locators
    itself — the store does). *)

val max_tf : bytes -> int option
(** Largest within-document frequency in the record — the input to a
    term's belief upper bound.  [None] for v1 records (no header slot). *)

val skip_table_region : bytes -> (int * int) option
(** [(offset, length)] of the skip table's bytes within the record;
    [None] for v1.  Exposed so corruption tests can aim at it. *)

val doc_region : bytes -> (int * int) option
(** [(offset, length)] of the doc region — the tier-dependent bytes the
    compression ladder varies; [None] for v1.  Exposed so the per-tier
    bit-flip sweeps can aim at exactly the raw or cold blocks. *)

val fold_docs : bytes -> init:'a -> f:('a -> doc:int -> tf:int -> 'a) -> 'a
(** Fold over documents.  On v2 records position bytes are never
    visited; on v1 the gaps are still scanned byte-wise, as INQUERY
    must. *)

val fold_positions : bytes -> init:'a -> f:('a -> doc_postings -> 'a) -> 'a
(** Fold with full position lists (phrase evaluation). *)

val decode : bytes -> doc_postings list

val doc_count : bytes -> int
(** Same as [fst (stats b)]. *)

val merge : bytes -> bytes -> bytes
(** [merge a b] combines two records for the same term whose document
    sets are disjoint (e.g. an existing record and the postings of newly
    added documents).  Accepts any tier; re-emits in the merged
    document count's tier with rebuilt blocks.  Raises
    [Invalid_argument] if doc ids collide. *)

val remove_docs : bytes -> (int -> bool) -> bytes option
(** [remove_docs rec p] drops every document matched by [p]; [None] if
    the record becomes empty — document-deletion support.  Accepts any
    tier; re-emits in the remaining count's tier with rebuilt
    blocks. *)

val validate : bytes -> (unit, string) result
(** Deep structural check, for fsck: headers, skip-table invariants
    (strictly ascending last-doc ids, block byte counts that tile the
    regions and stay inside the record), gap monotonicity, tf/cf/max_tf
    consistency, the sentinel-vs-df tier agreement, and the per-tier
    block invariants (raw: exact 8-byte-per-posting block lengths;
    cold: width-implied block lengths, canonical widths, zero padding
    bits).  Reports the first problem; never raises. *)

(** {2 Cursors}

    Stateful forward iteration over a record's (doc, tf) pairs, with
    skip-table-accelerated {!cursor_seek} on v2 records (v1 cursors seek
    by scanning).  Used by the document-at-a-time evaluators.

    v2 cursors decode one whole {!block_size}-document block at a time
    into arrays: {!cursor_decoded} therefore counts in block-sized
    steps, and a block jumped clean over by {!cursor_seek} is never
    decoded at all.  With [?cache], decoded blocks are shared through a
    {!Util.Block_cache} under [(src, block, epoch)] keys: a hit skips
    the decode (and the counter) entirely, which is how reused query
    terms stop paying for decompression. *)

type cursor

val cursor : ?cache:Util.Block_cache.t * int * int -> bytes -> cursor
(** Positioned on the first posting ({!cur_doc} is [max_int] if the
    record is empty).  [cache] is [(cache, src, epoch)]: the record's
    stable object id and the epoch it was fetched under — callers must
    pass a key that uniquely names these bytes, or hits would hand back
    blocks of a different record. *)

val cur_doc : cursor -> int
(** Current document id, [max_int] once exhausted. *)

val cur_tf : cursor -> int
(** Current within-document frequency (meaningless once exhausted). *)

val cursor_df : cursor -> int

val cursor_next : cursor -> unit
(** Advance to the next posting. *)

val cursor_seek : cursor -> int -> unit
(** [cursor_seek c target] advances until [cur_doc c >= target]
    (possibly to exhaustion), jumping whole blocks via the skip table
    when possible.  No-op if already there. *)

val cursor_decoded : cursor -> int
(** Postings decoded by this cursor so far (whole blocks on v2; cache
    hits decode nothing and add nothing). *)

val cursor_blocks_skipped : cursor -> int
(** Whole blocks jumped over without decoding. *)

val cursor_seeks : cursor -> int
(** Number of forward {!cursor_seek} calls that had to move. *)

val cursor_blocks_loaded : cursor -> int
(** Blocks freshly decoded by this cursor (cache hits excluded); [0] on
    v1 records.  The planner's estimated-vs-actual block counter. *)

val cursor_bytes_read : cursor -> int
(** Record bytes this cursor actually decoded: doc-region bytes of every
    freshly decoded block (v1: all bytes stepped over) plus position
    bytes walked by {!cursor_positions}.  Cache hits add nothing.  The
    planner's estimated-vs-actual byte counter. *)

val cursor_positions : cursor -> int list
(** The current document's ascending positions — identical to what
    {!fold_positions} reports for this document.  On v2 records the
    block's position slice is walked lazily and forward-only (preceding
    runs skipped via the decoded tfs), so positions cost nothing until
    asked for and an ascending intersection pays only for co-occurring
    documents.  Raises [Invalid_argument] if the cursor is exhausted. *)
