(** Cost-based query planner.

    The engine has three evaluation strategies; until now the choice was
    made by query {e shape} alone (flat additive queries took the
    max-score pruned path, everything else fell back to exhaustive
    DAAT).  This module makes the choice {e cost-based}: for each
    applicable plan it estimates the postings bytes and skip blocks the
    executor would decode, from per-record statistics that
    {!Postings.record_stats} reads out of headers and skip tables alone
    (df, block count, doc-region bytes, position-region bytes, tier,
    max_tf — never a doc-region decode), and picks the cheapest.

    The planner knows nothing about dictionaries, stores or epochs: the
    caller supplies a [stats_of] closure mapping a {e raw query term}
    to the statistics of its record (applying its own normalisation,
    stop-word dropping and fetch policy; [None] means the term
    contributes no postings).  This keeps the module a pure cost model
    below {!Infnet}, testable without an index.

    Estimates are deliberately coarse — upper-bound-flavoured counts of
    the bytes each executor is {e allowed} to touch — because they only
    need to rank plans, not predict latency.  The executors report
    actual bytes/blocks next to the estimate ({!Infnet.topk_stats}) so
    estimation error stays observable. *)

type plan =
  | Exhaustive  (** full DAAT over every leaf's whole record *)
  | Maxscore  (** additive max-score pruned top-k (flat shapes) *)
  | Intersect
      (** intersection-first: drive the rarest member's cursor and
          [cursor_seek] the others — multiplicative max-score bounds
          for [#and], exact position intersection for [#phrase] /
          [#od] / [#uw] *)

type choice =
  | Auto  (** pick the cheapest applicable plan *)
  | Forced of plan
      (** execute this plan; silently falls back to {!Exhaustive} when
          the plan does not apply to the query's shape (a forced plan
          never changes results, so the safe fallback is the oracle) *)

val plan_name : plan -> string
(** ["exhaustive"], ["maxscore"], ["intersect"] — stats / CLI labels. *)

val plan_of_string : string -> plan option
(** Inverse of {!plan_name}. *)

type shape =
  | Flat  (** bare term, or [#sum]/[#wsum] of bare terms *)
  | Conjunctive  (** [#and] of bare terms *)
  | Positional  (** top-level [#phrase], [#od] or [#uw] *)
  | Other  (** anything else: only {!Exhaustive} applies *)

val shape_of : Query.t -> shape
(** The planner's shape classes.  [Flat] matches exactly the queries
    the additive max-score path accepts (including the positive-weight
    requirement on [#wsum]); [Conjunctive]/[Positional] are the shapes
    the intersection executor accepts. *)

val applicable : Query.t -> plan list
(** The plans that can execute this query, cheapest-machinery first;
    always ends with {!Exhaustive}. *)

type estimate = {
  e_plan : plan;
  e_bytes : int;  (** estimated record bytes decoded (doc + position) *)
  e_blocks : int;  (** estimated skip blocks decoded (v1 records: 0) *)
}

val estimate :
  stats_of:(string -> Postings.record_stats option) ->
  k:int ->
  Query.t ->
  plan ->
  estimate
(** Cost of executing the query under the given plan.  Total: a plan
    that does not apply to the query's shape is costed as
    {!Exhaustive}, mirroring the {!Forced} fallback. *)

val decide :
  stats_of:(string -> Postings.record_stats option) ->
  k:int ->
  Query.t ->
  estimate
(** The cheapest applicable plan by estimated bytes; ties break toward
    the more aggressive executor ({!Maxscore}, then {!Intersect}, then
    {!Exhaustive}) since equal estimates mean the pruning machinery is
    free. *)
