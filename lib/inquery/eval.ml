type judgments = (int, unit) Hashtbl.t

let judgments_of_list docs =
  let t = Hashtbl.create (List.length docs) in
  List.iter (fun d -> Hashtbl.replace t d ()) docs;
  t

let relevant_count = Hashtbl.length

let is_relevant t doc = Hashtbl.mem t doc

let take k xs =
  (* Tail-recursive: ranked lists can span a whole collection. *)
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go k [] xs

let precision_at ranked rel ~k =
  if k <= 0 then invalid_arg "Eval.precision_at: k must be positive";
  let top = take k ranked in
  let hits = List.length (List.filter (is_relevant rel) top) in
  float_of_int hits /. float_of_int k

let recall_at ranked rel ~k =
  let total = relevant_count rel in
  if total = 0 then 0.0
  else begin
    let top = take k ranked in
    let hits = List.length (List.filter (is_relevant rel) top) in
    float_of_int hits /. float_of_int total
  end

let r_precision ranked rel =
  let r = relevant_count rel in
  if r = 0 then 0.0 else precision_at ranked rel ~k:r

let average_precision ranked rel =
  let total = relevant_count rel in
  if total = 0 then 0.0
  else begin
    let _, sum =
      List.fold_left
        (fun (i, (hits, sum)) doc ->
          let rank = i + 1 in
          if is_relevant rel doc then begin
            let hits = hits + 1 in
            (rank, (hits, sum +. (float_of_int hits /. float_of_int rank)))
          end
          else (rank, (hits, sum)))
        (0, (0, 0.0))
        ranked
      |> fun (_, acc) -> acc
    in
    sum /. float_of_int total
  end

let interpolated_precision ranked rel ~recall =
  if recall < 0.0 || recall > 1.0 then
    invalid_arg "Eval.interpolated_precision: recall must be in [0, 1]";
  let total = relevant_count rel in
  if total = 0 then 0.0
  else begin
    let best = ref 0.0 in
    let hits = ref 0 in
    List.iteri
      (fun i doc ->
        let rank = i + 1 in
        if is_relevant rel doc then incr hits;
        let r = float_of_int !hits /. float_of_int total in
        let p = float_of_int !hits /. float_of_int rank in
        if r >= recall && p > !best then best := p)
      ranked;
    !best
  end
