type term_acc = {
  entry : Dictionary.entry;
  builder : Postings.Builder.t; (* streaming v2 record under construction *)
  mutable pending : int list; (* current doc's positions, reversed *)
  mutable pending_count : int;
}

type t = {
  dict : Dictionary.t;
  stopwords : Stopwords.t option;
  stem : bool;
  mutable accs : term_acc option array; (* indexed by term id *)
  mutable doc_count : int;
  mutable last_doc_id : int;
  mutable doc_lens : int array;
  mutable max_doc_id : int;
  mutable collection_bytes : int;
  mutable posting_count : int;
  mutable occurrence_count : int;
}

let create ?stopwords ?(stem = false) () =
  {
    dict = Dictionary.create ();
    stopwords;
    stem;
    accs = Array.make 1024 None;
    doc_count = 0;
    last_doc_id = -1;
    doc_lens = Array.make 1024 0;
    max_doc_id = -1;
    collection_bytes = 0;
    posting_count = 0;
    occurrence_count = 0;
  }

let acc_for t term =
  let entry = Dictionary.intern t.dict term in
  if entry.Dictionary.id >= Array.length t.accs then begin
    let accs = Array.make (max (entry.Dictionary.id + 1) (Array.length t.accs * 2)) None in
    Array.blit t.accs 0 accs 0 (Array.length t.accs);
    t.accs <- accs
  end;
  match t.accs.(entry.Dictionary.id) with
  | Some acc -> acc
  | None ->
    let acc =
      { entry; builder = Postings.Builder.create (); pending = []; pending_count = 0 }
    in
    t.accs.(entry.Dictionary.id) <- Some acc;
    acc

let flush_pending t acc doc_id =
  if acc.pending_count > 0 then begin
    Postings.Builder.add acc.builder ~doc:doc_id ~positions:(List.rev acc.pending);
    acc.entry.Dictionary.df <- acc.entry.Dictionary.df + 1;
    acc.entry.Dictionary.cf <- acc.entry.Dictionary.cf + acc.pending_count;
    t.posting_count <- t.posting_count + 1;
    t.occurrence_count <- t.occurrence_count + acc.pending_count;
    acc.pending <- [];
    acc.pending_count <- 0
  end

let record_doc_len t doc_id len =
  if doc_id >= Array.length t.doc_lens then begin
    let lens = Array.make (max (doc_id + 1) (Array.length t.doc_lens * 2)) 0 in
    Array.blit t.doc_lens 0 lens 0 (Array.length t.doc_lens);
    t.doc_lens <- lens
  end;
  t.doc_lens.(doc_id) <- len;
  t.max_doc_id <- max t.max_doc_id doc_id

let begin_document t doc_id =
  if doc_id <= t.last_doc_id then
    invalid_arg "Indexer: document ids must be strictly increasing";
  t.last_doc_id <- doc_id;
  t.doc_count <- t.doc_count + 1

(* Index one occurrence; the per-doc flush happens when the document is
   complete, because the compressed entry needs tf up front. *)
let occurrence touched acc position =
  if acc.pending_count = 0 then touched := acc :: !touched;
  acc.pending <- position :: acc.pending;
  acc.pending_count <- acc.pending_count + 1

let finish_document t touched doc_id indexed_len =
  List.iter (fun acc -> flush_pending t acc doc_id) !touched;
  record_doc_len t doc_id indexed_len

let add_document t ~doc_id text =
  begin_document t doc_id;
  let touched = ref [] in
  let indexed =
    Lexer.fold_tokens text ~init:0 ~f:(fun n term position ->
        let keep =
          match t.stopwords with Some sw -> not (Stopwords.is_stopword sw term) | None -> true
        in
        if keep then begin
          let term = if t.stem then Stemmer.stem term else term in
          occurrence touched (acc_for t term) position;
          n + 1
        end
        else n)
  in
  finish_document t touched doc_id indexed;
  t.collection_bytes <- t.collection_bytes + String.length text

let add_document_terms t ~doc_id ?bytes terms =
  begin_document t doc_id;
  let touched = ref [] in
  Array.iteri (fun position term -> occurrence touched (acc_for t term) position) terms;
  finish_document t touched doc_id (Array.length terms);
  let raw =
    match bytes with
    | Some n -> n
    | None -> Array.fold_left (fun acc term -> acc + String.length term + 1) 0 terms
  in
  t.collection_bytes <- t.collection_bytes + raw

let dictionary t = t.dict
let document_count t = t.doc_count
let term_count t = Dictionary.size t.dict
let posting_count t = t.posting_count
let occurrence_count t = t.occurrence_count
let collection_bytes t = t.collection_bytes

let doc_length t doc_id =
  if doc_id < 0 || doc_id > t.max_doc_id then 0 else t.doc_lens.(doc_id)

let avg_doc_length t =
  if t.doc_count = 0 then 0.0
  else begin
    let total = ref 0 in
    for d = 0 to t.max_doc_id do
      total := !total + t.doc_lens.(d)
    done;
    float_of_int !total /. float_of_int t.doc_count
  end

let record_of_acc acc = Postings.Builder.finish acc.builder

let to_records t =
  let n = Dictionary.size t.dict in
  let rec seq id () =
    if id >= n then Seq.Nil
    else
      match t.accs.(id) with
      | None -> seq (id + 1) ()
      | Some acc -> Seq.Cons ((id, record_of_acc acc), seq (id + 1))
  in
  seq 0

let record_bytes_total t =
  Seq.fold_left (fun total (_, record) -> total + Bytes.length record) 0 (to_records t)
