type doc_postings = { doc : int; positions : int list }

(* ------------------------------------------------------------------ *)
(* Record versions.

   v1 (the original layout, still readable everywhere):
     [df] [cf] then per document: [doc gap] [tf] [tf position gaps].

   v2 (skip-block layout, what the encoder now emits):
     0x80 TAG                                   version sentinel
     [df] [cf] [max_tf] [n_blocks] [skip_len]   header
     skip table (skip_len bytes): per block
       [last-doc delta] [doc-region bytes] [pos-region bytes]
     [doc_len]                                  doc-region byte length
     doc region (doc_len bytes): per-block (doc, tf) data, TAG-coded
     pos region (to end of record): per document [tf position gaps]

   The doc region comes in three compression tiers, chosen by df and
   named by the sentinel's second byte:

     TAG 0x02 (v-byte): per document [doc gap] [tf], v-byte coded,
       gaps continuing across block boundaries — the original v2
       layout, byte-identical to what earlier builds wrote.
     TAG 0x03 (raw): per document a fixed-width pair [doc gap:u32le]
       [tf:u32le].  Small records don't amortize variable-length
       decoding (their bytes are noise next to the per-object
       overhead), so decode becomes two aligned reads per posting.
     TAG 0x04 (cold): per block [gap width:u8] [tf width:u8], then all
       doc gaps bit-packed at the gap width, then all (tf - 1) values
       bit-packed at the tf width, each group padded to a byte
       boundary.  Long-tail records dominate the index's bytes and
       their hot blocks sit in the decoded-block cache anyway, so they
       trade decode arithmetic for the tightest packing: the widths are
       exactly the bits of the block's largest value.

   Positions are v-byte in every tier.  Splitting (doc, tf) pairs from
   position gaps means document-level scans never touch position bytes,
   and the skip table lets a cursor jump whole blocks of both regions.

   Version sniffing: every byte is a valid v1 varint start, but a v1
   record beginning with 0x80 codes df = 0, which the v1 encoder only
   ever produced as the empty record [0x80 0x80] — whose second byte is
   0x80, never 0x02/0x03/0x04.  So the sentinels are unambiguous. *)
(* ------------------------------------------------------------------ *)

let block_size = 128

(* Below this document count the encoder keeps the v1 layout: the
   record is a handful of bytes, a skip table cannot pay for itself, and
   the paper's small-object distribution (half the records are tiny)
   stays intact.  Readers sniff versions, so the cutoff is invisible. *)
let v1_cutoff_df = 8

(* Compression ladder cutoffs (half-open on the right):
   df in [v1_cutoff_df, raw_cutoff_df)    -> raw tier
   df in [raw_cutoff_df, cold_cutoff_df)  -> v-byte tier
   df in [cold_cutoff_df, inf)            -> cold tier *)
let raw_cutoff_df = 64
let cold_cutoff_df = 1024

type tier = V1 | Raw | Vbyte | Cold

let v2_tag0 = '\x80'
let tag_vbyte = '\x02'
let tag_raw = '\x03'
let tag_cold = '\x04'

let tier b =
  if Bytes.length b >= 2 && Bytes.get b 0 = v2_tag0 then
    match Bytes.get b 1 with
    | c when c = tag_vbyte -> Vbyte
    | c when c = tag_raw -> Raw
    | c when c = tag_cold -> Cold
    | _ -> V1
  else V1

let version b = if tier b = V1 then 1 else 2

let tier_of_df df =
  if df < v1_cutoff_df then V1
  else if df < raw_cutoff_df then Raw
  else if df < cold_cutoff_df then Vbyte
  else Cold

let tier_name = function V1 -> "v1" | Raw -> "raw" | Vbyte -> "vbyte" | Cold -> "cold"

let bits_needed v =
  let rec go v n = if v = 0 then n else go (v lsr 1) (n + 1) in
  go v 0

(* ------------------------------------------------------------------ *)
(* Encoders                                                            *)
(* ------------------------------------------------------------------ *)

let encode_v1 entries =
  let buf = Buffer.create 64 in
  let df = List.length entries in
  let cf = List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 entries in
  Util.Varint.encode buf df;
  Util.Varint.encode buf cf;
  let last_doc = ref (-1) in
  List.iter
    (fun (doc, positions) ->
      if doc <= !last_doc then invalid_arg "Postings.encode: doc ids must be strictly ascending";
      if positions = [] then invalid_arg "Postings.encode: empty position list";
      let gap = if !last_doc < 0 then doc else doc - !last_doc in
      last_doc := doc;
      Util.Varint.encode buf gap;
      Util.Varint.encode buf (List.length positions);
      let last_pos = ref (-1) in
      List.iter
        (fun p ->
          if p <= !last_pos then
            invalid_arg "Postings.encode: positions must be strictly ascending";
          let pgap = if !last_pos < 0 then p else p - !last_pos in
          last_pos := p;
          Util.Varint.encode buf pgap)
        positions)
    entries;
  Buffer.to_bytes buf

(* One raw-tier posting: aligned fixed-width pair. *)
let emit_raw_pair buf ~gap ~tf =
  if gap > 0xFFFFFFFF || tf > 0xFFFFFFFF then
    invalid_arg "Postings.encode: value exceeds raw-tier width";
  Buffer.add_int32_le buf (Int32.of_int gap);
  Buffer.add_int32_le buf (Int32.of_int tf)

(* One cold-tier block over gaps.(lo..hi-1) / tfs.(lo..hi-1): width
   header bytes, bit-packed gaps, bit-packed (tf - 1)s, each group
   byte-aligned (zero padding — validate checks it stayed zero). *)
let emit_cold_block buf gaps tfs lo hi =
  let gmax = ref 0 and tmax = ref 0 in
  for i = lo to hi - 1 do
    if gaps.(i) > !gmax then gmax := gaps.(i);
    if tfs.(i) - 1 > !tmax then tmax := tfs.(i) - 1
  done;
  let gb = bits_needed !gmax and tb = bits_needed !tmax in
  Buffer.add_char buf (Char.chr gb);
  Buffer.add_char buf (Char.chr tb);
  let w = Util.Bitio.Writer.create () in
  for i = lo to hi - 1 do
    Util.Bitio.Writer.bits w ~value:gaps.(i) ~width:gb
  done;
  Buffer.add_bytes buf (Util.Bitio.Writer.to_bytes w);
  let w = Util.Bitio.Writer.create () in
  for i = lo to hi - 1 do
    Util.Bitio.Writer.bits w ~value:(tfs.(i) - 1) ~width:tb
  done;
  Buffer.add_bytes buf (Util.Bitio.Writer.to_bytes w)

(* Assemble a full v2 record from its parts.  [marks] are per-block
   (last doc id, cumulative doc-region bytes, cumulative pos-region
   bytes), one entry per block including the final partial one. *)
let emit_v2 ~tag ~df ~cf ~max_tf ~marks ~doc_region ~pos_region =
  let skip_buf = Buffer.create 32 in
  let prev = ref (-1) and prev_d = ref 0 and prev_p = ref 0 in
  List.iter
    (fun (last_doc, d, p) ->
      Util.Varint.encode skip_buf (if !prev < 0 then last_doc else last_doc - !prev);
      Util.Varint.encode skip_buf (d - !prev_d);
      Util.Varint.encode skip_buf (p - !prev_p);
      prev := last_doc;
      prev_d := d;
      prev_p := p)
    marks;
  let out = Buffer.create 64 in
  Buffer.add_char out v2_tag0;
  Buffer.add_char out tag;
  Util.Varint.encode out df;
  Util.Varint.encode out cf;
  Util.Varint.encode out max_tf;
  Util.Varint.encode out (List.length marks);
  Util.Varint.encode out (Buffer.length skip_buf);
  Buffer.add_buffer out skip_buf;
  Util.Varint.encode out (Buffer.length doc_region);
  Buffer.add_buffer out doc_region;
  Buffer.add_buffer out pos_region;
  Buffer.to_bytes out

module Builder = struct
  type t = {
    doc_buf : Buffer.t; (* v-byte (gap, tf) stream while building *)
    pos_buf : Buffer.t;
    mutable last_doc : int;
    mutable df : int;
    mutable cf : int;
    mutable max_tf : int;
    (* Reversed list of block boundaries: (last doc id, cumulative doc-region
       bytes, cumulative pos-region bytes) at each full block's end. *)
    mutable marks : (int * int * int) list;
    (* First few entries kept verbatim so sub-cutoff records can be
       re-emitted in the compact v1 layout. *)
    mutable head : (int * int list) list;
  }

  let create () =
    {
      doc_buf = Buffer.create 64;
      pos_buf = Buffer.create 64;
      last_doc = -1;
      df = 0;
      cf = 0;
      max_tf = 0;
      marks = [];
      head = [];
    }

  let add t ~doc ~positions =
    if doc <= t.last_doc then invalid_arg "Postings.encode: doc ids must be strictly ascending";
    if positions = [] then invalid_arg "Postings.encode: empty position list";
    let gap = if t.last_doc < 0 then doc else doc - t.last_doc in
    t.last_doc <- doc;
    let tf = List.length positions in
    Util.Varint.encode t.doc_buf gap;
    Util.Varint.encode t.doc_buf tf;
    let last_pos = ref (-1) in
    List.iter
      (fun p ->
        if p <= !last_pos then invalid_arg "Postings.encode: positions must be strictly ascending";
        let pgap = if !last_pos < 0 then p else p - !last_pos in
        last_pos := p;
        Util.Varint.encode t.pos_buf pgap)
      positions;
    t.df <- t.df + 1;
    t.cf <- t.cf + tf;
    if tf > t.max_tf then t.max_tf <- tf;
    if t.df <= v1_cutoff_df then t.head <- (doc, positions) :: t.head;
    if t.df mod block_size = 0 then
      t.marks <- (doc, Buffer.length t.doc_buf, Buffer.length t.pos_buf) :: t.marks

  let final_marks t =
    if t.df = 0 || t.df mod block_size = 0 then List.rev t.marks
    else List.rev ((t.last_doc, Buffer.length t.doc_buf, Buffer.length t.pos_buf) :: t.marks)

  (* The building stream is v-byte; recover the plain (gap, tf) arrays
     when finishing into a fixed-width or bit-packed tier. *)
  let gap_arrays t =
    let b = Buffer.to_bytes t.doc_buf in
    let gaps = Array.make t.df 0 and tfs = Array.make t.df 0 in
    let pos = ref 0 in
    for i = 0 to t.df - 1 do
      let gap, p = Util.Varint.decode b ~pos:!pos in
      let tf, p = Util.Varint.decode b ~pos:p in
      gaps.(i) <- gap;
      tfs.(i) <- tf;
      pos := p
    done;
    (gaps, tfs)

  let finish_vbyte t =
    emit_v2 ~tag:tag_vbyte ~df:t.df ~cf:t.cf ~max_tf:t.max_tf ~marks:(final_marks t)
      ~doc_region:t.doc_buf ~pos_region:t.pos_buf

  (* Re-emit the doc region block by block in the target tier; block
     boundaries (and so last-doc ids and pos-region bytes) are identical
     to the v-byte layout's, only the doc-byte counts change. *)
  let finish_packed t tag =
    let gaps, tfs = gap_arrays t in
    let vmarks = final_marks t in
    let doc_region = Buffer.create (8 * t.df) in
    let marks = ref [] and lo = ref 0 in
    List.iter
      (fun (last_doc, _, pcum) ->
        let hi = min (!lo + block_size) t.df in
        (match tag with
        | c when c = tag_raw ->
          for i = !lo to hi - 1 do
            emit_raw_pair doc_region ~gap:gaps.(i) ~tf:tfs.(i)
          done
        | _ -> emit_cold_block doc_region gaps tfs !lo hi);
        marks := (last_doc, Buffer.length doc_region, pcum) :: !marks;
        lo := hi)
      vmarks;
    emit_v2 ~tag ~df:t.df ~cf:t.cf ~max_tf:t.max_tf ~marks:(List.rev !marks)
      ~doc_region ~pos_region:t.pos_buf

  let finish t =
    match tier_of_df t.df with
    | V1 -> encode_v1 (List.rev t.head)
    | Vbyte -> finish_vbyte t
    | Raw -> finish_packed t tag_raw
    | Cold -> finish_packed t tag_cold
end

let encode entries =
  let b = Builder.create () in
  List.iter (fun (doc, positions) -> Builder.add b ~doc ~positions) entries;
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* v2 layout parsing                                                   *)
(* ------------------------------------------------------------------ *)

type layout = {
  l_df : int;
  l_cf : int;
  l_max_tf : int;
  l_blocks : int;
  l_skip_off : int;
  l_skip_len : int;
  l_doc_off : int;
  l_doc_len : int;
  l_pos_off : int;
}

let parse_layout b =
  let df, pos = Util.Varint.decode b ~pos:2 in
  let cf, pos = Util.Varint.decode b ~pos in
  let max_tf, pos = Util.Varint.decode b ~pos in
  let blocks, pos = Util.Varint.decode b ~pos in
  let skip_len, skip_off = Util.Varint.decode b ~pos in
  let doc_len, doc_off = Util.Varint.decode b ~pos:(skip_off + skip_len) in
  {
    l_df = df;
    l_cf = cf;
    l_max_tf = max_tf;
    l_blocks = blocks;
    l_skip_off = skip_off;
    l_skip_len = skip_len;
    l_doc_off = doc_off;
    l_doc_len = doc_len;
    l_pos_off = doc_off + doc_len;
  }

type skip = {
  sk_last_doc : int;
  sk_doc_off : int;
  sk_doc_len : int;
  sk_pos_off : int;
  sk_pos_len : int;
}

let parse_skips b lay =
  let n = lay.l_blocks in
  let skips =
    Array.make n { sk_last_doc = -1; sk_doc_off = 0; sk_doc_len = 0; sk_pos_off = 0; sk_pos_len = 0 }
  in
  let pos = ref lay.l_skip_off in
  let last = ref (-1) and doff = ref lay.l_doc_off and poff = ref lay.l_pos_off in
  for i = 0 to n - 1 do
    let dld, p = Util.Varint.decode b ~pos:!pos in
    let dl, p = Util.Varint.decode b ~pos:p in
    let pl, p = Util.Varint.decode b ~pos:p in
    pos := p;
    let last_doc = if !last < 0 then dld else !last + dld in
    skips.(i) <-
      { sk_last_doc = last_doc; sk_doc_off = !doff; sk_doc_len = dl; sk_pos_off = !poff; sk_pos_len = pl };
    last := last_doc;
    doff := !doff + dl;
    poff := !poff + pl
  done;
  skips

(* ------------------------------------------------------------------ *)
(* Block decoding (shared by the folds, the cursor and validate)       *)
(* ------------------------------------------------------------------ *)

let docs_in_block lay i =
  if i = lay.l_blocks - 1 then lay.l_df - (i * block_size) else block_size

let get_u32le b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

(* Decode block [i]'s absolute doc ids and tfs into fresh arrays.  Gaps
   restart from the previous block's last doc id in every tier, so one
   block decodes independently given the skip table. *)
let decode_block b ~tr ~lay ~(skips : skip array) i =
  let n = docs_in_block lay i in
  let prev_last = if i = 0 then -1 else skips.(i - 1).sk_last_doc in
  let sk = skips.(i) in
  let docs = Array.make n 0 and tfs = Array.make n 0 in
  (match tr with
  | Vbyte ->
    let pos = ref sk.sk_doc_off and doc = ref prev_last in
    for j = 0 to n - 1 do
      let gap, p = Util.Varint.decode b ~pos:!pos in
      doc := (if !doc < 0 then gap else !doc + gap);
      let tf, p = Util.Varint.decode b ~pos:p in
      pos := p;
      docs.(j) <- !doc;
      tfs.(j) <- tf
    done
  | Raw ->
    let doc = ref prev_last in
    for j = 0 to n - 1 do
      let off = sk.sk_doc_off + (8 * j) in
      let gap = get_u32le b off in
      doc := (if !doc < 0 then gap else !doc + gap);
      docs.(j) <- !doc;
      tfs.(j) <- get_u32le b (off + 4)
    done
  | Cold ->
    let gb = Char.code (Bytes.get b sk.sk_doc_off) in
    let tb = Char.code (Bytes.get b (sk.sk_doc_off + 1)) in
    let gbytes = ((n * gb) + 7) / 8 in
    let r = Util.Bitio.Reader.of_sub b ~pos:(sk.sk_doc_off + 2) ~len:gbytes in
    let doc = ref prev_last in
    for j = 0 to n - 1 do
      let gap = Util.Bitio.Reader.bits r ~width:gb in
      doc := (if !doc < 0 then gap else !doc + gap);
      docs.(j) <- !doc
    done;
    let tbytes = ((n * tb) + 7) / 8 in
    let r = Util.Bitio.Reader.of_sub b ~pos:(sk.sk_doc_off + 2 + gbytes) ~len:tbytes in
    for j = 0 to n - 1 do
      tfs.(j) <- 1 + Util.Bitio.Reader.bits r ~width:tb
    done
  | V1 -> invalid_arg "Postings.decode_block: v1 record");
  (docs, tfs)

(* Sequential (doc, tf) fold over a v2 record, dispatching on tier.
   Deliberately reads only the doc region — every tier's blocks are
   self-delimiting (v-byte and raw by construction, cold via its width
   header bytes), so a corrupted skip table cannot disturb a scan; only
   the seeking cursor trusts the skip table. *)
let fold_docs_v2 b ~tr ~lay ~init ~f =
  let acc = ref init in
  (match tr with
  | Vbyte ->
    let pos = ref lay.l_doc_off and doc = ref (-1) in
    for _ = 1 to lay.l_df do
      let gap, p = Util.Varint.decode b ~pos:!pos in
      doc := (if !doc < 0 then gap else !doc + gap);
      let tf, p = Util.Varint.decode b ~pos:p in
      pos := p;
      acc := f !acc ~doc:!doc ~tf
    done
  | Raw ->
    let doc = ref (-1) in
    for j = 0 to lay.l_df - 1 do
      let off = lay.l_doc_off + (8 * j) in
      let gap = get_u32le b off in
      doc := (if !doc < 0 then gap else !doc + gap);
      acc := f !acc ~doc:!doc ~tf:(get_u32le b (off + 4))
    done
  | Cold ->
    let pos = ref lay.l_doc_off and doc = ref (-1) and remaining = ref lay.l_df in
    while !remaining > 0 do
      let n = min block_size !remaining in
      let gb = Char.code (Bytes.get b !pos) in
      let tb = Char.code (Bytes.get b (!pos + 1)) in
      let gbytes = ((n * gb) + 7) / 8 and tbytes = ((n * tb) + 7) / 8 in
      let docs = Array.make n 0 in
      let r = Util.Bitio.Reader.of_sub b ~pos:(!pos + 2) ~len:gbytes in
      for j = 0 to n - 1 do
        let gap = Util.Bitio.Reader.bits r ~width:gb in
        doc := (if !doc < 0 then gap else !doc + gap);
        docs.(j) <- !doc
      done;
      let r = Util.Bitio.Reader.of_sub b ~pos:(!pos + 2 + gbytes) ~len:tbytes in
      for j = 0 to n - 1 do
        acc := f !acc ~doc:docs.(j) ~tf:(1 + Util.Bitio.Reader.bits r ~width:tb)
      done;
      pos := !pos + 2 + gbytes + tbytes;
      remaining := !remaining - n
    done
  | V1 -> assert false);
  !acc

(* ------------------------------------------------------------------ *)
(* Decoders (version-sniffing)                                         *)
(* ------------------------------------------------------------------ *)

let stats b =
  if version b = 2 then begin
    let lay = parse_layout b in
    (lay.l_df, lay.l_cf)
  end
  else begin
    let df, pos = Util.Varint.decode b ~pos:0 in
    let cf, _ = Util.Varint.decode b ~pos in
    (df, cf)
  end

let doc_count b = fst (stats b)

let max_tf b = if version b = 2 then Some (parse_layout b).l_max_tf else None

(* Cheap per-record statistics for the query planner: header and skip
   table only, never the doc region, so the cost of asking is O(blocks)
   parsing — orders of magnitude below a decode.  The caller fetched the
   bytes through the record's locator; this is the read side of that
   bargain. *)
type record_stats = {
  rs_tier : tier;
  rs_df : int;
  rs_cf : int;
  rs_max_tf : int option; (* None on v1 records (no header slot) *)
  rs_blocks : int; (* skip blocks; 0 on v1 (no skip table) *)
  rs_doc_bytes : int;
  rs_pos_bytes : int;
}

let record_stats b =
  if version b = 2 then begin
    let lay = parse_layout b in
    {
      rs_tier = tier b;
      rs_df = lay.l_df;
      rs_cf = lay.l_cf;
      rs_max_tf = Some lay.l_max_tf;
      rs_blocks = lay.l_blocks;
      rs_doc_bytes = lay.l_doc_len;
      rs_pos_bytes = Bytes.length b - lay.l_pos_off;
    }
  end
  else begin
    let df, pos = Util.Varint.decode b ~pos:0 in
    let cf, pos = Util.Varint.decode b ~pos in
    (* v1 interleaves (doc, tf) pairs with position gaps: a document
       scan must walk every payload byte, so the whole payload counts
       as doc bytes and nothing as separately skippable position
       bytes. *)
    {
      rs_tier = V1;
      rs_df = df;
      rs_cf = cf;
      rs_max_tf = None;
      rs_blocks = 0;
      rs_doc_bytes = Bytes.length b - pos;
      rs_pos_bytes = 0;
    }
  end

let stats_of_locator = record_stats

let skip_table_region b =
  if version b = 2 then begin
    let lay = parse_layout b in
    Some (lay.l_skip_off, lay.l_skip_len)
  end
  else None

let doc_region b =
  if version b = 2 then begin
    let lay = parse_layout b in
    Some (lay.l_doc_off, lay.l_doc_len)
  end
  else None

let fold_docs b ~init ~f =
  match tier b with
  | V1 ->
    let df, pos = Util.Varint.decode b ~pos:0 in
    let _cf, pos = Util.Varint.decode b ~pos in
    let rec go k pos doc acc =
      if k = 0 then acc
      else begin
        let gap, pos = Util.Varint.decode b ~pos in
        let doc = if doc < 0 then gap else doc + gap in
        let tf, pos = Util.Varint.decode b ~pos in
        (* Skip the tf position gaps. *)
        let rec skip n pos =
          if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode b ~pos))
        in
        let pos = skip tf pos in
        go (k - 1) pos doc (f acc ~doc ~tf)
      end
    in
    go df pos (-1) init
  | tr -> fold_docs_v2 b ~tr ~lay:(parse_layout b) ~init ~f

let read_positions b ~pos ~tf =
  let rec read n pos last acc_ps =
    if n = 0 then (List.rev acc_ps, pos)
    else begin
      let pgap, pos = Util.Varint.decode b ~pos in
      let p = if last < 0 then pgap else last + pgap in
      read (n - 1) pos p (p :: acc_ps)
    end
  in
  read tf pos (-1) []

let fold_positions b ~init ~f =
  match tier b with
  | V1 ->
    let df, pos = Util.Varint.decode b ~pos:0 in
    let _cf, pos = Util.Varint.decode b ~pos in
    let rec go k pos doc acc =
      if k = 0 then acc
      else begin
        let gap, pos = Util.Varint.decode b ~pos in
        let doc = if doc < 0 then gap else doc + gap in
        let tf, pos = Util.Varint.decode b ~pos in
        let positions, pos = read_positions b ~pos ~tf in
        go (k - 1) pos doc (f acc { doc; positions })
      end
    in
    go df pos (-1) init
  | tr ->
    let lay = parse_layout b in
    (* The doc stream and the position stream advance in lockstep: the
       pos region is tier-independent v-byte, one gap run per doc. *)
    let ppos = ref lay.l_pos_off in
    fold_docs_v2 b ~tr ~lay ~init ~f:(fun acc ~doc ~tf ->
        let positions, p = read_positions b ~pos:!ppos ~tf in
        ppos := p;
        f acc { doc; positions })

let decode b = List.rev (fold_positions b ~init:[] ~f:(fun acc dp -> dp :: acc))

let merge a b =
  let pa = decode a and pb = decode b in
  let rec zip xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
      if x.doc < y.doc then x :: zip xs' ys
      else if y.doc < x.doc then y :: zip xs ys'
      else invalid_arg "Postings.merge: document sets overlap"
  in
  encode (List.map (fun dp -> (dp.doc, dp.positions)) (zip pa pb))

let remove_docs b p =
  let remaining = List.filter (fun dp -> not (p dp.doc)) (decode b) in
  if remaining = [] then None
  else Some (encode (List.map (fun dp -> (dp.doc, dp.positions)) remaining))

(* ------------------------------------------------------------------ *)
(* Deep structural validation (fsck)                                   *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let check cond msg = if not cond then raise (Bad msg)

(* Walk one block's slice of the position region: tf ascending gap runs
   must tile the block's sk_pos_len exactly. *)
let validate_block_positions b sk tfs i =
  let ppos = ref sk.sk_pos_off in
  Array.iter
    (fun tf ->
      let last_p = ref (-1) in
      for _ = 1 to tf do
        let pgap, p = Util.Varint.decode b ~pos:!ppos in
        check (if !last_p < 0 then pgap >= 0 else pgap >= 1) "position gaps not strictly ascending";
        last_p := pgap;
        ppos := p
      done)
    tfs;
  check (!ppos = sk.sk_pos_off + sk.sk_pos_len)
    (Printf.sprintf "block %d pos bytes %d <> skip entry %d" i (!ppos - sk.sk_pos_off) sk.sk_pos_len)

(* Per-tier walk of one block's doc bytes: re-derive the (gap, tf)
   sequence with every structural invariant checked, so a single
   flipped bit anywhere in the region (payload, width headers or
   padding) trips at least one check. *)
let validate_block_docs b ~tr ~prev_doc sk in_block i =
  let gaps = Array.make in_block 0 and tfs = Array.make in_block 0 in
  (match tr with
  | Vbyte ->
    let dpos = ref sk.sk_doc_off in
    for j = 0 to in_block - 1 do
      let gap, p = Util.Varint.decode b ~pos:!dpos in
      let tf, p = Util.Varint.decode b ~pos:p in
      check (p <= sk.sk_doc_off + sk.sk_doc_len) "doc entry overruns block";
      dpos := p;
      gaps.(j) <- gap;
      tfs.(j) <- tf
    done;
    check (!dpos = sk.sk_doc_off + sk.sk_doc_len)
      (Printf.sprintf "block %d doc bytes %d <> skip entry %d" i (!dpos - sk.sk_doc_off) sk.sk_doc_len)
  | Raw ->
    check (sk.sk_doc_len = 8 * in_block)
      (Printf.sprintf "raw block %d is %d bytes, want %d" i sk.sk_doc_len (8 * in_block));
    for j = 0 to in_block - 1 do
      let off = sk.sk_doc_off + (8 * j) in
      gaps.(j) <- get_u32le b off;
      tfs.(j) <- get_u32le b (off + 4)
    done
  | Cold ->
    check (sk.sk_doc_len >= 2) "cold block too short for width header";
    let gb = Char.code (Bytes.get b sk.sk_doc_off) in
    let tb = Char.code (Bytes.get b (sk.sk_doc_off + 1)) in
    check (gb <= 62 && tb <= 62) "cold block width out of range";
    let gbytes = ((in_block * gb) + 7) / 8 in
    let tbytes = ((in_block * tb) + 7) / 8 in
    check (sk.sk_doc_len = 2 + gbytes + tbytes)
      (Printf.sprintf "cold block %d is %d bytes, widths say %d" i sk.sk_doc_len (2 + gbytes + tbytes));
    let r = Util.Bitio.Reader.of_sub b ~pos:(sk.sk_doc_off + 2) ~len:gbytes in
    for j = 0 to in_block - 1 do
      gaps.(j) <- Util.Bitio.Reader.bits r ~width:gb
    done;
    check (Util.Bitio.Reader.bits r ~width:(Util.Bitio.Reader.remaining r) = 0)
      "cold block gap padding bits not zero";
    let r = Util.Bitio.Reader.of_sub b ~pos:(sk.sk_doc_off + 2 + gbytes) ~len:tbytes in
    for j = 0 to in_block - 1 do
      tfs.(j) <- 1 + Util.Bitio.Reader.bits r ~width:tb
    done;
    check (Util.Bitio.Reader.bits r ~width:(Util.Bitio.Reader.remaining r) = 0)
      "cold block tf padding bits not zero";
    (* The encoder packs at exactly the bits of the block's largest
       value, so a width header flipped to a wider-but-length-compatible
       value cannot masquerade as well-formed. *)
    let gmax = Array.fold_left max 0 gaps and tmax = Array.fold_left max 0 tfs in
    check (bits_needed gmax = gb) "cold block gap width not canonical";
    check (bits_needed (tmax - 1) = tb) "cold block tf width not canonical"
  | V1 -> assert false);
  let doc = ref prev_doc in
  Array.iteri
    (fun j gap ->
      check (if !doc < 0 then gap >= 0 else gap >= 1) "doc gaps not strictly ascending";
      doc := (if !doc < 0 then gap else !doc + gap);
      check (tfs.(j) >= 1) "posting with zero tf")
    gaps;
  (!doc, tfs)

let validate_v2 b =
  let len = Bytes.length b in
  let tr = tier b in
  let lay = parse_layout b in
  check (lay.l_df >= 0 && lay.l_cf >= lay.l_df) "df/cf header implausible";
  check
    (lay.l_blocks = (lay.l_df + block_size - 1) / block_size)
    (Printf.sprintf "block count %d inconsistent with df %d" lay.l_blocks lay.l_df);
  check (lay.l_skip_off + lay.l_skip_len <= len) "skip table extends past record end";
  check (lay.l_pos_off <= len) "doc region extends past record end";
  (* The sentinel tag must agree with the df-chosen tier, so a flipped
     tag bit cannot silently re-interpret the doc region. *)
  check (tier_of_df lay.l_df = tr)
    (Printf.sprintf "df %d does not belong in the %s tier" lay.l_df (tier_name tr));
  if lay.l_df = 0 then begin
    check (lay.l_skip_len = 0 && lay.l_doc_len = 0 && lay.l_pos_off = len)
      "empty record carries payload bytes"
  end
  else begin
    (* Skip-table invariants: exact byte length, strictly monotone
       last-doc ids, per-block byte counts that tile both regions. *)
    let pos = ref lay.l_skip_off in
    let last = ref (-1) and dsum = ref 0 and psum = ref 0 in
    for i = 0 to lay.l_blocks - 1 do
      check (!pos < lay.l_skip_off + lay.l_skip_len) "skip table truncated";
      let dld, p = Util.Varint.decode b ~pos:!pos in
      let dl, p = Util.Varint.decode b ~pos:p in
      let pl, p = Util.Varint.decode b ~pos:p in
      pos := p;
      check (p <= lay.l_skip_off + lay.l_skip_len) "skip entry overruns skip table";
      check (i = 0 || dld >= 1) "skip-table last-doc ids not strictly ascending";
      check (dl >= 1 && pl >= 1) "skip entry with empty block";
      last := (if !last < 0 then dld else !last + dld);
      dsum := !dsum + dl;
      psum := !psum + pl
    done;
    check (!pos = lay.l_skip_off + lay.l_skip_len) "skip table has trailing bytes";
    check (!dsum = lay.l_doc_len)
      (Printf.sprintf "skip doc-bytes sum %d <> doc region length %d" !dsum lay.l_doc_len);
    check (!psum = len - lay.l_pos_off)
      (Printf.sprintf "skip pos-bytes sum %d <> position region length %d" !psum (len - lay.l_pos_off));
    (* Walk both regions block by block against the skip entries. *)
    let skips = parse_skips b lay in
    let cf = ref 0 and seen_max_tf = ref 0 and doc = ref (-1) in
    Array.iteri
      (fun i sk ->
        let in_block = docs_in_block lay i in
        let last_doc, tfs = validate_block_docs b ~tr ~prev_doc:!doc sk in_block i in
        doc := last_doc;
        Array.iter
          (fun tf ->
            cf := !cf + tf;
            if tf > !seen_max_tf then seen_max_tf := tf)
          tfs;
        validate_block_positions b sk tfs i;
        check (!doc = sk.sk_last_doc)
          (Printf.sprintf "block %d ends at doc %d, skip table says %d" i !doc sk.sk_last_doc))
      skips;
    check (!cf = lay.l_cf) (Printf.sprintf "tf sum %d <> header cf %d" !cf lay.l_cf);
    check (!seen_max_tf = lay.l_max_tf)
      (Printf.sprintf "observed max tf %d <> header max_tf %d" !seen_max_tf lay.l_max_tf)
  end

let validate_v1 b =
  let df, pos = Util.Varint.decode b ~pos:0 in
  let cf, pos = Util.Varint.decode b ~pos in
  check (df >= 0 && cf >= df) "df/cf header implausible";
  let cf' = ref 0 in
  let rec go k pos doc =
    if k = 0 then pos
    else begin
      let gap, pos = Util.Varint.decode b ~pos in
      check (if doc < 0 then gap >= 0 else gap >= 1) "doc gaps not strictly ascending";
      let doc = if doc < 0 then gap else doc + gap in
      let tf, pos = Util.Varint.decode b ~pos in
      check (tf >= 1) "posting with zero tf";
      cf' := !cf' + tf;
      let rec skip n pos = if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode b ~pos)) in
      go (k - 1) (skip tf pos) doc
    end
  in
  let fin = go df pos (-1) in
  check (fin = Bytes.length b) "record has trailing bytes";
  check (!cf' = cf) (Printf.sprintf "tf sum %d <> header cf %d" !cf' cf)

let validate b =
  match if version b = 2 then validate_v2 b else validate_v1 b with
  | () -> Ok ()
  | exception Bad msg -> Error msg
  | exception Invalid_argument msg -> Error ("undecodable: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Cursors                                                             *)
(* ------------------------------------------------------------------ *)

(* v2 cursors decode a whole block at a time into (docs, tfs) arrays:
   sequential stepping is array reads, in-block seeking is binary
   search, and — when a decoded-block cache is attached — a block
   another cursor already decoded under the same (source, epoch) key is
   reused without touching the record's bytes at all.  v1 cursors keep
   the original interleaved byte-stepping. *)

type cursor = {
  data : bytes;
  cur_tier : tier;
  cur_df : int;
  skips : skip array; (* empty for v1 *)
  c_lay : layout option; (* None for v1 *)
  cache : (Util.Block_cache.t * int * int) option; (* cache, src oid, epoch *)
  mutable byte : int; (* v1: next byte to decode *)
  mutable blk : int; (* v2: block currently decoded into bdocs/btfs *)
  mutable bdocs : int array;
  mutable btfs : int array;
  mutable bi : int; (* v2: index of the current posting within blk *)
  mutable idx : int; (* index of the current posting; df once exhausted *)
  mutable doc : int; (* current doc, max_int once exhausted *)
  mutable tf : int;
  mutable decoded : int;
  mutable blocks_skipped : int;
  mutable n_seeks : int;
  mutable blocks_loaded : int; (* blocks freshly decoded (cache hits excluded) *)
  mutable bytes_read : int; (* record bytes actually decoded (doc + position) *)
  (* Lazy per-document position walk (v2): the byte offset [p_off] of
     in-block document [p_idx]'s position run inside block [p_blk].
     Valid only when [p_blk] matches the decoded block. *)
  mutable p_blk : int;
  mutable p_idx : int;
  mutable p_off : int;
  mutable pos_run : int; (* v1: byte offset of the current posting's position run *)
}

(* Decode (or fetch from the cache) block [i] and make it current. *)
let load_block c i =
  let lay = match c.c_lay with Some l -> l | None -> assert false in
  let fresh () =
    let docs, tfs = decode_block c.data ~tr:c.cur_tier ~lay ~skips:c.skips i in
    c.decoded <- c.decoded + Array.length docs;
    c.blocks_loaded <- c.blocks_loaded + 1;
    c.bytes_read <- c.bytes_read + c.skips.(i).sk_doc_len;
    (docs, tfs)
  in
  let docs, tfs =
    match c.cache with
    | None -> fresh ()
    | Some (bc, src, epoch) -> (
      match Util.Block_cache.find bc ~src ~blk:i ~epoch with
      | Some hit -> hit
      | None ->
        let docs, tfs = fresh () in
        Util.Block_cache.insert bc ~src ~blk:i ~epoch ~docs ~tfs;
        (docs, tfs))
  in
  c.blk <- i;
  c.bdocs <- docs;
  c.btfs <- tfs

let cursor ?cache b =
  match tier b with
  | V1 ->
    let df, pos = Util.Varint.decode b ~pos:0 in
    let _cf, pos = Util.Varint.decode b ~pos in
    let c =
      {
        data = b;
        cur_tier = V1;
        cur_df = df;
        skips = [||];
        c_lay = None;
        cache = None;
        byte = pos;
        blk = -1;
        bdocs = [||];
        btfs = [||];
        bi = 0;
        idx = -1;
        doc = -1;
        tf = 0;
        decoded = 0;
        blocks_skipped = 0;
        n_seeks = 0;
        blocks_loaded = 0;
        bytes_read = 0;
        p_blk = -1;
        p_idx = 0;
        p_off = 0;
        pos_run = 0;
      }
    in
    c.idx <- 0;
    if df = 0 then c.doc <- max_int
    else begin
      (* Position on the first posting. *)
      let start = c.byte in
      let gap, pos = Util.Varint.decode b ~pos:c.byte in
      c.doc <- gap;
      let tf, pos = Util.Varint.decode b ~pos in
      c.tf <- tf;
      c.pos_run <- pos;
      let rec skip n pos =
        if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode b ~pos))
      in
      c.byte <- skip tf pos;
      c.decoded <- 1;
      c.bytes_read <- c.bytes_read + (c.byte - start)
    end;
    c
  | tr ->
    let lay = parse_layout b in
    let c =
      {
        data = b;
        cur_tier = tr;
        cur_df = lay.l_df;
        skips = parse_skips b lay;
        c_lay = Some lay;
        cache;
        byte = 0;
        blk = -1;
        bdocs = [||];
        btfs = [||];
        bi = 0;
        idx = 0;
        doc = max_int;
        tf = 0;
        decoded = 0;
        blocks_skipped = 0;
        n_seeks = 0;
        blocks_loaded = 0;
        bytes_read = 0;
        p_blk = -1;
        p_idx = 0;
        p_off = 0;
        pos_run = 0;
      }
    in
    if lay.l_df > 0 then begin
      load_block c 0;
      c.doc <- c.bdocs.(0);
      c.tf <- c.btfs.(0)
    end
    else c.idx <- 0;
    c

let cur_doc c = c.doc
let cur_tf c = c.tf
let cursor_df c = c.cur_df

let cursor_next c =
  if c.cur_tier = V1 then begin
    c.idx <- c.idx + 1;
    if c.idx >= c.cur_df then begin
      c.idx <- c.cur_df;
      c.doc <- max_int
    end
    else begin
      let start = c.byte in
      let gap, pos = Util.Varint.decode c.data ~pos:c.byte in
      c.doc <- (if c.doc < 0 then gap else c.doc + gap);
      let tf, pos = Util.Varint.decode c.data ~pos in
      c.tf <- tf;
      c.pos_run <- pos;
      let rec skip n pos =
        if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode c.data ~pos))
      in
      c.byte <- skip tf pos;
      c.decoded <- c.decoded + 1;
      c.bytes_read <- c.bytes_read + (c.byte - start)
    end
  end
  else if c.doc <> max_int then begin
    if c.idx + 1 >= c.cur_df then begin
      c.idx <- c.cur_df;
      c.doc <- max_int
    end
    else begin
      c.idx <- c.idx + 1;
      c.bi <- c.bi + 1;
      if c.bi >= Array.length c.bdocs then begin
        load_block c (c.blk + 1);
        c.bi <- 0
      end;
      c.doc <- c.bdocs.(c.bi);
      c.tf <- c.btfs.(c.bi)
    end
  end

let cursor_decoded c = c.decoded
let cursor_blocks_skipped c = c.blocks_skipped
let cursor_seeks c = c.n_seeks
let cursor_blocks_loaded c = c.blocks_loaded
let cursor_bytes_read c = c.bytes_read

(* Decode the current document's position list.  On v2 records the
   block's slice of the position region is walked forward on demand:
   the skip table names where the block's positions start, and the
   already-decoded tfs let preceding in-block runs be skipped — so an
   intersection-style evaluator pays for positions only on documents
   every member reaches, never for the rest of the record.  Walked
   bytes count toward {!cursor_bytes_read}. *)
let cursor_positions c =
  if c.doc = max_int then invalid_arg "Postings.cursor_positions: cursor exhausted";
  if c.cur_tier = V1 then fst (read_positions c.data ~pos:c.pos_run ~tf:c.tf)
  else begin
    (* Restart the walk when the cursor moved to a new block, or asked
       for the same document twice (the walk already passed it). *)
    if c.p_blk <> c.blk || c.p_idx > c.bi then begin
      c.p_blk <- c.blk;
      c.p_idx <- 0;
      c.p_off <- c.skips.(c.blk).sk_pos_off
    end;
    let start = c.p_off in
    let rec skip n pos =
      if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode c.data ~pos))
    in
    while c.p_idx < c.bi do
      c.p_off <- skip c.btfs.(c.p_idx) c.p_off;
      c.p_idx <- c.p_idx + 1
    done;
    let ps, fin = read_positions c.data ~pos:c.p_off ~tf:c.tf in
    c.p_off <- fin;
    c.p_idx <- c.bi + 1;
    c.bytes_read <- c.bytes_read + (fin - start);
    ps
  end

let cursor_seek c target =
  if c.doc < target && c.doc <> max_int then begin
    c.n_seeks <- c.n_seeks + 1;
    if c.cur_tier <> V1 && Array.length c.skips > 0 then begin
      let cur_block = c.blk in
      let n = Array.length c.skips in
      (* Smallest block whose last doc id reaches the target. *)
      let lo = ref cur_block and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if c.skips.(mid).sk_last_doc >= target then hi := mid else lo := mid + 1
      done;
      if !lo >= n then begin
        (* No block can contain the target: exhaust without decoding. *)
        c.blocks_skipped <- c.blocks_skipped + (n - cur_block);
        c.idx <- c.cur_df;
        c.doc <- max_int
      end
      else begin
        if !lo > cur_block then begin
          c.blocks_skipped <- c.blocks_skipped + (!lo - cur_block);
          load_block c !lo;
          c.bi <- 0
        end;
        (* The target is at or before this block's last doc: binary
           search the decoded arrays. *)
        let a = c.bdocs in
        let ilo = ref c.bi and ihi = ref (Array.length a) in
        while !ilo < !ihi do
          let mid = (!ilo + !ihi) / 2 in
          if a.(mid) >= target then ihi := mid else ilo := mid + 1
        done;
        if !ilo >= Array.length a then begin
          (* Only when the current block precedes the target block was
             no jump made — impossible, since sk_last_doc >= target;
             defensive fall-through to stepping. *)
          ()
        end
        else begin
          c.bi <- !ilo;
          c.idx <- (c.blk * block_size) + c.bi;
          c.doc <- a.(!ilo);
          c.tf <- c.btfs.(!ilo)
        end
      end
    end;
    while c.doc < target && c.doc <> max_int do
      cursor_next c
    done
  end
