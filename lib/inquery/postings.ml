type doc_postings = { doc : int; positions : int list }

(* ------------------------------------------------------------------ *)
(* Record versions.

   v1 (the original layout, still readable everywhere):
     [df] [cf] then per document: [doc gap] [tf] [tf position gaps].

   v2 (skip-block layout, what the encoder now emits):
     0x80 0x02                                  version sentinel
     [df] [cf] [max_tf] [n_blocks] [skip_len]   header
     skip table (skip_len bytes): per block
       [last-doc delta] [doc-region bytes] [pos-region bytes]
     [doc_len]                                  doc-region byte length
     doc region (doc_len bytes): per document [doc gap] [tf]
     pos region (to end of record): per document [tf position gaps]

   Splitting (doc, tf) pairs from position gaps means document-level
   scans never touch position bytes, and the skip table lets a cursor
   jump whole blocks of both regions.

   Version sniffing: every byte is a valid v1 varint start, but a v1
   record beginning with 0x80 codes df = 0, which the v1 encoder only
   ever produced as the empty record [0x80 0x80] — whose second byte is
   0x80, never 0x02.  So [0x80 0x02] is unambiguous. *)
(* ------------------------------------------------------------------ *)

let block_size = 128

(* Below this document count the encoder keeps the v1 layout: the
   record is a handful of bytes, a skip table cannot pay for itself, and
   the paper's small-object distribution (half the records are tiny)
   stays intact.  Readers sniff versions, so the cutoff is invisible. *)
let v1_cutoff_df = 8

let v2_tag0 = '\x80'
let v2_tag1 = '\x02'

let version b =
  if Bytes.length b >= 2 && Bytes.get b 0 = v2_tag0 && Bytes.get b 1 = v2_tag1 then 2 else 1

(* ------------------------------------------------------------------ *)
(* Encoders                                                            *)
(* ------------------------------------------------------------------ *)

let encode_v1 entries =
  let buf = Buffer.create 64 in
  let df = List.length entries in
  let cf = List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 entries in
  Util.Varint.encode buf df;
  Util.Varint.encode buf cf;
  let last_doc = ref (-1) in
  List.iter
    (fun (doc, positions) ->
      if doc <= !last_doc then invalid_arg "Postings.encode: doc ids must be strictly ascending";
      if positions = [] then invalid_arg "Postings.encode: empty position list";
      let gap = if !last_doc < 0 then doc else doc - !last_doc in
      last_doc := doc;
      Util.Varint.encode buf gap;
      Util.Varint.encode buf (List.length positions);
      let last_pos = ref (-1) in
      List.iter
        (fun p ->
          if p <= !last_pos then
            invalid_arg "Postings.encode: positions must be strictly ascending";
          let pgap = if !last_pos < 0 then p else p - !last_pos in
          last_pos := p;
          Util.Varint.encode buf pgap)
        positions)
    entries;
  Buffer.to_bytes buf

module Builder = struct
  type t = {
    doc_buf : Buffer.t;
    pos_buf : Buffer.t;
    mutable last_doc : int;
    mutable df : int;
    mutable cf : int;
    mutable max_tf : int;
    (* Reversed list of block boundaries: (last doc id, cumulative doc-region
       bytes, cumulative pos-region bytes) at each full block's end. *)
    mutable marks : (int * int * int) list;
    (* First few entries kept verbatim so sub-cutoff records can be
       re-emitted in the compact v1 layout. *)
    mutable head : (int * int list) list;
  }

  let create () =
    {
      doc_buf = Buffer.create 64;
      pos_buf = Buffer.create 64;
      last_doc = -1;
      df = 0;
      cf = 0;
      max_tf = 0;
      marks = [];
      head = [];
    }

  let add t ~doc ~positions =
    if doc <= t.last_doc then invalid_arg "Postings.encode: doc ids must be strictly ascending";
    if positions = [] then invalid_arg "Postings.encode: empty position list";
    let gap = if t.last_doc < 0 then doc else doc - t.last_doc in
    t.last_doc <- doc;
    let tf = List.length positions in
    Util.Varint.encode t.doc_buf gap;
    Util.Varint.encode t.doc_buf tf;
    let last_pos = ref (-1) in
    List.iter
      (fun p ->
        if p <= !last_pos then invalid_arg "Postings.encode: positions must be strictly ascending";
        let pgap = if !last_pos < 0 then p else p - !last_pos in
        last_pos := p;
        Util.Varint.encode t.pos_buf pgap)
      positions;
    t.df <- t.df + 1;
    t.cf <- t.cf + tf;
    if tf > t.max_tf then t.max_tf <- tf;
    if t.df <= v1_cutoff_df then t.head <- (doc, positions) :: t.head;
    if t.df mod block_size = 0 then
      t.marks <- (doc, Buffer.length t.doc_buf, Buffer.length t.pos_buf) :: t.marks

  let finish_v2 t =
    let marks =
      if t.df = 0 || t.df mod block_size = 0 then List.rev t.marks
      else List.rev ((t.last_doc, Buffer.length t.doc_buf, Buffer.length t.pos_buf) :: t.marks)
    in
    let skip_buf = Buffer.create 32 in
    let prev = ref (-1) and prev_d = ref 0 and prev_p = ref 0 in
    List.iter
      (fun (last_doc, d, p) ->
        Util.Varint.encode skip_buf (if !prev < 0 then last_doc else last_doc - !prev);
        Util.Varint.encode skip_buf (d - !prev_d);
        Util.Varint.encode skip_buf (p - !prev_p);
        prev := last_doc;
        prev_d := d;
        prev_p := p)
      marks;
    let out = Buffer.create 64 in
    Buffer.add_char out v2_tag0;
    Buffer.add_char out v2_tag1;
    Util.Varint.encode out t.df;
    Util.Varint.encode out t.cf;
    Util.Varint.encode out t.max_tf;
    Util.Varint.encode out (List.length marks);
    Util.Varint.encode out (Buffer.length skip_buf);
    Buffer.add_buffer out skip_buf;
    Util.Varint.encode out (Buffer.length t.doc_buf);
    Buffer.add_buffer out t.doc_buf;
    Buffer.add_buffer out t.pos_buf;
    Buffer.to_bytes out

  let finish t =
    if t.df < v1_cutoff_df then encode_v1 (List.rev t.head) else finish_v2 t
end

let encode entries =
  let b = Builder.create () in
  List.iter (fun (doc, positions) -> Builder.add b ~doc ~positions) entries;
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* v2 layout parsing                                                   *)
(* ------------------------------------------------------------------ *)

type layout = {
  l_df : int;
  l_cf : int;
  l_max_tf : int;
  l_blocks : int;
  l_skip_off : int;
  l_skip_len : int;
  l_doc_off : int;
  l_doc_len : int;
  l_pos_off : int;
}

let parse_layout b =
  let df, pos = Util.Varint.decode b ~pos:2 in
  let cf, pos = Util.Varint.decode b ~pos in
  let max_tf, pos = Util.Varint.decode b ~pos in
  let blocks, pos = Util.Varint.decode b ~pos in
  let skip_len, skip_off = Util.Varint.decode b ~pos in
  let doc_len, doc_off = Util.Varint.decode b ~pos:(skip_off + skip_len) in
  {
    l_df = df;
    l_cf = cf;
    l_max_tf = max_tf;
    l_blocks = blocks;
    l_skip_off = skip_off;
    l_skip_len = skip_len;
    l_doc_off = doc_off;
    l_doc_len = doc_len;
    l_pos_off = doc_off + doc_len;
  }

type skip = {
  sk_last_doc : int;
  sk_doc_off : int;
  sk_doc_len : int;
  sk_pos_off : int;
  sk_pos_len : int;
}

let parse_skips b lay =
  let n = lay.l_blocks in
  let skips =
    Array.make n { sk_last_doc = -1; sk_doc_off = 0; sk_doc_len = 0; sk_pos_off = 0; sk_pos_len = 0 }
  in
  let pos = ref lay.l_skip_off in
  let last = ref (-1) and doff = ref lay.l_doc_off and poff = ref lay.l_pos_off in
  for i = 0 to n - 1 do
    let dld, p = Util.Varint.decode b ~pos:!pos in
    let dl, p = Util.Varint.decode b ~pos:p in
    let pl, p = Util.Varint.decode b ~pos:p in
    pos := p;
    let last_doc = if !last < 0 then dld else !last + dld in
    skips.(i) <-
      { sk_last_doc = last_doc; sk_doc_off = !doff; sk_doc_len = dl; sk_pos_off = !poff; sk_pos_len = pl };
    last := last_doc;
    doff := !doff + dl;
    poff := !poff + pl
  done;
  skips

(* ------------------------------------------------------------------ *)
(* Decoders (version-sniffing)                                         *)
(* ------------------------------------------------------------------ *)

let stats b =
  if version b = 2 then begin
    let lay = parse_layout b in
    (lay.l_df, lay.l_cf)
  end
  else begin
    let df, pos = Util.Varint.decode b ~pos:0 in
    let cf, _ = Util.Varint.decode b ~pos in
    (df, cf)
  end

let doc_count b = fst (stats b)

let max_tf b = if version b = 2 then Some (parse_layout b).l_max_tf else None

let skip_table_region b =
  if version b = 2 then begin
    let lay = parse_layout b in
    Some (lay.l_skip_off, lay.l_skip_len)
  end
  else None

let fold_docs b ~init ~f =
  if version b = 2 then begin
    let lay = parse_layout b in
    (* (doc, tf) pairs live in their own region: no position bytes are
       ever scanned here — the v2 payoff for document-level evaluation. *)
    let rec go k pos doc acc =
      if k = 0 then acc
      else begin
        let gap, pos = Util.Varint.decode b ~pos in
        let doc = if doc < 0 then gap else doc + gap in
        let tf, pos = Util.Varint.decode b ~pos in
        go (k - 1) pos doc (f acc ~doc ~tf)
      end
    in
    go lay.l_df lay.l_doc_off (-1) init
  end
  else begin
    let df, pos = Util.Varint.decode b ~pos:0 in
    let _cf, pos = Util.Varint.decode b ~pos in
    let rec go k pos doc acc =
      if k = 0 then acc
      else begin
        let gap, pos = Util.Varint.decode b ~pos in
        let doc = if doc < 0 then gap else doc + gap in
        let tf, pos = Util.Varint.decode b ~pos in
        (* Skip the tf position gaps. *)
        let rec skip n pos =
          if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode b ~pos))
        in
        let pos = skip tf pos in
        go (k - 1) pos doc (f acc ~doc ~tf)
      end
    in
    go df pos (-1) init
  end

let read_positions b ~pos ~tf =
  let rec read n pos last acc_ps =
    if n = 0 then (List.rev acc_ps, pos)
    else begin
      let pgap, pos = Util.Varint.decode b ~pos in
      let p = if last < 0 then pgap else last + pgap in
      read (n - 1) pos p (p :: acc_ps)
    end
  in
  read tf pos (-1) []

let fold_positions b ~init ~f =
  if version b = 2 then begin
    let lay = parse_layout b in
    let rec go k dpos ppos doc acc =
      if k = 0 then acc
      else begin
        let gap, dpos = Util.Varint.decode b ~pos:dpos in
        let doc = if doc < 0 then gap else doc + gap in
        let tf, dpos = Util.Varint.decode b ~pos:dpos in
        let positions, ppos = read_positions b ~pos:ppos ~tf in
        go (k - 1) dpos ppos doc (f acc { doc; positions })
      end
    in
    go lay.l_df lay.l_doc_off lay.l_pos_off (-1) init
  end
  else begin
    let df, pos = Util.Varint.decode b ~pos:0 in
    let _cf, pos = Util.Varint.decode b ~pos in
    let rec go k pos doc acc =
      if k = 0 then acc
      else begin
        let gap, pos = Util.Varint.decode b ~pos in
        let doc = if doc < 0 then gap else doc + gap in
        let tf, pos = Util.Varint.decode b ~pos in
        let positions, pos = read_positions b ~pos ~tf in
        go (k - 1) pos doc (f acc { doc; positions })
      end
    in
    go df pos (-1) init
  end

let decode b = List.rev (fold_positions b ~init:[] ~f:(fun acc dp -> dp :: acc))

let merge a b =
  let pa = decode a and pb = decode b in
  let rec zip xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
      if x.doc < y.doc then x :: zip xs' ys
      else if y.doc < x.doc then y :: zip xs ys'
      else invalid_arg "Postings.merge: document sets overlap"
  in
  encode (List.map (fun dp -> (dp.doc, dp.positions)) (zip pa pb))

let remove_docs b p =
  let remaining = List.filter (fun dp -> not (p dp.doc)) (decode b) in
  if remaining = [] then None
  else Some (encode (List.map (fun dp -> (dp.doc, dp.positions)) remaining))

(* ------------------------------------------------------------------ *)
(* Deep structural validation (fsck)                                   *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let check cond msg = if not cond then raise (Bad msg)

let validate_v2 b =
  let len = Bytes.length b in
  let lay = parse_layout b in
  check (lay.l_df >= 0 && lay.l_cf >= lay.l_df) "df/cf header implausible";
  check
    (lay.l_blocks = (lay.l_df + block_size - 1) / block_size)
    (Printf.sprintf "block count %d inconsistent with df %d" lay.l_blocks lay.l_df);
  check (lay.l_skip_off + lay.l_skip_len <= len) "skip table extends past record end";
  check (lay.l_pos_off <= len) "doc region extends past record end";
  if lay.l_df = 0 then begin
    check (lay.l_skip_len = 0 && lay.l_doc_len = 0 && lay.l_pos_off = len)
      "empty record carries payload bytes"
  end
  else begin
    (* Skip-table invariants: exact byte length, strictly monotone
       last-doc ids, per-block byte counts that tile both regions. *)
    let pos = ref lay.l_skip_off in
    let last = ref (-1) and dsum = ref 0 and psum = ref 0 in
    for i = 0 to lay.l_blocks - 1 do
      check (!pos < lay.l_skip_off + lay.l_skip_len) "skip table truncated";
      let dld, p = Util.Varint.decode b ~pos:!pos in
      let dl, p = Util.Varint.decode b ~pos:p in
      let pl, p = Util.Varint.decode b ~pos:p in
      pos := p;
      check (p <= lay.l_skip_off + lay.l_skip_len) "skip entry overruns skip table";
      check (i = 0 || dld >= 1) "skip-table last-doc ids not strictly ascending";
      check (dl >= 1 && pl >= 1) "skip entry with empty block";
      last := (if !last < 0 then dld else !last + dld);
      dsum := !dsum + dl;
      psum := !psum + pl
    done;
    check (!pos = lay.l_skip_off + lay.l_skip_len) "skip table has trailing bytes";
    check (!dsum = lay.l_doc_len)
      (Printf.sprintf "skip doc-bytes sum %d <> doc region length %d" !dsum lay.l_doc_len);
    check (!psum = len - lay.l_pos_off)
      (Printf.sprintf "skip pos-bytes sum %d <> position region length %d" !psum (len - lay.l_pos_off));
    (* Walk both regions block by block against the skip entries. *)
    let skips = parse_skips b lay in
    let cf = ref 0 and seen_max_tf = ref 0 and doc = ref (-1) in
    Array.iteri
      (fun i sk ->
        let in_block =
          if i = lay.l_blocks - 1 then lay.l_df - (i * block_size) else block_size
        in
        let dpos = ref sk.sk_doc_off and ppos = ref sk.sk_pos_off in
        for _ = 1 to in_block do
          let gap, p = Util.Varint.decode b ~pos:!dpos in
          check (if !doc < 0 then gap >= 0 else gap >= 1) "doc gaps not strictly ascending";
          doc := (if !doc < 0 then gap else !doc + gap);
          let tf, p = Util.Varint.decode b ~pos:p in
          check (tf >= 1) "posting with zero tf";
          dpos := p;
          cf := !cf + tf;
          if tf > !seen_max_tf then seen_max_tf := tf;
          let last_p = ref (-1) in
          for _ = 1 to tf do
            let pgap, p = Util.Varint.decode b ~pos:!ppos in
            check (if !last_p < 0 then pgap >= 0 else pgap >= 1)
              "position gaps not strictly ascending";
            last_p := pgap;
            ppos := p
          done
        done;
        check (!dpos = sk.sk_doc_off + sk.sk_doc_len)
          (Printf.sprintf "block %d doc bytes %d <> skip entry %d" i (!dpos - sk.sk_doc_off) sk.sk_doc_len);
        check (!ppos = sk.sk_pos_off + sk.sk_pos_len)
          (Printf.sprintf "block %d pos bytes %d <> skip entry %d" i (!ppos - sk.sk_pos_off) sk.sk_pos_len);
        check (!doc = sk.sk_last_doc)
          (Printf.sprintf "block %d ends at doc %d, skip table says %d" i !doc sk.sk_last_doc))
      skips;
    check (!cf = lay.l_cf) (Printf.sprintf "tf sum %d <> header cf %d" !cf lay.l_cf);
    check (!seen_max_tf = lay.l_max_tf)
      (Printf.sprintf "observed max tf %d <> header max_tf %d" !seen_max_tf lay.l_max_tf)
  end

let validate_v1 b =
  let df, pos = Util.Varint.decode b ~pos:0 in
  let cf, pos = Util.Varint.decode b ~pos in
  check (df >= 0 && cf >= df) "df/cf header implausible";
  let cf' = ref 0 in
  let rec go k pos doc =
    if k = 0 then pos
    else begin
      let gap, pos = Util.Varint.decode b ~pos in
      check (if doc < 0 then gap >= 0 else gap >= 1) "doc gaps not strictly ascending";
      let doc = if doc < 0 then gap else doc + gap in
      let tf, pos = Util.Varint.decode b ~pos in
      check (tf >= 1) "posting with zero tf";
      cf' := !cf' + tf;
      let rec skip n pos = if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode b ~pos)) in
      go (k - 1) (skip tf pos) doc
    end
  in
  let fin = go df pos (-1) in
  check (fin = Bytes.length b) "record has trailing bytes";
  check (!cf' = cf) (Printf.sprintf "tf sum %d <> header cf %d" !cf' cf)

let validate b =
  match if version b = 2 then validate_v2 b else validate_v1 b with
  | () -> Ok ()
  | exception Bad msg -> Error msg
  | exception Invalid_argument msg -> Error ("undecodable: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Cursors                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = {
  data : bytes;
  cur_version : int;
  cur_df : int;
  skips : skip array; (* empty for v1 *)
  mutable idx : int; (* postings consumed so far *)
  mutable byte : int; (* next (doc gap, tf) entry *)
  mutable doc : int; (* current doc, max_int once exhausted *)
  mutable tf : int;
  mutable decoded : int;
  mutable blocks_skipped : int;
  mutable n_seeks : int;
}

let cursor_step c =
  if c.idx >= c.cur_df then c.doc <- max_int
  else begin
    let gap, pos = Util.Varint.decode c.data ~pos:c.byte in
    c.doc <- (if c.doc < 0 then gap else c.doc + gap);
    let tf, pos = Util.Varint.decode c.data ~pos in
    c.tf <- tf;
    let pos =
      if c.cur_version = 2 then pos
      else begin
        (* v1 interleaves positions with the doc entries: scan past them. *)
        let rec skip n pos =
          if n = 0 then pos else skip (n - 1) (snd (Util.Varint.decode c.data ~pos))
        in
        skip tf pos
      end
    in
    c.byte <- pos;
    c.idx <- c.idx + 1;
    c.decoded <- c.decoded + 1
  end

let cursor b =
  let c =
    if version b = 2 then begin
      let lay = parse_layout b in
      {
        data = b;
        cur_version = 2;
        cur_df = lay.l_df;
        skips = parse_skips b lay;
        idx = 0;
        byte = lay.l_doc_off;
        doc = -1;
        tf = 0;
        decoded = 0;
        blocks_skipped = 0;
        n_seeks = 0;
      }
    end
    else begin
      let df, pos = Util.Varint.decode b ~pos:0 in
      let _cf, pos = Util.Varint.decode b ~pos in
      {
        data = b;
        cur_version = 1;
        cur_df = df;
        skips = [||];
        idx = 0;
        byte = pos;
        doc = -1;
        tf = 0;
        decoded = 0;
        blocks_skipped = 0;
        n_seeks = 0;
      }
    end
  in
  cursor_step c;
  c

let cur_doc c = c.doc
let cur_tf c = c.tf
let cursor_df c = c.cur_df
let cursor_next c = cursor_step c
let cursor_decoded c = c.decoded
let cursor_blocks_skipped c = c.blocks_skipped
let cursor_seeks c = c.n_seeks

let cursor_seek c target =
  if c.doc < target && c.doc <> max_int then begin
    c.n_seeks <- c.n_seeks + 1;
    if c.cur_version = 2 && Array.length c.skips > 0 then begin
      (* c.idx postings are consumed, so the next posting to decode is
         index c.idx, sitting in block c.idx / block_size. *)
      let cur_block = c.idx / block_size in
      let n = Array.length c.skips in
      (* Smallest block whose last doc id reaches the target. *)
      let lo = ref cur_block and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if c.skips.(mid).sk_last_doc >= target then hi := mid else lo := mid + 1
      done;
      if !lo >= n then begin
        (* No block can contain the target: exhaust without decoding. *)
        c.blocks_skipped <- c.blocks_skipped + (n - cur_block);
        c.idx <- c.cur_df;
        c.doc <- max_int
      end
      else if !lo > cur_block then begin
        c.blocks_skipped <- c.blocks_skipped + (!lo - cur_block);
        c.idx <- !lo * block_size;
        c.byte <- c.skips.(!lo).sk_doc_off;
        (* Gaps restart from the previous block's last doc id. *)
        c.doc <- c.skips.(!lo - 1).sk_last_doc
      end
    end;
    while c.doc < target && c.doc <> max_int do
      cursor_step c
    done
  end
