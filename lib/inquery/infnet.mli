(** Bayesian inference network query evaluation.

    INQUERY ranks documents by combining evidence in an inference
    network (Turtle & Croft, 1991).  Evaluation is {e term-at-a-time}:
    the complete record for one term is read, its evidence merged into
    per-document belief accumulators, then the next term is processed.

    Term belief for a document uses the INQUERY estimator

    {v bel = 0.4 + 0.6 * tf_w * idf_w
       tf_w  = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
       idf_w = log((N + 0.5) / df) / log(N + 1) v}

    with default belief 0.4 for documents lacking the term.  Operators
    combine beliefs per the inference network: [#and] multiplies,
    [#or] is 1 - prod(1 - b), [#not] complements, [#sum]/[#wsum]
    average, [#max] takes the maximum.  [#phrase] builds a synthetic
    term from exact-adjacency matches using token positions.

    The evaluator is storage-agnostic: records arrive through a
    {!source} callback, so the same engine runs over the B-tree or the
    Mneme backend.  It reports the event counts the cost model charges
    (postings scored, nodes visited, record lookups). *)

type source = {
  fetch : Dictionary.entry -> bytes option;
      (** Retrieve the inverted record for a dictionary entry.  Counted
          as one record lookup per call. *)
  n_docs : int;
  max_doc_id : int;
  avg_doc_len : float;
  doc_len : int -> int;
}

type stats = {
  mutable postings_scored : int;
  mutable nodes_visited : int;
  mutable record_lookups : int;
}

val default_belief : float
(** 0.4 *)

val eval :
  source ->
  Dictionary.t ->
  ?df_of:(Dictionary.entry -> int) ->
  ?stopwords:Stopwords.t ->
  ?stem:bool ->
  Query.t ->
  float array * stats
(** [eval source dict query] returns per-document beliefs (indexed by
    document id, length [max_doc_id + 1]) and the event counts.  Query
    terms are optionally stemmed and stop-filtered before dictionary
    lookup; out-of-vocabulary terms contribute the default belief and
    no record lookup.

    [df_of] overrides the document frequency a term leaf scores with
    (default: the fetched record's own header df).  A doc-partitioned
    shard passes the {e global} df here so its per-document beliefs are
    bit-identical to the unsharded index; positional leaves
    ([#phrase]/[#od]/[#uw]/[#syn]) always use their match count and are
    unaffected. *)

type scored = { doc : int; belief : float }

val eval_daat :
  source ->
  Dictionary.t ->
  ?df_of:(Dictionary.entry -> int) ->
  ?stopwords:Stopwords.t ->
  ?stem:bool ->
  Query.t ->
  scored list * stats
(** Document-at-a-time evaluation — the alternative the paper sketches:
    "A 'document-at-a-time' approach, which gathered all of the evidence
    for one document before proceeding to the next, might scale better
    to large collections."  All query records are opened as cursors and
    documents are scored in ascending id order, so memory is bounded by
    the query's postings rather than by a belief array over the whole
    collection.

    Returns only documents that contain at least one query term and
    whose combined belief exceeds the query's no-evidence baseline (the
    belief a document matching nothing would get) — identical to
    [eval]'s beliefs on those documents (tested), except that
    pure-negation evidence ([#not] raising belief of documents that
    merely {e lack} a term) is not enumerated. *)

type topk_stats = {
  tk_plan : Planner.plan;  (** The plan that actually executed. *)
  tk_pruned : bool;
      (** A pruning executor ran ([tk_plan <> Exhaustive]). *)
  tk_postings_total : int;
      (** Postings carried by the records the query opened (cursor dfs
          on the pruned plans; header dfs per leaf occurrence on the
          exhaustive plan). *)
  tk_postings_decoded : int;  (** Postings actually decoded. *)
  tk_blocks_skipped : int;  (** Skip blocks jumped without decoding. *)
  tk_seeks : int;  (** Cursor seeks that had to move. *)
  tk_bytes_read : int;
      (** Record bytes actually decoded: freshly decoded doc-region
          blocks plus position bytes walked (cache hits add nothing;
          the exhaustive plan charges each opened record's doc region,
          plus its position region on position-matching leaves). *)
  tk_blocks_read : int;
      (** Skip blocks freshly decoded (exhaustive plan: every block of
          every opened v2 record). *)
  tk_est_bytes : int;
      (** The planner's pre-execution byte estimate for the executed
          plan — compare with [tk_bytes_read] for estimation error. *)
  tk_est_blocks : int;  (** Likewise for blocks. *)
  tk_stopped : bool;  (** [should_stop] cut evaluation short. *)
}

exception Audit_mismatch of string

val eval_topk :
  source ->
  Dictionary.t ->
  ?df_of:(Dictionary.entry -> int) ->
  ?floor:float ->
  ?stopwords:Stopwords.t ->
  ?stem:bool ->
  ?audit:bool ->
  ?exhaustive:bool ->
  ?plan:Planner.choice ->
  ?should_stop:(stats -> bool) ->
  ?block_cache:Util.Block_cache.t * int ->
  k:int ->
  Query.t ->
  scored list * stats * topk_stats
(** Cost-planned top-k document-at-a-time evaluation.

    The {!Planner} prices every applicable plan from the query records'
    header statistics (one memoized fetch per entry — planning adds no
    store reads) and the cheapest one executes:

    - {e Maxscore}, for flat additive queries (a bare term, [#sum] of
      terms, [#wsum] of terms): terms sorted by belief upper bound
      (from [df] and the v2 [max_tf] header alone), the frontier driven
      over the {e essential} prefix — the terms that can still lift a
      document past the current k-th score — the rest probed via
      {!Postings.cursor_seek} only while the candidate's partial score
      plus the remaining upper bounds beats the threshold.  Whole skip
      blocks of non-essential terms are never decoded.
    - {e Intersect}, for [#and] of terms and top-level
      [#phrase]/[#od]/[#uw]: [#and] runs the max-score idea as a
      product (a document absent from the highest-upper-bound members
      cannot beat the banked k-th score, so their cursors gate the
      frontier and the rest are only seeked); the positional operators
      are hard conjunctions, evaluated by leapfrog intersection driven
      from the rarest member with position bytes decoded lazily, only
      for co-occurring documents.
    - {e Exhaustive}, for every other shape ([#or], [#not], nested
      operators, …) and whenever it prices no worse: full
      {!eval_daat} plus bounded top-k selection ([tk_pruned = false]).

    Whatever the plan, returned beliefs are bit-identical to taking the
    first [k] of {!eval_daat}'s results sorted by belief descending
    (doc ascending on ties): surviving candidates are rescored by the
    same fold in the same order, and pruning thresholds carry a
    conservative floating-point margin.

    @param df_of override the df a term leaf scores with, as in {!eval}
    (the sharding hook: global statistics over local records).
    @param floor seed the pruning threshold with an externally known
    kth score (the scatter-gather coordinator's current global bound):
    documents that cannot {e strictly} beat [floor] may be pruned on
    the Maxscore and [#and]-Intersect paths, so the result is the top-k
    among documents scoring above it — ties at the floor survive.  The
    exhaustive and positional-intersect executors ignore it and return
    a superset; callers filter at merge.  Raises [Invalid_argument] if
    combined with [audit] (the oracle has no floor) or not finite.
    @param audit re-run the exhaustive evaluator and raise
    {!Audit_mismatch} if the executed plan's ranking diverges (docs or
    beliefs) — any plan, including a forced one.
    @param exhaustive force the exhaustive plan (equivalent to
    [~plan:(Forced Exhaustive)]; kept for existing callers).
    @param plan {!Planner.Auto} (default) picks the cheapest applicable
    plan; [Forced p] executes [p], falling back to the exhaustive plan
    when [p] does not apply to the query's shape.  Plan choice never
    changes results, only the bytes touched.
    @param should_stop polled once per candidate document (i.e. between
    postings blocks, not between whole terms), with the evaluation
    counters accrued so far — enough to price the work against a
    deadline; when it fires, evaluation stops and the heap contents so
    far are returned with [tk_stopped = true].
    @param block_cache [(cache, epoch)]: share decoded postings blocks
    across queries through a {!Util.Block_cache}, keyed by each term
    record's dictionary locator and the given epoch.  Only leaves whose
    entry carries a stable locator ([>= 0]) participate; others decode
    privately as before.  Results are unaffected — a hit returns the
    same arrays the decoder would produce — but cache hits are not
    counted in [tk_postings_decoded]. *)
