(** Bayesian inference network query evaluation.

    INQUERY ranks documents by combining evidence in an inference
    network (Turtle & Croft, 1991).  Evaluation is {e term-at-a-time}:
    the complete record for one term is read, its evidence merged into
    per-document belief accumulators, then the next term is processed.

    Term belief for a document uses the INQUERY estimator

    {v bel = 0.4 + 0.6 * tf_w * idf_w
       tf_w  = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
       idf_w = log((N + 0.5) / df) / log(N + 1) v}

    with default belief 0.4 for documents lacking the term.  Operators
    combine beliefs per the inference network: [#and] multiplies,
    [#or] is 1 - prod(1 - b), [#not] complements, [#sum]/[#wsum]
    average, [#max] takes the maximum.  [#phrase] builds a synthetic
    term from exact-adjacency matches using token positions.

    The evaluator is storage-agnostic: records arrive through a
    {!source} callback, so the same engine runs over the B-tree or the
    Mneme backend.  It reports the event counts the cost model charges
    (postings scored, nodes visited, record lookups). *)

type source = {
  fetch : Dictionary.entry -> bytes option;
      (** Retrieve the inverted record for a dictionary entry.  Counted
          as one record lookup per call. *)
  n_docs : int;
  max_doc_id : int;
  avg_doc_len : float;
  doc_len : int -> int;
}

type stats = {
  mutable postings_scored : int;
  mutable nodes_visited : int;
  mutable record_lookups : int;
}

val default_belief : float
(** 0.4 *)

val eval :
  source ->
  Dictionary.t ->
  ?df_of:(Dictionary.entry -> int) ->
  ?stopwords:Stopwords.t ->
  ?stem:bool ->
  Query.t ->
  float array * stats
(** [eval source dict query] returns per-document beliefs (indexed by
    document id, length [max_doc_id + 1]) and the event counts.  Query
    terms are optionally stemmed and stop-filtered before dictionary
    lookup; out-of-vocabulary terms contribute the default belief and
    no record lookup.

    [df_of] overrides the document frequency a term leaf scores with
    (default: the fetched record's own header df).  A doc-partitioned
    shard passes the {e global} df here so its per-document beliefs are
    bit-identical to the unsharded index; positional leaves
    ([#phrase]/[#od]/[#uw]/[#syn]) always use their match count and are
    unaffected. *)

type scored = { doc : int; belief : float }

val eval_daat :
  source ->
  Dictionary.t ->
  ?df_of:(Dictionary.entry -> int) ->
  ?stopwords:Stopwords.t ->
  ?stem:bool ->
  Query.t ->
  scored list * stats
(** Document-at-a-time evaluation — the alternative the paper sketches:
    "A 'document-at-a-time' approach, which gathered all of the evidence
    for one document before proceeding to the next, might scale better
    to large collections."  All query records are opened as cursors and
    documents are scored in ascending id order, so memory is bounded by
    the query's postings rather than by a belief array over the whole
    collection.

    Returns only documents that contain at least one query term and
    whose combined belief exceeds the query's no-evidence baseline (the
    belief a document matching nothing would get) — identical to
    [eval]'s beliefs on those documents (tested), except that
    pure-negation evidence ([#not] raising belief of documents that
    merely {e lack} a term) is not enumerated. *)

type topk_stats = {
  tk_pruned : bool;
      (** The max-score pruned path ran (vs. exhaustive fallback). *)
  tk_postings_total : int;
      (** Postings carried by the query's term records (pruned path), or
          postings actually scored (fallback). *)
  tk_postings_decoded : int;  (** Postings the cursors actually decoded. *)
  tk_blocks_skipped : int;  (** Skip blocks jumped without decoding. *)
  tk_seeks : int;  (** Cursor seeks that had to move. *)
  tk_stopped : bool;  (** [should_stop] cut evaluation short. *)
}

exception Audit_mismatch of string

val eval_topk :
  source ->
  Dictionary.t ->
  ?df_of:(Dictionary.entry -> int) ->
  ?floor:float ->
  ?stopwords:Stopwords.t ->
  ?stem:bool ->
  ?audit:bool ->
  ?exhaustive:bool ->
  ?should_stop:(stats -> bool) ->
  ?block_cache:Util.Block_cache.t * int ->
  k:int ->
  Query.t ->
  scored list * stats * topk_stats
(** Max-score top-k document-at-a-time evaluation.

    For flat additive queries (a bare term, [#sum] of terms, [#wsum] of
    terms) the evaluator sorts terms by their belief upper bound
    (computable from [df] and the v2 record's [max_tf] header alone),
    drives the frontier over the {e essential} prefix — the terms that
    can still lift a document past the current k-th score — and probes
    the rest via {!Postings.cursor_seek} only while the candidate's
    partial score plus the remaining upper bounds beats the threshold.
    Whole skip blocks of non-essential terms are never decoded.

    Returned beliefs are bit-identical to taking the first [k] of
    {!eval_daat}'s results sorted by belief descending (doc ascending on
    ties): the surviving candidates are rescored by the same fold, and
    pruning thresholds carry a conservative floating-point margin.

    Any other query shape ([#phrase], [#not], nested operators, …)
    falls back to exhaustive {!eval_daat} plus bounded top-k selection —
    same results, no pruning ([tk_pruned = false]).

    @param df_of override the df a term leaf scores with, as in {!eval}
    (the sharding hook: global statistics over local records).
    @param floor seed the pruning threshold with an externally known
    kth score (the scatter-gather coordinator's current global bound):
    documents that cannot {e strictly} beat [floor] may be pruned on
    the max-score path, so the result is the top-k among documents
    scoring above it — ties at the floor survive.  Only the pruned path
    consults it (the exhaustive fallback returns a superset; callers
    filter at merge).  Raises [Invalid_argument] if combined with
    [audit] (the oracle has no floor) or not finite.
    @param audit re-run the exhaustive evaluator and raise
    {!Audit_mismatch} if the pruned ranking diverges (docs or beliefs).
    @param exhaustive force the fallback path (for benchmarking).
    @param should_stop polled once per candidate document (i.e. between
    postings blocks, not between whole terms), with the evaluation
    counters accrued so far — enough to price the work against a
    deadline; when it fires, evaluation stops and the heap contents so
    far are returned with [tk_stopped = true].
    @param block_cache [(cache, epoch)]: share decoded postings blocks
    across queries through a {!Util.Block_cache}, keyed by each term
    record's dictionary locator and the given epoch.  Only leaves whose
    entry carries a stable locator ([>= 0]) participate; others decode
    privately as before.  Results are unaffected — a hit returns the
    same arrays the decoder would produce — but cache hits are not
    counted in [tk_postings_decoded]. *)
