(* Cost-based plan selection for top-k evaluation.  Pure arithmetic
   over Postings.record_stats — the caller's [stats_of] closure hides
   normalisation, the dictionary and the store, so this module ranks
   plans without ever decoding a doc region. *)

type plan = Exhaustive | Maxscore | Intersect
type choice = Auto | Forced of plan

let plan_name = function
  | Exhaustive -> "exhaustive"
  | Maxscore -> "maxscore"
  | Intersect -> "intersect"

let plan_of_string = function
  | "exhaustive" -> Some Exhaustive
  | "maxscore" -> Some Maxscore
  | "intersect" -> Some Intersect
  | _ -> None

type shape = Flat | Conjunctive | Positional | Other

let term_only ns = List.for_all (function Query.Term _ -> true | _ -> false) ns

(* Flat must match Infnet.linear_shape exactly (including the
   positive-total requirement on #wsum) or the planner would promise a
   Maxscore execution the evaluator then refuses. *)
let shape_of = function
  | Query.Term _ -> Flat
  | Query.Sum ns when ns <> [] && term_only ns -> Flat
  | Query.Wsum ps
    when ps <> []
         && term_only (List.map snd ps)
         && List.fold_left (fun acc (w, _) -> acc +. w) 0.0 ps > 0.0 ->
    Flat
  | Query.And ns when ns <> [] && term_only ns -> Conjunctive
  | Query.Phrase _ | Query.Od _ | Query.Uw _ -> Positional
  | _ -> Other

let applicable q =
  match shape_of q with
  | Flat -> [ Maxscore; Exhaustive ]
  | Conjunctive | Positional -> [ Intersect; Exhaustive ]
  | Other -> [ Exhaustive ]

type estimate = { e_plan : plan; e_bytes : int; e_blocks : int }

(* Exhaustive DAAT decodes every leaf occurrence whole.  Only the
   position-matching operators walk position bytes (#syn unions doc
   regions without touching positions). *)
let exhaustive_cost stats_of q =
  let bytes = ref 0 and blocks = ref 0 in
  let leaf ~positional w =
    match stats_of w with
    | None -> ()
    | Some s ->
      bytes :=
        !bytes + s.Postings.rs_doc_bytes
        + (if positional then s.Postings.rs_pos_bytes else 0);
      blocks := !blocks + s.Postings.rs_blocks
  in
  let rec go = function
    | Query.Term w -> leaf ~positional:false w
    | Query.Phrase ws | Query.Od (_, ws) | Query.Uw (_, ws) ->
      List.iter (leaf ~positional:true) ws
    | Query.Syn ws -> List.iter (leaf ~positional:false) ws
    | Query.Sum ns | Query.And ns | Query.Or ns | Query.Max ns -> List.iter go ns
    | Query.Wsum ps -> List.iter (fun (_, n) -> go n) ps
    | Query.Not n -> go n
  in
  go q;
  (!bytes, !blocks)

let flat_terms = function
  | Query.Term w -> [ w ]
  | Query.Sum ns -> List.filter_map (function Query.Term w -> Some w | _ -> None) ns
  | Query.Wsum ps ->
    List.filter_map (function _, Query.Term w -> Some w | _ -> None) ps
  | _ -> []

let min_df present =
  List.fold_left (fun m s -> min m s.Postings.rs_df) max_int present

(* Scale a record's doc region to the fraction of its skip blocks a
   seeking cursor can touch when at most [cand] distinct target
   documents are probed.  v1 records have no skip table: a seek scans,
   so the whole region is charged. *)
let seek_cost s cand =
  if s.Postings.rs_blocks = 0 then (s.Postings.rs_doc_bytes, 0)
  else begin
    let touched = min s.Postings.rs_blocks cand in
    let frac = float_of_int touched /. float_of_int s.Postings.rs_blocks in
    ( int_of_float (ceil (float_of_int s.Postings.rs_doc_bytes *. frac)),
      touched )
  end

(* Max-score decodes the essential (rare) cursors whole and only seeks
   the rest to candidate documents; the candidate count is bounded by
   the rarest df plus heap-fill churn proportional to k. *)
let maxscore_cost stats_of ~k ws =
  let present = List.filter_map stats_of ws in
  if present = [] then (0, 0)
  else begin
    let cand = min_df present + (8 * max 1 k) in
    List.fold_left
      (fun (b, bl) s ->
        if s.Postings.rs_df <= cand then
          (b + s.Postings.rs_doc_bytes, bl + s.Postings.rs_blocks)
        else begin
          let db, dbl = seek_cost s cand in
          (b + db, bl + dbl)
        end)
      (0, 0) present
  end

(* Intersection-first: the rarest member's record is decoded whole and
   drives; every other member is only seeked to the driver's documents.
   Position bytes are walked lazily, only for co-occurring documents —
   at most df_min per member, scaled by each member's own df.  The soft
   #and executor also churns candidates while the heap fills, so its
   probe bound gains the same 8k slack as max-score; the positional
   intersection is hard and capped by df_min exactly.  A positional
   query with an absent member returns empty without decoding. *)
let intersect_cost stats_of ~k ~positional ws =
  let stats = List.map stats_of ws in
  if positional && List.exists Option.is_none stats then (0, 0)
  else begin
    let present = List.filter_map Fun.id stats in
    if present = [] then (0, 0)
    else begin
      let df_min = min_df present in
      let cand = if positional then df_min else df_min + (8 * max 1 k) in
      let driver_seen = ref false in
      List.fold_left
        (fun (b, bl) s ->
          let db, dbl =
            if (not !driver_seen) && s.Postings.rs_df = df_min then begin
              driver_seen := true;
              (s.Postings.rs_doc_bytes, s.Postings.rs_blocks)
            end
            else seek_cost s cand
          in
          let pb =
            if positional then
              let frac =
                Float.min 1.0
                  (float_of_int df_min /. float_of_int (max 1 s.Postings.rs_df))
              in
              int_of_float (ceil (float_of_int s.Postings.rs_pos_bytes *. frac))
            else 0
          in
          (b + db + pb, bl + dbl))
        (0, 0) present
    end
  end

let estimate ~stats_of ~k q plan =
  let plan = if List.mem plan (applicable q) then plan else Exhaustive in
  let bytes, blocks =
    match plan with
    | Exhaustive -> exhaustive_cost stats_of q
    | Maxscore -> maxscore_cost stats_of ~k (flat_terms q)
    | Intersect -> (
      match q with
      | Query.And ns ->
        intersect_cost stats_of ~k ~positional:false
          (List.filter_map (function Query.Term w -> Some w | _ -> None) ns)
      | Query.Phrase ws | Query.Od (_, ws) | Query.Uw (_, ws) ->
        intersect_cost stats_of ~k ~positional:true ws
      | _ -> assert false)
  in
  { e_plan = plan; e_bytes = bytes; e_blocks = blocks }

(* Equal estimates break toward the executor that can still prune at
   run time: its worst case is the tie, its best case is free. *)
let rank = function Maxscore -> 0 | Intersect -> 1 | Exhaustive -> 2

let decide ~stats_of ~k q =
  match List.map (estimate ~stats_of ~k q) (applicable q) with
  | [] -> assert false
  | e :: es ->
    List.fold_left
      (fun best e ->
        if
          e.e_bytes < best.e_bytes
          || (e.e_bytes = best.e_bytes && rank e.e_plan < rank best.e_plan)
        then e
        else best)
      e es
