(** Document ranking.

    "In INQUERY, document ranking is a sorting problem, because the
    Bayesian method of combining belief assigns a numeric value to each
    document."  Ties break toward the smaller document id so runs are
    deterministic. *)

type ranked = { doc : int; score : float }

val rank : ?above:float -> float array -> ranked list
(** [rank beliefs] sorts all documents by descending belief.  [above]
    (default: {!Infnet.default_belief}) filters out documents whose
    belief never rose above the default — documents with no evidence. *)

val top_k : ?above:float -> float array -> k:int -> ranked list
(** First [k] of [rank], computed with a bounded min-heap in
    O(n log k) — identical results and tie-breaks, without sorting the
    full candidate list.  Raises [Invalid_argument] if [k < 0]. *)
