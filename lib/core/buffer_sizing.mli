(** The paper's buffer-size heuristics (their Table 2).

    - Large-object buffer: three times the largest inverted list —
      "a reasonable amount of buffer space, in a somewhat regulated
      fashion"; a percentage of total file size would be inappropriate
      given the range of file sizes.
    - Medium-object buffer: 9 % of the large buffer (the observed ratio
      of medium to large accesses), but never less than three medium
      segments — the CACM exception.
    - Small-object buffer: three small segments; small-object access is
      insignificant. *)

type t = { small : int; medium : int; large : int }
(** Capacities in bytes. *)

val compute :
  ?small_pseg:int -> ?medium_pseg:int -> ?medium_ratio:float -> largest_record:int -> unit -> t
(** Defaults: 4 KB small segments, 8 KB medium segments, ratio 0.09.
    Raises [Invalid_argument] if [largest_record <= 0]. *)

val no_cache : t
(** All capacities zero — the "Mneme, No Cache" configuration. *)

val with_large : t -> int -> t
(** Override the large-buffer capacity (the Figure 3 sweep). *)

val split : t -> ways:int -> t
(** One worker session's share of the Table 2 budget when the query set
    is served by [ways] domains: each pool capacity is divided evenly
    (flooring), so the {e total} buffer memory of a parallel run never
    exceeds the single-session budget the paper's heuristics grant.
    Zero capacities stay zero (transient pools stay transient).
    [split t ~ways:1] is [t].  Raises [Invalid_argument] if
    [ways <= 0]. *)
