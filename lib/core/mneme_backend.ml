let default_policies = (Mneme.Policy.small, Mneme.Policy.medium, Mneme.Policy.large)

let build ?thresholds ?(policies = default_policies) vfs ~file ~dict records =
  let small_p, medium_p, large_p = policies in
  if
    small_p.Mneme.Policy.name <> "small"
    || medium_p.Mneme.Policy.name <> "medium"
    || large_p.Mneme.Policy.name <> "large"
  then invalid_arg "Mneme_backend.build: pool policies must be named small/medium/large";
  let store = Mneme.Store.create vfs file in
  let pools =
    List.map
      (fun policy -> (policy.Mneme.Policy.name, Mneme.Store.add_pool store policy))
      [ small_p; medium_p; large_p ]
  in
  let pool_of cls = List.assoc (Partition.class_name cls) pools in
  Seq.iter
    (fun (term_id, record) ->
      let cls = Partition.classify ?thresholds (Bytes.length record) in
      let oid = Mneme.Store.allocate (pool_of cls) record in
      match Inquery.Dictionary.find_by_id dict term_id with
      | Some entry -> entry.Inquery.Dictionary.locator <- oid
      | None -> failwith (Printf.sprintf "Mneme_backend.build: term id %d not in dictionary" term_id))
    records;
  Mneme.Store.finalize store;
  store

let open_session ?(policy = Mneme.Buffer_pool.Lru) vfs ~file ~buffers =
  let store = Mneme.Store.open_existing vfs file in
  let capacities =
    [
      ("small", buffers.Buffer_sizing.small);
      ("medium", buffers.Buffer_sizing.medium);
      ("large", buffers.Buffer_sizing.large);
    ]
  in
  let bufs =
    List.map
      (fun (name, capacity) ->
        let buffer = Mneme.Buffer_pool.create ~name ~capacity ~policy () in
        Mneme.Store.attach_buffer (Mneme.Store.pool store name) buffer;
        (name, buffer))
      capacities
  in
  let cached =
    if List.for_all (fun (_, b) -> Mneme.Buffer_pool.capacity b = 0) bufs then "mneme-nocache"
    else "mneme-cache"
  in
  let fetch entry =
    let locator = entry.Inquery.Dictionary.locator in
    if locator < 0 then None else Mneme.Store.get_opt store locator
  in
  let reserve entries =
    let oids =
      List.filter_map
        (fun entry ->
          let locator = entry.Inquery.Dictionary.locator in
          if locator < 0 then None else Some locator)
        entries
    in
    Mneme.Store.reserve store oids
  in
  {
    Index_store.name = cached;
    fetch;
    reserve;
    buffer_stats = (fun () -> List.map (fun (name, b) -> (name, Mneme.Buffer_pool.stats b)) bufs);
    reset_buffer_stats = (fun () -> List.iter (fun (_, b) -> Mneme.Buffer_pool.reset_stats b) bufs);
    file_size = (fun () -> Mneme.Store.file_size store);
    epoch = (fun () -> Mneme.Store.epoch store);
  }
