let build vfs ~file records =
  let tree = Btree.create vfs file () in
  Btree.bulk_load tree records;
  tree

let open_session ?cached_levels vfs ~file =
  let tree = Btree.open_existing ?cached_levels vfs file in
  {
    Index_store.name = "btree";
    fetch = (fun entry -> Btree.lookup tree entry.Inquery.Dictionary.id);
    reserve = Index_store.no_reserve;
    buffer_stats = (fun () -> []);
    reset_buffer_stats = (fun () -> ());
    file_size = (fun () -> Btree.file_size tree);
    epoch = (fun () -> 0);
  }
