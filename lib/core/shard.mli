(** Fault-tolerant doc-partitioned sharding: scatter-gather top-k with
    explicit partial-result semantics.

    A collection is split across [N] contiguous document ranges.  Every
    shard is a {e full} store for its slice — its own inverted file,
    dictionary and replica group, served behind its own {!Frontend}
    (per-shard circuit breakers, hedged reads, deadlines) — so each
    shard is an independent failure domain.  The coordinator scatters a
    query to all shards and merges the per-shard top-k streams.

    {b Bit-identity.}  Shards rank with {e global} collection
    statistics: the coordinator hands each shard frontend the global
    document count, average document length, per-document lengths and —
    via {!Frontend.create}'s [df_of] — the global document frequency of
    every term, so a document's belief is bit-identical to what the
    unsharded index computes.  The merged top-k (score descending, doc
    ascending on ties) of fully-answered shards therefore equals the
    unsharded ranking exactly.  The contract covers every non-positional
    query; [#phrase]/[#od]/[#uw]/[#syn] leaves score with their match
    count as df, which is shard-local by construction, so positional
    queries may rank differently under sharding (documented limitation —
    a global-stats exchange round would fix it).

    {b Global-bound early stop.}  The scatter threads the current
    global kth score into each subsequent shard's evaluation as a
    pruning {e floor} ({!Frontend.run_query}[ ?floor]): a shard stops
    scoring documents that cannot strictly beat the bound.  Shards are
    visited in attach order; a streaming broker would broadcast the
    bound asynchronously — the deterministic simulation stands in for
    that, and only {e answered} shards feed the bound (a degraded
    shard's scores are underestimates and would over-prune).

    {b Partial-result semantics.}  Results carry a {!coverage} record —
    shards answered / degraded / shed and the covered doc-count
    fraction — and only fully-answered shards contribute to the merge,
    so a partial ranking is {e exactly} the unsharded ranking restricted
    to the covered doc ranges: degraded evidence is never silently mixed
    in.  A failing shard is retried with backoff (the backoff advances
    the shard's logical clock, letting breaker cooldowns elapse) before
    it is declared down; deadline-expired shards are not retried — there
    is no budget left to retry into.  The {!policy} decides what a
    partial scatter returns: [Fail_fast] surfaces the first shard error
    as a typed {!error}; [Best_effort min_coverage] returns the partial
    ranking with its coverage, or a typed error once coverage falls
    below the floor — never a silently truncated ranking. *)

type policy =
  | Fail_fast  (** any shard failure fails the query *)
  | Best_effort of float
      (** serve partial results while covered doc fraction >= the
          argument (in [0, 1]); below it, a typed error *)

type t

val create :
  ?shard_replicas:int ->
  ?policy:policy ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?global_bound:bool ->
  ?hedge_after_ms:float ->
  ?window:int ->
  ?trip_after:int ->
  ?cooldown_ms:float ->
  ?buffers:Buffer_sizing.t ->
  shards:int ->
  Experiment.prepared ->
  t
(** Partition [prepared]'s collection into [shards] contiguous doc
    ranges and build each shard a full Mneme store of its slice
    (documents keep their global ids), replicated [shard_replicas]
    times (default 2) onto fresh file systems with cold caches, behind
    its own {!Frontend} wired with the global catalog statistics.

    [policy] defaults to [Best_effort 1.0] (serve only full coverage);
    [retries] (default 1) and [backoff_ms] (default 600, one breaker
    cooldown) govern per-shard retry before a shard is declared down;
    [global_bound] (default true) threads the kth-score floor through
    the scatter.  The breaker knobs are per shard frontend, as in
    {!Frontend.create}.  Raises [Invalid_argument] on a non-positive
    shard or replica count, more shards than documents, a negative
    retry/backoff, or a [Best_effort] fraction outside [0, 1]. *)

val shard_count : t -> int
val doc_count : t -> int

val shard_names : t -> string list
(** In attach (doc-range) order. *)

val shard_range : t -> shard:string -> int * int
(** [(lo, hi)]: the shard's doc ids are [lo <= id < hi].  Raises
    [Not_found] on an unknown name. *)

val shard_frontend : t -> shard:string -> Frontend.t
(** The shard's replica-group frontend — aim fault plans through
    {!Frontend.replica_vfs}.  Raises [Not_found] on an unknown name. *)

val replica_names : t -> shard:string -> string list

type coverage = {
  shards_total : int;
  answered : int;  (** full answers, merged into the ranking *)
  degraded : int;
      (** deadline-cut partial answers — reported, {e excluded} from the
          merge so covered ranges stay exact *)
  shed : int;  (** no usable answer (failed terms / dead replicas) *)
  docs_covered : int;  (** documents of answered shards *)
  docs_total : int;
}

val coverage_fraction : coverage -> float
(** [docs_covered / docs_total]; 1.0 for an empty collection. *)

val full_coverage : coverage -> bool

type shard_status =
  | Answered
  | Degraded of string  (** produced a deadline-cut partial answer *)
  | Shed of string  (** produced no usable answer *)

type shard_report = {
  r_shard : string;
  r_range : int * int;
  r_attempts : int;
  r_status : shard_status;
  r_elapsed_ms : float;  (** across all attempts, backoff included *)
  r_postings_decoded : int;
  r_hedged_fetches : int;
  r_deadline_hit : bool;
}

type result = {
  ranked : Inquery.Ranking.ranked list;
      (** merged top-k of answered shards, score desc / doc asc *)
  coverage : coverage;
  complete : bool;  (** [full_coverage coverage] *)
  reports : shard_report list;  (** in shard order *)
  elapsed_ms : float;
      (** perceived scatter latency: the {e maximum} per-shard elapsed
          (shards fan out in parallel; merge cost is linear in [k] times
          the shard count and charged to no clock) *)
}

type error =
  | Shard_failed of { shard : string; attempts : int; reason : string }
      (** [Fail_fast]: the first shard that could not fully answer *)
  | Coverage_below_min of { coverage : coverage; fraction : float; min_coverage : float }
      (** [Best_effort]: the scatter survived but covers too little *)

val error_message : error -> string

val run_query :
  ?top_k:int -> ?deadline_ms:float -> t -> Inquery.Query.t -> (result, error) Stdlib.result
(** Scatter one parsed query to every shard, retry-with-backoff the
    failing ones, merge the answered shards' top-[top_k] (default 100)
    and apply the policy.  [deadline_ms] is a {e per-shard} budget (the
    scatter is parallel): each shard's attempts — backoff included —
    must fit inside it, and a stalled shard overshoots it by at most one
    in-flight fetch ({!Frontend.run_query}), so the merged response is
    bounded by [deadline + one fetch] too.  Raises [Invalid_argument]
    on a non-positive deadline. *)

val run_query_string :
  ?top_k:int -> ?deadline_ms:float -> t -> string -> (result, error) Stdlib.result
(** Parse and scatter.  Raises [Invalid_argument] on syntax errors. *)
