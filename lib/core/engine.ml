type repair_ticket = { term : string; reason : string; entry : Inquery.Dictionary.entry }

type t = {
  vfs : Vfs.t;
  store : Index_store.t;
  dict : Inquery.Dictionary.t;
  source : Inquery.Infnet.source;
  stopwords : Inquery.Stopwords.t option;
  stem : bool;
  reserve : bool;
  block_cache : Util.Block_cache.t option;
  quarantine : repair_ticket list ref; (* newest first *)
  quarantined_terms : (string, unit) Hashtbl.t; (* O(1) dedup of the list above *)
}

type result = {
  ranked : Inquery.Ranking.ranked list;
  postings_scored : int;
  nodes_visited : int;
  record_lookups : int;
}

let create ~vfs ~store ~dict ~n_docs ?max_doc_id ~avg_doc_len ~doc_len ?stopwords ?(stem = false)
    ?(reserve = true) ?(salvage = true) ?block_cache () =
  let quarantine = ref [] in
  let quarantined_terms = Hashtbl.create 8 in
  (* Salvage mode: a record whose segment fails its CRC32 is quarantined
     — treated as term-not-indexed so the rest of the query still runs —
     instead of aborting query processing with [Mneme.Store.Corrupt].
     A quarantined term short-circuits before the fetch: the query never
     re-pays the doomed read, it just waits for the repair queue. *)
  let fetch entry =
    if not salvage then store.Index_store.fetch entry
    else begin
      let term = entry.Inquery.Dictionary.term in
      if Hashtbl.mem quarantined_terms term then None
      else
        try store.Index_store.fetch entry
        with Mneme.Store.Corrupt msg ->
          Hashtbl.add quarantined_terms term ();
          quarantine := { term; reason = msg; entry } :: !quarantine;
          None
    end
  in
  let max_doc_id = match max_doc_id with Some m -> m | None -> n_docs - 1 in
  let source = { Inquery.Infnet.fetch; n_docs; max_doc_id; avg_doc_len; doc_len } in
  { vfs; store; dict; source; stopwords; stem; reserve; block_cache; quarantine;
    quarantined_terms }

let store t = t.store
let epoch t = t.store.Index_store.epoch ()
let quarantined t = List.rev_map (fun tk -> (tk.term, tk.reason)) !(t.quarantine)
let pending_repairs t = List.rev !(t.quarantine)

let mark_healed t ~term =
  if Hashtbl.mem t.quarantined_terms term then begin
    Hashtbl.remove t.quarantined_terms term;
    t.quarantine := List.filter (fun tk -> not (String.equal tk.term term)) !(t.quarantine);
    true
  end
  else false

let heal_pending t ~store ~sources =
  List.map
    (fun tk ->
      let outcome =
        let locator = tk.entry.Inquery.Dictionary.locator in
        if locator < 0 then Error "term has no stored record"
        else
          match Mneme.Store.pool_of_oid store locator with
          | None -> Error "record's logical segment has no owning pool"
          | Some pool -> (
            match Mneme.Store.locate_pseg store locator with
            | None -> Error "record is not placed in any physical segment"
            | Some pseg -> (
              let pname = Mneme.Store.pool_name pool in
              match Mneme.Scrub.damage_of_segment store ~pool:pname ~pseg with
              | None -> Error (Printf.sprintf "%s/pseg %d has no on-disk image" pname pseg)
              | Some damage -> Mneme.Scrub.heal store ~sources damage))
      in
      (match outcome with Ok _ -> ignore (mark_healed t ~term:tk.term) | Error _ -> ());
      (tk.term, outcome))
    (pending_repairs t)

(* Entries named by the query tree, normalised the same way evaluation
   will normalise them, for the reservation scan. *)
let query_entries t query =
  Inquery.Query.terms query
  |> List.filter_map (fun term ->
         let drop =
           match t.stopwords with
           | Some sw -> Inquery.Stopwords.is_stopword sw term
           | None -> false
         in
         if drop then None
         else begin
           let term = if t.stem then Inquery.Stemmer.stem term else term in
           Inquery.Dictionary.find t.dict term
         end)

let run_query ?(top_k = 100) t query =
  let release =
    if t.reserve then t.store.Index_store.reserve (query_entries t query)
    else Index_store.no_reserve []
  in
  (* The reservation must not leak when evaluation raises (a corrupt
     record with salvage off, say) — pins would accumulate across
     queries and starve the buffers. *)
  let beliefs, stats =
    Fun.protect ~finally:release (fun () ->
        Inquery.Infnet.eval t.source t.dict ?stopwords:t.stopwords ~stem:t.stem query)
  in
  let model = Vfs.cost_model t.vfs in
  let cpu_ms =
    (float_of_int stats.Inquery.Infnet.postings_scored
     *. model.Vfs.Cost_model.cpu_ns_per_posting /. 1.0e6)
    +. (float_of_int stats.Inquery.Infnet.nodes_visited
        *. model.Vfs.Cost_model.cpu_us_per_query_node /. 1.0e3)
  in
  Vfs.Clock.charge_engine_cpu (Vfs.clock t.vfs) cpu_ms;
  {
    ranked = Inquery.Ranking.top_k beliefs ~k:top_k;
    postings_scored = stats.Inquery.Infnet.postings_scored;
    nodes_visited = stats.Inquery.Infnet.nodes_visited;
    record_lookups = stats.Inquery.Infnet.record_lookups;
  }

let run_query_string ?top_k t text = run_query ?top_k t (Inquery.Query.parse_exn text)

let run_batch t queries = List.map (run_query_string t) queries

type topk_result = {
  topk_ranked : Inquery.Ranking.ranked list;
  topk_postings_scored : int;
  topk_record_lookups : int;
  topk_plan : Inquery.Planner.plan;
  topk_pruned : bool;
  topk_postings_total : int;
  topk_postings_decoded : int;
  topk_blocks_skipped : int;
  topk_seeks : int;
  topk_bytes_read : int;
  topk_blocks_read : int;
  topk_est_bytes : int;
  topk_est_blocks : int;
}

let run_topk ?(audit = false) ?(exhaustive = false) ?plan ?(k = 10) t query =
  let release =
    if t.reserve then t.store.Index_store.reserve (query_entries t query)
    else Index_store.no_reserve []
  in
  (* Decoded blocks are keyed by the session's current published epoch:
     a reopened session on a newer epoch stops hitting the old entries
     without any flush. *)
  let block_cache =
    Option.map (fun bc -> (bc, t.store.Index_store.epoch ())) t.block_cache
  in
  let scored, stats, tk =
    Fun.protect ~finally:release (fun () ->
        Inquery.Infnet.eval_topk t.source t.dict ?stopwords:t.stopwords ~stem:t.stem ~audit
          ~exhaustive ?plan ?block_cache ~k query)
  in
  let model = Vfs.cost_model t.vfs in
  let cpu_ms =
    (float_of_int stats.Inquery.Infnet.postings_scored
     *. model.Vfs.Cost_model.cpu_ns_per_posting /. 1.0e6)
    +. (float_of_int stats.Inquery.Infnet.nodes_visited
        *. model.Vfs.Cost_model.cpu_us_per_query_node /. 1.0e3)
  in
  Vfs.Clock.charge_engine_cpu (Vfs.clock t.vfs) cpu_ms;
  {
    topk_ranked =
      List.map
        (fun s -> { Inquery.Ranking.doc = s.Inquery.Infnet.doc; score = s.Inquery.Infnet.belief })
        scored;
    topk_postings_scored = stats.Inquery.Infnet.postings_scored;
    topk_record_lookups = stats.Inquery.Infnet.record_lookups;
    topk_plan = tk.Inquery.Infnet.tk_plan;
    topk_pruned = tk.Inquery.Infnet.tk_pruned;
    topk_postings_total = tk.Inquery.Infnet.tk_postings_total;
    topk_postings_decoded = tk.Inquery.Infnet.tk_postings_decoded;
    topk_blocks_skipped = tk.Inquery.Infnet.tk_blocks_skipped;
    topk_seeks = tk.Inquery.Infnet.tk_seeks;
    topk_bytes_read = tk.Inquery.Infnet.tk_bytes_read;
    topk_blocks_read = tk.Inquery.Infnet.tk_blocks_read;
    topk_est_bytes = tk.Inquery.Infnet.tk_est_bytes;
    topk_est_blocks = tk.Inquery.Infnet.tk_est_blocks;
  }

let run_topk_string ?audit ?exhaustive ?plan ?k t text =
  run_topk ?audit ?exhaustive ?plan ?k t (Inquery.Query.parse_exn text)
