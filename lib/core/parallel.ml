exception Audit_mismatch of string

type mode = Batch | Topk of int

type outcome = {
  q_index : int;
  q_domain : int;
  q_ranked : Inquery.Ranking.ranked list;
  q_sim_ms : float;
}

type report = {
  domains : int;
  version : Experiment.version;
  n_queries : int;
  outcomes : outcome array;
  sim_makespan_ms : float;
  sim_serial_ms : float;
  real_elapsed_ms : float;
  worker_sim_ms : float array;
  worker_queries : int array;
  steals : int;
  buffers : (string * Mneme.Buffer_pool.stats) list;
  audited : bool;
}

(* ------------------------------------------------------------------ *)
(* The domain pool: [n] tasks served by [domains] workers, distributed
   block-wise into per-worker deques, idle workers stealing.  [serve]
   runs on the worker's domain and must touch only that worker's
   session (plus disjoint slots of shared result arrays).  Returns
   (queries served, steals) per worker. *)

let run_pool ~domains ~n ~serve =
  let deques =
    Array.init domains (fun _ -> Util.Wsq.create ~capacity:(max 1 n) ~dummy:(-1))
  in
  let chunk = if domains = 0 then 1 else (n + domains - 1) / domains in
  for i = 0 to n - 1 do
    Util.Wsq.push deques.(min (domains - 1) (i / max 1 chunk)) i
  done;
  let remaining = Atomic.make n in
  let worker w =
    let served = ref 0 and steals = ref 0 in
    let my = deques.(w) in
    let rec try_steal k =
      if k >= domains then None
      else
        match Util.Wsq.steal deques.((w + k) mod domains) with
        | Some i ->
          incr steals;
          Some i
        | None -> try_steal (k + 1)
    in
    let continue_ = ref true in
    while !continue_ do
      match (match Util.Wsq.pop my with Some i -> Some i | None -> try_steal 1) with
      | Some i ->
        serve ~domain:w i;
        incr served;
        Atomic.decr remaining
      | None -> if Atomic.get remaining <= 0 then continue_ := false else Domain.cpu_relax ()
    done;
    (!served, !steals)
  in
  if domains = 1 then [| worker 0 |]
  else begin
    (* The calling domain is worker 0; the rest are spawned. *)
    let spawned = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    let first = worker 0 in
    Array.append [| first |] (Array.map Domain.join spawned)
  end

(* ------------------------------------------------------------------ *)
(* Per-domain sessions.  Each worker gets a fresh file system (its own
   simulated clock and cold OS cache) holding a private copy of the
   finalized index image plus the catalog, and opens its own store
   session — see the domain-safety contract in Mneme.Store. *)

type session = { s_vfs : Vfs.t; s_store : Index_store.t; s_engine : Engine.t }

let make_session ?policy ~buffers prepared version =
  let src = prepared.Experiment.vfs in
  let vfs = Vfs.create ~cost_model:(Vfs.cost_model src) () in
  let index_file =
    match version with
    | Experiment.Btree -> prepared.Experiment.btree_file
    | Experiment.Mneme_no_cache | Experiment.Mneme_cache -> prepared.Experiment.mneme_file
  in
  Vfs.copy_file src index_file ~into:vfs;
  Vfs.copy_file src prepared.Experiment.catalog_file ~into:vfs;
  Vfs.purge_os_cache vfs;
  let store =
    match version with
    | Experiment.Btree -> Btree_backend.open_session vfs ~file:prepared.Experiment.btree_file
    | Experiment.Mneme_no_cache ->
      Mneme_backend.open_session ?policy vfs ~file:prepared.Experiment.mneme_file
        ~buffers:Buffer_sizing.no_cache
    | Experiment.Mneme_cache ->
      Mneme_backend.open_session ?policy vfs ~file:prepared.Experiment.mneme_file ~buffers
  in
  let catalog = Catalog.load vfs ~file:prepared.Experiment.catalog_file in
  let doc_lens = catalog.Catalog.doc_lens in
  let engine =
    Engine.create ~vfs ~store ~dict:catalog.Catalog.dict ~n_docs:catalog.Catalog.n_docs
      ~avg_doc_len:(Catalog.avg_doc_length catalog)
      ~doc_len:(fun d -> if d < 0 || d >= Array.length doc_lens then 0 else doc_lens.(d))
      ()
  in
  { s_vfs = vfs; s_store = store; s_engine = engine }

let ranked_of_mode ~mode ~top_k engine text =
  match mode with
  | Batch -> (Engine.run_query_string ~top_k engine text).Engine.ranked
  | Topk k -> (Engine.run_topk_string ~k engine text).Engine.topk_ranked

(* Bit-identity: same documents in the same order with the exact same
   belief bits — the contract eval_topk's audit uses. *)
let check_identical ~what ~q_index ~parallel ~serial =
  let fail fmt =
    Printf.ksprintf (fun msg -> raise (Audit_mismatch msg)) ("query %d: " ^^ fmt) q_index
  in
  let np = List.length parallel and ns = List.length serial in
  if np <> ns then fail "%s returned %d documents in parallel, %d serially" what np ns;
  List.iteri
    (fun pos (p, s) ->
      if p.Inquery.Ranking.doc <> s.Inquery.Ranking.doc then
        fail "rank %d: doc %d in parallel, doc %d serially" pos p.Inquery.Ranking.doc
          s.Inquery.Ranking.doc;
      if not (Float.equal p.Inquery.Ranking.score s.Inquery.Ranking.score) then
        fail "rank %d (doc %d): belief %.17g in parallel, %.17g serially" pos
          p.Inquery.Ranking.doc p.Inquery.Ranking.score s.Inquery.Ranking.score)
    (List.combine parallel serial)

let run_query_set ?(domains = 1) ?(audit = false) ?(mode = Batch) ?(top_k = 100) ?buffers
    ?policy prepared version ~queries =
  if domains <= 0 then invalid_arg "Parallel.run_query_set: domains must be positive";
  (match mode with
  | Topk k when k <= 0 -> invalid_arg "Parallel.run_query_set: top-k depth must be positive"
  | Topk _ | Batch -> ());
  let budget =
    match buffers with Some b -> b | None -> Experiment.default_buffers prepared
  in
  let per_domain = Buffer_sizing.split budget ~ways:domains in
  let sessions =
    Array.init domains (fun _ -> make_session ?policy ~buffers:per_domain prepared version)
  in
  let queries_arr = Array.of_list queries in
  let n = Array.length queries_arr in
  let slots = Array.make (max 1 n) None in
  let baselines =
    Array.map (fun s -> Vfs.Clock.snapshot (Vfs.clock s.s_vfs)) sessions
  in
  let serve ~domain i =
    let s = sessions.(domain) in
    let clock = Vfs.clock s.s_vfs in
    let before = Vfs.Clock.snapshot clock in
    let ranked = ranked_of_mode ~mode ~top_k s.s_engine queries_arr.(i) in
    let after = Vfs.Clock.snapshot clock in
    slots.(i) <-
      Some
        {
          q_index = i;
          q_domain = domain;
          q_ranked = ranked;
          q_sim_ms = Vfs.Clock.wall_ms (Vfs.Clock.diff ~later:after ~earlier:before);
        }
  in
  let t0 = Vfs.Clock.Monotonic.now_ns () in
  let per_worker = run_pool ~domains ~n ~serve in
  let real_elapsed_ms = Vfs.Clock.Monotonic.elapsed_ms ~since:t0 in
  let worker_sim_ms =
    Array.mapi
      (fun w s ->
        let now = Vfs.Clock.snapshot (Vfs.clock s.s_vfs) in
        Vfs.Clock.wall_ms (Vfs.Clock.diff ~later:now ~earlier:baselines.(w)))
      sessions
  in
  let outcomes =
    Array.init n (fun i ->
        match slots.(i) with
        | Some o -> o
        | None -> raise (Audit_mismatch (Printf.sprintf "query %d was never served" i)))
  in
  let buffers_merged =
    match sessions.(0).s_store.Index_store.buffer_stats () with
    | [] -> []
    | first ->
      List.map
        (fun (pool, _) ->
          let per_session =
            Array.to_list sessions
            |> List.filter_map (fun s ->
                   List.assoc_opt pool (s.s_store.Index_store.buffer_stats ()))
          in
          (pool, Mneme.Buffer_pool.merge_stats per_session))
        first
  in
  if audit then begin
    (* Fresh single session with the whole budget — the exact serial
       configuration — replayed in submission order. *)
    let serial = make_session ?policy ~buffers:budget prepared version in
    Array.iteri
      (fun i o ->
        let ranked = ranked_of_mode ~mode ~top_k serial.s_engine queries_arr.(i) in
        check_identical ~what:"ranking" ~q_index:i ~parallel:o.q_ranked ~serial:ranked)
      outcomes
  end;
  {
    domains;
    version;
    n_queries = n;
    outcomes;
    sim_makespan_ms = Array.fold_left max 0.0 worker_sim_ms;
    sim_serial_ms = Array.fold_left ( +. ) 0.0 worker_sim_ms;
    real_elapsed_ms;
    worker_sim_ms;
    worker_queries = Array.map fst per_worker;
    steals = Array.fold_left (fun acc (_, s) -> acc + s) 0 per_worker;
    buffers = buffers_merged;
    audited = audit;
  }

(* ------------------------------------------------------------------ *)

type frontend_outcome = {
  f_index : int;
  f_domain : int;
  f_ranked : Inquery.Ranking.ranked list;
  f_degraded : bool;
  f_sim_ms : float;
}

type frontend_report = {
  f_domains : int;
  f_n_queries : int;
  f_outcomes : frontend_outcome array;
  f_sim_makespan_ms : float;
  f_sim_serial_ms : float;
  f_real_elapsed_ms : float;
  f_worker_queries : int array;
  f_steals : int;
  f_audited : bool;
}

let run_frontend_set ?(domains = 1) ?(audit = false) ?(top_k = 100) ?deadline_ms ?buffers
    ?(configure = fun ~domain:_ _ -> ()) prepared ~names ~queries =
  if domains <= 0 then invalid_arg "Parallel.run_frontend_set: domains must be positive";
  if audit && deadline_ms <> None then
    invalid_arg
      "Parallel.run_frontend_set: audit is incompatible with a deadline (deadline \
       degradation is breaker-state-dependent)";
  let frontends =
    Array.init domains (fun w ->
        let fe = Frontend.of_prepared ?buffers prepared ~names in
        configure ~domain:w fe;
        fe)
  in
  let queries_arr = Array.of_list queries in
  let n = Array.length queries_arr in
  let slots = Array.make (max 1 n) None in
  let serve ~domain i =
    let r = Frontend.run_query_string ~top_k ?deadline_ms frontends.(domain) queries_arr.(i) in
    slots.(i) <-
      Some
        {
          f_index = i;
          f_domain = domain;
          f_ranked = r.Frontend.ranked;
          f_degraded = r.Frontend.degraded;
          f_sim_ms = r.Frontend.elapsed_ms;
        }
  in
  let t0 = Vfs.Clock.Monotonic.now_ns () in
  let per_worker = run_pool ~domains ~n ~serve in
  let f_real_elapsed_ms = Vfs.Clock.Monotonic.elapsed_ms ~since:t0 in
  let outcomes =
    Array.init n (fun i ->
        match slots.(i) with
        | Some o -> o
        | None -> raise (Audit_mismatch (Printf.sprintf "query %d was never served" i)))
  in
  let worker_sim_ms = Array.make domains 0.0 in
  Array.iter
    (fun o -> worker_sim_ms.(o.f_domain) <- worker_sim_ms.(o.f_domain) +. o.f_sim_ms)
    outcomes;
  if audit then begin
    let serial = Frontend.of_prepared ?buffers prepared ~names in
    configure ~domain:(-1) serial;
    Array.iteri
      (fun i o ->
        let r = Frontend.run_query_string ~top_k serial queries_arr.(i) in
        check_identical ~what:"frontend ranking" ~q_index:i ~parallel:o.f_ranked
          ~serial:r.Frontend.ranked)
      outcomes
  end;
  {
    f_domains = domains;
    f_n_queries = n;
    f_outcomes = outcomes;
    f_sim_makespan_ms = Array.fold_left max 0.0 worker_sim_ms;
    f_sim_serial_ms = Array.fold_left ( +. ) 0.0 worker_sim_ms;
    f_real_elapsed_ms;
    f_worker_queries = Array.map fst per_worker;
    f_steals = Array.fold_left (fun acc (_, s) -> acc + s) 0 per_worker;
    f_audited = audit;
  }
