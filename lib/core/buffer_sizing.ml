type t = { small : int; medium : int; large : int }

let compute ?(small_pseg = 4096) ?(medium_pseg = 8192) ?(medium_ratio = 0.09) ~largest_record ()
    =
  if largest_record <= 0 then invalid_arg "Buffer_sizing.compute: largest_record must be positive";
  let large = 3 * largest_record in
  let medium = max (int_of_float (medium_ratio *. float_of_int large)) (3 * medium_pseg) in
  { small = 3 * small_pseg; medium; large }

let no_cache = { small = 0; medium = 0; large = 0 }

let with_large t large = { t with large }

let split t ~ways =
  if ways <= 0 then invalid_arg "Buffer_sizing.split: ways must be positive";
  { small = t.small / ways; medium = t.medium / ways; large = t.large / ways }
