type coverage = Full | Partial

type 'a node = {
  key : string;
  epoch : int;
  coverage : coverage;
  value : 'a;
  cost : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  rc_name : string;
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* eviction end *)
  mutable used : int;
  mutable n_refs : int;
  mutable n_hits : int;
  mutable n_evictions : int;
  mutable n_invalidations : int;
}

let create ?(capacity_bytes = 1 lsl 20) ~name () =
  if capacity_bytes < 0 then invalid_arg "Result_cache.create: negative capacity";
  {
    rc_name = name;
    capacity = capacity_bytes;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    used = 0;
    n_refs = 0;
    n_hits = 0;
    n_evictions = 0;
    n_invalidations = 0;
  }

let name t = t.rc_name
let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let remove_node t node =
  unlink t node;
  Hashtbl.remove t.table node.key;
  t.used <- t.used - node.cost

(* An entry tagged with any other epoch is stale the moment it is seen:
   purge it on the spot (counted as an invalidation, not an eviction)
   rather than letting dead epochs squat in the budget until LRU gets
   around to them. *)
let find_any t ~key ~epoch =
  t.n_refs <- t.n_refs + 1;
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node when node.epoch <> epoch ->
    remove_node t node;
    t.n_invalidations <- t.n_invalidations + 1;
    None
  | Some node ->
    t.n_hits <- t.n_hits + 1;
    unlink t node;
    push_front t node;
    Some (node.value, node.coverage)

let find t ~key ~epoch =
  match find_any t ~key ~epoch with
  | Some (v, Full) -> Some v
  | Some (_, Partial) | None -> None

let insert t ~key ~epoch ~coverage ~cost v =
  if cost < 0 then invalid_arg "Result_cache.insert: negative cost";
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table key with Some old -> remove_node t old | None -> ());
    let node = { key; epoch; coverage; value = v; cost; prev = None; next = None } in
    Hashtbl.add t.table key node;
    push_front t node;
    t.used <- t.used + cost;
    while t.used > t.capacity && t.tail <> None do
      match t.tail with
      | None -> ()
      | Some victim ->
        remove_node t victim;
        t.n_evictions <- t.n_evictions + 1
    done
  end

let retain t ~keep =
  let doomed =
    Hashtbl.fold (fun _ node acc -> if keep node.epoch then acc else node :: acc) t.table []
  in
  List.iter
    (fun node ->
      remove_node t node;
      t.n_invalidations <- t.n_invalidations + 1)
    doomed;
  List.length doomed

let clear t =
  t.n_invalidations <- t.n_invalidations + Hashtbl.length t.table;
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.used <- 0

let epochs t =
  let seen = Hashtbl.create 8 in
  Hashtbl.iter (fun _ node -> Hashtbl.replace seen node.epoch ()) t.table;
  Hashtbl.fold (fun e () acc -> e :: acc) seen [] |> List.sort compare

let stats t =
  {
    Util.Cache_stats.refs = t.n_refs;
    hits = t.n_hits;
    evictions = t.n_evictions;
    invalidations = t.n_invalidations;
    resident_bytes = t.used;
    resident_entries = Hashtbl.length t.table;
  }

let reset_stats t =
  t.n_refs <- 0;
  t.n_hits <- 0;
  t.n_evictions <- 0;
  t.n_invalidations <- 0
