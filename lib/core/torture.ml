let file = "torture.mneme"
let log_file = "torture.log"

(* ------------------------------------------------------------------ *)
(* The workload: a journaled build followed by update batches, every
   transaction ending with a finalize so the on-disk store is
   self-describing at each commit point.  Everything is driven by a
   seeded PRNG, so a replay performs the identical operation (and
   physical I/O) sequence until its crash point fires.  The [mirror]
   table tracks what a perfect store would hold; [committed] receives it
   after each commit so the caller can snapshot expected contents per
   generation. *)

let payload rng cls =
  let len =
    match cls with
    | 0 -> 1 + Random.State.int rng 12 (* fits the small pool's 12-byte slots *)
    | 1 -> 64 + Random.State.int rng 1985
    | _ -> 5000 + Random.State.int rng 4001
  in
  Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))

let class_of_size n = if n <= 12 then 0 else if n <= 4096 then 1 else 2

let workload vfs ~seed ~docs ~update_batches ~txn_begin ~committed ~got_gen =
  let rng = Random.State.make [| seed |] in
  let store = Mneme.Store.create vfs file in
  let small = Mneme.Store.add_pool store Mneme.Policy.small in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  List.iter
    (fun (pool, name) ->
      Mneme.Store.attach_buffer pool
        (Mneme.Buffer_pool.create ~name ~capacity:(256 * 1024) ()))
    [ (small, "small"); (medium, "medium"); (large, "large") ];
  Mneme.Store.enable_journal store ~log_file;
  let pool_for cls = match cls with 0 -> small | 1 -> medium | _ -> large in
  let mirror = Hashtbl.create 64 in
  let live = ref [] in
  let gen = ref (-1) in
  let fresh_object () =
    let cls = Random.State.int rng 3 in
    let b = payload rng cls in
    let oid = Mneme.Store.allocate (pool_for cls) b in
    Hashtbl.replace mirror oid (Bytes.copy b);
    live := oid :: !live
  in
  (* Transaction 0: the index build. *)
  txn_begin 0;
  Mneme.Store.transact store (fun () ->
      let gb = Bytes.of_string "gen 0" in
      let g = Mneme.Store.allocate small gb in
      gen := g;
      got_gen g;
      Hashtbl.replace mirror g gb;
      for _ = 1 to docs do
        fresh_object ()
      done;
      Mneme.Store.finalize store);
  committed 0 mirror;
  (* Update batches: modify, delete, allocate, bump the generation. *)
  for i = 1 to update_batches do
    txn_begin i;
    Mneme.Store.transact store (fun () ->
        let arr = Array.of_list !live in
        let n_mod = max 1 (Array.length arr / 4) in
        for _ = 1 to n_mod do
          let oid = arr.(Random.State.int rng (Array.length arr)) in
          match Hashtbl.find_opt mirror oid with
          | None -> () (* deleted earlier in this batch *)
          | Some old ->
            let b = payload rng (class_of_size (Bytes.length old)) in
            Mneme.Store.modify store oid b;
            Hashtbl.replace mirror oid (Bytes.copy b)
        done;
        (match !live with
        | victim :: rest when List.length rest > 2 ->
          Mneme.Store.delete store victim;
          Hashtbl.remove mirror victim;
          live := rest
        | _ -> ());
        fresh_object ();
        fresh_object ();
        let gb = Bytes.of_string (Printf.sprintf "gen %d" i) in
        Mneme.Store.modify store !gen gb;
        Hashtbl.replace mirror !gen gb;
        Mneme.Store.finalize store);
    committed i mirror
  done

(* ------------------------------------------------------------------ *)
(* Crash-point enumeration. *)

type plan = {
  seed : int;
  docs : int;
  update_batches : int;
  crash_points : int;
  snapshots : (Mneme.Oid.t, bytes) Hashtbl.t array; (* index = generation *)
  gen_oid : Mneme.Oid.t;
}

let prepare ?(seed = 42) ?(docs = 12) ?(update_batches = 3) () =
  if docs < 0 || update_batches < 0 then
    invalid_arg "Torture.prepare: docs and update_batches must be non-negative";
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.none ());
  let snapshots = Array.init (update_batches + 1) (fun _ -> Hashtbl.create 0) in
  let gen_oid = ref (-1) in
  workload vfs ~seed ~docs ~update_batches
    ~txn_begin:(fun _ -> ())
    ~committed:(fun i mirror -> snapshots.(i) <- Hashtbl.copy mirror)
    ~got_gen:(fun g -> gen_oid := g);
  {
    seed;
    docs;
    update_batches;
    crash_points = Vfs.fault_io_count vfs;
    snapshots;
    gen_oid = !gen_oid;
  }

let crash_points plan = plan.crash_points

type point_report = {
  crash_at : int;
  recovery : Mneme.Journal.recovery;
  opened : bool;
  problems : string list;
}

let run_point plan k =
  if k < 1 || k > plan.crash_points then
    invalid_arg
      (Printf.sprintf "Torture.run_point: crash point %d outside 1..%d" k plan.crash_points);
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io k);
  let started = ref 0 and completed = ref 0 in
  (try
     workload vfs ~seed:plan.seed ~docs:plan.docs ~update_batches:plan.update_batches
       ~txn_begin:(fun _ -> incr started)
       ~committed:(fun _ _ -> incr completed)
       ~got_gen:(fun _ -> ());
     note "workload ran to completion without crashing at io %d" k
   with Vfs.Crash -> ());
  (* Reboot: only durable blocks survive; recover, then audit. *)
  let img = Vfs.crash_image vfs in
  let recovery = Mneme.Store.recover_journal img ~file ~log_file in
  let opened =
    match Mneme.Store.open_existing img file with
    | exception Mneme.Store.Corrupt msg ->
      if !completed > 0 then
        note "store unopenable after %d completed commits: %s" !completed msg;
      false
    | store ->
      List.iter
        (fun (policy, name) ->
          let pool = Mneme.Store.add_pool store policy in
          Mneme.Store.attach_buffer pool
            (Mneme.Buffer_pool.create ~name ~capacity:(256 * 1024) ()))
        [
          (Mneme.Policy.small, "small");
          (Mneme.Policy.medium, "medium");
          (Mneme.Policy.large, "large");
        ];
      (match Mneme.Store.get store plan.gen_oid with
      | exception e -> note "generation object unreadable: %s" (Printexc.to_string e)
      | gb -> (
        match Scanf.sscanf_opt (Bytes.to_string gb) "gen %d" (fun g -> g) with
        | None -> note "generation object holds %S" (Bytes.to_string gb)
        | Some g ->
          (* The recovered generation must be a transaction the workload
             committed (>= completed - 1: a commit the replay saw finish
             cannot be rolled back) or at most one it had started
             (<= started - 1: the log fsync may have sealed a commit the
             crash then interrupted). *)
          if g < !completed - 1 || g > !started - 1 then
            note "recovered generation %d outside [%d, %d]" g (!completed - 1) (!started - 1)
          else begin
            let report = Mneme.Check.run store in
            if not (Mneme.Check.ok report) then
              note "fsck: %s" (Format.asprintf "%a" Mneme.Check.pp_report report);
            let snap = plan.snapshots.(g) in
            let expect = Hashtbl.length snap in
            if Mneme.Store.object_count store <> expect then
              note "store holds %d objects, generation %d committed %d"
                (Mneme.Store.object_count store)
                g expect;
            Hashtbl.iter
              (fun oid b ->
                match Mneme.Store.get store oid with
                | exception e ->
                  note "object %d lost after recovery: %s" oid (Printexc.to_string e)
                | b' ->
                  if not (Bytes.equal b b') then
                    note "object %d contents differ after recovery" oid)
              snap
          end));
      true
  in
  { crash_at = k; recovery; opened; problems = List.rev !problems }

type outcome = {
  crash_points : int;
  opened : int;
  unopenable : int;
  replayed : int;
  discarded : int;
  clean : int;
  problems : (int * string) list;
}

(* ------------------------------------------------------------------ *)
(* The shared fault-at-every-I/O sweep.  Every torture family follows
   the same discipline: enumerate the golden run's physical I/Os, replay
   the scenario once per point with a fault armed at that I/O, tally the
   replay, and collect its problems tagged with the point.  [replay]
   returns the point's problem list after updating whatever counters the
   family keeps; [seed_problems] (golden-run audit violations) come back
   tagged with point 0. *)

let sweep_points ?(seed_problems = []) ~points replay =
  let problems = ref (List.rev_map (fun p -> (0, p)) seed_problems) in
  for k = 1 to points do
    List.iter (fun p -> problems := (k, p) :: !problems) (replay k)
  done;
  List.rev !problems

(* The journal-recovery census the store-level sweeps report. *)
let tally_recovery ~replayed ~discarded ~clean = function
  | Mneme.Journal.Replayed _ -> incr replayed
  | Mneme.Journal.Discarded _ -> incr discarded
  | Mneme.Journal.Clean -> incr clean

let run ?seed ?docs ?update_batches () =
  let plan = prepare ?seed ?docs ?update_batches () in
  let opened = ref 0
  and unopenable = ref 0
  and replayed = ref 0
  and discarded = ref 0
  and clean = ref 0 in
  let problems =
    sweep_points ~points:plan.crash_points (fun k ->
        let r = run_point plan k in
        if r.opened then incr opened else incr unopenable;
        tally_recovery ~replayed ~discarded ~clean r.recovery;
        r.problems)
  in
  {
    crash_points = plan.crash_points;
    opened = !opened;
    unopenable = !unopenable;
    replayed = !replayed;
    discarded = !discarded;
    clean = !clean;
    problems;
  }

(* ------------------------------------------------------------------ *)
(* Failover torture: the same discipline pointed at replication.  The
   workload is an incremental index build shipped through a replica
   group; the audit promotes a standby and demands the committed prefix
   back, down to byte-identical ranked query results. *)

let failover_file = "failover.mneme"
let failover_log = "failover.log"

let failover_queries =
  let t r = Collections.Synth.core_term ~rank:r in
  [
    t 1;
    Printf.sprintf "#sum( %s %s %s )" (t 1) (t 2) (t 3);
    Printf.sprintf "#and( %s %s )" (t 2) (t 3);
  ]

(* A bare index session over an already-open store (no separate buffer
   bookkeeping — the pools' own buffers serve the faults). *)
let session_over store =
  {
    Index_store.name = "failover";
    fetch =
      (fun entry ->
        let locator = entry.Inquery.Dictionary.locator in
        if locator < 0 then None else Mneme.Store.get_opt store locator);
    reserve = Index_store.no_reserve;
    buffer_stats = (fun () -> []);
    reset_buffer_stats = (fun () -> ());
    file_size = (fun () -> Mneme.Store.file_size store);
    epoch = (fun () -> Mneme.Store.epoch store);
  }

let score_fingerprint ranked =
  List.map
    (fun r -> (r.Inquery.Ranking.doc, Printf.sprintf "%.9f" r.Inquery.Ranking.score))
    ranked

let run_failover_queries vfs store dict ~n_docs ~avg_doc_len ~doc_len =
  let engine =
    Engine.create ~vfs ~store:(session_over store) ~dict ~n_docs ~avg_doc_len ~doc_len ()
  in
  List.map
    (fun q -> score_fingerprint (Engine.run_query_string ~top_k:10 engine q).Engine.ranked)
    failover_queries

let attach_pools store =
  List.iter
    (fun (policy, name) ->
      let pool = Mneme.Store.add_pool store policy in
      Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name ~capacity:(256 * 1024) ()))
    [
      (Mneme.Policy.small, "small"); (Mneme.Policy.medium, "medium"); (Mneme.Policy.large, "large");
    ]

(* The journal-shipping workload.  Batch [i] (1-based) indexes its slice
   of the documents, then — inside one journal transaction — lands every
   new term record, grows changed ones in place (or migrates them across
   pools when they change size class), updates the generation object,
   and finalizes.  After each commit the fixed query set runs against
   the primary; the queries are part of the deterministic I/O sequence,
   so replays stay aligned with the golden run. *)
let failover_workload vfs ~standbys ~seed ~docs ~batches ~txn_begin ~ready ~committed =
  let model =
    Collections.Docmodel.make ~name:"failover" ~n_docs:docs ~core_vocab:120
      ~mean_doc_len:30.0 ~hapax_prob:0.05 ~seed ()
  in
  let doc_arr = Array.of_seq (Collections.Synth.documents model) in
  let store = Mneme.Store.create vfs failover_file in
  let small = Mneme.Store.add_pool store Mneme.Policy.small in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  List.iter
    (fun (pool, name) ->
      Mneme.Store.attach_buffer pool (Mneme.Buffer_pool.create ~name ~capacity:(256 * 1024) ()))
    [ (small, "small"); (medium, "medium"); (large, "large") ];
  Mneme.Store.enable_journal store ~log_file:failover_log;
  let rep =
    Mneme.Replica.attach store
      ~standbys:(List.init standbys (fun i -> (Printf.sprintf "standby-%d" (i + 1), Vfs.create ())))
  in
  ready rep;
  let pool_of cls =
    match Partition.class_name cls with
    | "small" -> small
    | "medium" -> medium
    | _ -> large
  in
  let indexer = Inquery.Indexer.create () in
  let dict = Inquery.Indexer.dictionary indexer in
  let prev = Hashtbl.create 64 in (* term id -> last stored record *)
  let mirror = Hashtbl.create 64 in (* oid -> expected bytes *)
  let gen_oid = ref (-1) in
  for i = 1 to batches do
    let lo = (i - 1) * docs / batches and hi = i * docs / batches in
    txn_begin i;
    Mneme.Store.transact store (fun () ->
        for d = lo to hi - 1 do
          let doc = doc_arr.(d) in
          Inquery.Indexer.add_document_terms indexer ~doc_id:doc.Collections.Synth.id
            doc.Collections.Synth.terms
        done;
        Inquery.Indexer.to_records indexer
        |> Seq.iter (fun (tid, record) ->
               let entry =
                 match Inquery.Dictionary.find_by_id dict tid with
                 | Some e -> e
                 | None -> assert false
               in
               match Hashtbl.find_opt prev tid with
               | Some old when Bytes.equal old record -> ()
               | Some old ->
                 let oid = entry.Inquery.Dictionary.locator in
                 let old_cls = Partition.classify (Bytes.length old)
                 and new_cls = Partition.classify (Bytes.length record) in
                 if old_cls = new_cls then begin
                   Mneme.Store.modify store oid record;
                   Hashtbl.replace mirror oid (Bytes.copy record)
                 end
                 else begin
                   (* Size-class migration: the record moves pools and
                      gets a fresh oid; the dictionary locator follows. *)
                   Mneme.Store.delete store oid;
                   Hashtbl.remove mirror oid;
                   let oid' = Mneme.Store.allocate (pool_of new_cls) record in
                   entry.Inquery.Dictionary.locator <- oid';
                   Hashtbl.replace mirror oid' (Bytes.copy record)
                 end;
                 Hashtbl.replace prev tid (Bytes.copy record)
               | None ->
                 let cls = Partition.classify (Bytes.length record) in
                 let oid = Mneme.Store.allocate (pool_of cls) record in
                 entry.Inquery.Dictionary.locator <- oid;
                 Hashtbl.replace mirror oid (Bytes.copy record);
                 Hashtbl.replace prev tid (Bytes.copy record));
        let gb = Bytes.of_string (Printf.sprintf "gen %d" i) in
        if i = 1 then gen_oid := Mneme.Store.allocate small gb
        else Mneme.Store.modify store !gen_oid gb;
        Hashtbl.replace mirror !gen_oid gb;
        Mneme.Store.finalize store);
    let ranked =
      run_failover_queries vfs store dict ~n_docs:(Inquery.Indexer.document_count indexer)
        ~avg_doc_len:(Inquery.Indexer.avg_doc_length indexer)
        ~doc_len:(Inquery.Indexer.doc_length indexer)
    in
    committed i ~mirror ~indexer ~ranked ~gen_oid:!gen_oid
  done;
  store

type failover_plan = {
  fo_seed : int;
  fo_docs : int;
  fo_batches : int;
  fo_standbys : int;
  fo_points : int;
  fo_snapshots : (Mneme.Oid.t, bytes) Hashtbl.t array; (* index = generation, 0 unused *)
  fo_ranked : (int * string) list list array;
  fo_scratch : Vfs.t; (* holds one catalog file per generation *)
  fo_gen_oid : Mneme.Oid.t;
}

let catalog_file_for gen = Printf.sprintf "failover-cat.%d" gen

let prepare_failover ?(seed = 42) ?(docs = 12) ?(batches = 3) ?(standbys = 2) () =
  if docs < 1 || batches < 1 || standbys < 1 then
    invalid_arg "Torture.prepare_failover: docs, batches and standbys must be positive";
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.none ());
  let scratch = Vfs.create () in
  let snapshots = Array.init (batches + 1) (fun _ -> Hashtbl.create 0) in
  let ranked = Array.make (batches + 1) [] in
  let gen_oid = ref (-1) in
  ignore
    (failover_workload vfs ~standbys ~seed ~docs ~batches
       ~txn_begin:(fun _ -> ())
       ~ready:(fun _ -> ())
       ~committed:(fun i ~mirror ~indexer ~ranked:r ~gen_oid:g ->
         snapshots.(i) <- Hashtbl.copy mirror;
         ranked.(i) <- r;
         gen_oid := g;
         Catalog.save scratch ~file:(catalog_file_for i) (Catalog.of_indexer indexer)));
  {
    fo_seed = seed;
    fo_docs = docs;
    fo_batches = batches;
    fo_standbys = standbys;
    fo_points = Vfs.fault_io_count vfs;
    fo_snapshots = snapshots;
    fo_ranked = ranked;
    fo_scratch = scratch;
    fo_gen_oid = !gen_oid;
  }

let failover_points plan = plan.fo_points

type failover_report = {
  crash_at : int;
  survivor : string;
  applied_lsn : int;
  problems : string list;
}

let run_failover_point plan k =
  if k < 1 || k > plan.fo_points then
    invalid_arg
      (Printf.sprintf "Torture.run_failover_point: crash point %d outside 1..%d" k
         plan.fo_points);
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io k);
  let rep = ref None in
  let started = ref 0 and completed = ref 0 in
  (try
     ignore
       (failover_workload vfs ~standbys:plan.fo_standbys ~seed:plan.fo_seed
          ~docs:plan.fo_docs ~batches:plan.fo_batches
          ~txn_begin:(fun _ -> incr started)
          ~ready:(fun r -> rep := Some r)
          ~committed:(fun _ ~mirror:_ ~indexer:_ ~ranked:_ ~gen_oid:_ -> incr completed));
     note "workload ran to completion without crashing at io %d" k
   with Vfs.Crash -> ());
  match !rep with
  | None ->
    (* Died while the group was being attached — nothing was ever
       committed, so there is legitimately nothing to promote. *)
    if !completed > 0 then note "replica group lost %d commits" !completed;
    { crash_at = k; survivor = "none"; applied_lsn = -1; problems = List.rev !problems }
  | Some rep -> (
    match Mneme.Replica.promote rep with
    | exception Failure _ ->
      if !completed > 0 then
        note "no healthy standby to promote after %d commits" !completed;
      { crash_at = k; survivor = "none"; applied_lsn = -1; problems = List.rev !problems }
    | info, svfs ->
      let g = info.Mneme.Replica.applied_lsn in
      (* A commit the workload saw finish must have shipped; nothing
         past the last started batch can have. *)
      if g < !completed || g > !started then
        note "survivor applied lsn %d outside [%d, %d]" g !completed !started;
      if g >= 1 then begin
        match Mneme.Store.open_existing svfs failover_file with
        | exception Mneme.Store.Corrupt msg -> note "promoted store unopenable: %s" msg
        | store ->
          attach_pools store;
          (match Mneme.Store.get store plan.fo_gen_oid with
          | exception e -> note "generation object unreadable: %s" (Printexc.to_string e)
          | gb ->
            let expect = Printf.sprintf "gen %d" g in
            if Bytes.to_string gb <> expect then
              note "generation object holds %S, expected %S" (Bytes.to_string gb) expect);
          let report = Mneme.Check.run store in
          if not (Mneme.Check.ok report) then
            note "fsck: %s" (Format.asprintf "%a" Mneme.Check.pp_report report);
          let snap = plan.fo_snapshots.(g) in
          if Mneme.Store.object_count store <> Hashtbl.length snap then
            note "promoted store holds %d objects, generation %d committed %d"
              (Mneme.Store.object_count store) g (Hashtbl.length snap);
          Hashtbl.iter
            (fun oid b ->
              match Mneme.Store.get store oid with
              | exception e ->
                note "object %d lost after failover: %s" oid (Printexc.to_string e)
              | b' -> if not (Bytes.equal b b') then note "object %d differs after failover" oid)
            snap;
          (* The paying customer's view: identical ranked results for
             the committed prefix. *)
          let catalog = Catalog.load plan.fo_scratch ~file:(catalog_file_for g) in
          let ranked =
            run_failover_queries svfs store catalog.Catalog.dict
              ~n_docs:catalog.Catalog.n_docs
              ~avg_doc_len:(Catalog.avg_doc_length catalog)
              ~doc_len:(fun d ->
                if d < 0 || d >= Array.length catalog.Catalog.doc_lens then 0
                else catalog.Catalog.doc_lens.(d))
          in
          if ranked <> plan.fo_ranked.(g) then
            note "ranked results differ from the committed generation %d" g
      end;
      { crash_at = k; survivor = info.Mneme.Replica.name; applied_lsn = g;
        problems = List.rev !problems })

type failover_outcome = {
  points : int;
  promoted : int;
  empty : int;
  problems : (int * string) list;
}

let run_failover ?seed ?docs ?batches ?standbys () =
  let plan = prepare_failover ?seed ?docs ?batches ?standbys () in
  let promoted = ref 0 and empty = ref 0 in
  let problems =
    sweep_points ~points:plan.fo_points (fun k ->
        let r = run_failover_point plan k in
        if r.applied_lsn >= 1 then incr promoted else incr empty;
        r.problems)
  in
  { points = plan.fo_points; promoted = !promoted; empty = !empty; problems }

let pp_failover_outcome fmt o =
  Format.fprintf fmt
    "%d crash points: %d promoted a caught-up standby, %d died before anything committed"
    o.points o.promoted o.empty;
  if o.problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.problems);
    List.iter (fun (k, p) -> Format.fprintf fmt "@.  crash at io %d: %s" k p) o.problems
  end

(* ------------------------------------------------------------------ *)
(* Scrub torture: the bit-rot sweep.  Build the replicated workload once,
   then for every physical segment flip bits on one member's copy
   (round-robin across primary and standbys), demand that a scrub of the
   whole group finds exactly that damage, that one group heal converges
   every member back to fsck-clean byte-identical files with the golden
   ranked results and zero quarantines — and that a crash at any I/O of
   the repair itself leaves the group convergeable. *)

type scrub_scenario = {
  ss_vfs : Vfs.t; (* primary device *)
  ss_store : Mneme.Store.t;
  ss_rep : Mneme.Replica.t;
  ss_dict : Inquery.Dictionary.t;
  ss_n_docs : int;
  ss_avg : float;
  ss_doc_len : int -> int;
  ss_segments : Mneme.Scrub.damage array; (* full census, scrub walk order *)
  ss_members : string array; (* "primary" first, then standbys in attach order *)
  ss_ranked : (int * string) list list; (* golden results of [failover_queries] *)
}

let build_scrub_scenario ?(seed = 42) ?(docs = 12) ?(batches = 3) ?(standbys = 2) () =
  if docs < 1 || batches < 1 || standbys < 1 then
    invalid_arg "Torture.build_scrub_scenario: docs, batches and standbys must be positive";
  let vfs = Vfs.create () in
  let rep = ref None in
  let last = ref None in
  let store =
    failover_workload vfs ~standbys ~seed ~docs ~batches
      ~txn_begin:(fun _ -> ())
      ~ready:(fun r -> rep := Some r)
      ~committed:(fun _ ~mirror:_ ~indexer ~ranked ~gen_oid:_ -> last := Some (indexer, ranked))
  in
  let rep = Option.get !rep in
  let indexer, ranked = Option.get !last in
  let segments =
    Mneme.Store.pools store
    |> List.concat_map (fun pool ->
           let pname = Mneme.Store.pool_name pool in
           Mneme.Store.pool_segments pool
           |> List.filter_map (fun (id, _) ->
                  Mneme.Scrub.damage_of_segment store ~pool:pname ~pseg:id))
    |> Array.of_list
  in
  let members =
    Array.of_list
      ("primary" :: List.map (fun i -> i.Mneme.Replica.name) (Mneme.Replica.info rep))
  in
  {
    ss_vfs = vfs;
    ss_store = store;
    ss_rep = rep;
    ss_dict = Inquery.Indexer.dictionary indexer;
    ss_n_docs = Inquery.Indexer.document_count indexer;
    ss_avg = Inquery.Indexer.avg_doc_length indexer;
    ss_doc_len = Inquery.Indexer.doc_length indexer;
    ss_segments = segments;
    ss_members = members;
    ss_ranked = ranked;
  }

let scenario_segments scn = Array.length scn.ss_segments
let scenario_member_names scn = Array.to_list scn.ss_members

let member_vfs scn name =
  if String.equal name "primary" then scn.ss_vfs
  else Mneme.Replica.standby_vfs scn.ss_rep ~name

(* Flip [bits] distinct bits inside one member's on-disk copy of the
   given segment's extent: purge its OS cache so the next read is a
   physical I/O, arm a ranged flip plan on that I/O, and take the fault
   with a one-byte read.  Damages both the OS view and the durable
   image, exactly like real bit rot. *)
let scenario_rot scn ~member ~segment ?(bits = 1) ~seed () =
  if segment < 0 || segment >= Array.length scn.ss_segments then
    invalid_arg
      (Printf.sprintf "Torture.scenario_rot: segment %d outside 0..%d" segment
         (Array.length scn.ss_segments - 1));
  if not (Array.exists (String.equal member) scn.ss_members) then
    invalid_arg (Printf.sprintf "Torture.scenario_rot: unknown member %s" member);
  let d = scn.ss_segments.(segment) in
  let off = d.Mneme.Scrub.off and len = d.Mneme.Scrub.len in
  let mvfs = member_vfs scn member in
  Vfs.purge_os_cache mvfs;
  Vfs.set_fault mvfs
    (Vfs.Fault.flip_bits_on_read ~io:1 ~seed ~first:off ~last:(off + len - 1) ~bits ());
  let f = Vfs.open_file mvfs failover_file in
  ignore (Vfs.read f ~off ~len:1);
  Vfs.clear_fault mvfs

(* Scrub one member's copy fresh from its disk.  Standby copies are
   opened as read-only stores of their own. *)
let scrub_member scn name =
  if String.equal name "primary" then Mneme.Scrub.run scn.ss_store
  else begin
    let svfs = Mneme.Replica.standby_vfs scn.ss_rep ~name in
    match Mneme.Store.open_existing svfs failover_file with
    | exception Mneme.Store.Corrupt _ ->
      (* The directory itself is unreadable: every segment is suspect. *)
      Array.to_list scn.ss_segments
    | store ->
      attach_pools store;
      Mneme.Scrub.run store
  end

let scrub_group scn =
  Array.to_list scn.ss_members
  |> List.concat_map (fun m -> List.map (fun d -> (m, d)) (scrub_member scn m))

(* One group heal to fixpoint: scrub every member, push each damaged
   segment through {!Mneme.Replica.heal_segment} (a journaled rewrite on
   the primary whose commit ships to every standby, so one heal converges
   the whole group), and rescrub until a pass finds nothing. *)
let heal_group scn =
  let healed = ref 0 and failures = ref [] in
  let rec go budget =
    let worklist = scrub_group scn |> List.map snd |> List.sort_uniq compare in
    if worklist <> [] then begin
      if budget = 0 then failures := "scrub did not reach a clean fixpoint" :: !failures
      else begin
        let ok = ref true in
        List.iter
          (fun d ->
            match
              Mneme.Replica.heal_segment scn.ss_rep ~store:scn.ss_store
                ~pool:d.Mneme.Scrub.pool ~pseg:d.Mneme.Scrub.pseg
            with
            | Ok _ -> incr healed
            | Error e ->
              ok := false;
              failures :=
                Printf.sprintf "heal of %s/pseg %d failed: %s" d.Mneme.Scrub.pool
                  d.Mneme.Scrub.pseg e
                :: !failures)
          worklist;
        if !ok then go (budget - 1)
      end
    end
  in
  go 3;
  (!healed, List.rev !failures)

(* The member set as (name, device, open store) triples, primary's own
   handle first. *)
let member_stores scn =
  Array.to_list scn.ss_members
  |> List.map (fun name ->
         if String.equal name "primary" then (name, scn.ss_vfs, scn.ss_store)
         else begin
           let svfs = Mneme.Replica.standby_vfs scn.ss_rep ~name in
           let st = Mneme.Store.open_existing svfs failover_file in
           attach_pools st;
           (name, svfs, st)
         end)

(* Converge a set of peer copies with no replica group left (the primary
   crashed mid-heal): scrub every copy, heal each damaged segment from
   the first other member holding a verified copy, repeat to fixpoint. *)
let converge_members ~note members =
  let rec go budget =
    let worklist =
      List.concat_map
        (fun (name, _, store) -> List.map (fun d -> (name, d)) (Mneme.Scrub.run store))
        members
    in
    if worklist <> [] then begin
      if budget = 0 then note "scrub did not converge to a clean group within 3 rounds"
      else begin
        let ok = ref true in
        List.iter
          (fun (name, d) ->
            let _, _, store = List.find (fun (n, _, _) -> String.equal n name) members in
            let sources =
              List.filter_map
                (fun (n, v, _) -> if String.equal n name then None else Some (n, v))
                members
            in
            match Mneme.Scrub.heal store ~sources d with
            | Ok _ -> ()
            | Error e ->
              ok := false;
              note
                (Printf.sprintf "heal of %s %s/pseg %d failed: %s" name d.Mneme.Scrub.pool
                   d.Mneme.Scrub.pseg e))
          worklist;
        if !ok then go (budget - 1)
      end
    end
  in
  go 3

(* The full convergence audit: every member's store passes fsck, every
   data file is byte-identical to the first member's, and a fresh engine
   over the first member returns the golden ranked results with an empty
   quarantine. *)
let audit_members ~note ~golden members =
  List.iter
    (fun (name, _, store) ->
      let report = Mneme.Check.run store in
      if not (Mneme.Check.ok report) then
        note
          (Printf.sprintf "%s fsck: %s" name
             (Format.asprintf "%a" Mneme.Check.pp_report report)))
    members;
  match members with
  | [] -> ()
  | (pname, pvfs, pstore) :: rest ->
    let bytes_of vfs =
      let f = Vfs.open_file vfs failover_file in
      let n = Vfs.size f in
      if n = 0 then Bytes.empty else Vfs.read f ~off:0 ~len:n
    in
    let gold = bytes_of pvfs in
    List.iter
      (fun (name, vfs, _) ->
        if not (Bytes.equal gold (bytes_of vfs)) then
          note (Printf.sprintf "%s's data file differs byte-for-byte from %s's" name pname))
      rest;
    let engine =
      Engine.create ~vfs:pvfs ~store:(session_over pstore) ~dict:golden.ss_dict
        ~n_docs:golden.ss_n_docs ~avg_doc_len:golden.ss_avg ~doc_len:golden.ss_doc_len ()
    in
    let ranked =
      List.map
        (fun q -> score_fingerprint (Engine.run_query_string ~top_k:10 engine q).Engine.ranked)
        failover_queries
    in
    if ranked <> golden.ss_ranked then note "ranked results differ from the golden run";
    (match Engine.quarantined engine with
    | [] -> ()
    | qs -> note (Printf.sprintf "%d term(s) quarantined after heal" (List.length qs)))

let audit_scenario scn =
  let problems = ref [] in
  audit_members ~note:(fun s -> problems := s :: !problems) ~golden:scn (member_stores scn);
  List.rev !problems

(* One crash-during-repair replay.  [k = 0] runs the heal under a
   counting plan and returns its primary I/O count; [k >= 1] crashes the
   primary device at heal I/O [k], reboots from the crash image through
   journal recovery, converges the survivors as plain peers, audits. *)
let scrub_crash_run ~seed ~docs ~batches ~standbys ~bits ~segment ~note k =
  let scn = build_scrub_scenario ~seed ~docs ~batches ~standbys () in
  let member = scn.ss_members.(segment mod Array.length scn.ss_members) in
  let d = scn.ss_segments.(segment) in
  scenario_rot scn ~member ~segment ~bits ~seed:(seed + (101 * segment)) ();
  Vfs.purge_os_cache scn.ss_vfs;
  if k = 0 then begin
    Vfs.set_fault scn.ss_vfs (Vfs.Fault.none ());
    (match
       Mneme.Replica.heal_segment scn.ss_rep ~store:scn.ss_store ~pool:d.Mneme.Scrub.pool
         ~pseg:d.Mneme.Scrub.pseg
     with
    | Ok _ -> ()
    | Error e -> note (Printf.sprintf "measuring heal failed: %s" e));
    Vfs.fault_io_count scn.ss_vfs
  end
  else begin
    Vfs.set_fault scn.ss_vfs (Vfs.Fault.crash_at_io k);
    (match
       Mneme.Replica.heal_segment scn.ss_rep ~store:scn.ss_store ~pool:d.Mneme.Scrub.pool
         ~pseg:d.Mneme.Scrub.pseg
     with
    | exception Vfs.Crash -> ()
    | Ok _ | Error _ ->
      note (Printf.sprintf "heal finished without crashing at io %d" k));
    let img = Vfs.crash_image scn.ss_vfs in
    ignore (Mneme.Store.recover_journal img ~file:failover_file ~log_file:failover_log);
    (match Mneme.Store.open_existing img failover_file with
    | exception Mneme.Store.Corrupt msg ->
      note (Printf.sprintf "crash at heal io %d: rebooted primary unopenable: %s" k msg)
    | pstore ->
      attach_pools pstore;
      let members =
        ("primary", img, pstore)
        :: List.map
             (fun i ->
               let name = i.Mneme.Replica.name in
               let svfs = Mneme.Replica.standby_vfs scn.ss_rep ~name in
               let st = Mneme.Store.open_existing svfs failover_file in
               attach_pools st;
               (name, svfs, st))
             (Mneme.Replica.info scn.ss_rep)
      in
      converge_members ~note members;
      audit_members ~note ~golden:scn members);
    0
  end

type scrub_outcome = {
  sc_segments : int;
  sc_members : int;
  sc_healed : int;
  sc_crash_points : int;
  sc_problems : (int * string) list;
}

let scrub_ok o = o.sc_problems = []

let run_scrub ?(seed = 42) ?(docs = 12) ?(batches = 3) ?(standbys = 2) ?(bits = 1)
    ?(crash_sweep = true) () =
  let scn = build_scrub_scenario ~seed ~docs ~batches ~standbys () in
  let nseg = Array.length scn.ss_segments in
  let nmem = Array.length scn.ss_members in
  let problems = ref [] and healed = ref 0 and crash_points = ref 0 in
  for s = 0 to nseg - 1 do
    let note msg = problems := (s, msg) :: !problems in
    let member = scn.ss_members.(s mod nmem) in
    let d = scn.ss_segments.(s) in
    scenario_rot scn ~member ~segment:s ~bits ~seed:(seed + (101 * s)) ();
    (* Detection: a scrub of the whole group must find exactly this
       segment, on exactly this member. *)
    let found = scrub_group scn in
    (match found with
    | [ (m, d') ] when String.equal m member && d' = d -> ()
    | l ->
      note
        (Printf.sprintf "scrub found %d damaged segment(s); expected exactly %s %s/pseg %d"
           (List.length l) member d.Mneme.Scrub.pool d.Mneme.Scrub.pseg));
    (* Repair through the group: one journaled heal converges everyone. *)
    List.iter
      (fun (m, dmg) ->
        match
          Mneme.Replica.heal_segment scn.ss_rep ~store:scn.ss_store ~pool:dmg.Mneme.Scrub.pool
            ~pseg:dmg.Mneme.Scrub.pseg
        with
        | Ok src ->
          incr healed;
          if String.equal src m then
            note (Printf.sprintf "segment healed from its own rotten copy %s" src)
        | Error e -> note (Printf.sprintf "heal failed: %s" e))
      found;
    (match scrub_group scn with
    | [] -> ()
    | l -> note (Printf.sprintf "%d segment(s) still damaged after heal" (List.length l)));
    audit_members ~note ~golden:scn (member_stores scn);
    if crash_sweep then begin
      let n = scrub_crash_run ~seed ~docs ~batches ~standbys ~bits ~segment:s ~note 0 in
      crash_points := !crash_points + n;
      sweep_points ~points:n (fun k ->
          let ps = ref [] in
          ignore
            (scrub_crash_run ~seed ~docs ~batches ~standbys ~bits ~segment:s
               ~note:(fun m -> ps := m :: !ps)
               k);
          List.rev !ps)
      |> List.iter (fun (k, p) -> note (Printf.sprintf "heal io %d: %s" k p))
    end
  done;
  {
    sc_segments = nseg;
    sc_members = nmem;
    sc_healed = !healed;
    sc_crash_points = !crash_points;
    sc_problems = List.rev !problems;
  }

let pp_scrub_outcome fmt o =
  Format.fprintf fmt
    "%d segments x %d members: %d heal(s) applied, %d crash-during-repair point(s)"
    o.sc_segments o.sc_members o.sc_healed o.sc_crash_points;
  if o.sc_problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.sc_problems);
    List.iter (fun (s, p) -> Format.fprintf fmt "@.  segment %d: %s" s p) o.sc_problems
  end

(* ------------------------------------------------------------------ *)
(* Budget sweep: the scrub tax.  Rot the last segment of the walk on the
   primary, then scrub under each per-step byte budget with a foreground
   query between steps.  Small budgets detect slowly but never hold the
   disk long; big budgets detect fast at the price of long steps — the
   worst-case wait of a query arriving mid-step. *)

type sweep_row = {
  sw_budget : int; (* max bytes verified per scrub step *)
  sw_steps : int; (* steps until the damage was detected *)
  sw_detect_ms : float; (* simulated ms of scrub work to detection *)
  sw_stall_ms : float; (* longest single step: worst foreground wait *)
  sw_heal_ms : float;
  sw_query_ms : float; (* mean foreground query latency between steps *)
}

let scrub_budget_sweep ?(seed = 42) ?(docs = 12) ?(batches = 3) ?(standbys = 1) ~budgets () =
  List.map
    (fun budget ->
      if budget < 1 then invalid_arg "Torture.scrub_budget_sweep: budgets must be positive";
      let scn = build_scrub_scenario ~seed ~docs ~batches ~standbys () in
      let target = Array.length scn.ss_segments - 1 in
      scenario_rot scn ~member:"primary" ~segment:target ~seed:(seed + 7) ();
      Vfs.purge_os_cache scn.ss_vfs;
      let clock = Vfs.clock scn.ss_vfs in
      let elapsed f =
        let before = Vfs.Clock.snapshot clock in
        f ();
        Vfs.Clock.wall_ms (Vfs.Clock.diff ~later:(Vfs.Clock.snapshot clock) ~earlier:before)
      in
      let scrubber = Mneme.Scrub.create scn.ss_store in
      let queries = Array.of_list failover_queries in
      let steps = ref 0 and detect = ref 0.0 and stall = ref 0.0 in
      let qtimes = ref [] in
      let running = ref true in
      while !running do
        let ms = elapsed (fun () -> ignore (Mneme.Scrub.step ~max_bytes:budget scrubber)) in
        incr steps;
        detect := !detect +. ms;
        if ms > !stall then stall := ms;
        let engine =
          Engine.create ~vfs:scn.ss_vfs ~store:(session_over scn.ss_store) ~dict:scn.ss_dict
            ~n_docs:scn.ss_n_docs ~avg_doc_len:scn.ss_avg ~doc_len:scn.ss_doc_len ()
        in
        let q = queries.(!steps mod Array.length queries) in
        qtimes := elapsed (fun () -> ignore (Engine.run_query_string ~top_k:10 engine q)) :: !qtimes;
        if Mneme.Scrub.damages scrubber <> [] || (Mneme.Scrub.progress scrubber).Mneme.Scrub.complete
        then running := false
      done;
      let heal_ms =
        elapsed (fun () ->
            List.iter
              (fun d ->
                ignore
                  (Mneme.Replica.heal_segment scn.ss_rep ~store:scn.ss_store
                     ~pool:d.Mneme.Scrub.pool ~pseg:d.Mneme.Scrub.pseg))
              (Mneme.Scrub.damages scrubber))
      in
      let qs = !qtimes in
      let mean =
        if qs = [] then 0.0
        else List.fold_left ( +. ) 0.0 qs /. float_of_int (List.length qs)
      in
      {
        sw_budget = budget;
        sw_steps = !steps;
        sw_detect_ms = !detect;
        sw_stall_ms = !stall;
        sw_heal_ms = heal_ms;
        sw_query_ms = mean;
      })
    budgets

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d crash points: %d recovered stores, %d pre-commit images; recovery %d replayed / %d \
     discarded / %d clean logs"
    o.crash_points o.opened o.unopenable o.replayed o.discarded o.clean;
  if o.problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.problems);
    List.iter (fun (k, p) -> Format.fprintf fmt "@.  crash at io %d: %s" k p) o.problems
  end

(* ------------------------------------------------------------------ *)
(* Epoch torture: the crash-point discipline pointed at snapshot
   isolation.  The workload drives a journaled {!Live_index} — every
   document addition or deletion publishes an epoch through one sealed
   root switch — and the audit demands that a crash at ANY physical I/O
   recovers to wholly the old epoch or wholly the new one: directory,
   record bytes, document count and ranked results byte-identical to
   the golden run's view of that epoch, fsck clean, and gc able to
   drain every byte the interrupted epoch stranded. *)

let epoch_file = "epoch.mneme"
let epoch_log = "epoch.log"

let epoch_queries =
  let t r = Collections.Synth.core_term ~rank:r in
  [
    t 1;
    Printf.sprintf "#sum( %s %s %s )" (t 1) (t 2) (t 3);
    Printf.sprintf "#and( %s %s )" (t 2) (t 3);
  ]

type epoch_golden = {
  eg_epoch : int;
  eg_doc_count : int;
  eg_directory : (string * int * int) list;
  eg_records : (string * bytes) list;
  eg_ranked : (int * string) list list;
}

(* Everything the post-mutation audit phase measures, gathered by the
   workload itself so the golden run and every replay perform the
   identical physical I/O sequence. *)
type epoch_audit = {
  ea_gc_pinned : Mneme.Epoch.gc_stats; (* gc with pins still held *)
  ea_pin_ranked : (int * (int * string) list list) list;
  ea_gc_final : Mneme.Epoch.gc_stats; (* gc after every release *)
  ea_stranded : int;
  ea_fsck_ok : bool;
  ea_drift : (string * string) list;
}

let epoch_observe live =
  let dir = Live_index.directory live in
  {
    eg_epoch = Live_index.epoch live;
    eg_doc_count = Live_index.document_count live;
    eg_directory = dir;
    eg_records =
      List.map
        (fun (term, _, _) ->
          match Live_index.term_record live term with
          | Some b -> (term, b)
          | None -> (term, Bytes.empty))
        dir;
    eg_ranked =
      List.map (fun q -> score_fingerprint (Live_index.search ~top_k:10 live q)) epoch_queries;
  }

let epoch_workload vfs ~seed ~docs ~mutating ~published ~finished =
  let model =
    Collections.Docmodel.make ~name:"epoch" ~n_docs:docs ~core_vocab:120 ~mean_doc_len:30.0
      ~hapax_prob:0.05 ~seed ()
  in
  let doc_arr = Array.of_seq (Collections.Synth.documents model) in
  let live = Live_index.create_mneme ~journal:epoch_log vfs ~file:epoch_file () in
  let ids = Array.make (Array.length doc_arr) (-1) in
  let m = ref 0 in
  let pins = ref [] in
  let step mutate =
    incr m;
    mutating !m;
    mutate ();
    (* Observation — directory walk, record fetches, the fixed query
       set — is part of the deterministic I/O sequence, so replays stay
       aligned with the golden run. *)
    published !m (epoch_observe live);
    (* Pin a spread of epochs (1, 5, 9, ...) so the audit phase can
       prove a pinned reader survives both later mutation and gc. *)
    if !m mod 4 = 1 then pins := (Live_index.epoch live, Live_index.pin live) :: !pins
  in
  Array.iteri
    (fun d doc ->
      step (fun () ->
          ids.(d) <-
            Live_index.add_document live ~doc_id:doc.Collections.Synth.id
              (Collections.Synth.document_text doc));
      (* Every third document, retire the one indexed two steps ago —
         epochs get published by deletions as well as additions. *)
      if d mod 3 = 2 then step (fun () -> ignore (Live_index.delete_document live ids.(d - 2))))
    doc_arr;
  let pins = List.rev !pins in
  (* Audit phase: gc under pins (must retain what the pins reach), read
     through every pin, release, gc again (must drain everything),
     deep fsck. *)
  let gc_pinned = Live_index.gc live in
  let pin_ranked =
    List.map
      (fun (e, p) ->
        ( e,
          List.map
            (fun q -> score_fingerprint (Live_index.search_pinned ~top_k:10 live p q))
            epoch_queries ))
      pins
  in
  List.iter (fun (_, p) -> Live_index.release live p) pins;
  let gc_final = Live_index.gc live in
  let stranded = Live_index.stranded_bytes live in
  let store = Option.get (Live_index.mneme_store live) in
  let fsck = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
  finished
    {
      ea_gc_pinned = gc_pinned;
      ea_pin_ranked = pin_ranked;
      ea_gc_final = gc_final;
      ea_stranded = stranded;
      ea_fsck_ok = Mneme.Check.ok fsck;
      ea_drift = Live_index.audit live;
    }

type epoch_plan = {
  ep_seed : int;
  ep_docs : int;
  ep_points : int;
  ep_mutations : int;
  ep_golden : epoch_golden array; (* index = epoch; 0 unused *)
  ep_reclaimed : int; (* objects the golden run's two gc passes freed *)
  ep_problems : string list; (* golden-run audit violations *)
}

let dummy_golden =
  { eg_epoch = 0; eg_doc_count = 0; eg_directory = []; eg_records = []; eg_ranked = [] }

let prepare_epoch ?(seed = 42) ?(docs = 8) () =
  if docs < 1 then invalid_arg "Torture.prepare_epoch: docs must be positive";
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.none ());
  let golden = ref [] (* newest first *) in
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let mutations = ref 0 in
  let audit = ref None in
  epoch_workload vfs ~seed ~docs
    ~mutating:(fun m -> mutations := m)
    ~published:(fun m g ->
      if g.eg_epoch <> m then note "mutation %d published epoch %d" m g.eg_epoch;
      golden := g :: !golden)
    ~finished:(fun a -> audit := Some a);
  let golden_arr = Array.make (!mutations + 1) dummy_golden in
  List.iteri (fun i g -> golden_arr.(!mutations - i) <- g) !golden;
  let reclaimed = ref 0 in
  (match !audit with
  | None -> note "workload never reached the audit phase"
  | Some a ->
    (* (c) A reader pinned before later mutations — and before a gc run
       under those pins — still ranks bit-identically to what the live
       index served when its epoch was current. *)
    if a.ea_pin_ranked = [] then note "audit phase held no pins";
    List.iter
      (fun (e, ranked) ->
        if ranked <> golden_arr.(e).eg_ranked then
          note "pinned epoch %d ranked differently after %d further mutations and a gc" e
            (!mutations - e))
      a.ea_pin_ranked;
    if a.ea_gc_pinned.Mneme.Epoch.retained_objects = 0 then
      note "gc under pins retained nothing — the pins protected no stale object";
    if a.ea_gc_final.Mneme.Epoch.retained_objects <> 0 then
      note "final gc retained %d objects with no pins outstanding"
        a.ea_gc_final.Mneme.Epoch.retained_objects;
    if a.ea_stranded <> 0 then note "%d bytes stranded after the final gc" a.ea_stranded;
    if not a.ea_fsck_ok then note "fsck failed after the final gc";
    (match a.ea_drift with
    | [] -> ()
    | (where, p) :: _ ->
      note "stat drift after the audit phase (%d problems; %s: %s)" (List.length a.ea_drift)
        where p);
    reclaimed :=
      a.ea_gc_pinned.Mneme.Epoch.reclaimed_objects + a.ea_gc_final.Mneme.Epoch.reclaimed_objects);
  {
    ep_seed = seed;
    ep_docs = docs;
    ep_points = Vfs.fault_io_count vfs;
    ep_mutations = !mutations;
    ep_golden = golden_arr;
    ep_reclaimed = !reclaimed;
    ep_problems = List.rev !problems;
  }

let epoch_points plan = plan.ep_points
let epoch_mutations plan = plan.ep_mutations

type epoch_report = {
  crash_at : int;
  recovery : Mneme.Journal.recovery;
  opened : bool;
  published : int; (* epochs the replay saw commit before the crash *)
  recovered_epoch : int; (* -1 when unopenable *)
  problems : string list;
}

let run_epoch_point plan k =
  if k < 1 || k > plan.ep_points then
    invalid_arg
      (Printf.sprintf "Torture.run_epoch_point: crash point %d outside 1..%d" k plan.ep_points);
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io k);
  let started = ref 0 and completed = ref 0 in
  (try
     epoch_workload vfs ~seed:plan.ep_seed ~docs:plan.ep_docs
       ~mutating:(fun _ -> incr started)
       ~published:(fun _ _ -> incr completed)
       ~finished:(fun _ -> ());
     note "workload ran to completion without crashing at io %d" k
   with Vfs.Crash -> ());
  (* Reboot on the durable image.  Recovery runs once here (so the
     verdict is observable) and again inside [open_mneme] — replaying a
     recovered log must be idempotent. *)
  let img = Vfs.crash_image vfs in
  let recovery = Mneme.Store.recover_journal img ~file:epoch_file ~log_file:epoch_log in
  let opened = ref false and recovered_epoch = ref (-1) in
  (match Live_index.open_mneme ~journal:epoch_log img ~file:epoch_file () with
  | exception Mneme.Store.Corrupt msg ->
    if !completed > 0 then note "index unopenable after %d published epochs: %s" !completed msg
  | live ->
    opened := true;
    let g = Live_index.epoch live in
    recovered_epoch := g;
    (* A publication the replay saw commit cannot roll back; the log
       fsync may have sealed one more the crash then interrupted. *)
    if g < !completed || g > !started then
      note "recovered epoch %d outside [%d, %d]" g !completed !started
    else if g = 0 then note "store opened but no epoch was ever published"
    else begin
      let gold = plan.ep_golden.(g) in
      (* (b) Wholly old or wholly new: the surviving root reproduces
         the golden run's view of epoch [g] exactly. *)
      if Live_index.document_count live <> gold.eg_doc_count then
        note "epoch %d: %d documents, golden had %d" g
          (Live_index.document_count live)
          gold.eg_doc_count;
      if Live_index.directory live <> gold.eg_directory then
        note "epoch %d: directory differs from golden" g;
      List.iter
        (fun (term, b) ->
          match Live_index.term_record live term with
          | Some b' when Bytes.equal b b' -> ()
          | Some _ -> note "epoch %d: record for %S differs from golden" g term
          | None -> note "epoch %d: record for %S lost" g term)
        gold.eg_records;
      let ranked =
        List.map (fun q -> score_fingerprint (Live_index.search ~top_k:10 live q)) epoch_queries
      in
      if ranked <> gold.eg_ranked then note "epoch %d: ranked results differ from golden" g;
      (* A pin taken on the recovered root must agree with both. *)
      let p = Live_index.pin live in
      let pinned =
        List.map
          (fun q -> score_fingerprint (Live_index.search_pinned ~top_k:10 live p q))
          epoch_queries
      in
      if pinned <> gold.eg_ranked then note "epoch %d: pinned ranking differs from golden" g;
      Live_index.release live p;
      (* (a) fsck-clean as recovered ... *)
      let store = Option.get (Live_index.mneme_store live) in
      let rep = Mneme.Check.run store in
      if not (Mneme.Check.ok rep) then
        note "fsck: %s" (Format.asprintf "%a" Mneme.Check.pp_report rep);
      (* ... and gc drains every byte the interrupted epoch stranded,
         leaving a store that still deep-checks clean. *)
      ignore (Live_index.gc live);
      if Live_index.stranded_bytes live <> 0 then
        note "%d bytes stranded after gc" (Live_index.stranded_bytes live);
      let rep = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
      if not (Mneme.Check.ok rep) then
        note "fsck after gc: %s" (Format.asprintf "%a" Mneme.Check.pp_report rep);
      match Live_index.audit live with
      | [] -> ()
      | (where, p) :: rest ->
        note "stat drift after recovery (%d problems; %s: %s)" (1 + List.length rest) where p
    end);
  {
    crash_at = k;
    recovery;
    opened = !opened;
    published = !completed;
    recovered_epoch = !recovered_epoch;
    problems = List.rev !problems;
  }

type epoch_outcome = {
  e_points : int;
  e_mutations : int;
  e_opened : int;
  e_unopenable : int;
  e_wholly_old : int;
  e_wholly_new : int;
  e_replayed : int;
  e_discarded : int;
  e_clean : int;
  e_reclaimed : int;
  e_problems : (int * string) list; (* crash point 0 = golden-run audit *)
}

let run_epoch ?seed ?docs () =
  let plan = prepare_epoch ?seed ?docs () in
  let opened = ref 0
  and unopenable = ref 0
  and wholly_old = ref 0
  and wholly_new = ref 0
  and replayed = ref 0
  and discarded = ref 0
  and clean = ref 0 in
  let problems =
    sweep_points ~seed_problems:plan.ep_problems ~points:plan.ep_points (fun k ->
        let r = run_epoch_point plan k in
        if r.opened then begin
          incr opened;
          if r.recovered_epoch > r.published then incr wholly_new else incr wholly_old
        end
        else incr unopenable;
        tally_recovery ~replayed ~discarded ~clean r.recovery;
        r.problems)
  in
  {
    e_points = plan.ep_points;
    e_mutations = plan.ep_mutations;
    e_opened = !opened;
    e_unopenable = !unopenable;
    e_wholly_old = !wholly_old;
    e_wholly_new = !wholly_new;
    e_replayed = !replayed;
    e_discarded = !discarded;
    e_clean = !clean;
    e_reclaimed = plan.ep_reclaimed;
    e_problems = problems;
  }

let pp_epoch_outcome fmt o =
  Format.fprintf fmt
    "%d crash points over %d epochs: %d recovered roots (%d wholly old, %d wholly new), %d \
     pre-publication images; recovery %d replayed / %d discarded / %d clean logs; golden gc \
     reclaimed %d objects"
    o.e_points o.e_mutations o.e_opened o.e_wholly_old o.e_wholly_new o.e_unopenable o.e_replayed
    o.e_discarded o.e_clean o.e_reclaimed;
  if o.e_problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.e_problems);
    List.iter
      (fun (k, p) ->
        if k = 0 then Format.fprintf fmt "@.  golden run: %s" p
        else Format.fprintf fmt "@.  crash at io %d: %s" k p)
      o.e_problems
  end

let epoch_table plan =
  List.filteri (fun i _ -> i > 0) (Array.to_list plan.ep_golden)
  |> List.map (fun g -> (g.eg_epoch, g.eg_doc_count, List.length g.eg_directory))

let epoch_golden_problems plan = plan.ep_problems

(* ------------------------------------------------------------------ *)
(* Ingest torture: the crash-point discipline pointed at online
   ingestion.  The workload drives an {!Ingest} index — WAL-acked
   additions and deletions interleaved with budgeted merge steps and
   union queries — and the audit demands that a crash at ANY physical
   I/O recovers a store that is fsck-clean, holds every acknowledged
   document exactly once (the union's document table and rankings
   byte-identical to the golden run at the recovered frontier), serves
   pinned readers bit-identically, and lets the merge resume and drain
   to the last acknowledged operation. *)

let ingest_file = "ingest.mneme"
let ingest_wal = ingest_file ^ ".wal"
let ingest_journal = ingest_file ^ ".log"

(* Small seals and a tight fold budget so the workload crosses many
   seal/fold boundaries; fanout 2 exercises the tier combiner. *)
let ingest_config = { Ingest.buffer_budget = 1 lsl 20; seal_bytes = 1024; tier_fanout = 2 }

let ingest_queries = epoch_queries

type ingest_obs = {
  io_seq : int; (* last acknowledged operation *)
  io_epoch : int; (* disk epochs published (folds committed) *)
  io_doc_count : int;
  io_docs : (int * int) list;
  io_ranked : (int * string) list list;
}

type ingest_kind = Ik_add | Ik_delete | Ik_merge

let ingest_observe t =
  {
    io_seq = Ingest.last_seq t;
    io_epoch = Live_index.epoch (Ingest.live t);
    io_doc_count = Ingest.document_count t;
    io_docs = Ingest.documents t;
    io_ranked =
      List.map (fun q -> score_fingerprint (Ingest.search ~top_k:10 t q)) ingest_queries;
  }

(* Everything the post-drain audit phase measures, gathered by the
   workload itself so the golden run and every replay perform the
   identical physical I/O sequence. *)
type ingest_audit = {
  ia_pin_ranked : (int * (int * string) list list) list; (* op pinned at -> rankings *)
  ia_gc_pinned : Mneme.Epoch.gc_stats;
  ia_gc_final : Mneme.Epoch.gc_stats;
  ia_stranded : int;
  ia_fsck_ok : bool;
  ia_audit : (string * string) list;
  ia_segments : (int * int * int) list;
  ia_wal_bytes : int;
  ia_stats : Ingest.stats;
}

let ingest_workload vfs ~seed ~docs ~applying ~observed ~finished =
  let model =
    Collections.Docmodel.make ~name:"ingest" ~n_docs:docs ~core_vocab:120 ~mean_doc_len:30.0
      ~hapax_prob:0.05 ~seed ()
  in
  let doc_arr = Array.of_seq (Collections.Synth.documents model) in
  let t = Ingest.create ~config:ingest_config vfs ~file:ingest_file () in
  let budget = Mneme.Budget.create ~max_bytes:2048 () in
  let ids = Array.make (Array.length doc_arr) (-1) in
  let m = ref 0 in
  let pins = ref [] in
  (* Observation 0: the empty union — what a crash before the first
     acknowledgement must recover to. *)
  observed 0 (ingest_observe t);
  let step kind mutate =
    incr m;
    applying !m kind;
    mutate ();
    (* Observation — the document table and the fixed query set over
       the union — is part of the deterministic I/O sequence, so
       replays stay aligned with the golden run. *)
    observed !m (ingest_observe t);
    (* Pin a spread of union states (ops 1, 6, 11, ...) so the audit
       phase can prove a pinned reader survives later churn, folds and
       gc. *)
    if !m mod 5 = 1 then pins := (!m, Ingest.pin t) :: !pins
  in
  Array.iteri
    (fun d doc ->
      step Ik_add (fun () ->
          ids.(d) <-
            (match Ingest.add_document t (Collections.Synth.document_text doc) with
            | Ingest.Acked { doc; _ } -> doc
            | Ingest.Overloaded -> failwith "Torture.ingest_workload: unexpected backpressure"));
      (* Every third document, retire the one accepted two steps ago —
         some deletions land on disk, some on still-buffered memory. *)
      if d mod 3 = 2 then step Ik_delete (fun () -> ignore (Ingest.delete_document t ids.(d - 2)));
      if d mod 2 = 1 then step Ik_merge (fun () -> ignore (Ingest.merge_step ~budget t)))
    doc_arr;
  (* Drain phase: one budgeted fold per observed step, until the merge
     reports the buffer (documents and tombstones both) empty. *)
  let drained = ref false in
  while not !drained do
    step Ik_merge (fun () -> drained := not (Ingest.merge_step ~budget t))
  done;
  let pins = List.rev !pins in
  (* Audit phase: gc under pins, read through every pin, release, gc
     again, deep fsck, the ingest invariant audit. *)
  let gc_pinned = Live_index.gc (Ingest.live t) in
  let pin_ranked =
    List.map
      (fun (pm, p) ->
        ( pm,
          List.map
            (fun q -> score_fingerprint (Ingest.search_pinned ~top_k:10 t p q))
            ingest_queries ))
      pins
  in
  List.iter (fun (_, p) -> Ingest.release t p) pins;
  let gc_final = Live_index.gc (Ingest.live t) in
  let store = Option.get (Live_index.mneme_store (Ingest.live t)) in
  let fsck = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
  finished
    {
      ia_pin_ranked = pin_ranked;
      ia_gc_pinned = gc_pinned;
      ia_gc_final = gc_final;
      ia_stranded = Live_index.stranded_bytes (Ingest.live t);
      ia_fsck_ok = Mneme.Check.ok fsck;
      ia_audit = Ingest.audit t;
      ia_segments = Ingest.segments t;
      ia_wal_bytes = Vfs.size (Vfs.open_file vfs ingest_wal);
      ia_stats = Ingest.stats t;
    }

type ingest_plan = {
  ig_seed : int;
  ig_docs : int;
  ig_points : int;
  ig_ops : int;
  ig_golden : ingest_obs array; (* index = operation; 0 = the empty union *)
  ig_by_seq : ingest_obs option array; (* index = seq + 1 *)
  ig_folds : int;
  ig_reclaimed : int;
  ig_problems : string list;
}

let dummy_ingest_obs =
  { io_seq = min_int; io_epoch = 0; io_doc_count = 0; io_docs = []; io_ranked = [] }

let prepare_ingest ?(seed = 42) ?(docs = 8) () =
  if docs < 1 then invalid_arg "Torture.prepare_ingest: docs must be positive";
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.none ());
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let golden = ref [] (* (op, observation), newest first *) in
  let ops = ref 0 in
  let audit = ref None in
  ingest_workload vfs ~seed ~docs
    ~applying:(fun m _ -> ops := m)
    ~observed:(fun m obs -> golden := (m, obs) :: !golden)
    ~finished:(fun a -> audit := Some a);
  let golden_arr = Array.make (!ops + 1) dummy_ingest_obs in
  List.iter (fun (m, obs) -> golden_arr.(m) <- obs) !golden;
  let final_seq = golden_arr.(!ops).io_seq in
  (* Index the observations by acknowledged frontier: merge steps do
     not consume sequence numbers, so every observation sharing a seq
     must describe the identical union — folding is invisible to
     readers. *)
  let by_seq = Array.make (final_seq + 2) None in
  Array.iter
    (fun obs ->
      match by_seq.(obs.io_seq + 1) with
      | None -> by_seq.(obs.io_seq + 1) <- Some obs
      | Some prev ->
        if
          prev.io_doc_count <> obs.io_doc_count
          || prev.io_docs <> obs.io_docs
          || prev.io_ranked <> obs.io_ranked
        then note "observations at seq %d disagree — a fold moved the union" obs.io_seq)
    golden_arr;
  Array.iteri
    (fun i obs -> if obs = None then note "no golden observation covers seq %d" (i - 1))
    by_seq;
  let folds = ref 0 and reclaimed = ref 0 in
  (match !audit with
  | None -> note "workload never reached the audit phase"
  | Some a ->
    (* A reader pinned before later churn, folds and a gc under pins
       still ranks bit-identically to what the union served at its
       pin. *)
    if a.ia_pin_ranked = [] then note "audit phase held no pins";
    List.iter
      (fun (pm, ranked) ->
        if ranked <> golden_arr.(pm).io_ranked then
          note "union pinned at operation %d ranked differently after %d further operations" pm
            (!ops - pm))
      a.ia_pin_ranked;
    if a.ia_gc_final.Mneme.Epoch.retained_objects <> 0 then
      note "final gc retained %d objects with no pins outstanding"
        a.ia_gc_final.Mneme.Epoch.retained_objects;
    if a.ia_stranded <> 0 then note "%d bytes stranded after the final gc" a.ia_stranded;
    if not a.ia_fsck_ok then note "fsck failed after the final gc";
    (match a.ia_audit with
    | [] -> ()
    | (where, p) :: rest ->
      note "ingest audit after the drain (%d problems; %s: %s)" (1 + List.length rest) where p);
    if a.ia_segments <> [] then
      note "%d segments survived the drain" (List.length a.ia_segments);
    if a.ia_wal_bytes <> 0 then note "%d WAL bytes survived the drain" a.ia_wal_bytes;
    if a.ia_stats.Ingest.overloads <> 0 then
      note "%d overloads under a %d-byte budget" a.ia_stats.Ingest.overloads
        ingest_config.Ingest.buffer_budget;
    if golden_arr.(!ops).io_epoch <> a.ia_stats.Ingest.folds then
      note "%d disk epochs but %d folds — a fold published more than one root"
        golden_arr.(!ops).io_epoch a.ia_stats.Ingest.folds;
    folds := a.ia_stats.Ingest.folds;
    reclaimed :=
      a.ia_gc_pinned.Mneme.Epoch.reclaimed_objects + a.ia_gc_final.Mneme.Epoch.reclaimed_objects);
  {
    ig_seed = seed;
    ig_docs = docs;
    ig_points = Vfs.fault_io_count vfs;
    ig_ops = !ops;
    ig_golden = golden_arr;
    ig_by_seq = by_seq;
    ig_folds = !folds;
    ig_reclaimed = !reclaimed;
    ig_problems = List.rev !problems;
  }

let ingest_points plan = plan.ig_points
let ingest_ops plan = plan.ig_ops
let ingest_golden_problems plan = plan.ig_problems

type ingest_report = {
  i_crash_at : int;
  i_recovery : Mneme.Journal.recovery;
  i_opened : bool;
  i_acked_seq : int; (* last operation the replay saw acknowledged *)
  i_recovered_seq : int; (* min_int when unopenable *)
  i_seen_folds : int; (* folds the replay saw commit before the crash *)
  i_recovered_folds : int;
  i_redelivered : int; (* WAL records recovery re-applied *)
  i_problems : string list;
}

let run_ingest_point plan k =
  if k < 1 || k > plan.ig_points then
    invalid_arg
      (Printf.sprintf "Torture.run_ingest_point: crash point %d outside 1..%d" k plan.ig_points);
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io k);
  let inflight = ref None in
  let completed_seq = ref (-1) and completed_epoch = ref 0 in
  (try
     ingest_workload vfs ~seed:plan.ig_seed ~docs:plan.ig_docs
       ~applying:(fun _ kind -> inflight := Some kind)
       ~observed:(fun _ obs ->
         inflight := None;
         completed_seq := obs.io_seq;
         completed_epoch := obs.io_epoch)
       ~finished:(fun _ -> ());
     note "workload ran to completion without crashing at io %d" k
   with Vfs.Crash -> ());
  (* Reboot on the durable image.  Journal recovery runs once here (so
     the verdict is observable) and again inside [Ingest.open_] —
     replaying a recovered log must be idempotent. *)
  let img = Vfs.crash_image vfs in
  let recovery =
    if Vfs.file_exists img ingest_file then
      Mneme.Store.recover_journal img ~file:ingest_file ~log_file:ingest_journal
    else Mneme.Journal.Clean
  in
  let opened = ref false
  and recovered_seq = ref min_int
  and recovered_folds = ref 0
  and redelivered = ref 0 in
  (match Ingest.open_ ~config:ingest_config img ~file:ingest_file () with
  | exception e -> note "index unopenable: %s" (Printexc.to_string e)
  | t -> (
    opened := true;
    let g = Ingest.last_seq t in
    recovered_seq := g;
    recovered_folds := Live_index.epoch (Ingest.live t);
    redelivered := (Ingest.stats t).Ingest.replayed_ops;
    (* An acknowledgement the replay saw return cannot roll back; the
       WAL fsync may have sealed one more operation the crash then
       interrupted. *)
    let max_seq =
      !completed_seq + (match !inflight with Some Ik_add | Some Ik_delete -> 1 | _ -> 0)
    in
    if g < !completed_seq || g > max_seq then
      note "recovered frontier %d outside the acknowledged window [%d, %d]" g !completed_seq
        max_seq;
    (* The disk index is wholly the old root or wholly the new one: a
       fold the replay saw commit cannot roll back, and at most the one
       interrupted fold may have sealed. *)
    let max_epoch = !completed_epoch + (match !inflight with Some Ik_merge -> 1 | _ -> 0) in
    if !recovered_folds < !completed_epoch || !recovered_folds > max_epoch then
      note "recovered disk epoch %d outside [%d, %d]" !recovered_folds !completed_epoch max_epoch;
    match if g + 1 >= 0 && g + 1 < Array.length plan.ig_by_seq then plan.ig_by_seq.(g + 1) else None with
    | None -> note "recovered frontier %d has no golden observation" g
    | Some gold ->
      (* Exactly once: the recovered union's document table is
         byte-for-byte the golden table at the recovered frontier —
         every acknowledged document present exactly once, unacked ones
         absent or wholly present, nothing lost, nothing doubled. *)
      if Ingest.document_count t <> gold.io_doc_count then
        note "seq %d: %d documents, golden had %d" g (Ingest.document_count t) gold.io_doc_count;
      if Ingest.documents t <> gold.io_docs then
        note "seq %d: document table differs from golden" g;
      let ranked =
        List.map (fun q -> score_fingerprint (Ingest.search ~top_k:10 t q)) ingest_queries
      in
      if ranked <> gold.io_ranked then note "seq %d: union rankings differ from golden" g;
      (* A reader pinned on the recovered union ranks identically. *)
      let p = Ingest.pin t in
      let pinned =
        List.map
          (fun q -> score_fingerprint (Ingest.search_pinned ~top_k:10 t p q))
          ingest_queries
      in
      if pinned <> gold.io_ranked then note "seq %d: pinned rankings differ from golden" g;
      Ingest.release t p;
      (* fsck-clean as recovered ... *)
      let store = Option.get (Live_index.mneme_store (Ingest.live t)) in
      let rep = Mneme.Check.run store in
      if not (Mneme.Check.ok rep) then
        note "fsck: %s" (Format.asprintf "%a" Mneme.Check.pp_report rep);
      (match Ingest.audit t with
      | [] -> ()
      | (where, p) :: rest ->
        note "audit after recovery (%d problems; %s: %s)" (1 + List.length rest) where p);
      (* ... and the merge resumes and drains: the buffer empties, the
         frontier reaches the last acknowledged operation, readers see
         no movement, the WAL is cut, and gc leaves nothing stranded. *)
      Ingest.drain t;
      if Ingest.segments t <> [] || Ingest.buffered_docs t > 0 then
        note "post-recovery drain left the buffer non-empty";
      if Ingest.merged_seq t <> g then
        note "post-recovery drain stopped at frontier %d, acknowledged %d" (Ingest.merged_seq t)
          g;
      let ranked' =
        List.map (fun q -> score_fingerprint (Ingest.search ~top_k:10 t q)) ingest_queries
      in
      if ranked' <> gold.io_ranked then note "seq %d: rankings moved across the drain" g;
      if Vfs.size (Vfs.open_file img ingest_wal) <> 0 then
        note "WAL not truncated after the post-recovery drain";
      ignore (Live_index.gc (Ingest.live t));
      if Live_index.stranded_bytes (Ingest.live t) <> 0 then
        note "%d bytes stranded after gc" (Live_index.stranded_bytes (Ingest.live t));
      let rep = Mneme.Check.run ~object_check:Inquery.Postings.validate store in
      if not (Mneme.Check.ok rep) then
        note "fsck after drain and gc: %s" (Format.asprintf "%a" Mneme.Check.pp_report rep);
      (match Ingest.audit t with
      | [] -> ()
      | (where, p) :: rest ->
        note "audit after the drain (%d problems; %s: %s)" (1 + List.length rest) where p)));
  {
    i_crash_at = k;
    i_recovery = recovery;
    i_opened = !opened;
    i_acked_seq = !completed_seq;
    i_recovered_seq = !recovered_seq;
    i_seen_folds = !completed_epoch;
    i_recovered_folds = !recovered_folds;
    i_redelivered = !redelivered;
    i_problems = List.rev !problems;
  }

type ingest_outcome = {
  i_points : int;
  i_ops : int;
  i_acked : int; (* operations the golden run acknowledged *)
  i_folds : int;
  i_opened : int;
  i_unopenable : int;
  i_wholly_old : int;
  i_wholly_new : int;
  i_replayed : int;
  i_discarded : int;
  i_clean : int;
  i_redelivered : int;
  i_reclaimed : int;
  i_problems : (int * string) list; (* crash point 0 = golden-run audit *)
}

let run_ingest ?seed ?docs () =
  let plan = prepare_ingest ?seed ?docs () in
  let opened = ref 0
  and unopenable = ref 0
  and wholly_old = ref 0
  and wholly_new = ref 0
  and replayed = ref 0
  and discarded = ref 0
  and clean = ref 0
  and redelivered = ref 0 in
  let problems =
    sweep_points ~seed_problems:plan.ig_problems ~points:plan.ig_points (fun k ->
        let r = run_ingest_point plan k in
        if r.i_opened then begin
          incr opened;
          if r.i_recovered_folds > r.i_seen_folds then incr wholly_new else incr wholly_old;
          redelivered := !redelivered + r.i_redelivered
        end
        else incr unopenable;
        tally_recovery ~replayed ~discarded ~clean r.i_recovery;
        r.i_problems)
  in
  {
    i_points = plan.ig_points;
    i_ops = plan.ig_ops;
    i_acked = plan.ig_golden.(plan.ig_ops).io_seq + 1;
    i_folds = plan.ig_folds;
    i_opened = !opened;
    i_unopenable = !unopenable;
    i_wholly_old = !wholly_old;
    i_wholly_new = !wholly_new;
    i_replayed = !replayed;
    i_discarded = !discarded;
    i_clean = !clean;
    i_redelivered = !redelivered;
    i_reclaimed = plan.ig_reclaimed;
    i_problems = problems;
  }

let pp_ingest_outcome fmt o =
  Format.fprintf fmt
    "%d crash points over %d operations (%d acked, %d folds): %d recovered unions (%d wholly-old \
     roots, %d wholly-new), %d pre-commit images; recovery %d replayed / %d discarded / %d clean \
     logs; %d WAL records redelivered; golden gc reclaimed %d objects"
    o.i_points o.i_ops o.i_acked o.i_folds o.i_opened o.i_wholly_old o.i_wholly_new o.i_unopenable
    o.i_replayed o.i_discarded o.i_clean o.i_redelivered o.i_reclaimed;
  if o.i_problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.i_problems);
    List.iter
      (fun (k, p) ->
        if k = 0 then Format.fprintf fmt "@.  golden run: %s" p
        else Format.fprintf fmt "@.  crash at io %d: %s" k p)
      o.i_problems
  end

let ingest_table plan =
  List.filteri (fun i _ -> i > 0) (Array.to_list plan.ig_golden)
  |> List.mapi (fun i obs -> (i + 1, obs.io_seq, obs.io_epoch, obs.io_doc_count))

(* ------------------------------------------------------------------ *)
(* Shard torture: the fault-at-every-I/O discipline pointed at
   scatter-gather.  Build the unsharded golden rankings once, probe a
   clean sharded coordinator for every replica's serving-phase I/O
   count, then replay the scatter with one member crashed / stalled /
   bit-flipped at each of those I/Os — plus whole-shard blackouts (all
   replicas dead, exercising retry-with-backoff and shedding) and
   brownouts (all replicas slow, exercising deadline degradation) — and
   audit every merged result: (a) full-coverage results bit-identical
   to the unsharded index, (b) partial results exactly the unsharded
   ranking restricted to the covered doc ranges (a mismatch is a silent
   truncation), (c) the deadline overshot by at most one in-flight
   fetch. *)

let shard_queries = failover_queries

type shard_outcome = {
  st_shards : int;
  st_members : int; (* replicas probed for serving-phase I/Os *)
  st_points : int; (* member serving I/Os enumerated *)
  st_runs : int; (* fault replays: sweep + blackouts + brownouts *)
  st_full : int; (* full-coverage query results audited *)
  st_partial : int; (* partial (degraded / shed) query results audited *)
  st_overshoots : int; (* deadline overshoots beyond one fetch *)
  st_truncations : int; (* silent truncations *)
  st_problems : (int * string) list; (* run number; 0 = clean probe *)
}

let shard_ok o = o.st_problems = [] && o.st_overshoots = 0 && o.st_truncations = 0

let run_shard ?(seed = 42) ?(docs = 24) ?(shards = 2) ?(replicas = 2) ?(top_k = 10) () =
  if docs < 1 || shards < 1 || replicas < 1 then
    invalid_arg "Torture.run_shard: docs, shards and replicas must be positive";
  if shards > docs then invalid_arg "Torture.run_shard: more shards than documents";
  let model =
    Collections.Docmodel.make ~name:"shard-torture" ~n_docs:docs ~core_vocab:120
      ~mean_doc_len:30.0 ~hapax_prob:0.05 ~seed ()
  in
  let prepared = Experiment.prepare model in
  (* Unsharded golden: the full above-baseline ranking of every query
     (the restriction oracle); its first [top_k] is the full-coverage
     oracle.  Exact float pairs — the audit is bit-identity. *)
  let engine = Experiment.open_engine prepared Experiment.Mneme_cache in
  let pairs ranked =
    List.map (fun r -> (r.Inquery.Ranking.doc, r.Inquery.Ranking.score)) ranked
  in
  let oracle =
    Array.of_list
      (List.map
         (fun q -> pairs (Engine.run_topk_string ~exhaustive:true ~k:docs engine q).Engine.topk_ranked)
         shard_queries)
  in
  let firstk l = List.filteri (fun i _ -> i < top_k) l in
  let restrict ranges ranked =
    List.filter (fun (d, _) -> List.exists (fun (lo, hi) -> d >= lo && d < hi) ranges) ranked
  in
  let runs = ref 0 in
  let problems = ref [] in
  let note run fmt = Printf.ksprintf (fun s -> problems := (run, s) :: !problems) fmt in
  let full = ref 0 and partial = ref 0 and overshoots = ref 0 and truncations = ref 0 in
  (* Zero-capacity buffer pools, and the OS cache purged before every
     query: each fetch is then a physical block I/O the fault plans can
     observe, instead of a warm cache absorbing the whole serving
     path. *)
  let make () =
    Shard.create ~shard_replicas:replicas ~policy:(Shard.Best_effort 0.0)
      ~buffers:Buffer_sizing.no_cache ~shards prepared
  in
  let chill c =
    List.iter
      (fun s ->
        let fe = Shard.shard_frontend c ~shard:s in
        List.iter
          (fun r -> Vfs.purge_os_cache (Frontend.replica_vfs fe ~name:r))
          (Shard.replica_names c ~shard:s))
      (Shard.shard_names c)
  in
  (* One merged result against the oracles.  [fetch_allow] is the
     worst-case cost of the single fetch the deadline may leave in
     flight (plus the CPU of ranking evidence already paid for). *)
  let audit run ~deadline ~fetch_allow qi = function
    | Error e -> note run "query %d refused: %s" qi (Shard.error_message e)
    | Ok (res : Shard.result) ->
      (match deadline with
      | Some d when res.Shard.elapsed_ms > d +. fetch_allow ->
        incr overshoots;
        note run "query %d overshot the deadline: %.2f ms against %.2f + %.2f" qi
          res.Shard.elapsed_ms d fetch_allow
      | _ -> ());
      let ranges =
        List.filter_map
          (fun (rep : Shard.shard_report) ->
            match rep.Shard.r_status with
            | Shard.Answered -> Some rep.Shard.r_range
            | Shard.Degraded _ | Shard.Shed _ -> None)
          res.Shard.reports
      in
      let covered = List.fold_left (fun a (lo, hi) -> a + (hi - lo)) 0 ranges in
      let cov = res.Shard.coverage in
      if cov.Shard.docs_covered <> covered then
        note run "query %d: coverage claims %d docs, the answered reports cover %d" qi
          cov.Shard.docs_covered covered;
      if cov.Shard.answered + cov.Shard.degraded + cov.Shard.shed <> cov.Shard.shards_total then
        note run "query %d: coverage classes do not partition the shards" qi;
      if res.Shard.complete then begin
        incr full;
        if pairs res.Shard.ranked <> firstk oracle.(qi) then begin
          incr truncations;
          note run "query %d: full-coverage ranking differs from the unsharded index" qi
        end
      end
      else begin
        incr partial;
        if pairs res.Shard.ranked <> firstk (restrict ranges oracle.(qi)) then begin
          incr truncations;
          note run
            "query %d: partial ranking is not the unsharded index restricted to the covered \
             ranges"
            qi
        end
      end
  in
  (* Clean probe: arm counting plans on every replica, run the query
     set, demand complete bit-identical results, and take each member's
     serving-phase I/O count as its fault-point enumeration.  The
     sessions were opened by [make], so the counters cover only
     serving. *)
  let coord = make () in
  let members =
    List.concat_map
      (fun s ->
        let fe = Shard.shard_frontend coord ~shard:s in
        List.map (fun r -> (s, r, Frontend.replica_vfs fe ~name:r)) (Shard.replica_names coord ~shard:s))
      (Shard.shard_names coord)
  in
  List.iter (fun (_, _, vfs) -> Vfs.set_fault vfs (Vfs.Fault.none ())) members;
  let clean_ms = ref 0.0 in
  List.iteri
    (fun qi q ->
      chill coord;
      match Shard.run_query_string ~top_k coord q with
      | Error e -> note 0 "clean probe: query %d refused: %s" qi (Shard.error_message e)
      | Ok res ->
        if not res.Shard.complete then note 0 "clean probe: query %d not complete" qi;
        if pairs res.Shard.ranked <> firstk oracle.(qi) then
          note 0 "clean probe: query %d differs from the unsharded index" qi;
        if res.Shard.elapsed_ms > !clean_ms then clean_ms := res.Shard.elapsed_ms)
    shard_queries;
  let member_points = List.map (fun (s, r, vfs) -> (s, r, Vfs.fault_io_count vfs)) members in
  let points = List.fold_left (fun a (_, _, n) -> a + n) 0 member_points in
  (* The sweep.  The deadline leaves the clean run ample room, so
     degradation in these replays comes from the fault, not the budget;
     a stalled fetch is perceived at worst [stall_ms], so the overshoot
     allowance is [stall_ms] plus one clean run's worth of CPU. *)
  let stall_ms = 240.0 in
  let deadline = (4.0 *. !clean_ms) +. (2.0 *. stall_ms) in
  let fetch_allow = stall_ms +. !clean_ms +. 1.0 in
  let run_with ?deadline_ms ~fetch_allow arm =
    incr runs;
    let c = make () in
    arm c;
    List.iteri
      (fun qi q ->
        chill c;
        match Shard.run_query_string ~top_k ?deadline_ms c q with
        | exception Vfs.Crash -> note !runs "query %d: a device crash escaped the frontend" qi
        | r -> audit !runs ~deadline:deadline_ms ~fetch_allow qi r)
      shard_queries;
    c
  in
  List.iter
    (fun (sname, rname, n) ->
      for k = 1 to n do
        List.iter
          (fun plan ->
            ignore
              (run_with ~deadline_ms:deadline ~fetch_allow (fun c ->
                   let fe = Shard.shard_frontend c ~shard:sname in
                   Vfs.set_fault (Frontend.replica_vfs fe ~name:rname) plan)))
          [
            Vfs.Fault.crash_at_io k;
            Vfs.Fault.stall_at_io ~io:k ~ms:stall_ms;
            Vfs.Fault.flip_bit_on_read ~io:k ~seed:(seed + (17 * k));
          ]
      done)
    member_points;
  (* Blackouts: every replica of one shard dead from its first serving
     I/O.  No deadline, so the coordinator's retry-with-backoff runs its
     full course before the shard is shed; the merged result must be
     the restricted oracle. *)
  List.iter
    (fun sname ->
      let c =
        run_with ~fetch_allow:0.0 (fun c ->
            let fe = Shard.shard_frontend c ~shard:sname in
            List.iter
              (fun r -> Vfs.set_fault (Frontend.replica_vfs fe ~name:r) (Vfs.Fault.crash_at_io 1))
              (Shard.replica_names c ~shard:sname))
      in
      (* The dead shard must have been retried before it was declared
         down, and must be reported shed, not silently dropped. *)
      chill c;
      match Shard.run_query_string ~top_k c (List.hd shard_queries) with
      | Error e -> note !runs "blackout recheck refused: %s" (Shard.error_message e)
      | Ok res -> (
        match
          List.find_opt (fun r -> String.equal r.Shard.r_shard sname) res.Shard.reports
        with
        | None -> note !runs "blackout: shard %s missing from the reports" sname
        | Some rep ->
          (match rep.Shard.r_status with
          | Shard.Shed _ -> ()
          | Shard.Answered | Shard.Degraded _ ->
            note !runs "blackout: shard %s with every replica dead was not shed" sname);
          if rep.Shard.r_attempts < 2 then
            note !runs "blackout: shard %s was declared down after %d attempt(s), no retry"
              sname rep.Shard.r_attempts))
    (Shard.shard_names coord);
  (* Brownouts: every replica of one shard slowed below the hedge
     threshold, under a deadline a healthy shard meets — the slow shard
     either still answers (full coverage) or degrades at the deadline,
     overshooting by at most the one slow fetch in flight. *)
  let brown_ms = 40.0 in
  List.iter
    (fun sname ->
      let brown_deadline = !clean_ms +. (2.5 *. brown_ms) in
      ignore
        (run_with ~deadline_ms:brown_deadline ~fetch_allow:(brown_ms +. !clean_ms +. 1.0)
           (fun c ->
             let fe = Shard.shard_frontend c ~shard:sname in
             List.iter
               (fun r ->
                 Vfs.set_fault
                   (Frontend.replica_vfs fe ~name:r)
                   (Vfs.Fault.degraded_device ~file:(sname ^ ".mneme") ~ms:brown_ms))
               (Shard.replica_names c ~shard:sname))))
    (Shard.shard_names coord);
  if !partial = 0 then note 0 "no replay ever exercised a partial result";
  {
    st_shards = shards;
    st_members = List.length members;
    st_points = points;
    st_runs = !runs;
    st_full = !full;
    st_partial = !partial;
    st_overshoots = !overshoots;
    st_truncations = !truncations;
    st_problems = List.rev !problems;
  }

let pp_shard_outcome fmt o =
  Format.fprintf fmt
    "%d serving I/Os across %d members of %d shards: %d fault replays, %d full-coverage and %d \
     partial results audited, %d deadline overshoot(s), %d silent truncation(s)"
    o.st_points o.st_members o.st_shards o.st_runs o.st_full o.st_partial o.st_overshoots
    o.st_truncations;
  if o.st_problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.st_problems);
    List.iter
      (fun (r, p) ->
        if r = 0 then Format.fprintf fmt "@.  clean probe: %s" p
        else Format.fprintf fmt "@.  replay %d: %s" r p)
      o.st_problems
  end

(* ------------------------------------------------------------------ *)
(* Cache coherence under churn                                         *)

type cache_outcome = {
  ct_mutations : int;
  ct_comparisons : int;
  ct_result_hits : int;
  ct_block_hits : int;
  ct_invalidations : int;
  ct_problems : (int * string) list; (* (mutation, violation); 0 = audit phase *)
}

let cache_ok o =
  o.ct_problems = [] && o.ct_result_hits > 0 && o.ct_block_hits > 0 && o.ct_invalidations > 0

let cache_file = "cache.mneme"
let cache_log = "cache.log"

let run_cache ?(seed = 42) ?(docs = 18) () =
  if docs < 1 then invalid_arg "Torture.run_cache: docs must be positive";
  let model =
    Collections.Docmodel.make ~name:"cache-torture" ~n_docs:docs ~core_vocab:120
      ~mean_doc_len:30.0 ~hapax_prob:0.05 ~seed ()
  in
  let doc_arr = Array.of_seq (Collections.Synth.documents model) in
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.none ());
  let live = Live_index.create_mneme ~journal:cache_log vfs ~file:cache_file () in
  let rc = Result_cache.create ~capacity_bytes:(1 lsl 16) ~name:"torture.results" () in
  let bc = Util.Block_cache.create ~capacity_bytes:(1 lsl 18) ~name:"torture.blocks" () in
  let pins = ref [] in
  (* newest first *)
  let pinned_epochs () = List.map fst !pins in
  let rc_hook_drops = ref 0 in
  (* The publication hook, exactly as a serving frontend would register
     it: decoded blocks of any epoch no pin protects are dead the moment
     a new epoch publishes.  Results get a one-epoch grace window on
     purpose, so stale entries survive into the next epoch and the
     probe-time epoch check has something to purge — both invalidation
     mechanisms run in every churn step. *)
  Live_index.on_publish live (fun ~epoch ->
      ignore
        (Util.Block_cache.retain bc ~keep:(fun e ->
             e = epoch || List.mem e (pinned_epochs ())));
      rc_hook_drops := !rc_hook_drops + Result_cache.retain rc ~keep:(fun e -> e >= epoch - 1));
  (* Stable term ids for block-cache keys: within one epoch a term has
     exactly one record, so (term id, block, epoch) uniquely names the
     decoded bytes — the same reasoning the frontend applies with Mneme
     locators. *)
  let term_ids = Hashtbl.create 64 in
  let term_id term =
    match Hashtbl.find_opt term_ids term with
    | Some i -> i
    | None ->
      let i = Hashtbl.length term_ids in
      Hashtbl.add term_ids term i;
      i
  in
  let problems = ref [] in
  let note m fmt = Printf.ksprintf (fun s -> problems := (m, s) :: !problems) fmt in
  let comparisons = ref 0 in
  let stream ?cache record =
    let c = Inquery.Postings.cursor ?cache record in
    let acc = ref [] in
    while Inquery.Postings.cur_doc c <> max_int do
      acc := (Inquery.Postings.cur_doc c, Inquery.Postings.cur_tf c) :: !acc;
      Inquery.Postings.cursor_next c
    done;
    List.rev !acc
  in
  (* Read a pinned epoch through the block cache and bit-compare every
     (doc, tf) against a plain uncached decode of the same record. *)
  let audit_pin m (e, p) =
    List.iter
      (fun (term, _, _) ->
        match Live_index.pin_lookup live p term with
        | None -> ()
        | Some (record, _, _) ->
          incr comparisons;
          if stream ~cache:(bc, term_id term, e) record <> stream record then
            note m "pinned epoch %d: term %S reads differently through the block cache" e term)
      (List.filteri (fun i _ -> i < 4) (Live_index.pin_directory p))
  in
  (* One pass over the query set: the uncached latest-view search is the
     oracle; a probe that hits must be bit-identical, a miss fills. *)
  let query_pass m ~expect_hits =
    let epoch = Live_index.epoch live in
    List.iteri
      (fun qi q ->
        incr comparisons;
        let golden = score_fingerprint (Live_index.search ~top_k:10 live q) in
        let key = Printf.sprintf "%s|k=10" q in
        match Result_cache.find rc ~key ~epoch with
        | Some cached ->
          if cached <> golden then
            note m "query %d: cached ranking diverges from uncached at epoch %d" qi epoch
        | None ->
          if expect_hits then note m "query %d: entry filled this epoch did not hit" qi
          else
            Result_cache.insert rc ~key ~epoch ~coverage:Result_cache.Full
              ~cost:(64 + (40 * List.length golden))
              golden)
      epoch_queries
  in
  let ids = Array.make (Array.length doc_arr) (-1) in
  let m = ref 0 in
  let step mutate =
    incr m;
    mutate ();
    query_pass !m ~expect_hits:false;
    query_pass !m ~expect_hits:true;
    if !m mod 4 = 1 then pins := (Live_index.epoch live, Live_index.pin live) :: !pins;
    List.iter (audit_pin !m) !pins
  in
  Array.iteri
    (fun d doc ->
      step (fun () ->
          ids.(d) <-
            Live_index.add_document live ~doc_id:doc.Collections.Synth.id
              (Collections.Synth.document_text doc));
      if d mod 3 = 2 then step (fun () -> ignore (Live_index.delete_document live ids.(d - 2))))
    doc_arr;
  (* Audit phase: gc under pins must leave pinned epochs readable
     through the cache, and no cache may hold an epoch the collector
     reclaimed. *)
  let live_epoch = Live_index.epoch live in
  ignore (Live_index.gc live);
  List.iter (audit_pin 0) !pins;
  let allowed = live_epoch :: pinned_epochs () in
  List.iter
    (fun e ->
      if not (List.mem e allowed) then
        note 0 "block cache holds collected epoch %d after gc under pins" e)
    (Util.Block_cache.epochs bc);
  List.iter (fun (_, p) -> Live_index.release live p) !pins;
  ignore (Live_index.gc live);
  ignore (Util.Block_cache.retain bc ~keep:(fun e -> e = live_epoch));
  ignore (Result_cache.retain rc ~keep:(fun e -> e = live_epoch));
  List.iter
    (fun e -> if e <> live_epoch then note 0 "cache holds epoch %d after the final purge" e)
    (Util.Block_cache.epochs bc @ Result_cache.epochs rc);
  (* The grace window means probe-time purges must have fired over and
     above the hook's drops. *)
  let rc_stats = Result_cache.stats rc and bc_stats = Util.Block_cache.stats bc in
  if rc_stats.Util.Cache_stats.invalidations <= !rc_hook_drops then
    note 0 "probe-time epoch check never purged a stale result";
  {
    ct_mutations = !m;
    ct_comparisons = !comparisons;
    ct_result_hits = rc_stats.Util.Cache_stats.hits;
    ct_block_hits = bc_stats.Util.Cache_stats.hits;
    ct_invalidations =
      rc_stats.Util.Cache_stats.invalidations + bc_stats.Util.Cache_stats.invalidations;
    ct_problems = List.rev !problems;
  }

let pp_cache_outcome fmt o =
  Format.fprintf fmt
    "%d mutations, %d cached-vs-uncached comparisons: %d result hits, %d block hits, %d \
     invalidations"
    o.ct_mutations o.ct_comparisons o.ct_result_hits o.ct_block_hits o.ct_invalidations;
  if o.ct_problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.ct_problems);
    List.iter
      (fun (m, p) ->
        if m = 0 then Format.fprintf fmt "@.  audit: %s" p
        else Format.fprintf fmt "@.  mutation %d: %s" m p)
      o.ct_problems
  end
