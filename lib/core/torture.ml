let file = "torture.mneme"
let log_file = "torture.log"

(* ------------------------------------------------------------------ *)
(* The workload: a journaled build followed by update batches, every
   transaction ending with a finalize so the on-disk store is
   self-describing at each commit point.  Everything is driven by a
   seeded PRNG, so a replay performs the identical operation (and
   physical I/O) sequence until its crash point fires.  The [mirror]
   table tracks what a perfect store would hold; [committed] receives it
   after each commit so the caller can snapshot expected contents per
   generation. *)

let payload rng cls =
  let len =
    match cls with
    | 0 -> 1 + Random.State.int rng 12 (* fits the small pool's 12-byte slots *)
    | 1 -> 64 + Random.State.int rng 1985
    | _ -> 5000 + Random.State.int rng 4001
  in
  Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))

let class_of_size n = if n <= 12 then 0 else if n <= 4096 then 1 else 2

let workload vfs ~seed ~docs ~update_batches ~txn_begin ~committed ~got_gen =
  let rng = Random.State.make [| seed |] in
  let store = Mneme.Store.create vfs file in
  let small = Mneme.Store.add_pool store Mneme.Policy.small in
  let medium = Mneme.Store.add_pool store Mneme.Policy.medium in
  let large = Mneme.Store.add_pool store Mneme.Policy.large in
  List.iter
    (fun (pool, name) ->
      Mneme.Store.attach_buffer pool
        (Mneme.Buffer_pool.create ~name ~capacity:(256 * 1024) ()))
    [ (small, "small"); (medium, "medium"); (large, "large") ];
  Mneme.Store.enable_journal store ~log_file;
  let pool_for cls = match cls with 0 -> small | 1 -> medium | _ -> large in
  let mirror = Hashtbl.create 64 in
  let live = ref [] in
  let gen = ref (-1) in
  let fresh_object () =
    let cls = Random.State.int rng 3 in
    let b = payload rng cls in
    let oid = Mneme.Store.allocate (pool_for cls) b in
    Hashtbl.replace mirror oid (Bytes.copy b);
    live := oid :: !live
  in
  (* Transaction 0: the index build. *)
  txn_begin 0;
  Mneme.Store.transact store (fun () ->
      let gb = Bytes.of_string "gen 0" in
      let g = Mneme.Store.allocate small gb in
      gen := g;
      got_gen g;
      Hashtbl.replace mirror g gb;
      for _ = 1 to docs do
        fresh_object ()
      done;
      Mneme.Store.finalize store);
  committed 0 mirror;
  (* Update batches: modify, delete, allocate, bump the generation. *)
  for i = 1 to update_batches do
    txn_begin i;
    Mneme.Store.transact store (fun () ->
        let arr = Array.of_list !live in
        let n_mod = max 1 (Array.length arr / 4) in
        for _ = 1 to n_mod do
          let oid = arr.(Random.State.int rng (Array.length arr)) in
          match Hashtbl.find_opt mirror oid with
          | None -> () (* deleted earlier in this batch *)
          | Some old ->
            let b = payload rng (class_of_size (Bytes.length old)) in
            Mneme.Store.modify store oid b;
            Hashtbl.replace mirror oid (Bytes.copy b)
        done;
        (match !live with
        | victim :: rest when List.length rest > 2 ->
          Mneme.Store.delete store victim;
          Hashtbl.remove mirror victim;
          live := rest
        | _ -> ());
        fresh_object ();
        fresh_object ();
        let gb = Bytes.of_string (Printf.sprintf "gen %d" i) in
        Mneme.Store.modify store !gen gb;
        Hashtbl.replace mirror !gen gb;
        Mneme.Store.finalize store);
    committed i mirror
  done

(* ------------------------------------------------------------------ *)
(* Crash-point enumeration. *)

type plan = {
  seed : int;
  docs : int;
  update_batches : int;
  crash_points : int;
  snapshots : (Mneme.Oid.t, bytes) Hashtbl.t array; (* index = generation *)
  gen_oid : Mneme.Oid.t;
}

let prepare ?(seed = 42) ?(docs = 12) ?(update_batches = 3) () =
  if docs < 0 || update_batches < 0 then
    invalid_arg "Torture.prepare: docs and update_batches must be non-negative";
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.none ());
  let snapshots = Array.init (update_batches + 1) (fun _ -> Hashtbl.create 0) in
  let gen_oid = ref (-1) in
  workload vfs ~seed ~docs ~update_batches
    ~txn_begin:(fun _ -> ())
    ~committed:(fun i mirror -> snapshots.(i) <- Hashtbl.copy mirror)
    ~got_gen:(fun g -> gen_oid := g);
  {
    seed;
    docs;
    update_batches;
    crash_points = Vfs.fault_io_count vfs;
    snapshots;
    gen_oid = !gen_oid;
  }

let crash_points plan = plan.crash_points

type point_report = {
  crash_at : int;
  recovery : Mneme.Journal.recovery;
  opened : bool;
  problems : string list;
}

let run_point plan k =
  if k < 1 || k > plan.crash_points then
    invalid_arg
      (Printf.sprintf "Torture.run_point: crash point %d outside 1..%d" k plan.crash_points);
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let vfs = Vfs.create () in
  Vfs.set_fault vfs (Vfs.Fault.crash_at_io k);
  let started = ref 0 and completed = ref 0 in
  (try
     workload vfs ~seed:plan.seed ~docs:plan.docs ~update_batches:plan.update_batches
       ~txn_begin:(fun _ -> incr started)
       ~committed:(fun _ _ -> incr completed)
       ~got_gen:(fun _ -> ());
     note "workload ran to completion without crashing at io %d" k
   with Vfs.Crash -> ());
  (* Reboot: only durable blocks survive; recover, then audit. *)
  let img = Vfs.crash_image vfs in
  let recovery = Mneme.Store.recover_journal img ~file ~log_file in
  let opened =
    match Mneme.Store.open_existing img file with
    | exception Mneme.Store.Corrupt msg ->
      if !completed > 0 then
        note "store unopenable after %d completed commits: %s" !completed msg;
      false
    | store ->
      List.iter
        (fun (policy, name) ->
          let pool = Mneme.Store.add_pool store policy in
          Mneme.Store.attach_buffer pool
            (Mneme.Buffer_pool.create ~name ~capacity:(256 * 1024) ()))
        [
          (Mneme.Policy.small, "small");
          (Mneme.Policy.medium, "medium");
          (Mneme.Policy.large, "large");
        ];
      (match Mneme.Store.get store plan.gen_oid with
      | exception e -> note "generation object unreadable: %s" (Printexc.to_string e)
      | gb -> (
        match Scanf.sscanf_opt (Bytes.to_string gb) "gen %d" (fun g -> g) with
        | None -> note "generation object holds %S" (Bytes.to_string gb)
        | Some g ->
          (* The recovered generation must be a transaction the workload
             committed (>= completed - 1: a commit the replay saw finish
             cannot be rolled back) or at most one it had started
             (<= started - 1: the log fsync may have sealed a commit the
             crash then interrupted). *)
          if g < !completed - 1 || g > !started - 1 then
            note "recovered generation %d outside [%d, %d]" g (!completed - 1) (!started - 1)
          else begin
            let report = Mneme.Check.run store in
            if not (Mneme.Check.ok report) then
              note "fsck: %s" (Format.asprintf "%a" Mneme.Check.pp_report report);
            let snap = plan.snapshots.(g) in
            let expect = Hashtbl.length snap in
            if Mneme.Store.object_count store <> expect then
              note "store holds %d objects, generation %d committed %d"
                (Mneme.Store.object_count store)
                g expect;
            Hashtbl.iter
              (fun oid b ->
                match Mneme.Store.get store oid with
                | exception e ->
                  note "object %d lost after recovery: %s" oid (Printexc.to_string e)
                | b' ->
                  if not (Bytes.equal b b') then
                    note "object %d contents differ after recovery" oid)
              snap
          end));
      true
  in
  { crash_at = k; recovery; opened; problems = List.rev !problems }

type outcome = {
  crash_points : int;
  opened : int;
  unopenable : int;
  replayed : int;
  discarded : int;
  clean : int;
  problems : (int * string) list;
}

let run ?seed ?docs ?update_batches () =
  let plan = prepare ?seed ?docs ?update_batches () in
  let opened = ref 0
  and unopenable = ref 0
  and replayed = ref 0
  and discarded = ref 0
  and clean = ref 0
  and problems = ref [] in
  for k = 1 to plan.crash_points do
    let r = run_point plan k in
    if r.opened then incr opened else incr unopenable;
    (match r.recovery with
    | Mneme.Journal.Replayed _ -> incr replayed
    | Mneme.Journal.Discarded _ -> incr discarded
    | Mneme.Journal.Clean -> incr clean);
    List.iter (fun p -> problems := (k, p) :: !problems) r.problems
  done;
  {
    crash_points = plan.crash_points;
    opened = !opened;
    unopenable = !unopenable;
    replayed = !replayed;
    discarded = !discarded;
    clean = !clean;
    problems = List.rev !problems;
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d crash points: %d recovered stores, %d pre-commit images; recovery %d replayed / %d \
     discarded / %d clean logs"
    o.crash_points o.opened o.unopenable o.replayed o.discarded o.clean;
  if o.problems <> [] then begin
    Format.fprintf fmt "@.%d problem(s):" (List.length o.problems);
    List.iter (fun (k, p) -> Format.fprintf fmt "@.  crash at io %d: %s" k p) o.problems
  end
