(** The inverted-file-index service interface.

    INQUERY's retrieval engine needs exactly this from its data
    management subsystem: fetch the record for a dictionary entry, and
    (optionally) reserve records a query is about to use.  The B-tree
    package and the Mneme store each implement it; swapping one for the
    other is the entire point of the paper. *)

type t = {
  name : string;  (** "btree", "mneme-nocache", "mneme-cache" *)
  fetch : Inquery.Dictionary.entry -> bytes option;
      (** Retrieve the inverted list record for a term. *)
  reserve : Inquery.Dictionary.entry list -> unit -> unit;
      (** Pin already-resident records before query processing; the
          returned thunk releases them.  A no-op for backends without
          user-space caching. *)
  buffer_stats : unit -> (string * Mneme.Buffer_pool.stats) list;
      (** Per-buffer reference/hit statistics (empty for the B-tree). *)
  reset_buffer_stats : unit -> unit;
  file_size : unit -> int;
  epoch : unit -> int;
      (** The published epoch this session serves ({!Mneme.Store.epoch};
          0 for backends without epoch versioning). *)
}

val no_reserve : Inquery.Dictionary.entry list -> unit -> unit
(** The trivial reservation. *)
