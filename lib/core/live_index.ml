module Tmap = Map.Make (String)
module Imap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Epoch snapshots                                                     *)

type term_info = { ti_oid : int; ti_df : int; ti_cf : int }

(* An immutable image of the object directory at one published epoch:
   everything a reader needs to evaluate queries against that version
   without consulting any mutable state. *)
type snapshot = {
  sn_epoch : int;
  sn_terms : term_info Tmap.t;
  sn_doc_lens : int Imap.t;
  sn_total_len : int;
  sn_next_doc : int;
  sn_meta : string Tmap.t; (* opaque key/value pairs riding the root *)
}

type mneme_pools = {
  store : Mneme.Store.t;
  small : Mneme.Store.pool;
  medium : Mneme.Store.pool;
  large : Mneme.Store.pool;
}

type mneme_state = {
  mutable pools : mneme_pools;
  thresholds : Partition.thresholds;
  epochs : Mneme.Epoch.t;
  mutable snap : snapshot; (* the latest published epoch's image *)
  mutable root_oid : int; (* sealed root of [snap]; -1 = never published *)
  journaled : bool;
}

type backend = Btree_backend of Btree.t | Mneme_backend of mneme_state

type t = {
  vfs : Vfs.t;
  mutable backend : backend;
  dict : Inquery.Dictionary.t;
  stopwords : Inquery.Stopwords.t option;
  stem : bool;
  doc_lens : (int, int) Hashtbl.t;
  mutable total_len : int;
  mutable next_doc_id : int;
  mutable live_meta : string Tmap.t; (* carried into every published root *)
  mutable publish_hooks : (epoch:int -> unit) list; (* registration order *)
}

let empty_snapshot epoch =
  {
    sn_epoch = epoch;
    sn_terms = Tmap.empty;
    sn_doc_lens = Imap.empty;
    sn_total_len = 0;
    sn_next_doc = 0;
    sn_meta = Tmap.empty;
  }

(* The root payload: next-doc, total length, per-document lengths and
   the term directory (term, locator, df, cf).  Tmap/Imap iteration is
   sorted, so the encoding is deterministic — byte-identical roots for
   identical directories, whatever mutation order built them. *)
let encode_snapshot snap =
  let b = Buffer.create 4096 in
  Util.Bin.buf_u32 b snap.sn_next_doc;
  Util.Bin.buf_u64 b snap.sn_total_len;
  Util.Bin.buf_u32 b (Imap.cardinal snap.sn_doc_lens);
  Imap.iter
    (fun doc len ->
      Util.Varint.encode b doc;
      Util.Varint.encode b len)
    snap.sn_doc_lens;
  Util.Bin.buf_u32 b (Tmap.cardinal snap.sn_terms);
  Tmap.iter
    (fun term ti ->
      Util.Bin.buf_string b term;
      Util.Varint.encode b (ti.ti_oid + 1);
      Util.Varint.encode b ti.ti_df;
      Util.Varint.encode b ti.ti_cf)
    snap.sn_terms;
  Util.Bin.buf_u32 b (Tmap.cardinal snap.sn_meta);
  Tmap.iter
    (fun k v ->
      Util.Bin.buf_string b k;
      Util.Bin.buf_string b v)
    snap.sn_meta;
  Buffer.to_bytes b

let decode_snapshot ~epoch payload =
  try
    let next_doc = Util.Bin.get_u32 payload 0 in
    let total_len = Util.Bin.get_u64 payload 4 in
    let n_docs = Util.Bin.get_u32 payload 12 in
    let pos = ref 16 in
    let doc_lens = ref Imap.empty in
    for _ = 1 to n_docs do
      let doc, p = Util.Varint.decode payload ~pos:!pos in
      let len, p = Util.Varint.decode payload ~pos:p in
      doc_lens := Imap.add doc len !doc_lens;
      pos := p
    done;
    let n_terms = Util.Bin.get_u32 payload !pos in
    pos := !pos + 4;
    let terms = ref Tmap.empty in
    for _ = 1 to n_terms do
      let term, p = Util.Bin.get_string payload !pos in
      let oid1, p = Util.Varint.decode payload ~pos:p in
      let df, p = Util.Varint.decode payload ~pos:p in
      let cf, p = Util.Varint.decode payload ~pos:p in
      terms := Tmap.add term { ti_oid = oid1 - 1; ti_df = df; ti_cf = cf } !terms;
      pos := p
    done;
    let meta = ref Tmap.empty in
    (* Roots sealed before metadata existed simply end here. *)
    if !pos < Bytes.length payload then begin
      let n_meta = Util.Bin.get_u32 payload !pos in
      pos := !pos + 4;
      for _ = 1 to n_meta do
        let k, p = Util.Bin.get_string payload !pos in
        let v, p = Util.Bin.get_string payload p in
        meta := Tmap.add k v !meta;
        pos := p
      done
    end;
    {
      sn_epoch = epoch;
      sn_terms = !terms;
      sn_doc_lens = !doc_lens;
      sn_total_len = total_len;
      sn_next_doc = next_doc;
      sn_meta = !meta;
    }
  with Invalid_argument _ | Failure _ ->
    raise (Mneme.Store.Corrupt "Live_index: root payload is malformed")

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let make ?stopwords ?(stem = false) vfs backend dict doc_lengths =
  let doc_lens = Hashtbl.create (max 64 (List.length doc_lengths)) in
  let total_len = ref 0 in
  let next = ref 0 in
  List.iter
    (fun (doc, len) ->
      Hashtbl.replace doc_lens doc len;
      total_len := !total_len + len;
      if doc >= !next then next := doc + 1)
    doc_lengths;
  {
    vfs;
    backend;
    dict;
    stopwords;
    stem;
    doc_lens;
    total_len = !total_len;
    next_doc_id = !next;
    live_meta = Tmap.empty;
    publish_hooks = [];
  }

let wrap_btree ?stopwords ?stem vfs ~tree ~dict ~doc_lengths =
  make ?stopwords ?stem vfs (Btree_backend tree) dict doc_lengths

let pools_of_store store =
  {
    store;
    small = Mneme.Store.pool store "small";
    medium = Mneme.Store.pool store "medium";
    large = Mneme.Store.pool store "large";
  }

(* Census every live oid in the store into the epoch manager.  The walk
   reads only the (cached) slot tables; object sizes come from segment
   directories when [sized] (one pass of segment faults — the reopen
   path pays it so GC byte accounting is exact). *)
let census_oids ?(sized = false) store ~f =
  List.iter
    (fun pool ->
      List.iter
        (fun (lseg, slots) ->
          Array.iteri
            (fun slot pseg ->
              if pseg >= 0 then begin
                let oid = Mneme.Oid.make ~lseg ~slot in
                let size =
                  if sized then Option.value ~default:0 (Mneme.Store.object_size store oid)
                  else 0
                in
                f ~oid ~size
              end)
            slots)
        (Mneme.Store.pool_slot_tables pool))
    (Mneme.Store.pools store)

let snapshot_of_dict ~epoch ?(meta = Tmap.empty) dict doc_lens ~total_len ~next_doc =
  let terms = ref Tmap.empty in
  Inquery.Dictionary.iter dict (fun e ->
      if e.Inquery.Dictionary.locator >= 0 then
        terms :=
          Tmap.add e.Inquery.Dictionary.term
            {
              ti_oid = e.Inquery.Dictionary.locator;
              ti_df = e.Inquery.Dictionary.df;
              ti_cf = e.Inquery.Dictionary.cf;
            }
            !terms);
  let dl = Hashtbl.fold (fun d l acc -> Imap.add d l acc) doc_lens Imap.empty in
  {
    sn_epoch = epoch;
    sn_terms = !terms;
    sn_doc_lens = dl;
    sn_total_len = total_len;
    sn_next_doc = next_doc;
    sn_meta = meta;
  }

let wrap_mneme ?stopwords ?stem ?(thresholds = Partition.default) vfs ~store ~dict ~doc_lengths
    =
  let epoch = Mneme.Store.epoch store in
  let epochs = Mneme.Epoch.create ~epoch in
  (* Everything already in the store is live in the current epoch;
     sizes of pre-existing objects are not censused (they would fault
     every segment), so GC byte counts cover only objects written
     through this live index. *)
  census_oids store ~f:(fun ~oid ~size -> Mneme.Epoch.adopt epochs ~oid ~size);
  let doc_lens = Hashtbl.create (max 64 (List.length doc_lengths)) in
  let total_len = ref 0 and next_doc = ref 0 in
  List.iter
    (fun (doc, len) ->
      Hashtbl.replace doc_lens doc len;
      total_len := !total_len + len;
      if doc >= !next_doc then next_doc := doc + 1)
    doc_lengths;
  let snap = snapshot_of_dict ~epoch dict doc_lens ~total_len:!total_len ~next_doc:!next_doc in
  let st =
    {
      pools = pools_of_store store;
      thresholds;
      epochs;
      snap;
      root_oid = (match Mneme.Store.root store with Some oid -> oid | None -> -1);
      journaled = Mneme.Store.journal store <> None;
    }
  in
  make ?stopwords ?stem vfs (Mneme_backend st) dict doc_lengths

let create_btree ?stopwords ?stem vfs ~file () =
  let tree = Btree.create vfs file () in
  make ?stopwords ?stem vfs (Btree_backend tree) (Inquery.Dictionary.create ()) []

let default_live_buffers = { Buffer_sizing.small = 65536; medium = 65536; large = 65536 }

let standard_pools ?(buffers = default_live_buffers) store =
  List.iter
    (fun (policy, capacity) ->
      let pool = Mneme.Store.add_pool store policy in
      Mneme.Store.attach_buffer pool
        (Mneme.Buffer_pool.create ~name:policy.Mneme.Policy.name ~capacity ()))
    [
      (Mneme.Policy.small, buffers.Buffer_sizing.small);
      (Mneme.Policy.medium, buffers.Buffer_sizing.medium);
      (Mneme.Policy.large, buffers.Buffer_sizing.large);
    ]

let create_mneme ?stopwords ?stem ?buffers ?journal vfs ~file () =
  let store = Mneme.Store.create vfs file in
  standard_pools ?buffers store;
  (match journal with
  | Some log_file -> Mneme.Store.enable_journal store ~log_file
  | None -> ());
  let st =
    {
      pools = pools_of_store store;
      thresholds = Partition.default;
      epochs = Mneme.Epoch.create ~epoch:0;
      snap = empty_snapshot 0;
      root_oid = -1;
      journaled = journal <> None;
    }
  in
  make ?stopwords ?stem vfs (Mneme_backend st) (Inquery.Dictionary.create ()) []

let open_mneme ?stopwords ?stem ?buffers ?(thresholds = Partition.default) ?journal vfs
    ~file () =
  (match journal with
  | Some log_file -> ignore (Mneme.Store.recover_journal vfs ~file ~log_file)
  | None -> ());
  let store = Mneme.Store.open_existing vfs file in
  standard_pools ?buffers store;
  (match journal with
  | Some log_file -> Mneme.Store.enable_journal store ~log_file
  | None -> ());
  let epoch = Mneme.Store.epoch store in
  let root_oid =
    match Mneme.Store.root store with
    | Some oid -> oid
    | None -> raise (Mneme.Store.Corrupt "Live_index.open_mneme: store has no published root")
  in
  let sealed =
    match Mneme.Store.get_opt store root_oid with
    | Some b -> b
    | None ->
      raise
        (Mneme.Store.Corrupt
           (Printf.sprintf "Live_index.open_mneme: root oid %d resolves to no object" root_oid))
  in
  let payload =
    match Mneme.Epoch.unseal sealed with
    | Ok (e, p) when e = epoch -> p
    | Ok (e, _) ->
      raise
        (Mneme.Store.Corrupt
           (Printf.sprintf "Live_index.open_mneme: root sealed for epoch %d, header says %d" e
              epoch))
    | Error msg -> raise (Mneme.Store.Corrupt ("Live_index.open_mneme: " ^ msg))
  in
  let snap = decode_snapshot ~epoch payload in
  (* Rebuild the latest view from the snapshot.  Tmap iteration is
     sorted, so dictionary ids are assigned deterministically. *)
  let dict = Inquery.Dictionary.create () in
  Tmap.iter
    (fun term ti ->
      let e = Inquery.Dictionary.intern dict term in
      e.Inquery.Dictionary.df <- ti.ti_df;
      e.Inquery.Dictionary.cf <- ti.ti_cf;
      e.Inquery.Dictionary.locator <- ti.ti_oid)
    snap.sn_terms;
  let doc_lengths = Imap.fold (fun d l acc -> (d, l) :: acc) snap.sn_doc_lens [] |> List.rev in
  (* Objects the root names (plus the root itself) are live; anything
     else in the store is an orphan of an unpublished or superseded
     epoch — stale, immediately reclaimable by [gc]. *)
  let epochs = Mneme.Epoch.create ~epoch in
  let directory = Hashtbl.create 256 in
  Tmap.iter (fun _ ti -> if ti.ti_oid >= 0 then Hashtbl.replace directory ti.ti_oid ()) snap.sn_terms;
  Hashtbl.replace directory root_oid ();
  census_oids ~sized:true store ~f:(fun ~oid ~size ->
      if Hashtbl.mem directory oid then Mneme.Epoch.adopt epochs ~oid ~size
      else Mneme.Epoch.adopt_stale epochs ~oid ~size);
  let st =
    {
      pools = pools_of_store store;
      thresholds;
      epochs;
      snap;
      root_oid;
      journaled = journal <> None;
    }
  in
  let t = make ?stopwords ?stem vfs (Mneme_backend st) dict doc_lengths in
  t.next_doc_id <- max t.next_doc_id snap.sn_next_doc;
  t.live_meta <- snap.sn_meta;
  t

let backend_name t = match t.backend with Btree_backend _ -> "btree" | Mneme_backend _ -> "mneme"

(* ------------------------------------------------------------------ *)
(* Record access                                                       *)

let fetch_record t entry =
  match t.backend with
  | Btree_backend tree -> Btree.lookup tree entry.Inquery.Dictionary.id
  | Mneme_backend { pools = { store; _ }; _ } ->
    let locator = entry.Inquery.Dictionary.locator in
    if locator < 0 then None else Mneme.Store.get_opt store locator

let cow_pool st size =
  match Partition.classify ~thresholds:st.thresholds size with
  | Partition.Small -> st.pools.small
  | Partition.Medium -> st.pools.medium
  | Partition.Large -> st.pools.large

(* Store [record] as the inverted list of [entry].  The B-tree replaces
   in place; Mneme follows the copy-on-write discipline — a {e new}
   object is always allocated (in the size class the record now
   belongs to) and the old one is retired, never overwritten or freed:
   readers pinned to earlier epochs keep fetching it untouched until
   {!gc} proves no pin can reach it. *)
let store_record t entry record =
  match t.backend with
  | Btree_backend tree -> Btree.insert tree entry.Inquery.Dictionary.id record
  | Mneme_backend st ->
    let size = Bytes.length record in
    let oid = Mneme.Store.allocate (cow_pool st size) record in
    Mneme.Epoch.born st.epochs ~oid ~size;
    let old = entry.Inquery.Dictionary.locator in
    if old >= 0 then Mneme.Epoch.retired st.epochs ~oid:old;
    entry.Inquery.Dictionary.locator <- oid

let drop_record t entry =
  (match t.backend with
  | Btree_backend tree -> ignore (Btree.delete tree entry.Inquery.Dictionary.id)
  | Mneme_backend st ->
    let locator = entry.Inquery.Dictionary.locator in
    if locator >= 0 then Mneme.Epoch.retired st.epochs ~oid:locator);
  entry.Inquery.Dictionary.locator <- -1

(* ------------------------------------------------------------------ *)
(* Epoch publication                                                   *)

(* Build, seal and install the next epoch's root.  Called with the term
   writes already issued; everything here still rides the same journal
   batch, so the CRC-sealed commit record is the single point at which
   the new epoch — objects, directory, header root switch — becomes
   real.  A crash anywhere before the log fsync recovers to the old
   epoch in full; anywhere after, to the new epoch in full. *)
let install_root t st =
  let epoch = Mneme.Epoch.latest st.epochs + 1 in
  let snap =
    snapshot_of_dict ~epoch ~meta:t.live_meta t.dict t.doc_lens ~total_len:t.total_len
      ~next_doc:t.next_doc_id
  in
  let sealed = Mneme.Epoch.seal ~epoch (encode_snapshot snap) in
  let root = Mneme.Store.allocate (cow_pool st (Bytes.length sealed)) sealed in
  Mneme.Epoch.born st.epochs ~oid:root ~size:(Bytes.length sealed);
  if st.root_oid >= 0 then Mneme.Epoch.retired st.epochs ~oid:st.root_oid;
  Mneme.Store.set_root st.pools.store ~epoch ~root:(Some root);
  (snap, root)

(* Run one mutation and publish the epoch it creates.  Journaled: the
   whole thing — COW writes, sealed root, finalized tables and header —
   is one transaction.  Unjournaled: the epoch is published in memory
   and persists at the next [flush] (no crash-safety claim, exactly as
   before).  If the mutation raises (journaled case: the batch aborts),
   the in-memory handle may disagree with the store — discard it and
   re-open, the {!Mneme.Store.transact} contract. *)
let mutate t st f =
  let body () =
    let r = f () in
    let snap, root = install_root t st in
    (r, snap, root)
  in
  let r, snap, root =
    if st.journaled then
      Mneme.Store.transact st.pools.store (fun () ->
          let r = body () in
          Mneme.Store.finalize st.pools.store;
          r)
    else body ()
  in
  ignore (Mneme.Epoch.publish st.epochs);
  st.snap <- snap;
  st.root_oid <- root;
  (* Publication hooks fire only once the new epoch is installed and the
     in-memory handle serves it — the point at which anything cached
     under an older epoch is officially stale.  {!Ingest.flush_batch}
     publishes through this same path, so batched ingestion fires them
     too.  Hook exceptions propagate: the epoch is already durable, and
     a cache that cannot invalidate must not fail silently. *)
  List.iter (fun hook -> hook ~epoch:snap.sn_epoch) t.publish_hooks;
  r

(* ------------------------------------------------------------------ *)
(* Addition                                                            *)

let normalise t term =
  let stopped =
    match t.stopwords with Some sw -> Inquery.Stopwords.is_stopword sw term | None -> false
  in
  if stopped then None else Some (if t.stem then Inquery.Stemmer.stem term else term)

(* Tokenize [text] through the index's stopword/stemming configuration:
   per-term ascending position lists in first-occurrence order, plus the
   indexed length — exactly what one document contributes, whether it is
   applied here or buffered by {!Ingest} first. *)
let tokenize t text =
  let positions = Hashtbl.create 32 in
  let order = ref [] in
  let indexed =
    Inquery.Lexer.fold_tokens text ~init:0 ~f:(fun n term position ->
        match normalise t term with
        | None -> n
        | Some term ->
          (match Hashtbl.find_opt positions term with
          | Some ps -> Hashtbl.replace positions term (position :: ps)
          | None ->
            Hashtbl.replace positions term [ position ];
            order := term :: !order);
          n + 1)
  in
  (List.rev_map (fun term -> (term, List.rev (Hashtbl.find positions term))) !order, indexed)

(* Merge one term's new postings (ascending docs, all beyond the current
   record) into its inverted list. *)
let apply_postings t term docps =
  let entry = Inquery.Dictionary.intern t.dict term in
  let addition = Inquery.Postings.encode docps in
  let record =
    match fetch_record t entry with
    | None -> addition
    | Some existing -> Inquery.Postings.merge existing addition
  in
  store_record t entry record;
  entry.Inquery.Dictionary.df <- entry.Inquery.Dictionary.df + List.length docps;
  entry.Inquery.Dictionary.cf <-
    entry.Inquery.Dictionary.cf
    + List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 docps

let add_document_body t doc text =
  t.next_doc_id <- doc + 1;
  let terms, indexed = tokenize t text in
  List.iter (fun (term, ps) -> apply_postings t term [ (doc, ps) ]) terms;
  Hashtbl.replace t.doc_lens doc indexed;
  t.total_len <- t.total_len + indexed;
  doc

let add_document t ?doc_id text =
  let doc =
    match doc_id with
    | None -> t.next_doc_id
    | Some id ->
      if id < t.next_doc_id then
        invalid_arg "Live_index.add_document: id must exceed all existing ids";
      id
  in
  match t.backend with
  | Btree_backend _ -> add_document_body t doc text
  | Mneme_backend st -> mutate t st (fun () -> add_document_body t doc text)

(* ------------------------------------------------------------------ *)
(* Deletion                                                            *)

let delete_document_body t doc len =
  (* No forward index: every inverted list must be examined — the
     cost structure the paper describes for deletion. *)
  Inquery.Dictionary.iter t.dict (fun entry ->
      match fetch_record t entry with
      | None -> ()
      | Some record ->
        let tf = ref 0 in
        Inquery.Postings.fold_docs record ~init:() ~f:(fun () ~doc:d ~tf:f ->
            if d = doc then tf := f);
        if !tf > 0 then begin
          (match Inquery.Postings.remove_docs record (fun d -> d = doc) with
          | Some record' -> store_record t entry record'
          | None -> drop_record t entry);
          entry.Inquery.Dictionary.df <- entry.Inquery.Dictionary.df - 1;
          entry.Inquery.Dictionary.cf <- entry.Inquery.Dictionary.cf - !tf
        end);
  Hashtbl.remove t.doc_lens doc;
  t.total_len <- t.total_len - len

let delete_document t doc =
  match Hashtbl.find_opt t.doc_lens doc with
  | None -> false
  | Some len ->
    (match t.backend with
    | Btree_backend _ -> delete_document_body t doc len
    | Mneme_backend st -> mutate t st (fun () -> delete_document_body t doc len));
    true

(* ------------------------------------------------------------------ *)
(* Batched folding (the ingestion merge path)                          *)

(* Remove a whole set of documents in one dictionary sweep, instead of
   [delete_document_body]'s one-sweep-per-document. *)
let delete_batch_body t docs =
  let doomed = Hashtbl.create (List.length docs) in
  List.iter
    (fun doc ->
      match Hashtbl.find_opt t.doc_lens doc with
      | Some len -> Hashtbl.replace doomed doc len
      | None -> ())
    docs;
  if Hashtbl.length doomed > 0 then begin
    Inquery.Dictionary.iter t.dict (fun entry ->
        match fetch_record t entry with
        | None -> ()
        | Some record ->
          let df = ref 0 and cf = ref 0 in
          Inquery.Postings.fold_docs record ~init:() ~f:(fun () ~doc ~tf ->
              if Hashtbl.mem doomed doc then begin
                incr df;
                cf := !cf + tf
              end);
          if !df > 0 then begin
            (match Inquery.Postings.remove_docs record (fun d -> Hashtbl.mem doomed d) with
            | Some record' -> store_record t entry record'
            | None -> drop_record t entry);
            entry.Inquery.Dictionary.df <- entry.Inquery.Dictionary.df - !df;
            entry.Inquery.Dictionary.cf <- entry.Inquery.Dictionary.cf - !cf
          end);
    Hashtbl.iter
      (fun doc len ->
        Hashtbl.remove t.doc_lens doc;
        t.total_len <- t.total_len - len)
      doomed
  end

let fold_batch t ?(meta = []) ~docs ~postings ~deletes () =
  let body () =
    List.iter
      (fun (doc, len) ->
        if Hashtbl.mem t.doc_lens doc then
          invalid_arg "Live_index.fold_batch: document already present";
        Hashtbl.replace t.doc_lens doc len;
        t.total_len <- t.total_len + len;
        if doc >= t.next_doc_id then t.next_doc_id <- doc + 1)
      docs;
    List.iter (fun (term, docps) -> if docps <> [] then apply_postings t term docps) postings;
    delete_batch_body t deletes;
    List.iter (fun (k, v) -> t.live_meta <- Tmap.add k v t.live_meta) meta
  in
  match t.backend with
  | Btree_backend _ -> body ()
  | Mneme_backend st -> mutate t st body

(* ------------------------------------------------------------------ *)
(* Search and statistics                                               *)

let document_count t = Hashtbl.length t.doc_lens
let contains_document t doc = Hashtbl.mem t.doc_lens doc

let avg_doc_length t =
  let n = document_count t in
  if n = 0 then 0.0 else float_of_int t.total_len /. float_of_int n

let term_record t term =
  match normalise t term with
  | None -> None
  | Some term -> (
    match Inquery.Dictionary.find t.dict term with
    | None -> None
    | Some entry -> fetch_record t entry)

(* Latest-view accessors for the ingestion union: the term is already
   normalised (stemming is not idempotent, so re-normalising here would
   miss). *)
let lookup t term =
  match Inquery.Dictionary.find t.dict term with
  | None -> None
  | Some entry -> (
    match fetch_record t entry with
    | None -> None
    | Some record -> Some (record, entry.Inquery.Dictionary.df, entry.Inquery.Dictionary.cf))

let doc_lengths t =
  Hashtbl.fold (fun d l acc -> (d, l) :: acc) t.doc_lens [] |> List.sort compare

let next_doc t = t.next_doc_id
let total_length t = t.total_len
let meta t = Tmap.bindings t.live_meta
let normalise_term t term = normalise t term
let stopwords t = t.stopwords
let stem t = t.stem

let search ?(top_k = 10) t query =
  let source =
    {
      Inquery.Infnet.fetch = (fun entry -> fetch_record t entry);
      n_docs = max 1 (document_count t);
      max_doc_id = max 0 (t.next_doc_id - 1);
      avg_doc_len = avg_doc_length t;
      doc_len = (fun d -> match Hashtbl.find_opt t.doc_lens d with Some l -> l | None -> 0);
    }
  in
  let beliefs, _ =
    Inquery.Infnet.eval source t.dict ?stopwords:t.stopwords ~stem:t.stem
      (Inquery.Query.parse_exn query)
  in
  (* Deleted documents keep their slots; mask them out. *)
  Array.iteri
    (fun d b ->
      if b > Inquery.Infnet.default_belief && not (Hashtbl.mem t.doc_lens d) then
        beliefs.(d) <- Inquery.Infnet.default_belief)
    beliefs;
  Inquery.Ranking.top_k beliefs ~k:top_k

(* ------------------------------------------------------------------ *)
(* Pinned-epoch reading                                                *)

type pin = { p_pin : Mneme.Epoch.pin; p_snap : snapshot }

let mneme_state t =
  match t.backend with
  | Btree_backend _ -> invalid_arg "Live_index: Mneme backend only"
  | Mneme_backend st -> st

let epoch t =
  match t.backend with Btree_backend _ -> 0 | Mneme_backend st -> Mneme.Epoch.latest st.epochs

let on_publish t hook = t.publish_hooks <- t.publish_hooks @ [ hook ]

let pin t =
  let st = mneme_state t in
  { p_pin = Mneme.Epoch.pin st.epochs; p_snap = st.snap }

let pin_epoch p = p.p_snap.sn_epoch
let release t p = Mneme.Epoch.release (mneme_state t).epochs p.p_pin

(* Pinned-view accessors for the ingestion union: the pinned snapshot's
   directory and statistics, with record fetches resolved against the
   pinned locators (the epoch pin keeps those objects alive). *)
let pin_lookup t p term =
  let st = mneme_state t in
  match Tmap.find_opt term p.p_snap.sn_terms with
  | None -> None
  | Some ti ->
    if ti.ti_oid < 0 then None
    else (
      match Mneme.Store.get_opt st.pools.store ti.ti_oid with
      | None -> None
      | Some record -> Some (record, ti.ti_df, ti.ti_cf))

let pin_doc_lengths p = Imap.bindings p.p_snap.sn_doc_lens
let pin_total_length p = p.p_snap.sn_total_len
let pin_next_doc p = p.p_snap.sn_next_doc
let pin_meta p = Tmap.bindings p.p_snap.sn_meta

let pin_directory p =
  Tmap.fold (fun term ti acc -> (term, ti.ti_df, ti.ti_cf) :: acc) p.p_snap.sn_terms []
  |> List.rev

let search_pinned ?(top_k = 10) t pin query =
  let st = mneme_state t in
  let snap = pin.p_snap in
  let store = st.pools.store in
  let q = Inquery.Query.parse_exn query in
  (* A per-query mini-dictionary interning just the query's terms with
     the pinned snapshot's statistics and locators: the evaluator then
     runs the ordinary path, but every record fetch and every collection
     statistic comes from the pinned epoch — bit-identical to what the
     latest-view [search] returned when that epoch was current. *)
  let dict = Inquery.Dictionary.create () in
  let oids = ref [] in
  List.iter
    (fun w ->
      match normalise t w with
      | None -> ()
      | Some w -> (
        match Tmap.find_opt w snap.sn_terms with
        | None -> ()
        | Some ti ->
          let e = Inquery.Dictionary.intern dict w in
          if e.Inquery.Dictionary.locator < 0 then begin
            e.Inquery.Dictionary.locator <- ti.ti_oid;
            e.Inquery.Dictionary.df <- ti.ti_df;
            e.Inquery.Dictionary.cf <- ti.ti_cf;
            oids := ti.ti_oid :: !oids
          end))
    (Inquery.Query.terms q);
  let n_docs = Imap.cardinal snap.sn_doc_lens in
  let source =
    {
      Inquery.Infnet.fetch =
        (fun e ->
          let locator = e.Inquery.Dictionary.locator in
          if locator < 0 then None else Mneme.Store.get_opt store locator);
      n_docs = max 1 n_docs;
      max_doc_id = max 0 (snap.sn_next_doc - 1);
      avg_doc_len =
        (if n_docs = 0 then 0.0 else float_of_int snap.sn_total_len /. float_of_int n_docs);
      doc_len = (fun d -> match Imap.find_opt d snap.sn_doc_lens with Some l -> l | None -> 0);
    }
  in
  let release = Mneme.Store.reserve store !oids in
  Fun.protect ~finally:release (fun () ->
      let beliefs, _ = Inquery.Infnet.eval source dict ?stopwords:t.stopwords ~stem:t.stem q in
      Array.iteri
        (fun d b ->
          if b > Inquery.Infnet.default_belief && not (Imap.mem d snap.sn_doc_lens) then
            beliefs.(d) <- Inquery.Infnet.default_belief)
        beliefs;
      Inquery.Ranking.top_k beliefs ~k:top_k)

let pinned_epochs t =
  match t.backend with Btree_backend _ -> [] | Mneme_backend st -> Mneme.Epoch.pinned st.epochs

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)

let gc t =
  let st = mneme_state t in
  let store = st.pools.store in
  let collect () =
    Mneme.Epoch.collect st.epochs ~reclaim:(fun ~oid ~size:_ -> Mneme.Store.delete store oid)
  in
  if st.journaled then
    Mneme.Store.transact store (fun () ->
        let stats = collect () in
        Mneme.Store.finalize store;
        stats)
  else collect ()

let stranded_bytes t =
  match t.backend with
  | Btree_backend _ -> 0
  | Mneme_backend st -> Mneme.Epoch.stranded_bytes st.epochs

let mneme_store t =
  match t.backend with
  | Btree_backend _ -> None
  | Mneme_backend st -> Some st.pools.store

let directory t =
  match t.backend with
  | Btree_backend _ ->
    let acc = ref [] in
    Inquery.Dictionary.iter t.dict (fun e ->
        if e.Inquery.Dictionary.df > 0 then
          acc :=
            (e.Inquery.Dictionary.term, e.Inquery.Dictionary.df, e.Inquery.Dictionary.cf)
            :: !acc);
    List.sort compare !acc
  | Mneme_backend st ->
    Tmap.fold (fun term ti acc -> (term, ti.ti_df, ti.ti_cf) :: acc) st.snap.sn_terms []
    |> List.rev

(* ------------------------------------------------------------------ *)
(* Auditing                                                            *)

let audit t =
  let problems = ref [] in
  let flag where what = problems := (where, what) :: !problems in
  (* Deep-validate every record and cross-check df/cf against the
     dictionary, via the catalog's fsck pass. *)
  let doc_lens = Array.make (max 1 t.next_doc_id) 0 in
  Hashtbl.iter (fun d l -> if d < Array.length doc_lens then doc_lens.(d) <- l) t.doc_lens;
  let catalog =
    {
      Catalog.dict = t.dict;
      n_docs = document_count t;
      doc_lens;
      collection_bytes = t.total_len;
    }
  in
  List.iter
    (fun (term, what) -> flag ("term " ^ term) what)
    (Catalog.verify_records catalog ~fetch:(fetch_record t));
  (* Aggregate statistics must agree with the per-document table. *)
  let sum = Hashtbl.fold (fun _ l acc -> acc + l) t.doc_lens 0 in
  if sum <> t.total_len then
    flag "totals" (Printf.sprintf "doc lengths sum to %d but total_len is %d" sum t.total_len);
  Hashtbl.iter
    (fun d _ ->
      if d >= t.next_doc_id then
        flag "totals" (Printf.sprintf "document %d at or past next_doc_id %d" d t.next_doc_id))
    t.doc_lens;
  Inquery.Dictionary.iter t.dict (fun e ->
      let term = e.Inquery.Dictionary.term in
      if e.Inquery.Dictionary.df < 0 || e.Inquery.Dictionary.cf < 0 then
        flag ("term " ^ term)
          (Printf.sprintf "negative statistics df=%d cf=%d" e.Inquery.Dictionary.df
             e.Inquery.Dictionary.cf);
      if e.Inquery.Dictionary.df = 0 && e.Inquery.Dictionary.locator >= 0 then
        flag ("term " ^ term) "df is 0 but a record is still attached");
  (* Mneme: the published snapshot must equal the latest view — any
     drift means an epoch was published from inconsistent state. *)
  (match t.backend with
  | Btree_backend _ -> ()
  | Mneme_backend st ->
    let snap = st.snap in
    let dict_terms = ref 0 in
    Inquery.Dictionary.iter t.dict (fun e ->
        if e.Inquery.Dictionary.locator >= 0 then begin
          incr dict_terms;
          let term = e.Inquery.Dictionary.term in
          match Tmap.find_opt term snap.sn_terms with
          | None -> flag ("term " ^ term) "in the dictionary but not the published snapshot"
          | Some ti ->
            if
              ti.ti_oid <> e.Inquery.Dictionary.locator
              || ti.ti_df <> e.Inquery.Dictionary.df
              || ti.ti_cf <> e.Inquery.Dictionary.cf
            then
              flag ("term " ^ term)
                (Printf.sprintf "snapshot (oid %d, df %d, cf %d) vs dictionary (%d, %d, %d)"
                   ti.ti_oid ti.ti_df ti.ti_cf e.Inquery.Dictionary.locator
                   e.Inquery.Dictionary.df e.Inquery.Dictionary.cf)
        end);
    if Tmap.cardinal snap.sn_terms <> !dict_terms then
      flag "snapshot"
        (Printf.sprintf "%d terms in the snapshot but %d live in the dictionary"
           (Tmap.cardinal snap.sn_terms) !dict_terms);
    if Imap.cardinal snap.sn_doc_lens <> Hashtbl.length t.doc_lens then
      flag "snapshot"
        (Printf.sprintf "%d documents in the snapshot but %d live"
           (Imap.cardinal snap.sn_doc_lens) (Hashtbl.length t.doc_lens));
    Imap.iter
      (fun d l ->
        match Hashtbl.find_opt t.doc_lens d with
        | Some l' when l' = l -> ()
        | Some l' ->
          flag "snapshot" (Printf.sprintf "document %d length %d in snapshot, %d live" d l l')
        | None -> flag "snapshot" (Printf.sprintf "document %d only in snapshot" d))
      snap.sn_doc_lens;
    if snap.sn_total_len <> t.total_len then
      flag "snapshot"
        (Printf.sprintf "snapshot total length %d vs live %d" snap.sn_total_len t.total_len);
    if snap.sn_next_doc <> t.next_doc_id then
      flag "snapshot"
        (Printf.sprintf "snapshot next doc %d vs live %d" snap.sn_next_doc t.next_doc_id);
    if snap.sn_epoch <> Mneme.Epoch.latest st.epochs then
      flag "snapshot"
        (Printf.sprintf "snapshot epoch %d vs manager %d" snap.sn_epoch
           (Mneme.Epoch.latest st.epochs));
    if not (Tmap.equal String.equal snap.sn_meta t.live_meta) then
      flag "snapshot" "snapshot metadata disagrees with the live view");
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

let flush t =
  match t.backend with
  | Btree_backend tree -> Btree.flush tree
  | Mneme_backend st ->
    if st.journaled then
      Mneme.Store.transact st.pools.store (fun () -> Mneme.Store.finalize st.pools.store)
    else Mneme.Store.finalize st.pools.store

let compact t ~file =
  match t.backend with
  | Btree_backend _ -> invalid_arg "Live_index.compact: only the Mneme backend compacts"
  | Mneme_backend st ->
    if st.journaled then
      invalid_arg "Live_index.compact: disable the journal before compacting";
    (* Reclaim what no pin needs first, so the stale space does not
       survive into the new file; pinned-epoch objects are still live
       slots and are carried over — compaction never breaks a pin. *)
    ignore (gc t);
    let store = st.pools.store in
    Mneme.Store.finalize store;
    let dst = Mneme.Store.compact store ~file in
    (* Carry the buffer configuration over to the new store's pools. *)
    List.iter
      (fun name ->
        let capacity =
          match Mneme.Store.buffer (Mneme.Store.pool store name) with
          | Some b -> Mneme.Buffer_pool.capacity b
          | None -> 65536
        in
        Mneme.Store.attach_buffer (Mneme.Store.pool dst name)
          (Mneme.Buffer_pool.create ~name ~capacity ()))
      [ "small"; "medium"; "large" ];
    st.pools <- pools_of_store dst

type space = { file_bytes : int; reclaimable_bytes : int }

let space t =
  match t.backend with
  | Btree_backend tree ->
    { file_bytes = Btree.file_size tree; reclaimable_bytes = Btree.free_bytes tree }
  | Mneme_backend st ->
    {
      file_bytes = Mneme.Store.file_size st.pools.store;
      reclaimable_bytes =
        Mneme.Store.wasted_bytes st.pools.store + Mneme.Epoch.stranded_bytes st.epochs;
    }
