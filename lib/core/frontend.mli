(** Deadline-aware query frontend over a replica group.

    One retrieval engine per replica, each on its own simulated file
    system, serving the same index.  The frontend routes every record
    fetch through a per-replica circuit breaker, hedges a fetch to a
    second replica when the first stalls past a threshold, and enforces
    a per-query deadline on the simulated clock: when the deadline
    expires, the terms fetched so far are scored and the result is
    returned flagged {e degraded} — unfetched terms contribute only the
    default belief, exactly like salvage mode treats a quarantined
    term.

    All time is simulated.  A fetch's latency is the wall-clock delta
    of the serving replica's {!Vfs.Clock}; the frontend accumulates
    those deltas into its own logical clock ({!now_ms}), which also
    drives circuit-breaker cooldowns. *)

type breaker_state =
  | Closed  (** routing normally *)
  | Open  (** not routable until the cooldown elapses *)
  | Half_open  (** cooldown over: the next fetch is a probe *)

type replica_spec = {
  name : string;
  vfs : Vfs.t;  (** the replica's own file system (and clock) *)
  store : Index_store.t;  (** an index session opened on [vfs] *)
}

type t

type corrupt_event = {
  replica : string;  (** which replica's copy is damaged *)
  term : string;
  reason : string;  (** the [Corrupt] message *)
}

val create :
  replicas:replica_spec list ->
  dict:Inquery.Dictionary.t ->
  ?df_of:(Inquery.Dictionary.entry -> int) ->
  n_docs:int ->
  avg_doc_len:float ->
  doc_len:(int -> int) ->
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  ?hedge_after_ms:float ->
  ?window:int ->
  ?trip_after:int ->
  ?cooldown_ms:float ->
  ?result_cache_bytes:int ->
  ?block_cache_bytes:int ->
  ?on_corrupt:(replica:string -> term:string -> reason:string -> unit) ->
  unit ->
  t
(** [df_of] overrides the df a term leaf scores with
    ({!Inquery.Infnet.eval_topk}): a doc-partitioned shard's frontend
    passes the global catalog's df so shard-local records rank with
    collection-wide statistics.  [n_docs], [avg_doc_len] and [doc_len]
    are likewise whatever statistics the beliefs should be computed
    under — a shard passes the {e global} values, not its slice's.

    [hedge_after_ms] (default 60): a fetch costing more than this is a
    {e stall}; if another replica's breaker is closed the fetch is
    hedged there, and the query perceives
    [min(stall cost, hedge_after + hedge cost)].  [window] (default 6)
    and [trip_after] (default 3): a replica's breaker opens when the
    last [window] outcomes contain [trip_after] stalls or failures.
    [cooldown_ms] (default 500) of frontend logical time later the
    breaker goes half-open and the next fetch probes the replica:
    success closes the breaker, another stall or failure re-opens it.
    [on_corrupt] fires once per (replica, term) whose fetch raised
    [Corrupt] — the hook a repair daemon subscribes to.

    [result_cache_bytes] and [block_cache_bytes] (both default 0 =
    disabled) size the frontend's two read-path caches: a
    {!Result_cache} of finished rankings keyed by the normalised query
    (see {!run_query}), and a {!Util.Block_cache} of decoded postings
    blocks shared across queries and replicas, keyed by record locator
    and epoch.  Raises [Invalid_argument] on an empty or duplicate-name
    replica list, or nonsensical knobs. *)

val of_prepared :
  ?buffers:Buffer_sizing.t ->
  ?hedge_after_ms:float ->
  ?window:int ->
  ?trip_after:int ->
  ?cooldown_ms:float ->
  ?result_cache_bytes:int ->
  ?block_cache_bytes:int ->
  ?on_corrupt:(replica:string -> term:string -> reason:string -> unit) ->
  Experiment.prepared ->
  names:string list ->
  t
(** Build a replica group from a prepared experiment: each name gets a
    fresh file system holding a byte copy of the Mneme index, a cold OS
    cache, and its own buffer session ([buffers] defaults to the
    Table 2 heuristics). *)

val replica_names : t -> string list
val replica_vfs : t -> name:string -> Vfs.t
(** Raises [Not_found] for an unknown name — use it to aim fault plans
    at one replica. *)

val corrupt_fetches : t -> corrupt_event list
(** The frontend's read-repair worklist: every (replica, term) whose
    fetch raised [Corrupt], oldest first, deduplicated.  While an entry
    is outstanding, the term's fetches are served by hedging to a
    healthy replica (a corrupt fetch counts against the sick replica's
    breaker, so repeated damage routes traffic away entirely). *)

val mark_repaired : t -> replica:string -> term:string -> bool
(** Clear a worklist entry after the replica's copy has been healed
    (e.g. via {!Mneme.Scrub.heal} against that replica's file); a later
    corrupt fetch of the same (replica, term) is reported anew.
    [false] if no such entry was outstanding. *)

val breaker : t -> name:string -> breaker_state
val preferred : t -> string
(** The replica the next fetch would route to — a half-open replica
    awaiting its probe, else the first closed one in attach order (the
    first replica when every breaker is open). *)

val now_ms : t -> float
(** The frontend's logical clock: accumulated perceived fetch latency
    plus engine CPU across all queries (and any {!tick}s). *)

val tick : t -> float -> unit
(** Advance the logical clock without doing work — lets cooldowns
    elapse during idle periods.  Raises [Invalid_argument] on a
    negative amount. *)

type result = {
  ranked : Inquery.Ranking.ranked list;
  degraded : bool;
      (** some term was skipped (deadline, no routable replica) or
          failed (corrupt / crashed on every tried replica) *)
  deadline_hit : bool;
  skipped_terms : string list;  (** in first-skip order *)
  failed_terms : (string * string) list;  (** [(term, reason)] *)
  hedged_fetches : int;
  served_by : string;  (** replica that served the most fetches *)
  epoch : int;  (** published epoch of the serving replica's store *)
  elapsed_ms : float;  (** perceived query latency, CPU included *)
  postings_decoded : int;
      (** postings the evaluator's cursors actually decoded — the
          scatter-gather bench's per-shard work measure; decoded-block
          cache hits decode nothing and count nothing *)
  cached : bool;
      (** served whole from the result cache: no fetch, no decode, no
          scoring happened *)
}

val run_query :
  ?top_k:int ->
  ?deadline_ms:float ->
  ?floor:float ->
  ?plan:Inquery.Planner.choice ->
  t ->
  Inquery.Query.t ->
  result
(** Evaluate one parsed query with the cost-planned top-k evaluator
    ({!Inquery.Infnet.eval_topk}): the planner picks the cheapest
    applicable executor (max-score, intersection-first, exhaustive)
    from header statistics; [plan] forces one ({!Inquery.Planner.Auto}
    by default).  Results are bit-identical to the exhaustive ranking's
    first [top_k] whatever the plan, which is why the result cache's
    key stays plan-independent: a ranking computed under any plan may
    be replayed for any other.

    With [deadline_ms], the deadline is checked before every record
    fetch {e and} between candidate documents during evaluation (accrued
    scoring CPU is priced against the budget), so a degraded result
    overshoots the deadline by at most the cost of the fetch in flight
    when it expired.  Evidence already fetched when the deadline fires
    is still ranked.  Raises [Invalid_argument] on a non-positive
    deadline.

    {b The overshoot bound is per frontend instance.}  When this
    frontend is one shard of a scatter-gather group, the bound holds
    {e per shard}, not merely per replica: a fetch is raced against the
    deadline before it is issued, and evaluation deadline checks run
    between candidate documents, so one stalled shard holds its own
    (and therefore the merged) response past the deadline by at most
    one in-flight fetch plus the CPU of ranking the evidence already
    paid for.  {!Shard.run_query} inherits the bound because the
    scatter's perceived latency is the maximum over per-shard
    latencies.  Tested in [test_shard.ml]
    ("stalled shard cannot block the merge").

    [floor] seeds the evaluator's pruning threshold with an externally
    known kth score (the coordinator's global bound); the result is
    then the top-k among documents scoring {e strictly above} the
    floor, ties at the floor included.  See
    {!Inquery.Infnet.eval_topk}.

    {b Caching.}  With a result cache enabled, the query is first
    normalised to a canonical key — terms stemmed and stop-filtered the
    way evaluation would, re-printed in canonical syntax, [top_k]
    appended — and probed under the epoch the routed replica serves.  A
    [Full]-coverage hit is returned immediately with [cached = true]:
    zero fetches, zero decodes, zero simulated latency.  On a miss the
    computed ranking is inserted under the epoch it was computed at;
    degraded results are recorded with [Partial] coverage, which the
    probe never serves — a deadline-clipped ranking is recomputed, not
    replayed.  Floored queries bypass the cache entirely (the floor
    changes the answer).  The probe and the fill both re-check the
    deadline, so a stalled replica cannot smuggle a blown budget into
    the cache (see the [Vfs.Fault.Stall] regression test).  The
    decoded-block cache needs no such care: it changes which bytes are
    re-decoded, never what any query answers. *)

val run_query_string :
  ?top_k:int ->
  ?deadline_ms:float ->
  ?floor:float ->
  ?plan:Inquery.Planner.choice ->
  t ->
  string ->
  result
(** Parse and evaluate.  Raises [Invalid_argument] on syntax errors. *)

(** {2 Cache tiers} *)

val cache_tiers : t -> (string * Util.Cache_stats.t) list
(** Per-tier counters, top down: [("result", …)] and [("block", …)]
    when the respective cache is enabled, then [("buffer", …)] — the
    replica buffer pools merged with {!Mneme.Buffer_pool.merge_stats}.
    The Table-6-style tier report of [repro cache]. *)

val retain_cached_epochs : t -> keep:(int -> bool) -> int
(** Drop every result- and block-cache entry whose epoch fails [keep];
    returns how many entries were dropped.  The target of an
    epoch-publication or post-GC hook
    ({!Live_index.on_publish}): pass a predicate keeping the live epoch
    and any pinned ones. *)

val cached_epochs : t -> int list
(** Distinct epochs tagging entries in either cache, ascending. *)
