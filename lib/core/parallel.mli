(** Multicore query serving: a domain-pool executor over per-domain
    sessions.

    The paper's evaluation is throughput-oriented — Tables 3–5 time
    whole query {e sets} — and the serial reproduction leaves the OCaml
    5 runtime's domains idle.  This module serves a query set across
    [n] domains without changing a single ranking bit:

    - {b one session per domain}: each worker gets a private {!Vfs}
      (own simulated clock and OS cache) holding its own copy of the
      finalized, read-only index image, a private store session, and
      private buffer pools whose capacities are the Table 2 budget
      {e split} across the workers ({!Buffer_sizing.split}) — so the
      run's total buffer memory stays within the paper's budget and no
      lock sits on the postings hot path (see the domain-safety
      contract in {!Mneme.Store} and {!Mneme.Buffer_pool});
    - {b work stealing}: queries are distributed block-wise into
      per-worker {!Util.Wsq} deques; an idle worker steals from the
      others, so a few expensive queries cannot strand the tail;
    - {b submission-order results}: every outcome is reported at its
      query's position in the input list, whichever domain served it.

    Two time bases are reported and never mixed: the {e simulated}
    per-domain clocks give [sim_serial_ms] (sum over workers — the
    Table 3 quantity a serial run would report) and [sim_makespan_ms]
    (max over workers — when the slowest domain finishes, i.e. the
    parallel completion time), while [real_elapsed_ms] is host
    wall-clock from {!Vfs.Clock.Monotonic}.  The paper tables stay
    simulated-time-pure.

    Rankings are a pure function of the index and the collection
    statistics, so they are independent of which session serves a query
    and of steal order; [~audit] re-runs the whole set serially and
    verifies bit-identical ranked documents and beliefs per query. *)

exception Audit_mismatch of string
(** A parallel outcome diverged from the serial re-run. *)

type mode =
  | Batch  (** {!Engine.run_query} — exhaustive evaluation, the paper's batch protocol *)
  | Topk of int  (** {!Engine.run_topk} with this [k] — max-score pruned DAAT *)

type outcome = {
  q_index : int;  (** position in the submitted query list *)
  q_domain : int;  (** worker that served it *)
  q_ranked : Inquery.Ranking.ranked list;
  q_sim_ms : float;  (** simulated wall-clock this query cost its worker *)
}

type report = {
  domains : int;
  version : Experiment.version;
  n_queries : int;
  outcomes : outcome array;  (** submission order *)
  sim_makespan_ms : float;  (** max over workers — parallel completion time *)
  sim_serial_ms : float;  (** sum over workers — serial-equivalent work *)
  real_elapsed_ms : float;  (** host monotonic time for the parallel region *)
  worker_sim_ms : float array;
  worker_queries : int array;
  steals : int;
  buffers : (string * Mneme.Buffer_pool.stats) list;
      (** per-pool, merged across workers with {!Mneme.Buffer_pool.merge_stats} *)
  audited : bool;
}

val run_query_set :
  ?domains:int ->
  ?audit:bool ->
  ?mode:mode ->
  ?top_k:int ->
  ?buffers:Buffer_sizing.t ->
  ?policy:Mneme.Buffer_pool.policy ->
  Experiment.prepared ->
  Experiment.version ->
  queries:string list ->
  report
(** Serve the whole query set across [domains] worker domains (default
    1; [Invalid_argument] if non-positive).  [buffers] is the whole-run
    budget before the per-domain split (default
    {!Experiment.default_buffers}; forced to zero for
    [Mneme_no_cache]).  [top_k] (default 100) is the ranked depth in
    [Batch] mode; [mode] defaults to [Batch].  With [audit], the set is
    re-run serially on a fresh single session and every query's ranked
    documents and beliefs must match bit-for-bit — raises
    {!Audit_mismatch} otherwise. *)

type frontend_outcome = {
  f_index : int;
  f_domain : int;
  f_ranked : Inquery.Ranking.ranked list;
  f_degraded : bool;
  f_sim_ms : float;  (** the frontend's perceived latency for this query *)
}

type frontend_report = {
  f_domains : int;
  f_n_queries : int;
  f_outcomes : frontend_outcome array;  (** submission order *)
  f_sim_makespan_ms : float;
  f_sim_serial_ms : float;
  f_real_elapsed_ms : float;
  f_worker_queries : int array;
  f_steals : int;
  f_audited : bool;
}

val run_frontend_set :
  ?domains:int ->
  ?audit:bool ->
  ?top_k:int ->
  ?deadline_ms:float ->
  ?buffers:Buffer_sizing.t ->
  ?configure:(domain:int -> Frontend.t -> unit) ->
  Experiment.prepared ->
  names:string list ->
  queries:string list ->
  frontend_report
(** Same executor over replica-group frontends: each worker domain gets
    its own {!Frontend.t} (built with {!Frontend.of_prepared}, so each
    worker owns a full replica group over private file copies).
    [configure] runs once per frontend before serving — aim fault plans
    at a replica, tweak breakers; the worker index is passed so plans
    can be deterministic per domain, and the serial audit frontend is
    configured with [~domain:(-1)].  [audit] compares ranked documents
    and beliefs against the serial frontend and therefore rejects
    [deadline_ms] ([Invalid_argument]): deadline degradation depends on
    accumulated breaker state, which is path-dependent.  Hedging and
    breaker routing without deadlines do not affect rankings — only
    which replica pays the fetch — so the audit contract is the same
    bit-identity as {!run_query_set}. *)
