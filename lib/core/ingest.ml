(* Crash-safe online ingestion: an in-memory postings write buffer
   absorbing document additions, unioned with the on-disk Mneme index
   at query time, drained by a budgeted tiered merge.

   Durability protocol (exactly-once):

   - Every accepted operation is framed into a write-ahead log and the
     log fsynced {e before} the acknowledgement returns.  The WAL is
     append-only; [Vfs.fsync] flushes dirty blocks in ascending order,
     so a crash leaves a durable prefix and the per-record CRC32 cuts
     the torn tail — an unacked document is absent or wholly present,
     never half-tokenized.
   - A merge step folds the oldest sealed memory segments into the
     journaled live index with {e one} [Live_index.fold_batch] call:
     new postings objects, the updated document table, any pending
     deletions, and the new WAL frontier ([ingest_seq], sealed into the
     root's metadata) all commit as a single epoch publication.  A
     crash at any physical I/O recovers to wholly the old frontier or
     wholly the new one.
   - Recovery re-opens the live index, reads [ingest_seq] from the
     sealed root, and replays every WAL record past it through the
     ordinary buffering path.  Records at or below the frontier are
     already on disk and are dropped — no document is applied twice.

   The buffer itself follows Asadi & Lin: one growing delta-compressed
   run per term (v-byte doc-gap/tf/position-gaps, the postings v1 body),
   sealed into immutable segments at a byte threshold and combined
   tier-by-tier in memory, so a fold writes few, large records. *)

type config = {
  buffer_budget : int;
  seal_bytes : int;
  tier_fanout : int;
}

let default_config = { buffer_budget = 1 lsl 20; seal_bytes = 16 * 1024; tier_fanout = 4 }

let check_config c =
  if c.buffer_budget < 1 then invalid_arg "Ingest: buffer_budget must be positive";
  if c.seal_bytes < 1 then invalid_arg "Ingest: seal_bytes must be positive";
  if c.tier_fanout < 2 then invalid_arg "Ingest: tier_fanout must be at least 2"

type ack = Acked of { doc : int; seq : int } | Overloaded

(* One term's growing run: the v1 record body (doc gap, tf, position
   gaps — all v-byte), plus the header statistics to prepend when the
   run is materialized. *)
type run = {
  mutable r_last_doc : int;
  mutable r_df : int;
  mutable r_cf : int;
  r_buf : Buffer.t;
}

(* An immutable sealed segment: per-term materialized records (valid
   postings records in their own right) and the documents they cover,
   both ascending. *)
type segment = {
  sg_tier : int;
  sg_seq_lo : int;
  sg_seq_hi : int;
  sg_docs : (int * int) array;
  sg_runs : (string * bytes) array;
  sg_bytes : int;
}

type active = {
  a_runs : (string, run) Hashtbl.t;
  mutable a_docs : (int * int) list; (* newest first *)
  mutable a_bytes : int;
  mutable a_seq_lo : int; (* -1 while empty *)
  mutable a_seq_hi : int;
}

type stats = {
  docs_absorbed : int;
  deletes_absorbed : int;
  overloads : int;
  seals : int;
  folds : int;
  folded_docs : int;
  folded_bytes : int;
  wal_bytes : int;
  replayed_ops : int;
}

type t = {
  vfs : Vfs.t;
  live : Live_index.t;
  wal : Vfs.file;
  config : config;
  mutable next_seq : int;
  mutable merged_seq : int; (* highest seq folded into the disk index *)
  mutable next_doc : int;
  active : active;
  mutable sealed : segment list; (* oldest first *)
  tombs : (int, int) Hashtbl.t; (* doc -> deleting op's seq *)
  union : (int, int) Hashtbl.t; (* doc -> indexed length, the serving view *)
  mutable union_len : int;
  (* counters *)
  mutable c_docs : int;
  mutable c_deletes : int;
  mutable c_overloads : int;
  mutable c_seals : int;
  mutable c_folds : int;
  mutable c_folded_docs : int;
  mutable c_folded_bytes : int;
  mutable c_wal_bytes : int;
  mutable c_replayed : int;
}

let stats t =
  {
    docs_absorbed = t.c_docs;
    deletes_absorbed = t.c_deletes;
    overloads = t.c_overloads;
    seals = t.c_seals;
    folds = t.c_folds;
    folded_docs = t.c_folded_docs;
    folded_bytes = t.c_folded_bytes;
    wal_bytes = t.c_wal_bytes;
    replayed_ops = t.c_replayed;
  }

let meta_key = "ingest_seq"
let wal_file file = file ^ ".wal"
let journal_file file = file ^ ".log"

(* ------------------------------------------------------------------ *)
(* Write-ahead log                                                     *)

(* Record framing: [u32 length] [payload] [u32 CRC32 of payload].
   Payload: [op byte] [varint seq] [varint doc] and, for additions,
   [length-prefixed text]. *)

type op = Op_add of { seq : int; doc : int; text : string } | Op_delete of { seq : int; doc : int }

let op_seq = function Op_add { seq; _ } -> seq | Op_delete { seq; _ } -> seq

let encode_op op =
  let b = Buffer.create 64 in
  (match op with
  | Op_add { seq; doc; text } ->
    Buffer.add_char b '\x01';
    Util.Varint.encode b seq;
    Util.Varint.encode b doc;
    Util.Bin.buf_string b text
  | Op_delete { seq; doc } ->
    Buffer.add_char b '\x02';
    Util.Varint.encode b seq;
    Util.Varint.encode b doc);
  Buffer.to_bytes b

let decode_op payload =
  match Bytes.get payload 0 with
  | '\x01' ->
    let seq, p = Util.Varint.decode payload ~pos:1 in
    let doc, p = Util.Varint.decode payload ~pos:p in
    let text, _ = Util.Bin.get_string payload p in
    Op_add { seq; doc; text }
  | '\x02' ->
    let seq, p = Util.Varint.decode payload ~pos:1 in
    let doc, _ = Util.Varint.decode payload ~pos:p in
    Op_delete { seq; doc }
  | _ -> failwith "Ingest: unknown WAL op"

let wal_append t op =
  let payload = encode_op op in
  let frame = Buffer.create (Bytes.length payload + 8) in
  Util.Bin.buf_u32 frame (Bytes.length payload);
  Buffer.add_bytes frame payload;
  Util.Bin.buf_u32 frame (Util.Crc32.digest_bytes payload);
  let frame = Buffer.to_bytes frame in
  ignore (Vfs.append t.wal frame);
  (* The fsync is the acknowledgement point: on return the record is
     crash-durable; a crash mid-flush leaves at worst a torn tail the
     CRC rejects on replay. *)
  Vfs.fsync t.wal;
  t.c_wal_bytes <- t.c_wal_bytes + Bytes.length frame

(* Scan the WAL's valid prefix: every record whose frame fits and whose
   CRC verifies, stopping at the first violation (the torn tail of a
   crashed append, or the zero blocks an unflushed tail reads as).
   Returns the ops in log order and the byte length of the prefix. *)
let wal_scan wal =
  let size = Vfs.size wal in
  let ops = ref [] in
  let pos = ref 0 in
  (try
     while !pos + 8 <= size do
       let hdr = Vfs.read wal ~off:!pos ~len:4 in
       let len = Util.Bin.get_u32 hdr 0 in
       if len = 0 || !pos + 8 + len > size then raise Exit;
       let payload = Vfs.read wal ~off:(!pos + 4) ~len in
       let crc = Util.Bin.get_u32 (Vfs.read wal ~off:(!pos + 4 + len) ~len:4) 0 in
       if crc <> Util.Crc32.digest_bytes payload then raise Exit;
       (match decode_op payload with
       | op -> ops := op :: !ops
       | exception _ -> raise Exit);
       pos := !pos + 8 + len
     done
   with Exit -> ());
  (List.rev !ops, !pos)

(* ------------------------------------------------------------------ *)
(* The memory buffer                                                   *)

let fresh_active () =
  { a_runs = Hashtbl.create 64; a_docs = []; a_bytes = 0; a_seq_lo = -1; a_seq_hi = -1 }

let active_empty t = t.active.a_docs = []

(* Per-document bookkeeping tax in [a_bytes]: the doc-table entry. *)
let doc_tax = 16

let buffered_bytes t =
  t.active.a_bytes + List.fold_left (fun acc sg -> acc + sg.sg_bytes) 0 t.sealed

let buffered_docs t =
  List.length t.active.a_docs
  + List.fold_left (fun acc sg -> acc + Array.length sg.sg_docs) 0 t.sealed

let segments t = List.map (fun sg -> (sg.sg_tier, Array.length sg.sg_docs, sg.sg_bytes)) t.sealed

(* Materialize a run as a v1 postings record: header statistics, then
   the body exactly as it grew. *)
let materialize run =
  let b = Buffer.create (Buffer.length run.r_buf + 8) in
  Util.Varint.encode b run.r_df;
  Util.Varint.encode b run.r_cf;
  Buffer.add_buffer b run.r_buf;
  Buffer.to_bytes b

(* Combine [fanout] consecutive same-tier segments into one of the next
   tier — pure in-memory work, no I/O.  Consecutive segments cover
   disjoint ascending document ranges, so per-term records merge
   cleanly. *)
let merge_segments group =
  let tier = 1 + (List.hd group).sg_tier in
  let docs = Array.concat (List.map (fun sg -> sg.sg_docs) group) in
  let runs = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun sg ->
      Array.iter
        (fun (term, record) ->
          match Hashtbl.find_opt runs term with
          | Some prev -> Hashtbl.replace runs term (Inquery.Postings.merge prev record)
          | None ->
            Hashtbl.replace runs term record;
            order := term :: !order)
        sg.sg_runs)
    group;
  let terms = List.sort compare !order in
  let run_list = List.map (fun term -> (term, Hashtbl.find runs term)) terms in
  let bytes =
    List.fold_left (fun acc (_, r) -> acc + Bytes.length r) 0 run_list
    + (Array.length docs * doc_tax)
  in
  {
    sg_tier = tier;
    sg_seq_lo = (List.hd group).sg_seq_lo;
    sg_seq_hi = (List.rev group |> List.hd).sg_seq_hi;
    sg_docs = docs;
    sg_runs = Array.of_list run_list;
    sg_bytes = bytes;
  }

(* Collapse every consecutive same-tier group that has reached the
   fanout, repeating until no group is full. *)
let rec tier_combine t =
  let fanout = t.config.tier_fanout in
  let rec scan acc = function
    | [] -> None
    | sg :: rest ->
      let same, others =
        let rec take group = function
          | x :: xs when x.sg_tier = sg.sg_tier && List.length group < fanout ->
            take (x :: group) xs
          | xs -> (List.rev group, xs)
        in
        take [ sg ] rest
      in
      if List.length same = fanout then Some (List.rev acc, same, others)
      else scan (sg :: acc) rest
  in
  match scan [] t.sealed with
  | None -> ()
  | Some (before, group, after) ->
    t.sealed <- before @ [ merge_segments group ] @ after;
    tier_combine t

let seal t =
  if not (active_empty t) then begin
    let a = t.active in
    let terms =
      Hashtbl.fold (fun term run acc -> (term, materialize run) :: acc) a.a_runs []
      |> List.sort compare
    in
    let seg =
      {
        sg_tier = 0;
        sg_seq_lo = a.a_seq_lo;
        sg_seq_hi = a.a_seq_hi;
        sg_docs = Array.of_list (List.rev a.a_docs);
        sg_runs = Array.of_list terms;
        sg_bytes = a.a_bytes;
      }
    in
    t.sealed <- t.sealed @ [ seg ];
    Hashtbl.reset a.a_runs;
    a.a_docs <- [];
    a.a_bytes <- 0;
    a.a_seq_lo <- -1;
    a.a_seq_hi <- -1;
    t.c_seals <- t.c_seals + 1;
    tier_combine t
  end

(* Absorb one (already WAL-durable) addition into the active segment. *)
let buffer_add t ~seq ~doc text =
  let terms, indexed = Live_index.tokenize t.live text in
  let a = t.active in
  if a.a_seq_lo < 0 then a.a_seq_lo <- seq;
  a.a_seq_hi <- seq;
  List.iter
    (fun (term, positions) ->
      let run =
        match Hashtbl.find_opt a.a_runs term with
        | Some r -> r
        | None ->
          let r = { r_last_doc = -1; r_df = 0; r_cf = 0; r_buf = Buffer.create 32 } in
          Hashtbl.replace a.a_runs term r;
          a.a_bytes <- a.a_bytes + String.length term;
          r
      in
      let before = Buffer.length run.r_buf in
      let gap = if run.r_last_doc < 0 then doc else doc - run.r_last_doc in
      Util.Varint.encode run.r_buf gap;
      Util.Varint.encode run.r_buf (List.length positions);
      let last_pos = ref (-1) in
      List.iter
        (fun p ->
          let pgap = if !last_pos < 0 then p else p - !last_pos in
          last_pos := p;
          Util.Varint.encode run.r_buf pgap)
        positions;
      run.r_last_doc <- doc;
      run.r_df <- run.r_df + 1;
      run.r_cf <- run.r_cf + List.length positions;
      a.a_bytes <- a.a_bytes + (Buffer.length run.r_buf - before))
    terms;
  a.a_docs <- (doc, indexed) :: a.a_docs;
  a.a_bytes <- a.a_bytes + doc_tax;
  Hashtbl.replace t.union doc indexed;
  t.union_len <- t.union_len + indexed;
  if doc >= t.next_doc then t.next_doc <- doc + 1;
  if a.a_bytes >= t.config.seal_bytes then seal t

let buffer_delete t ~seq ~doc =
  match Hashtbl.find_opt t.union doc with
  | None -> false
  | Some len ->
    Hashtbl.remove t.union doc;
    t.union_len <- t.union_len - len;
    Hashtbl.replace t.tombs doc seq;
    true

(* ------------------------------------------------------------------ *)
(* The public write path                                               *)

let add_document t text =
  if buffered_bytes t >= t.config.buffer_budget then begin
    t.c_overloads <- t.c_overloads + 1;
    Overloaded
  end
  else begin
    let doc = t.next_doc and seq = t.next_seq in
    wal_append t (Op_add { seq; doc; text });
    t.next_seq <- seq + 1;
    buffer_add t ~seq ~doc text;
    t.c_docs <- t.c_docs + 1;
    Acked { doc; seq }
  end

let delete_document t doc =
  if not (Hashtbl.mem t.union doc) then false
  else begin
    let seq = t.next_seq in
    wal_append t (Op_delete { seq; doc });
    t.next_seq <- seq + 1;
    ignore (buffer_delete t ~seq ~doc);
    t.c_deletes <- t.c_deletes + 1;
    true
  end

(* ------------------------------------------------------------------ *)
(* The tiered merge                                                    *)

let merged_seq t = t.merged_seq
let last_seq t = t.next_seq - 1
let live t = t.live
let document_count t = Hashtbl.length t.union
let contains_document t doc = Hashtbl.mem t.union doc

let documents t =
  Hashtbl.fold (fun doc len acc -> (doc, len) :: acc) t.union [] |> List.sort compare

(* Fold the oldest sealed segments — as many as the budget admits —
   into the disk index as one epoch.  The new frontier is the highest
   sequence with no buffered addition left behind it: deletions at or
   below it are applied to the disk index in the same transaction
   (their WAL records will be dropped on replay), later ones stay
   pending as tombstones.  Documents deleted while still in memory are
   simply never written.  A buffer holding only tombstones still folds
   — the frontier advances over them so a drain always reaches the
   last acknowledged operation. *)
let merge_step ?(budget = Mneme.Budget.unlimited) t =
  if t.sealed = [] && active_empty t && Hashtbl.length t.tombs = 0 then false
  else begin
    if t.sealed = [] && not (active_empty t) then seal t;
    let meter = Mneme.Budget.meter () in
    let rec split chosen = function
      | sg :: rest when Mneme.Budget.within budget meter ->
        Mneme.Budget.charge meter ~segments:1 ~bytes:sg.sg_bytes;
        split (sg :: chosen) rest
      | rest -> (List.rev chosen, rest)
    in
    let chosen, rest = split [] t.sealed in
    let remaining_adds =
      List.fold_left (fun acc sg -> min acc sg.sg_seq_lo) max_int rest
      |> fun m -> if t.active.a_seq_lo >= 0 then min m t.active.a_seq_lo else m
    in
    let frontier =
      if remaining_adds = max_int then max t.merged_seq (last_seq t)
      else max t.merged_seq (remaining_adds - 1)
    in
    let doomed doc = Hashtbl.mem t.tombs doc in
    let docs =
      List.concat_map (fun sg -> Array.to_list sg.sg_docs) chosen
      |> List.filter (fun (doc, _) -> not (doomed doc))
    in
    (* Per term: concatenate the chosen segments' runs (ascending,
       disjoint), drop doomed documents, re-expand to (doc, positions)
       for the fold. *)
    let runs = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun sg ->
        Array.iter
          (fun (term, record) ->
            match Hashtbl.find_opt runs term with
            | Some prev -> Hashtbl.replace runs term (Inquery.Postings.merge prev record)
            | None ->
              Hashtbl.replace runs term record;
              order := term :: !order)
          sg.sg_runs)
      chosen;
    let postings =
      List.sort compare !order
      |> List.filter_map (fun term ->
             match Inquery.Postings.remove_docs (Hashtbl.find runs term) doomed with
             | None -> None
             | Some record ->
               let entries =
                 Inquery.Postings.decode record
                 |> List.map (fun dp -> (dp.Inquery.Postings.doc, dp.Inquery.Postings.positions))
               in
               Some (term, entries))
    in
    let deletes =
      Hashtbl.fold (fun doc seq acc -> if seq <= frontier then doc :: acc else acc) t.tombs []
      |> List.sort compare
    in
    (* The commit point: postings objects, document table, deletions
       and the new frontier, all in one journaled epoch publication. *)
    Live_index.fold_batch t.live
      ~meta:[ (meta_key, string_of_int frontier) ]
      ~docs ~postings ~deletes ();
    t.merged_seq <- frontier;
    t.sealed <- rest;
    let settled =
      Hashtbl.fold (fun doc seq acc -> if seq <= frontier then doc :: acc else acc) t.tombs []
    in
    List.iter (fun doc -> Hashtbl.remove t.tombs doc) settled;
    t.c_folds <- t.c_folds + 1;
    t.c_folded_docs <- t.c_folded_docs + List.length docs;
    t.c_folded_bytes <- t.c_folded_bytes + Mneme.Budget.bytes meter;
    (* Nothing left to replay: every WAL record is at or below the
       frontier, so the log can be cut.  Truncation is journaled
       metadata — durable immediately, no crash point. *)
    if t.sealed = [] && active_empty t then Vfs.truncate t.wal 0;
    true
  end

let drain ?budget t =
  while merge_step ?budget t do
    ()
  done

(* ------------------------------------------------------------------ *)
(* Query evaluation over the union                                     *)

(* A frozen view of one union state: enough to evaluate any query. *)
type view = {
  v_record : string -> bytes option; (* final union record, normalised term *)
  v_member : int -> bool;
  v_doc_len : int -> int;
  v_n_docs : int;
  v_total_len : int;
  v_next_doc : int;
}

(* The union record for one term across a segment list: concatenate the
   per-segment runs oldest-first onto the disk record, then drop every
   tombstoned document.  The result is exactly the record a from-scratch
   index of the union's documents would hold, so its statistics are the
   union's statistics. *)
let assemble ~disk ~segs ~dead term =
  let acc = ref disk in
  List.iter
    (fun sg ->
      (* Binary search the sorted per-segment term table. *)
      let lo = ref 0 and hi = ref (Array.length sg.sg_runs) in
      while !hi - !lo > 0 do
        let mid = (!lo + !hi) / 2 in
        let k, _ = sg.sg_runs.(mid) in
        if k < term then lo := mid + 1 else hi := mid
      done;
      if !lo < Array.length sg.sg_runs then begin
        let k, record = sg.sg_runs.(!lo) in
        if k = term then
          acc := (match !acc with None -> Some record | Some prev -> Some (Inquery.Postings.merge prev record))
      end)
    segs;
  match !acc with None -> None | Some record -> Inquery.Postings.remove_docs record dead

let eval_view t view ~top_k query =
  let q = Inquery.Query.parse_exn query in
  let dict = Inquery.Dictionary.create () in
  let records = Hashtbl.create 8 in
  List.iter
    (fun w ->
      match Live_index.normalise_term t.live w with
      | None -> ()
      | Some w ->
        if not (Hashtbl.mem records w) then (
          match view.v_record w with
          | None -> ()
          | Some record ->
            let df, cf = Inquery.Postings.stats record in
            let e = Inquery.Dictionary.intern dict w in
            e.Inquery.Dictionary.df <- df;
            e.Inquery.Dictionary.cf <- cf;
            Hashtbl.replace records w record))
    (Inquery.Query.terms q);
  let n_docs = view.v_n_docs in
  let source =
    {
      Inquery.Infnet.fetch = (fun e -> Hashtbl.find_opt records e.Inquery.Dictionary.term);
      n_docs = max 1 n_docs;
      max_doc_id = max 0 (view.v_next_doc - 1);
      avg_doc_len =
        (if n_docs = 0 then 0.0 else float_of_int view.v_total_len /. float_of_int n_docs);
      doc_len = view.v_doc_len;
    }
  in
  let stopwords = Live_index.stopwords t.live and stem = Live_index.stem t.live in
  let beliefs, _ = Inquery.Infnet.eval source dict ?stopwords ~stem q in
  Array.iteri
    (fun d b ->
      if b > Inquery.Infnet.default_belief && not (view.v_member d) then
        beliefs.(d) <- Inquery.Infnet.default_belief)
    beliefs;
  Inquery.Ranking.top_k beliefs ~k:top_k

let latest_view t =
  let dead doc = Hashtbl.mem t.tombs doc in
  let segs = t.sealed in
  let active_run term =
    match Hashtbl.find_opt t.active.a_runs term with
    | Some run when run.r_df > 0 -> Some (materialize run)
    | _ -> None
  in
  {
    v_record =
      (fun term ->
        let disk =
          match Live_index.lookup t.live term with Some (r, _, _) -> Some r | None -> None
        in
        let merged = assemble ~disk ~segs ~dead:(fun _ -> false) term in
        let merged =
          match (merged, active_run term) with
          | None, r -> r
          | r, None -> r
          | Some a, Some b -> Some (Inquery.Postings.merge a b)
        in
        match merged with None -> None | Some r -> Inquery.Postings.remove_docs r dead);
    v_member = (fun d -> Hashtbl.mem t.union d);
    v_doc_len = (fun d -> match Hashtbl.find_opt t.union d with Some l -> l | None -> 0);
    v_n_docs = Hashtbl.length t.union;
    v_total_len = t.union_len;
    v_next_doc = t.next_doc;
  }

let search ?(top_k = 10) t query = eval_view t (latest_view t) ~top_k query

(* ------------------------------------------------------------------ *)
(* Pinned union reading                                                *)

type pin = {
  ip_live : Live_index.pin;
  ip_segments : segment list;
  ip_dead : (int, unit) Hashtbl.t;
  ip_docs : (int, int) Hashtbl.t;
  ip_total : int;
  ip_next : int;
}

let pin t =
  (* Freeze the active segment first: sealed segments are immutable, so
     the pin can hold the list by reference forever. *)
  seal t;
  let dead = Hashtbl.create (Hashtbl.length t.tombs) in
  Hashtbl.iter (fun doc _ -> Hashtbl.replace dead doc ()) t.tombs;
  {
    ip_live = Live_index.pin t.live;
    ip_segments = t.sealed;
    ip_dead = dead;
    ip_docs = Hashtbl.copy t.union;
    ip_total = t.union_len;
    ip_next = t.next_doc;
  }

let release t p = Live_index.release t.live p.ip_live
let pin_epoch p = Live_index.pin_epoch p.ip_live

let pinned_view t p =
  let dead doc = Hashtbl.mem p.ip_dead doc in
  {
    v_record =
      (fun term ->
        let disk =
          match Live_index.pin_lookup t.live p.ip_live term with
          | Some (r, _, _) -> Some r
          | None -> None
        in
        match assemble ~disk ~segs:p.ip_segments ~dead:(fun _ -> false) term with
        | None -> None
        | Some r -> Inquery.Postings.remove_docs r dead);
    v_member = (fun d -> Hashtbl.mem p.ip_docs d);
    v_doc_len = (fun d -> match Hashtbl.find_opt p.ip_docs d with Some l -> l | None -> 0);
    v_n_docs = Hashtbl.length p.ip_docs;
    v_total_len = p.ip_total;
    v_next_doc = p.ip_next;
  }

let search_pinned ?(top_k = 10) t p query = eval_view t (pinned_view t p) ~top_k query

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)

type session = {
  ses_store : Index_store.t;
  ses_dict : Inquery.Dictionary.t;
  ses_n_docs : int;
  ses_max_doc_id : int;
  ses_avg_doc_len : float;
  ses_doc_len : int -> int;
  ses_pin : pin;
}

let session t =
  let p = pin t in
  let view = pinned_view t p in
  (* Every union term: the pinned disk directory plus every pinned
     segment's run table. *)
  let terms = Hashtbl.create 256 in
  List.iter
    (fun (term, _, _) -> Hashtbl.replace terms term ())
    (Live_index.pin_directory p.ip_live);
  List.iter
    (fun sg -> Array.iter (fun (term, _) -> Hashtbl.replace terms term ()) sg.sg_runs)
    p.ip_segments;
  let dict = Inquery.Dictionary.create () in
  let records = Hashtbl.create (Hashtbl.length terms) in
  Hashtbl.fold (fun term () acc -> term :: acc) terms []
  |> List.sort compare
  |> List.iter (fun term ->
         match view.v_record term with
         | None -> ()
         | Some record ->
           let df, cf = Inquery.Postings.stats record in
           let e = Inquery.Dictionary.intern dict term in
           e.Inquery.Dictionary.df <- df;
           e.Inquery.Dictionary.cf <- cf;
           Hashtbl.replace records term record);
  let store =
    {
      Index_store.name = "ingest-union";
      fetch = (fun e -> Hashtbl.find_opt records e.Inquery.Dictionary.term);
      reserve = Index_store.no_reserve;
      buffer_stats = (fun () -> []);
      reset_buffer_stats = (fun () -> ());
      file_size =
        (fun () ->
          match Live_index.mneme_store t.live with
          | Some store -> Mneme.Store.file_size store
          | None -> 0);
      epoch = (fun () -> pin_epoch p);
    }
  in
  {
    ses_store = store;
    ses_dict = dict;
    ses_n_docs = view.v_n_docs;
    ses_max_doc_id = max 0 (view.v_next_doc - 1);
    ses_avg_doc_len =
      (if view.v_n_docs = 0 then 0.0
       else float_of_int view.v_total_len /. float_of_int view.v_n_docs);
    ses_doc_len = view.v_doc_len;
    ses_pin = p;
  }

let close_session t s = release t s.ses_pin

(* ------------------------------------------------------------------ *)
(* Construction and recovery                                           *)

let make vfs live ~wal ~config ~merged_seq =
  {
    vfs;
    live;
    wal;
    config;
    next_seq = merged_seq + 1;
    merged_seq;
    next_doc = Live_index.next_doc live;
    active = fresh_active ();
    sealed = [];
    tombs = Hashtbl.create 64;
    union = Hashtbl.create 256;
    union_len = 0;
    c_docs = 0;
    c_deletes = 0;
    c_overloads = 0;
    c_seals = 0;
    c_folds = 0;
    c_folded_docs = 0;
    c_folded_bytes = 0;
    c_wal_bytes = 0;
    c_replayed = 0;
  }

let seed_union t =
  List.iter
    (fun (doc, len) ->
      Hashtbl.replace t.union doc len;
      t.union_len <- t.union_len + len)
    (Live_index.doc_lengths t.live)

let create ?(config = default_config) ?stopwords ?stem vfs ~file () =
  check_config config;
  let live = Live_index.create_mneme ?stopwords ?stem ~journal:(journal_file file) vfs ~file () in
  let wal = Vfs.open_file vfs (wal_file file) in
  make vfs live ~wal ~config ~merged_seq:(-1)

let read_merged_seq live =
  match List.assoc_opt meta_key (Live_index.meta live) with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> -1)
  | None -> -1

let open_ ?(config = default_config) ?stopwords ?stem vfs ~file () =
  check_config config;
  let log_file = journal_file file in
  let live =
    if not (Vfs.file_exists vfs file) then
      Live_index.create_mneme ?stopwords ?stem ~journal:log_file vfs ~file ()
    else begin
      ignore (Mneme.Store.recover_journal vfs ~file ~log_file);
      (* If no epoch was ever committed, all durable state lives in the
         WAL: start the disk index over.  Any committed epoch is
         guaranteed recoverable (the journal replays it), so a store
         that is unreadable after recovery and has no root never held
         acknowledged state. *)
      let committed =
        match Mneme.Store.open_existing vfs file with
        | store -> Mneme.Store.root store <> None
        | exception Mneme.Store.Corrupt _ -> false
      in
      if committed then Live_index.open_mneme ?stopwords ?stem ~journal:log_file vfs ~file ()
      else begin
        Vfs.delete_file vfs file;
        Vfs.delete_file vfs log_file;
        Live_index.create_mneme ?stopwords ?stem ~journal:log_file vfs ~file ()
      end
    end
  in
  let wal = Vfs.open_file vfs (wal_file file) in
  let merged_seq = read_merged_seq live in
  let t = make vfs live ~wal ~config ~merged_seq in
  seed_union t;
  (* Replay the WAL's valid prefix past the frontier; cut the torn
     tail so later appends extend the valid prefix. *)
  let ops, valid = wal_scan wal in
  if valid < Vfs.size wal then Vfs.truncate wal valid;
  List.iter
    (fun op ->
      let seq = op_seq op in
      if seq >= t.next_seq then t.next_seq <- seq + 1;
      if seq > merged_seq then begin
        (match op with
        | Op_add { seq; doc; text } -> buffer_add t ~seq ~doc text
        | Op_delete { seq; doc } -> ignore (buffer_delete t ~seq ~doc));
        t.c_replayed <- t.c_replayed + 1
      end)
    ops;
  (* A crash can land between a fold's commit and its WAL cut; if the
     replay left nothing pending, every surviving record is at or below
     the frontier and the log is finished business. *)
  if t.sealed = [] && active_empty t && Hashtbl.length t.tombs = 0 then Vfs.truncate t.wal 0;
  t

(* ------------------------------------------------------------------ *)
(* Auditing                                                            *)

let audit t =
  let problems = ref (Live_index.audit t.live) in
  let flag where what = problems := !problems @ [ (where, what) ] in
  (* The frontier the root carries must be the frontier we serve. *)
  let root_seq = read_merged_seq t.live in
  if root_seq <> t.merged_seq then
    flag "frontier" (Printf.sprintf "root says seq %d, serving %d" root_seq t.merged_seq);
  (* Tombstones are pending by definition. *)
  Hashtbl.iter
    (fun doc seq ->
      if seq <= t.merged_seq then
        flag "tombstones"
          (Printf.sprintf "document %d's deletion (seq %d) is behind the frontier" doc seq))
    t.tombs;
  (* The union table must be exactly (disk ∪ memory) − tombstones. *)
  let expect = Hashtbl.create 256 in
  List.iter
    (fun (doc, len) ->
      if not (Hashtbl.mem t.tombs doc) then Hashtbl.replace expect doc len)
    (Live_index.doc_lengths t.live);
  let mem_doc (doc, len) =
    if Hashtbl.mem expect doc then
      flag "union" (Printf.sprintf "document %d is in memory and on disk" doc)
    else if not (Hashtbl.mem t.tombs doc) then Hashtbl.replace expect doc len
  in
  List.iter (fun sg -> Array.iter mem_doc sg.sg_docs) t.sealed;
  List.iter mem_doc (List.rev t.active.a_docs);
  if Hashtbl.length expect <> Hashtbl.length t.union then
    flag "union"
      (Printf.sprintf "%d documents expected, %d served" (Hashtbl.length expect)
         (Hashtbl.length t.union));
  Hashtbl.iter
    (fun doc len ->
      match Hashtbl.find_opt t.union doc with
      | Some l when l = len -> ()
      | Some l -> flag "union" (Printf.sprintf "document %d length %d, expected %d" doc l len)
      | None -> flag "union" (Printf.sprintf "document %d missing from the union" doc))
    expect;
  let sum = Hashtbl.fold (fun _ l acc -> acc + l) t.union 0 in
  if sum <> t.union_len then
    flag "union" (Printf.sprintf "lengths sum to %d but union_len is %d" sum t.union_len);
  (* Sealed segments: valid records, ascending disjoint documents. *)
  List.iteri
    (fun i sg ->
      let where = Printf.sprintf "segment %d (tier %d)" i sg.sg_tier in
      let last = ref (-1) in
      Array.iter
        (fun (doc, _) ->
          if doc <= !last then flag where (Printf.sprintf "document ids not ascending at %d" doc);
          last := doc)
        sg.sg_docs;
      Array.iter
        (fun (term, record) ->
          match Inquery.Postings.validate record with
          | Ok () -> ()
          | Error e -> flag where (Printf.sprintf "term %s: %s" term e))
        sg.sg_runs)
    t.sealed;
  !problems
