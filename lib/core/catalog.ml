type t = {
  dict : Inquery.Dictionary.t;
  n_docs : int;
  doc_lens : int array;
  collection_bytes : int;
}

let magic = "IRCT"

let of_indexer indexer =
  let n_docs = Inquery.Indexer.document_count indexer in
  (* Document ids are dense in every builder path; size by count. *)
  let doc_lens = Array.init n_docs (Inquery.Indexer.doc_length indexer) in
  {
    dict = Inquery.Indexer.dictionary indexer;
    n_docs;
    doc_lens;
    collection_bytes = Inquery.Indexer.collection_bytes indexer;
  }

let avg_doc_length t =
  if t.n_docs = 0 then 0.0
  else float_of_int (Array.fold_left ( + ) 0 t.doc_lens) /. float_of_int t.n_docs

let doc_length t d = if d < 0 || d >= Array.length t.doc_lens then None else Some (float_of_int t.doc_lens.(d))

let save vfs ~file t =
  let dict_blob = Inquery.Dictionary.serialize t.dict in
  let buf = Buffer.create (Bytes.length dict_blob + (Array.length t.doc_lens * 2) + 64) in
  Buffer.add_string buf magic;
  Util.Bin.buf_u32 buf t.n_docs;
  Util.Bin.buf_u64 buf t.collection_bytes;
  Util.Bin.buf_u32 buf (Array.length t.doc_lens);
  Array.iter (Util.Varint.encode buf) t.doc_lens;
  Util.Bin.buf_u32 buf (Bytes.length dict_blob);
  Buffer.add_bytes buf dict_blob;
  let f = Vfs.open_file vfs file in
  Vfs.truncate f 0;
  ignore (Vfs.append f (Buffer.to_bytes buf))

let load vfs ~file =
  if not (Vfs.file_exists vfs file) then failwith ("Catalog.load: no such file: " ^ file);
  let f = Vfs.open_file vfs file in
  let b = Vfs.read f ~off:0 ~len:(Vfs.size f) in
  if Bytes.length b < 16 || Bytes.sub_string b 0 4 <> magic then
    failwith "Catalog.load: bad magic";
  try
    let n_docs = Util.Bin.get_u32 b 4 in
    let collection_bytes = Util.Bin.get_u64 b 8 in
    let len_count = Util.Bin.get_u32 b 16 in
    let pos = ref 20 in
    let doc_lens =
      Array.init len_count (fun _ ->
          let v, pos' = Util.Varint.decode b ~pos:!pos in
          pos := pos';
          v)
    in
    let dict_len = Util.Bin.get_u32 b !pos in
    let dict_blob = Bytes.sub b (!pos + 4) dict_len in
    { dict = Inquery.Dictionary.deserialize dict_blob; n_docs; doc_lens; collection_bytes }
  with Invalid_argument _ -> failwith "Catalog.load: corrupt catalog"

(* Cross-check the dictionary against the stored records: every entry
   with a locator must fetch, parse (either postings version), satisfy
   the deep structural invariants, and agree with the dictionary's df.
   Part of fsck — reports, never raises. *)
let verify_records t ~fetch =
  let problems = ref [] in
  let flag term what = problems := (term, what) :: !problems in
  Inquery.Dictionary.iter t.dict (fun entry ->
      let term = entry.Inquery.Dictionary.term in
      match fetch entry with
      | exception Mneme.Store.Corrupt msg -> flag term ("record unreadable: " ^ msg)
      | exception Invalid_argument msg -> flag term ("record unreadable: " ^ msg)
      | exception Failure msg -> flag term ("record unreadable: " ^ msg)
      | None -> if entry.Inquery.Dictionary.df > 0 then flag term "df > 0 but no stored record"
      | Some record -> (
        match Inquery.Postings.validate record with
        | Error msg -> flag term msg
        | Ok () ->
          let df, cf = Inquery.Postings.stats record in
          if df <> entry.Inquery.Dictionary.df then
            flag term
              (Printf.sprintf "dictionary df %d but record df %d" entry.Inquery.Dictionary.df df);
          if cf <> entry.Inquery.Dictionary.cf then
            flag term
              (Printf.sprintf "dictionary cf %d but record cf %d" entry.Inquery.Dictionary.cf cf)));
  List.rev !problems
