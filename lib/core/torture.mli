(** Crash-point torture harness (ALICE / CrashMonkey style).

    A deterministic journaled workload — an index build, then update
    batches that modify, delete and allocate objects, each batch ending
    in a finalize and bumping a persisted generation counter — is first
    run to completion under a counting fault plan to learn how many
    physical I/Os it performs and what a perfect store holds after each
    commit.  Then the workload is replayed once per I/O with
    {!Vfs.Fault.crash_at_io} pointed at that I/O: the simulated machine
    loses power there, {!Vfs.crash_image} reconstructs what a reboot
    would find, {!Mneme.Store.recover_journal} runs, and the recovered
    store is audited:

    - it must open (unless {e no} commit ever completed — before that
      the file legitimately holds nothing durable);
    - the persisted generation [g] must satisfy
      [completed - 1 <= g <= started - 1] — a commit the workload saw
      finish is never rolled back, and nothing past the last started
      commit can appear;
    - {!Mneme.Check.run} must pass (including the segment CRC32 pass);
    - the store must hold exactly the objects of generation [g]'s
      snapshot, byte for byte.

    Every deviation is reported as a problem tied to its crash point;
    a correct journal yields an empty problem list. *)

val file : string
(** Store file name used by the workload ("torture.mneme"). *)

val log_file : string
(** Journal log file name ("torture.log"). *)

type plan
(** A completed golden run: crash-point count plus per-generation
    expected contents. *)

val prepare : ?seed:int -> ?docs:int -> ?update_batches:int -> unit -> plan
(** Run the workload to completion (defaults: seed 42, 12 documents,
    3 update batches) and collect the golden snapshots. *)

val crash_points : plan -> int
(** Number of physical I/Os the workload performs — one crash point
    each. *)

type point_report = {
  crash_at : int;
  recovery : Mneme.Journal.recovery;
  opened : bool;  (** the crash image opened as a store *)
  problems : string list;  (** invariant violations; [] = consistent *)
}

val run_point : plan -> int -> point_report
(** Replay the workload crashing at the given I/O (1-based), recover,
    audit.  Raises [Invalid_argument] outside [1 .. crash_points]. *)

type outcome = {
  crash_points : int;
  opened : int;
  unopenable : int;  (** crash images from before the first commit *)
  replayed : int;
  discarded : int;
  clean : int;  (** recovery verdicts across all points *)
  problems : (int * string) list;  (** (crash point, violation) *)
}

val run : ?seed:int -> ?docs:int -> ?update_batches:int -> unit -> outcome
(** Enumerate every crash point.  [problems = []] means the store
    survived a crash at every single I/O of the workload. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 The shared fault-at-every-I/O sweep}

    Every torture family follows the same loop: enumerate the golden
    run's physical I/Os, replay the scenario once per point with a fault
    armed at that I/O, tally the replay, and collect its problems tagged
    with the point.  These two helpers are that loop, factored out so
    the store, failover, scrub, epoch, ingest and shard sweeps share
    one copy. *)

val sweep_points :
  ?seed_problems:string list -> points:int -> (int -> string list) -> (int * string) list
(** [sweep_points ~points replay] calls [replay k] for [k = 1 ..
    points]; each returned problem is tagged [(k, problem)].
    [seed_problems] — golden-run audit violations — come back first,
    tagged with point 0. *)

val tally_recovery :
  replayed:int ref -> discarded:int ref -> clean:int ref -> Mneme.Journal.recovery -> unit
(** Bump the counter matching the journal-recovery verdict — the census
    every store-level sweep reports. *)

(** {2 Failover torture}

    The same discipline pointed at replication.  A deterministic
    {e journal-shipping} workload — an incremental index build whose
    update batches allocate, grow and migrate term records inside
    journal transactions, with a {!Mneme.Replica} group attached and a
    fixed query set run after every commit — is first run to completion
    to learn its physical I/O count on the primary device and to record,
    per committed generation: the expected store contents, the catalog,
    and the ranked results of every query.  Then the workload is
    replayed once per I/O with the primary's device dying at that I/O.
    The most caught-up healthy standby is promoted and audited:

    - its applied LSN must lie in [completed, started] — no committed
      batch lost, nothing uncommitted applied;
    - the promoted store must open and pass {!Mneme.Check.run};
    - it must hold byte-for-byte the record set of its generation;
    - every query must return {e byte-identical ranked results} to the
      golden run at that generation. *)

val failover_file : string
(** Store file name used by the workload ("failover.mneme"). *)

val failover_log : string
(** Journal log file name ("failover.log"). *)

type failover_plan

val prepare_failover :
  ?seed:int -> ?docs:int -> ?batches:int -> ?standbys:int -> unit -> failover_plan
(** Golden run (defaults: seed 42, 12 documents, 3 batches, 2
    standbys).  Raises [Invalid_argument] on non-positive counts. *)

val failover_points : failover_plan -> int
(** Physical I/Os the workload performs on the primary device. *)

type failover_report = {
  crash_at : int;
  survivor : string;  (** promoted standby; "none" before attach *)
  applied_lsn : int;  (** -1 when there was nothing to promote *)
  problems : string list;  (** invariant violations; [] = consistent *)
}

val run_failover_point : failover_plan -> int -> failover_report
(** Replay, crash the primary at the given I/O (1-based), promote,
    audit.  Raises [Invalid_argument] outside [1 .. failover_points]. *)

type failover_outcome = {
  points : int;
  promoted : int;  (** crash points that yielded a survivor *)
  empty : int;  (** crashes before any commit: survivor legitimately empty *)
  problems : (int * string) list;  (** (crash point, violation) *)
}

val run_failover :
  ?seed:int -> ?docs:int -> ?batches:int -> ?standbys:int -> unit -> failover_outcome
(** Enumerate every crash point.  [problems = []] means a standby
    served the committed prefix byte-identically no matter where the
    primary died. *)

val pp_failover_outcome : Format.formatter -> failover_outcome -> unit

(** {2 Scrub torture}

    The bit-rot sweep that proves the self-healing loop.  The failover
    workload is run to completion with a replica group attached; then,
    for {e every} flushed physical segment, bits are flipped inside one
    member's on-disk copy of that segment (round-robin across the
    primary and the standbys) and the detect-to-repair loop must close:

    - a group scrub ({!Mneme.Scrub}) finds exactly the damaged segment
      on exactly the damaged member;
    - one {!Mneme.Replica.heal_segment} repairs it from a peer's
      verified copy — and, being a journaled rewrite on the primary,
      converges every standby too;
    - a second scrub finds nothing, every member passes
      {!Mneme.Check.run}, every data file is byte-identical, and a fresh
      engine returns the golden ranked results with {e zero} quarantined
      terms;
    - additionally ([crash_sweep]), the repair itself is crashed at
      every one of its primary-device I/Os; after reboot through journal
      recovery the surviving copies must still converge to the same
      clean group. *)

type scrub_scenario
(** A completed replicated workload plus its golden expectations: the
    open primary store and replica group, the full physical-segment
    census, and the ranked results every audit must reproduce. *)

val build_scrub_scenario :
  ?seed:int -> ?docs:int -> ?batches:int -> ?standbys:int -> unit -> scrub_scenario
(** Defaults: seed 42, 12 documents, 3 batches, 2 standbys.  Raises
    [Invalid_argument] on non-positive counts. *)

val scenario_segments : scrub_scenario -> int
(** Flushed physical segments across all pools (scrub walk order). *)

val scenario_member_names : scrub_scenario -> string list
(** ["primary"] followed by the standby names in attach order. *)

val scenario_rot :
  scrub_scenario -> member:string -> segment:int -> ?bits:int -> seed:int -> unit -> unit
(** Flip [bits] (default 1) distinct bits inside [member]'s on-disk copy
    of segment number [segment] (an index into the walk order), damaging
    both the OS view and the durable image.  Raises [Invalid_argument]
    on an unknown member or out-of-range segment. *)

val scrub_group : scrub_scenario -> (string * Mneme.Scrub.damage) list
(** Scrub every member's copy fresh from its own disk and return the
    combined worklist as [(member, damage)] pairs, members in attach
    order. *)

val heal_group : scrub_scenario -> int * string list
(** Scrub-and-heal to fixpoint through {!Mneme.Replica.heal_segment}:
    returns the number of heals applied and any failures (an empty list
    means the group reached a clean fixpoint within 3 rounds). *)

val audit_scenario : scrub_scenario -> string list
(** The convergence audit: fsck every member, demand byte-identical data
    files, golden ranked results and an empty quarantine.  Returns the
    violations ([] = converged). *)

type scrub_outcome = {
  sc_segments : int;
  sc_members : int;
  sc_healed : int;  (** heals applied across the sweep *)
  sc_crash_points : int;  (** crash-during-repair replays exercised *)
  sc_problems : (int * string) list;  (** (segment index, violation) *)
}

val scrub_ok : scrub_outcome -> bool

val run_scrub :
  ?seed:int ->
  ?docs:int ->
  ?batches:int ->
  ?standbys:int ->
  ?bits:int ->
  ?crash_sweep:bool ->
  unit ->
  scrub_outcome
(** The full sweep (defaults: seed 42, 12 documents, 3 batches, 2
    standbys, 1 bit per rot, crash sweep on).  [sc_problems = []] means
    every segment of every member healed back to a byte-identical,
    query-identical group — no matter where the repair was crashed. *)

val pp_scrub_outcome : Format.formatter -> scrub_outcome -> unit

type sweep_row = {
  sw_budget : int;  (** max bytes verified per scrub step *)
  sw_steps : int;  (** steps until the damage was detected *)
  sw_detect_ms : float;  (** simulated ms of scrub work to detection *)
  sw_stall_ms : float;  (** longest single step: worst foreground wait *)
  sw_heal_ms : float;
  sw_query_ms : float;  (** mean foreground query latency between steps *)
}

val scrub_budget_sweep :
  ?seed:int -> ?docs:int -> ?batches:int -> ?standbys:int -> budgets:int list -> unit -> sweep_row list
(** The scrub-tax experiment: rot the last segment of the walk on the
    primary, then detect and heal it under each per-step byte budget,
    running a foreground query between steps.  Small budgets detect
    slowly but never hold the disk long; large ones detect fast at the
    price of a long worst-case stall.  Raises [Invalid_argument] on a
    non-positive budget. *)

(** {2 Epoch torture}

    Crash-point enumeration for snapshot-isolated serving.  The
    workload drives a journaled {!Live_index} over a synthetic
    collection, interleaving document additions and deletions — every
    mutation publishes an epoch through one sealed root switch — and
    observing the directory, record bytes and a fixed ranked query set
    after each publication (the observation I/O is part of the
    deterministic sequence, so replays stay aligned).  A golden run
    under {!Vfs.Fault.none} records the view at every epoch, pins a
    spread of epochs, and audits the gc discipline; every replay
    crashes at one physical I/O, reboots on the durable image, recovers
    the journal, and demands:

    - {b (a)} the recovered store is fsck-clean, before and after gc;
    - {b (b)} the surviving root is wholly the old epoch or wholly the
      new one — directory, records, document count and rankings all
      byte-identical to the golden view of that epoch, never a mix;
    - {b (c)} gc drains every stranded byte the interrupted epoch left
      behind, and a reader pinned in the golden run ranks
      bit-identically no matter how much mutation (and gc) followed. *)

type epoch_plan

val prepare_epoch : ?seed:int -> ?docs:int -> unit -> epoch_plan
(** Golden run (defaults: seed 42, 8 documents — roughly [4/3 · docs]
    epoch publications).  Counts the crash points, snapshots every
    epoch's view, and audits pinned readers and gc; violations found in
    the golden run itself are reported by {!run_epoch} as crash point
    0.  Raises [Invalid_argument] on a non-positive [docs]. *)

val epoch_points : epoch_plan -> int
(** Physical I/Os in the golden run — the number of crash points. *)

val epoch_mutations : epoch_plan -> int
(** Epochs the golden run published. *)

type epoch_report = {
  crash_at : int;
  recovery : Mneme.Journal.recovery;
  opened : bool;
  published : int;  (** epochs the replay saw commit before the crash *)
  recovered_epoch : int;  (** -1 when unopenable *)
  problems : string list;
}

val run_epoch_point : epoch_plan -> int -> epoch_report
(** Replay with a crash at physical I/O [k] (1-based), recover, audit.
    An unopenable image is only a problem if the replay had seen at
    least one publication commit.  Raises [Invalid_argument] if [k] is
    outside [1..epoch_points]. *)

type epoch_outcome = {
  e_points : int;
  e_mutations : int;
  e_opened : int;
  e_unopenable : int;
  e_wholly_old : int;  (** recovered to the last epoch the replay saw commit *)
  e_wholly_new : int;  (** the log fsync sealed the interrupted epoch *)
  e_replayed : int;
  e_discarded : int;
  e_clean : int;
  e_reclaimed : int;  (** objects the golden run's gc passes freed *)
  e_problems : (int * string) list;  (** crash point 0 = golden-run audit *)
}

val run_epoch : ?seed:int -> ?docs:int -> unit -> epoch_outcome
(** Enumerate every crash point.  [e_problems = []] means every crash
    recovered to a whole epoch with a clean store, every pinned reader
    ranked bit-identically, and gc drained every stranded byte. *)

val pp_epoch_outcome : Format.formatter -> epoch_outcome -> unit

val epoch_table : epoch_plan -> (int * int * int) list
(** The golden run per epoch: [(epoch, documents, live terms)] — the
    view each published root seals. *)

val epoch_golden_problems : epoch_plan -> string list
(** Violations the golden run's own pin/gc audit found ([] = clean). *)

(** {2 Ingest torture}

    Crash-point enumeration for online ingestion.  The workload drives
    an {!Ingest} index over a synthetic collection — WAL-acknowledged
    additions and deletions interleaved with budgeted merge steps —
    observing the union's document table and a fixed ranked query set
    after every operation (the observation I/O is part of the
    deterministic sequence, so replays stay aligned), then drains the
    merge one budgeted fold at a time.  A golden run under
    {!Vfs.Fault.none} records the union at every acknowledged frontier
    and audits pins, gc and the drain; every replay crashes at one
    physical I/O, reboots on the durable image, recovers with
    {!Ingest.open_}, and demands:

    - {b (a)} the recovered store is fsck-clean, before and after the
      drain and gc;
    - {b (b)} exactly-once durability: the recovered frontier sits
      inside the acknowledged window, and the union's document table
      and rankings are byte-identical to the golden run at that
      frontier — every acknowledged document present exactly once, an
      unacknowledged one absent or wholly present, never lost or
      doubled;
    - {b (c)} a reader pinned on the recovered union ranks
      bit-identically to the golden union at that frontier;
    - {b (d)} the merge resumes and drains: the buffer empties, the
      frontier reaches the last acknowledged operation, rankings do
      not move, the WAL is truncated, and gc leaves nothing
      stranded. *)

type ingest_plan

val prepare_ingest : ?seed:int -> ?docs:int -> unit -> ingest_plan
(** Golden run (defaults: seed 42, 8 documents).  Counts the crash
    points, snapshots the union after every operation, indexes the
    observations by acknowledged frontier, and audits pinned readers,
    the drain and gc; violations found in the golden run itself are
    reported by {!run_ingest} as crash point 0.  Raises
    [Invalid_argument] on a non-positive [docs]. *)

val ingest_points : ingest_plan -> int
(** Physical I/Os in the golden run — the number of crash points. *)

val ingest_ops : ingest_plan -> int
(** Operations (adds, deletes and merge steps) the golden run ran. *)

val ingest_golden_problems : ingest_plan -> string list
(** Violations the golden run's own pin/drain/gc audit found ([] =
    clean). *)

type ingest_report = {
  i_crash_at : int;
  i_recovery : Mneme.Journal.recovery;
  i_opened : bool;
  i_acked_seq : int;  (** last operation the replay saw acknowledged *)
  i_recovered_seq : int;  (** [min_int] when unopenable *)
  i_seen_folds : int;  (** folds the replay saw commit before the crash *)
  i_recovered_folds : int;
  i_redelivered : int;  (** WAL records recovery re-applied *)
  i_problems : string list;
}

val run_ingest_point : ingest_plan -> int -> ingest_report
(** Replay with a crash at physical I/O [k] (1-based), recover with
    {!Ingest.open_}, audit exactly-once durability and the resumed
    drain.  Raises [Invalid_argument] if [k] is outside
    [1..ingest_points]. *)

type ingest_outcome = {
  i_points : int;
  i_ops : int;
  i_acked : int;  (** operations the golden run acknowledged *)
  i_folds : int;
  i_opened : int;
  i_unopenable : int;
  i_wholly_old : int;  (** recovered to the last fold the replay saw commit *)
  i_wholly_new : int;  (** the journal fsync sealed the interrupted fold *)
  i_replayed : int;
  i_discarded : int;
  i_clean : int;
  i_redelivered : int;  (** WAL records re-applied across all replays *)
  i_reclaimed : int;
  i_problems : (int * string) list;  (** crash point 0 = golden-run audit *)
}

val run_ingest : ?seed:int -> ?docs:int -> unit -> ingest_outcome
(** Enumerate every crash point.  [i_problems = []] means every crash
    recovered every acknowledged document exactly once, served
    byte-identical union rankings, resumed and drained its merge, and
    left a clean store. *)

val pp_ingest_outcome : Format.formatter -> ingest_outcome -> unit

val ingest_table : ingest_plan -> (int * int * int * int) list
(** The golden run per operation: [(op, acked_seq, folds, documents)]. *)

(** {2 Shard torture}

    The fault-at-every-I/O discipline pointed at scatter-gather
    serving.  An unsharded golden index is built and its rankings
    recorded (the full above-baseline ranking per query is the
    restriction oracle); a clean sharded coordinator ({!Shard.create})
    is probed to learn every replica's serving-phase physical I/O
    count; then the scatter is replayed with one member crashed
    ({!Vfs.Fault.crash_at_io}), stalled ({!Vfs.Fault.stall_at_io}) or
    bit-flipped ({!Vfs.Fault.flip_bit_on_read}) at each of those I/Os —
    plus, per shard, a {e blackout} (every replica dead from its first
    serving I/O, exercising retry-with-backoff and shedding) and a
    {e brownout} (every replica slowed below the hedge threshold under
    a deadline, exercising deadline degradation).  Every merged result
    is audited:

    - {b (a)} full-coverage results are bit-identical (doc ids and
      belief floats) to the unsharded index;
    - {b (b)} partial results are {e exactly} the unsharded ranking
      restricted to the answered shards' doc ranges — any deviation is
      a {e silent truncation}, and the coverage record must account for
      every shard and every covered document;
    - {b (c)} the deadline is overshot by at most one in-flight fetch
      (the stall or brownout latency) plus one clean run's worth of
      CPU. *)

type shard_outcome = {
  st_shards : int;
  st_members : int;  (** replicas probed for serving-phase I/Os *)
  st_points : int;  (** member serving I/Os enumerated *)
  st_runs : int;  (** fault replays: sweep + blackouts + brownouts *)
  st_full : int;  (** full-coverage query results audited *)
  st_partial : int;  (** partial (degraded / shed) query results audited *)
  st_overshoots : int;  (** deadline overshoots beyond one fetch *)
  st_truncations : int;  (** silent truncations *)
  st_problems : (int * string) list;  (** (replay number, violation); 0 = clean probe *)
}

val shard_ok : shard_outcome -> bool
(** No problems, no overshoots, no truncations. *)

val run_shard :
  ?seed:int -> ?docs:int -> ?shards:int -> ?replicas:int -> ?top_k:int -> unit -> shard_outcome
(** The full sweep (defaults: seed 42, 24 documents, 2 shards, 2
    replicas per shard, top-10).  [shard_ok] on the outcome means every
    fault replay either served the exact unsharded ranking (hedged
    around the fault) or an exactly-restricted partial one, with the
    deadline bound honoured everywhere.  Raises [Invalid_argument] on
    non-positive counts or more shards than documents. *)

val pp_shard_outcome : Format.formatter -> shard_outcome -> unit

(** {1 Cache coherence under churn}

    The tiered-cache torture: a journaled Mneme live index under an
    add/delete churn workload, with a query-result cache and a
    decoded-block cache riding the epoch-publication hook
    ({!Live_index.on_publish}) the way a serving frontend would.  At
    every published epoch the harness compares the cached read path
    against the uncached one bit-for-bit:

    - every result-cache hit must equal the uncached latest-view
      ranking, and every entry filled at an epoch must hit for the rest
      of that epoch;
    - every pinned epoch, read through the shared block cache while
      later mutations and a gc run under the pins, must stream exactly
      the (doc, tf) pairs of a private uncached decode;
    - after gc, no cache holds an entry tagged with a collected epoch;
    - both invalidation mechanisms fire: the publication hook's eager
      drop and the probe-time epoch-mismatch purge (the harness gives
      results a one-epoch grace window precisely so the latter has
      stale entries to catch). *)

type cache_outcome = {
  ct_mutations : int;
  ct_comparisons : int;  (** cached-vs-uncached rankings / streams compared *)
  ct_result_hits : int;
  ct_block_hits : int;
  ct_invalidations : int;  (** hook drops + probe-time purges, both caches *)
  ct_problems : (int * string) list;  (** (mutation, violation); 0 = audit phase *)
}

val cache_ok : cache_outcome -> bool
(** No problems, and the run actually exercised the machinery: at least
    one hit in each cache and at least one invalidation. *)

val run_cache : ?seed:int -> ?docs:int -> unit -> cache_outcome
(** Run the churn (defaults: seed 42, 18 documents — roughly 24
    published epochs).  Raises [Invalid_argument] on a non-positive
    document count. *)

val pp_cache_outcome : Format.formatter -> cache_outcome -> unit
