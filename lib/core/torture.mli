(** Crash-point torture harness (ALICE / CrashMonkey style).

    A deterministic journaled workload — an index build, then update
    batches that modify, delete and allocate objects, each batch ending
    in a finalize and bumping a persisted generation counter — is first
    run to completion under a counting fault plan to learn how many
    physical I/Os it performs and what a perfect store holds after each
    commit.  Then the workload is replayed once per I/O with
    {!Vfs.Fault.crash_at_io} pointed at that I/O: the simulated machine
    loses power there, {!Vfs.crash_image} reconstructs what a reboot
    would find, {!Mneme.Store.recover_journal} runs, and the recovered
    store is audited:

    - it must open (unless {e no} commit ever completed — before that
      the file legitimately holds nothing durable);
    - the persisted generation [g] must satisfy
      [completed - 1 <= g <= started - 1] — a commit the workload saw
      finish is never rolled back, and nothing past the last started
      commit can appear;
    - {!Mneme.Check.run} must pass (including the segment CRC32 pass);
    - the store must hold exactly the objects of generation [g]'s
      snapshot, byte for byte.

    Every deviation is reported as a problem tied to its crash point;
    a correct journal yields an empty problem list. *)

val file : string
(** Store file name used by the workload ("torture.mneme"). *)

val log_file : string
(** Journal log file name ("torture.log"). *)

type plan
(** A completed golden run: crash-point count plus per-generation
    expected contents. *)

val prepare : ?seed:int -> ?docs:int -> ?update_batches:int -> unit -> plan
(** Run the workload to completion (defaults: seed 42, 12 documents,
    3 update batches) and collect the golden snapshots. *)

val crash_points : plan -> int
(** Number of physical I/Os the workload performs — one crash point
    each. *)

type point_report = {
  crash_at : int;
  recovery : Mneme.Journal.recovery;
  opened : bool;  (** the crash image opened as a store *)
  problems : string list;  (** invariant violations; [] = consistent *)
}

val run_point : plan -> int -> point_report
(** Replay the workload crashing at the given I/O (1-based), recover,
    audit.  Raises [Invalid_argument] outside [1 .. crash_points]. *)

type outcome = {
  crash_points : int;
  opened : int;
  unopenable : int;  (** crash images from before the first commit *)
  replayed : int;
  discarded : int;
  clean : int;  (** recovery verdicts across all points *)
  problems : (int * string) list;  (** (crash point, violation) *)
}

val run : ?seed:int -> ?docs:int -> ?update_batches:int -> unit -> outcome
(** Enumerate every crash point.  [problems = []] means the store
    survived a crash at every single I/O of the workload. *)

val pp_outcome : Format.formatter -> outcome -> unit
