(** Crash-point torture harness (ALICE / CrashMonkey style).

    A deterministic journaled workload — an index build, then update
    batches that modify, delete and allocate objects, each batch ending
    in a finalize and bumping a persisted generation counter — is first
    run to completion under a counting fault plan to learn how many
    physical I/Os it performs and what a perfect store holds after each
    commit.  Then the workload is replayed once per I/O with
    {!Vfs.Fault.crash_at_io} pointed at that I/O: the simulated machine
    loses power there, {!Vfs.crash_image} reconstructs what a reboot
    would find, {!Mneme.Store.recover_journal} runs, and the recovered
    store is audited:

    - it must open (unless {e no} commit ever completed — before that
      the file legitimately holds nothing durable);
    - the persisted generation [g] must satisfy
      [completed - 1 <= g <= started - 1] — a commit the workload saw
      finish is never rolled back, and nothing past the last started
      commit can appear;
    - {!Mneme.Check.run} must pass (including the segment CRC32 pass);
    - the store must hold exactly the objects of generation [g]'s
      snapshot, byte for byte.

    Every deviation is reported as a problem tied to its crash point;
    a correct journal yields an empty problem list. *)

val file : string
(** Store file name used by the workload ("torture.mneme"). *)

val log_file : string
(** Journal log file name ("torture.log"). *)

type plan
(** A completed golden run: crash-point count plus per-generation
    expected contents. *)

val prepare : ?seed:int -> ?docs:int -> ?update_batches:int -> unit -> plan
(** Run the workload to completion (defaults: seed 42, 12 documents,
    3 update batches) and collect the golden snapshots. *)

val crash_points : plan -> int
(** Number of physical I/Os the workload performs — one crash point
    each. *)

type point_report = {
  crash_at : int;
  recovery : Mneme.Journal.recovery;
  opened : bool;  (** the crash image opened as a store *)
  problems : string list;  (** invariant violations; [] = consistent *)
}

val run_point : plan -> int -> point_report
(** Replay the workload crashing at the given I/O (1-based), recover,
    audit.  Raises [Invalid_argument] outside [1 .. crash_points]. *)

type outcome = {
  crash_points : int;
  opened : int;
  unopenable : int;  (** crash images from before the first commit *)
  replayed : int;
  discarded : int;
  clean : int;  (** recovery verdicts across all points *)
  problems : (int * string) list;  (** (crash point, violation) *)
}

val run : ?seed:int -> ?docs:int -> ?update_batches:int -> unit -> outcome
(** Enumerate every crash point.  [problems = []] means the store
    survived a crash at every single I/O of the workload. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 Failover torture}

    The same discipline pointed at replication.  A deterministic
    {e journal-shipping} workload — an incremental index build whose
    update batches allocate, grow and migrate term records inside
    journal transactions, with a {!Mneme.Replica} group attached and a
    fixed query set run after every commit — is first run to completion
    to learn its physical I/O count on the primary device and to record,
    per committed generation: the expected store contents, the catalog,
    and the ranked results of every query.  Then the workload is
    replayed once per I/O with the primary's device dying at that I/O.
    The most caught-up healthy standby is promoted and audited:

    - its applied LSN must lie in [completed, started] — no committed
      batch lost, nothing uncommitted applied;
    - the promoted store must open and pass {!Mneme.Check.run};
    - it must hold byte-for-byte the record set of its generation;
    - every query must return {e byte-identical ranked results} to the
      golden run at that generation. *)

val failover_file : string
(** Store file name used by the workload ("failover.mneme"). *)

val failover_log : string
(** Journal log file name ("failover.log"). *)

type failover_plan

val prepare_failover :
  ?seed:int -> ?docs:int -> ?batches:int -> ?standbys:int -> unit -> failover_plan
(** Golden run (defaults: seed 42, 12 documents, 3 batches, 2
    standbys).  Raises [Invalid_argument] on non-positive counts. *)

val failover_points : failover_plan -> int
(** Physical I/Os the workload performs on the primary device. *)

type failover_report = {
  crash_at : int;
  survivor : string;  (** promoted standby; "none" before attach *)
  applied_lsn : int;  (** -1 when there was nothing to promote *)
  problems : string list;  (** invariant violations; [] = consistent *)
}

val run_failover_point : failover_plan -> int -> failover_report
(** Replay, crash the primary at the given I/O (1-based), promote,
    audit.  Raises [Invalid_argument] outside [1 .. failover_points]. *)

type failover_outcome = {
  points : int;
  promoted : int;  (** crash points that yielded a survivor *)
  empty : int;  (** crashes before any commit: survivor legitimately empty *)
  problems : (int * string) list;  (** (crash point, violation) *)
}

val run_failover :
  ?seed:int -> ?docs:int -> ?batches:int -> ?standbys:int -> unit -> failover_outcome
(** Enumerate every crash point.  [problems = []] means a standby
    served the committed prefix byte-identically no matter where the
    primary died. *)

val pp_failover_outcome : Format.formatter -> failover_outcome -> unit
