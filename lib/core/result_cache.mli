(** Query-result cache: the top tier of the read-path ladder.

    Maps a {e canonical query key} — the caller's normalised rendering
    of (query, k, evaluation preset) — to a finished ranking, under a
    byte budget with LRU replacement.  A hit answers the query without
    touching the dictionary, the store, or the evaluator at all.

    {b Epoch coherence.}  Every entry is tagged with the index epoch it
    was computed under.  {!find} takes the epoch the caller is serving
    and treats any mismatch as a miss {e and} purges the stale entry on
    the spot (counted as an invalidation): results computed under a
    superseded epoch can never be served once the index has moved on,
    and a publication automatically ages out the whole cache without an
    explicit flush.  {!retain} additionally lets the epoch-publication
    hook drop stale entries eagerly, and after garbage collection
    {!epochs} verifies no entry survives under a collected epoch.

    {b Coverage.}  Entries record whether the ranking covered the whole
    index ({!Full}) or was degraded — deadline-clipped, missing terms,
    or missing shards ({!Partial}).  {!find} serves only [Full] entries;
    a cached partial is never served as a full answer.  ({!find_any}
    exposes partials for callers that can legitimately re-serve a
    degraded answer as degraded.)

    Values are polymorphic; the caller supplies each entry's budget
    charge, since the cache cannot size arbitrary ['a].

    Statistics are the unified {!Util.Cache_stats.t}, so the tier report
    merges this cache with the decoded-block cache and the buffer pool
    in one fold.  Like the other tiers, a [t] is single-domain. *)

type coverage =
  | Full  (** complete answer over the whole index at the entry's epoch *)
  | Partial  (** degraded: never served by {!find} *)

type 'a t

val create : ?capacity_bytes:int -> name:string -> unit -> 'a t
(** [capacity_bytes] defaults to 1 MiB; 0 disables the cache ({!insert}
    becomes a no-op, so every probe misses).  Raises [Invalid_argument]
    if negative. *)

val name : 'a t -> string
val capacity : 'a t -> int

val length : 'a t -> int
(** Resident entries. *)

val find : 'a t -> key:string -> epoch:int -> 'a option
(** Probe for a [Full] entry computed at exactly [epoch].  Counts one
    reference; a hit refreshes recency.  An entry under any other epoch
    is purged (one invalidation) and reported as a miss. *)

val find_any : 'a t -> key:string -> epoch:int -> ('a * coverage) option
(** Like {!find} but also returns [Partial] entries, with their
    coverage, for callers serving degraded answers as degraded. *)

val insert : 'a t -> key:string -> epoch:int -> coverage:coverage -> cost:int -> 'a -> unit
(** Insert (replacing any entry under the same key) and evict from the
    LRU tail until the budget holds.  [cost] is the entry's byte charge;
    raises [Invalid_argument] if negative. *)

val retain : 'a t -> keep:(int -> bool) -> int
(** Drop every entry whose epoch fails [keep]; returns how many were
    dropped (counted as invalidations, not evictions).  The
    epoch-publication hook calls this with [keep = (fun e -> e = live)]
    or a pinned-epoch predicate after GC. *)

val clear : 'a t -> unit
(** Drop everything (all counted as invalidations); statistics are
    kept. *)

val epochs : 'a t -> int list
(** Distinct epochs tagging resident entries, ascending — the torture
    harness checks no collected epoch lingers here. *)

val stats : 'a t -> Util.Cache_stats.t
val reset_stats : 'a t -> unit
