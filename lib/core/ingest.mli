(** Crash-safe online ingestion: an in-memory postings write buffer
    unioned with the on-disk index at query time, drained by a
    budgeted, tiered background merge.

    The paper's system re-indexes the whole collection to change it;
    this module makes the index {e online}.  Following Asadi & Lin's
    contiguous-buffer design, each accepted document is tokenized once
    and appended to one growing delta-compressed run per term
    (v-byte doc-gap/tf/position-gaps — the postings v1 body).  Full
    buffers are sealed into immutable segments and combined
    tier-by-tier in memory; a background {!merge_step} folds the oldest
    segments into Mneme postings objects under a {!Mneme.Budget}.

    {b Exactly-once durability.}  Every accepted operation is written
    to a write-ahead log and fsynced before its acknowledgement
    returns; the per-record CRC32 cuts a torn tail, so an unacked
    document is absent or wholly present.  Each merge commits the new
    postings objects, the document table, pending deletions and the
    new WAL frontier (the [ingest_seq] root metadata) as {e one}
    journaled epoch publication — a crash at any physical I/O recovers
    to wholly the old index or wholly the new one, and {!open_}
    replays exactly the WAL suffix past the recovered frontier: no
    acknowledged document is ever lost or applied twice
    ({!Core.Torture.run_ingest} enumerates every crash point and
    proves it).

    {b Union queries.}  {!search} evaluates against disk ∪ memory with
    exact collection statistics: per query term the segments' runs are
    merged onto the disk record and pending deletions dropped, so the
    record — and hence df, tf and every belief — is bit-identical to a
    from-scratch index of the union's documents.  {!pin} freezes the
    whole union (disk epoch pin + sealed segment list) for
    bit-identical re-reads under churn. *)

type config = {
  buffer_budget : int;
      (** byte budget for the whole memory buffer (active + sealed);
          at or above it {!add_document} sheds load *)
  seal_bytes : int;  (** seal the active segment at this many bytes *)
  tier_fanout : int;
      (** combine this many same-tier segments into one of the next
          tier (in memory) *)
}

val default_config : config
(** 1 MiB buffer budget, 16 KiB seals, fanout 4. *)

type ack =
  | Acked of { doc : int; seq : int }
      (** Durable: the WAL record is fsynced.  [doc] is the assigned
          document id, [seq] the operation's WAL sequence number. *)
  | Overloaded
      (** Backpressure: the buffer is at its byte budget (the merge is
          behind).  Nothing was written or assigned; retry after a
          {!merge_step}. *)

type t

val create :
  ?config:config ->
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  Vfs.t ->
  file:string ->
  unit ->
  t
(** A fresh ingesting index: a journaled Mneme live index on [file]
    (journal [file ^ ".log"]) and a write-ahead log [file ^ ".wal"].
    Raises [Invalid_argument] on a nonsensical [config]. *)

val open_ :
  ?config:config ->
  ?stopwords:Inquery.Stopwords.t ->
  ?stem:bool ->
  Vfs.t ->
  file:string ->
  unit ->
  t
(** Recover after a crash (or reopen cleanly): run journal recovery,
    open the live index from its sealed root, read the [ingest_seq]
    frontier from the root's metadata, and replay the WAL's valid
    prefix past it through the ordinary buffering path (the torn tail,
    if any, is cut).  If no epoch was ever committed the disk index is
    restarted empty and the whole WAL replays — every acknowledged
    operation is recovered either way. *)

val add_document : t -> string -> ack
(** Accept one document: WAL append + fsync (the acknowledgement
    point), then tokenize and absorb into the memory buffer — no index
    I/O on the write path.  Returns {!Overloaded} without side effects
    once {!buffered_bytes} reaches the configured budget. *)

val delete_document : t -> int -> bool
(** Delete from the union: WAL append + fsync, then the document is
    masked immediately (a tombstone) and physically removed from the
    disk index by the merge step whose frontier passes the deletion.
    [false] (and no WAL write) if the document is not in the union. *)

val merge_step : ?budget:Mneme.Budget.t -> t -> bool
(** Fold the oldest sealed memory segments — as many as [budget]
    admits (default unlimited), always at least one; the active
    segment is sealed first if nothing else is pending — into the disk
    index as one crash-atomic epoch.  Returns [false] (and does
    nothing) when the buffer holds neither documents nor pending
    deletions; a tombstone-only buffer still folds, so a {!drain}
    always advances the frontier to {!last_seq}.  After the fold that
    empties the buffer, the WAL is truncated: everything it held is at
    or below the durable frontier. *)

val drain : ?budget:Mneme.Budget.t -> t -> unit
(** {!merge_step} until the buffer is empty. *)

val search : ?top_k:int -> t -> string -> Inquery.Ranking.ranked list
(** Evaluate one query against the union of the memory buffer and the
    disk index, with exact union statistics — rankings are
    bit-identical to a single index holding the union's documents. *)

(** {2 Pinned union reading} *)

type pin

val pin : t -> pin
(** Freeze the current union: the live index's epoch is pinned and the
    sealed segment list captured (the active segment is sealed first —
    a memory-only operation).  Later additions, deletions, merges and
    gc do not move the view. *)

val release : t -> pin -> unit
val pin_epoch : pin -> int

val search_pinned : ?top_k:int -> t -> pin -> string -> Inquery.Ranking.ranked list
(** Bit-identical to what {!search} returned when the pin was taken. *)

(** {2 Serving integration} *)

type session = {
  ses_store : Index_store.t;
      (** an index session over the pinned union — plugs into
          {!Engine.create} and {!Frontend} replica specs *)
  ses_dict : Inquery.Dictionary.t;  (** union terms with union df/cf *)
  ses_n_docs : int;
  ses_max_doc_id : int;
      (** ids are sparse under deletion — pass to {!Engine.create} *)
  ses_avg_doc_len : float;
  ses_doc_len : int -> int;
  ses_pin : pin;  (** release via {!close_session} *)
}

val session : t -> session
(** Capture the current union as an {!Index_store} session: an
    {!Engine} created from it ranks bit-identically to {!search} at
    capture time, while ingestion and merging continue underneath. *)

val close_session : t -> session -> unit

(** {2 Introspection} *)

val live : t -> Live_index.t
(** The disk index underneath (gc, stranded bytes, fsck). *)

val document_count : t -> int
(** Documents in the union. *)

val contains_document : t -> int -> bool

val documents : t -> (int * int) list
(** The union's [(doc, indexed_length)] table, sorted — the
    exactly-once audit's ground truth. *)

val merged_seq : t -> int

val last_seq : t -> int
(** The highest acknowledged operation (-1 if none ever). *)

val buffered_bytes : t -> int
val buffered_docs : t -> int

val segments : t -> (int * int * int) list
(** Sealed segments oldest first: [(tier, documents, bytes)]. *)

type stats = {
  docs_absorbed : int;
  deletes_absorbed : int;
  overloads : int;
  seals : int;
  folds : int;
  folded_docs : int;
  folded_bytes : int;  (** memory-segment bytes folded to disk *)
  wal_bytes : int;
  replayed_ops : int;  (** WAL records re-applied by {!open_} *)
}

val stats : t -> stats

val audit : t -> (string * string) list
(** [(where, problem)] pairs, empty when clean: the live index's own
    audit, the root frontier vs the serving frontier, tombstone
    pendingness, the union table against (disk ∪ memory) −
    tombstones, and every sealed segment's structure ({!Inquery.Postings.validate},
    ascending document ids). *)
